package plot

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ddio/internal/exp"
	"ddio/internal/stats"
	"ddio/internal/trace"
)

// -update regenerates the golden SVG files instead of comparing.
var update = flag.Bool("update", false, "rewrite golden SVG files")

// checkGolden compares got against testdata/<name>, rewriting the file
// under -update. SVG output is deterministic by construction, so the
// comparison is byte-exact.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (regenerate with `go test ./internal/plot -update`): %v", path, err)
	}
	if got != string(want) {
		t.Fatalf("%s differs from golden (regenerate with `go test ./internal/plot -update` and review the diff)", name)
	}
}

// sampleSweep builds a small synthetic SweepResult — no simulation —
// shaped like a fig7-style disks sweep.
func sampleSweep() *exp.SweepResult {
	spec := &exp.SweepSpec{
		Name: "sample-sweep", ID: "figS",
		Title:    "throughput vs disks (sample)",
		Axis:     exp.AxisDisks,
		Values:   []int{1, 2, 4, 8},
		Layout:   "contiguous",
		Methods:  []string{"ddio", "tc"},
		Patterns: []string{"ra", "rc"},
	}
	t := &exp.Table{
		ID: "figS", Title: spec.Title, RowLabel: "disks",
		Rows: []string{"1", "2", "4", "8"},
		Cols: []string{"DDIO ra", "DDIO rc", "TC ra", "TC rc", "max-bw"},
	}
	means := [][]float64{
		{2.2, 2.1, 1.9, 0.4, 2.3},
		{4.4, 4.2, 3.6, 0.5, 4.7},
		{8.7, 8.3, 6.9, 0.5, 9.4},
		{16.9, 16.1, 9.8, 0.5, 18.7},
	}
	for _, row := range means {
		cells := make([]exp.Cell, len(row))
		for j, v := range row {
			cells[j] = exp.Cell{Mean: v}
		}
		t.Cells = append(t.Cells, cells)
	}
	cs := make([][]stats.Summary, len(t.Rows))
	for i := range cs {
		cs[i] = make([]stats.Summary, len(t.Cols)-1)
		for j := range cs[i] {
			cs[i][j] = stats.Summary{N: 1, Mean: means[i][j], Min: means[i][j], Max: means[i][j]}
		}
	}
	return &exp.SweepResult{Spec: spec, Table: t, CellStats: cs}
}

// sampleTrace builds a synthetic two-disk trace: d0 nearly solid, d1
// half idle.
func sampleTrace() *trace.Recorder {
	r := trace.New()
	ms := func(v float64) int64 { return int64(v * 1e6) }
	for i := 0; i < 10; i++ {
		t0 := ms(float64(i) * 10)
		r.DiskService("d0", t0, t0+ms(9), false, 8192, 1)
	}
	for i := 0; i < 5; i++ {
		t0 := ms(float64(i) * 20)
		r.DiskService("d1", t0, t0+ms(10), true, 8192, 0)
	}
	return r
}

func TestSweepFigureGolden(t *testing.T) {
	checkGolden(t, "sweep_figure.svg", SweepFigure(sampleSweep()))
}

func TestTimelineGolden(t *testing.T) {
	checkGolden(t, "timeline.svg", UtilizationTimeline(sampleTrace(), "disk activity — sample"))
}

// TestSweepFigureShape: structural assertions that survive cosmetic
// restyling — the figure carries every series, the ceiling reference,
// and one marker per (series, value).
func TestSweepFigureShape(t *testing.T) {
	svg := SweepFigure(sampleSweep())
	if !strings.HasPrefix(svg, "<svg ") || !strings.HasSuffix(svg, "</svg>\n") {
		t.Fatal("not a standalone SVG document")
	}
	if got := strings.Count(svg, "<polyline "); got != 5 { // 4 series + ceiling
		t.Fatalf("polyline count = %d, want 5", got)
	}
	// 4 series × 4 values markers; the gray ceiling draws no markers.
	if got := strings.Count(svg, "<circle "); got != 16 {
		t.Fatalf("marker count = %d, want 16", got)
	}
	for _, label := range []string{"DDIO ra", "TC rc", "max bandwidth"} {
		if !strings.Contains(svg, ">"+label+"</text>") {
			t.Fatalf("legend label %q missing", label)
		}
	}
}

// TestTableBarsShape: the bars adapter drops the max-bw column and
// draws groups × series bars.
func TestTableBarsShape(t *testing.T) {
	res := sampleSweep()
	res.Table.RowLabel = "pattern" // force the bars form through FigureSVG
	svg := FigureSVG(res.Table)
	if !strings.Contains(svg, "<rect ") {
		t.Fatal("no bars drawn")
	}
	// 4 groups × 4 series data bars; max-bw must not appear.
	if strings.Contains(svg, "max-bw") || strings.Contains(svg, "max bandwidth") {
		t.Fatal("bars figure includes the ceiling column")
	}
	if got := strings.Count(svg, "<title>"); got != 16 {
		t.Fatalf("bar tooltip count = %d, want 16", got)
	}
}

// TestTimelineShape: every disk gets a labeled track and a utilization
// label.
func TestTimelineShape(t *testing.T) {
	svg := UtilizationTimeline(sampleTrace(), "t")
	// Horizon is the last busy edge (99 ms): d0 is busy 90/99 ≈ 91%,
	// d1 50/99 ≈ 51%, mean ≈ 71%.
	for _, want := range []string{">d0</text>", ">d1</text>", ">91%</text>", ">51%</text>", "mean disk utilization 71%"} {
		if !strings.Contains(svg, want) {
			t.Fatalf("timeline missing %q", want)
		}
	}
}

// TestDeterministicOutput: the emitters are pure functions.
func TestDeterministicOutput(t *testing.T) {
	a := SweepFigure(sampleSweep())
	b := SweepFigure(sampleSweep())
	if a != b {
		t.Fatal("SweepFigure not deterministic")
	}
	c := UtilizationTimeline(sampleTrace(), "x")
	d := UtilizationTimeline(sampleTrace(), "x")
	if c != d {
		t.Fatal("UtilizationTimeline not deterministic")
	}
}
