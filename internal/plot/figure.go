package plot

// figure.go adapts the repository's result types — sweep results,
// figure tables, event traces — onto the chart forms.

import (
	"fmt"

	"ddio/internal/exp"
	"ddio/internal/trace"
)

// SweepFigure renders an executed sweep as a paper-style figure: the
// swept axis along x, one line per method×pattern column, and the
// hardware ceiling as a dashed reference line — the SVG counterpart of
// the row-per-value tables Figures 5–8 print.
func SweepFigure(res *exp.SweepResult) string {
	sub := res.Spec.Name
	if t := res.Table; t.Note != "" {
		sub = fmt.Sprintf("%s · %s", res.Spec.Name, t.Note)
	}
	if res.Spec.Faults != nil {
		sub = fmt.Sprintf("%s · faults: %s", sub, res.Spec.Faults.Summary())
	}
	return TableLines(res.Table, sub)
}

// SweepTimeFigure renders a degradation sweep's completion-time view:
// the same axis and method×pattern lines as SweepFigure, but the y axis
// is mean completion time over trials. Under fault injection, recovery
// (retries, backoff, resend timeouts, straggler windows) stretches
// completion time even where throughput curves flatten, so both views
// together make the degradation story. Returns "" when the result
// carries no per-cell times (a fault-free sweep).
func SweepTimeFigure(res *exp.SweepResult) string {
	if res.CellTime == nil {
		return ""
	}
	t := res.Table
	sub := fmt.Sprintf("%s · completion time under faults", res.Spec.Name)
	if res.Spec.Faults != nil {
		sub = fmt.Sprintf("%s · faults: %s", sub, res.Spec.Faults.Summary())
	}
	c := &LineChart{
		Title:      fmt.Sprintf("%s — %s (completion time)", t.ID, t.Title),
		Subtitle:   sub,
		XLabel:     t.RowLabel,
		YLabel:     "completion time (s)",
		Categories: t.Rows,
	}
	for ci, col := range t.Cols {
		if col == "max-bw" {
			continue // a bandwidth ceiling has no time counterpart
		}
		se := XYSeries{Label: col}
		for vi := range t.Rows {
			se.Y = append(se.Y, res.CellTime[vi][ci].Mean)
		}
		c.Series = append(c.Series, se)
	}
	return c.SVG()
}

// TableLines renders a sweep-shaped table (numeric axis values as rows,
// method×pattern columns, optional trailing max-bw ceiling) as a line
// figure. SweepFigure wraps it when the spec is at hand.
func TableLines(t *exp.Table, subtitle string) string {
	c := &LineChart{
		Title:      fmt.Sprintf("%s — %s", t.ID, t.Title),
		Subtitle:   subtitle,
		XLabel:     t.RowLabel,
		YLabel:     "throughput (MB/s)",
		Categories: t.Rows,
	}
	if subtitle == "" && t.Note != "" {
		c.Subtitle = t.Note
	}
	for ci, col := range t.Cols {
		se := XYSeries{Label: col}
		if col == "max-bw" {
			se.Label = "max bandwidth"
			se.Gray, se.Dash = true, true
		}
		for vi := range t.Rows {
			se.Y = append(se.Y, t.Cells[vi][ci].Mean)
		}
		c.Series = append(c.Series, se)
	}
	return c.SVG()
}

// FigureSVG renders a table in its natural figure form: grouped bars
// for the pattern grids (Figures 3–4, row label "pattern"), a line
// figure for the numeric-axis machine-shape sweeps (Figures 5–8).
func FigureSVG(t *exp.Table) string {
	if t.RowLabel == "pattern" {
		return TableBars(t)
	}
	return TableLines(t, "")
}

// TableBars renders a pattern-grid table (Figures 3–4: rows are access
// patterns, columns are file systems) as grouped bars. Any trailing
// max-bw column is dropped — a ceiling is a reference line, not a bar.
func TableBars(t *exp.Table) string {
	c := &GroupedBars{
		Title:      fmt.Sprintf("%s — %s", t.ID, t.Title),
		Subtitle:   t.Note,
		XLabel:     t.RowLabel,
		YLabel:     "throughput (MB/s)",
		Categories: t.Rows,
	}
	for ci, col := range t.Cols {
		if col == "max-bw" {
			continue
		}
		se := BarSeries{Label: col}
		for vi := range t.Rows {
			se.Y = append(se.Y, t.Cells[vi][ci].Mean)
		}
		c.Series = append(c.Series, se)
	}
	return c.SVG()
}

// UtilizationTimeline renders a traced run's per-disk busy intervals as
// a Gantt-style timeline — the picture behind the paper's mechanism
// claim: under disk-directed I/O the tracks are near-solid (disks
// continuously busy on double-buffered, schedule-ordered transfers);
// under traditional caching they are striped with idle gaps between
// cache misses. The subtitle carries the mean utilization so the claim
// is checkable at a glance.
func UtilizationTimeline(rec *trace.Recorder, title string) string {
	horizon := rec.End()
	tls := rec.DiskTimelines(horizon)
	var mean float64
	for _, tl := range tls {
		mean += tl.Util
	}
	if len(tls) > 0 {
		mean /= float64(len(tls))
	}
	c := &Timeline{
		Title: title,
		Subtitle: fmt.Sprintf("mean disk utilization %.0f%% over %.1f ms",
			mean*100, float64(horizon)/1e6),
		Horizon: float64(horizon) / 1e9,
	}
	for _, tl := range tls {
		row := TimelineRow{Label: tl.Name, Util: tl.Util}
		for _, iv := range tl.Busy {
			row.Spans = append(row.Spans, Span{Start: float64(iv.Start) / 1e9, End: float64(iv.End) / 1e9})
		}
		c.Rows = append(c.Rows, row)
	}
	return c.SVG()
}
