package plot

// figure.go adapts the repository's result types — sweep results,
// figure tables, event traces — onto the chart forms.

import (
	"fmt"

	"ddio/internal/exp"
	"ddio/internal/trace"
)

// SweepFigure renders an executed sweep as a paper-style figure: the
// swept axis along x, one line per method×pattern column, and the
// hardware ceiling as a dashed reference line — the SVG counterpart of
// the row-per-value tables Figures 5–8 print. Two-axis sweeps render as
// response-surface heatmaps instead (SweepHeatmap).
func SweepFigure(res *exp.SweepResult) string {
	if res.Spec.Axis2 != "" {
		return SweepHeatmap(res)
	}
	return TableLines(res.Table, sweepSubtitle(res))
}

// sweepSubtitle builds the shared sweep-figure subtitle: spec name, the
// table note, and the fault-plan summary when one is armed.
func sweepSubtitle(res *exp.SweepResult) string {
	sub := res.Spec.Name
	if t := res.Table; t.Note != "" {
		sub = fmt.Sprintf("%s · %s", res.Spec.Name, t.Note)
	}
	if res.Spec.Faults != nil {
		sub = fmt.Sprintf("%s · faults: %s", sub, res.Spec.Faults.Summary())
	}
	return sub
}

// SweepHeatmap renders a two-axis sweep (a response surface) as
// small-multiple heat panels: one panel per method×pattern column,
// Values down the side, Values2 along the bottom, all panels on one
// shared color scale. Cells whose mean reaches 98% of the row's
// hardware ceiling carry a dashed outline — the surface's counterpart
// of the line figures' dashed max-bandwidth reference.
func SweepHeatmap(res *exp.SweepResult) string {
	s, t := res.Spec, res.Table
	c := &Heatmap{
		Title:    fmt.Sprintf("%s — %s", t.ID, t.Title),
		Subtitle: sweepSubtitle(res),
		XLabel:   s.Axis2,
		YLabel:   s.Axis,
		ZLabel:   "MB/s",
	}
	for _, v := range s.Values {
		c.YCats = append(c.YCats, fmt.Sprintf("%d", v))
	}
	for _, v := range s.Values2 {
		c.XCats = append(c.XCats, fmt.Sprintf("%d", v))
	}
	nx := len(s.Values2)
	for ci, col := range t.Cols {
		if col == "max-bw" {
			continue
		}
		p := HeatPanel{Label: col}
		for yi := range s.Values {
			zrow := make([]float64, nx)
			mrow := make([]bool, nx)
			for xi := 0; xi < nx; xi++ {
				row := t.Cells[yi*nx+xi]
				zrow[xi] = row[ci].Mean
				if ceiling := row[len(row)-1].Mean; ceiling > 0 && row[ci].Mean >= 0.98*ceiling {
					mrow[xi] = true
				}
			}
			p.Z = append(p.Z, zrow)
			p.Mark = append(p.Mark, mrow)
		}
		c.Panels = append(c.Panels, p)
	}
	return c.SVG()
}

// SweepTimeFigure renders a sweep's time-domain companion view: for a
// degradation sweep (per-cell completion times present), mean
// completion time per cell — under fault injection, recovery (retries,
// backoff, resend timeouts, straggler windows) stretches completion
// time even where throughput curves flatten. For a workload sweep
// (per-cell request-latency statistics present), p50 and p99 request
// latency per cell — open-arrival runs are latency studies, not
// bandwidth studies. Returns "" when the result carries neither.
func SweepTimeFigure(res *exp.SweepResult) string {
	if res.CellTime == nil {
		return sweepLatencyFigure(res)
	}
	t := res.Table
	sub := fmt.Sprintf("%s · completion time under faults", res.Spec.Name)
	if res.Spec.Faults != nil {
		sub = fmt.Sprintf("%s · faults: %s", sub, res.Spec.Faults.Summary())
	}
	c := &LineChart{
		Title:      fmt.Sprintf("%s — %s (completion time)", t.ID, t.Title),
		Subtitle:   sub,
		XLabel:     t.RowLabel,
		YLabel:     "completion time (s)",
		Categories: t.Rows,
	}
	for ci, col := range t.Cols {
		if col == "max-bw" {
			continue // a bandwidth ceiling has no time counterpart
		}
		se := XYSeries{Label: col}
		for vi := range t.Rows {
			se.Y = append(se.Y, res.CellTime[vi][ci].Mean)
		}
		c.Series = append(c.Series, se)
	}
	return c.SVG()
}

// sweepLatencyFigure renders a workload sweep's request-latency view:
// one p50 line (solid) and one p99 line (dashed) per method×pattern
// column, in milliseconds. Returns "" when the table carries no
// latency grid.
func sweepLatencyFigure(res *exp.SweepResult) string {
	t := res.Table
	if t.Latency == nil {
		return ""
	}
	c := &LineChart{
		Title:      fmt.Sprintf("%s — %s (request latency)", t.ID, t.Title),
		Subtitle:   fmt.Sprintf("%s · per-request latency percentiles", res.Spec.Name),
		XLabel:     t.RowLabel,
		YLabel:     "request latency (ms)",
		Categories: t.Rows,
	}
	for ci, col := range t.Cols {
		if ci >= len(t.Latency[0]) {
			continue // trailing max-bw: a ceiling has no latency counterpart
		}
		p50 := XYSeries{Label: col + " p50"}
		p99 := XYSeries{Label: col + " p99", Dash: true}
		for vi := range t.Rows {
			p50.Y = append(p50.Y, t.Latency[vi][ci].P50*1e3)
			p99.Y = append(p99.Y, t.Latency[vi][ci].P99*1e3)
		}
		c.Series = append(c.Series, p50, p99)
	}
	return c.SVG()
}

// TableLines renders a sweep-shaped table (numeric axis values as rows,
// method×pattern columns, optional trailing max-bw ceiling) as a line
// figure. SweepFigure wraps it when the spec is at hand.
func TableLines(t *exp.Table, subtitle string) string {
	c := &LineChart{
		Title:      fmt.Sprintf("%s — %s", t.ID, t.Title),
		Subtitle:   subtitle,
		XLabel:     t.RowLabel,
		YLabel:     "throughput (MB/s)",
		Categories: t.Rows,
	}
	if subtitle == "" && t.Note != "" {
		c.Subtitle = t.Note
	}
	for ci, col := range t.Cols {
		se := XYSeries{Label: col}
		if col == "max-bw" {
			se.Label = "max bandwidth"
			se.Gray, se.Dash = true, true
		}
		for vi := range t.Rows {
			se.Y = append(se.Y, t.Cells[vi][ci].Mean)
		}
		c.Series = append(c.Series, se)
	}
	return c.SVG()
}

// FigureSVG renders a table in its natural figure form: grouped bars
// for the pattern grids (Figures 3–4, row label "pattern"), a line
// figure for the numeric-axis machine-shape sweeps (Figures 5–8).
func FigureSVG(t *exp.Table) string {
	if t.RowLabel == "pattern" {
		return TableBars(t)
	}
	return TableLines(t, "")
}

// TableBars renders a pattern-grid table (Figures 3–4: rows are access
// patterns, columns are file systems) as grouped bars. Any trailing
// max-bw column is dropped — a ceiling is a reference line, not a bar.
func TableBars(t *exp.Table) string {
	c := &GroupedBars{
		Title:      fmt.Sprintf("%s — %s", t.ID, t.Title),
		Subtitle:   t.Note,
		XLabel:     t.RowLabel,
		YLabel:     "throughput (MB/s)",
		Categories: t.Rows,
	}
	for ci, col := range t.Cols {
		if col == "max-bw" {
			continue
		}
		se := BarSeries{Label: col}
		for vi := range t.Rows {
			se.Y = append(se.Y, t.Cells[vi][ci].Mean)
		}
		c.Series = append(c.Series, se)
	}
	return c.SVG()
}

// UtilizationTimeline renders a traced run's per-disk busy intervals as
// a Gantt-style timeline — the picture behind the paper's mechanism
// claim: under disk-directed I/O the tracks are near-solid (disks
// continuously busy on double-buffered, schedule-ordered transfers);
// under traditional caching they are striped with idle gaps between
// cache misses. The subtitle carries the mean utilization so the claim
// is checkable at a glance.
func UtilizationTimeline(rec *trace.Recorder, title string) string {
	horizon := rec.End()
	tls := rec.DiskTimelines(horizon)
	var mean float64
	for _, tl := range tls {
		mean += tl.Util
	}
	if len(tls) > 0 {
		mean /= float64(len(tls))
	}
	c := &Timeline{
		Title: title,
		Subtitle: fmt.Sprintf("mean disk utilization %.0f%% over %.1f ms",
			mean*100, float64(horizon)/1e6),
		Horizon: float64(horizon) / 1e9,
	}
	for _, tl := range tls {
		row := TimelineRow{Label: tl.Name, Util: tl.Util}
		for _, iv := range tl.Busy {
			row.Spans = append(row.Spans, Span{Start: float64(iv.Start) / 1e9, End: float64(iv.End) / 1e9})
		}
		c.Rows = append(c.Rows, row)
	}
	return c.SVG()
}
