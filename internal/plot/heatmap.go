package plot

// heatmap.go renders response surfaces: a two-axis sweep's value grid
// as small-multiple heat panels, one per method×pattern, on a shared
// color scale so panels compare directly. Like every chart here the
// output is deterministic — the color ramp is computed at fixed
// precision — so surfaces are golden-testable and diff cleanly.

import (
	"fmt"
	"math"
)

// Heat cell geometry.
const (
	heatCellW = 52.0
	heatCellH = 26.0
	heatGap   = 26.0 // between panels
	rampSteps = 6
	rampStepW = 22.0
	rampStepH = 10.0
)

// heatColor maps t in [0, 1] to the sequential light→dark ramp
// (single-hue blue: magnitude reads as darkness, not as a hue change).
// Channels interpolate in sRGB and round to integers, so the palette is
// a fixed, finite set of colors.
func heatColor(t float64) string {
	if t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	lo := [3]float64{0xf2, 0xf6, 0xfb}
	hi := [3]float64{0x14, 0x3a, 0x68}
	var c [3]int
	for i := range c {
		c[i] = int(math.Round(lo[i] + t*(hi[i]-lo[i])))
	}
	return fmt.Sprintf("#%02x%02x%02x", c[0], c[1], c[2])
}

// heatInk returns the annotation ink for a cell of ramp position t:
// primary ink on light cells, surface white on dark ones.
func heatInk(t float64) string {
	if t > 0.55 {
		return surfaceColor
	}
	return inkPrimary
}

// rectOutline draws an unfilled rectangle (the svg rect helper is
// fill-only).
func (s *svg) rectOutline(x, y, w, h float64, stroke string, width float64, dash string) {
	fmt.Fprintf(&s.b, `<rect x="%s" y="%s" width="%s" height="%s" fill="none" stroke="%s" stroke-width="%s"`,
		num(x), num(y), num(w), num(h), stroke, num(width))
	if dash != "" {
		fmt.Fprintf(&s.b, ` stroke-dasharray="%s"`, dash)
	}
	s.b.WriteString("/>\n")
}

// HeatPanel is one small-multiple of a heatmap: a Z value grid indexed
// [row][col] (rows pair with the Heatmap's YCats, cols with XCats), and
// an optional Mark grid flagging cells to outline — the sweep figures
// mark cells at the hardware ceiling.
type HeatPanel struct {
	Label string
	Z     [][]float64
	Mark  [][]bool
}

// Heatmap renders YCats × XCats value grids as heat panels side by
// side on one shared [0, max] color scale with per-cell annotations
// and a discrete ramp legend.
type Heatmap struct {
	Title, Subtitle string
	XLabel, YLabel  string
	XCats, YCats    []string
	Panels          []HeatPanel
	// ZLabel names the cell value in the legend ("MB/s").
	ZLabel string
	W, H   float64 // 0 auto-sizes to the grid
}

// SVG renders the heatmap.
func (c *Heatmap) SVG() string {
	nx, ny, np := len(c.XCats), len(c.YCats), len(c.Panels)
	panelW := float64(nx) * heatCellW
	w := c.W
	if w == 0 {
		w = marginLeft + float64(np)*panelW + float64(np-1)*heatGap + marginRight
		if w < 480 {
			w = 480
		}
	}
	top := 46.0
	if c.Subtitle != "" {
		top += 16
	}
	top += 18 // panel label row
	h := c.H
	if h == 0 {
		h = top + float64(ny)*heatCellH + 64
	}

	// Shared scale over every panel.
	var zmax float64
	for _, p := range c.Panels {
		for _, row := range p.Z {
			for _, v := range row {
				if v > zmax {
					zmax = v
				}
			}
		}
	}
	annot := func(v float64) string {
		if zmax >= 100 {
			return fmt.Sprintf("%.0f", v)
		}
		return fmt.Sprintf("%.1f", v)
	}

	s := newSVG(w, h)
	s.text(marginLeft, 20, c.Title, "start", titleSize, inkPrimary, 0)
	if c.Subtitle != "" {
		s.text(marginLeft, 38, c.Subtitle, "start", subSize, inkSecondary, 0)
	}

	gridB := top + float64(ny)*heatCellH
	for pi, p := range c.Panels {
		px := marginLeft + float64(pi)*(panelW+heatGap)
		s.text(px+panelW/2, top-6, p.Label, "middle", labelSize, inkPrimary, 0)
		for yi := 0; yi < ny; yi++ {
			y := top + float64(yi)*heatCellH
			if pi == 0 {
				s.text(px-6, y+heatCellH/2+3.5, c.YCats[yi], "end", tickSize, inkSecondary, 0)
			}
			for xi := 0; xi < nx; xi++ {
				x := px + float64(xi)*heatCellW
				var v float64
				if yi < len(p.Z) && xi < len(p.Z[yi]) {
					v = p.Z[yi][xi]
				}
				t := 0.0
				if zmax > 0 {
					t = v / zmax
				}
				s.groupStart()
				s.tooltip(fmt.Sprintf("%s @ %s×%s: %.2f", p.Label, c.YCats[yi], c.XCats[xi], v))
				s.rect(x, y, heatCellW-1, heatCellH-1, heatColor(t), 0)
				s.text(x+(heatCellW-1)/2, y+heatCellH/2+3, annot(v), "middle", tickSize, heatInk(t), 0)
				if yi < len(p.Mark) && xi < len(p.Mark[yi]) && p.Mark[yi][xi] {
					// At the hardware ceiling: dashed inset outline.
					s.rectOutline(x+1.5, y+1.5, heatCellW-4, heatCellH-4, heatInk(t), 1, "3 2")
				}
				s.groupEnd()
			}
		}
		for xi := 0; xi < nx; xi++ {
			x := px + float64(xi)*heatCellW + (heatCellW-1)/2
			s.text(x, gridB+14, c.XCats[xi], "middle", tickSize, inkSecondary, 0)
		}
	}
	if c.XLabel != "" {
		s.text((marginLeft+w-marginRight)/2, gridB+30, c.XLabel, "middle", labelSize, inkSecondary, 0)
	}
	if c.YLabel != "" {
		s.text(16, top+float64(ny)*heatCellH/2, c.YLabel, "middle", labelSize, inkSecondary, -90)
	}

	// Discrete ramp legend: rampSteps swatches from 0 to the shared max.
	ly := h - 20
	lx := marginLeft
	for i := 0; i < rampSteps; i++ {
		t := (float64(i) + 0.5) / rampSteps
		s.rect(lx+float64(i)*rampStepW, ly-rampStepH, rampStepW-1, rampStepH, heatColor(t), 0)
	}
	s.text(lx, ly+12, "0", "start", tickSize, inkSecondary, 0)
	label := annot(zmax)
	if c.ZLabel != "" {
		label += " " + c.ZLabel
	}
	s.text(lx+rampSteps*rampStepW-1, ly+12, label, "end", tickSize, inkSecondary, 0)
	s.text(lx+rampSteps*rampStepW+10, ly-1, "shared scale; dashed = at hardware ceiling", "start", tickSize, inkSecondary, 0)
	return s.String()
}
