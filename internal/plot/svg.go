// Package plot renders the repository's figures as standalone SVG with
// no dependency beyond the standard library: line charts for the
// machine-shape sweeps (paper Figures 5–8 and the extended presets),
// grouped bars for the pattern grids (Figures 3–4), and Gantt-style
// disk-utilization timelines over event traces — the picture behind the
// paper's "disk-directed I/O keeps the disks busy" claim.
//
// Output is deterministic: fixed-precision coordinates, no timestamps,
// no randomness — identical inputs yield byte-identical SVG, so figures
// are golden-testable and diff cleanly in CI artifacts.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// The categorical palette (slots assigned in fixed order, never
// cycled), text inks, and surface follow the validated reference
// palette of the data-viz design method: adjacent-pair CVD ΔE ≥ 8,
// normal-vision ΔE ≥ 15 in this order.
var seriesColors = [...]string{
	"#2a78d6", // blue
	"#eb6834", // orange
	"#1baf7a", // aqua
	"#eda100", // yellow
	"#e87ba4", // magenta
	"#008300", // green
	"#4a3aa7", // violet
	"#e34948", // red
}

const (
	surfaceColor = "#fcfcfb"
	inkPrimary   = "#0b0b0b"
	inkSecondary = "#52514e"
	gridColor    = "#e5e4e0"
	ceilingColor = "#8a8984" // hardware-ceiling reference line
	fontFamily   = "ui-sans-serif,system-ui,'Helvetica Neue',Arial,sans-serif"
)

// seriesColor returns the categorical slot for series i; past the 8
// validated slots callers should have folded or faceted, but rather
// than invent hues we reuse the wheel with a dash pattern (see
// LineChart) so identity never rests on color alone.
func seriesColor(i int) string { return seriesColors[i%len(seriesColors)] }

// svg accumulates SVG markup with fixed-precision coordinates.
type svg struct {
	b    strings.Builder
	w, h float64
}

func newSVG(w, h float64) *svg {
	s := &svg{w: w, h: h}
	fmt.Fprintf(&s.b, `<svg xmlns="http://www.w3.org/2000/svg" viewBox="0 0 %s %s" font-family="%s">`,
		num(w), num(h), fontFamily)
	s.b.WriteByte('\n')
	fmt.Fprintf(&s.b, `<rect width="%s" height="%s" fill="%s"/>`, num(w), num(h), surfaceColor)
	s.b.WriteByte('\n')
	return s
}

// num renders a coordinate with at most two decimals, trimming
// trailing zeros ("12", "12.5", "12.25") for compact, stable output.
func num(v float64) string {
	s := fmt.Sprintf("%.2f", v)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if s == "-0" {
		s = "0"
	}
	return s
}

func (s *svg) line(x1, y1, x2, y2 float64, stroke string, width float64, dash string) {
	fmt.Fprintf(&s.b, `<line x1="%s" y1="%s" x2="%s" y2="%s" stroke="%s" stroke-width="%s"`,
		num(x1), num(y1), num(x2), num(y2), stroke, num(width))
	if dash != "" {
		fmt.Fprintf(&s.b, ` stroke-dasharray="%s"`, dash)
	}
	s.b.WriteString("/>\n")
}

func (s *svg) rect(x, y, w, h float64, fill string, rx float64) {
	fmt.Fprintf(&s.b, `<rect x="%s" y="%s" width="%s" height="%s" fill="%s"`,
		num(x), num(y), num(w), num(h), fill)
	if rx > 0 {
		fmt.Fprintf(&s.b, ` rx="%s"`, num(rx))
	}
	s.b.WriteString("/>\n")
}

func (s *svg) circle(x, y, r float64, fill string) {
	fmt.Fprintf(&s.b, `<circle cx="%s" cy="%s" r="%s" fill="%s" stroke="%s" stroke-width="1"/>`,
		num(x), num(y), num(r), fill, surfaceColor)
	s.b.WriteByte('\n')
}

func (s *svg) polyline(pts []point, stroke string, width float64, dash string) {
	if len(pts) == 0 {
		return
	}
	s.b.WriteString(`<polyline points="`)
	for i, p := range pts {
		if i > 0 {
			s.b.WriteByte(' ')
		}
		s.b.WriteString(num(p.x))
		s.b.WriteByte(',')
		s.b.WriteString(num(p.y))
	}
	fmt.Fprintf(&s.b, `" fill="none" stroke="%s" stroke-width="%s" stroke-linejoin="round" stroke-linecap="round"`,
		stroke, num(width))
	if dash != "" {
		fmt.Fprintf(&s.b, ` stroke-dasharray="%s"`, dash)
	}
	s.b.WriteString("/>\n")
}

// text draws s at (x, y). anchor is "start", "middle" or "end"; size in
// px; fill an ink color. rotate, if nonzero, rotates about (x, y).
func (s *svg) text(x, y float64, str, anchor string, size float64, fill string, rotate float64) {
	fmt.Fprintf(&s.b, `<text x="%s" y="%s" text-anchor="%s" font-size="%s" fill="%s"`,
		num(x), num(y), anchor, num(size), fill)
	if rotate != 0 {
		fmt.Fprintf(&s.b, ` transform="rotate(%s %s %s)"`, num(rotate), num(x), num(y))
	}
	s.b.WriteByte('>')
	s.b.WriteString(escape(str))
	s.b.WriteString("</text>\n")
}

// title adds a hover tooltip to the previously opened element scope by
// emitting a <title> child inside a <g> wrapper.
func (s *svg) tooltip(str string) {
	fmt.Fprintf(&s.b, "<title>%s</title>\n", escape(str))
}

func (s *svg) groupStart() { s.b.WriteString("<g>\n") }
func (s *svg) groupEnd()   { s.b.WriteString("</g>\n") }

func (s *svg) String() string {
	return s.b.String() + "</svg>\n"
}

var xmlEscaper = strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")

func escape(str string) string { return xmlEscaper.Replace(str) }

type point struct{ x, y float64 }

// niceTicks returns 4–6 "nice" tick values covering [0, max] (charts in
// this package are magnitude plots and always anchor at zero).
func niceTicks(max float64) []float64 {
	if max <= 0 {
		return []float64{0, 1}
	}
	rawStep := max / 4.5
	mag := math.Pow(10, math.Floor(math.Log10(rawStep)))
	var step float64
	switch norm := rawStep / mag; {
	case norm <= 1:
		step = mag
	case norm <= 2:
		step = 2 * mag
	case norm <= 5:
		step = 5 * mag
	default:
		step = 10 * mag
	}
	var ticks []float64
	for v := 0.0; v <= max+step/1e6; v += step {
		ticks = append(ticks, v)
	}
	return ticks
}

// tickLabel renders a tick value compactly ("0", "2.5", "1000").
func tickLabel(v float64) string {
	if v == math.Trunc(v) {
		return fmt.Sprintf("%.0f", v)
	}
	return strings.TrimRight(fmt.Sprintf("%.2f", v), "0")
}
