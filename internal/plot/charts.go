package plot

import (
	"fmt"
)

// Chart geometry shared by all forms.
const (
	marginLeft   = 58.0
	marginRight  = 18.0
	titleSize    = 14.0
	subSize      = 11.0
	labelSize    = 11.0
	tickSize     = 10.0
	legendSize   = 11.0
	legendSwatch = 10.0
)

// XYSeries is one named line: Y[i] is the value at category i.
type XYSeries struct {
	Label string
	Y     []float64
	// Dash, if set, renders the line dashed — used for reference lines
	// (hardware ceilings) and to keep identity legible past the eight
	// validated palette slots.
	Dash bool
	// Gray renders the series in the recessive reference ink instead of
	// a categorical slot (it does not consume a slot).
	Gray bool
}

// LineChart plots one or more series over a shared ordinal x axis
// (sweep axis values are ordinal steps — 1, 2, 4, … — so equal spacing,
// not a linear scale, matches how the paper's figures read).
type LineChart struct {
	Title, Subtitle string
	XLabel, YLabel  string
	Categories      []string // x positions, in order
	Series          []XYSeries
	W, H            float64 // 0 defaults to 720×440
}

// SVG renders the chart.
func (c *LineChart) SVG() string {
	w, h := c.W, c.H
	if w == 0 {
		w = 720
	}
	if h == 0 {
		h = 440
	}
	s := newSVG(w, h)
	top := headerAndLegend(s, w, c.Title, c.Subtitle, legendEntries(c.Series))
	bottom := h - 46
	plotL, plotR := marginLeft, w-marginRight
	plotT, plotB := top, bottom

	// y scale over [0, max].
	var ymax float64
	for _, se := range c.Series {
		for _, v := range se.Y {
			if v > ymax {
				ymax = v
			}
		}
	}
	ticks := niceTicks(ymax)
	ymax = ticks[len(ticks)-1]
	yAt := func(v float64) float64 { return plotB - (v/ymax)*(plotB-plotT) }
	xAt := func(i int) float64 {
		if len(c.Categories) == 1 {
			return (plotL + plotR) / 2
		}
		return plotL + float64(i)/float64(len(c.Categories)-1)*(plotR-plotL)
	}

	// Recessive grid + y ticks.
	for _, t := range ticks {
		y := yAt(t)
		s.line(plotL, y, plotR, y, gridColor, 1, "")
		s.text(plotL-6, y+3.5, tickLabel(t), "end", tickSize, inkSecondary, 0)
	}
	// x ticks.
	for i, cat := range c.Categories {
		x := xAt(i)
		s.line(x, plotB, x, plotB+4, gridColor, 1, "")
		s.text(x, plotB+16, cat, "middle", tickSize, inkSecondary, 0)
	}
	axisLabels(s, w, h, plotT, plotB, c.XLabel, c.YLabel)

	// Series: 2px lines, ≥8px markers, hover tooltips per point.
	slot := 0
	for _, se := range c.Series {
		color := ceilingColor
		dash := ""
		if se.Dash {
			dash = "5 4"
		}
		if !se.Gray {
			color = seriesColor(slot)
			if slot >= len(seriesColors) {
				dash = "5 4"
			}
			slot++
		}
		var pts []point
		for i, v := range se.Y {
			if i >= len(c.Categories) {
				break
			}
			pts = append(pts, point{xAt(i), yAt(v)})
		}
		s.polyline(pts, color, 2, dash)
		if !se.Gray {
			for i, p := range pts {
				s.groupStart()
				s.tooltip(fmt.Sprintf("%s @ %s: %.2f", se.Label, c.Categories[i], se.Y[i]))
				s.circle(p.x, p.y, 4, color)
				s.groupEnd()
			}
		}
	}
	return s.String()
}

// BarSeries is one named bar group member: Y[i] is its value in group i.
type BarSeries struct {
	Label string
	Y     []float64
}

// GroupedBars plots categories × series as grouped bars (the shape of
// the paper's Figure 3/4 pattern grids: one group per access pattern,
// one bar per file system).
type GroupedBars struct {
	Title, Subtitle string
	XLabel, YLabel  string
	Categories      []string
	Series          []BarSeries
	W, H            float64 // 0 auto-sizes W to the category count
}

// SVG renders the chart.
func (c *GroupedBars) SVG() string {
	w, h := c.W, c.H
	if w == 0 {
		per := float64(len(c.Series))*12 + 14
		w = marginLeft + marginRight + per*float64(len(c.Categories))
		if w < 720 {
			w = 720
		}
	}
	if h == 0 {
		h = 440
	}
	s := newSVG(w, h)
	entries := make([]legendEntry, len(c.Series))
	for i, se := range c.Series {
		entries[i] = legendEntry{se.Label, seriesColor(i), false}
	}
	top := headerAndLegend(s, w, c.Title, c.Subtitle, entries)
	bottom := h - 46
	plotL, plotR := marginLeft, w-marginRight
	plotT, plotB := top, bottom

	var ymax float64
	for _, se := range c.Series {
		for _, v := range se.Y {
			if v > ymax {
				ymax = v
			}
		}
	}
	ticks := niceTicks(ymax)
	ymax = ticks[len(ticks)-1]
	yAt := func(v float64) float64 { return plotB - (v/ymax)*(plotB-plotT) }

	for _, t := range ticks {
		y := yAt(t)
		s.line(plotL, y, plotR, y, gridColor, 1, "")
		s.text(plotL-6, y+3.5, tickLabel(t), "end", tickSize, inkSecondary, 0)
	}
	axisLabels(s, w, h, plotT, plotB, c.XLabel, c.YLabel)

	groupW := (plotR - plotL) / float64(len(c.Categories))
	// 2px surface gap between adjacent bars; bars fill the group minus
	// inter-group padding.
	pad := groupW * 0.2
	barW := (groupW - pad - 2*float64(len(c.Series)-1)) / float64(len(c.Series))
	for gi, cat := range c.Categories {
		gx := plotL + float64(gi)*groupW + pad/2
		for si, se := range c.Series {
			if gi >= len(se.Y) {
				continue
			}
			v := se.Y[gi]
			x := gx + float64(si)*(barW+2)
			y := yAt(v)
			s.groupStart()
			s.tooltip(fmt.Sprintf("%s / %s: %.2f", cat, se.Label, v))
			s.rect(x, y, barW, plotB-y, seriesColor(si), 2)
			s.groupEnd()
		}
		s.text(plotL+float64(gi)*groupW+groupW/2, plotB+16, cat, "middle", tickSize, inkSecondary, 0)
	}
	s.line(plotL, plotB, plotR, plotB, gridColor, 1, "")
	return s.String()
}

// Span is one busy interval on a timeline row, in seconds.
type Span struct {
	Start, End float64
}

// TimelineRow is one component's activity track.
type TimelineRow struct {
	Label string
	Spans []Span
	Util  float64 // busy fraction over the horizon, direct-labeled
}

// Timeline is a Gantt-style utilization chart: one track per component,
// filled where the component was busy. With every track the same entity
// kind (disks), the fill uses a single hue; the per-row utilization
// percentage is direct-labeled so the picture reads without measuring.
type Timeline struct {
	Title, Subtitle string
	XLabel          string
	Rows            []TimelineRow
	Horizon         float64 // x extent, seconds; 0 uses the max span end
	W, H            float64 // 0 defaults to 720 × fit-to-rows
}

// SVG renders the timeline.
func (c *Timeline) SVG() string {
	const rowH, rowGap = 16.0, 6.0
	w := c.W
	if w == 0 {
		w = 720
	}
	top := 46.0
	if c.Subtitle != "" {
		top += 16
	}
	h := c.H
	if h == 0 {
		h = top + float64(len(c.Rows))*(rowH+rowGap) + 42
	}
	horizon := c.Horizon
	if horizon == 0 {
		for _, r := range c.Rows {
			for _, sp := range r.Spans {
				if sp.End > horizon {
					horizon = sp.End
				}
			}
		}
	}
	if horizon == 0 {
		horizon = 1
	}
	s := newSVG(w, h)
	s.text(marginLeft, 20, c.Title, "start", titleSize, inkPrimary, 0)
	if c.Subtitle != "" {
		s.text(marginLeft, 38, c.Subtitle, "start", subSize, inkSecondary, 0)
	}
	plotL, plotR := marginLeft, w-marginRight-40 // room for util labels
	xAt := func(t float64) float64 { return plotL + (t/horizon)*(plotR-plotL) }

	// x grid in milliseconds.
	ticksMs := niceTicks(horizon * 1e3)
	plotB := h - 38
	for _, tm := range ticksMs {
		t := tm / 1e3
		if t > horizon {
			break
		}
		x := xAt(t)
		s.line(x, top-4, x, plotB, gridColor, 1, "")
		s.text(x, plotB+14, tickLabel(tm), "middle", tickSize, inkSecondary, 0)
	}
	xl := c.XLabel
	if xl == "" {
		xl = "time (ms)"
	}
	s.text((plotL+plotR)/2, h-8, xl, "middle", labelSize, inkSecondary, 0)

	for i, r := range c.Rows {
		y := top + float64(i)*(rowH+rowGap)
		s.text(plotL-6, y+rowH-4, r.Label, "end", tickSize, inkSecondary, 0)
		s.rect(plotL, y, plotR-plotL, rowH, gridColor, 2) // idle track
		s.groupStart()
		s.tooltip(fmt.Sprintf("%s: %.0f%% busy", r.Label, r.Util*100))
		for _, sp := range r.Spans {
			x0, x1 := xAt(sp.Start), xAt(sp.End)
			if x1-x0 < 0.5 {
				x1 = x0 + 0.5 // keep instantaneous service visible
			}
			s.rect(x0, y, x1-x0, rowH, seriesColors[0], 0)
		}
		s.groupEnd()
		s.text(plotR+6, y+rowH-4, fmt.Sprintf("%.0f%%", r.Util*100), "start", tickSize, inkPrimary, 0)
	}
	return s.String()
}

// legendEntry is one swatch + label.
type legendEntry struct {
	label string
	color string
	dash  bool
}

func legendEntries(series []XYSeries) []legendEntry {
	var out []legendEntry
	slot := 0
	for _, se := range series {
		e := legendEntry{label: se.Label, dash: se.Dash}
		if se.Gray {
			e.color = ceilingColor
			e.dash = true
		} else {
			e.color = seriesColor(slot)
			slot++
		}
		out = append(out, e)
	}
	return out
}

// headerAndLegend draws the title block and (for ≥ 2 entries) a legend
// row, returning the y where the plot area starts.
func headerAndLegend(s *svg, w float64, title, subtitle string, entries []legendEntry) float64 {
	s.text(marginLeft, 20, title, "start", titleSize, inkPrimary, 0)
	y := 28.0
	if subtitle != "" {
		s.text(marginLeft, 38, subtitle, "start", subSize, inkSecondary, 0)
		y = 46
	}
	if len(entries) >= 2 {
		x := marginLeft
		ly := y + 10
		for _, e := range entries {
			if e.dash {
				s.line(x, ly-3, x+legendSwatch+3, ly-3, e.color, 2, "4 3")
			} else {
				s.rect(x, ly-8, legendSwatch, legendSwatch, e.color, 2)
			}
			s.text(x+legendSwatch+6, ly, e.label, "start", legendSize, inkSecondary, 0)
			x += legendSwatch + 12 + 6.4*float64(len(e.label))
		}
		y = ly + 14
	}
	return y + 8
}

// axisLabels draws the x and y axis titles.
func axisLabels(s *svg, w, h, plotT, plotB float64, xLabel, yLabel string) {
	if xLabel != "" {
		s.text((marginLeft+w-marginRight)/2, h-8, xLabel, "middle", labelSize, inkSecondary, 0)
	}
	if yLabel != "" {
		s.text(16, (plotT+plotB)/2, yLabel, "middle", labelSize, inkSecondary, -90)
	}
}
