package plot

import (
	"strings"
	"testing"

	"ddio/internal/exp"
	"ddio/internal/stats"
)

// sampleSurface builds a small synthetic two-axis SweepResult (CPs ×
// disks, two panels) with the top-right cells at the hardware ceiling.
func sampleSurface() *exp.SweepResult {
	spec := &exp.SweepSpec{
		Name: "sample-surface", ID: "figH",
		Title:    "throughput surface (sample)",
		Axis:     exp.AxisCPs,
		Values:   []int{1, 2, 4},
		Axis2:    exp.AxisDisks,
		Values2:  []int{2, 4},
		Layout:   "contiguous",
		Methods:  []string{"ddio", "tc"},
		Patterns: []string{"rb"},
	}
	t := &exp.Table{
		ID: "figH", Title: spec.Title, RowLabel: "CPs×disks",
		Cols: []string{"DDIO rb", "TC rb", "max-bw"},
	}
	// Row order matches rowPoints(): first axis outermost.
	means := [][]float64{
		{2.1, 1.8, 4.6}, // 1×2
		{4.0, 3.1, 9.3}, // 1×4
		{2.3, 1.9, 4.6}, // 2×2
		{4.4, 3.4, 9.3}, // 2×4
		{4.6, 2.0, 4.6}, // 4×2 — DDIO at the ceiling (dashed mark)
		{9.2, 3.6, 9.3}, // 4×4 — DDIO at the ceiling
	}
	for i, row := range means {
		t.Rows = append(t.Rows, []string{"1×2", "1×4", "2×2", "2×4", "4×2", "4×4"}[i])
		cells := make([]exp.Cell, len(row))
		for j, v := range row {
			cells[j] = exp.Cell{Mean: v}
		}
		t.Cells = append(t.Cells, cells)
	}
	cs := make([][]stats.Summary, len(t.Rows))
	for i := range cs {
		cs[i] = make([]stats.Summary, len(t.Cols)-1)
		for j := range cs[i] {
			cs[i][j] = stats.Summary{N: 1, Mean: means[i][j], Min: means[i][j], Max: means[i][j]}
		}
	}
	return &exp.SweepResult{Spec: spec, Table: t, CellStats: cs}
}

func TestSweepHeatmapGolden(t *testing.T) {
	checkGolden(t, "sweep_heatmap.svg", SweepFigure(sampleSurface()))
}

// TestSweepHeatmapShape pins the structure: SweepFigure dispatches
// two-axis results to the heatmap, one panel per method×pattern (no
// max-bw panel), ny×nx annotated cells each, dashed outlines only on
// the at-ceiling cells, and a shared ramp legend.
func TestSweepHeatmapShape(t *testing.T) {
	res := sampleSurface()
	svg := SweepFigure(res)
	if !strings.Contains(svg, "<svg") || !strings.HasSuffix(svg, "</svg>\n") {
		t.Fatal("not an SVG document")
	}
	// 2 panels × (3×2 cells) filled rects + 6 ramp swatches + 2 dashed
	// ceiling outlines + the document background rect.
	if got := strings.Count(svg, "<rect"); got != 2*6+6+2+1 {
		t.Fatalf("%d rects, want %d (cells + ramp + marks + background)", got, 2*6+6+2+1)
	}
	if got := strings.Count(svg, `stroke-dasharray="3 2"`); got != 2 {
		t.Fatalf("%d dashed ceiling marks, want 2", got)
	}
	for _, want := range []string{"DDIO rb", "TC rb", "shared scale", "MB/s"} {
		if !strings.Contains(svg, want) {
			t.Fatalf("heatmap lacks %q", want)
		}
	}
	if strings.Contains(svg, "max-bw") {
		t.Fatal("heatmap renders the max-bw column as a panel")
	}
	// Annotations: cell values appear at one decimal (zmax < 100).
	if !strings.Contains(svg, ">9.2<") || !strings.Contains(svg, ">1.8<") {
		t.Fatal("cell annotations missing")
	}
}

func TestHeatColorRamp(t *testing.T) {
	if c := heatColor(0); c != "#f2f6fb" {
		t.Fatalf("ramp start %s", c)
	}
	if c := heatColor(1); c != "#143a68" {
		t.Fatalf("ramp end %s", c)
	}
	if heatColor(-5) != heatColor(0) || heatColor(7) != heatColor(1) {
		t.Fatal("ramp does not clamp")
	}
	if heatInk(0.2) != inkPrimary || heatInk(0.9) != surfaceColor {
		t.Fatal("annotation ink does not flip on dark cells")
	}
}

// TestHeatmapDeterministic: repeated renders are byte-identical (the
// figure layer adds no state).
func TestHeatmapDeterministic(t *testing.T) {
	a := SweepFigure(sampleSurface())
	b := SweepFigure(sampleSurface())
	if a != b {
		t.Fatal("heatmap output differs between renders")
	}
}

// TestSweepLatencyFigure pins the workload sweep companion: a latency
// grid renders p50 (solid) and p99 (dashed) lines per column; without
// one SweepTimeFigure stays empty.
func TestSweepLatencyFigure(t *testing.T) {
	res := sampleSweep()
	if svg := SweepTimeFigure(res); svg != "" {
		t.Fatal("classic sweep got a time figure")
	}
	lat := make([][]stats.Summary, len(res.Table.Rows))
	for i := range lat {
		lat[i] = make([]stats.Summary, len(res.Table.Cols)-1)
		for j := range lat[i] {
			lat[i][j] = stats.Summary{N: 4, P50: 0.002 * float64(i+1), P90: 0.003 * float64(i+1), P99: 0.005 * float64(i+1)}
		}
	}
	res.Table.Latency = lat
	svg := SweepTimeFigure(res)
	if svg == "" {
		t.Fatal("workload sweep got no latency figure")
	}
	for _, want := range []string{"request latency (ms)", "DDIO ra p50", "DDIO ra p99", "(request latency)"} {
		if !strings.Contains(svg, want) {
			t.Fatalf("latency figure lacks %q", want)
		}
	}
	if strings.Contains(svg, "max-bw") || strings.Contains(svg, "max bandwidth") {
		t.Fatal("latency figure renders the ceiling column")
	}
}
