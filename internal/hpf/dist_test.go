package hpf

import (
	"testing"
	"testing/quick"
)

func TestDimOwnerLocalCount(t *testing.T) {
	cases := []struct {
		name string
		d    Dim
		// per index: owner, local
		owners []int
		locals []int
		counts []int // per proc
	}{
		{
			name:   "block even",
			d:      Dim{N: 8, P: 4, Kind: Block},
			owners: []int{0, 0, 1, 1, 2, 2, 3, 3},
			locals: []int{0, 1, 0, 1, 0, 1, 0, 1},
			counts: []int{2, 2, 2, 2},
		},
		{
			name:   "block uneven (HPF ceil)",
			d:      Dim{N: 10, P: 4, Kind: Block},
			owners: []int{0, 0, 0, 1, 1, 1, 2, 2, 2, 3},
			locals: []int{0, 1, 2, 0, 1, 2, 0, 1, 2, 0},
			counts: []int{3, 3, 3, 1},
		},
		{
			name:   "cyclic",
			d:      Dim{N: 7, P: 3, Kind: Cyclic},
			owners: []int{0, 1, 2, 0, 1, 2, 0},
			locals: []int{0, 0, 0, 1, 1, 1, 2},
			counts: []int{3, 2, 2},
		},
		{
			name:   "none",
			d:      Dim{N: 5, P: 1, Kind: None},
			owners: []int{0, 0, 0, 0, 0},
			locals: []int{0, 1, 2, 3, 4},
			counts: []int{5},
		},
	}
	for _, c := range cases {
		for i := 0; i < c.d.N; i++ {
			if got := c.d.Owner(i); got != c.owners[i] {
				t.Errorf("%s: Owner(%d) = %d, want %d", c.name, i, got, c.owners[i])
			}
			if got := c.d.Local(i); got != c.locals[i] {
				t.Errorf("%s: Local(%d) = %d, want %d", c.name, i, got, c.locals[i])
			}
		}
		for p := 0; p < c.d.P; p++ {
			if got := c.d.Count(p); got != c.counts[p] {
				t.Errorf("%s: Count(%d) = %d, want %d", c.name, p, got, c.counts[p])
			}
		}
	}
}

func TestDimRunLen(t *testing.T) {
	b := Dim{N: 10, P: 4, Kind: Block} // blockSize 3
	if b.RunLen(0) != 3 || b.RunLen(2) != 1 || b.RunLen(9) != 1 {
		t.Errorf("block runs: %d %d %d", b.RunLen(0), b.RunLen(2), b.RunLen(9))
	}
	c := Dim{N: 10, P: 3, Kind: Cyclic}
	if c.RunLen(4) != 1 {
		t.Errorf("cyclic run %d", c.RunLen(4))
	}
	c1 := Dim{N: 10, P: 1, Kind: Cyclic} // degenerate single proc
	if c1.RunLen(2) != 8 {
		t.Errorf("cyclic P=1 run %d", c1.RunLen(2))
	}
	n := Dim{N: 10, P: 1, Kind: None}
	if n.RunLen(3) != 7 {
		t.Errorf("none run %d", n.RunLen(3))
	}
}

// Property: every index has exactly one owner, locals are dense per
// owner, and counts sum to N — for all kinds, extents, and proc counts.
func TestQuickDimPartition(t *testing.T) {
	f := func(nRaw, pRaw uint8, kindSel uint8) bool {
		n := int(nRaw)%60 + 1
		p := int(pRaw)%8 + 1
		kind := DistKind(kindSel % 3)
		if kind == None {
			p = 1
		}
		d := Dim{N: n, P: p, Kind: kind}
		counts := make([]int, p)
		seenLocal := make([]map[int]bool, p)
		for i := range seenLocal {
			seenLocal[i] = map[int]bool{}
		}
		for i := 0; i < n; i++ {
			o := d.Owner(i)
			if o < 0 || o >= p {
				return false
			}
			l := d.Local(i)
			if seenLocal[o][l] {
				return false // local index collision
			}
			seenLocal[o][l] = true
			counts[o]++
		}
		total := 0
		for p2 := 0; p2 < p; p2++ {
			if counts[p2] != d.Count(p2) {
				return false
			}
			total += counts[p2]
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDimValidate(t *testing.T) {
	if err := (Dim{N: 0, P: 1, Kind: None}).validate("x"); err == nil {
		t.Error("zero extent accepted")
	}
	if err := (Dim{N: 4, P: 0, Kind: Block}).validate("x"); err == nil {
		t.Error("zero procs accepted")
	}
	if err := (Dim{N: 4, P: 2, Kind: None}).validate("x"); err == nil {
		t.Error("NONE with P>1 accepted")
	}
	if err := (Dim{N: 4, P: 2, Kind: Cyclic}).validate("x"); err != nil {
		t.Errorf("valid dim rejected: %v", err)
	}
}

func TestDistKindString(t *testing.T) {
	if None.String() != "NONE" || Block.String() != "BLOCK" || Cyclic.String() != "CYCLIC" {
		t.Fatal("kind names")
	}
}
