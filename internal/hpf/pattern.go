package hpf

import (
	"fmt"
	"sort"
	"strings"
)

// Pattern names an access pattern in the paper's shorthand: 'r' or 'w'
// followed by the distribution of each dimension — one letter for a
// vector ("rb"), two for a matrix, rows first ("rcb"), or 'a' for ALL
// ("ra"). Examples (Figure 2): rn, rb, rc, ra, rnb, rbb, rcb, rbc, rcc,
// rcn.
type Pattern struct {
	Name    string
	Write   bool
	All     bool
	TwoD    bool
	RowKind DistKind // meaningful when TwoD
	ColKind DistKind // the only distributed kind when !TwoD && !All
}

// ParsePattern parses a pattern name.
func ParsePattern(name string) (Pattern, error) {
	p := Pattern{Name: name}
	if len(name) < 2 || len(name) > 3 {
		return p, fmt.Errorf("hpf: bad pattern %q", name)
	}
	switch name[0] {
	case 'r':
	case 'w':
		p.Write = true
	default:
		return p, fmt.Errorf("hpf: pattern %q must start with r or w", name)
	}
	kind := func(c byte) (DistKind, error) {
		switch c {
		case 'n':
			return None, nil
		case 'b':
			return Block, nil
		case 'c':
			return Cyclic, nil
		}
		return 0, fmt.Errorf("hpf: bad distribution letter %q in %q", string(c), name)
	}
	switch len(name) {
	case 2:
		if name[1] == 'a' {
			if p.Write {
				return p, fmt.Errorf("hpf: pattern wa (all CPs write everything) is not defined")
			}
			p.All = true
			return p, nil
		}
		k, err := kind(name[1])
		if err != nil {
			return p, err
		}
		p.ColKind = k
		return p, nil
	case 3:
		rk, err := kind(name[1])
		if err != nil {
			return p, err
		}
		ck, err := kind(name[2])
		if err != nil {
			return p, err
		}
		p.TwoD = true
		p.RowKind = rk
		p.ColKind = ck
		return p, nil
	}
	return p, fmt.Errorf("hpf: bad pattern %q", name)
}

// MustPattern parses a pattern name, panicking on error (for tables of
// literals).
func MustPattern(name string) Pattern {
	p, err := ParsePattern(name)
	if err != nil {
		panic(err)
	}
	return p
}

// Decomp instantiates the pattern for a file of fileBytes bytes of
// recordSize-byte records distributed over ncp CPs. Matrix shapes and
// processor grids are chosen as the paper does: the matrix is made as
// square as possible (power-of-two rows), and a 2-D grid as square as
// possible, with NONE dimensions taking a single processor row/column.
func (p Pattern) Decomp(fileBytes int64, recordSize, ncp int) (*Decomp, error) {
	if fileBytes%int64(recordSize) != 0 {
		return nil, fmt.Errorf("hpf: file size %d not a multiple of record size %d", fileBytes, recordSize)
	}
	records := int(fileBytes / int64(recordSize))
	if p.All {
		return NewAll(records, recordSize, ncp)
	}
	if !p.TwoD {
		return New1D(records, p.ColKind, recordSize, ncp)
	}
	rows, cols, err := MatrixDims(records)
	if err != nil {
		return nil, err
	}
	pr, pc := GridDims(ncp, p.RowKind, p.ColKind)
	rd := Dim{N: rows, P: pr, Kind: p.RowKind}
	cd := Dim{N: cols, P: pc, Kind: p.ColKind}
	return New2D(rd, cd, recordSize, ncp)
}

// MatrixDims picks the matrix shape for a record count: the largest
// power-of-two divisor of records that does not exceed sqrt(records)
// becomes the row count (e.g. 1,310,720 records -> 1024×1280;
// 1280 -> 32×40). Falls back to the largest divisor <= sqrt.
func MatrixDims(records int) (rows, cols int, err error) {
	if records < 1 {
		return 0, 0, fmt.Errorf("hpf: no records")
	}
	best := 1
	for r := 1; r*r <= records; r *= 2 {
		if records%r == 0 {
			best = r
		}
	}
	for r := best; r*r <= records; r++ {
		if records%r == 0 && isPow2(r) {
			best = r
		}
	}
	if best == 1 {
		for r := 1; r*r <= records; r++ {
			if records%r == 0 {
				best = r
			}
		}
	}
	return best, records / best, nil
}

// GridDims splits ncp processors over the two dimensions: a NONE
// dimension gets one processor; two distributed dimensions split ncp as
// squarely as possible (power-of-two rows).
func GridDims(ncp int, rowKind, colKind DistKind) (pr, pc int) {
	switch {
	case rowKind == None && colKind == None:
		return 1, 1
	case rowKind == None:
		return 1, ncp
	case colKind == None:
		return ncp, 1
	}
	pr = 1
	for r := 1; r*r <= ncp; r *= 2 {
		if ncp%r == 0 {
			pr = r
		}
	}
	return pr, ncp / pr
}

func isPow2(x int) bool { return x > 0 && x&(x-1) == 0 }

// ReadPatterns returns the paper's Figure 3/4 read patterns in display
// order.
func ReadPatterns() []string {
	return []string{"ra", "rn", "rb", "rc", "rnb", "rbb", "rcb", "rbc", "rcc", "rcn"}
}

// WritePatterns returns the paper's Figure 3/4 write patterns in display
// order.
func WritePatterns() []string {
	return []string{"wn", "wb", "wc", "wnb", "wbb", "wcb", "wbc", "wcc", "wcn"}
}

// AllPatterns returns every pattern used in Figures 3 and 4.
func AllPatterns() []string {
	return append(ReadPatterns(), WritePatterns()...)
}

// SortPatterns sorts pattern names in the paper's display order (reads
// before writes, otherwise stable by the order of ReadPatterns /
// WritePatterns, unknown names last alphabetically).
func SortPatterns(names []string) {
	rank := map[string]int{}
	for i, n := range AllPatterns() {
		rank[n] = i
	}
	sort.SliceStable(names, func(i, j int) bool {
		ri, iok := rank[names[i]]
		rj, jok := rank[names[j]]
		switch {
		case iok && jok:
			return ri < rj
		case iok:
			return true
		case jok:
			return false
		default:
			return strings.Compare(names[i], names[j]) < 0
		}
	})
}
