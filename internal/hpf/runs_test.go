package hpf

import (
	"testing"
	"testing/quick"
)

// Property: runs over any sub-range exactly cover that range, target the
// right owners, and agree byte-for-byte with the chunk-derived memory
// mapping.
func TestQuickRunsCoverRange(t *testing.T) {
	f := func(rows, cols, rk, ck, recSel, gridSel uint8, offRaw, lenRaw uint16) bool {
		d := randomDecomp(rows, cols, rk, ck, recSel, gridSel)
		fb := d.FileBytes()
		off := int64(offRaw) % fb
		n := int64(lenRaw)%(fb-off) + 1
		runs := d.RunsInRange(off, n)
		pos := off
		for _, r := range runs {
			if r.FileOff != pos || r.Len <= 0 {
				return false // gap, overlap, or disorder
			}
			rec := int(r.FileOff) / d.RecordSize
			if d.Owner(rec) != r.CP {
				return false
			}
			wantMem := d.MemOffset(rec) + (r.FileOff - int64(rec)*int64(d.RecordSize))
			if r.MemOff != wantMem {
				return false
			}
			pos += r.Len
		}
		return pos == off+n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRunsCoalesceConsecutiveSameOwner(t *testing.T) {
	// BLOCK over 2 CPs: first half of the range is one run.
	d, _ := New1D(16, Block, 4, 2)
	runs := d.RunsInRange(0, 64)
	if len(runs) != 2 {
		t.Fatalf("runs %+v, want 2 coalesced runs", runs)
	}
	if runs[0].CP != 0 || runs[0].Len != 32 || runs[1].CP != 1 || runs[1].Len != 32 {
		t.Fatalf("runs %+v", runs)
	}
}

func TestRunsCyclicAlternate(t *testing.T) {
	d, _ := New1D(8, Cyclic, 4, 2)
	runs := d.RunsInRange(0, 32)
	if len(runs) != 8 {
		t.Fatalf("%d runs, want 8", len(runs))
	}
	for i, r := range runs {
		if r.CP != i%2 || r.Len != 4 {
			t.Fatalf("run %d: %+v", i, r)
		}
	}
}

func TestRunsRecordStraddlingRangeEdges(t *testing.T) {
	// 24-byte records; ask for a range that splits records at both ends.
	d, _ := New1D(4, Block, 24, 2)
	runs := d.RunsInRange(10, 50) // covers tail of rec0, rec1, head of rec2
	var total int64
	for _, r := range runs {
		total += r.Len
	}
	if total != 50 {
		t.Fatalf("runs cover %d bytes, want 50", total)
	}
	// First run starts mid-record: memory offset must carry the same
	// intra-record displacement.
	if runs[0].FileOff != 10 || runs[0].MemOff != 10 {
		t.Fatalf("first run %+v", runs[0])
	}
}

func TestRunsAllPatternFansOut(t *testing.T) {
	d, _ := NewAll(8, 4, 3)
	runs := d.RunsInRange(8, 16)
	if len(runs) != 3 {
		t.Fatalf("%d runs, want one per CP", len(runs))
	}
	for cp, r := range runs {
		if r.CP != cp || r.FileOff != 8 || r.MemOff != 8 || r.Len != 16 {
			t.Fatalf("run %+v", r)
		}
	}
}

func TestRunsClampToFileEnd(t *testing.T) {
	d, _ := New1D(4, Block, 8, 2)
	runs := d.RunsInRange(24, 100) // beyond EOF
	var total int64
	for _, r := range runs {
		total += r.Len
	}
	if total != 8 {
		t.Fatalf("runs past EOF cover %d bytes, want 8", total)
	}
}

func TestRunsEmptyRange(t *testing.T) {
	d, _ := New1D(4, Block, 8, 2)
	if runs := d.RunsInRange(8, 0); runs != nil {
		t.Fatalf("empty range returned %+v", runs)
	}
}
