package hpf

import (
	"strings"
	"testing"
)

func TestParsePatternValid(t *testing.T) {
	cases := []struct {
		name  string
		write bool
		all   bool
		twoD  bool
		rk    DistKind
		ck    DistKind
	}{
		{"ra", false, true, false, None, None},
		{"rn", false, false, false, None, None},
		{"rb", false, false, false, None, Block},
		{"rc", false, false, false, None, Cyclic},
		{"wb", true, false, false, None, Block},
		{"rnb", false, false, true, None, Block},
		{"rcb", false, false, true, Cyclic, Block},
		{"rbc", false, false, true, Block, Cyclic},
		{"wcn", true, false, true, Cyclic, None},
	}
	for _, c := range cases {
		p, err := ParsePattern(c.name)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if p.Write != c.write || p.All != c.all || p.TwoD != c.twoD {
			t.Errorf("%s: %+v", c.name, p)
		}
		if c.twoD && (p.RowKind != c.rk || p.ColKind != c.ck) {
			t.Errorf("%s kinds: %+v", c.name, p)
		}
		if !c.twoD && !c.all && p.ColKind != c.ck {
			t.Errorf("%s col kind: %+v", c.name, p)
		}
	}
}

func TestParsePatternErrors(t *testing.T) {
	for _, bad := range []string{"", "r", "x", "xb", "rz", "rbz", "rbcn", "wa"} {
		if _, err := ParsePattern(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}

func TestMustPatternPanicsOnBad(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	MustPattern("zz")
}

func TestMatrixDims(t *testing.T) {
	cases := []struct{ records, rows, cols int }{
		{64, 8, 8},
		{1280, 32, 40},        // 10 MB of 8 KB records
		{1310720, 1024, 1280}, // 10 MB of 8-byte records
		{100, 4, 25},          // largest pow2 divisor <= sqrt wins
		{7, 1, 7},             // prime
	}
	for _, c := range cases {
		rows, cols, err := MatrixDims(c.records)
		if err != nil {
			t.Fatal(err)
		}
		if rows != c.rows || cols != c.cols {
			t.Errorf("MatrixDims(%d) = %dx%d, want %dx%d", c.records, rows, cols, c.rows, c.cols)
		}
		if rows*cols != c.records {
			t.Errorf("MatrixDims(%d) loses records", c.records)
		}
	}
	if _, _, err := MatrixDims(0); err == nil {
		t.Error("zero records accepted")
	}
}

func TestGridDims(t *testing.T) {
	cases := []struct {
		ncp    int
		rk, ck DistKind
		pr, pc int
	}{
		{16, Block, Block, 4, 4},
		{16, None, Block, 1, 16},
		{16, Cyclic, None, 16, 1},
		{16, None, None, 1, 1},
		{8, Block, Cyclic, 2, 4},
		{1, Block, Block, 1, 1},
	}
	for _, c := range cases {
		pr, pc := GridDims(c.ncp, c.rk, c.ck)
		if pr != c.pr || pc != c.pc {
			t.Errorf("GridDims(%d,%v,%v) = %dx%d, want %dx%d", c.ncp, c.rk, c.ck, pr, pc, c.pr, c.pc)
		}
	}
}

func TestPatternDecompShapes(t *testing.T) {
	// 10 MB, 8 KB records, 16 CPs — the paper's standard setup.
	for _, name := range AllPatterns() {
		p := MustPattern(name)
		d, err := p.Decomp(10<<20, 8192, 16)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if d.FileBytes() != 10<<20 {
			t.Fatalf("%s: file bytes %d", name, d.FileBytes())
		}
		var total int64
		for cp := 0; cp < 16; cp++ {
			total += d.CPBytes(cp)
		}
		want := int64(10 << 20)
		if d.All {
			want *= 16
		}
		if total != want {
			t.Fatalf("%s: CP bytes total %d, want %d", name, total, want)
		}
	}
}

func TestPatternDecompBadSizes(t *testing.T) {
	p := MustPattern("rb")
	if _, err := p.Decomp(1000, 17, 4); err == nil {
		t.Error("non-divisible record size accepted")
	}
}

func TestPatternLists(t *testing.T) {
	if len(ReadPatterns()) != 10 || len(WritePatterns()) != 9 {
		t.Fatalf("pattern list sizes %d/%d", len(ReadPatterns()), len(WritePatterns()))
	}
	all := AllPatterns()
	if len(all) != 19 {
		t.Fatalf("AllPatterns %d", len(all))
	}
	seen := map[string]bool{}
	for _, n := range all {
		if seen[n] {
			t.Fatalf("duplicate pattern %s", n)
		}
		seen[n] = true
		if _, err := ParsePattern(n); err != nil {
			t.Fatalf("listed pattern %s does not parse: %v", n, err)
		}
	}
}

func TestSortPatterns(t *testing.T) {
	names := []string{"wc", "ra", "zz", "rb", "wn"}
	SortPatterns(names)
	want := "ra,rb,wn,wc,zz"
	if got := strings.Join(names, ","); got != want {
		t.Fatalf("sorted %s, want %s", got, want)
	}
}
