package hpf

import "testing"

// Figure 2 of the paper gives, for a 1x8 vector and an 8x8 matrix
// distributed over four processors, the chunk size (cs, in elements) and
// stride (s) of every pattern. These are the ground truth for the chunk
// generator. Record size 1 makes elements == bytes.

// fig2Decomp builds the decomposition exactly as the paper's figure does
// (2x2 grid for doubly-distributed matrices, 1x4 or 4x1 otherwise).
func fig2Decomp(t *testing.T, name string) *Decomp {
	t.Helper()
	p := MustPattern(name)
	var records int
	if p.TwoD {
		records = 64
	} else {
		records = 8
	}
	d, err := p.Decomp(int64(records), 1, 4)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return d
}

// chunkStats extracts the paper's cs (largest chunk) and the set of
// distinct strides between consecutive chunks of CP 0.
func chunkStats(d *Decomp) (cs int64, strides map[int64]bool) {
	strides = map[int64]bool{}
	chunks := d.Chunks(0)
	for i, c := range chunks {
		if c.Len > cs {
			cs = c.Len
		}
		if i > 0 {
			strides[c.FileOff-chunks[i-1].FileOff] = true
		}
	}
	return cs, strides
}

func TestFigure2Vector(t *testing.T) {
	cases := []struct {
		name    string
		cs      int64
		strides []int64
	}{
		{"rn", 8, nil},        // NONE: whole vector, one chunk
		{"rb", 2, nil},        // BLOCK: cs=2, single chunk per CP
		{"rc", 1, []int64{4}}, // CYCLIC: cs=1, s=4
	}
	for _, c := range cases {
		d := fig2Decomp(t, c.name)
		cs, strides := chunkStats(d)
		if cs != c.cs {
			t.Errorf("%s: cs = %d, want %d", c.name, cs, c.cs)
		}
		for _, s := range c.strides {
			if !strides[s] {
				t.Errorf("%s: missing stride %d (got %v)", c.name, s, strides)
			}
		}
	}
}

func TestFigure2Matrix(t *testing.T) {
	cases := []struct {
		name    string
		cs      int64
		strides []int64 // expected stride set of CP0 (empty = single chunk)
	}{
		{"rnn", 64, nil},           // whole matrix to CP 0
		{"rbn", 16, nil},           // two whole rows, contiguous
		{"rcn", 8, []int64{32}},    // every 4th row: cs=8, s=32
		{"rnb", 2, []int64{8}},     // cs=2, s=8
		{"rbb", 4, []int64{8}},     // cs=4, s=8
		{"rcb", 4, []int64{16}},    // cs=4, s=16
		{"rnc", 1, []int64{4}},     // == rc per row
		{"rbc", 1, []int64{2}},     // cs=1, s=2
		{"rcc", 1, []int64{2, 10}}, // cs=1, s=2 and 10 at row turns
	}
	for _, c := range cases {
		d := fig2Decomp(t, c.name)
		cs, strides := chunkStats(d)
		if cs != c.cs {
			t.Errorf("%s: cs = %d, want %d", c.name, cs, c.cs)
		}
		if len(c.strides) == 0 && len(strides) > 0 {
			// Merged into one chunk: no strides expected at all.
			t.Errorf("%s: expected a single chunk, got strides %v", c.name, strides)
		}
		for _, s := range c.strides {
			if !strides[s] {
				t.Errorf("%s: missing stride %d (got %v)", c.name, s, strides)
			}
		}
		if len(c.strides) > 0 && len(strides) != len(c.strides) {
			t.Errorf("%s: stride set %v, want %v", c.name, strides, c.strides)
		}
	}
}

// The paper notes rnn==rn, rnc==rc, rbn==rb for its configuration: the
// redundant 2-D forms must produce the same chunk lists as the 1-D ones.
func TestFigure2RedundantPatterns(t *testing.T) {
	pairs := [][2]string{{"rnn", "rn"}, {"rnc", "rc"}, {"rbn", "rb"}}
	for _, pair := range pairs {
		a := fig2Decomp(t, pair[0])
		// Build the 1-D equivalent over the matrix's record count.
		p := MustPattern(pair[1])
		b, err := p.Decomp(int64(a.NumRecords()), 1, 4)
		if err != nil {
			t.Fatal(err)
		}
		for cp := 0; cp < 4; cp++ {
			ca, cb := a.Chunks(cp), b.Chunks(cp)
			if len(ca) != len(cb) {
				t.Errorf("%s vs %s cp%d: %d vs %d chunks", pair[0], pair[1], cp, len(ca), len(cb))
				continue
			}
			for i := range ca {
				if ca[i] != cb[i] {
					t.Errorf("%s vs %s cp%d chunk %d: %+v vs %+v", pair[0], pair[1], cp, i, ca[i], cb[i])
				}
			}
		}
	}
}

func TestFigure2ALLPattern(t *testing.T) {
	d := fig2Decomp(t, "ra")
	for cp := 0; cp < 4; cp++ {
		chunks := d.Chunks(cp)
		if len(chunks) != 1 || chunks[0].Len != 8 || chunks[0].FileOff != 0 {
			t.Fatalf("ra cp%d chunks %+v", cp, chunks)
		}
	}
	if d.ActiveCPs() != 4 {
		t.Fatalf("ra active CPs %d", d.ActiveCPs())
	}
}
