package hpf

// Chunk is a maximal contiguous piece of the file owned by one CP,
// together with its location in that CP's memory buffer. Chunks are what
// a traditional file-system client must issue one request per (paper §2).
type Chunk struct {
	FileOff int64
	MemOff  int64
	Len     int64
}

// Chunks returns cp's chunk list in ascending file order. Adjacent runs
// that are contiguous in both file and memory are merged, so e.g. a
// BLOCK×NONE distribution of a matrix yields a single chunk per CP.
func (d *Decomp) Chunks(cp int) []Chunk {
	rec := int64(d.RecordSize)
	if d.All {
		return []Chunk{{FileOff: 0, MemOff: 0, Len: d.FileBytes()}}
	}
	if cp >= d.Rows.P*d.Cols.P || d.CPBytes(cp) == 0 {
		return nil
	}
	pr, pc := d.gridOf(cp)
	localCols := int64(d.Cols.Count(pc))
	var out []Chunk
	appendRun := func(fileOff, memOff, n int64) {
		if len(out) > 0 {
			last := &out[len(out)-1]
			if last.FileOff+last.Len == fileOff && last.MemOff+last.Len == memOff {
				last.Len += n
				return
			}
		}
		out = append(out, Chunk{FileOff: fileOff, MemOff: memOff, Len: n})
	}
	forEachOwned(d.Rows, pr, func(i int) {
		li := int64(d.Rows.Local(i))
		forEachOwnedRun(d.Cols, pc, func(j, runLen int) {
			lj := int64(d.Cols.Local(j))
			fileOff := (int64(i)*int64(d.Cols.N) + int64(j)) * rec
			memOff := (li*localCols + lj) * rec
			appendRun(fileOff, memOff, int64(runLen)*rec)
		})
	})
	return out
}

// NumChunks returns the total chunk count across all CPs — the number of
// file-system calls a traditional client collectively makes.
func (d *Decomp) NumChunks() int {
	n := 0
	for cp := 0; cp < d.NCP; cp++ {
		n += len(d.Chunks(cp))
	}
	return n
}

// ChunkBytes returns the size in bytes of the largest contiguous chunk
// any CP owns — the paper's "cs" (in bytes rather than elements).
func (d *Decomp) ChunkBytes() int64 {
	var max int64
	for cp := 0; cp < d.NCP; cp++ {
		for _, c := range d.Chunks(cp) {
			if c.Len > max {
				max = c.Len
			}
		}
	}
	return max
}

// forEachOwned calls fn for each index owned by p, ascending.
func forEachOwned(d Dim, p int, fn func(i int)) {
	switch d.Kind {
	case None:
		for i := 0; i < d.N; i++ {
			fn(i)
		}
	case Block:
		bs := d.blockSize()
		end := (p + 1) * bs
		if end > d.N {
			end = d.N
		}
		for i := p * bs; i < end; i++ {
			fn(i)
		}
	case Cyclic:
		for i := p; i < d.N; i += d.P {
			fn(i)
		}
	}
}

// forEachOwnedRun calls fn for each maximal run of consecutive indices
// owned by p, ascending.
func forEachOwnedRun(d Dim, p int, fn func(start, n int)) {
	switch d.Kind {
	case None:
		fn(0, d.N)
	case Block:
		bs := d.blockSize()
		start := p * bs
		end := start + bs
		if end > d.N {
			end = d.N
		}
		if end > start {
			fn(start, end-start)
		}
	case Cyclic:
		if d.P == 1 {
			fn(0, d.N)
			return
		}
		for i := p; i < d.N; i += d.P {
			fn(i, 1)
		}
	}
}
