package hpf

import "fmt"

// Decomp is a concrete decomposition of a row-major matrix of records
// over a grid of CPs. The special All form sends every record to every
// CP (the paper's "ra" pattern).
type Decomp struct {
	Rows, Cols Dim
	RecordSize int
	NCP        int  // total CPs participating (>= Rows.P * Cols.P)
	All        bool // every CP receives the whole file
}

// New2D builds a decomposition of a rows×cols record matrix over a
// Rows.P × Cols.P processor grid within ncp CPs.
func New2D(rows, cols Dim, recordSize, ncp int) (*Decomp, error) {
	if err := rows.validate("rows"); err != nil {
		return nil, err
	}
	if err := cols.validate("cols"); err != nil {
		return nil, err
	}
	if recordSize < 1 {
		return nil, fmt.Errorf("hpf: record size %d < 1", recordSize)
	}
	if rows.P*cols.P > ncp {
		return nil, fmt.Errorf("hpf: grid %dx%d exceeds %d CPs", rows.P, cols.P, ncp)
	}
	return &Decomp{Rows: rows, Cols: cols, RecordSize: recordSize, NCP: ncp}, nil
}

// New1D builds a decomposition of a vector of n records over ncp CPs.
func New1D(n int, kind DistKind, recordSize, ncp int) (*Decomp, error) {
	p := ncp
	if kind == None {
		p = 1
	}
	return New2D(Dim{N: 1, P: 1, Kind: None}, Dim{N: n, P: p, Kind: kind}, recordSize, ncp)
}

// NewAll builds the ALL decomposition: every CP receives all n records.
func NewAll(n, recordSize, ncp int) (*Decomp, error) {
	d, err := New1D(n, None, recordSize, ncp)
	if err != nil {
		return nil, err
	}
	d.All = true
	return d, nil
}

// NumRecords returns the matrix size in records.
func (d *Decomp) NumRecords() int { return d.Rows.N * d.Cols.N }

// FileBytes returns the matrix size in bytes.
func (d *Decomp) FileBytes() int64 {
	return int64(d.NumRecords()) * int64(d.RecordSize)
}

// cp composes a grid position into a CP index.
func (d *Decomp) cp(pr, pc int) int { return pr*d.Cols.P + pc }

// gridOf decomposes a CP index into its grid position.
func (d *Decomp) gridOf(cp int) (pr, pc int) { return cp / d.Cols.P, cp % d.Cols.P }

// Owner returns the CP owning record r. It must not be called on an All
// decomposition (every CP owns every record there).
func (d *Decomp) Owner(r int) int {
	if d.All {
		panic("hpf: Owner undefined for ALL decomposition")
	}
	i, j := r/d.Cols.N, r%d.Cols.N
	return d.cp(d.Rows.Owner(i), d.Cols.Owner(j))
}

// MemOffset returns the byte offset of record r within its owner's
// contiguous memory buffer. For All decompositions the buffer mirrors
// the file, so the offset equals the file offset.
func (d *Decomp) MemOffset(r int) int64 {
	if d.All {
		return int64(r) * int64(d.RecordSize)
	}
	i, j := r/d.Cols.N, r%d.Cols.N
	_, pc := d.gridOf(d.Owner(r))
	localCols := d.Cols.Count(pc)
	li, lj := d.Rows.Local(i), d.Cols.Local(j)
	return (int64(li)*int64(localCols) + int64(lj)) * int64(d.RecordSize)
}

// CPBytes returns the size of cp's memory buffer in bytes.
func (d *Decomp) CPBytes(cp int) int64 {
	if d.All {
		return d.FileBytes()
	}
	if cp >= d.Rows.P*d.Cols.P {
		return 0 // CPs outside the grid hold nothing
	}
	pr, pc := d.gridOf(cp)
	return int64(d.Rows.Count(pr)) * int64(d.Cols.Count(pc)) * int64(d.RecordSize)
}

// ActiveCPs returns the number of CPs that own at least one record.
func (d *Decomp) ActiveCPs() int {
	if d.All {
		return d.NCP
	}
	n := 0
	for cp := 0; cp < d.NCP; cp++ {
		if d.CPBytes(cp) > 0 {
			n++
		}
	}
	return n
}
