package hpf

import (
	"testing"
	"testing/quick"
)

// randomDecomp builds an arbitrary valid decomposition from fuzz input.
func randomDecomp(rows, cols, rk, ck, recSel, gridSel uint8) *Decomp {
	kinds := []DistKind{None, Block, Cyclic}
	rkind, ckind := kinds[rk%3], kinds[ck%3]
	nr := int(rows)%12 + 1
	nc := int(cols)%12 + 1
	rec := []int{1, 3, 8}[recSel%3]
	prs := []int{1, 2, 4}[gridSel%3]
	pr, pc := prs, 1
	if rkind == None {
		pr = 1
	}
	if ckind != None {
		pc = 2
	}
	d, err := New2D(
		Dim{N: nr, P: pr, Kind: rkind},
		Dim{N: nc, P: pc, Kind: ckind},
		rec, pr*pc)
	if err != nil {
		panic(err)
	}
	return d
}

// Property: the chunk lists of all CPs partition the file exactly — every
// byte appears in exactly one chunk — and each CP's memory offsets are
// dense and non-overlapping.
func TestQuickChunksPartitionFile(t *testing.T) {
	f := func(rows, cols, rk, ck, recSel, gridSel uint8) bool {
		d := randomDecomp(rows, cols, rk, ck, recSel, gridSel)
		file := make([]int, d.FileBytes())
		for cp := 0; cp < d.NCP; cp++ {
			mem := make([]int, d.CPBytes(cp))
			for _, c := range d.Chunks(cp) {
				for i := int64(0); i < c.Len; i++ {
					file[c.FileOff+i]++
					mem[c.MemOff+i]++
				}
			}
			for _, v := range mem {
				if v != 1 {
					return false // memory hole or overlap
				}
			}
		}
		for _, v := range file {
			if v != 1 {
				return false // file byte missed or duplicated
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: chunks are maximal — no two consecutive chunks of a CP could
// have been merged.
func TestQuickChunksMaximal(t *testing.T) {
	f := func(rows, cols, rk, ck, recSel, gridSel uint8) bool {
		d := randomDecomp(rows, cols, rk, ck, recSel, gridSel)
		for cp := 0; cp < d.NCP; cp++ {
			chunks := d.Chunks(cp)
			for i := 1; i < len(chunks); i++ {
				if chunks[i-1].FileOff+chunks[i-1].Len == chunks[i].FileOff &&
					chunks[i-1].MemOff+chunks[i-1].Len == chunks[i].MemOff {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestChunksAscendingFileOrder(t *testing.T) {
	d, _ := New2D(Dim{N: 8, P: 2, Kind: Cyclic}, Dim{N: 8, P: 2, Kind: Cyclic}, 4, 4)
	for cp := 0; cp < 4; cp++ {
		chunks := d.Chunks(cp)
		for i := 1; i < len(chunks); i++ {
			if chunks[i].FileOff <= chunks[i-1].FileOff {
				t.Fatalf("cp%d chunks out of order", cp)
			}
		}
	}
}

func TestChunksIdleCPIsEmpty(t *testing.T) {
	// NONE over 4 CPs: CPs 1-3 own nothing.
	d, err := New1D(16, None, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	for cp := 1; cp < 4; cp++ {
		if len(d.Chunks(cp)) != 0 {
			t.Fatalf("idle cp%d has chunks", cp)
		}
		if d.CPBytes(cp) != 0 {
			t.Fatalf("idle cp%d owns %d bytes", cp, d.CPBytes(cp))
		}
	}
	if d.ActiveCPs() != 1 {
		t.Fatalf("ActiveCPs %d", d.ActiveCPs())
	}
}

func TestNumChunksAndChunkBytes(t *testing.T) {
	// 16 records cyclic over 4 CPs, 8-byte records: 16 chunks of 8 bytes.
	d, _ := New1D(16, Cyclic, 8, 4)
	if d.NumChunks() != 16 {
		t.Fatalf("NumChunks %d", d.NumChunks())
	}
	if d.ChunkBytes() != 8 {
		t.Fatalf("ChunkBytes %d", d.ChunkBytes())
	}
	// Block: 4 chunks of 32 bytes.
	d2, _ := New1D(16, Block, 8, 4)
	if d2.NumChunks() != 4 || d2.ChunkBytes() != 32 {
		t.Fatalf("block: %d chunks, cs %d", d2.NumChunks(), d2.ChunkBytes())
	}
}

func TestMemOffsetMatchesChunks(t *testing.T) {
	d, _ := New2D(Dim{N: 6, P: 2, Kind: Block}, Dim{N: 6, P: 2, Kind: Cyclic}, 2, 4)
	for cp := 0; cp < 4; cp++ {
		for _, c := range d.Chunks(cp) {
			rec := int(c.FileOff) / d.RecordSize
			if d.Owner(rec) != cp {
				t.Fatalf("chunk at %d not owned by cp%d", c.FileOff, cp)
			}
			if d.MemOffset(rec) != c.MemOff {
				t.Fatalf("MemOffset(%d) = %d, chunk says %d", rec, d.MemOffset(rec), c.MemOff)
			}
		}
	}
}

func TestOwnerPanicsForAll(t *testing.T) {
	d, _ := NewAll(8, 1, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	d.Owner(0)
}
