// Package hpf implements the High Performance Fortran array
// distributions the paper uses as file-access patterns (Figure 2):
// NONE, BLOCK, and CYCLIC in each dimension of a row-major matrix of
// fixed-size records, plus the special ALL pattern (every CP reads the
// whole file). It answers the two questions both file systems need:
//
//   - per CP: the list of maximal contiguous file chunks it owns, with
//     their offsets in the CP's (contiguous) memory buffer — what a
//     traditional-caching client iterates over, one request per chunk;
//   - per file range: the list of (CP, memory offset) runs covering the
//     range — what a disk-directed IOP computes for each disk block.
package hpf

import "fmt"

// DistKind is an HPF distribution kind for one dimension.
type DistKind int

// Distribution kinds.
const (
	// None leaves the dimension undistributed: processor 0 of the
	// dimension owns the whole extent.
	None DistKind = iota
	// Block gives each processor one contiguous range of ceil(N/P)
	// indices.
	Block
	// Cyclic deals indices round-robin.
	Cyclic
)

func (k DistKind) String() string {
	switch k {
	case None:
		return "NONE"
	case Block:
		return "BLOCK"
	case Cyclic:
		return "CYCLIC"
	default:
		return fmt.Sprintf("DistKind(%d)", int(k))
	}
}

// Dim describes the distribution of one dimension of extent N over P
// processors. None requires P == 1.
type Dim struct {
	N    int
	P    int
	Kind DistKind
}

// blockSize is the HPF block size ceil(N/P).
func (d Dim) blockSize() int { return (d.N + d.P - 1) / d.P }

// Owner returns the processor (within this dimension) owning index i.
func (d Dim) Owner(i int) int {
	switch d.Kind {
	case None:
		return 0
	case Block:
		return i / d.blockSize()
	case Cyclic:
		return i % d.P
	}
	panic("hpf: bad DistKind")
}

// Local returns the index of i within its owner's local sequence.
func (d Dim) Local(i int) int {
	switch d.Kind {
	case None:
		return i
	case Block:
		return i % d.blockSize()
	case Cyclic:
		return i / d.P
	}
	panic("hpf: bad DistKind")
}

// Count returns how many indices processor p owns.
func (d Dim) Count(p int) int {
	switch d.Kind {
	case None:
		if p == 0 {
			return d.N
		}
		return 0
	case Block:
		bs := d.blockSize()
		n := d.N - p*bs
		if n < 0 {
			return 0
		}
		if n > bs {
			return bs
		}
		return n
	case Cyclic:
		if p >= d.N {
			return 0
		}
		return (d.N-p-1)/d.P + 1
	}
	panic("hpf: bad DistKind")
}

// RunLen returns the number of consecutive indices starting at i that
// share i's owner (capped at N).
func (d Dim) RunLen(i int) int {
	switch d.Kind {
	case None:
		return d.N - i
	case Block:
		bs := d.blockSize()
		end := (i/bs + 1) * bs
		if end > d.N {
			end = d.N
		}
		return end - i
	case Cyclic:
		if d.P == 1 {
			return d.N - i
		}
		return 1
	}
	panic("hpf: bad DistKind")
}

// validate panics on malformed dimensions; used by Decomp constructors.
func (d Dim) validate(name string) error {
	if d.N < 1 {
		return fmt.Errorf("hpf: %s extent %d < 1", name, d.N)
	}
	if d.P < 1 {
		return fmt.Errorf("hpf: %s processors %d < 1", name, d.P)
	}
	if d.Kind == None && d.P != 1 {
		return fmt.Errorf("hpf: %s NONE distribution requires P == 1, got %d", name, d.P)
	}
	return nil
}
