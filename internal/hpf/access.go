package hpf

// Access is the abstract file-access pattern the three file-system
// methods consume: a per-CP chunk list (what a traditional client must
// request piece by piece) and a file-range→runs view (what a
// disk-directed IOP scatters or gathers per block). Decomp is the
// matrix-decomposition implementation from the paper; the workload
// layer provides request-stream implementations over the same contract.
type Access interface {
	// Chunks returns cp's contiguous file pieces in ascending file
	// order, with their locations in cp's memory buffer.
	Chunks(cp int) []Chunk
	// RunsInRange returns the runs covering file range [off, off+n) in
	// ascending file order.
	RunsInRange(off, n int64) []Run
	// CPBytes returns the size of cp's memory buffer in bytes.
	CPBytes(cp int) int64
	// Partial reports whether the pattern may leave whole file blocks
	// untouched. A disk-directed IOP plans every local block for a
	// full-file access; for a partial access it first filters its plan
	// to blocks the pattern actually covers.
	Partial() bool
}

// Partial reports false: a matrix decomposition always covers the whole
// file, so disk-directed plans need no filtering.
func (d *Decomp) Partial() bool { return false }

var _ Access = (*Decomp)(nil)
