package hpf

// Run is a contiguous file range destined for (or sourced from) a single
// CP's memory — the unit a disk-directed IOP moves with one Memput or
// Memget. Runs never split records except at the requested range's
// edges (a record straddling a file-block boundary produces runs in both
// blocks).
type Run struct {
	CP      int
	FileOff int64
	MemOff  int64
	Len     int64
}

// RunsInRange returns the runs covering file range [off, off+n), in
// ascending file order, coalescing consecutive records with the same
// owner. For All decompositions it returns one run per CP covering the
// whole range (every CP receives the data).
func (d *Decomp) RunsInRange(off, n int64) []Run {
	if n <= 0 {
		return nil
	}
	if d.All {
		out := make([]Run, d.NCP)
		for cp := 0; cp < d.NCP; cp++ {
			out[cp] = Run{CP: cp, FileOff: off, MemOff: off, Len: n}
		}
		return out
	}
	rec := int64(d.RecordSize)
	end := off + n
	if fb := d.FileBytes(); end > fb {
		end = fb
	}
	var out []Run
	for pos := off; pos < end; {
		r := int(pos / rec)
		recStart := int64(r) * rec
		pieceEnd := recStart + rec
		if pieceEnd > end {
			pieceEnd = end
		}
		cp := d.Owner(r)
		memOff := d.MemOffset(r) + (pos - recStart)
		pieceLen := pieceEnd - pos
		if len(out) > 0 {
			last := &out[len(out)-1]
			if last.CP == cp && last.FileOff+last.Len == pos && last.MemOff+last.Len == memOff {
				last.Len += pieceLen
				pos = pieceEnd
				continue
			}
		}
		out = append(out, Run{CP: cp, FileOff: pos, MemOff: memOff, Len: pieceLen})
		pos = pieceEnd
	}
	return out
}
