package serve

// request.go is the daemon's wire layer: the JSON envelopes POST
// /v1/sweeps and POST /v1/runs accept, their strict parsing (unknown
// fields and malformed JSON are 400s, never panics — the fuzz target
// pins this), and their resolution into validated exp values. Field
// order in the JSON never matters: envelopes decode into structs before
// anything is hashed, so reordered-but-equal requests resolve to equal
// configs and therefore equal cell keys.

import (
	"bytes"
	"encoding/json"
	"fmt"

	"ddio/internal/exp"
	"ddio/internal/fault"
	"ddio/internal/hpf"
	"ddio/internal/pfs"
	"ddio/internal/stats"
	"ddio/internal/workload"
)

// SweepRequest is the body of POST /v1/sweeps: the sweep to run — a
// built-in preset by name or an inline SweepSpec — plus the options the
// cmd/figures flags would carry. Omitted options default to the figures
// CLI defaults (5 trials, 10 MiB, seed 42, verification on), so a served
// sweep is byte-identical to the CLI's output for the same inputs.
type SweepRequest struct {
	// Preset names a built-in sweep spec (GET /v1/presets lists them).
	// Exactly one of Preset and Spec must be set.
	Preset string `json:"preset,omitempty"`
	// Spec is an inline sweep spec, the same JSON documents
	// `figures -sweep file.json` accepts.
	Spec *exp.SweepSpec `json:"spec,omitempty"`

	// Trials and FileMB override the serving defaults, exactly like the
	// -trials and -filemb flags (specs with their own overrides, e.g.
	// the smoke presets, still take precedence over both).
	Trials int   `json:"trials,omitempty"`
	FileMB int64 `json:"filemb,omitempty"`
	// Seed is the base seed (-seed; default 42). Pointer so an explicit
	// 0 is distinguishable from omitted.
	Seed *int64 `json:"seed,omitempty"`
	// Verify toggles end-to-end data verification (-verify; default on).
	Verify *bool `json:"verify,omitempty"`
	// Faults is a fault plan applied to every run (-faults); a spec with
	// its own Faults template takes precedence, mirroring the CLI.
	Faults *fault.Plan `json:"faults,omitempty"`
	// Workload is a request-stream spec applied to every run (-workload);
	// a spec with its own Workload template takes precedence, mirroring
	// the CLI.
	Workload *workload.Spec `json:"workload,omitempty"`
}

// ParseSweepRequest parses and validates one POST /v1/sweeps body.
// Unknown fields anywhere in the envelope — including inside the inline
// spec and fault plan — are rejected so typos fail loudly.
func ParseSweepRequest(data []byte) (*SweepRequest, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var q SweepRequest
	if err := dec.Decode(&q); err != nil {
		return nil, fmt.Errorf("serve: parsing sweep request: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("serve: trailing data after sweep request")
	}
	switch {
	case q.Preset == "" && q.Spec == nil:
		return nil, fmt.Errorf("serve: sweep request needs a preset name or an inline spec")
	case q.Preset != "" && q.Spec != nil:
		return nil, fmt.Errorf("serve: sweep request has both a preset and an inline spec")
	case q.Trials < 0 || q.FileMB < 0:
		return nil, fmt.Errorf("serve: negative trials or filemb")
	}
	if q.Spec != nil {
		if err := q.Spec.Validate(); err != nil {
			return nil, err
		}
	}
	if err := q.Faults.Validate(0); err != nil {
		return nil, err
	}
	if err := q.Workload.Validate(nil); err != nil {
		return nil, err
	}
	return &q, nil
}

// ResolveSpec returns the validated spec the request denotes.
func (q *SweepRequest) ResolveSpec() (*exp.SweepSpec, error) {
	if q.Spec != nil {
		return q.Spec, nil
	}
	spec, ok := exp.LookupPreset(q.Preset)
	if !ok {
		return nil, fmt.Errorf("serve: unknown sweep preset %q", q.Preset)
	}
	return spec, nil
}

// RunRequest is the body of POST /v1/runs: one experiment, described the
// way the cmd/ddiosim flags describe it. Zero-valued fields defer to the
// paper's Table 1 defaults (16 CPs/IOPs/disks, 8 KB records, seed 1).
type RunRequest struct {
	Method  string      `json:"method"`           // "tc", "ddio", "ddio-sort", "2phase"
	Pattern string      `json:"pattern"`          // paper shorthand, e.g. "ra", "rc", "wb"
	Layout  string      `json:"layout,omitempty"` // "contiguous" or "random-blocks" (default)
	CPs     int         `json:"cps,omitempty"`    // compute processors
	IOPs    int         `json:"iops,omitempty"`   // I/O processors
	Disks   int         `json:"disks,omitempty"`  // disks
	FileMB  int64       `json:"filemb,omitempty"` // file size in MiB (default 10)
	Record  int         `json:"record,omitempty"` // record size in bytes (default 8192)
	Seed    *int64      `json:"seed,omitempty"`   // root seed (default 1)
	Verify  *bool       `json:"verify,omitempty"` // end-to-end verification (default on)
	Faults  *fault.Plan `json:"faults,omitempty"` // fault plan for this run

	// Workload, when set, replaces the collective transfer with the
	// spec's request streams (see internal/workload); Pattern then only
	// labels the run.
	Workload *workload.Spec `json:"workload,omitempty"`
}

// ParseRunRequest parses and validates one POST /v1/runs body.
func ParseRunRequest(data []byte) (*RunRequest, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var q RunRequest
	if err := dec.Decode(&q); err != nil {
		return nil, fmt.Errorf("serve: parsing run request: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("serve: trailing data after run request")
	}
	if _, err := q.Config(); err != nil {
		return nil, err
	}
	return &q, nil
}

// Config resolves the request into a validated experiment configuration.
func (q *RunRequest) Config() (exp.Config, error) {
	cfg := exp.DefaultConfig()
	m, err := exp.ParseMethod(q.Method)
	if err != nil {
		return cfg, err
	}
	cfg.Method = m
	if _, err := hpf.ParsePattern(q.Pattern); err != nil {
		return cfg, err
	}
	cfg.Pattern = q.Pattern
	if q.Layout != "" {
		layout, err := pfs.ParseLayout(q.Layout)
		if err != nil {
			return cfg, err
		}
		cfg.Layout = layout
	}
	if q.CPs < 0 || q.IOPs < 0 || q.Disks < 0 || q.FileMB < 0 || q.Record < 0 {
		return cfg, fmt.Errorf("serve: negative machine shape in run request")
	}
	if q.CPs > 0 {
		cfg.NCP = q.CPs
	}
	if q.IOPs > 0 {
		cfg.NIOP = q.IOPs
	}
	if q.Disks > 0 {
		cfg.NDisks = q.Disks
	}
	if q.FileMB > 0 {
		cfg.FileBytes = q.FileMB * exp.MiB
	}
	if q.Record > 0 {
		cfg.RecordSize = q.Record
	}
	if q.Seed != nil {
		cfg.Seed = *q.Seed
	}
	if q.Verify != nil {
		cfg.Verify = *q.Verify
	}
	cfg.Faults = q.Faults
	cfg.Workload = q.Workload
	if err := cfg.Validate(); err != nil {
		return cfg, err
	}
	return cfg, nil
}

// RunSummary is the JSON response of POST /v1/runs: the run's reported
// throughput and substrate totals, plus its canonical cell key (the
// cache identity of this exact configuration).
type RunSummary struct {
	Method       string          `json:"method"`
	Pattern      string          `json:"pattern"`
	Layout       string          `json:"layout"`
	CPs          int             `json:"cps"`
	IOPs         int             `json:"iops"`
	Disks        int             `json:"disks"`
	FileBytes    int64           `json:"file_bytes"`
	RecordSize   int             `json:"record_size"`
	Seed         int64           `json:"seed"`
	MBps         float64         `json:"mbps"`
	AggMBps      float64         `json:"agg_mbps"`
	ElapsedNS    int64           `json:"elapsed_ns"`
	Events       int64           `json:"events"`
	VerifyErrors int             `json:"verify_errors"`
	Faults       exp.FaultTotals `json:"faults"`
	// ReqLatency carries the per-request latency percentiles of a
	// workload run (seconds); omitted for classic whole-file runs.
	ReqLatency *stats.Summary `json:"req_latency,omitempty"`
	CellKey    string         `json:"cell_key"`
	Cached     bool           `json:"cached"` // served from the cell cache
}

// summarize renders one run result for the wire.
func summarize(res *exp.Result, cached bool) *RunSummary {
	cfg := res.Config
	return &RunSummary{
		Method:  cfg.Method.String(),
		Pattern: cfg.Pattern,
		Layout:  cfg.Layout.String(),
		CPs:     cfg.NCP, IOPs: cfg.NIOP, Disks: cfg.NDisks,
		FileBytes: cfg.FileBytes, RecordSize: cfg.RecordSize, Seed: cfg.Seed,
		MBps: res.MBps, AggMBps: res.AggMBps,
		ElapsedNS: res.Elapsed.Nanoseconds(), Events: res.Events,
		VerifyErrors: res.VerifyErrors, Faults: res.Faults,
		CellKey: exp.CellKey(cfg), Cached: cached,
	}
}

// attachLatency adds a workload run's request-latency summary to the
// wire shape; classic runs carry none and keep their JSON unchanged.
func attachLatency(sum *RunSummary, res *exp.Result) {
	if res.ReqLatency.N > 0 {
		lat := res.ReqLatency
		sum.ReqLatency = &lat
	}
}
