package serve

// metrics.go is the HTTP-level observability layer: a per-endpoint
// request-duration histogram and per-endpoint×format response counters,
// both exported through GET /metrics in Prometheus text exposition
// format. Durations are wall-clock and therefore not deterministic;
// counts are, and the emit order is sorted so scrapes diff cleanly.

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// durBuckets are the duration histogram's upper bounds in seconds: a
// cache hit answers in microseconds, a cold smoke sweep in tens of
// milliseconds, a full paper figure in seconds.
var durBuckets = []float64{0.001, 0.005, 0.025, 0.1, 1, 10}

// durHist is one endpoint's duration histogram: per-bucket counts (the
// last slot is +Inf), made cumulative at emit time per the Prometheus
// histogram convention.
type durHist struct {
	buckets []int64
	count   int64
	sum     float64
}

// httpMetrics aggregates the per-endpoint measurements.
type httpMetrics struct {
	mu        sync.Mutex
	durations map[string]*durHist
	responses map[string]map[string]int64 // endpoint → format → count
}

func newHTTPMetrics() *httpMetrics {
	return &httpMetrics{
		durations: make(map[string]*durHist),
		responses: make(map[string]map[string]int64),
	}
}

// observe records one served request's duration.
func (m *httpMetrics) observe(endpoint string, seconds float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	h := m.durations[endpoint]
	if h == nil {
		h = &durHist{buckets: make([]int64, len(durBuckets)+1)}
		m.durations[endpoint] = h
	}
	// Smallest bucket whose bound covers the value (le is inclusive);
	// past the last bound it lands in +Inf.
	h.buckets[sort.SearchFloat64s(durBuckets, seconds)]++
	h.count++
	h.sum += seconds
}

// countResponse records one successfully rendered response.
func (m *httpMetrics) countResponse(endpoint, format string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f := m.responses[endpoint]
	if f == nil {
		f = make(map[string]int64)
		m.responses[endpoint] = f
	}
	f[format]++
}

// sortedKeys returns a map's keys in lexical order, for deterministic
// emission.
func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// emit appends the HTTP metric lines in Prometheus text format.
func (m *httpMetrics) emit(b *strings.Builder) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, ep := range sortedKeys(m.durations) {
		h := m.durations[ep]
		var cum int64
		for i, bound := range durBuckets {
			cum += h.buckets[i]
			fmt.Fprintf(b, "ddiosimd_http_request_duration_seconds_bucket{endpoint=%q,le=%q} %d\n",
				ep, strconv.FormatFloat(bound, 'g', -1, 64), cum)
		}
		cum += h.buckets[len(durBuckets)]
		fmt.Fprintf(b, "ddiosimd_http_request_duration_seconds_bucket{endpoint=%q,le=\"+Inf\"} %d\n", ep, cum)
		fmt.Fprintf(b, "ddiosimd_http_request_duration_seconds_count{endpoint=%q} %d\n", ep, h.count)
		fmt.Fprintf(b, "ddiosimd_http_request_duration_seconds_sum{endpoint=%q} %s\n",
			ep, strconv.FormatFloat(h.sum, 'g', -1, 64))
	}
	for _, ep := range sortedKeys(m.responses) {
		formats := m.responses[ep]
		for _, f := range sortedKeys(formats) {
			fmt.Fprintf(b, "ddiosimd_responses_total{endpoint=%q,format=%q} %d\n", ep, f, formats[f])
		}
	}
}

// endpointLabel maps a request path to its metric label: the first
// path segment under /v1 ("sweeps", "runs", "jobs", ...), or the bare
// segment for the unversioned endpoints ("healthz", "metrics").
func endpointLabel(path string) string {
	p := strings.TrimPrefix(path, "/v1")
	p = strings.TrimPrefix(p, "/")
	if i := strings.IndexByte(p, '/'); i >= 0 {
		p = p[:i]
	}
	if p == "" {
		p = "root"
	}
	return p
}
