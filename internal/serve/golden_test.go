package serve

// golden_test.go pins the serving layer's headline promise with the real
// simulator: POST /v1/sweeps for the degrade-smoke and fig5-paper
// presets returns bytes identical to the cmd/figures artifacts for the
// same spec and options — text table to its stdout, JSON/CSV/SVG to its
// -json/-csv/-plot files — on the cold path AND on the cache-hit path.
// The expected bytes are built here exactly the way cmd/figures builds
// them (same library calls, same format strings), so a drift in either
// the serving pipeline or the render formats fails this test.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"ddio/internal/exp"
	"ddio/internal/plot"
)

func TestServedSweepsMatchFiguresArtifacts(t *testing.T) {
	presets := []struct {
		name    string
		body    string
		degrade bool // has a faults template, so timesvg exists
	}{
		// degrade-smoke carries its own trials/filemb overrides; the
		// request options mirror the figures CLI flag defaults.
		{"degrade-smoke", `{"preset":"degrade-smoke"}`, true},
		// fig5-paper at -trials 1 -filemb 1 keeps the paper figure's
		// full grid while staying cheap.
		{"fig5-paper", `{"preset":"fig5-paper","trials":1,"filemb":1}`, false},
		// wl-smoke drives the workload layer (skewed open-arrival
		// streams, swept over the wlrate axis) through the live handler.
		{"wl-smoke", `{"preset":"wl-smoke"}`, false},
	}

	s := New(Config{QueueDepth: 4, Concurrency: 1})
	for _, p := range presets {
		t.Run(p.name, func(t *testing.T) {
			spec, ok := exp.LookupPreset(p.name)
			if !ok {
				t.Fatalf("preset %q missing", p.name)
			}
			// The options cmd/figures would build for
			//   figures -sweep <name> [-trials 1 -filemb 1]
			opts := exp.Options{Trials: 5, FileBytes: 10 * exp.MiB, Seed: 42, Verify: true}
			if p.name == "fig5-paper" {
				opts.Trials, opts.FileBytes = 1, exp.MiB
			}
			res, err := spec.RunFull(opts)
			if err != nil {
				t.Fatal(err)
			}
			wantJSON, err := res.JSON()
			if err != nil {
				t.Fatal(err)
			}
			want := map[string]string{
				// printTable in cmd/figures: Println(Format) + Printf(max cv).
				"text": res.Table.Format() + "\n" + fmt.Sprintf("max cv %.3f\n\n", res.Table.MaxCV()),
				"json": string(wantJSON),      // <name>.json
				"csv":  res.LongCSV(),         // <name>-long.csv
				"svg":  plot.SweepFigure(res), // <name>.svg
			}
			// <name>-time.svg exists for degradation sweeps (completion
			// time) and workload sweeps (request-latency percentiles).
			if svg := plot.SweepTimeFigure(res); svg != "" {
				want["timesvg"] = svg
			} else if p.degrade {
				t.Fatal("degradation sweep produced no time figure")
			}
			if p.name == "wl-smoke" && want["timesvg"] == "" {
				t.Fatal("workload sweep produced no latency figure")
			}

			cold := true
			for _, format := range []string{"text", "json", "csv", "svg", "timesvg"} {
				wantBody, ok := want[format]
				if !ok {
					continue
				}
				rr := do(t, s, "POST", "/v1/sweeps?format="+format, p.body)
				if rr.Code != http.StatusOK {
					t.Fatalf("%s: status %d: %s", format, rr.Code, rr.Body.String())
				}
				if rr.Body.String() != wantBody {
					t.Fatalf("%s: served bytes differ from the figures artifact\nserved %d bytes, want %d",
						format, rr.Body.Len(), len(wantBody))
				}
				hits, cells := rr.Header().Get("X-Cache-Hits"), rr.Header().Get("X-Cells")
				if cold && hits != "0" {
					t.Fatalf("first request reported %s cache hits", hits)
				}
				if !cold && hits != cells {
					t.Fatalf("warm request: %s hits of %s cells", hits, cells)
				}
				cold = false
			}

			// And the cold format repeated is still byte-identical — the
			// cache-hit path reruns the whole render pipeline, not a
			// stored response.
			rr := do(t, s, "POST", "/v1/sweeps?format=text", p.body)
			if rr.Body.String() != want["text"] {
				t.Fatal("cache-hit text differs from cold text")
			}
		})
	}

	// The entire test simulated each distinct cell exactly once.
	st := s.StatsSnapshot()
	if st.Cache.Misses < st.CellsSimulated {
		t.Fatalf("inconsistent counters: %+v", st)
	}
}

// TestServedWorkloadRun drives one inline-workload run through the real
// simulator via POST /v1/runs: the declared streams execute, verify
// clean, and report positive throughput.
func TestServedWorkloadRun(t *testing.T) {
	s := New(Config{QueueDepth: 2, Concurrency: 1})
	body := `{"method":"ddio-sort","pattern":"rb","cps":4,"iops":4,"disks":4,"filemb":1,
		"workload":{"name":"w","phases":[{"pattern":"skew","requests":32,"alpha":1.2,
		"read_fraction":0.8,"arrival":"poisson","rate_per_sec":1000}]}}`
	rr := do(t, s, "POST", "/v1/runs", body)
	if rr.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rr.Code, rr.Body.String())
	}
	var sum RunSummary
	if err := json.Unmarshal(rr.Body.Bytes(), &sum); err != nil {
		t.Fatal(err)
	}
	if sum.MBps <= 0 || sum.VerifyErrors != 0 {
		t.Fatalf("workload run summary: %+v", sum)
	}
	// A run without the workload must occupy a different cache cell.
	plain := do(t, s, "POST", "/v1/runs", `{"method":"ddio-sort","pattern":"rb","cps":4,"iops":4,"disks":4,"filemb":1}`)
	var plainSum RunSummary
	if err := json.Unmarshal(plain.Body.Bytes(), &plainSum); err != nil {
		t.Fatal(err)
	}
	if plainSum.CellKey == sum.CellKey {
		t.Fatal("workload and plain runs share a cell key")
	}
}

// TestServedTraceHTMLMatchesViewer pins the served trace viewer: POST
// /v1/runs?trace=html returns bytes identical to what ddiosim
// -tracehtml writes for the same configuration (exp.TracedRun +
// Recorder.WriteHTML with the shared exp.TraceTitle), with the HTML
// content type.
func TestServedTraceHTMLMatchesViewer(t *testing.T) {
	s := New(Config{QueueDepth: 2, Concurrency: 1})
	body := `{"method":"ddio","pattern":"rb","cps":2,"iops":2,"disks":2,"filemb":1,"seed":11}`

	q, err := ParseRunRequest([]byte(body))
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := q.Config()
	if err != nil {
		t.Fatal(err)
	}
	_, rec, err := exp.TracedRun(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var want strings.Builder
	if err := rec.WriteHTML(&want, exp.TraceTitle(cfg)); err != nil {
		t.Fatal(err)
	}

	rr := do(t, s, "POST", "/v1/runs?trace=html", body)
	if rr.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rr.Code, rr.Body.String())
	}
	if ct := rr.Header().Get("Content-Type"); ct != "text/html; charset=utf-8" {
		t.Fatalf("content type %q", ct)
	}
	if rr.Body.String() != want.String() {
		t.Fatalf("served viewer differs from the CLI page: served %d bytes, want %d",
			rr.Body.Len(), want.Len())
	}
	// And the page is reproducible: a second served request is
	// byte-identical (traced runs bypass the cell cache, so this
	// re-simulates from the same seed).
	again := do(t, s, "POST", "/v1/runs?trace=html", body)
	if again.Body.String() != rr.Body.String() {
		t.Fatal("served viewer is not deterministic across requests")
	}
}
