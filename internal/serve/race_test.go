package serve

// race_test.go pins the daemon's concurrency contract, and CI runs it
// under the race detector: N concurrent POSTs of the same spec cost
// exactly one underlying simulation per cell (cache + singleflight) and
// every response is byte-identical. The stub sleeps inside the
// "simulator" to hold cells in flight long enough that late requests
// actually collide with leaders rather than finding a warm cache.

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ddio/internal/exp"
)

func TestConcurrentIdenticalSweepsSimulateOnce(t *testing.T) {
	const clients = 8
	s := New(Config{QueueDepth: clients + 2, Concurrency: clients, Workers: 2})
	var counts sync.Map
	s.runCell = func(c exp.Config) (*exp.Result, error) {
		n, _ := counts.LoadOrStore(exp.CellKey(c), new(atomic.Int64))
		n.(*atomic.Int64).Add(1)
		time.Sleep(2 * time.Millisecond) // keep the cell in flight
		return stubResult(c), nil
	}

	body := `{"preset":"fig5-paper","trials":2,"filemb":1}`
	type reply struct {
		code  int
		body  string
		cells string
	}
	replies := make([]reply, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := httptest.NewRequest("POST", "/v1/sweeps?format=json", strings.NewReader(body))
			rr := httptest.NewRecorder()
			s.ServeHTTP(rr, req)
			replies[i] = reply{rr.Code, rr.Body.String(), rr.Header().Get("X-Cells")}
		}(i)
	}
	wg.Wait()

	for i, r := range replies {
		if r.code != http.StatusOK {
			t.Fatalf("client %d: status %d: %s", i, r.code, r.body)
		}
		if r.body != replies[0].body {
			t.Fatalf("client %d: response differs from client 0", i)
		}
		if r.cells != replies[0].cells {
			t.Fatalf("client %d: X-Cells %s != %s", i, r.cells, replies[0].cells)
		}
	}

	// Exactly one simulation per distinct cell, no matter how the eight
	// requests interleaved.
	distinct := 0
	counts.Range(func(key, n any) bool {
		distinct++
		if got := n.(*atomic.Int64).Load(); got != 1 {
			t.Fatalf("cell %v simulated %d times, want 1", key, got)
		}
		return true
	})
	if distinct == 0 {
		t.Fatal("no cells simulated")
	}
	if st := s.StatsSnapshot(); st.CellsSimulated != int64(distinct) {
		t.Fatalf("cells_simulated = %d, want %d", st.CellsSimulated, distinct)
	}

	// A ninth request is pure cache: byte-identical, zero new runs.
	req := httptest.NewRequest("POST", "/v1/sweeps?format=json", strings.NewReader(body))
	rr := httptest.NewRecorder()
	s.ServeHTTP(rr, req)
	if rr.Body.String() != replies[0].body {
		t.Fatal("cache-hit response differs from cold responses")
	}
	if hits := rr.Header().Get("X-Cache-Hits"); hits != rr.Header().Get("X-Cells") {
		t.Fatalf("warm request: hits %s of %s cells", hits, rr.Header().Get("X-Cells"))
	}
}

// TestConcurrentRunsCollapseToOneSimulation drives the real simulator —
// under -race this also exercises the engine's parallel paths — with
// four concurrent identical single-run requests: one execution total,
// identical summaries, and a summary that matches a direct library run.
func TestConcurrentRunsCollapseToOneSimulation(t *testing.T) {
	s := New(Config{QueueDepth: 8, Concurrency: 4})
	var runs atomic.Int64
	s.runCell = func(c exp.Config) (*exp.Result, error) {
		runs.Add(1)
		return exp.Run(c)
	}

	body := `{"method":"ddio-sort","pattern":"ra","filemb":1}`
	const clients = 4
	bodies := make([]string, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := httptest.NewRequest("POST", "/v1/runs", strings.NewReader(body))
			rr := httptest.NewRecorder()
			s.ServeHTTP(rr, req)
			if rr.Code != http.StatusOK {
				t.Errorf("client %d: status %d: %s", i, rr.Code, rr.Body.String())
			}
			bodies[i] = rr.Body.String()
		}(i)
	}
	wg.Wait()
	if n := runs.Load(); n != 1 {
		t.Fatalf("four identical runs cost %d simulations, want 1", n)
	}

	// All clients saw the same result modulo the "cached" flag, whose
	// value depends on whether a client hit the cache or shared the
	// leader's flight.
	norm := func(b string) string {
		b = strings.Replace(b, `"cached": true`, `"cached": X`, 1)
		return strings.Replace(b, `"cached": false`, `"cached": X`, 1)
	}
	for i := 1; i < clients; i++ {
		if norm(bodies[i]) != norm(bodies[0]) {
			t.Fatalf("client %d summary differs:\n%s\nvs\n%s", i, bodies[i], bodies[0])
		}
	}

	// And the served numbers are the library's numbers.
	cfg := exp.DefaultConfig()
	cfg.Method = exp.DiskDirectedSort
	cfg.Pattern = "ra"
	cfg.FileBytes = exp.MiB
	want, err := exp.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	refBytes, err := json.MarshalIndent(summarize(want, false), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	ref := string(refBytes) + "\n"
	if norm(bodies[0]) != norm(ref) {
		t.Fatalf("served summary differs from direct library run:\n%s\nvs\n%s", bodies[0], ref)
	}
}
