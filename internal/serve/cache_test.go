package serve

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ddio/internal/exp"
)

func fakeResult(mbps float64) *exp.Result { return &exp.Result{MBps: mbps} }

func TestCellCacheLRUEviction(t *testing.T) {
	c := newCellCache(2)
	c.Add("a", fakeResult(1))
	c.Add("b", fakeResult(2))
	// Touch "a" so "b" is the eviction victim when "c" arrives.
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a missing")
	}
	c.Add("c", fakeResult(3))
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived eviction; LRU order ignores recency")
	}
	for _, key := range []string{"a", "c"} {
		if _, ok := c.Get(key); !ok {
			t.Fatalf("%s evicted, want b evicted", key)
		}
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 2 || st.Capacity != 2 {
		t.Fatalf("stats: %+v", st)
	}
	// Hits: a, a, c. Miss: b after its eviction.
	if st.Hits != 3 || st.Misses != 1 {
		t.Fatalf("hit/miss counters: %+v", st)
	}
}

func TestCellCacheRefreshKeepsSingleEntry(t *testing.T) {
	c := newCellCache(2)
	c.Add("a", fakeResult(1))
	c.Add("a", fakeResult(9))
	if st := c.Stats(); st.Entries != 1 {
		t.Fatalf("duplicate Add grew the cache: %+v", st)
	}
	res, ok := c.Get("a")
	if !ok || res.MBps != 9 {
		t.Fatalf("refresh did not replace the value: %v %v", res, ok)
	}
}

func TestFlightGroupCollapsesConcurrentCallers(t *testing.T) {
	g := newFlightGroup()
	var executions atomic.Int64
	gate := make(chan struct{})
	leaderIn := make(chan struct{})

	const followers = 5
	var wg sync.WaitGroup
	results := make([]*exp.Result, followers+1)
	sharedFlags := make([]bool, followers+1)
	run := func(i int, fn func() (*exp.Result, error)) {
		defer wg.Done()
		res, err, shared := g.Do("cell", fn)
		if err != nil {
			t.Errorf("caller %d: %v", i, err)
		}
		results[i], sharedFlags[i] = res, shared
	}

	wg.Add(1)
	go run(0, func() (*exp.Result, error) {
		close(leaderIn) // the leader is inside fn; followers may now pile on
		executions.Add(1)
		<-gate
		return fakeResult(42), nil
	})
	<-leaderIn
	var started sync.WaitGroup
	for i := 1; i <= followers; i++ {
		wg.Add(1)
		started.Add(1)
		go func(i int) {
			started.Done()
			run(i, func() (*exp.Result, error) {
				executions.Add(1)
				return fakeResult(42), nil
			})
		}(i)
	}
	// Give the followers time to pile onto the in-flight call before the
	// leader finishes. If one is late it becomes a fresh leader and the
	// execution count below catches it.
	started.Wait()
	time.Sleep(20 * time.Millisecond)
	close(gate)
	wg.Wait()

	if n := executions.Load(); n != 1 {
		t.Fatalf("%d executions, want 1", n)
	}
	sharedCount := 0
	for i, res := range results {
		if res == nil || res.MBps != 42 {
			t.Fatalf("caller %d result: %v", i, res)
		}
		if sharedFlags[i] {
			sharedCount++
		}
	}
	if sharedCount != followers {
		t.Fatalf("%d callers shared, want %d", sharedCount, followers)
	}
}
