package serve

// fuzz_test.go fuzzes the daemon's request parsing — the SweepSpec and
// fault.Plan envelopes of POST /v1/sweeps and the flat envelope of POST
// /v1/runs — end to end through the HTTP handlers with a stubbed
// simulator: malformed input must come back 4xx, valid input 2xx, and
// nothing may panic or 500. `go test` runs the seed corpus as ordinary
// regression tests; `go test -fuzz=FuzzSweepRequest ./internal/serve/`
// explores from there.

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"testing"
)

// sweepSeeds covers the grammar: valid presets and inline specs, every
// option field, fault plans, and a spread of malformed shapes.
var sweepSeeds = []string{
	`{"preset":"fig5-paper"}`,
	`{"preset":"degrade-smoke","trials":2,"filemb":1,"seed":0,"verify":false}`,
	`{"spec":{"name":"s","title":"t","axis":"cps","values":[1,2],
		"layout":"random-blocks","methods":["tc","ddio-sort"],"patterns":["ra","rc"]},"trials":1,"filemb":1}`,
	`{"preset":"fig5-paper","faults":{"disk_error_rate":0.01,"retry_limit":3,"stragglers":1,
		"straggler_slowdown":2,"msg_loss_rate":0.001,"spike_rate":0.01,"spike_latency_ns":1000000}}`,
	`{"spec":{"name":"d","title":"d","axis":"faultpm","values":[0,5],"layout":"contiguous",
		"methods":["ddio"],"patterns":["ra"],"faults":{"retry_limit":2}},"trials":1,"filemb":1}`,
	`{"preset":"wl-smoke"}`,
	`{"preset":"fig5-paper","workload":{"name":"w","phases":[{"pattern":"skew","requests":16,
		"alpha":1.2,"read_fraction":0.8,"arrival":"poisson","rate_per_sec":500}]}}`,
	`{"spec":{"name":"w","title":"w","axis":"wlrate","values":[100,200],"layout":"random-blocks",
		"methods":["ddio"],"patterns":["rb"],"workload":{"phases":[{"pattern":"uniform",
		"requests":8,"arrival":"poisson","rate_per_sec":100}]}},"trials":1,"filemb":1}`,
	`{"preset":"fig5-paper","workload":{"phases":[{"pattern":"zipf","requests":4,"alpha":0.5}]}}`,
	`{"preset":"fig5-paper","workload":{"phases":[{"pattern":"uniform"}]}}`,
	`{"preset":"fig5-paper","workload":{"phases":[{"pattern":"uniform","requests":1,"bogus":1}]}}`,
	`{"spec":{"name":"w","title":"w","axis":"wlrate","values":[100],"layout":"random-blocks",
		"methods":["ddio"],"patterns":["rb"]}}`,
	// Two-axis response surfaces: a valid pair, then every malformed
	// axis-pair shape (values2 without axis2, duplicate axis, unknown
	// axis2, empty values2, out-of-range value2) — all must answer 4xx.
	`{"preset":"surface-smoke"}`,
	`{"spec":{"name":"s2","title":"t","axis":"cps","values":[1,2],"axis2":"disks","values2":[2,4],
		"layout":"contiguous","methods":["tc"],"patterns":["rb"]},"trials":1,"filemb":1}`,
	`{"spec":{"name":"s2","title":"t","axis":"cps","values":[1],"values2":[2],
		"layout":"contiguous","methods":["tc"],"patterns":["rb"]}}`,
	`{"spec":{"name":"s2","title":"t","axis":"cps","values":[1],"axis2":"cps","values2":[2],
		"layout":"contiguous","methods":["tc"],"patterns":["rb"]}}`,
	`{"spec":{"name":"s2","title":"t","axis":"cps","values":[1],"axis2":"warp","values2":[2],
		"layout":"contiguous","methods":["tc"],"patterns":["rb"]}}`,
	`{"spec":{"name":"s2","title":"t","axis":"cps","values":[1],"axis2":"disks","values2":[],
		"layout":"contiguous","methods":["tc"],"patterns":["rb"]}}`,
	`{"spec":{"name":"s2","title":"t","axis":"cps","values":[1],"axis2":"disks","values2":[0],
		"layout":"contiguous","methods":["tc"],"patterns":["rb"]}}`,
	``,
	`{`,
	`{}`,
	`[]`,
	`null`,
	`42`,
	`"preset"`,
	`{"preset":42}`,
	`{"preset":"fig5-paper","trials":-1}`,
	`{"preset":"fig5-paper","trials":99999999999999999999}`,
	`{"preset":"fig5-paper","bogus":true}`,
	`{"preset":"fig5-paper","faults":{"disk_error_rate":7}}`,
	`{"preset":"fig5-paper","faults":{"unknown_knob":1}}`,
	`{"spec":{"axis":"cps"}}`,
	`{"spec":{"name":"s","title":"t","axis":"warp","values":[1],"layout":"random-blocks",
		"methods":["tc"],"patterns":["ra"]}}`,
	`{"preset":"fig5-paper"} {"preset":"fig5-paper"}`,
	`{"preset":"\ud800"}`,
	"{\"preset\":\"fig5-paper\"\x00}",
}

var runSeeds = []string{
	`{"method":"tc","pattern":"ra"}`,
	`{"method":"ddio-sort","pattern":"rc","layout":"contiguous","cps":4,"iops":4,"disks":4,
		"filemb":1,"record":8,"seed":7,"verify":false}`,
	`{"method":"2phase","pattern":"wb","faults":{"disk_error_rate":0.01,"retry_limit":2}}`,
	`{"method":"ddio-sort","pattern":"rb","cps":4,"iops":4,"disks":4,"filemb":1,
		"workload":{"phases":[{"pattern":"hotspot","requests":8,"hot_fraction":0.1,"hot_weight":0.9}]}}`,
	`{"method":"tc","pattern":"ra","workload":{"phases":[{"pattern":"trace",
		"trace":[{"t_ns":0,"node":0,"op":"r","offset":0,"bytes":8192}]}]}}`,
	`{"method":"tc","pattern":"ra","workload":{"phases":[{"pattern":"uniform","requests":-4}]}}`,
	`{"method":"tc","pattern":"ra","workload":{"phases":[{"pattern":"trace","trace":[
		{"t_ns":0,"node":0,"op":"x","offset":0,"bytes":8}]}]}}`,
	``,
	`{`,
	`{}`,
	`{"method":"nfs","pattern":"ra"}`,
	`{"method":"tc","pattern":"zz"}`,
	`{"method":"tc","pattern":"ra","layout":"diagonal"}`,
	`{"method":"tc","pattern":"ra","cps":-1}`,
	`{"method":"tc","pattern":"ra","record":3}`,
	`{"method":"tc","pattern":"ra","bogus":1}`,
	`{"method":"tc","pattern":"ra","faults":{"msg_loss_rate":-1}}`,
	`{"method":"tc","pattern":"ra"} trailing`,
}

// fuzzServer is shared across fuzz iterations: parsing must be
// reentrant, and a stubbed simulator keeps valid inputs cheap. MaxCells
// is small so fuzz-found "valid but huge" specs are bounded by the 422
// path rather than by memory.
func fuzzServer() *Server {
	s, _ := stubServer(Config{QueueDepth: 64, Concurrency: 4, MaxCells: 64})
	return s
}

func fuzzPost(t *testing.T, s *Server, target string, body []byte) {
	t.Helper()
	req := httptest.NewRequest("POST", target, bytes.NewReader(body))
	rr := httptest.NewRecorder()
	s.ServeHTTP(rr, req) // a panic fails the fuzz run
	if rr.Code >= http.StatusInternalServerError {
		t.Fatalf("%s: input produced %d, want 2xx/4xx: %q\n%s",
			target, rr.Code, body, rr.Body.String())
	}
	if rr.Code >= 300 && rr.Code < 400 {
		t.Fatalf("%s: unexpected redirect %d for %q", target, rr.Code, body)
	}
}

func FuzzSweepRequest(f *testing.F) {
	for _, seed := range sweepSeeds {
		f.Add([]byte(seed))
	}
	s := fuzzServer()
	f.Fuzz(func(t *testing.T, data []byte) {
		fuzzPost(t, s, "/v1/sweeps", data)
		fuzzPost(t, s, "/v1/sweeps?format=json&async=1", data)
	})
}

func FuzzRunRequest(f *testing.F) {
	for _, seed := range runSeeds {
		f.Add([]byte(seed))
	}
	s := fuzzServer()
	f.Fuzz(func(t *testing.T, data []byte) {
		fuzzPost(t, s, "/v1/runs", data)
	})
}

// FuzzParseSweepRequest fuzzes the parser in isolation (no HTTP): it
// must return a request or an error, never panic, and a parsed request
// must resolve without panicking.
func FuzzParseSweepRequest(f *testing.F) {
	for _, seed := range append(append([]string{}, sweepSeeds...), runSeeds...) {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		q, err := ParseSweepRequest(data)
		if err == nil {
			if _, rerr := q.ResolveSpec(); rerr == nil && q.Preset != "" && q.Spec != nil {
				t.Fatal("both preset and spec survived validation")
			}
		}
		if r, err := ParseRunRequest(data); err == nil {
			if _, cerr := r.Config(); cerr != nil {
				t.Fatalf("ParseRunRequest accepted a body whose Config fails: %v", cerr)
			}
		}
	})
}
