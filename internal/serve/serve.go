// Package serve is the sweep-serving layer behind cmd/ddiosimd: a
// long-running HTTP daemon that accepts declarative sweep specs (the same
// SweepSpec documents cmd/figures runs) and returns the rendered tables,
// JSON, CSV, or SVG figures.
//
// Every simulation is a deterministic pure function of its resolved
// Config, which the serving layer exploits twice:
//
//   - Completed cells live in an LRU keyed by exp.CellKey — the canonical
//     hash of (resolved config, seed, trial) — so a repeated figure
//     request costs zero simulation and returns byte-identical bytes.
//   - In-flight cells are deduplicated (singleflight), so a thundering
//     herd of identical cold requests costs one simulation per cell.
//
// Requests run through a bounded job queue over exp.Runner with admission
// control: when the queue is full the daemon answers 429 with Retry-After
// instead of accepting unbounded work. Async submission (?async=1) plus
// GET /v1/jobs/{id} cover long sweeps; GET /v1/stats and GET /metrics
// expose cache hit rates, queue depth, and cells simulated.
package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"ddio/internal/exp"
	"ddio/internal/plot"
)

// maxBodyBytes bounds request bodies; specs and plans are tiny.
const maxBodyBytes = 1 << 20

// Config tunes the daemon. Zero values select the defaults.
type Config struct {
	// CacheCells is the completed-cell LRU capacity (default 4096).
	CacheCells int
	// QueueDepth bounds admitted requests, running plus queued; beyond
	// it the daemon answers 429 (default 16).
	QueueDepth int
	// Concurrency is how many admitted jobs simulate at once; the rest
	// wait queued (default 2).
	Concurrency int
	// Workers is the per-sweep runner fan-out, the -j of the CLIs
	// (default 0 = GOMAXPROCS).
	Workers int
	// MaxCells rejects requests expanding to more (cell × trial) runs
	// than this with 422 (default 4096).
	MaxCells int
	// Trials, FileMB, Seed are the option defaults applied when a sweep
	// request omits them — matching the cmd/figures flag defaults
	// (5 trials, 10 MiB, seed 42) so served bytes match CLI bytes.
	Trials int
	FileMB int64
	Seed   int64
	// JobHistory is how many finished jobs remain queryable (default 64).
	JobHistory int
	// Log, when non-nil, receives one line per admitted job.
	Log *log.Logger
}

func (c Config) withDefaults() Config {
	if c.CacheCells == 0 {
		c.CacheCells = 4096
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 16
	}
	if c.Concurrency == 0 {
		c.Concurrency = 2
	}
	if c.MaxCells == 0 {
		c.MaxCells = 4096
	}
	if c.Trials == 0 {
		c.Trials = 5
	}
	if c.FileMB == 0 {
		c.FileMB = 10
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.JobHistory == 0 {
		c.JobHistory = 64
	}
	return c
}

// Server is the daemon: an http.Handler serving the /v1 API.
type Server struct {
	cfg    Config
	mux    *http.ServeMux
	cache  *cellCache
	flight *flightGroup
	jobs   *jobTable
	sem    chan struct{} // concurrency slots; holders are "running"
	httpm  *httpMetrics  // per-endpoint durations and response formats

	// runCell executes one cell for real (exp.Run); tests substitute it
	// to count executions and to stub simulation cost.
	runCell func(exp.Config) (*exp.Result, error)

	inflight       atomic.Int64 // admitted jobs: queued + running
	active         atomic.Int64 // jobs holding a concurrency slot
	admitted       atomic.Int64
	rejected       atomic.Int64
	cellsSimulated atomic.Int64
	flightShared   atomic.Int64
}

// New returns a daemon with the given configuration.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		cache:   newCellCache(cfg.CacheCells),
		flight:  newFlightGroup(),
		jobs:    newJobTable(cfg.JobHistory),
		sem:     make(chan struct{}, cfg.Concurrency),
		httpm:   newHTTPMetrics(),
		runCell: exp.Run,
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/presets", s.handlePresets)
	mux.HandleFunc("POST /v1/sweeps", s.handleSweeps)
	mux.HandleFunc("POST /v1/runs", s.handleRuns)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleJobResult)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux = mux
	return s
}

// ServeHTTP implements http.Handler, timing every request into the
// per-endpoint duration histogram exposed at GET /metrics.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.mux.ServeHTTP(w, r)
	s.httpm.observe(endpointLabel(r.URL.Path), time.Since(start).Seconds())
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Log != nil {
		s.cfg.Log.Printf(format, args...)
	}
}

// admit reserves a queue slot; a false return means the bounded queue is
// full and the caller must answer 429.
func (s *Server) admit() bool {
	for {
		n := s.inflight.Load()
		if n >= int64(s.cfg.QueueDepth) {
			s.rejected.Add(1)
			return false
		}
		if s.inflight.CompareAndSwap(n, n+1) {
			s.admitted.Add(1)
			return true
		}
	}
}

func (s *Server) release() { s.inflight.Add(-1) }

// httpError writes a plain-text error. Client mistakes are 4xx; only
// simulation failures surface as 500.
func httpError(w http.ResponseWriter, code int, err error) {
	http.Error(w, err.Error(), code)
}

// tooBusy answers an admission-control rejection.
func (s *Server) tooBusy(w http.ResponseWriter) {
	w.Header().Set("Retry-After", "1")
	http.Error(w, fmt.Sprintf("serve: job queue full (%d admitted); retry later", s.cfg.QueueDepth),
		http.StatusTooManyRequests)
}

// options resolves a sweep request's option overrides over the serving
// defaults, exactly as the cmd/figures flags would.
func (s *Server) options(q *SweepRequest) exp.Options {
	o := exp.Options{
		Trials:    s.cfg.Trials,
		FileBytes: s.cfg.FileMB * exp.MiB,
		Seed:      s.cfg.Seed,
		Verify:    true,
		Workers:   s.cfg.Workers,
	}
	if q.Trials > 0 {
		o.Trials = q.Trials
	}
	if q.FileMB > 0 {
		o.FileBytes = q.FileMB * exp.MiB
	}
	if q.Seed != nil {
		o.Seed = *q.Seed
	}
	if q.Verify != nil {
		o.Verify = *q.Verify
	}
	o.Faults = q.Faults
	o.Workload = q.Workload
	return o
}

// cachedRunCell is the cache/singleflight wrapper wired into the
// experiment runner (Options.RunCell): cache hit, else join the in-flight
// leader, else simulate once and publish to the cache before the flight
// entry is released. hits counts this request's cache hits.
func (s *Server) cachedRunCell(hits *atomic.Int64) func(exp.Config) (*exp.Result, error) {
	return func(cfg exp.Config) (*exp.Result, error) {
		if cfg.Trace != nil {
			// A traced run's product is its recorder, which belongs to
			// exactly one run: never cached, never deduplicated.
			s.cellsSimulated.Add(1)
			return s.runCell(cfg)
		}
		key := exp.CellKey(cfg)
		if res, ok := s.cache.Get(key); ok {
			hits.Add(1)
			return res, nil
		}
		res, err, shared := s.flight.Do(key, func() (*exp.Result, error) {
			// Re-check under the flight: a previous leader may have
			// published between our cache miss and our flight entry.
			if res, ok := s.cache.Get(key); ok {
				hits.Add(1)
				return res, nil
			}
			res, err := s.runCell(cfg)
			if err == nil {
				s.cellsSimulated.Add(1)
				s.cache.Add(key, res)
			}
			return res, err
		})
		if shared {
			s.flightShared.Add(1)
		}
		return res, err
	}
}

// sweepFormats are the response renderings of POST /v1/sweeps. Each is
// byte-identical to a cmd/figures artifact for the same spec and options.
var sweepFormats = map[string]bool{
	"text": true, "json": true, "csv": true, "tablecsv": true,
	"svg": true, "timesvg": true,
}

// renderSweep renders an executed sweep in the requested format.
func renderSweep(res *exp.SweepResult, format string) (body []byte, contentType string, err error) {
	switch format {
	case "text":
		// Byte-identical to the figures CLI's stdout for one sweep:
		// the formatted table, a blank line, and the max-cv line.
		t := res.Table
		return []byte(t.Format() + "\n" + fmt.Sprintf("max cv %.3f\n\n", t.MaxCV())),
			"text/plain; charset=utf-8", nil
	case "json":
		// == the CLI's <spec>.json artifact.
		b, err := res.JSON()
		return b, "application/json", err
	case "csv":
		// == the CLI's <spec>-long.csv artifact (tidy long format).
		return []byte(res.LongCSV()), "text/csv; charset=utf-8", nil
	case "tablecsv":
		// == the CLI's <table-id>.csv artifact (wide per-table format).
		return []byte(res.Table.CSV()), "text/csv; charset=utf-8", nil
	case "svg":
		// == the CLI's <spec>.svg artifact.
		return []byte(plot.SweepFigure(res)), "image/svg+xml", nil
	case "timesvg":
		// == the CLI's <spec>-time.svg artifact: completion time for a
		// degradation sweep, request-latency percentiles for a workload
		// sweep.
		svg := plot.SweepTimeFigure(res)
		if svg == "" {
			return nil, "", fmt.Errorf("serve: format timesvg needs a degradation sweep (a faults template) or a workload sweep")
		}
		return []byte(svg), "image/svg+xml", nil
	}
	return nil, "", fmt.Errorf("serve: unknown format %q", format)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}

func (s *Server) handlePresets(w http.ResponseWriter, r *http.Request) {
	b, err := json.MarshalIndent(exp.Presets(), "", "  ")
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(b, '\n'))
}

func (s *Server) handleSweeps(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	q, err := ParseSweepRequest(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	format := r.URL.Query().Get("format")
	if format == "" {
		format = "text"
	}
	if !sweepFormats[format] {
		httpError(w, http.StatusBadRequest, fmt.Errorf("serve: unknown format %q", format))
		return
	}
	spec, err := q.ResolveSpec()
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if format == "timesvg" && spec.Faults == nil && spec.Workload == nil {
		httpError(w, http.StatusUnprocessableEntity,
			fmt.Errorf("serve: format timesvg needs a degradation sweep (a faults template) or a workload sweep"))
		return
	}
	opts := s.options(q)
	// Size the request BEFORE expanding it: the (value × method ×
	// pattern × trial) product is known from the spec alone, and
	// checking it first keeps a hostile "trials": 1e9 body from
	// allocating a billion-config grid just to be told 422.
	trials := opts.Trials
	if spec.Trials > 0 {
		trials = spec.Trials
	}
	if trials < 1 {
		trials = 1
	}
	if trials > s.cfg.MaxCells {
		httpError(w, http.StatusUnprocessableEntity,
			fmt.Errorf("serve: %d trials per cell, above the %d-run limit", trials, s.cfg.MaxCells))
		return
	}
	n := trials
	for _, f := range []int{len(spec.Values), len(spec.Values2), len(spec.Methods), len(spec.Patterns)} {
		if f > 0 {
			n *= f
		}
		if n > s.cfg.MaxCells {
			httpError(w, http.StatusUnprocessableEntity,
				fmt.Errorf("serve: sweep expands to over %d runs, above the %d-run limit", n, s.cfg.MaxCells))
			return
		}
	}
	_, cfgs, err := spec.Expand(opts)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if !s.admit() {
		s.tooBusy(w)
		return
	}
	j := s.jobs.add("sweep", spec.Name, format)
	s.logf("job %s: sweep %s format=%s cells=%d", j.snapshot().ID, spec.Name, format, len(cfgs))

	if r.URL.Query().Get("async") != "" {
		go func() {
			defer s.release()
			s.runSweep(j, spec, opts, format, len(cfgs))
		}()
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		v := j.snapshot()
		b, _ := json.MarshalIndent(v, "", "  ")
		w.Write(append(b, '\n'))
		return
	}

	s.runSweep(j, spec, opts, format, len(cfgs))
	s.release()
	s.writeJobResult(w, j)
}

// runSweep executes one admitted sweep job: waits for a concurrency
// slot, runs the sweep with the cache/singleflight cell hook, renders
// the requested format, and finishes the job.
func (s *Server) runSweep(j *job, spec *exp.SweepSpec, opts exp.Options, format string, cells int) {
	s.sem <- struct{}{}
	defer func() { <-s.sem }()
	s.active.Add(1)
	defer s.active.Add(-1)
	j.setState(JobRunning)

	var hits atomic.Int64
	opts.RunCell = s.cachedRunCell(&hits)
	res, err := spec.RunFull(opts)
	if err != nil {
		j.finish(nil, "", cells, hits.Load(), err)
		return
	}
	body, ctype, err := renderSweep(res, format)
	j.finish(body, ctype, cells, hits.Load(), err)
}

// writeJobResult writes a finished job's body (sync path). Simulation
// failures are 500s; the body bytes of a success are exactly the
// rendered artifact, so cold and cache-hit responses compare equal.
func (s *Server) writeJobResult(w http.ResponseWriter, j *job) {
	<-j.done
	v := j.snapshot()
	w.Header().Set("X-Job-ID", v.ID)
	w.Header().Set("X-Cells", fmt.Sprintf("%d", v.Cells))
	w.Header().Set("X-Cache-Hits", fmt.Sprintf("%d", v.CacheHits))
	body, ctype, ok := j.result()
	if !ok {
		httpError(w, http.StatusInternalServerError, fmt.Errorf("%s", v.Error))
		return
	}
	s.httpm.countResponse(v.Kind+"s", v.Format)
	w.Header().Set("Content-Type", ctype)
	w.Write(body)
}

func (s *Server) handleRuns(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	q, err := ParseRunRequest(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	traceFmt := r.URL.Query().Get("trace")
	if traceFmt != "" && traceFmt != "jsonl" && traceFmt != "html" {
		httpError(w, http.StatusBadRequest, fmt.Errorf("serve: unknown trace format %q (want jsonl or html)", traceFmt))
		return
	}
	cfg, err := q.Config()
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if !s.admit() {
		s.tooBusy(w)
		return
	}
	defer s.release()
	runFormat := "summary"
	if traceFmt != "" {
		runFormat = traceFmt
	}
	j := s.jobs.add("run", q.Method+"/"+q.Pattern, runFormat)
	s.logf("job %s: run %s/%s trace=%q", j.snapshot().ID, q.Method, q.Pattern, traceFmt)

	s.sem <- struct{}{}
	s.active.Add(1)
	j.setState(JobRunning)
	release := func() {
		s.active.Add(-1)
		<-s.sem
	}

	if traceFmt != "" {
		res, rec, err := exp.TracedRun(cfg)
		s.cellsSimulated.Add(1)
		release()
		if err != nil {
			j.finish(nil, "", 1, 0, err)
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		var buf strings.Builder
		ctype := "application/x-ndjson"
		if traceFmt == "html" {
			// The explorable trace viewer — byte-identical to the page
			// ddiosim -tracehtml writes for the same configuration.
			ctype = "text/html; charset=utf-8"
			err = rec.WriteHTML(&buf, exp.TraceTitle(cfg))
		} else {
			err = rec.WriteJSONL(&buf)
		}
		if err != nil {
			j.finish(nil, "", 1, 0, err)
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		body := []byte(buf.String())
		j.finish(body, ctype, 1, 0, nil)
		s.httpm.countResponse("runs", traceFmt)
		w.Header().Set("X-Job-ID", j.snapshot().ID)
		w.Header().Set("X-Trace-Events", fmt.Sprintf("%d", rec.Len()))
		w.Header().Set("X-MBps", fmt.Sprintf("%.3f", res.MBps))
		w.Header().Set("Content-Type", ctype)
		w.Write(body)
		return
	}

	var hits atomic.Int64
	res, err := s.cachedRunCell(&hits)(cfg)
	release()
	if err != nil {
		j.finish(nil, "", 1, hits.Load(), err)
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	sum := summarize(res, hits.Load() > 0)
	attachLatency(sum, res)
	b, err := json.MarshalIndent(sum, "", "  ")
	if err != nil {
		j.finish(nil, "", 1, hits.Load(), err)
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	body = append(b, '\n')
	j.finish(body, "application/json", 1, hits.Load(), nil)
	s.writeJobResult(w, j)
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("serve: no such job"))
		return
	}
	b, _ := json.MarshalIndent(j.snapshot(), "", "  ")
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(b, '\n'))
}

func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("serve: no such job"))
		return
	}
	v := j.snapshot()
	switch v.State {
	case JobQueued, JobRunning:
		httpError(w, http.StatusConflict, fmt.Errorf("serve: job %s is %s; poll /v1/jobs/%s", v.ID, v.State, v.ID))
		return
	case JobFailed:
		httpError(w, http.StatusInternalServerError, fmt.Errorf("%s", v.Error))
		return
	}
	body, ctype, _ := j.result()
	s.httpm.countResponse("jobs", v.Format)
	w.Header().Set("Content-Type", ctype)
	w.Write(body)
}

// Stats is the JSON shape of GET /v1/stats.
type Stats struct {
	Cache          cacheStats `json:"cache"`
	CellsSimulated int64      `json:"cells_simulated"`
	FlightShared   int64      `json:"singleflight_shared"`
	JobsAdmitted   int64      `json:"jobs_admitted"`
	JobsRejected   int64      `json:"jobs_rejected"`
	JobsActive     int64      `json:"jobs_active"`
	QueueDepth     int64      `json:"queue_depth"`
	QueueCapacity  int        `json:"queue_capacity"`
}

// StatsSnapshot returns the daemon's current counters.
func (s *Server) StatsSnapshot() Stats {
	active := s.active.Load()
	return Stats{
		Cache:          s.cache.Stats(),
		CellsSimulated: s.cellsSimulated.Load(),
		FlightShared:   s.flightShared.Load(),
		JobsAdmitted:   s.admitted.Load(),
		JobsRejected:   s.rejected.Load(),
		JobsActive:     active,
		QueueDepth:     s.inflight.Load() - active,
		QueueCapacity:  s.cfg.QueueDepth,
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	b, _ := json.MarshalIndent(s.StatsSnapshot(), "", "  ")
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(b, '\n'))
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.StatsSnapshot()
	var b strings.Builder
	fmt.Fprintf(&b, "ddiosimd_cache_hits_total %d\n", st.Cache.Hits)
	fmt.Fprintf(&b, "ddiosimd_cache_misses_total %d\n", st.Cache.Misses)
	fmt.Fprintf(&b, "ddiosimd_cache_evictions_total %d\n", st.Cache.Evictions)
	fmt.Fprintf(&b, "ddiosimd_cache_entries %d\n", st.Cache.Entries)
	fmt.Fprintf(&b, "ddiosimd_cache_capacity %d\n", st.Cache.Capacity)
	fmt.Fprintf(&b, "ddiosimd_cells_simulated_total %d\n", st.CellsSimulated)
	fmt.Fprintf(&b, "ddiosimd_singleflight_shared_total %d\n", st.FlightShared)
	fmt.Fprintf(&b, "ddiosimd_jobs_admitted_total %d\n", st.JobsAdmitted)
	fmt.Fprintf(&b, "ddiosimd_jobs_rejected_total %d\n", st.JobsRejected)
	fmt.Fprintf(&b, "ddiosimd_jobs_active %d\n", st.JobsActive)
	fmt.Fprintf(&b, "ddiosimd_queue_depth %d\n", st.QueueDepth)
	fmt.Fprintf(&b, "ddiosimd_queue_capacity %d\n", st.QueueCapacity)
	s.httpm.emit(&b)
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, b.String())
}
