package serve

import (
	"container/list"
	"sync"

	"ddio/internal/exp"
)

// cellCache is a mutex-guarded LRU of completed cell results, keyed by
// exp.CellKey. Every simulation is a pure function of its Config, so an
// entry never goes stale: eviction is purely a capacity decision, and a
// hit is byte-for-byte equivalent to re-running the cell. Results are
// stored by pointer and shared between requests; they are never mutated
// after a run completes (the aggregation layers only read them).
type cellCache struct {
	mu      sync.Mutex
	cap     int
	ll      *list.List // front = most recently used
	entries map[string]*list.Element

	hits, misses, evictions int64
}

type cacheEntry struct {
	key string
	res *exp.Result
}

// newCellCache returns an LRU holding up to capacity cells (min 1).
func newCellCache(capacity int) *cellCache {
	if capacity < 1 {
		capacity = 1
	}
	return &cellCache{cap: capacity, ll: list.New(), entries: make(map[string]*list.Element)}
}

// Get returns the cached result for key and marks it most recently used.
func (c *cellCache) Get(key string) (*exp.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// Add inserts (or refreshes) key, evicting the least recently used entry
// when the cache is full.
func (c *cellCache) Add(key string, res *exp.Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).res = res
		c.ll.MoveToFront(el)
		return
	}
	c.entries[key] = c.ll.PushFront(&cacheEntry{key: key, res: res})
	if c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
		c.evictions++
	}
}

// cacheStats is a point-in-time snapshot of the cache counters.
type cacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Entries   int   `json:"entries"`
	Capacity  int   `json:"capacity"`
}

// Stats snapshots the counters.
func (c *cellCache) Stats() cacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return cacheStats{Hits: c.hits, Misses: c.misses, Evictions: c.evictions,
		Entries: c.ll.Len(), Capacity: c.cap}
}
