package serve

// serve_test.go exercises the daemon's HTTP surface end to end through
// httptest: request validation (bad bodies are 400s, oversized sweeps
// 422s), admission control (429 + Retry-After when the bounded queue is
// full), the async job lifecycle, the single-run endpoint with its
// cached/cell-key summary, and the stats/metrics counters. Simulation is
// stubbed (deterministic results derived from the cell key) so these
// tests pin serving behavior, not simulator behavior; golden_test.go
// covers the real thing.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ddio/internal/exp"
)

// tinySpec is a one-cell inline sweep request body.
const tinySpec = `{"spec":{"name":"tiny","title":"tiny sweep","axis":"cps","values":[1],
	"layout":"random-blocks","methods":["ddio-sort"],"patterns":["ra"]},"trials":1,"filemb":1}`

// stubResult fabricates a deterministic Result from a config: throughput
// and elapsed time are pure functions of the cell key, so stubbed sweeps
// are exactly as repeatable as real ones.
func stubResult(cfg exp.Config) *exp.Result {
	v, err := strconv.ParseUint(exp.CellKey(cfg)[:12], 16, 64)
	if err != nil {
		panic(err)
	}
	mbps := 1 + float64(v%5000)/100
	return &exp.Result{
		Config:  cfg,
		MBps:    mbps,
		AggMBps: mbps,
		Elapsed: time.Duration(1+v%1000) * time.Millisecond,
		Events:  int64(v % 100000),
	}
}

// stubServer returns a daemon whose runCell is stubbed, plus a per-key
// execution counter map (cell key → *atomic.Int64).
func stubServer(cfg Config) (*Server, *sync.Map) {
	s := New(cfg)
	var counts sync.Map
	s.runCell = func(c exp.Config) (*exp.Result, error) {
		n, _ := counts.LoadOrStore(exp.CellKey(c), new(atomic.Int64))
		n.(*atomic.Int64).Add(1)
		return stubResult(c), nil
	}
	return s, &counts
}

func do(t *testing.T, s *Server, method, target, body string) *httptest.ResponseRecorder {
	t.Helper()
	var req *http.Request
	if body == "" {
		req = httptest.NewRequest(method, target, nil)
	} else {
		req = httptest.NewRequest(method, target, strings.NewReader(body))
	}
	rr := httptest.NewRecorder()
	s.ServeHTTP(rr, req)
	return rr
}

func TestHealthz(t *testing.T) {
	s, _ := stubServer(Config{})
	rr := do(t, s, "GET", "/healthz", "")
	if rr.Code != http.StatusOK || rr.Body.String() != "ok\n" {
		t.Fatalf("healthz: %d %q", rr.Code, rr.Body.String())
	}
}

func TestPresets(t *testing.T) {
	s, _ := stubServer(Config{})
	rr := do(t, s, "GET", "/v1/presets", "")
	if rr.Code != http.StatusOK {
		t.Fatalf("presets: %d %s", rr.Code, rr.Body.String())
	}
	var specs []*exp.SweepSpec
	if err := json.Unmarshal(rr.Body.Bytes(), &specs); err != nil {
		t.Fatalf("presets body: %v", err)
	}
	names := make(map[string]bool)
	for _, sp := range specs {
		names[sp.Name] = true
	}
	for _, want := range []string{"fig5-paper", "degrade-smoke"} {
		if !names[want] {
			t.Fatalf("presets missing %q (got %d specs)", want, len(specs))
		}
	}
}

func TestSweepRejectsBadRequests(t *testing.T) {
	s, _ := stubServer(Config{})
	cases := []struct {
		name, target, body string
		want               int
	}{
		{"malformed json", "/v1/sweeps", `{"preset":`, http.StatusBadRequest},
		{"unknown field", "/v1/sweeps", `{"preset":"fig5-paper","bogus":1}`, http.StatusBadRequest},
		{"empty request", "/v1/sweeps", `{}`, http.StatusBadRequest},
		{"preset and spec", "/v1/sweeps",
			`{"preset":"fig5-paper","spec":{"name":"x","title":"x","axis":"cps","values":[1],
				"layout":"random-blocks","methods":["tc"],"patterns":["ra"]}}`, http.StatusBadRequest},
		{"unknown preset", "/v1/sweeps", `{"preset":"fig99"}`, http.StatusBadRequest},
		{"negative trials", "/v1/sweeps", `{"preset":"fig5-paper","trials":-1}`, http.StatusBadRequest},
		{"trailing data", "/v1/sweeps", `{"preset":"fig5-paper"} {}`, http.StatusBadRequest},
		{"unknown format", "/v1/sweeps?format=pdf", `{"preset":"fig5-paper"}`, http.StatusBadRequest},
		{"timesvg without faults", "/v1/sweeps?format=timesvg", `{"preset":"fig5-paper"}`,
			http.StatusUnprocessableEntity},
		{"bad fault plan", "/v1/sweeps", `{"preset":"fig5-paper","faults":{"disk_error_rate":2}}`,
			http.StatusBadRequest},
		{"run malformed", "/v1/runs", `{"method":`, http.StatusBadRequest},
		{"run unknown method", "/v1/runs", `{"method":"nfs","pattern":"ra"}`, http.StatusBadRequest},
		{"run unknown pattern", "/v1/runs", `{"method":"tc","pattern":"zz"}`, http.StatusBadRequest},
		{"run bad trace", "/v1/runs?trace=pcap", `{"method":"tc","pattern":"ra"}`, http.StatusBadRequest},
		{"job not found", "/v1/jobs/j999", "", http.StatusNotFound},
	}
	for _, c := range cases {
		method := "POST"
		if c.body == "" {
			method = "GET"
		}
		if rr := do(t, s, method, c.target, c.body); rr.Code != c.want {
			t.Errorf("%s: got %d want %d (%s)", c.name, rr.Code, c.want, rr.Body.String())
		}
	}
}

func TestSweepSizeLimit(t *testing.T) {
	s, counts := stubServer(Config{MaxCells: 3})
	// fig5-paper expands far past 3 runs.
	rr := do(t, s, "POST", "/v1/sweeps", `{"preset":"fig5-paper"}`)
	if rr.Code != http.StatusUnprocessableEntity {
		t.Fatalf("oversized sweep: got %d want 422 (%s)", rr.Code, rr.Body.String())
	}
	// A hostile trial count is rejected before any grid is allocated.
	rr = do(t, s, "POST", "/v1/sweeps", `{"preset":"fig5-paper","trials":1000000000}`)
	if rr.Code != http.StatusUnprocessableEntity {
		t.Fatalf("hostile trials: got %d want 422 (%s)", rr.Code, rr.Body.String())
	}
	counts.Range(func(k, v any) bool {
		t.Fatalf("rejected sweep still simulated cell %v", k)
		return false
	})
}

func TestSweepStubbedRoundTrip(t *testing.T) {
	s, counts := stubServer(Config{})
	rr := do(t, s, "POST", "/v1/sweeps?format=json", tinySpec)
	if rr.Code != http.StatusOK {
		t.Fatalf("sweep: %d %s", rr.Code, rr.Body.String())
	}
	if got := rr.Header().Get("Content-Type"); got != "application/json" {
		t.Fatalf("content type %q", got)
	}
	if rr.Header().Get("X-Cells") != "1" || rr.Header().Get("X-Cache-Hits") != "0" {
		t.Fatalf("cold headers: cells=%s hits=%s",
			rr.Header().Get("X-Cells"), rr.Header().Get("X-Cache-Hits"))
	}
	var res exp.SweepResult
	if err := json.Unmarshal(rr.Body.Bytes(), &res); err != nil {
		t.Fatalf("sweep body: %v", err)
	}

	// Warm repeat: byte-identical, fully cache-served, zero simulations.
	rr2 := do(t, s, "POST", "/v1/sweeps?format=json", tinySpec)
	if rr2.Code != http.StatusOK || rr2.Body.String() != rr.Body.String() {
		t.Fatalf("warm sweep not byte-identical (code %d)", rr2.Code)
	}
	if rr2.Header().Get("X-Cache-Hits") != "1" {
		t.Fatalf("warm hits = %s, want 1", rr2.Header().Get("X-Cache-Hits"))
	}
	total := int64(0)
	counts.Range(func(_, v any) bool { total += v.(*atomic.Int64).Load(); return true })
	if total != 1 {
		t.Fatalf("two identical sweeps cost %d simulations, want 1", total)
	}

	// Every format renders from the same cached cell.
	for _, format := range []string{"text", "csv", "tablecsv", "svg"} {
		rr := do(t, s, "POST", "/v1/sweeps?format="+format, tinySpec)
		if rr.Code != http.StatusOK || rr.Body.Len() == 0 {
			t.Fatalf("format %s: %d (%d bytes)", format, rr.Code, rr.Body.Len())
		}
	}
	total = 0
	counts.Range(func(_, v any) bool { total += v.(*atomic.Int64).Load(); return true })
	if total != 1 {
		t.Fatalf("formats re-simulated: %d runs total, want 1", total)
	}
}

func TestAdmissionControl(t *testing.T) {
	s, _ := stubServer(Config{QueueDepth: 1, Concurrency: 1})
	gate := make(chan struct{})
	s.runCell = func(c exp.Config) (*exp.Result, error) {
		<-gate
		return stubResult(c), nil
	}

	// Fill the queue's single slot with an async job that blocks in the
	// simulator...
	rr := do(t, s, "POST", "/v1/sweeps?async=1", tinySpec)
	if rr.Code != http.StatusAccepted {
		t.Fatalf("async submit: %d %s", rr.Code, rr.Body.String())
	}
	var v JobView
	if err := json.Unmarshal(rr.Body.Bytes(), &v); err != nil {
		t.Fatal(err)
	}

	// ...so the next request must be turned away, with Retry-After.
	rr2 := do(t, s, "POST", "/v1/sweeps", tinySpec)
	if rr2.Code != http.StatusTooManyRequests {
		t.Fatalf("full queue: got %d want 429 (%s)", rr2.Code, rr2.Body.String())
	}
	if rr2.Header().Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if got := s.StatsSnapshot().JobsRejected; got != 1 {
		t.Fatalf("jobs_rejected = %d, want 1", got)
	}

	// Unblock, drain the job, and verify the queue accepts work again.
	close(gate)
	deadline := time.Now().Add(5 * time.Second)
	for {
		j := do(t, s, "GET", "/v1/jobs/"+v.ID, "")
		var jv JobView
		if err := json.Unmarshal(j.Body.Bytes(), &jv); err != nil {
			t.Fatal(err)
		}
		if jv.State == JobDone {
			break
		}
		if jv.State == JobFailed || time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %q (%s)", v.ID, jv.State, jv.Error)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if rr3 := do(t, s, "POST", "/v1/sweeps", tinySpec); rr3.Code != http.StatusOK {
		t.Fatalf("post-drain sweep: %d %s", rr3.Code, rr3.Body.String())
	}
}

func TestAsyncJobLifecycle(t *testing.T) {
	s, _ := stubServer(Config{})
	// Sync response is the reference body.
	ref := do(t, s, "POST", "/v1/sweeps?format=csv", tinySpec)
	if ref.Code != http.StatusOK {
		t.Fatalf("sync sweep: %d", ref.Code)
	}

	rr := do(t, s, "POST", "/v1/sweeps?format=csv&async=1", tinySpec)
	if rr.Code != http.StatusAccepted {
		t.Fatalf("async submit: %d %s", rr.Code, rr.Body.String())
	}
	var v JobView
	if err := json.Unmarshal(rr.Body.Bytes(), &v); err != nil {
		t.Fatal(err)
	}
	if v.ID == "" || v.Kind != "sweep" || v.Format != "csv" {
		t.Fatalf("job view: %+v", v)
	}

	deadline := time.Now().Add(5 * time.Second)
	var final JobView
	for {
		j := do(t, s, "GET", "/v1/jobs/"+v.ID, "")
		if err := json.Unmarshal(j.Body.Bytes(), &final); err != nil {
			t.Fatal(err)
		}
		if final.State == JobDone {
			break
		}
		if final.State == JobFailed || time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %q (%s)", v.ID, final.State, final.Error)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if final.ResultURL == "" || final.Cells != 1 {
		t.Fatalf("finished view: %+v", final)
	}
	res := do(t, s, "GET", final.ResultURL, "")
	if res.Code != http.StatusOK {
		t.Fatalf("job result: %d %s", res.Code, res.Body.String())
	}
	if res.Body.String() != ref.Body.String() {
		t.Fatal("async result differs from sync response for the same request")
	}
}

func TestRunEndpoint(t *testing.T) {
	s, counts := stubServer(Config{})
	body := `{"method":"ddio-sort","pattern":"ra","filemb":1}`
	rr := do(t, s, "POST", "/v1/runs", body)
	if rr.Code != http.StatusOK {
		t.Fatalf("run: %d %s", rr.Code, rr.Body.String())
	}
	var sum RunSummary
	if err := json.Unmarshal(rr.Body.Bytes(), &sum); err != nil {
		t.Fatal(err)
	}
	// Method echoes the display name ("DDIO+sort"), which ParseMethod
	// round-trips.
	if sum.Method != "DDIO+sort" || sum.Pattern != "ra" || sum.Cached || len(sum.CellKey) != 64 {
		t.Fatalf("summary: %+v", sum)
	}

	// Same run again: cached, same summary otherwise.
	rr2 := do(t, s, "POST", "/v1/runs", body)
	var sum2 RunSummary
	if err := json.Unmarshal(rr2.Body.Bytes(), &sum2); err != nil {
		t.Fatal(err)
	}
	if !sum2.Cached || sum2.CellKey != sum.CellKey || sum2.MBps != sum.MBps {
		t.Fatalf("warm summary: %+v", sum2)
	}
	if n, ok := counts.Load(sum.CellKey); !ok || n.(*atomic.Int64).Load() != 1 {
		t.Fatalf("cell simulated more than once")
	}
}

func TestStatsAndMetrics(t *testing.T) {
	s, _ := stubServer(Config{QueueDepth: 7})
	do(t, s, "POST", "/v1/sweeps", tinySpec)
	do(t, s, "POST", "/v1/sweeps", tinySpec)

	rr := do(t, s, "GET", "/v1/stats", "")
	var st Stats
	if err := json.Unmarshal(rr.Body.Bytes(), &st); err != nil {
		t.Fatalf("stats: %v", err)
	}
	if st.CellsSimulated != 1 || st.Cache.Hits != 1 || st.JobsAdmitted != 2 ||
		st.QueueCapacity != 7 || st.Cache.Entries != 1 {
		t.Fatalf("stats: %+v", st)
	}

	mr := do(t, s, "GET", "/metrics", "")
	for _, line := range []string{
		"ddiosimd_cache_hits_total 1\n",
		"ddiosimd_cells_simulated_total 1\n",
		"ddiosimd_jobs_admitted_total 2\n",
		fmt.Sprintf("ddiosimd_queue_capacity %d\n", 7),
		// HTTP layer: both sweeps answered in the default text format,
		// and the duration histogram saw both (the +Inf bucket and the
		// count are exact regardless of timing).
		`ddiosimd_responses_total{endpoint="sweeps",format="text"} 2` + "\n",
		`ddiosimd_http_request_duration_seconds_bucket{endpoint="sweeps",le="+Inf"} 2` + "\n",
		`ddiosimd_http_request_duration_seconds_count{endpoint="sweeps"} 2` + "\n",
		`ddiosimd_http_request_duration_seconds_bucket{endpoint="stats",le="0.001"}`,
		`ddiosimd_http_request_duration_seconds_sum{endpoint="sweeps"}`,
	} {
		if !strings.Contains(mr.Body.String(), line) {
			t.Fatalf("metrics missing %q in:\n%s", line, mr.Body.String())
		}
	}

	// The histogram is cumulative: every bucket line for an endpoint
	// carries a count no smaller than the previous bound's.
	var prev int64 = -1
	for _, line := range strings.Split(mr.Body.String(), "\n") {
		if !strings.HasPrefix(line, `ddiosimd_http_request_duration_seconds_bucket{endpoint="sweeps"`) {
			continue
		}
		var n int64
		if _, err := fmt.Sscanf(line[strings.LastIndexByte(line, ' ')+1:], "%d", &n); err != nil {
			t.Fatalf("bucket line %q: %v", line, err)
		}
		if n < prev {
			t.Fatalf("histogram not cumulative at %q", line)
		}
		prev = n
	}
	if prev != 2 {
		t.Fatalf("final sweeps bucket %d, want 2", prev)
	}
}

// TestMetricsPerFormatCounters pins the response counters across
// formats and endpoints: distinct formats count separately, and the
// run endpoint counts its summary and trace responses.
func TestMetricsPerFormatCounters(t *testing.T) {
	s, _ := stubServer(Config{})
	do(t, s, "POST", "/v1/sweeps", tinySpec)
	do(t, s, "POST", "/v1/sweeps?format=csv", tinySpec)
	do(t, s, "POST", "/v1/sweeps?format=csv", tinySpec)
	do(t, s, "POST", "/v1/runs", `{"method":"tc","pattern":"ra","filemb":1,"cps":2,"iops":2,"disks":2}`)
	body := do(t, s, "GET", "/metrics", "").Body.String()
	for _, line := range []string{
		`ddiosimd_responses_total{endpoint="sweeps",format="text"} 1` + "\n",
		`ddiosimd_responses_total{endpoint="sweeps",format="csv"} 2` + "\n",
		`ddiosimd_responses_total{endpoint="runs",format="summary"} 1` + "\n",
	} {
		if !strings.Contains(body, line) {
			t.Fatalf("metrics missing %q in:\n%s", line, body)
		}
	}
}
