package serve

import (
	"strconv"
	"sync"
)

// Job states.
const (
	JobQueued  = "queued"
	JobRunning = "running"
	JobDone    = "done"
	JobFailed  = "failed"
)

// JobView is the JSON shape of GET /v1/jobs/{id}: a point-in-time
// snapshot of one admitted request.
type JobView struct {
	ID     string `json:"id"`
	Kind   string `json:"kind"` // "sweep" or "run"
	Name   string `json:"name"` // spec/preset name, or method/pattern
	Format string `json:"format"`
	State  string `json:"state"`
	Error  string `json:"error,omitempty"`
	// Cells is the number of (cell × trial) simulations the request
	// expands to; CacheHits of them were served from the cell cache.
	Cells     int    `json:"cells,omitempty"`
	CacheHits int64  `json:"cache_hits,omitempty"`
	ResultURL string `json:"result_url,omitempty"` // present once done
}

// job is one admitted request: its public view plus the finished
// response body. done is closed when the job leaves queued/running.
type job struct {
	mu   sync.Mutex
	view JobView
	done chan struct{}

	body        []byte
	contentType string
}

// snapshot returns the job's current public view.
func (j *job) snapshot() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.view
}

// setState transitions the job's lifecycle state.
func (j *job) setState(state string) {
	j.mu.Lock()
	j.view.State = state
	j.mu.Unlock()
}

// finish records the outcome and wakes waiters. On success the rendered
// body is retained for GET /v1/jobs/{id}/result.
func (j *job) finish(body []byte, contentType string, cells int, hits int64, err error) {
	j.mu.Lock()
	j.view.Cells = cells
	j.view.CacheHits = hits
	if err != nil {
		j.view.State = JobFailed
		j.view.Error = err.Error()
	} else {
		j.view.State = JobDone
		j.view.ResultURL = "/v1/jobs/" + j.view.ID + "/result"
		j.body, j.contentType = body, contentType
	}
	j.mu.Unlock()
	close(j.done)
}

// result returns the finished body; ok is false until the job is done.
func (j *job) result() (body []byte, contentType string, ok bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.body, j.contentType, j.view.State == JobDone
}

// jobTable registers jobs under sequential ids and retains the most
// recent keep finished jobs (older bodies are dropped with their jobs, so
// an async client has a bounded window to collect a result).
type jobTable struct {
	mu    sync.Mutex
	seq   int
	keep  int
	jobs  map[string]*job
	order []string // insertion order, for pruning
}

func newJobTable(keep int) *jobTable {
	if keep < 1 {
		keep = 1
	}
	return &jobTable{keep: keep, jobs: make(map[string]*job)}
}

// add registers a new queued job and returns it.
func (t *jobTable) add(kind, name, format string) *job {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seq++
	id := "j" + strconv.Itoa(t.seq)
	j := &job{done: make(chan struct{}), view: JobView{
		ID: id, Kind: kind, Name: name, Format: format, State: JobQueued,
	}}
	t.jobs[id] = j
	t.order = append(t.order, id)
	// Prune oldest finished jobs beyond the retention window; queued and
	// running jobs are never pruned.
	for len(t.order) > t.keep {
		pruned := false
		for i, oid := range t.order {
			old := t.jobs[oid]
			select {
			case <-old.done:
				delete(t.jobs, oid)
				t.order = append(t.order[:i], t.order[i+1:]...)
				pruned = true
			default:
				continue
			}
			break
		}
		if !pruned {
			break
		}
	}
	return j
}

// get returns the job registered under id.
func (t *jobTable) get(id string) (*job, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	j, ok := t.jobs[id]
	return j, ok
}
