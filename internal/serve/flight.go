package serve

import (
	"sync"

	"ddio/internal/exp"
)

// flightGroup deduplicates concurrent executions of the same cell: the
// first caller for a key becomes the leader and runs fn; every caller
// that arrives while the leader is in flight blocks on the same call and
// shares its result. This is what bounds a thundering herd — N identical
// requests hitting a cold cache cost one simulation, not N.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

type flightCall struct {
	done chan struct{}
	res  *exp.Result
	err  error
}

func newFlightGroup() *flightGroup {
	return &flightGroup{m: make(map[string]*flightCall)}
}

// Do executes fn under key, collapsing concurrent calls for the same key
// onto one execution. shared reports whether this caller received a
// leader's result rather than running fn itself. The leader's fn is
// responsible for publishing its result somewhere durable (the cell
// cache) before Do removes the in-flight entry, so a caller that misses
// both the cache and the flight window re-checks the cache inside its own
// fn rather than re-simulating.
func (g *flightGroup) Do(key string, fn func() (*exp.Result, error)) (res *exp.Result, err error, shared bool) {
	g.mu.Lock()
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		<-c.done
		return c.res, c.err, true
	}
	c := &flightCall{done: make(chan struct{})}
	g.m[key] = c
	g.mu.Unlock()

	c.res, c.err = fn()

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(c.done)
	return c.res, c.err, false
}
