package workload

import (
	"reflect"
	"testing"

	"ddio/internal/hpf"
)

func TestSlotAccessBasics(t *testing.T) {
	a := NewSlotAccess([]Slot{
		{CP: 1, FileOff: 100, MemOff: 0, Len: 50},
		{CP: 0, FileOff: 200, MemOff: 10, Len: 30},
		{CP: 0, FileOff: 0, MemOff: 40, Len: 20},
	}, 2)
	if a.NCP() != 2 {
		t.Fatalf("NCP = %d", a.NCP())
	}
	if got := a.Bytes(); got != 100 {
		t.Errorf("Bytes = %d, want 100", got)
	}
	// Per-CP slots sort by file offset regardless of input order.
	if s := a.Slots(0); s[0].FileOff != 0 || s[1].FileOff != 200 {
		t.Errorf("CP0 slots unsorted: %+v", s)
	}
	if got := a.CPBytes(0); got != 60 {
		t.Errorf("CPBytes(0) = %d, want 60", got)
	}
	if got := a.CPBytes(1); got != 50 {
		t.Errorf("CPBytes(1) = %d, want 50", got)
	}
	if got := a.CPBytes(7); got != 0 {
		t.Errorf("CPBytes out of range = %d", got)
	}
	if !a.Partial() {
		t.Error("SlotAccess must report Partial")
	}
	if got := a.Chunks(1); len(got) != 1 || got[0] != (hpf.Chunk{FileOff: 100, MemOff: 0, Len: 50}) {
		t.Errorf("Chunks(1) = %+v", got)
	}
}

func TestSlotAccessRunsInRange(t *testing.T) {
	// Two overlapping reads of the same range on different CPs plus a
	// disjoint slot: every overlapping slot yields its own clipped run.
	a := NewSlotAccess([]Slot{
		{CP: 0, FileOff: 0, MemOff: 0, Len: 100},
		{CP: 1, FileOff: 50, MemOff: 0, Len: 100},
		{CP: 0, FileOff: 300, MemOff: 100, Len: 10},
	}, 2)
	got := a.RunsInRange(40, 40)
	want := []hpf.Run{
		{CP: 0, FileOff: 40, MemOff: 40, Len: 40},
		{CP: 1, FileOff: 50, MemOff: 0, Len: 30},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("RunsInRange(40,40) = %+v, want %+v", got, want)
	}
	if got := a.RunsInRange(150, 100); got != nil {
		t.Errorf("uncovered range produced runs: %+v", got)
	}
	if got := a.RunsInRange(0, 0); got != nil {
		t.Errorf("empty range produced runs: %+v", got)
	}
}

func TestOffsetAccess(t *testing.T) {
	a := NewSlotAccess([]Slot{
		{CP: 0, FileOff: 0, MemOff: 0, Len: 10},
		{CP: 1, FileOff: 10, MemOff: 0, Len: 10},
	}, 2)
	if got := Offset(a, []int64{0, 0}); got != hpf.Access(a) {
		t.Error("all-zero base must return the access unchanged")
	}
	if got := Offset(nil, []int64{5}); got != nil {
		t.Error("nil access must stay nil")
	}
	o := Offset(a, []int64{100, 200})
	if got := o.Chunks(0)[0].MemOff; got != 100 {
		t.Errorf("CP0 chunk MemOff = %d, want 100", got)
	}
	if got := o.Chunks(1)[0].MemOff; got != 200 {
		t.Errorf("CP1 chunk MemOff = %d, want 200", got)
	}
	runs := o.RunsInRange(0, 20)
	if len(runs) != 2 || runs[0].MemOff != 100 || runs[1].MemOff != 200 {
		t.Errorf("offset runs = %+v", runs)
	}
	// Footprints and partiality pass through untouched.
	if o.CPBytes(0) != a.CPBytes(0) || !o.Partial() {
		t.Error("offset wrapper changed CPBytes or Partial")
	}
}

func TestConforming(t *testing.T) {
	// Overlapping and duplicate ranges merge into a disjoint union that
	// is dealt over the CPs byte-balanced and covers every input byte.
	a := NewSlotAccess([]Slot{
		{CP: 0, FileOff: 0, MemOff: 0, Len: 100},
		{CP: 1, FileOff: 50, MemOff: 0, Len: 100}, // overlaps the first
		{CP: 2, FileOff: 50, MemOff: 0, Len: 10},  // duplicate inside
		{CP: 0, FileOff: 300, MemOff: 100, Len: 50},
	}, 4)
	conf := Conforming(a, 4)
	// Union = [0,150) + [300,350) = 200 bytes.
	if got := conf.Bytes(); got != 200 {
		t.Fatalf("conforming bytes = %d, want 200", got)
	}
	covered := make(map[int64]int)
	var total int64
	for cp := 0; cp < 4; cp++ {
		if got := conf.CPBytes(cp); got != 50 {
			t.Errorf("CP%d staging bytes = %d, want 50", cp, got)
		}
		var mem int64
		for _, s := range conf.Slots(cp) {
			if s.MemOff != mem {
				t.Errorf("CP%d staging not cumulative: slot %+v at mem %d", cp, s, mem)
			}
			mem += s.Len
			total += s.Len
			for b := s.FileOff; b < s.FileOff+s.Len; b++ {
				covered[b]++
			}
		}
	}
	if total != 200 || len(covered) != 200 {
		t.Fatalf("conforming covers %d bytes in %d positions, want 200/200", total, len(covered))
	}
	for b, n := range covered {
		if n != 1 {
			t.Fatalf("byte %d covered %d times", b, n)
		}
	}
	// Original ranges must be found in the staging area.
	if runs := conf.RunsInRange(120, 30); len(runs) == 0 {
		t.Error("union range [120,150) not covered")
	}
}
