package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"ddio/internal/hpf"
	"ddio/internal/sim"
)

// Req is one resolved request of a phase's per-CP stream.
type Req struct {
	Write   bool
	FileOff int64
	Len     int64
	MemOff  int64 // offset within the phase's per-CP buffer
	// At is the request's release time relative to the phase start
	// (open arrivals and trace replay); zero means immediately.
	At time.Duration
	// Think is slept before issuing (closed-loop phases).
	Think time.Duration
}

// ResolvedPhase is one phase bound to a run geometry: either a
// collective matrix transfer (Dec + Write) or per-CP request streams
// with the access views the file-system methods consume.
type ResolvedPhase struct {
	Pattern    string
	Collective bool

	// Collective phases.
	Dec   *hpf.Decomp
	Write bool

	// Stream phases.
	Streams  [][]Req     // requests by CP, in issue order
	ReadAcc  *SlotAccess // the phase's read slots (nil when none)
	WriteAcc *SlotAccess // the phase's write slots (nil when none)
	// Delay is each CP's arrival makespan: how long after the phase
	// start its last request is released (think times summed for a
	// closed loop, the last arrival for open and trace phases). The
	// collective methods wait it out before transferring — a
	// disk-directed or two-phase collective cannot start before the
	// requests exist.
	Delay []time.Duration

	Bytes int64 // application bytes the phase moves
}

// Resolved is a spec bound to a run geometry, ready to drive the
// simulator.
type Resolved struct {
	Phases []ResolvedPhase
	Bytes  int64 // total application bytes across phases
	Reads  int   // stream read requests
	Writes int   // stream write requests
}

// CPBytes returns cp's total memory footprint across all phases, with
// per-phase buffers stacked in phase order.
func (r *Resolved) CPBytes(cp int) int64 {
	var n int64
	for i := range r.Phases {
		n += r.Phases[i].cpBytes(cp)
	}
	return n
}

func (ph *ResolvedPhase) cpBytes(cp int) int64 {
	if ph.Collective {
		return ph.Dec.CPBytes(cp)
	}
	var n int64
	for _, rq := range ph.Streams[cp] {
		if end := rq.MemOff + rq.Len; end > n {
			n = end
		}
	}
	return n
}

// Resolve binds the spec to a run geometry, sampling every request from
// dedicated sub-streams of rng ("wl:p<phase>:cp<cp>") so the layout and
// jitter streams — and therefore runs without a workload — are
// untouched, and so the resolved workload is identical for any worker
// count.
func (s *Spec) Resolve(shape Shape, rng *sim.Rand) (*Resolved, error) {
	if !s.Enabled() {
		return nil, errf("spec", "resolving a disabled workload")
	}
	if err := s.Validate(&shape); err != nil {
		return nil, err
	}
	out := &Resolved{Phases: make([]ResolvedPhase, len(s.Phases))}
	for i := range s.Phases {
		p := &s.Phases[i]
		rp := &out.Phases[i]
		rp.Pattern = p.Pattern
		kind, _ := p.kind()
		switch kind {
		case kindCollective:
			rec := p.RecordSize
			if rec == 0 {
				rec = shape.RecordSize
			}
			pat, _ := hpf.ParsePattern(p.Pattern)
			dec, err := pat.Decomp(shape.FileBytes, rec, shape.NCP)
			if err != nil {
				return nil, errf(fmt.Sprintf("phases[%d].pattern", i), "%v", err)
			}
			rp.Collective = true
			rp.Dec = dec
			rp.Write = pat.Write
			for cp := 0; cp < shape.NCP; cp++ {
				rp.Bytes += dec.CPBytes(cp)
			}
		case kindTrace:
			rp.Streams = make([][]Req, shape.NCP)
			rp.Delay = make([]time.Duration, shape.NCP)
			mem := make([]int64, shape.NCP)
			for _, tr := range p.Trace {
				cp := tr.Node % shape.NCP
				rp.Streams[cp] = append(rp.Streams[cp], Req{
					Write:   tr.Op == "w",
					FileOff: tr.Off,
					Len:     tr.Bytes,
					MemOff:  mem[cp],
					At:      tr.T,
				})
				mem[cp] += tr.Bytes
				if tr.T > rp.Delay[cp] {
					rp.Delay[cp] = tr.T
				}
			}
		case kindSynthetic:
			p.resolveSynthetic(rp, i, shape, rng)
		}
		if !rp.Collective {
			var readSlots, writeSlots []Slot
			for cp, reqs := range rp.Streams {
				for _, rq := range reqs {
					slot := Slot{CP: cp, FileOff: rq.FileOff, MemOff: rq.MemOff, Len: rq.Len}
					if rq.Write {
						writeSlots = append(writeSlots, slot)
						out.Writes++
					} else {
						readSlots = append(readSlots, slot)
						out.Reads++
					}
					rp.Bytes += rq.Len
				}
			}
			if len(readSlots) > 0 {
				rp.ReadAcc = NewSlotAccess(readSlots, shape.NCP)
			}
			if len(writeSlots) > 0 {
				rp.WriteAcc = NewSlotAccess(writeSlots, shape.NCP)
			}
		}
		out.Bytes += rp.Bytes
	}
	return out, nil
}

// resolveSynthetic samples one synthetic phase's per-CP streams.
func (p *Phase) resolveSynthetic(rp *ResolvedPhase, phase int, shape Shape, rng *sim.Rand) {
	counts := splitRequests(p, shape.NCP)
	readFrac := 1.0
	if p.ReadFraction != nil {
		readFrac = *p.ReadFraction
	}
	rp.Streams = make([][]Req, shape.NCP)
	rp.Delay = make([]time.Duration, shape.NCP)
	for cp := 0; cp < shape.NCP; cp++ {
		str := rng.Stream(fmt.Sprintf("wl:p%d:cp%d", phase, cp))
		zipfs := map[int]*rand.Zipf{}
		var mem int64
		var arrive time.Duration // cumulative Poisson arrival time
		reqs := make([]Req, 0, counts[cp])
		for k := 0; k < counts[cp]; k++ {
			L := int64(p.RecordSize)
			if len(p.RecordSizes) > 0 {
				L = int64(p.RecordSizes[str.Intn(len(p.RecordSizes))])
			} else if L == 0 {
				L = int64(shape.RecordSize)
			}
			n := shape.FileBytes / L // records of this size in the file
			var idx int64
			switch p.Pattern {
			case PatternZipf:
				z := zipfs[int(L)]
				if z == nil {
					z = rand.NewZipf(str.Rand, p.Alpha, 1, uint64(n-1))
					zipfs[int(L)] = z
				}
				idx = int64(z.Uint64())
			case PatternHotspot:
				hotN := int64(float64(n) * p.HotFraction)
				if hotN < 1 {
					hotN = 1
				}
				if hotN > n {
					hotN = n
				}
				if cold := n - hotN; cold > 0 && str.Float64() >= p.HotWeight {
					idx = hotN + str.Int63n(cold)
				} else {
					idx = str.Int63n(hotN)
				}
			default: // uniform, skew
				idx = str.Int63n(n)
			}
			rq := Req{FileOff: idx * L, Len: L, MemOff: mem}
			if readFrac < 1 && str.Float64() >= readFrac {
				rq.Write = true
			}
			switch p.Arrival {
			case "closed":
				rq.Think = time.Duration(str.ExpFloat64() * float64(p.Think))
				rp.Delay[cp] += rq.Think
			case "poisson":
				arrive += time.Duration(str.ExpFloat64() / p.RatePerSec * float64(time.Second))
				rq.At = arrive
				rp.Delay[cp] = arrive
			}
			mem += L
			reqs = append(reqs, rq)
		}
		rp.Streams[cp] = reqs
	}
}

// splitRequests deals a phase's total request count over the CPs:
// evenly (remainder to the lowest CPs), except under "skew" where CP i
// receives a share proportional to 1/(i+1)^alpha, rounded by largest
// remainder so the total is preserved exactly.
func splitRequests(p *Phase, ncp int) []int {
	counts := make([]int, ncp)
	if p.Pattern != PatternSkew {
		base, rem := p.Requests/ncp, p.Requests%ncp
		for cp := range counts {
			counts[cp] = base
			if cp < rem {
				counts[cp]++
			}
		}
		return counts
	}
	alpha := p.Alpha
	if alpha == 0 {
		alpha = 1
	}
	weights := make([]float64, ncp)
	var sum float64
	for cp := range weights {
		weights[cp] = 1 / math.Pow(float64(cp+1), alpha)
		sum += weights[cp]
	}
	fracs := make([]float64, ncp)
	total := 0
	for cp := range counts {
		share := float64(p.Requests) * weights[cp] / sum
		counts[cp] = int(share)
		fracs[cp] = share - float64(counts[cp])
		total += counts[cp]
	}
	// Largest-remainder rounding, ties to the lower CP: deterministic.
	order := make([]int, ncp)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return fracs[order[a]] > fracs[order[b]] })
	for i := 0; total < p.Requests; i = (i + 1) % ncp {
		counts[order[i]]++
		total++
	}
	return counts
}
