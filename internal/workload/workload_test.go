package workload

import (
	"encoding/json"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

// genSpec generates a random valid spec: 1–4 phases drawn over every
// pattern kind with every knob exercised. All slices are nil-or-filled
// (never empty non-nil) so JSON omitempty round-trips losslessly.
func genSpec(r *rand.Rand) *Spec {
	s := &Spec{Name: "gen"}
	for i, n := 0, 1+r.Intn(4); i < n; i++ {
		var p Phase
		switch r.Intn(6) {
		case 0:
			p.Pattern = PatternUniform
		case 1:
			p.Pattern = PatternSkew
			p.Alpha = r.Float64() * 2
		case 2:
			p.Pattern = PatternHotspot
			p.HotFraction = 0.05 + 0.9*r.Float64()
			p.HotWeight = 0.05 + 0.9*r.Float64()
		case 3:
			p.Pattern = PatternZipf
			p.Alpha = 1.01 + r.Float64()
		case 4:
			p.Pattern = []string{"ra", "rb", "rc", "wb"}[r.Intn(4)]
		case 5:
			p.Pattern = PatternTrace
			for j, m := 0, 1+r.Intn(5); j < m; j++ {
				p.Trace = append(p.Trace, TraceReq{
					T:     time.Duration(r.Intn(1e6)),
					Node:  r.Intn(8),
					Op:    []string{"r", "w"}[r.Intn(2)],
					Off:   int64(r.Intn(1 << 20)),
					Bytes: int64(1 + r.Intn(8192)),
				})
			}
		}
		kind, err := p.kind()
		if err != nil {
			panic(err)
		}
		if kind == kindSynthetic {
			p.Requests = 1 + r.Intn(200)
			if r.Intn(2) == 0 {
				f := r.Float64()
				p.ReadFraction = &f
			}
			switch r.Intn(3) {
			case 0:
				p.RecordSize = 1 + r.Intn(16384)
			case 1:
				for j, m := 0, 1+r.Intn(3); j < m; j++ {
					p.RecordSizes = append(p.RecordSizes, 1+r.Intn(16384))
				}
			}
			switch r.Intn(3) {
			case 1:
				p.Arrival = "closed"
				p.Think = time.Duration(1 + r.Intn(1e6))
			case 2:
				p.Arrival = "poisson"
				p.RatePerSec = 1 + 5000*r.Float64()
			}
		} else if kind == kindCollective && r.Intn(2) == 0 {
			p.RecordSize = 1 + r.Intn(16384)
		}
		s.Phases = append(s.Phases, p)
	}
	return s
}

// TestSpecRoundTrip: 150 randomized specs survive JSON marshal → Parse
// losslessly, and survive a field-reordering rewrite (decode to maps,
// re-encode with alphabetized keys) identically — field order in spec
// documents never matters.
func TestSpecRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 150; i++ {
		s := genSpec(r)
		data, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Parse(data)
		if err != nil {
			t.Fatalf("spec %d: %v\n%s", i, err, data)
		}
		if !reflect.DeepEqual(s, got) {
			t.Fatalf("spec %d: round trip diverged\nwant %+v\ngot  %+v", i, s, got)
		}
		// Reorder every object's fields (map keys re-encode sorted,
		// struct fields encode in declaration order — different orders).
		var m map[string]any
		if err := json.Unmarshal(data, &m); err != nil {
			t.Fatal(err)
		}
		reordered, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		got2, err := Parse(reordered)
		if err != nil {
			t.Fatalf("spec %d reordered: %v\n%s", i, err, reordered)
		}
		if !reflect.DeepEqual(s, got2) {
			t.Fatalf("spec %d: field order changed the parse\nwant %+v\ngot  %+v", i, s, got2)
		}
	}
}

func TestSpecEnabledAndClone(t *testing.T) {
	var nilSpec *Spec
	if nilSpec.Enabled() || (&Spec{}).Enabled() {
		t.Error("nil or empty spec reported enabled")
	}
	if got := nilSpec.Clone(); got == nil || got.Enabled() {
		t.Errorf("nil clone = %+v", got)
	}
	r := rand.New(rand.NewSource(3))
	s := genSpec(r)
	c := s.Clone()
	if !reflect.DeepEqual(s, c) {
		t.Fatalf("clone diverged: %+v vs %+v", s, c)
	}
	// Deep: mutating the clone's slices and pointers leaves the original.
	for i := range c.Phases {
		if c.Phases[i].ReadFraction != nil {
			*c.Phases[i].ReadFraction = -1
		}
		if len(c.Phases[i].RecordSizes) > 0 {
			c.Phases[i].RecordSizes[0] = -1
		}
		if len(c.Phases[i].Trace) > 0 {
			c.Phases[i].Trace[0].Bytes = -1
		}
	}
	if err := s.Validate(nil); err != nil {
		t.Errorf("mutating clone corrupted original: %v", err)
	}
}

func TestSetOpenRate(t *testing.T) {
	var nilSpec *Spec
	nilSpec.SetOpenRate(10) // must not panic
	if nilSpec.OpenPhases() != 0 {
		t.Error("nil spec has open phases")
	}
	s := &Spec{Phases: []Phase{
		{Pattern: PatternUniform, Requests: 4, Arrival: "poisson", RatePerSec: 1},
		{Pattern: PatternUniform, Requests: 4},
		{Pattern: PatternZipf, Alpha: 1.5, Requests: 4, Arrival: "poisson", RatePerSec: 2},
	}}
	if s.OpenPhases() != 2 {
		t.Fatalf("OpenPhases = %d, want 2", s.OpenPhases())
	}
	s.SetOpenRate(750)
	if s.Phases[0].RatePerSec != 750 || s.Phases[2].RatePerSec != 750 {
		t.Errorf("open rates not set: %v / %v", s.Phases[0].RatePerSec, s.Phases[2].RatePerSec)
	}
	if s.Phases[1].RatePerSec != 0 {
		t.Errorf("batch phase got a rate: %v", s.Phases[1].RatePerSec)
	}
}

// TestValidateRejects pins one typed error per class of malformed spec.
func TestValidateRejects(t *testing.T) {
	frac := func(f float64) *float64 { return &f }
	shape := &Shape{NCP: 4, FileBytes: 1 << 20, BlockSize: 8192, RecordSize: 8192}
	cases := []struct {
		name  string
		phase Phase
		field string // expected Error.Field suffix
	}{
		{"unknown pattern", Phase{Pattern: "bogus"}, ".pattern"},
		{"zero requests", Phase{Pattern: PatternUniform}, ".requests"},
		{"zipf alpha too small", Phase{Pattern: PatternZipf, Requests: 1, Alpha: 1}, ".alpha"},
		{"negative skew alpha", Phase{Pattern: PatternSkew, Requests: 1, Alpha: -1}, ".alpha"},
		{"alpha on uniform", Phase{Pattern: PatternUniform, Requests: 1, Alpha: 2}, ".alpha"},
		{"hot fraction out of range", Phase{Pattern: PatternHotspot, Requests: 1, HotFraction: 1, HotWeight: 0.5}, ".hot_fraction"},
		{"hot weight out of range", Phase{Pattern: PatternHotspot, Requests: 1, HotFraction: 0.5, HotWeight: 0}, ".hot_weight"},
		{"hot knobs on uniform", Phase{Pattern: PatternUniform, Requests: 1, HotFraction: 0.5}, ".hot_fraction"},
		{"read fraction out of range", Phase{Pattern: PatternUniform, Requests: 1, ReadFraction: frac(1.5)}, ".read_fraction"},
		{"both record sizes", Phase{Pattern: PatternUniform, Requests: 1, RecordSize: 8, RecordSizes: []int{8}}, ".record_sizes"},
		{"bad record size", Phase{Pattern: PatternUniform, Requests: 1, RecordSizes: []int{0}}, ".record_sizes[0]"},
		{"unknown arrival", Phase{Pattern: PatternUniform, Requests: 1, Arrival: "batchy"}, ".arrival"},
		{"think without closed", Phase{Pattern: PatternUniform, Requests: 1, Think: 1}, ".think_ns"},
		{"rate without poisson", Phase{Pattern: PatternUniform, Requests: 1, RatePerSec: 1}, ".rate_per_sec"},
		{"closed without think", Phase{Pattern: PatternUniform, Requests: 1, Arrival: "closed"}, ".think_ns"},
		{"poisson without rate", Phase{Pattern: PatternUniform, Requests: 1, Arrival: "poisson"}, ".rate_per_sec"},
		{"requests on collective", Phase{Pattern: "ra", Requests: 4}, ".requests"},
		{"arrival on trace", Phase{Pattern: PatternTrace, Arrival: "closed", Think: 1,
			Trace: []TraceReq{{Op: "r", Bytes: 8}}}, ".arrival"},
		{"empty trace", Phase{Pattern: PatternTrace}, ".trace"},
		{"bad trace op", Phase{Pattern: PatternTrace, Trace: []TraceReq{{Op: "x", Bytes: 8}}}, ".trace[0]"},
		{"record beyond file", Phase{Pattern: PatternUniform, Requests: 1, RecordSize: 2 << 20}, ".record_size"},
		{"trace beyond file", Phase{Pattern: PatternTrace, Trace: []TraceReq{{Op: "r", Off: 1 << 20, Bytes: 8}}}, ".trace[0]"},
	}
	for _, tc := range cases {
		s := &Spec{Phases: []Phase{tc.phase}}
		err := s.Validate(shape)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		var werr *Error
		if !errors.As(err, &werr) {
			t.Errorf("%s: error %T is not *workload.Error", tc.name, err)
			continue
		}
		if !strings.HasSuffix(werr.Field, tc.field) {
			t.Errorf("%s: error field %q, want suffix %q", tc.name, werr.Field, tc.field)
		}
	}
	if err := (*Spec)(nil).Validate(shape); err != nil {
		t.Errorf("nil spec failed validation: %v", err)
	}
}

func TestSummary(t *testing.T) {
	if got := (*Spec)(nil).Summary(); got != "whole-file" {
		t.Errorf("nil summary = %q", got)
	}
	s := &Spec{Name: "mix", Phases: []Phase{
		{Pattern: "rb"},
		{Pattern: PatternSkew, Requests: 96, Arrival: "poisson", RatePerSec: 2000},
		{Pattern: PatternTrace, Trace: []TraceReq{{Op: "r", Bytes: 8}}},
	}}
	got := s.Summary()
	for _, want := range []string{"mix:", "rb", "skew×96", "open@2000/s", "trace×1"} {
		if !strings.Contains(got, want) {
			t.Errorf("summary %q missing %q", got, want)
		}
	}
}

func TestResolveSpecArgs(t *testing.T) {
	inline := `{"phases":[{"pattern":"uniform","requests":8}]}`
	s, err := ResolveSpec(inline)
	if err != nil || len(s.Phases) != 1 {
		t.Fatalf("inline: %v %+v", err, s)
	}
	dir := t.TempDir()
	specPath := filepath.Join(dir, "w.json")
	if err := os.WriteFile(specPath, []byte(inline), 0o644); err != nil {
		t.Fatal(err)
	}
	if s, err = ResolveSpec(specPath); err != nil || len(s.Phases) != 1 {
		t.Fatalf("file: %v %+v", err, s)
	}
	if s, err = ResolveSpec("testdata/sample.csv"); err != nil {
		t.Fatalf("csv: %v", err)
	}
	if s.Name != "sample" || len(s.Phases) != 1 || len(s.Phases[0].Trace) == 0 {
		t.Fatalf("csv spec %+v", s)
	}
	if _, err = ResolveSpec(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}
