package workload

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"ddio/internal/sim"
)

func testShape() Shape {
	return Shape{NCP: 4, FileBytes: 1 << 20, BlockSize: 8192, RecordSize: 8192}
}

// TestResolveDeterministic: the resolved request streams — including
// generated Poisson arrival times — are byte-identical for a fixed seed
// and differ for a different seed.
func TestResolveDeterministic(t *testing.T) {
	frac := 0.7
	s := &Spec{Phases: []Phase{
		{Pattern: PatternSkew, Requests: 64, Alpha: 1.2, ReadFraction: &frac,
			Arrival: "poisson", RatePerSec: 3000},
		{Pattern: PatternZipf, Requests: 32, Alpha: 1.5,
			RecordSizes: []int{2048, 4096}, Arrival: "closed", Think: 50 * time.Microsecond},
	}}
	enc := func(seed int64) []byte {
		res, err := s.Resolve(testShape(), sim.NewRand(seed))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		for _, ph := range res.Phases {
			if err := json.NewEncoder(&buf).Encode(ph.Streams); err != nil {
				t.Fatal(err)
			}
		}
		return buf.Bytes()
	}
	a, b := enc(1), enc(1)
	if !bytes.Equal(a, b) {
		t.Fatal("same seed resolved to different streams")
	}
	if bytes.Equal(a, enc(2)) {
		t.Fatal("different seed resolved to identical streams")
	}
}

// TestResolveUsesDedicatedStreams: resolving a workload must not
// consume draws from the root rng — layout and jitter streams stay
// exactly as they are in a workload-free run.
func TestResolveUsesDedicatedStreams(t *testing.T) {
	s := &Spec{Phases: []Phase{{Pattern: PatternUniform, Requests: 100}}}
	rng := sim.NewRand(42)
	want := sim.NewRand(42).Int63()
	if _, err := s.Resolve(testShape(), rng); err != nil {
		t.Fatal(err)
	}
	if got := rng.Int63(); got != want {
		t.Fatalf("Resolve consumed root rng draws: next = %d, want %d", got, want)
	}
}

func TestResolveShapes(t *testing.T) {
	frac := 0.5
	s := &Spec{Phases: []Phase{
		{Pattern: "rb"},
		{Pattern: PatternUniform, Requests: 40, ReadFraction: &frac},
		{Pattern: PatternTrace, Trace: []TraceReq{
			{T: 2 * time.Millisecond, Node: 5, Op: "w", Off: 4096, Bytes: 1024},
			{T: time.Millisecond, Node: 1, Op: "r", Off: 0, Bytes: 512},
		}},
	}}
	shape := testShape()
	res, err := s.Resolve(shape, sim.NewRand(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Phases) != 3 {
		t.Fatalf("%d phases", len(res.Phases))
	}
	coll := res.Phases[0]
	if !coll.Collective || coll.Dec == nil || coll.Write {
		t.Fatalf("rb phase resolved wrong: %+v", coll)
	}
	if coll.Bytes != shape.FileBytes {
		t.Errorf("rb bytes = %d, want %d", coll.Bytes, shape.FileBytes)
	}
	syn := res.Phases[1]
	nreq := 0
	for cp, reqs := range syn.Streams {
		nreq += len(reqs)
		var mem int64
		for _, rq := range reqs {
			if rq.MemOff != mem {
				t.Fatalf("CP%d stream not memory-cumulative: %+v at %d", cp, rq, mem)
			}
			mem += rq.Len
			if rq.FileOff < 0 || rq.FileOff+rq.Len > shape.FileBytes {
				t.Fatalf("request beyond file: %+v", rq)
			}
		}
	}
	if nreq != 40 {
		t.Errorf("synthetic requests = %d, want 40", nreq)
	}
	if syn.ReadAcc == nil || syn.WriteAcc == nil {
		t.Error("mixed phase needs both read and write accesses")
	}
	if res.Reads+res.Writes != 42 || res.Writes < 1 {
		t.Errorf("reads/writes = %d/%d", res.Reads, res.Writes)
	}
	tr := res.Phases[2]
	// Node 5 maps onto CP 5 % 4 = 1, same as node 1; both requests land
	// on CP1 in trace order (write first), and Delay is the CP's latest
	// release time.
	if got := len(tr.Streams[1]); got != 2 {
		t.Fatalf("trace CP1 stream = %d requests, want 2", got)
	}
	if tr.Streams[1][0].At != 2*time.Millisecond || !tr.Streams[1][0].Write {
		t.Errorf("trace request resolved wrong: %+v", tr.Streams[1][0])
	}
	if tr.Streams[1][1].MemOff != 1024 || tr.Streams[1][1].Write {
		t.Errorf("trace memory not cumulative: %+v", tr.Streams[1][1])
	}
	if tr.Delay[1] != 2*time.Millisecond {
		t.Errorf("trace CP1 delay = %v", tr.Delay[1])
	}
	if (&Spec{}).Enabled() {
		t.Fatal("sanity")
	}
	if _, err := (&Spec{}).Resolve(shape, sim.NewRand(1)); err == nil {
		t.Error("resolving a disabled spec must fail")
	}
}

func TestSplitRequests(t *testing.T) {
	even := splitRequests(&Phase{Pattern: PatternUniform, Requests: 10}, 4)
	if want := []int{3, 3, 2, 2}; !equalInts(even, want) {
		t.Errorf("even split = %v, want %v", even, want)
	}
	skew := splitRequests(&Phase{Pattern: PatternSkew, Requests: 100, Alpha: 1}, 4)
	total := 0
	for cp := range skew {
		total += skew[cp]
		if cp > 0 && skew[cp] > skew[cp-1] {
			t.Errorf("skew split not monotone: %v", skew)
		}
	}
	if total != 100 {
		t.Errorf("skew split total = %d, want 100", total)
	}
	if skew[0] <= skew[3] {
		t.Errorf("no skew: %v", skew)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
