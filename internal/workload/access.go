package workload

import (
	"sort"

	"ddio/internal/hpf"
)

// Slot is one resolved request's place in a phase: a contiguous file
// range bound to a location in its CP's memory. Overlapping or
// duplicate file ranges are legal — each request gets its own slot (a
// read delivers its own copy; concurrent writes carry the identical
// deterministic file image, so their order cannot matter).
type Slot struct {
	CP      int
	FileOff int64
	MemOff  int64
	Len     int64
}

// SlotAccess is the hpf.Access over a set of request slots — the shape
// the three file-system methods consume for workload phases, exactly as
// they consume an hpf.Decomp for matrix phases.
type SlotAccess struct {
	perCP   [][]Slot // slots by CP, each sorted by (FileOff, MemOff)
	cpBytes []int64  // memory footprint per CP
}

// NewSlotAccess builds the access for a slot set over ncp CPs. Slots
// are sorted per CP by (FileOff, MemOff); input order does not matter.
func NewSlotAccess(slots []Slot, ncp int) *SlotAccess {
	a := &SlotAccess{perCP: make([][]Slot, ncp), cpBytes: make([]int64, ncp)}
	for _, s := range slots {
		a.perCP[s.CP] = append(a.perCP[s.CP], s)
		if end := s.MemOff + s.Len; end > a.cpBytes[s.CP] {
			a.cpBytes[s.CP] = end
		}
	}
	for cp := range a.perCP {
		sort.Slice(a.perCP[cp], func(i, j int) bool {
			si, sj := a.perCP[cp][i], a.perCP[cp][j]
			if si.FileOff != sj.FileOff {
				return si.FileOff < sj.FileOff
			}
			return si.MemOff < sj.MemOff
		})
	}
	return a
}

// NCP returns the CP count the access was built over.
func (a *SlotAccess) NCP() int { return len(a.perCP) }

// Slots returns cp's slots sorted by (FileOff, MemOff).
func (a *SlotAccess) Slots(cp int) []Slot { return a.perCP[cp] }

// Bytes returns the total bytes the access moves (slot lengths summed;
// overlapping slots each count — each is a separate transfer).
func (a *SlotAccess) Bytes() int64 {
	var n int64
	for _, slots := range a.perCP {
		for _, s := range slots {
			n += s.Len
		}
	}
	return n
}

// Chunks returns cp's slots as chunks in ascending file order.
func (a *SlotAccess) Chunks(cp int) []hpf.Chunk {
	slots := a.perCP[cp]
	if len(slots) == 0 {
		return nil
	}
	out := make([]hpf.Chunk, len(slots))
	for i, s := range slots {
		out[i] = hpf.Chunk{FileOff: s.FileOff, MemOff: s.MemOff, Len: s.Len}
	}
	return out
}

// RunsInRange returns the runs covering file range [off, off+n) in
// ascending file order (ties broken by CP then memory offset, so the
// order is deterministic). Every overlapping slot yields its own run.
func (a *SlotAccess) RunsInRange(off, n int64) []hpf.Run {
	if n <= 0 {
		return nil
	}
	end := off + n
	var out []hpf.Run
	for cp, slots := range a.perCP {
		// Slots are sorted by FileOff; find the first that can overlap.
		i := sort.Search(len(slots), func(i int) bool {
			return slots[i].FileOff+slots[i].Len > off
		})
		for ; i < len(slots) && slots[i].FileOff < end; i++ {
			s := slots[i]
			lo, hi := s.FileOff, s.FileOff+s.Len
			if lo < off {
				lo = off
			}
			if hi > end {
				hi = end
			}
			if hi <= lo {
				continue
			}
			out = append(out, hpf.Run{
				CP:      cp,
				FileOff: lo,
				MemOff:  s.MemOff + (lo - s.FileOff),
				Len:     hi - lo,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].FileOff != out[j].FileOff {
			return out[i].FileOff < out[j].FileOff
		}
		if out[i].CP != out[j].CP {
			return out[i].CP < out[j].CP
		}
		return out[i].MemOff < out[j].MemOff
	})
	return out
}

// CPBytes returns cp's memory footprint (the end of its last slot).
func (a *SlotAccess) CPBytes(cp int) int64 {
	if cp >= len(a.cpBytes) {
		return 0
	}
	return a.cpBytes[cp]
}

// Partial reports true: request streams rarely cover the whole file,
// so disk-directed plans filter to the covered blocks.
func (a *SlotAccess) Partial() bool { return true }

var _ hpf.Access = (*SlotAccess)(nil)

// Offset shifts an access's memory addressing by a per-CP base,
// turning buffer-relative offsets into absolute CP-memory addresses
// (the experiment layer stacks multiple phases, and a staging area, in
// one CP memory). A nil or all-zero base returns acc unchanged.
func Offset(acc hpf.Access, base []int64) hpf.Access {
	all0 := true
	for _, b := range base {
		if b != 0 {
			all0 = false
			break
		}
	}
	if acc == nil || all0 {
		return acc
	}
	return &offsetAccess{acc: acc, base: base}
}

type offsetAccess struct {
	acc  hpf.Access
	base []int64
}

func (o *offsetAccess) baseOf(cp int) int64 {
	if cp < len(o.base) {
		return o.base[cp]
	}
	return 0
}

func (o *offsetAccess) Chunks(cp int) []hpf.Chunk {
	src := o.acc.Chunks(cp)
	if len(src) == 0 {
		return src
	}
	b := o.baseOf(cp)
	out := make([]hpf.Chunk, len(src))
	for i, c := range src {
		c.MemOff += b
		out[i] = c
	}
	return out
}

func (o *offsetAccess) RunsInRange(off, n int64) []hpf.Run {
	src := o.acc.RunsInRange(off, n)
	if len(src) == 0 {
		return src
	}
	out := make([]hpf.Run, len(src))
	for i, r := range src {
		r.MemOff += o.baseOf(r.CP)
		out[i] = r
	}
	return out
}

func (o *offsetAccess) CPBytes(cp int) int64 { return o.acc.CPBytes(cp) }
func (o *offsetAccess) Partial() bool        { return o.acc.Partial() }

// Conforming builds the conforming distribution of an access for
// two-phase I/O: the union of the file ranges the access touches,
// merged into maximal disjoint extents and dealt out contiguously over
// ncp CPs balanced by bytes — a generalized 1-D BLOCK staging layout.
// Memory offsets are buffer-relative (cumulative per CP).
func Conforming(acc *SlotAccess, ncp int) *SlotAccess {
	type ext struct{ lo, hi int64 }
	var exts []ext
	for _, slots := range acc.perCP {
		for _, s := range slots {
			exts = append(exts, ext{s.FileOff, s.FileOff + s.Len})
		}
	}
	sort.Slice(exts, func(i, j int) bool { return exts[i].lo < exts[j].lo })
	merged := exts[:0]
	for _, e := range exts {
		if n := len(merged); n > 0 && e.lo <= merged[n-1].hi {
			if e.hi > merged[n-1].hi {
				merged[n-1].hi = e.hi
			}
			continue
		}
		merged = append(merged, e)
	}
	var total int64
	for _, e := range merged {
		total += e.hi - e.lo
	}
	var slots []Slot
	var taken int64 // union bytes already dealt to CPs before cp
	i, pos := 0, int64(0)
	for cp := 0; cp < ncp && i < len(merged); cp++ {
		// cp's fair share: its slice of the union, in file order.
		want := total*int64(cp+1)/int64(ncp) - taken
		var mem int64
		for want > 0 && i < len(merged) {
			e := merged[i]
			if pos < e.lo {
				pos = e.lo
			}
			n := e.hi - pos
			if n > want {
				n = want
			}
			slots = append(slots, Slot{CP: cp, FileOff: pos, MemOff: mem, Len: n})
			mem += n
			pos += n
			taken += n
			want -= n
			if pos == e.hi {
				i++
			}
		}
	}
	return NewSlotAccess(slots, ncp)
}
