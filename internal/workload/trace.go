package workload

import (
	"os"
	"strconv"
	"strings"
	"time"
)

// ParseTrace parses a block-request trace in the simple CSV format
//
//	time,node,op,offset,bytes
//
// — time in (fractional) seconds from the trace start, node the issuing
// compute node (mapped modulo the run's CPs), op "r" or "w", offset and
// bytes the file range — into a single-phase replay spec. Blank lines
// and '#' comments are skipped, and an optional header line (first
// field "time") is tolerated. Malformed input returns a typed *Error,
// never a panic.
func ParseTrace(data []byte) (*Spec, error) {
	var reqs []TraceReq
	first := true
	for ln, line := range strings.Split(string(data), "\n") {
		field := "trace line " + strconv.Itoa(ln+1)
		line = strings.TrimSpace(strings.TrimSuffix(line, "\r"))
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		cols := strings.Split(line, ",")
		if len(cols) != 5 {
			return nil, errf(field, "want 5 fields time,node,op,offset,bytes, got %d", len(cols))
		}
		for i := range cols {
			cols[i] = strings.TrimSpace(cols[i])
		}
		if first && strings.EqualFold(cols[0], "time") {
			first = false
			continue // header
		}
		first = false
		sec, err := strconv.ParseFloat(cols[0], 64)
		if err != nil || sec < 0 || sec != sec || sec > 1e9 {
			return nil, errf(field, "bad time %q", cols[0])
		}
		node, err := strconv.Atoi(cols[1])
		if err != nil || node < 0 {
			return nil, errf(field, "bad node %q", cols[1])
		}
		op := strings.ToLower(cols[2])
		switch op {
		case "r", "read":
			op = "r"
		case "w", "write":
			op = "w"
		default:
			return nil, errf(field, "bad op %q (want r or w)", cols[2])
		}
		off, err := strconv.ParseInt(cols[3], 10, 64)
		if err != nil || off < 0 {
			return nil, errf(field, "bad offset %q", cols[3])
		}
		n, err := strconv.ParseInt(cols[4], 10, 64)
		if err != nil || n <= 0 {
			return nil, errf(field, "bad byte count %q", cols[4])
		}
		reqs = append(reqs, TraceReq{
			T:     time.Duration(sec * float64(time.Second)),
			Node:  node,
			Op:    op,
			Off:   off,
			Bytes: n,
		})
	}
	if len(reqs) == 0 {
		return nil, errf("trace", "no requests")
	}
	s := &Spec{Name: "trace", Phases: []Phase{{Pattern: PatternTrace, Trace: reqs}}}
	if err := s.Validate(nil); err != nil {
		return nil, err
	}
	return s, nil
}

// LoadTrace reads and parses a CSV block trace from path (see
// ParseTrace for the format).
func LoadTrace(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, errf("trace", "reading %q: %v", path, err)
	}
	s, err := ParseTrace(data)
	if err != nil {
		return nil, err
	}
	if base := strings.TrimSuffix(path[strings.LastIndexByte(path, '/')+1:], ".csv"); base != "" {
		s.Name = base
	}
	return s, nil
}
