// Package workload is the simulator's scenario layer: a declarative JSON
// DSL for per-CP request streams — the paper's collective matrix
// patterns plus skewed, hotspot, and Zipf-distributed synthetic streams
// with configurable record-size distributions, read/write mixes, and
// arrival processes (closed-loop think time or open Poisson) — and a
// block-trace replay frontend (LoadTrace) that parses simple CSV traces
// into the same resolved representation.
//
// The package follows internal/fault's nil-safe contract: a nil (or
// phase-less) *Spec is disabled, and a run without a workload performs
// exactly the same random draws and fires exactly the same events as a
// build without this package — all workload randomness comes from
// dedicated "wl:*" sub-streams of the run seed (see Resolve).
package workload

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"

	"ddio/internal/hpf"
)

// Synthetic pattern names (Phase.Pattern also accepts the paper's
// collective shorthand, e.g. "ra" or "wcb", and "trace" for embedded
// trace phases).
const (
	// PatternUniform draws record indices uniformly over the file.
	PatternUniform = "uniform"
	// PatternSkew draws uniformly but skews the per-CP request counts:
	// CP i issues a share proportional to 1/(i+1)^alpha.
	PatternSkew = "skew"
	// PatternHotspot sends HotWeight of the requests into the first
	// HotFraction of the file, the rest uniformly over the remainder.
	PatternHotspot = "hotspot"
	// PatternZipf draws record indices from a Zipf distribution with
	// exponent Alpha (> 1), rank 0 being the file's first record.
	PatternZipf = "zipf"
	// PatternTrace replays the phase's embedded Trace entries.
	PatternTrace = "trace"
)

// Error is the typed validation error every workload entry point
// returns for malformed input: which field, and why. Parse and the
// trace reader never panic on malformed input.
type Error struct {
	Field  string // the offending spec field, e.g. "phases[1].alpha"
	Reason string
}

// Error implements error.
func (e *Error) Error() string { return "workload: " + e.Field + ": " + e.Reason }

func errf(field, format string, args ...any) *Error {
	return &Error{Field: field, Reason: fmt.Sprintf(format, args...)}
}

// Spec declares a workload: a named sequence of phases separated by
// barriers. The zero value (and a nil *Spec) is disabled: runs fall
// back to the classic whole-file collective transfer.
type Spec struct {
	// Name labels the workload in tables and summaries.
	Name string `json:"name,omitempty"`
	// Phases run in order, with a full barrier between consecutive
	// phases (each phase's transfer is itself collective).
	Phases []Phase `json:"phases,omitempty"`
}

// Phase is one barrier-separated stage of a workload.
type Phase struct {
	// Pattern selects the access pattern: a synthetic name ("uniform",
	// "skew", "hotspot", "zipf"), "trace" for an embedded trace, or the
	// paper's collective shorthand ("ra", "rb", ..., "wcb") for a
	// whole-file matrix transfer.
	Pattern string `json:"pattern"`

	// Requests is the total request count of a synthetic phase, split
	// over the CPs (evenly, except under "skew").
	Requests int `json:"requests,omitempty"`
	// RecordSize fixes the request size in bytes; zero means the
	// run's configured record size. Collective phases may also set it
	// to override the decomposition's record size.
	RecordSize int `json:"record_size,omitempty"`
	// RecordSizes, when non-empty, draws each request's size uniformly
	// from this set instead (synthetic phases only).
	RecordSizes []int `json:"record_sizes,omitempty"`
	// ReadFraction is the probability a request is a read; nil means
	// 1 (all reads). Synthetic phases only.
	ReadFraction *float64 `json:"read_fraction,omitempty"`

	// Alpha is the skew exponent: Zipf exponent for "zipf" (must
	// exceed 1), per-CP load-imbalance exponent for "skew" (zero means
	// 1).
	Alpha float64 `json:"alpha,omitempty"`
	// HotFraction/HotWeight shape "hotspot": HotWeight of the requests
	// target the first HotFraction of the file. Both in (0, 1).
	HotFraction float64 `json:"hot_fraction,omitempty"`
	HotWeight   float64 `json:"hot_weight,omitempty"`

	// Arrival selects the arrival process of a synthetic phase: ""
	// issues requests back to back (batch), "closed" sleeps an
	// exponential think time of mean Think before each request, and
	// "poisson" releases requests as an open Poisson process of
	// RatePerSec per CP.
	Arrival string `json:"arrival,omitempty"`
	// Think is the mean think time of a "closed" phase.
	Think time.Duration `json:"think_ns,omitempty"`
	// RatePerSec is the per-CP arrival rate of a "poisson" phase.
	RatePerSec float64 `json:"rate_per_sec,omitempty"`

	// Trace holds the embedded requests of a "trace" phase, as parsed
	// by LoadTrace.
	Trace []TraceReq `json:"trace,omitempty"`
}

// TraceReq is one replayed trace record: at time T, node issues an Op
// ("r" or "w") of Bytes bytes at file offset Off. Nodes are mapped onto
// the run's CPs modulo NCP at resolve time.
type TraceReq struct {
	T     time.Duration `json:"t_ns"`
	Node  int           `json:"node"`
	Op    string        `json:"op"`
	Off   int64         `json:"offset"`
	Bytes int64         `json:"bytes"`
}

// Enabled reports whether the spec declares any work. A nil or
// phase-less spec is disabled: runs behave bit-identically to builds
// without the workload layer.
func (s *Spec) Enabled() bool { return s != nil && len(s.Phases) > 0 }

// Clone returns a deep copy (nil-safe; cloning nil yields a zero spec).
// Sweep axes clone before mutating so cells never share state.
func (s *Spec) Clone() *Spec {
	c := new(Spec)
	if s == nil {
		return c
	}
	c.Name = s.Name
	if s.Phases != nil {
		c.Phases = make([]Phase, len(s.Phases))
		for i, p := range s.Phases {
			q := p
			if p.RecordSizes != nil {
				q.RecordSizes = append([]int(nil), p.RecordSizes...)
			}
			if p.ReadFraction != nil {
				v := *p.ReadFraction
				q.ReadFraction = &v
			}
			if p.Trace != nil {
				q.Trace = append([]TraceReq(nil), p.Trace...)
			}
			c.Phases[i] = q
		}
	}
	return c
}

// SetOpenRate sets the arrival rate of every open ("poisson") phase —
// the knob the wlrate sweep axis turns.
func (s *Spec) SetOpenRate(ratePerSec float64) {
	if s == nil {
		return
	}
	for i := range s.Phases {
		if s.Phases[i].Arrival == "poisson" {
			s.Phases[i].RatePerSec = ratePerSec
		}
	}
}

// OpenPhases reports how many phases use open (Poisson) arrivals.
func (s *Spec) OpenPhases() int {
	n := 0
	if s != nil {
		for _, p := range s.Phases {
			if p.Arrival == "poisson" {
				n++
			}
		}
	}
	return n
}

// kind classifies a phase's pattern.
type patternKind int

const (
	kindSynthetic patternKind = iota
	kindTrace
	kindCollective
)

func (p *Phase) kind() (patternKind, error) {
	switch p.Pattern {
	case PatternUniform, PatternSkew, PatternHotspot, PatternZipf:
		return kindSynthetic, nil
	case PatternTrace:
		return kindTrace, nil
	}
	if _, err := hpf.ParsePattern(p.Pattern); err == nil {
		return kindCollective, nil
	}
	return 0, fmt.Errorf("unknown pattern %q", p.Pattern)
}

// Shape is the run geometry a spec is resolved against. Validate takes
// a nil *Shape for shape-independent checks (sweep templates, parse
// time); Resolve re-validates against the concrete shape.
type Shape struct {
	NCP        int   // compute processors issuing requests
	FileBytes  int64 // file size
	BlockSize  int   // file-system block size
	RecordSize int   // default request size when a phase sets none
}

// Validate checks the spec's internal consistency, and — when shape is
// non-nil — its fit to the run geometry. All failures are typed
// (*Error), nil-safe on a nil spec.
func (s *Spec) Validate(shape *Shape) error {
	if s == nil {
		return nil
	}
	for i := range s.Phases {
		if err := s.Phases[i].validate(fmt.Sprintf("phases[%d]", i), shape); err != nil {
			return err
		}
	}
	return nil
}

func (p *Phase) validate(field string, shape *Shape) error {
	kind, err := p.kind()
	if err != nil {
		return errf(field+".pattern", "%v", err)
	}
	if p.RecordSize < 0 {
		return errf(field+".record_size", "negative size %d", p.RecordSize)
	}
	if kind != kindSynthetic {
		// The synthetic knobs are meaningless on collective and trace
		// phases; reject them so typos fail loudly.
		switch {
		case p.Requests != 0:
			return errf(field+".requests", "not valid for pattern %q", p.Pattern)
		case len(p.RecordSizes) != 0:
			return errf(field+".record_sizes", "not valid for pattern %q", p.Pattern)
		case p.ReadFraction != nil:
			return errf(field+".read_fraction", "not valid for pattern %q", p.Pattern)
		case p.Alpha != 0 || p.HotFraction != 0 || p.HotWeight != 0:
			return errf(field+".alpha", "skew knobs not valid for pattern %q", p.Pattern)
		case p.Arrival != "" || p.Think != 0 || p.RatePerSec != 0:
			return errf(field+".arrival", "arrival process not valid for pattern %q", p.Pattern)
		}
	}
	switch kind {
	case kindCollective:
		if len(p.Trace) != 0 {
			return errf(field+".trace", "not valid for pattern %q", p.Pattern)
		}
		if shape != nil {
			rec := p.RecordSize
			if rec == 0 {
				rec = shape.RecordSize
			}
			pat, _ := hpf.ParsePattern(p.Pattern)
			if _, err := pat.Decomp(shape.FileBytes, rec, shape.NCP); err != nil {
				return errf(field+".pattern", "%v", err)
			}
		}
	case kindTrace:
		if len(p.Trace) == 0 {
			return errf(field+".trace", "trace phase has no requests")
		}
		for j, r := range p.Trace {
			tf := fmt.Sprintf("%s.trace[%d]", field, j)
			switch {
			case r.T < 0:
				return errf(tf, "negative time %v", r.T)
			case r.Node < 0:
				return errf(tf, "negative node %d", r.Node)
			case r.Op != "r" && r.Op != "w":
				return errf(tf, "op %q must be \"r\" or \"w\"", r.Op)
			case r.Off < 0 || r.Bytes <= 0:
				return errf(tf, "bad range [%d, +%d)", r.Off, r.Bytes)
			}
			if shape != nil && r.Off+r.Bytes > shape.FileBytes {
				return errf(tf, "range [%d, +%d) beyond file of %d bytes", r.Off, r.Bytes, shape.FileBytes)
			}
		}
	case kindSynthetic:
		if p.Requests < 1 {
			return errf(field+".requests", "synthetic phase needs at least one request, got %d", p.Requests)
		}
		if len(p.Trace) != 0 {
			return errf(field+".trace", "not valid for pattern %q", p.Pattern)
		}
		if p.RecordSize != 0 && len(p.RecordSizes) != 0 {
			return errf(field+".record_sizes", "set record_size or record_sizes, not both")
		}
		for j, sz := range p.RecordSizes {
			if sz < 1 {
				return errf(fmt.Sprintf("%s.record_sizes[%d]", field, j), "size %d < 1", sz)
			}
		}
		if p.ReadFraction != nil && (*p.ReadFraction < 0 || *p.ReadFraction > 1) {
			return errf(field+".read_fraction", "%v outside [0, 1]", *p.ReadFraction)
		}
		switch p.Pattern {
		case PatternZipf:
			if p.Alpha <= 1 {
				return errf(field+".alpha", "zipf exponent %v must exceed 1", p.Alpha)
			}
		case PatternSkew:
			if p.Alpha < 0 {
				return errf(field+".alpha", "negative skew exponent %v", p.Alpha)
			}
		default:
			if p.Alpha != 0 {
				return errf(field+".alpha", "not valid for pattern %q", p.Pattern)
			}
		}
		if p.Pattern == PatternHotspot {
			if p.HotFraction <= 0 || p.HotFraction >= 1 {
				return errf(field+".hot_fraction", "%v outside (0, 1)", p.HotFraction)
			}
			if p.HotWeight <= 0 || p.HotWeight >= 1 {
				return errf(field+".hot_weight", "%v outside (0, 1)", p.HotWeight)
			}
		} else if p.HotFraction != 0 || p.HotWeight != 0 {
			return errf(field+".hot_fraction", "not valid for pattern %q", p.Pattern)
		}
		switch p.Arrival {
		case "":
			if p.Think != 0 {
				return errf(field+".think_ns", "think time needs arrival \"closed\"")
			}
			if p.RatePerSec != 0 {
				return errf(field+".rate_per_sec", "arrival rate needs arrival \"poisson\"")
			}
		case "closed":
			if p.Think <= 0 {
				return errf(field+".think_ns", "closed loop needs a positive think time")
			}
			if p.RatePerSec != 0 {
				return errf(field+".rate_per_sec", "arrival rate not valid for a closed loop")
			}
		case "poisson":
			if p.RatePerSec <= 0 {
				return errf(field+".rate_per_sec", "open arrivals need a positive rate")
			}
			if p.Think != 0 {
				return errf(field+".think_ns", "think time not valid for open arrivals")
			}
		default:
			return errf(field+".arrival", "unknown arrival process %q", p.Arrival)
		}
		if shape != nil {
			sizes := p.RecordSizes
			if len(sizes) == 0 {
				sz := p.RecordSize
				if sz == 0 {
					sz = shape.RecordSize
				}
				sizes = []int{sz}
			}
			for _, sz := range sizes {
				if int64(sz) > shape.FileBytes {
					return errf(field+".record_size", "request size %d exceeds file of %d bytes", sz, shape.FileBytes)
				}
			}
		}
	}
	return nil
}

// Summary renders the spec compactly for table headers and logs.
func (s *Spec) Summary() string {
	if !s.Enabled() {
		return "whole-file"
	}
	parts := make([]string, 0, len(s.Phases))
	for _, p := range s.Phases {
		switch kind, _ := p.kind(); kind {
		case kindTrace:
			parts = append(parts, fmt.Sprintf("trace×%d", len(p.Trace)))
		case kindCollective:
			parts = append(parts, p.Pattern)
		default:
			d := fmt.Sprintf("%s×%d", p.Pattern, p.Requests)
			switch p.Arrival {
			case "closed":
				d += fmt.Sprintf(" closed/%v", p.Think)
			case "poisson":
				d += fmt.Sprintf(" open@%g/s", p.RatePerSec)
			}
			parts = append(parts, d)
		}
	}
	name := s.Name
	if name == "" {
		name = "workload"
	}
	return name + ": " + strings.Join(parts, "; ")
}

// Parse parses a JSON workload spec. Unknown fields are rejected so
// typos in hand-written specs fail loudly, and the parsed spec is
// validated shape-independently (the run geometry re-validates it).
func Parse(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, errf("spec", "parsing: %v", err)
	}
	if dec.More() {
		return nil, errf("spec", "trailing data after spec")
	}
	if err := s.Validate(nil); err != nil {
		return nil, err
	}
	return &s, nil
}

// ResolveSpec turns a -workload flag argument into a spec: inline JSON
// (first non-space byte '{'), a path to a .csv block trace, or a path
// to a JSON spec file.
func ResolveSpec(arg string) (*Spec, error) {
	if strings.HasPrefix(strings.TrimSpace(arg), "{") {
		return Parse([]byte(arg))
	}
	if strings.HasSuffix(arg, ".csv") {
		return LoadTrace(arg)
	}
	data, err := os.ReadFile(arg)
	if err != nil {
		return nil, errf("spec", "%q is neither inline JSON nor a readable spec file: %v", arg, err)
	}
	return Parse(data)
}
