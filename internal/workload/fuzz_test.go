package workload

import (
	"errors"
	"testing"
)

// FuzzParse: arbitrary spec documents either parse into a validated
// spec or fail with a typed *Error — never a panic, never an untyped
// error.
func FuzzParse(f *testing.F) {
	f.Add([]byte(`{"phases":[{"pattern":"uniform","requests":8}]}`))
	f.Add([]byte(`{"name":"x","phases":[{"pattern":"zipf","requests":4,"alpha":1.5,"record_size":4096}]}`))
	f.Add([]byte(`{"phases":[{"pattern":"skew","requests":96,"alpha":1.2,"read_fraction":0.8,"arrival":"poisson","rate_per_sec":2000}]}`))
	f.Add([]byte(`{"phases":[{"pattern":"hotspot","requests":4,"hot_fraction":0.1,"hot_weight":0.9,"arrival":"closed","think_ns":1000}]}`))
	f.Add([]byte(`{"phases":[{"pattern":"trace","trace":[{"t_ns":0,"node":0,"op":"r","offset":0,"bytes":8}]}]}`))
	f.Add([]byte(`{"phases":[{"pattern":"rb"}]}`))
	f.Add([]byte(`{"phases":[{"pattern":"uniform","requests":-1}]}`))
	f.Add([]byte(`{"unknown_field":1}`))
	f.Add([]byte(`{}{}`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Parse(data)
		if err != nil {
			var werr *Error
			if !errors.As(err, &werr) {
				t.Fatalf("Parse error %T is not *workload.Error: %v", err, err)
			}
			return
		}
		// A parsed spec re-validates cleanly and round-trips its clone.
		if err := s.Validate(nil); err != nil {
			t.Fatalf("parsed spec fails validation: %v", err)
		}
		if err := s.Clone().Validate(nil); err != nil {
			t.Fatalf("cloned spec fails validation: %v", err)
		}
	})
}

// FuzzParseTrace: arbitrary CSV either parses into a single validated
// trace phase or fails with a typed *Error — never a panic.
func FuzzParseTrace(f *testing.F) {
	f.Add([]byte("time,node,op,offset,bytes\n0.001,0,r,0,8192\n"))
	f.Add([]byte("# comment\n\n0.5,3,write,65536,4096\n"))
	f.Add([]byte("0,0,r,0,8192\r\n0.1,1,w,8192,8192\r\n"))
	f.Add([]byte("0,0,x,0,8192\n"))
	f.Add([]byte("NaN,0,r,0,8\n"))
	f.Add([]byte("1e99,0,r,0,8\n"))
	f.Add([]byte("0,0,r,0,-8\n"))
	f.Add([]byte("0,0,r\n"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ParseTrace(data)
		if err != nil {
			var werr *Error
			if !errors.As(err, &werr) {
				t.Fatalf("ParseTrace error %T is not *workload.Error: %v", err, err)
			}
			return
		}
		if len(s.Phases) != 1 || s.Phases[0].Pattern != PatternTrace {
			t.Fatalf("trace parsed into %+v", s)
		}
		if len(s.Phases[0].Trace) == 0 {
			t.Fatal("trace parsed with no requests")
		}
		if err := s.Validate(nil); err != nil {
			t.Fatalf("parsed trace fails validation: %v", err)
		}
	})
}
