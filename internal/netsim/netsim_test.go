package netsim

import (
	"testing"
	"testing/quick"
	"time"

	"ddio/internal/sim"
)

func newNet(t *testing.T, nodes int) (*sim.Engine, *Network) {
	t.Helper()
	e := sim.NewEngine()
	t.Cleanup(e.Close)
	cfg := DefaultConfig()
	cfg.JitterMax = 0 // deterministic latency for exact assertions
	return e, New(e, cfg, nodes, sim.NewRand(1))
}

func TestHopsOnTorus(t *testing.T) {
	_, n := newNet(t, 36) // 6x6
	cases := []struct{ a, b, want int }{
		{0, 0, 0},
		{0, 1, 1},
		{0, 5, 1},  // wraparound in x
		{0, 6, 1},  // one row down
		{0, 30, 1}, // wraparound in y
		{0, 7, 2},
		{0, 21, 6}, // (3,3) from (0,0): dx=3, dy=3 on a 6x6 torus
	}
	for _, c := range cases {
		if got := n.Hops(c.a, c.b); got != c.want {
			t.Errorf("Hops(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

// Property: hop distance is symmetric, non-negative, and bounded by the
// torus diameter.
func TestQuickHopsSymmetricBounded(t *testing.T) {
	_, n := newNet(t, 36)
	f := func(a, b uint8) bool {
		x, y := int(a)%36, int(b)%36
		h := n.Hops(x, y)
		return h == n.Hops(y, x) && h >= 0 && h <= n.MaxHops()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGridGrowsForManyNodes(t *testing.T) {
	e := sim.NewEngine()
	defer e.Close()
	n := New(e, DefaultConfig(), 50, sim.NewRand(1))
	if n.Nodes() != 50 {
		t.Fatalf("nodes %d", n.Nodes())
	}
	if n.Config().Width*n.Config().Height < 50 {
		t.Fatalf("grid %dx%d too small", n.Config().Width, n.Config().Height)
	}
}

func TestSendDeliversWithWireLatency(t *testing.T) {
	e, n := newNet(t, 36)
	var sentAt, gotAt sim.Time
	n.Send(0, 1, 1000, sim.Callback(func(ts sim.Time) { sentAt = ts }), sim.Callback(func(td sim.Time) { gotAt = td }))
	e.Run()
	cfg := n.Config()
	perByte := time.Duration(float64(time.Second) / cfg.LinkBandwidth)
	wire := (1000 + cfg.HeaderBytes)
	wantSent := sim.Time(cfg.DMASetup) + sim.Time(wire)*sim.Time(perByte)
	if sentAt != wantSent {
		t.Fatalf("onSent at %v, want %v", sentAt, wantSent)
	}
	// Delivery: the head flit leaves immediately (wormhole pipelining),
	// crosses 1 router, and the destination NIC streams the same bytes
	// concurrently with the source — so delivery is one router delay
	// after the (equal-length) in-NIC occupancy that started at the
	// head's arrival.
	wantGot := sim.Time(cfg.RouterDelay) + wantSent
	if gotAt != wantGot {
		t.Fatalf("delivered at %v, want %v", gotAt, wantGot)
	}
}

func TestSourceNICSerializesSends(t *testing.T) {
	e, n := newNet(t, 36)
	var first, second sim.Time
	n.Send(0, 1, 100000, sim.Completion{}, sim.Callback(func(ts sim.Time) { first = ts }))
	n.Send(0, 2, 100000, sim.Completion{}, sim.Callback(func(ts sim.Time) { second = ts }))
	e.Run()
	if second <= first {
		t.Fatalf("two sends from one node completed at %v/%v; out-NIC must serialize", first, second)
	}
	if n.Messages() != 2 || n.Bytes() != 200000 {
		t.Fatalf("counters msgs=%d bytes=%d", n.Messages(), n.Bytes())
	}
}

func TestDestNICSerializesReceives(t *testing.T) {
	e, n := newNet(t, 36)
	var a, b sim.Time
	n.Send(1, 0, 100000, sim.Completion{}, sim.Callback(func(ts sim.Time) { a = ts }))
	n.Send(2, 0, 100000, sim.Completion{}, sim.Callback(func(ts sim.Time) { b = ts }))
	e.Run()
	if a == b {
		t.Fatal("two receives at one node completed simultaneously; in-NIC must serialize")
	}
}

func TestSelfSendWorks(t *testing.T) {
	e, n := newNet(t, 36)
	ok := false
	n.Send(3, 3, 10, sim.Completion{}, sim.Callback(func(sim.Time) { ok = true }))
	e.Run()
	if !ok {
		t.Fatal("self-send never delivered")
	}
}

func TestJitterIsSeededDeterministic(t *testing.T) {
	run := func() sim.Time {
		e := sim.NewEngine()
		defer e.Close()
		cfg := DefaultConfig() // jitter on
		n := New(e, cfg, 4, sim.NewRand(77))
		var at sim.Time
		n.Send(0, 1, 100, sim.Completion{}, sim.Callback(func(td sim.Time) { at = td }))
		e.Run()
		return at
	}
	if run() != run() {
		t.Fatal("jittered delivery time differs across identical runs")
	}
}

// TestSendAllocFree is the allocation guard the token refactor exists
// for: on a warm network, a full Send with both completion tokens —
// onSent and deliver — must not allocate. The tokens are WaitGroup
// completions, the dominant real call shape (cluster signals
// sent/delivered WaitGroups).
func TestSendAllocFree(t *testing.T) {
	e, n := newNet(t, 36)
	wg := sim.NewWaitGroup(e, "send", 0)
	done := wg.DoneC()
	send := func() {
		wg.Add(2)
		n.Send(0, 1, 1000, done, done)
		e.Run()
	}
	for i := 0; i < 8; i++ { // warm the arena, pipes, and event queue
		send()
	}
	avg := testing.AllocsPerRun(200, send)
	if avg > 0 {
		t.Errorf("warm Send allocates %.2f objects/op, want 0", avg)
	}
}

func TestNICUtilizationDiagnostic(t *testing.T) {
	e, n := newNet(t, 4)
	n.Send(0, 1, 1<<20, sim.Completion{}, sim.Completion{})
	e.Run()
	if u := n.NICUtilization(e.Now()); u <= 0 {
		t.Fatalf("NIC utilization %v", u)
	}
}
