// Package netsim models the multiprocessor interconnect: a 2-D
// bidirectional torus with wormhole routing, per Table 1 of the paper
// (200·10⁶ bytes/s links, 20 ns per router). Because wormhole messages
// pipeline through the fabric, end-to-end time is modeled as source-NIC
// occupancy (DMA setup + bytes at link bandwidth), plus per-hop router
// latency and a small seeded jitter, plus destination-NIC occupancy
// overlapping the source's. NICs are first-come-first-served bandwidth
// pipes, so senders and receivers contend realistically at the endpoints;
// interior-link contention is not modeled (the paper's workloads are
// endpoint-bound).
package netsim

import (
	"strconv"
	"time"

	"ddio/internal/fault"
	"ddio/internal/sim"
	"ddio/internal/trace"
)

// Config holds interconnect parameters.
type Config struct {
	Width, Height int           // torus dimensions
	LinkBandwidth float64       // bytes per second per link direction
	RouterDelay   time.Duration // per hop
	DMASetup      time.Duration // per message, charged at each NIC
	HeaderBytes   int           // protocol header added to every message
	JitterMax     time.Duration // uniform [0, JitterMax) added to wire time
}

// DefaultConfig returns the paper's Table 1 interconnect: a 6×6 torus of
// 200 MB/s bidirectional links with 20 ns routers.
func DefaultConfig() Config {
	return Config{
		Width:         6,
		Height:        6,
		LinkBandwidth: 200e6,
		RouterDelay:   20 * time.Nanosecond,
		DMASetup:      1 * time.Microsecond,
		HeaderBytes:   32,
		JitterMax:     2 * time.Microsecond,
	}
}

// Network is one interconnect instance.
type Network struct {
	eng    *sim.Engine
	cfg    Config
	nics   []nic
	rng    *sim.Rand
	rec    *trace.Recorder  // event tracing, nil when disabled
	faults *fault.NetFaults // fault injection, nil when disabled

	msgArena sim.Arena[message] // in-flight message records

	msgs  int64
	bytes int64
}

type nic struct {
	in, out *sim.Pipe
	name    string // endpoint label in traces ("n4", or the node name)
}

// New builds a network with capacity for nNodes endpoints. If the
// configured torus is too small for nNodes it is grown (keeping it as
// square as possible), so sensitivity experiments can exceed 36 nodes.
func New(e *sim.Engine, cfg Config, nNodes int, rng *sim.Rand) *Network {
	for cfg.Width*cfg.Height < nNodes {
		if cfg.Width <= cfg.Height {
			cfg.Width++
		} else {
			cfg.Height++
		}
	}
	n := &Network{eng: e, cfg: cfg, rng: rng.Stream("netjitter"), rec: e.Recorder()}
	n.nics = make([]nic, nNodes)
	for i := range n.nics {
		n.nics[i] = nic{
			in:   sim.NewPipe(e, "nic-in", cfg.LinkBandwidth, cfg.DMASetup),
			out:  sim.NewPipe(e, "nic-out", cfg.LinkBandwidth, cfg.DMASetup),
			name: "n" + strconv.Itoa(i),
		}
	}
	return n
}

// SetFaults attaches a fault-injection handle for message loss and
// latency spikes. nil (the default) keeps the fabric lossless and the
// send path bit-identical to a build without fault injection. Call
// before the run starts.
func (n *Network) SetFaults(f *fault.NetFaults) { n.faults = f }

// SetNodeName labels endpoint id in traces (the machine builder passes
// processor names like "CP3"/"IOP0" so per-link trace totals read in
// machine terms rather than raw NIC indices).
func (n *Network) SetNodeName(id int, name string) { n.nics[id].name = name }

// Nodes returns the number of endpoints.
func (n *Network) Nodes() int { return len(n.nics) }

// Config returns the (possibly grown) configuration in use.
func (n *Network) Config() Config { return n.cfg }

// Hops returns the minimal routing distance between nodes a and b on the
// torus (Manhattan distance with wraparound), counting one router at the
// destination for a == b handled as zero.
func (n *Network) Hops(a, b int) int {
	if a == b {
		return 0
	}
	w := n.cfg.Width
	ax, ay := a%w, a/w
	bx, by := b%w, b/w
	dx := wrapDist(ax, bx, w)
	dy := wrapDist(ay, by, n.cfg.Height)
	return dx + dy
}

func wrapDist(a, b, n int) int {
	d := a - b
	if d < 0 {
		d = -d
	}
	if n-d < d {
		d = n - d
	}
	return d
}

// MaxHops returns the torus diameter.
func (n *Network) MaxHops() int { return n.cfg.Width/2 + n.cfg.Height/2 }

// message is one in-flight transmission, pooled on the network's arena.
// It is the completion target for its own fabric events: the head-flit
// arrival (msgHead) and, under fault injection, its retransmissions
// (msgResend) — a dropped message re-enqueues the same record instead of
// capturing its state in a retry closure. The record is released back to
// the arena when the head flit commits the destination NIC; deliver (a
// token, copied by value into the inEnd event) is the only thing that
// outlives it. gen is bumped at release so any token queued against a
// previous incarnation drops as a no-op.
type message struct {
	n        *Network
	gen      uint64
	a, b     int
	wire     int
	outStart sim.Time
	outEnd   sim.Time
	deliver  sim.Completion
}

// Message token kinds.
const (
	msgHead   uint8 = iota + 1 // head flit arrives at the destination NIC
	msgResend                  // resend timeout expired; retransmit
)

func (m *message) token(kind uint8) sim.Completion {
	return sim.Completion{Target: m, Gen: m.gen, Kind: kind}
}

// Complete dispatches one fabric event for this message.
func (m *message) Complete(c sim.Completion, now sim.Time) {
	if c.Gen != m.gen {
		return
	}
	n := m.n
	switch c.Kind {
	case msgHead:
		// Wormhole pipelining: the destination NIC streams the body
		// concurrently with the source NIC, finishing at inEnd.
		_, inEnd := n.nics[m.b].in.Reserve(m.wire)
		n.eng.AtCompletion(inEnd, m.deliver)
		m.release()
	case msgResend:
		m.outStart, m.outEnd = n.nics[m.a].out.Reserve(m.wire)
		n.faults.CountResend()
		n.transmit(m)
	}
}

// release returns the record to the arena, invalidating queued tokens.
func (m *message) release() {
	m.gen++
	m.deliver = sim.Completion{}
	m.n.msgArena.Put(m)
}

// Send transmits size payload bytes from node a to node b. onSent, if
// valid, fires when the source NIC finishes (the sender's buffer is
// reusable); deliver, if valid, fires when the last byte arrives at b.
// Both are completion tokens fired in event context; the zero Completion
// means "no callback". Send may be called from proc or event context,
// never blocks the caller, and allocates nothing on a warm network.
func (n *Network) Send(a, b, size int, onSent, deliver sim.Completion) {
	n.msgs++
	n.bytes += int64(size)
	n.rec.NetMsg(n.nics[a].name, n.nics[b].name, int64(n.eng.Now()), int64(size))
	wire := size + n.cfg.HeaderBytes
	outStart, outEnd := n.nics[a].out.Reserve(wire)
	if onSent.Valid() {
		n.eng.AtCompletion(outEnd, onSent)
	}
	m := n.msgArena.Get()
	m.n = n
	m.a, m.b, m.wire = a, b, wire
	m.outStart, m.outEnd = outStart, outEnd
	m.deliver = deliver
	n.transmit(m)
}

// transmit models one fabric traversal of a message already committed to
// its source's out NIC over [outStart, outEnd]. Under fault injection
// the traversal may suffer a latency spike or be dropped entirely; a
// drop retransmits after the resend timeout, re-occupying the source NIC
// for the full message (the retransmission redraws its own fault fate,
// so a message can be dropped repeatedly — each loss costs another
// timeout).
func (n *Network) transmit(m *message) {
	lat := sim.Time(n.cfg.RouterDelay) * sim.Time(n.Hops(m.a, m.b))
	if n.cfg.JitterMax > 0 {
		lat += sim.Time(n.rng.Int63n(int64(n.cfg.JitterMax)))
	}
	if spike := n.faults.Spike(); spike > 0 {
		n.rec.Fault(n.nics[m.a].name, int64(n.eng.Now()), "net-spike")
		lat += sim.Time(spike)
	}
	if n.faults.DropMsg() {
		n.rec.Fault(n.nics[m.a].name, int64(n.eng.Now()), "msg-drop")
		n.eng.AtCompletion(m.outEnd.Add(n.faults.ResendTimeout()), m.token(msgResend))
		return
	}
	// The head flit reaches the destination lat after it left the source.
	headArrive := m.outStart + lat
	n.eng.AtCompletion(headArrive, m.token(msgHead))
}

// Messages returns the number of messages sent.
func (n *Network) Messages() int64 { return n.msgs }

// Bytes returns total payload bytes carried.
func (n *Network) Bytes() int64 { return n.bytes }

// NICUtilization returns the mean utilization of all NIC pipes at time t
// (diagnostic).
func (n *Network) NICUtilization(t sim.Time) float64 {
	if len(n.nics) == 0 || t == 0 {
		return 0
	}
	var u float64
	for i := range n.nics {
		u += n.nics[i].in.Utilization(t) + n.nics[i].out.Utilization(t)
	}
	return u / float64(2*len(n.nics))
}
