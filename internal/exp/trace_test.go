package exp

import (
	"strings"
	"testing"

	"ddio/internal/pfs"
)

// fig3aStyle returns a scaled-down Figure-3a configuration (the paper's
// request-bound worst case: random-blocks layout, 8-byte records,
// cyclic pattern) — the workload where the "disks stay busy under
// disk-directed I/O" mechanism is starkest.
func fig3aStyle(m Method) Config {
	cfg := DefaultConfig()
	cfg.Method = m
	cfg.Pattern = "rc"
	cfg.RecordSize = 8
	cfg.Layout = pfs.RandomBlocks
	cfg.FileBytes = MiB / 4
	cfg.Seed = 7
	cfg.Verify = false
	return cfg
}

// TestTracingDoesNotPerturbRun: a traced run must fire the identical
// event count, finish at the identical virtual time, and report the
// identical throughput as an untraced run of the same Config — the
// recorder is passive by contract.
func TestTracingDoesNotPerturbRun(t *testing.T) {
	for _, m := range []Method{TraditionalCaching, DiskDirectedSort, TwoPhase} {
		cfg := fig3aStyle(m)
		plain, err := Run(cfg)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		traced, rec, err := TracedRun(cfg)
		if err != nil {
			t.Fatalf("%v traced: %v", m, err)
		}
		if plain.Events != traced.Events {
			t.Errorf("%v: events %d (untraced) != %d (traced)", m, plain.Events, traced.Events)
		}
		if plain.Elapsed != traced.Elapsed {
			t.Errorf("%v: elapsed %v != %v", m, plain.Elapsed, traced.Elapsed)
		}
		if plain.MBps != traced.MBps {
			t.Errorf("%v: MBps %v != %v", m, plain.MBps, traced.MBps)
		}
		if rec.Len() == 0 {
			t.Errorf("%v: traced run recorded nothing", m)
		}
	}
}

// TestTraceDeterministic: identical seeds must yield byte-identical
// JSONL traces — the trace is a pure function of the Config.
func TestTraceDeterministic(t *testing.T) {
	for _, m := range []Method{TraditionalCaching, DiskDirectedSort} {
		jsonl := func() string {
			_, rec, err := TracedRun(fig3aStyle(m))
			if err != nil {
				t.Fatalf("%v: %v", m, err)
			}
			var b strings.Builder
			if err := rec.WriteJSONL(&b); err != nil {
				t.Fatal(err)
			}
			return b.String()
		}
		a, b := jsonl(), jsonl()
		if a != b {
			t.Fatalf("%v: identical seeds produced different JSONL traces", m)
		}
		if a == "" {
			t.Fatalf("%v: empty trace", m)
		}
	}
}

// TestDiskUtilizationDDExceedsTC asserts the paper's mechanism claim on
// the Figure-3a workload: disk-directed I/O keeps the disks busy
// (double-buffered, schedule-ordered transfers) while traditional
// caching leaves them idle between cache requests. The CI plot-smoke
// job renders the same comparison as SVG timelines.
func TestDiskUtilizationDDExceedsTC(t *testing.T) {
	_, ddRec, err := TracedRun(fig3aStyle(DiskDirectedSort))
	if err != nil {
		t.Fatal(err)
	}
	_, tcRec, err := TracedRun(fig3aStyle(TraditionalCaching))
	if err != nil {
		t.Fatal(err)
	}
	dd := ddRec.MeanDiskUtilization(0)
	tc := tcRec.MeanDiskUtilization(0)
	t.Logf("mean disk utilization: ddio-sort %.2f, tc %.2f", dd, tc)
	if dd <= tc {
		t.Fatalf("disk-directed utilization %.2f not above traditional caching %.2f", dd, tc)
	}
	if dd < 0.5 {
		t.Errorf("disk-directed utilization %.2f unexpectedly low (want >= 0.5)", dd)
	}
	if tc > 0.5 {
		t.Errorf("traditional-caching utilization %.2f unexpectedly high (want <= 0.5)", tc)
	}
}

// TestTraceCoversAllLayers: one traced TC run must carry records from
// every instrumented layer — disks, network, server requests, cache
// occupancy, and the service pools.
func TestTraceCoversAllLayers(t *testing.T) {
	_, rec, err := TracedRun(fig3aStyle(TraditionalCaching))
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[string]int{}
	for _, e := range rec.Events() {
		kinds[e.Kind.String()]++
	}
	for _, k := range []string{"disk", "queue", "seek", "req-start", "req-end", "pool", "buffer", "msg"} {
		if kinds[k] == 0 {
			t.Errorf("no %q events in trace (kinds: %v)", k, kinds)
		}
	}
	// Request latencies must summarize to something sane.
	if sum := rec.RequestLatencies(); sum.N == 0 || sum.Mean <= 0 {
		t.Errorf("request latency summary = %+v", sum)
	}
}

// TestLongCSV: the tidy emitter carries one row per measured cell with
// the full trial statistics.
func TestLongCSV(t *testing.T) {
	spec := &SweepSpec{
		Name:   "long-test",
		Title:  "long CSV shape test",
		Axis:   AxisCPs,
		Values: []int{1, 2},
		IOPs:   2, Disks: 2,
		Layout:  "contiguous",
		Methods: []string{"ddio"},
		Patterns: []string{
			"ra", "rb",
		},
	}
	res, err := spec.RunFull(Options{Trials: 2, FileBytes: MiB / 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	got := res.LongCSV()
	lines := strings.Split(strings.TrimRight(got, "\n"), "\n")
	if len(lines) != 1+2*2 { // header + values × (methods×patterns)
		t.Fatalf("long CSV has %d lines:\n%s", len(lines), got)
	}
	if want := "sweep,figure,axis,value,method,pattern,n,mean_mbps,stddev,cv,min_mbps,max_mbps,max_bw_mbps"; lines[0] != want {
		t.Fatalf("header = %s", lines[0])
	}
	for _, line := range lines[1:] {
		fields := strings.Split(line, ",")
		if len(fields) != 13 {
			t.Fatalf("row has %d fields: %s", len(fields), line)
		}
		if fields[0] != "long-test" || fields[2] != "cps" || fields[4] != "ddio" {
			t.Fatalf("unexpected row: %s", line)
		}
		if fields[6] != "2" {
			t.Fatalf("row n = %s, want 2: %s", fields[6], line)
		}
	}
	// Row order: values outermost, then method×pattern columns.
	if !strings.HasPrefix(lines[1], "long-test,long-test,cps,1,ddio,ra,") ||
		!strings.HasPrefix(lines[4], "long-test,long-test,cps,2,ddio,rb,") {
		t.Fatalf("row order wrong:\n%s", got)
	}
}

// TestCriticalPathsCoverRealRun: on a real traced run the critical-path
// decomposition is total — every request's four buckets (disk, retry,
// service, queue) sum exactly to its end-to-end latency, and the
// request count matches the latency summary.
func TestCriticalPathsCoverRealRun(t *testing.T) {
	for _, m := range []Method{TraditionalCaching, DiskDirectedSort} {
		_, rec, err := TracedRun(fig3aStyle(m))
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		paths := rec.CriticalPaths()
		if len(paths) == 0 {
			t.Fatalf("%v: no critical paths from a traced run", m)
		}
		if lat := rec.RequestLatencies(); lat.N != len(paths) {
			t.Fatalf("%v: %d paths vs %d latencies", m, len(paths), lat.N)
		}
		var disk int64
		for _, p := range paths {
			sum := p.Disk + p.Retry + p.Service + p.Queue
			if sum != p.End-p.Start {
				t.Fatalf("%v: request %s/%d buckets sum %d != latency %d",
					m, p.Node, p.ID, sum, p.End-p.Start)
			}
			if p.Disk < 0 || p.Retry < 0 || p.Service < 0 || p.Queue < 0 {
				t.Fatalf("%v: negative bucket in %+v", m, p)
			}
			disk += p.Disk
		}
		if disk == 0 {
			t.Fatalf("%v: no request overlapped any disk service", m)
		}
	}
}
