package exp

import (
	"strings"
	"testing"
)

func sampleTable() *Table {
	return &Table{
		ID:       "figX",
		Title:    "sample",
		RowLabel: "pattern",
		Rows:     []string{"ra", "rb"},
		Cols:     []string{"TC", "DDIO"},
		Cells: [][]Cell{
			{{Mean: 1.25, CV: 0.001}, {Mean: 6.5, CV: 0.10}},
			{{Mean: 2.0, CV: 0}, {Mean: 7.0, CV: 0.02}},
		},
		Note: "hello",
	}
}

func TestTableFormat(t *testing.T) {
	s := sampleTable().Format()
	for _, want := range []string{"figX", "sample", "pattern", "ra", "DDIO", "6.50(0.10)", "1.25", "note: hello"} {
		if !strings.Contains(s, want) {
			t.Errorf("formatted table missing %q:\n%s", want, s)
		}
	}
}

func TestTableCSV(t *testing.T) {
	csv := sampleTable().CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines %d", len(lines))
	}
	if lines[0] != "pattern,TC,DDIO" {
		t.Fatalf("header %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "ra,1.250,6.500") {
		t.Fatalf("row %q", lines[1])
	}
}

func TestTableMaxCV(t *testing.T) {
	if cv := sampleTable().MaxCV(); cv != 0.10 {
		t.Fatalf("MaxCV %v", cv)
	}
}

func TestTableCellLookup(t *testing.T) {
	tab := sampleTable()
	c, ok := tab.Cell("rb", "DDIO")
	if !ok || c.Mean != 7.0 {
		t.Fatalf("Cell lookup %v %v", c, ok)
	}
	if _, ok := tab.Cell("zz", "TC"); ok {
		t.Fatal("bogus row found")
	}
	if _, ok := tab.Cell("ra", "zz"); ok {
		t.Fatal("bogus col found")
	}
}

func TestTable1MentionsKeyParameters(t *testing.T) {
	s := Table1()
	for _, want := range []string{"HP97560", "8 KB", "SCSI", "torus", "wormhole", "32 processors"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table1 missing %q", want)
		}
	}
}

func TestFigureOptionsProgress(t *testing.T) {
	var lines []string
	o := Options{Trials: 1, FileBytes: 256 * 1024, Seed: 1, Verify: true,
		Progress: func(s string) { lines = append(lines, s) }}
	o.runner().progressf("x %d", 42)
	if len(lines) != 1 || lines[0] != "x 42" {
		t.Fatalf("progress %v", lines)
	}
}
