package exp

import (
	"strings"
	"testing"
)

// fakeFig builds a synthetic figure table for headline math; rows are
// fixed to {ra, rc} for determinism.
func fakeFig(cols []string, cells map[string][]float64) *Table {
	t := &Table{RowLabel: "pattern", Cols: cols}
	rows := []string{"ra", "rc"}
	t.Rows = rows
	for _, r := range rows {
		var cs []Cell
		for _, m := range cells[r] {
			cs = append(cs, Cell{Mean: m})
		}
		t.Cells = append(t.Cells, cs)
	}
	return t
}

func TestComputeHeadlines(t *testing.T) {
	cols3 := []string{"TC", "DDIO", "DDIO+sort"}
	cols4 := []string{"TC", "DDIO"}
	fig3 := []*Table{
		fakeFig(cols3, map[string][]float64{"ra": {1.0, 4.0, 6.0}, "rc": {0.8, 4.5, 6.3}}),
		fakeFig(cols3, map[string][]float64{"ra": {3.0, 4.4, 6.2}, "rc": {2.0, 4.2, 6.1}}),
	}
	fig4 := []*Table{
		fakeFig(cols4, map[string][]float64{"ra": {20.0, 33.0}, "rc": {2.0, 32.0}}),
		fakeFig(cols4, map[string][]float64{"ra": {25.0, 33.0}, "rc": {15.0, 32.5}}),
	}
	h, err := ComputeHeadlines(fig3, fig4, 34.8)
	if err != nil {
		t.Fatal(err)
	}
	// Max random speedup: 6.3/0.8 = 7.875.
	if h.MaxSpeedupRandom < 7.8 || h.MaxSpeedupRandom > 7.95 {
		t.Fatalf("random speedup %.3f", h.MaxSpeedupRandom)
	}
	if !strings.Contains(h.MaxSpeedupRandomAt, "rc") {
		t.Fatalf("speedup location %q", h.MaxSpeedupRandomAt)
	}
	// Max contiguous speedup: 32/2 = 16.
	if h.MaxSpeedupContig != 16 {
		t.Fatalf("contig speedup %.3f", h.MaxSpeedupContig)
	}
	// Presort gains: 6/4-1=.5, 6.3/4.5-1=.4, 6.2/4.4-1≈.409, 6.1/4.2-1≈.452.
	if h.PresortGainMin < 0.39 || h.PresortGainMax > 0.51 {
		t.Fatalf("presort range %.2f..%.2f", h.PresortGainMin, h.PresortGainMax)
	}
	// Peak fraction: 33/34.8 ≈ 0.948.
	if h.PeakFraction < 0.94 || h.PeakFraction > 0.96 {
		t.Fatalf("peak fraction %.3f", h.PeakFraction)
	}
	if h.ContigOverRandom <= 1 {
		t.Fatalf("contig/random %.2f", h.ContigOverRandom)
	}
	out := h.Format()
	for _, want := range []string{"16.0x", "93%", "41-50%"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted headlines missing %q:\n%s", want, out)
		}
	}
}

func TestComputeHeadlinesRejectsWrongShape(t *testing.T) {
	if _, err := ComputeHeadlines(nil, nil, 1); err == nil {
		t.Fatal("accepted empty tables")
	}
}

func TestMedian(t *testing.T) {
	if m := median([]float64{5, 1, 3}); m != 3 {
		t.Fatalf("median %v", m)
	}
	if m := median([]float64{2, 1}); m != 2 {
		t.Fatalf("even median %v", m)
	}
}

// RegenerateHeadlines runs the full Figure 3+4 grid (scaled down) and
// must produce positive headline ratios and all four tables.
func TestRegenerateHeadlines(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates the full pattern grid")
	}
	o := Options{Trials: 1, FileBytes: 512 * 1024, Seed: 5, Verify: false, Workers: 8}
	h, tables, err := RegenerateHeadlines(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 4 {
		t.Fatalf("got %d tables, want 4", len(tables))
	}
	if h.MaxSpeedupRandom <= 1 || h.MaxSpeedupContig <= 1 {
		t.Fatalf("headline speedups not positive: %+v", h)
	}
}
