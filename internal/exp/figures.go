package exp

import (
	"fmt"
	"strings"

	"ddio/internal/fault"
	"ddio/internal/hpf"
	"ddio/internal/pfs"
	"ddio/internal/stats"
	"ddio/internal/workload"
)

// Options control figure regeneration. The paper used five trials of a
// 10 MB file; smaller settings reproduce the same shapes faster (the
// paper itself notes 10 MB was chosen over 100/1000 MB to save
// simulation time, with qualitatively similar results).
type Options struct {
	Trials    int   // independent trials per data point
	FileBytes int64 // transfer size per run
	Seed      int64 // base seed; trial seeds derive from it
	Verify    bool  // verify every byte in every run
	// Workers bounds how many experiment runs execute concurrently;
	// <= 0 selects GOMAXPROCS. Tables are bit-identical for any worker
	// count (results are slotted by position, seeds by trial index).
	Workers int
	// Progress, if non-nil, receives one line per completed cell.
	// Lines are serialized; with Workers > 1 cells complete (and
	// report) out of table order.
	Progress func(string)
	// Faults, when non-nil, is the fault plan injected into every run
	// (see Config.Faults). Sweep specs with their own Faults template
	// override it.
	Faults *fault.Plan
	// Workload, when non-nil, is the request-stream spec every run
	// executes instead of the classic whole-file transfer (see
	// Config.Workload). Sweep specs with their own Workload template
	// override it.
	Workload *workload.Spec
	// RunCell, when non-nil, replaces the per-cell execution function
	// (default: Run) on the runner these options build — the serving
	// layer's cache/singleflight hook (see Runner.SetRunFunc for the
	// contract fn must keep).
	RunCell func(Config) (*Result, error)
}

// DefaultOptions mirrors the paper's experimental design.
func DefaultOptions() Options {
	return Options{Trials: 5, FileBytes: 10 * MiB, Seed: 42, Verify: true}
}

func (o Options) base() Config {
	cfg := DefaultConfig()
	cfg.FileBytes = o.FileBytes
	cfg.Seed = o.Seed
	cfg.Verify = o.Verify
	cfg.Faults = o.Faults
	cfg.Workload = o.Workload
	return cfg
}

func (o Options) runner() *Runner {
	r := NewRunner(o.Workers, o.Progress)
	if o.RunCell != nil {
		r.SetRunFunc(o.RunCell)
	}
	return r
}

func (o Options) trials() int {
	if o.Trials < 1 {
		return 1
	}
	return o.Trials
}

// cellAgg aggregates one table cell from its trial results as they
// complete on the pool. Trial MBps values are slotted by trial index, so
// the mean and CV are summed in the same order as a sequential run and
// the resulting cells are bit-identical.
type cellAgg struct {
	mbps []float64
	secs []float64       // completion times, for degradation sweeps
	lat  []stats.Summary // per-trial request-latency summaries, for workload sweeps
	left int
}

func newCellAggs(n, trials int) []cellAgg {
	aggs := make([]cellAgg, n)
	for i := range aggs {
		aggs[i] = cellAgg{
			mbps: make([]float64, trials),
			secs: make([]float64, trials),
			lat:  make([]stats.Summary, trials),
			left: trials,
		}
	}
	return aggs
}

// done records one trial and reports whether the cell is complete.
func (a *cellAgg) done(trial int, res *Result) bool {
	a.mbps[trial] = res.MBps
	a.secs[trial] = res.Elapsed.Seconds()
	a.lat[trial] = res.ReqLatency
	a.left--
	return a.left == 0
}

func (a *cellAgg) cell() Cell { return Cell{Mean: mean(a.mbps), CV: cv(a.mbps)} }

// patternTable measures patterns × methods at a fixed layout/record
// size, running every (cell × trial) simulation on the options' worker
// pool.
func patternTable(o Options, id, title string, layout pfs.LayoutKind, recordSize int,
	patterns []string, methods []Method) (*Table, error) {
	t := &Table{ID: id, Title: title, RowLabel: "pattern", Rows: patterns}
	for _, m := range methods {
		t.Cols = append(t.Cols, m.String())
	}
	t.Cells = make([][]Cell, len(patterns))
	for i := range t.Cells {
		t.Cells[i] = make([]Cell, len(methods))
	}
	trials := o.trials()
	cfgs := make([]Config, 0, len(patterns)*len(methods)*trials)
	for _, pat := range patterns {
		for _, method := range methods {
			cfg := o.base()
			cfg.Layout = layout
			cfg.RecordSize = recordSize
			cfg.Pattern = pat
			cfg.Method = method
			for k := 0; k < trials; k++ {
				c := cfg
				c.Seed = trialSeed(cfg.Seed, k)
				cfgs = append(cfgs, c)
			}
		}
	}
	r := o.runner()
	aggs := newCellAggs(len(patterns)*len(methods), trials)
	_, err := r.RunAll(cfgs, func(idx int, res *Result) {
		cell, trial := idx/trials, idx%trials
		if aggs[cell].done(trial, res) {
			i, j := cell/len(methods), cell%len(methods)
			t.Cells[i][j] = aggs[cell].cell()
			r.progressLocked("%s %-4s %-9v %7.2f MB/s (cv %.3f)",
				id, patterns[i], methods[j], t.Cells[i][j].Mean, t.Cells[i][j].CV)
		}
	})
	if err != nil {
		return nil, fmt.Errorf("%s: %w", id, err)
	}
	return t, nil
}

// Figure3 reproduces the paper's Figure 3: all 19 patterns on the
// random-blocks layout under traditional caching and disk-directed I/O
// with and without presorting, for 8-byte (3a) and 8192-byte (3b)
// records.
func Figure3(o Options) ([]*Table, error) {
	methods := []Method{TraditionalCaching, DiskDirected, DiskDirectedSort}
	a, err := patternTable(o, "fig3a", "throughput (MB/s), random-blocks layout, 8-byte records",
		pfs.RandomBlocks, 8, hpf.AllPatterns(), methods)
	if err != nil {
		return nil, err
	}
	b, err := patternTable(o, "fig3b", "throughput (MB/s), random-blocks layout, 8192-byte records",
		pfs.RandomBlocks, 8192, hpf.AllPatterns(), methods)
	if err != nil {
		return nil, err
	}
	note := "ra throughput is normalized by the number of CPs, as in the paper"
	a.Note, b.Note = note, note
	return []*Table{a, b}, nil
}

// Figure4 reproduces Figure 4: the same grid on the contiguous layout
// (presort is a no-op there, so DDIO runs unsorted, as plotted in the
// paper).
func Figure4(o Options) ([]*Table, error) {
	methods := []Method{TraditionalCaching, DiskDirected}
	a, err := patternTable(o, "fig4a", "throughput (MB/s), contiguous layout, 8-byte records",
		pfs.Contiguous, 8, hpf.AllPatterns(), methods)
	if err != nil {
		return nil, err
	}
	b, err := patternTable(o, "fig4b", "throughput (MB/s), contiguous layout, 8192-byte records",
		pfs.Contiguous, 8192, hpf.AllPatterns(), methods)
	if err != nil {
		return nil, err
	}
	base := o.base()
	note := fmt.Sprintf("peak aggregate disk throughput is %.1f MB/s", base.MaxBandwidthMBps())
	a.Note, b.Note = note, note
	return []*Table{a, b}, nil
}

// runPreset runs a named built-in sweep preset (the machine-shape sweeps
// of Figures 5–8 are presets; see presets.go and sweep.go).
func runPreset(o Options, name string) (*Table, error) {
	s, ok := LookupPreset(name)
	if !ok {
		return nil, fmt.Errorf("exp: unknown sweep preset %q", name)
	}
	return s.Run(o)
}

// Figure5 reproduces the paper's Figure 5: throughput as the number of
// CPs varies (contiguous layout, 8 KB records, 16 IOPs and disks fixed).
// It runs the fig5-paper sweep preset; fig5-ext extends the axis to 64
// CPs (see presets.go and EXPERIMENTS.md).
func Figure5(o Options) (*Table, error) { return runPreset(o, "fig5-paper") }

// Figure6 reproduces Figure 6: the number of IOPs (and busses) varies
// while 16 disks are redistributed among them (the fig6-paper preset).
func Figure6(o Options) (*Table, error) { return runPreset(o, "fig6-paper") }

// Figure7 reproduces Figure 7: the number of disks varies on a single
// IOP/bus, contiguous layout (the fig7-paper preset).
func Figure7(o Options) (*Table, error) { return runPreset(o, "fig7-paper") }

// Figure8 reproduces Figure 8: as Figure 7 but on the random-blocks
// layout, where disk-directed I/O presorts, as in the paper (the
// fig8-paper preset).
func Figure8(o Options) (*Table, error) { return runPreset(o, "fig8-paper") }

// Table1 renders the simulator parameters (the paper's Table 1).
func Table1() string {
	cfg := DefaultConfig()
	spec := cfg.Disk
	var b strings.Builder
	b.WriteString("table1 — simulator parameters\n")
	rows := [][2]string{
		{"MIMD, distributed-memory", fmt.Sprintf("%d processors", cfg.NCP+cfg.NIOP)},
		{"Compute processors (CPs)", fmt.Sprintf("%d *", cfg.NCP)},
		{"I/O processors (IOPs)", fmt.Sprintf("%d *", cfg.NIOP)},
		{"CPU type", "50 MHz RISC (calibrated software costs)"},
		{"Disks", fmt.Sprintf("%d *", cfg.NDisks)},
		{"Disk type", spec.Name},
		{"Disk capacity", fmt.Sprintf("%.1f GB", float64(spec.Capacity())/1e9)},
		{"Disk peak transfer rate", fmt.Sprintf("%.2f Mbytes/s", spec.SustainedRate()/MiB)},
		{"File-system block size", fmt.Sprintf("%d KB", cfg.BlockSize/1024)},
		{"I/O busses (one per IOP)", fmt.Sprintf("%d *", cfg.NIOP)},
		{"I/O bus type", "SCSI"},
		{"I/O bus peak bandwidth", fmt.Sprintf("%.0f Mbytes/s", cfg.BusBandwidth/1e6)},
		{"Interconnect topology", fmt.Sprintf("%dx%d torus", cfg.Net.Width, cfg.Net.Height)},
		{"Interconnect bandwidth", fmt.Sprintf("%.0f*10^6 bytes/s bidirectional", cfg.Net.LinkBandwidth/1e6)},
		{"Interconnect latency", fmt.Sprintf("%v per router", cfg.Net.RouterDelay)},
		{"Routing", "wormhole"},
	}
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-28s %s\n", r[0], r[1])
	}
	b.WriteString("  (* varied in some experiments)\n")
	return b.String()
}
