package exp

import (
	"fmt"
	"strings"

	"ddio/internal/hpf"
	"ddio/internal/pfs"
)

// Options control figure regeneration. The paper used five trials of a
// 10 MB file; smaller settings reproduce the same shapes faster (the
// paper itself notes 10 MB was chosen over 100/1000 MB to save
// simulation time, with qualitatively similar results).
type Options struct {
	Trials    int
	FileBytes int64
	Seed      int64
	Verify    bool
	// Workers bounds how many experiment runs execute concurrently;
	// <= 0 selects GOMAXPROCS. Tables are bit-identical for any worker
	// count (results are slotted by position, seeds by trial index).
	Workers int
	// Progress, if non-nil, receives one line per completed cell.
	// Lines are serialized; with Workers > 1 cells complete (and
	// report) out of table order.
	Progress func(string)
}

// DefaultOptions mirrors the paper's experimental design.
func DefaultOptions() Options {
	return Options{Trials: 5, FileBytes: 10 * MiB, Seed: 42, Verify: true}
}

func (o Options) base() Config {
	cfg := DefaultConfig()
	cfg.FileBytes = o.FileBytes
	cfg.Seed = o.Seed
	cfg.Verify = o.Verify
	return cfg
}

func (o Options) runner() *Runner { return NewRunner(o.Workers, o.Progress) }

func (o Options) trials() int {
	if o.Trials < 1 {
		return 1
	}
	return o.Trials
}

// cellAgg aggregates one table cell from its trial results as they
// complete on the pool. Trial MBps values are slotted by trial index, so
// the mean and CV are summed in the same order as a sequential run and
// the resulting cells are bit-identical.
type cellAgg struct {
	mbps []float64
	left int
}

func newCellAggs(n, trials int) []cellAgg {
	aggs := make([]cellAgg, n)
	for i := range aggs {
		aggs[i] = cellAgg{mbps: make([]float64, trials), left: trials}
	}
	return aggs
}

// done records one trial and reports whether the cell is complete.
func (a *cellAgg) done(trial int, res *Result) bool {
	a.mbps[trial] = res.MBps
	a.left--
	return a.left == 0
}

func (a *cellAgg) cell() Cell { return Cell{Mean: mean(a.mbps), CV: cv(a.mbps)} }

// patternTable measures patterns × methods at a fixed layout/record
// size, running every (cell × trial) simulation on the options' worker
// pool.
func patternTable(o Options, id, title string, layout pfs.LayoutKind, recordSize int,
	patterns []string, methods []Method) (*Table, error) {
	t := &Table{ID: id, Title: title, RowLabel: "pattern", Rows: patterns}
	for _, m := range methods {
		t.Cols = append(t.Cols, m.String())
	}
	t.Cells = make([][]Cell, len(patterns))
	for i := range t.Cells {
		t.Cells[i] = make([]Cell, len(methods))
	}
	trials := o.trials()
	cfgs := make([]Config, 0, len(patterns)*len(methods)*trials)
	for _, pat := range patterns {
		for _, method := range methods {
			cfg := o.base()
			cfg.Layout = layout
			cfg.RecordSize = recordSize
			cfg.Pattern = pat
			cfg.Method = method
			for k := 0; k < trials; k++ {
				c := cfg
				c.Seed = trialSeed(cfg.Seed, k)
				cfgs = append(cfgs, c)
			}
		}
	}
	r := o.runner()
	aggs := newCellAggs(len(patterns)*len(methods), trials)
	_, err := r.RunAll(cfgs, func(idx int, res *Result) {
		cell, trial := idx/trials, idx%trials
		if aggs[cell].done(trial, res) {
			i, j := cell/len(methods), cell%len(methods)
			t.Cells[i][j] = aggs[cell].cell()
			r.progressLocked("%s %-4s %-9v %7.2f MB/s (cv %.3f)",
				id, patterns[i], methods[j], t.Cells[i][j].Mean, t.Cells[i][j].CV)
		}
	})
	if err != nil {
		return nil, fmt.Errorf("%s: %w", id, err)
	}
	return t, nil
}

// Figure3 reproduces the paper's Figure 3: all 19 patterns on the
// random-blocks layout under traditional caching and disk-directed I/O
// with and without presorting, for 8-byte (3a) and 8192-byte (3b)
// records.
func Figure3(o Options) ([]*Table, error) {
	methods := []Method{TraditionalCaching, DiskDirected, DiskDirectedSort}
	a, err := patternTable(o, "fig3a", "throughput (MB/s), random-blocks layout, 8-byte records",
		pfs.RandomBlocks, 8, hpf.AllPatterns(), methods)
	if err != nil {
		return nil, err
	}
	b, err := patternTable(o, "fig3b", "throughput (MB/s), random-blocks layout, 8192-byte records",
		pfs.RandomBlocks, 8192, hpf.AllPatterns(), methods)
	if err != nil {
		return nil, err
	}
	note := "ra throughput is normalized by the number of CPs, as in the paper"
	a.Note, b.Note = note, note
	return []*Table{a, b}, nil
}

// Figure4 reproduces Figure 4: the same grid on the contiguous layout
// (presort is a no-op there, so DDIO runs unsorted, as plotted in the
// paper).
func Figure4(o Options) ([]*Table, error) {
	methods := []Method{TraditionalCaching, DiskDirected}
	a, err := patternTable(o, "fig4a", "throughput (MB/s), contiguous layout, 8-byte records",
		pfs.Contiguous, 8, hpf.AllPatterns(), methods)
	if err != nil {
		return nil, err
	}
	b, err := patternTable(o, "fig4b", "throughput (MB/s), contiguous layout, 8192-byte records",
		pfs.Contiguous, 8192, hpf.AllPatterns(), methods)
	if err != nil {
		return nil, err
	}
	base := o.base()
	note := fmt.Sprintf("peak aggregate disk throughput is %.1f MB/s", base.MaxBandwidthMBps())
	a.Note, b.Note = note, note
	return []*Table{a, b}, nil
}

// sweepTable measures a machine-shape sweep for the ra/rn/rb/rc patterns
// under TC and DDIO (Figures 5–8). mutate applies the swept value to the
// config; rows are labeled with the swept values.
func sweepTable(o Options, id, title, rowLabel string, values []int,
	layout pfs.LayoutKind, ddioMethod Method, mutate func(*Config, int)) (*Table, error) {
	patterns := []string{"ra", "rn", "rb", "rc"}
	methods := []Method{ddioMethod, TraditionalCaching}
	t := &Table{ID: id, Title: title, RowLabel: rowLabel}
	for _, m := range methods {
		for _, p := range patterns {
			t.Cols = append(t.Cols, fmt.Sprintf("%s %s", m, p))
		}
	}
	t.Cols = append(t.Cols, "max-bw")
	cellsPerRow := len(methods) * len(patterns)
	trials := o.trials()
	cfgs := make([]Config, 0, len(values)*cellsPerRow*trials)
	t.Cells = make([][]Cell, len(values))
	for vi, v := range values {
		t.Rows = append(t.Rows, fmt.Sprintf("%d", v))
		t.Cells[vi] = make([]Cell, cellsPerRow+1)
		var ceiling float64
		for _, m := range methods {
			for _, p := range patterns {
				cfg := o.base()
				cfg.Layout = layout
				cfg.RecordSize = 8192
				cfg.Pattern = p
				cfg.Method = m
				mutate(&cfg, v)
				ceiling = cfg.MaxBandwidthMBps()
				for k := 0; k < trials; k++ {
					c := cfg
					c.Seed = trialSeed(cfg.Seed, k)
					cfgs = append(cfgs, c)
				}
			}
		}
		t.Cells[vi][cellsPerRow] = Cell{Mean: ceiling}
	}
	r := o.runner()
	aggs := newCellAggs(len(values)*cellsPerRow, trials)
	_, err := r.RunAll(cfgs, func(idx int, res *Result) {
		cell, trial := idx/trials, idx%trials
		if aggs[cell].done(trial, res) {
			vi, ci := cell/cellsPerRow, cell%cellsPerRow
			t.Cells[vi][ci] = aggs[cell].cell()
			r.progressLocked("%s %s=%s %-4s %-9v %7.2f MB/s (cv %.3f)", id, rowLabel,
				t.Rows[vi], patterns[ci%len(patterns)], methods[ci/len(patterns)],
				t.Cells[vi][ci].Mean, t.Cells[vi][ci].CV)
		}
	})
	if err != nil {
		return nil, fmt.Errorf("%s: %w", id, err)
	}
	return t, nil
}

// Figure5 reproduces Figure 5: throughput as the number of CPs varies
// (contiguous layout, 8 KB records, 16 IOPs and disks fixed).
func Figure5(o Options) (*Table, error) {
	return sweepTable(o, "fig5", "throughput vs number of CPs (contiguous, 8 KB records)",
		"CPs", []int{1, 2, 4, 8, 16}, pfs.Contiguous, DiskDirected,
		func(c *Config, v int) { c.NCP = v })
}

// Figure6 reproduces Figure 6: the number of IOPs (and busses) varies
// while 16 disks are redistributed among them.
func Figure6(o Options) (*Table, error) {
	return sweepTable(o, "fig6", "throughput vs number of IOPs/busses (16 disks, contiguous, 8 KB records)",
		"IOPs", []int{1, 2, 4, 8, 16}, pfs.Contiguous, DiskDirected,
		func(c *Config, v int) { c.NIOP = v })
}

// Figure7 reproduces Figure 7: the number of disks varies on a single
// IOP/bus, contiguous layout.
func Figure7(o Options) (*Table, error) {
	return sweepTable(o, "fig7", "throughput vs number of disks (1 IOP/bus, contiguous, 8 KB records)",
		"disks", []int{1, 2, 4, 8, 16, 32}, pfs.Contiguous, DiskDirected,
		func(c *Config, v int) { c.NIOP = 1; c.NDisks = v })
}

// Figure8 reproduces Figure 8: as Figure 7 but on the random-blocks
// layout (disk-directed I/O presorts there, as in the paper).
func Figure8(o Options) (*Table, error) {
	return sweepTable(o, "fig8", "throughput vs number of disks (1 IOP/bus, random-blocks, 8 KB records)",
		"disks", []int{1, 2, 4, 8, 16, 32}, pfs.RandomBlocks, DiskDirectedSort,
		func(c *Config, v int) { c.NIOP = 1; c.NDisks = v })
}

// Table1 renders the simulator parameters (the paper's Table 1).
func Table1() string {
	cfg := DefaultConfig()
	spec := cfg.Disk
	var b strings.Builder
	b.WriteString("table1 — simulator parameters\n")
	rows := [][2]string{
		{"MIMD, distributed-memory", fmt.Sprintf("%d processors", cfg.NCP+cfg.NIOP)},
		{"Compute processors (CPs)", fmt.Sprintf("%d *", cfg.NCP)},
		{"I/O processors (IOPs)", fmt.Sprintf("%d *", cfg.NIOP)},
		{"CPU type", "50 MHz RISC (calibrated software costs)"},
		{"Disks", fmt.Sprintf("%d *", cfg.NDisks)},
		{"Disk type", spec.Name},
		{"Disk capacity", fmt.Sprintf("%.1f GB", float64(spec.Capacity())/1e9)},
		{"Disk peak transfer rate", fmt.Sprintf("%.2f Mbytes/s", spec.SustainedRate()/MiB)},
		{"File-system block size", fmt.Sprintf("%d KB", cfg.BlockSize/1024)},
		{"I/O busses (one per IOP)", fmt.Sprintf("%d *", cfg.NIOP)},
		{"I/O bus type", "SCSI"},
		{"I/O bus peak bandwidth", fmt.Sprintf("%.0f Mbytes/s", cfg.BusBandwidth/1e6)},
		{"Interconnect topology", fmt.Sprintf("%dx%d torus", cfg.Net.Width, cfg.Net.Height)},
		{"Interconnect bandwidth", fmt.Sprintf("%.0f*10^6 bytes/s bidirectional", cfg.Net.LinkBandwidth/1e6)},
		{"Interconnect latency", fmt.Sprintf("%v per router", cfg.Net.RouterDelay)},
		{"Routing", "wormhole"},
	}
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-28s %s\n", r[0], r[1])
	}
	b.WriteString("  (* varied in some experiments)\n")
	return b.String()
}
