package exp

import (
	"fmt"
	"strings"
)

// Headlines distills the paper's headline claims from regenerated
// figures, so reports can quote them mechanically:
//
//   - maximum DDIO/TC speedup on each layout (paper: 9.0x random,
//     16.2x contiguous);
//   - the presort gain on the random layout (paper: 41-50%);
//   - the fraction of aggregate peak bandwidth disk-directed I/O
//     reaches on the contiguous layout (paper: 93%);
//   - the contiguous-vs-random throughput ratio (paper: ~5x).
type Headlines struct {
	MaxSpeedupRandom   float64 // best DDIO+sort / TC, Figure 3
	MaxSpeedupRandomAt string  // pattern/record-size cell of that best
	MaxSpeedupContig   float64 // best DDIO / TC, Figure 4
	MaxSpeedupContigAt string  // pattern/record-size cell of that best
	PresortGainMin     float64 // (DDIO+sort / DDIO) - 1 across Figure 3
	PresortGainMax     float64 // largest presort gain across Figure 3
	PeakFraction       float64 // best DDIO contiguous / hardware ceiling
	ContigOverRandom   float64 // median DDIO contiguous / DDIO+sort random
}

// RegenerateHeadlines regenerates Figures 3 and 4 with the options'
// worker pool and distills the headline claims from them. The tables
// are returned too so callers can render them without a second pass.
func RegenerateHeadlines(o Options) (*Headlines, []*Table, error) {
	fig3, err := Figure3(o)
	if err != nil {
		return nil, nil, err
	}
	fig4, err := Figure4(o)
	if err != nil {
		return nil, nil, err
	}
	base := o.base()
	h, err := ComputeHeadlines(fig3, fig4, base.MaxBandwidthMBps())
	if err != nil {
		return nil, nil, err
	}
	return h, append(fig3, fig4...), nil
}

// ComputeHeadlines derives the headline numbers from the Figure 3 and
// Figure 4 tables (each a pair: 8-byte and 8192-byte records).
func ComputeHeadlines(fig3, fig4 []*Table, ceilingMBps float64) (*Headlines, error) {
	if len(fig3) != 2 || len(fig4) != 2 {
		return nil, fmt.Errorf("exp: headlines need both record-size tables of figures 3 and 4")
	}
	h := &Headlines{PresortGainMin: -1}
	var contigRatios []float64
	for ti, t := range fig3 {
		for _, row := range t.Rows {
			tc, ok1 := t.Cell(row, "TC")
			dd, ok2 := t.Cell(row, "DDIO")
			dds, ok3 := t.Cell(row, "DDIO+sort")
			if !ok1 || !ok2 || !ok3 || tc.Mean == 0 || dd.Mean == 0 {
				continue
			}
			if sp := dds.Mean / tc.Mean; sp > h.MaxSpeedupRandom {
				h.MaxSpeedupRandom = sp
				h.MaxSpeedupRandomAt = fmt.Sprintf("%s, %s records", row, recordLabel(ti))
			}
			gain := dds.Mean/dd.Mean - 1
			if h.PresortGainMin < 0 || gain < h.PresortGainMin {
				h.PresortGainMin = gain
			}
			if gain > h.PresortGainMax {
				h.PresortGainMax = gain
			}
			// Pair with the contiguous table for the layout ratio.
			if c4, ok := fig4[ti].Cell(row, "DDIO"); ok && dds.Mean > 0 {
				contigRatios = append(contigRatios, c4.Mean/dds.Mean)
			}
		}
	}
	for ti, t := range fig4 {
		for _, row := range t.Rows {
			tc, ok1 := t.Cell(row, "TC")
			dd, ok2 := t.Cell(row, "DDIO")
			if !ok1 || !ok2 || tc.Mean == 0 {
				continue
			}
			if sp := dd.Mean / tc.Mean; sp > h.MaxSpeedupContig {
				h.MaxSpeedupContig = sp
				h.MaxSpeedupContigAt = fmt.Sprintf("%s, %s records", row, recordLabel(ti))
			}
			if ceilingMBps > 0 {
				if f := dd.Mean / ceilingMBps; f > h.PeakFraction {
					h.PeakFraction = f
				}
			}
		}
	}
	if len(contigRatios) > 0 {
		h.ContigOverRandom = median(contigRatios)
	}
	return h, nil
}

func recordLabel(tableIndex int) string {
	if tableIndex == 0 {
		return "8-byte"
	}
	return "8192-byte"
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	for i := 1; i < len(s); i++ { // insertion sort; n is tiny
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	return s[len(s)/2]
}

// Format renders the headline comparison against the paper's numbers.
func (h *Headlines) Format() string {
	var b strings.Builder
	b.WriteString("headline claims (measured vs paper)\n")
	fmt.Fprintf(&b, "  max DDIO+sort/TC speedup, random layout: %.1fx at %s (paper: up to 9.0x)\n",
		h.MaxSpeedupRandom, h.MaxSpeedupRandomAt)
	fmt.Fprintf(&b, "  max DDIO/TC speedup, contiguous layout:  %.1fx at %s (paper: up to 16.2x)\n",
		h.MaxSpeedupContig, h.MaxSpeedupContigAt)
	fmt.Fprintf(&b, "  presort gain on random layout:            %.0f%%..%.0f%% (paper: 41-50%%)\n",
		h.PresortGainMin*100, h.PresortGainMax*100)
	fmt.Fprintf(&b, "  best DDIO fraction of hardware ceiling:   %.0f%% (paper: 93%%)\n",
		h.PeakFraction*100)
	fmt.Fprintf(&b, "  contiguous over random (median, DDIO):    %.1fx (paper: ~5x)\n",
		h.ContigOverRandom)
	return b.String()
}
