package exp

import (
	"time"

	"ddio/internal/fault"
	"ddio/internal/workload"
)

// presets.go is the registry of built-in sweep specs. The *-paper
// presets ARE the canonical Figures 5–8: Figure5..Figure8 run them, and
// their expansion is pinned bit-identical to the original hard-coded
// generators by TestPaperPresetsMatchLegacyExpansion. The *-ext presets
// push each figure past the paper's 1994 hardware envelope (64 CPs,
// IOPs, and disks; finer record sizes), and ext-smoke is the tiny
// beyond-paper preset CI runs end to end. EXPERIMENTS.md documents each
// preset with its command line and expected runtime.

// sweepPatterns returns the pattern set of Figures 5–8 (paper §5: four
// patterns representing the range of performance), fresh per call so
// preset copies never share slices.
func sweepPatterns() []string { return []string{"ra", "rn", "rb", "rc"} }

// degradePlan is the fault template the degradation presets start from:
// a generous retry budget (the sweeps measure graceful degradation, not
// data loss) with drive-recovery and backoff costs that dominate a
// faulted request's latency. The swept axis overlays the fault
// intensity per row; everything here stays fixed.
func degradePlan() *fault.Plan {
	return &fault.Plan{
		DiskErrorLatency:  5 * time.Millisecond,
		StragglerSlowdown: 4,
		RetryLimit:        6,
		RetryBackoff:      2 * time.Millisecond,
	}
}

// skewWorkload is the workload template the wl-* presets sweep: a
// skewed, read-mostly request stream with open Poisson arrivals (the
// RatePerSec here is a placeholder — the wlrate axis overlays the swept
// rate per row). The shape deliberately exercises what whole-file
// collectives cannot: non-uniform access and an open arrival process.
func skewWorkload(requests int) *workload.Spec {
	frac := 0.8
	return &workload.Spec{
		Name: "skew-open",
		Phases: []workload.Phase{{
			Pattern:      workload.PatternSkew,
			Requests:     requests,
			Alpha:        1.2,
			ReadFraction: &frac,
			Arrival:      "poisson",
			RatePerSec:   1000,
		}},
	}
}

// Presets returns the built-in sweep specs, paper ranges first. Each
// call returns fresh copies, safe for the caller to modify.
func Presets() []*SweepSpec {
	return []*SweepSpec{
		{
			Name: "fig5-paper", ID: "fig5", Extends: "fig5",
			Title:  "throughput vs number of CPs (contiguous, 8 KB records)",
			Axis:   AxisCPs,
			Values: []int{1, 2, 4, 8, 16},
			Layout: "contiguous", Methods: []string{"ddio", "tc"}, Patterns: sweepPatterns(),
		},
		{
			Name: "fig6-paper", ID: "fig6", Extends: "fig6",
			Title:  "throughput vs number of IOPs/busses (16 disks, contiguous, 8 KB records)",
			Axis:   AxisIOPs,
			Values: []int{1, 2, 4, 8, 16},
			Layout: "contiguous", Methods: []string{"ddio", "tc"}, Patterns: sweepPatterns(),
		},
		{
			Name: "fig7-paper", ID: "fig7", Extends: "fig7",
			Title:  "throughput vs number of disks (1 IOP/bus, contiguous, 8 KB records)",
			Axis:   AxisDisks,
			Values: []int{1, 2, 4, 8, 16, 32},
			IOPs:   1,
			Layout: "contiguous", Methods: []string{"ddio", "tc"}, Patterns: sweepPatterns(),
		},
		{
			Name: "fig8-paper", ID: "fig8", Extends: "fig8",
			Title:  "throughput vs number of disks (1 IOP/bus, random-blocks, 8 KB records)",
			Axis:   AxisDisks,
			Values: []int{1, 2, 4, 8, 16, 32},
			IOPs:   1,
			Layout: "random-blocks", Methods: []string{"ddio-sort", "tc"}, Patterns: sweepPatterns(),
		},
		{
			Name: "fig5-ext", Extends: "fig5",
			Title:  "throughput vs number of CPs, extended to 64 (contiguous, 8 KB records)",
			Note:   "the torus grows past the paper's 6x6 once CPs+IOPs exceed 36 nodes",
			Axis:   AxisCPs,
			Values: []int{1, 2, 4, 8, 16, 32, 64},
			Layout: "contiguous", Methods: []string{"ddio", "tc"}, Patterns: sweepPatterns(),
		},
		{
			Name: "fig6-ext", Extends: "fig6",
			Title:  "throughput vs number of IOPs/busses, extended to 64 (64 disks, contiguous, 8 KB records)",
			Note:   "64 disks redistributed among the IOPs (the paper redistributed 16)",
			Axis:   AxisIOPs,
			Values: []int{1, 2, 4, 8, 16, 32, 64},
			Disks:  64,
			Layout: "contiguous", Methods: []string{"ddio", "tc"}, Patterns: sweepPatterns(),
		},
		{
			Name: "fig7-ext", Extends: "fig7",
			Title:  "throughput vs number of disks, extended to 64 (1 IOP/bus, contiguous, 8 KB records)",
			Note:   "one SCSI bus: its 10 MB/s ceiling binds well before 64 disks",
			Axis:   AxisDisks,
			Values: []int{1, 2, 4, 8, 16, 32, 64},
			IOPs:   1,
			Layout: "contiguous", Methods: []string{"ddio", "tc"}, Patterns: sweepPatterns(),
		},
		{
			Name: "fig8-ext", Extends: "fig8",
			Title:  "throughput vs number of disks, extended to 64 (1 IOP/bus, random-blocks, 8 KB records)",
			Axis:   AxisDisks,
			Values: []int{1, 2, 4, 8, 16, 32, 64},
			IOPs:   1,
			Layout: "random-blocks", Methods: []string{"ddio-sort", "tc"}, Patterns: sweepPatterns(),
		},
		{
			Name: "record-ext", Extends: "fig3/fig4 record-size axis",
			Title:  "throughput vs record size in bytes (contiguous, Table 1 machine)",
			Note:   "sweeps the record granularity the paper fixed at 8 B and 8 KB",
			Axis:   AxisRecord,
			Values: []int{8, 64, 512, 4096, 8192},
			Layout: "contiguous", Methods: []string{"ddio", "tc"}, Patterns: sweepPatterns(),
		},
		{
			Name: "degrade-fault", Extends: "beyond-paper robustness study",
			Title:  "throughput vs transient disk-error rate, permille per request (random-blocks, 8 KB records)",
			Note:   "bounded retry recovers every error; throughput degrades, nothing is lost",
			Axis:   AxisFaultPM,
			Values: []int{0, 5, 10, 20, 50, 100},
			Layout: "random-blocks", Methods: []string{"ddio-sort", "tc", "2phase"}, Patterns: []string{"rb"},
			Faults: degradePlan(),
		},
		{
			Name: "degrade-straggler", Extends: "beyond-paper robustness study",
			Title:  "throughput vs number of 4x-slower disks (random-blocks, 8 KB records)",
			Note:   "stragglers are drawn per seed from a dedicated stream; 0 is the fault-free baseline",
			Axis:   AxisStragglers,
			Values: []int{0, 1, 2, 4, 8},
			Layout: "random-blocks", Methods: []string{"ddio-sort", "tc", "2phase"}, Patterns: []string{"rb"},
			Faults: degradePlan(),
		},
		{
			Name: "degrade-smoke", Extends: "degrade-fault (tiny CI smoke)",
			Title:  "throughput vs disk-error rate, permille (smoke axes, all fault models armed)",
			Note:   "CI smoke preset: 1 trial of a 1 MB file on a 4-CP/4-IOP/4-disk machine",
			Axis:   AxisFaultPM,
			Values: []int{0, 20, 80},
			CPs:    4, IOPs: 4, Disks: 4,
			Layout: "random-blocks", Methods: []string{"ddio", "tc"}, Patterns: []string{"rb"},
			Trials: 1, FileMB: 1,
			Faults: &fault.Plan{
				Stragglers:        1,
				StragglerSlowdown: 2,
				DiskErrorLatency:  2 * time.Millisecond,
				MsgLossRate:       0.02,
				ResendTimeout:     100 * time.Microsecond,
				SpikeRate:         0.01,
				SpikeLatency:      50 * time.Microsecond,
				RetryLimit:        6,
				RetryBackoff:      time.Millisecond,
			},
		},
		{
			Name: "wl-rate", Extends: "beyond-paper workload study",
			Title:  "throughput vs open-arrival rate, requests/s (skewed 80/20 mix, random-blocks, 8 KB records)",
			Note:   "closed whole-file collectives cannot chart offered load; this sweep can",
			Axis:   AxisWLRate,
			Values: []int{200, 500, 1000, 2000, 5000},
			Layout: "random-blocks", Methods: []string{"ddio-sort", "tc", "2phase"}, Patterns: []string{"rb"},
			Workload: skewWorkload(512),
		},
		{
			Name: "wl-smoke", Extends: "wl-rate (tiny CI smoke)",
			Title:  "throughput vs open-arrival rate, requests/s (smoke axes, skewed 80/20 mix)",
			Note:   "CI smoke preset: 1 trial of a 1 MB file on a 4-CP/4-IOP/4-disk machine",
			Axis:   AxisWLRate,
			Values: []int{200, 1000},
			CPs:    4, IOPs: 4, Disks: 4,
			Layout: "random-blocks", Methods: []string{"ddio-sort", "tc", "2phase"}, Patterns: []string{"rb"},
			Trials: 1, FileMB: 1,
			Workload: skewWorkload(96),
		},
		{
			Name: "surface-cps-disks", Extends: "fig5 × fig7 response surface",
			Title:   "throughput surface: CPs × disks (contiguous, 8 KB records)",
			Note:    "two-axis cross-product; renders as a heatmap per method×pattern",
			Axis:    AxisCPs,
			Values:  []int{1, 2, 4, 8, 16},
			Axis2:   AxisDisks,
			Values2: []int{1, 2, 4, 8, 16},
			Layout:  "contiguous", Methods: []string{"ddio", "tc"}, Patterns: []string{"rb", "rc"},
		},
		{
			Name: "surface-smoke", Extends: "surface-cps-disks (tiny CI smoke)",
			Title:   "throughput surface: CPs × disks (smoke axes)",
			Note:    "CI smoke preset: 1 trial of a 1 MB file, 2 IOPs",
			Axis:    AxisCPs,
			Values:  []int{2, 4},
			Axis2:   AxisDisks,
			Values2: []int{2, 4},
			IOPs:    2,
			Layout:  "contiguous", Methods: []string{"ddio", "tc"}, Patterns: []string{"rb"},
			Trials: 1, FileMB: 1,
		},
		{
			Name: "ext-smoke", Extends: "fig5 (tiny beyond-paper smoke)",
			Title:  "throughput vs number of CPs beyond the paper's 16 (smoke axes)",
			Note:   "CI smoke preset: 1 trial of a 1 MB file on a 4-IOP/4-disk machine",
			Axis:   AxisCPs,
			Values: []int{20, 24},
			IOPs:   4, Disks: 4,
			Layout: "contiguous", Methods: []string{"ddio"}, Patterns: []string{"ra", "rc"},
			Trials: 1, FileMB: 1,
		},
	}
}

// LookupPreset returns a fresh copy of the named built-in preset.
func LookupPreset(name string) (*SweepSpec, bool) {
	for _, s := range Presets() {
		if s.Name == name {
			return s, true
		}
	}
	return nil, false
}
