package exp

// cellkey_test.go pins the two properties the serving layer's cache
// soundness rests on: canonical-encoding invariance (equal resolved
// configs hash equal, no matter how the defining JSON was ordered) and
// sensitivity (any simulation-relevant difference — seed, trial, shape,
// method, pattern, layout, tuning, disk model, fault plan — hashes
// distinct).

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"ddio/internal/fault"
	"ddio/internal/pfs"
	"ddio/internal/workload"
)

// randomConfig builds a randomized but structurally plausible Config.
// CellKey never simulates, so the shapes need not be runnable.
func randomConfig(r *rand.Rand) Config {
	cfg := DefaultConfig()
	methods := []Method{TraditionalCaching, DiskDirected, DiskDirectedSort, TwoPhase}
	patterns := []string{"ra", "rb", "rc", "rn", "rbb", "rcc", "wb", "wc", "wn"}
	cfg.Method = methods[r.Intn(len(methods))]
	cfg.Pattern = patterns[r.Intn(len(patterns))]
	cfg.NCP = 1 + r.Intn(32)
	cfg.NIOP = 1 + r.Intn(32)
	cfg.NDisks = 1 + r.Intn(32)
	cfg.FileBytes = int64(1+r.Intn(16)) * MiB
	cfg.RecordSize = []int{8, 1024, 4096, 8192}[r.Intn(4)]
	if r.Intn(2) == 0 {
		cfg.Layout = pfs.Contiguous
	} else {
		cfg.Layout = pfs.RandomBlocks
	}
	cfg.Seed = r.Int63n(1 << 40)
	cfg.Verify = r.Intn(2) == 0
	if r.Intn(3) == 0 {
		cfg.Faults = &fault.Plan{
			Stragglers:        r.Intn(4),
			StragglerSlowdown: 1 + float64(r.Intn(4)),
			DiskErrorRate:     float64(r.Intn(50)) / 1000,
			RetryLimit:        1 + r.Intn(5),
		}
	}
	if r.Intn(3) == 0 {
		frac := float64(r.Intn(100)) / 100
		cfg.Workload = &workload.Spec{
			Name: "k",
			Phases: []workload.Phase{{
				Pattern:      workload.PatternSkew,
				Requests:     1 + r.Intn(200),
				Alpha:        r.Float64() * 2,
				ReadFraction: &frac,
				Arrival:      "poisson",
				RatePerSec:   float64(1 + r.Intn(5000)),
			}},
		}
	}
	return cfg
}

// mutateWL clones the config's workload (nil-safely), guarantees a
// synthetic phase to edit, applies the knob edit, and reassigns — so
// every workload mutation below is meaningful whether or not the base
// config carried a workload.
func mutateWL(c *Config, edit func(*workload.Phase)) {
	w := c.Workload.Clone()
	if len(w.Phases) == 0 {
		w.Phases = []workload.Phase{{Pattern: workload.PatternUniform, Requests: 8}}
	}
	edit(&w.Phases[0])
	c.Workload = w
}

// cellKeyMutations are single-field edits, each of which must change the
// cell key: serving a cached result across any of these boundaries would
// serve the wrong simulation.
var cellKeyMutations = []struct {
	name string
	edit func(*Config)
}{
	{"seed", func(c *Config) { c.Seed++ }},
	{"trial", func(c *Config) { c.Seed = trialSeed(c.Seed, 1) }},
	{"ncp", func(c *Config) { c.NCP++ }},
	{"niop", func(c *Config) { c.NIOP++ }},
	{"ndisks", func(c *Config) { c.NDisks++ }},
	{"filebytes", func(c *Config) { c.FileBytes += MiB }},
	{"blocksize", func(c *Config) { c.BlockSize *= 2 }},
	{"recordsize", func(c *Config) { c.RecordSize *= 2 }},
	{"pattern", func(c *Config) {
		if c.Pattern == "ra" {
			c.Pattern = "rc"
		} else {
			c.Pattern = "ra"
		}
	}},
	{"method", func(c *Config) { c.Method = (c.Method + 1) % 4 }},
	{"layout", func(c *Config) {
		if c.Layout == pfs.Contiguous {
			c.Layout = pfs.RandomBlocks
		} else {
			c.Layout = pfs.Contiguous
		}
	}},
	{"verify", func(c *Config) { c.Verify = !c.Verify }},
	{"bus-bandwidth", func(c *Config) { c.BusBandwidth *= 1.5 }},
	{"bus-overhead", func(c *Config) { c.BusOverhead += time.Microsecond }},
	{"barrier-cost", func(c *Config) { c.BarrierCost += time.Microsecond }},
	{"net-router-delay", func(c *Config) { c.Net.RouterDelay += time.Nanosecond }},
	{"tc-prefetch", func(c *Config) { c.TC.PrefetchBlocks++ }},
	{"tc-threads", func(c *Config) { c.TC.ServiceThreads++ }},
	{"dd-buffers", func(c *Config) { c.DD.BuffersPerDisk++ }},
	{"dd-presort", func(c *Config) { c.DD.Presort = !c.DD.Presort }},
	{"tp-copy", func(c *Config) { c.TP.CopyPerByte += time.Nanosecond }},
	{"disk-rpm", func(c *Config) {
		d := *c.Disk
		d.RPM += 1
		c.Disk = &d
	}},
	{"disk-seek-curve", func(c *Config) {
		d := *c.Disk
		orig := d.Seek
		d.Seek = func(cyls int) time.Duration { return orig(cyls) + time.Nanosecond }
		c.Disk = &d
	}},
	{"faults", func(c *Config) {
		if c.Faults == nil {
			c.Faults = &fault.Plan{}
		} else {
			p := c.Faults.Clone()
			p.DiskErrorRate += 0.001
			c.Faults = p
		}
	}},
	// One mutation per workload knob: each must perturb the key whether
	// or not the base config carried a workload (mutateWL is nil-safe).
	{"wl-enabled", func(c *Config) {
		w := c.Workload.Clone()
		w.Phases = append(w.Phases, workload.Phase{Pattern: "rb"})
		c.Workload = w
	}},
	{"wl-name", func(c *Config) {
		w := c.Workload.Clone()
		w.Name += "x"
		c.Workload = w
	}},
	{"wl-pattern", func(c *Config) {
		mutateWL(c, func(p *workload.Phase) {
			if p.Pattern == workload.PatternUniform {
				p.Pattern = workload.PatternHotspot
			} else {
				p.Pattern = workload.PatternUniform
			}
		})
	}},
	{"wl-requests", func(c *Config) { mutateWL(c, func(p *workload.Phase) { p.Requests++ }) }},
	{"wl-record-size", func(c *Config) { mutateWL(c, func(p *workload.Phase) { p.RecordSize += 8 }) }},
	{"wl-record-sizes", func(c *Config) {
		mutateWL(c, func(p *workload.Phase) { p.RecordSizes = append(p.RecordSizes, 4096) })
	}},
	{"wl-read-fraction", func(c *Config) {
		mutateWL(c, func(p *workload.Phase) {
			v := 0.5
			if p.ReadFraction != nil {
				v = *p.ReadFraction + 1
			}
			p.ReadFraction = &v
		})
	}},
	{"wl-alpha", func(c *Config) { mutateWL(c, func(p *workload.Phase) { p.Alpha += 0.25 }) }},
	{"wl-hot-fraction", func(c *Config) { mutateWL(c, func(p *workload.Phase) { p.HotFraction += 0.1 }) }},
	{"wl-hot-weight", func(c *Config) { mutateWL(c, func(p *workload.Phase) { p.HotWeight += 0.1 }) }},
	{"wl-arrival", func(c *Config) {
		mutateWL(c, func(p *workload.Phase) {
			if p.Arrival == "poisson" {
				p.Arrival = "closed"
			} else {
				p.Arrival = "poisson"
			}
		})
	}},
	{"wl-think", func(c *Config) { mutateWL(c, func(p *workload.Phase) { p.Think += time.Microsecond }) }},
	{"wl-rate", func(c *Config) { mutateWL(c, func(p *workload.Phase) { p.RatePerSec += 100 }) }},
	{"wl-trace", func(c *Config) {
		mutateWL(c, func(p *workload.Phase) {
			p.Trace = append(p.Trace, workload.TraceReq{Op: "r", Bytes: 8})
		})
	}},
}

// TestCellKeyProperties drives 150 randomized configs through the
// determinism and sensitivity properties.
func TestCellKeyProperties(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 150; i++ {
		cfg := randomConfig(r)
		key := CellKey(cfg)
		if len(key) != 64 {
			t.Fatalf("case %d: key %q is not a hex sha256", i, key)
		}
		copied := cfg
		if got := CellKey(copied); got != key {
			t.Fatalf("case %d: equal configs hashed differently:\n %s\n %s", i, key, got)
		}
		// Re-encoding is byte-stable, not merely hash-stable.
		if !bytes.Equal(cellKeyBytes(cfg), cellKeyBytes(cfg)) {
			t.Fatalf("case %d: canonical encoding is not deterministic", i)
		}
		for _, m := range cellKeyMutations {
			mutated := cfg
			m.edit(&mutated)
			if got := CellKey(mutated); got == key {
				t.Fatalf("case %d: mutation %q did not change the cell key", i, m.name)
			}
		}
	}
}

// TestCellKeyTrialsDistinct pins that every trial of a cell occupies its
// own cache slot: the runner folds the trial index into the seed, and
// distinct seeds hash distinct.
func TestCellKeyTrialsDistinct(t *testing.T) {
	cfg := DefaultConfig()
	seen := make(map[string]int)
	for k := 0; k < 20; k++ {
		c := cfg
		c.Seed = trialSeed(cfg.Seed, k)
		key := CellKey(c)
		if prev, dup := seen[key]; dup {
			t.Fatalf("trials %d and %d share a cell key", prev, k)
		}
		seen[key] = k
	}
}

// encodeOrdered emits a JSON object with its keys in exactly the given
// order — the tool for constructing reordered-but-equal spec documents.
func encodeOrdered(t *testing.T, keys []string, m map[string]any) []byte {
	t.Helper()
	var b bytes.Buffer
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		kb, err := json.Marshal(k)
		if err != nil {
			t.Fatal(err)
		}
		vb, err := json.Marshal(m[k])
		if err != nil {
			t.Fatal(err)
		}
		b.Write(kb)
		b.WriteByte(':')
		b.Write(vb)
	}
	b.WriteByte('}')
	return b.Bytes()
}

// TestCellKeyJSONFieldOrderInvariance parses 100 random permutations of
// the same sweep-spec document and checks every permutation expands to
// the identical cell-key sequence: the hash is computed over the resolved
// config, so caller JSON ordering can never split the cache.
func TestCellKeyJSONFieldOrderInvariance(t *testing.T) {
	fields := map[string]any{
		"name":     "perm",
		"title":    "permutation sweep",
		"axis":     "cps",
		"values":   []int{1, 2, 4},
		"layout":   "random-blocks",
		"methods":  []string{"ddio-sort", "tc"},
		"patterns": []string{"ra", "rc"},
		"record":   8192,
		"iops":     4,
		"disks":    4,
		"trials":   2,
		"filemb":   1,
		"faults": map[string]any{
			"disk_error_rate": 0.01,
			"retry_limit":     3,
		},
	}
	keys := make([]string, 0, len(fields))
	for k := range fields {
		keys = append(keys, k)
	}
	opts := Options{Trials: 2, FileBytes: MiB, Seed: 42, Verify: true}

	keysOf := func(doc []byte) []string {
		spec, err := ParseSweepSpec(doc)
		if err != nil {
			t.Fatalf("parsing %s: %v", doc, err)
		}
		_, cfgs, err := spec.Expand(opts)
		if err != nil {
			t.Fatalf("expanding %s: %v", doc, err)
		}
		out := make([]string, len(cfgs))
		for i, cfg := range cfgs {
			out[i] = CellKey(cfg)
		}
		return out
	}

	r := rand.New(rand.NewSource(11))
	baseline := keysOf(encodeOrdered(t, keys, fields))
	if len(baseline) == 0 {
		t.Fatal("baseline spec expanded to zero cells")
	}
	for trial := 0; trial < 100; trial++ {
		perm := make([]string, len(keys))
		for i, j := range r.Perm(len(keys)) {
			perm[i] = keys[j]
		}
		got := keysOf(encodeOrdered(t, perm, fields))
		if fmt.Sprint(got) != fmt.Sprint(baseline) {
			t.Fatalf("permutation %d (%v) changed the cell keys", trial, perm)
		}
	}
}
