package exp

// fuzz_test.go fuzzes the sweep-spec file parser: any byte string must
// come back as a spec or an error — malformed axis pairs as the typed
// *SpecError — and a spec that parses must expand without panicking.
// `go test` runs the seed corpus as ordinary regression tests;
// `go test -fuzz=FuzzParseSweepSpec ./internal/exp/` explores from there.

import (
	"errors"
	"testing"
)

// specSeeds covers the spec grammar: valid single- and two-axis specs,
// every malformed axis-pair shape, and structural junk.
var specSeeds = []string{
	`{"name":"s","title":"t","axis":"cps","values":[1,2],"layout":"contiguous",
		"methods":["tc"],"patterns":["ra"]}`,
	`{"name":"s2","title":"t","axis":"cps","values":[1,2],"axis2":"disks","values2":[2,4],
		"iops":2,"layout":"contiguous","methods":["tc","ddio"],"patterns":["rb"]}`,
	`{"name":"s2","title":"t","axis":"wlrate","values":[100],"axis2":"faultpm","values2":[0,5],
		"layout":"random-blocks","methods":["ddio"],"patterns":["rb"],
		"faults":{"retry_limit":2},
		"workload":{"phases":[{"pattern":"uniform","requests":8,"arrival":"poisson","rate_per_sec":100}]}}`,
	// Malformed axis pairs: each must parse to a *SpecError, never panic.
	`{"name":"x","title":"t","axis":"cps","values":[1],"values2":[2],
		"layout":"contiguous","methods":["tc"],"patterns":["ra"]}`,
	`{"name":"x","title":"t","axis":"cps","values":[1],"axis2":"cps","values2":[2],
		"layout":"contiguous","methods":["tc"],"patterns":["ra"]}`,
	`{"name":"x","title":"t","axis":"cps","values":[1],"axis2":"warp","values2":[2],
		"layout":"contiguous","methods":["tc"],"patterns":["ra"]}`,
	`{"name":"x","title":"t","axis":"cps","values":[1],"axis2":"disks","values2":[],
		"layout":"contiguous","methods":["tc"],"patterns":["ra"]}`,
	`{"name":"x","title":"t","axis":"cps","values":[1],"axis2":"disks","values2":[0],
		"layout":"contiguous","methods":["tc"],"patterns":["ra"]}`,
	`{"name":"x","title":"t","axis":"cps","values":[1],"axis2":"faultpm","values2":[5],
		"layout":"contiguous","methods":["tc"],"patterns":["ra"]}`,
	``,
	`{`,
	`{}`,
	`null`,
	`[]`,
	`{"name":"x","axis":"cps","values":[1],"layout":"contiguous","methods":["tc"],
		"patterns":["ra"],"bogus":1}`,
	`{"name":"x","title":"t","axis":"cps","values":[99999999999999999999],
		"layout":"contiguous","methods":["tc"],"patterns":["ra"]}`,
}

func FuzzParseSweepSpec(f *testing.F) {
	for _, seed := range specSeeds {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ParseSweepSpec(data)
		if err != nil {
			// Typed or not, an error return is a correct rejection; the
			// As call itself must not panic on wrapped chains.
			var specErr *SpecError
			_ = errors.As(err, &specErr)
			return
		}
		// A spec that parsed is valid by construction; expanding it must
		// not panic. Bound the grid so a fuzz-found "valid but huge"
		// spec costs allocation, not minutes.
		n := len(s.Values) * len(s.Methods) * len(s.Patterns)
		if len(s.Values2) > 0 {
			n *= len(s.Values2)
		}
		if n > 256 {
			t.Skip("valid spec, grid too large to expand in fuzz")
		}
		if _, _, err := s.Expand(Options{Trials: 1, FileBytes: MiB, Seed: 1}); err != nil {
			t.Fatalf("valid spec failed to expand: %v", err)
		}
	})
}

// TestSpecSeedsTyped pins that every malformed axis-pair seed rejects
// with the typed *SpecError (the structural-junk seeds reject with
// ordinary errors).
func TestSpecSeedsTyped(t *testing.T) {
	for _, seed := range specSeeds[3:8] {
		_, err := ParseSweepSpec([]byte(seed))
		if err == nil {
			t.Errorf("accepted malformed axis pair: %s", seed)
			continue
		}
		var specErr *SpecError
		if !errors.As(err, &specErr) {
			t.Errorf("error %v is not a *SpecError for: %s", err, seed)
		}
	}
}
