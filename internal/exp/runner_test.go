package exp

import (
	"reflect"
	"strings"
	"testing"

	"ddio/internal/pfs"
)

// parOptions is a scaled-down figure configuration for runner tests.
func parOptions(workers int) Options {
	return Options{Trials: 2, FileBytes: 512 * 1024, Seed: 9, Verify: true, Workers: workers}
}

// The tentpole determinism contract: a figure table generated on eight
// workers must be bit-identical to the sequential one — seeds derive
// from (cell, trial) position and results are slotted by index, so
// scheduling order cannot leak into the cells.
func TestPatternTableParallelBitIdentical(t *testing.T) {
	patterns := []string{"ra", "rb", "rc"}
	methods := []Method{TraditionalCaching, DiskDirected}
	seq, err := patternTable(parOptions(1), "figP", "test", pfs.RandomBlocks, 8192, patterns, methods)
	if err != nil {
		t.Fatal(err)
	}
	par, err := patternTable(parOptions(8), "figP", "test", pfs.RandomBlocks, 8192, patterns, methods)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq.Cells, par.Cells) {
		t.Fatalf("parallel cells differ from sequential:\nseq %+v\npar %+v", seq.Cells, par.Cells)
	}
}

// The same contract for the machine-shape sweeps (a scaled Figure 5,
// expressed as a sweep spec).
func TestSweepTableParallelBitIdentical(t *testing.T) {
	spec := tinySweepSpec()
	spec.Values = []int{1, 4}
	seq, err := spec.Run(parOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := spec.Run(parOptions(8))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq.Cells, par.Cells) {
		t.Fatalf("parallel cells differ from sequential:\nseq %+v\npar %+v", seq.Cells, par.Cells)
	}
}

// Runner.Trials on a pool must aggregate exactly like sequential Trials.
func TestRunnerTrialsMatchesSequential(t *testing.T) {
	cfg := smokeCfg()
	cfg.Method = DiskDirectedSort
	cfg.Pattern = "rb"
	seq, err := Trials(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	par, err := NewRunner(4, nil).Trials(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq.MBps, par.MBps) || seq.Mean != par.Mean || seq.CV != par.CV {
		t.Fatalf("parallel trials differ: %v/%v vs %v/%v", seq.MBps, seq.Mean, par.MBps, par.Mean)
	}
}

// Progress lines under the parallel runner arrive serialized, one
// complete line per cell (order may differ from table order).
func TestParallelProgressSerialized(t *testing.T) {
	var lines []string
	o := parOptions(8)
	o.Progress = func(s string) { lines = append(lines, s) } // safe: called under the runner lock
	patterns := []string{"ra", "rb"}
	methods := []Method{TraditionalCaching, DiskDirected}
	if _, err := patternTable(o, "figQ", "test", pfs.Contiguous, 8192, patterns, methods); err != nil {
		t.Fatal(err)
	}
	if len(lines) != len(patterns)*len(methods) {
		t.Fatalf("got %d progress lines, want %d: %q", len(lines), len(patterns)*len(methods), lines)
	}
	for _, l := range lines {
		if !strings.HasPrefix(l, "figQ ") || !strings.Contains(l, "MB/s") {
			t.Fatalf("malformed progress line %q", l)
		}
	}
}

// A failing config aborts the whole batch with an error.
func TestRunAllReportsError(t *testing.T) {
	good := smokeCfg()
	bad := smokeCfg()
	bad.Pattern = "zz"
	if _, err := NewRunner(4, nil).RunAll([]Config{good, bad, good}, nil); err == nil {
		t.Fatal("bad config accepted")
	}
}
