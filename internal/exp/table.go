package exp

import (
	"fmt"
	"strings"
)

// Cell is one measured table entry: mean throughput over trials and its
// coefficient of variation.
type Cell struct {
	Mean float64
	CV   float64
}

// Table is one reproduced figure or table: rows × columns of throughput
// cells, formatted like the paper reports them.
type Table struct {
	ID       string // "fig3a", "fig7", "table1", ...
	Title    string
	RowLabel string // "pattern" or the swept parameter
	Rows     []string
	Cols     []string
	Cells    [][]Cell
	Note     string
}

// Format renders the table as aligned text (MB/s means; cv in
// parentheses when it exceeds 0.005).
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	w := len(t.RowLabel)
	for _, r := range t.Rows {
		if len(r) > w {
			w = len(r)
		}
	}
	fmt.Fprintf(&b, "%-*s", w+2, t.RowLabel)
	for _, c := range t.Cols {
		fmt.Fprintf(&b, "%14s", c)
	}
	b.WriteByte('\n')
	for i, r := range t.Rows {
		fmt.Fprintf(&b, "%-*s", w+2, r)
		for j := range t.Cols {
			c := t.Cells[i][j]
			if c.CV > 0.005 {
				fmt.Fprintf(&b, "%8.2f(%4.2f)", c.Mean, c.CV)
			} else {
				fmt.Fprintf(&b, "%14.2f", c.Mean)
			}
		}
		b.WriteByte('\n')
	}
	if t.Note != "" {
		fmt.Fprintf(&b, "note: %s\n", t.Note)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (means only).
func (t *Table) CSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s", t.RowLabel)
	for _, c := range t.Cols {
		fmt.Fprintf(&b, ",%s", c)
	}
	b.WriteByte('\n')
	for i, r := range t.Rows {
		fmt.Fprintf(&b, "%s", r)
		for j := range t.Cols {
			fmt.Fprintf(&b, ",%.3f", t.Cells[i][j].Mean)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// MaxCV returns the largest coefficient of variation in the table (the
// paper quotes this per figure).
func (t *Table) MaxCV() float64 {
	var m float64
	for i := range t.Cells {
		for j := range t.Cells[i] {
			if t.Cells[i][j].CV > m {
				m = t.Cells[i][j].CV
			}
		}
	}
	return m
}

// Cell returns the cell at (row, col) by label; ok reports presence.
func (t *Table) Cell(row, col string) (Cell, bool) {
	for i, r := range t.Rows {
		if r != row {
			continue
		}
		for j, c := range t.Cols {
			if c == col {
				return t.Cells[i][j], true
			}
		}
	}
	return Cell{}, false
}
