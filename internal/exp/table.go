package exp

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"

	"ddio/internal/stats"
)

// Cell is one measured table entry: mean throughput over trials and its
// coefficient of variation.
type Cell struct {
	Mean float64 `json:"mean"`         // mean throughput over trials, MB/s
	CV   float64 `json:"cv,omitempty"` // coefficient of variation over trials
}

// Table is one reproduced figure or table: rows × columns of throughput
// cells, formatted like the paper reports them. Tables marshal to JSON
// losslessly (JSON/ParseTableJSON round-trip the full cell grid) and to
// CSV at fixed precision (CSV/ParseTableCSV round-trip the means).
type Table struct {
	ID       string   `json:"id"`             // "fig3a", "fig7", "table1", ...
	Title    string   `json:"title"`          // one-line description
	RowLabel string   `json:"row_label"`      // "pattern" or the swept parameter
	Rows     []string `json:"rows"`           // row labels, outer cell index
	Cols     []string `json:"cols"`           // column labels, inner cell index
	Cells    [][]Cell `json:"cells"`          // measured grid, [row][col]
	Note     string   `json:"note,omitempty"` // optional caption line

	// Latency carries per-cell request-latency statistics (seconds, with
	// p50/p90/p99 populated), same [row][col] indexing as Cells but
	// without the trailing max-bw column. Populated only for workload
	// sweeps — open-arrival runs are latency studies — and omitted
	// otherwise, keeping classic sweep JSON byte-identical.
	Latency [][]stats.Summary `json:"latency,omitempty"`
}

// Format renders the table as aligned text (MB/s means; cv in
// parentheses when it exceeds 0.005).
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	w := len(t.RowLabel)
	for _, r := range t.Rows {
		if len(r) > w {
			w = len(r)
		}
	}
	fmt.Fprintf(&b, "%-*s", w+2, t.RowLabel)
	for _, c := range t.Cols {
		fmt.Fprintf(&b, "%14s", c)
	}
	b.WriteByte('\n')
	for i, r := range t.Rows {
		fmt.Fprintf(&b, "%-*s", w+2, r)
		for j := range t.Cols {
			c := t.Cells[i][j]
			if c.CV > 0.005 {
				fmt.Fprintf(&b, "%8.2f(%4.2f)", c.Mean, c.CV)
			} else {
				fmt.Fprintf(&b, "%14.2f", c.Mean)
			}
		}
		b.WriteByte('\n')
	}
	if t.Latency != nil {
		// Workload sweeps append a latency view: per-request p50/p90/p99
		// in milliseconds, same grid as the throughput block above.
		fmt.Fprintf(&b, "\nrequest latency p50/p90/p99 (ms)\n")
		fmt.Fprintf(&b, "%-*s", w+2, t.RowLabel)
		for j := range t.Latency[0] {
			fmt.Fprintf(&b, "%22s", t.Cols[j])
		}
		b.WriteByte('\n')
		for i, r := range t.Rows {
			fmt.Fprintf(&b, "%-*s", w+2, r)
			for _, s := range t.Latency[i] {
				fmt.Fprintf(&b, "%22s", fmt.Sprintf("%.2f/%.2f/%.2f",
					s.P50*1e3, s.P90*1e3, s.P99*1e3))
			}
			b.WriteByte('\n')
		}
	}
	if t.Note != "" {
		fmt.Fprintf(&b, "note: %s\n", t.Note)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (means only).
func (t *Table) CSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s", t.RowLabel)
	for _, c := range t.Cols {
		fmt.Fprintf(&b, ",%s", c)
	}
	b.WriteByte('\n')
	for i, r := range t.Rows {
		fmt.Fprintf(&b, "%s", r)
		for j := range t.Cols {
			fmt.Fprintf(&b, ",%.3f", t.Cells[i][j].Mean)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// JSON renders the table as indented JSON, preserving the full cell
// grid (means and CVs) exactly.
func (t *Table) JSON() ([]byte, error) {
	return json.MarshalIndent(t, "", "  ")
}

// ParseTableJSON parses JSON produced by Table.JSON back into a Table.
func ParseTableJSON(data []byte) (*Table, error) {
	var t Table
	if err := json.Unmarshal(data, &t); err != nil {
		return nil, fmt.Errorf("exp: parsing table JSON: %w", err)
	}
	return &t, nil
}

// ParseTableCSV parses CSV produced by Table.CSV back into a Table. Only
// what CSV carries comes back: row/column labels and cell means at the
// emitter's three-decimal precision (CVs, title, and note are absent).
func ParseTableCSV(data string) (*Table, error) {
	lines := strings.Split(strings.TrimRight(data, "\n"), "\n")
	if len(lines) < 1 || lines[0] == "" {
		return nil, fmt.Errorf("exp: parsing table CSV: no header")
	}
	header := strings.Split(lines[0], ",")
	t := &Table{RowLabel: header[0], Cols: header[1:]}
	for ln, line := range lines[1:] {
		fields := strings.Split(line, ",")
		if len(fields) != len(header) {
			return nil, fmt.Errorf("exp: parsing table CSV: row %d has %d fields, want %d",
				ln+1, len(fields), len(header))
		}
		t.Rows = append(t.Rows, fields[0])
		cells := make([]Cell, len(t.Cols))
		for j, f := range fields[1:] {
			mean, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("exp: parsing table CSV: row %d col %d: %w", ln+1, j+1, err)
			}
			cells[j] = Cell{Mean: mean}
		}
		t.Cells = append(t.Cells, cells)
	}
	return t, nil
}

// MaxCV returns the largest coefficient of variation in the table (the
// paper quotes this per figure).
func (t *Table) MaxCV() float64 {
	var m float64
	for i := range t.Cells {
		for j := range t.Cells[i] {
			if t.Cells[i][j].CV > m {
				m = t.Cells[i][j].CV
			}
		}
	}
	return m
}

// Cell returns the cell at (row, col) by label; ok reports presence.
func (t *Table) Cell(row, col string) (Cell, bool) {
	for i, r := range t.Rows {
		if r != row {
			continue
		}
		for j, c := range t.Cols {
			if c == col {
				return t.Cells[i][j], true
			}
		}
	}
	return Cell{}, false
}
