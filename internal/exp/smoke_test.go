package exp

import "testing"

// smokeCfg is a small configuration exercising the full stack quickly.
func smokeCfg() Config {
	cfg := DefaultConfig()
	cfg.NCP, cfg.NIOP, cfg.NDisks = 4, 4, 4
	cfg.FileBytes = 1 * MiB
	cfg.RecordSize = 8 * 1024
	return cfg
}

func TestSmokeAllMethods(t *testing.T) {
	for _, method := range []Method{TraditionalCaching, DiskDirected, DiskDirectedSort, TwoPhase} {
		for _, pattern := range []string{"ra", "rn", "rb", "rc", "rbb", "wb", "wc"} {
			if method == TwoPhase && pattern == "ra" {
				continue // permuting to ALL is not meaningful for two-phase
			}
			cfg := smokeCfg()
			cfg.Method = method
			cfg.Pattern = pattern
			r, err := Run(cfg)
			if err != nil {
				t.Fatalf("%v/%s: %v", method, pattern, err)
			}
			if r.VerifyErrors > 0 {
				t.Errorf("%v/%s: %d verify errors", method, pattern, r.VerifyErrors)
			}
			if r.MBps <= 0 {
				t.Errorf("%v/%s: throughput %v", method, pattern, r.MBps)
			}
			t.Logf("%v/%-4s %7.2f MB/s elapsed=%v events=%d", method, pattern, r.MBps, r.Elapsed, r.Events)
		}
	}
}
