package exp

import (
	"testing"

	"ddio/internal/pfs"
)

// tinyOptions keeps figure machinery tests fast: one trial, small file.
func tinyOptions() Options {
	return Options{Trials: 1, FileBytes: 1 * MiB, Seed: 3, Verify: true}
}

func TestPatternTableShape(t *testing.T) {
	o := tinyOptions()
	tab, err := patternTable(o, "figT", "test", pfs.Contiguous, 8192,
		[]string{"rb", "rc"}, []Method{TraditionalCaching, DiskDirected})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 || len(tab.Cols) != 2 || len(tab.Cells) != 2 {
		t.Fatalf("table shape %dx%d", len(tab.Rows), len(tab.Cols))
	}
	for i := range tab.Cells {
		for j := range tab.Cells[i] {
			if tab.Cells[i][j].Mean <= 0 {
				t.Fatalf("cell (%d,%d) empty", i, j)
			}
		}
	}
}

// tinySweepSpec is a minimal two-value CP sweep for shape and
// determinism tests.
func tinySweepSpec() *SweepSpec {
	return &SweepSpec{
		Name: "figS", Title: "test", Axis: AxisCPs, Values: []int{1, 2},
		IOPs: 4, Disks: 4,
		Layout: "contiguous", Methods: []string{"ddio", "tc"},
		Patterns: []string{"ra", "rn", "rb", "rc"},
	}
}

func TestSweepTableShape(t *testing.T) {
	o := tinyOptions()
	tab, err := tinySweepSpec().Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows %d", len(tab.Rows))
	}
	// 2 methods x 4 patterns + max-bw column.
	if len(tab.Cols) != 9 {
		t.Fatalf("cols %d: %v", len(tab.Cols), tab.Cols)
	}
	if mb, ok := tab.Cell("1", "max-bw"); !ok || mb.Mean <= 0 {
		t.Fatalf("max-bw cell %v %v", mb, ok)
	}
	if tab.RowLabel != "CPs" || tab.ID != "figS" {
		t.Fatalf("row label %q, id %q", tab.RowLabel, tab.ID)
	}
}

// TestFigureShapes runs a miniature of the full evaluation and checks
// the paper's qualitative claims hold even at 1/10 the file size:
// disk-directed beats traditional caching on the random layout, the
// presort wins, and the contiguous layout beats the random layout.
func TestFigureShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("miniature evaluation still takes seconds")
	}
	o := tinyOptions()
	run := func(method Method, pattern string, layout pfs.LayoutKind, rec int) float64 {
		cfg := o.base()
		cfg.Method = method
		cfg.Pattern = pattern
		cfg.Layout = layout
		cfg.RecordSize = rec
		tr, err := Trials(cfg, 1)
		if err != nil {
			t.Fatal(err)
		}
		return tr.Mean
	}
	tcRandom := run(TraditionalCaching, "rc", pfs.RandomBlocks, 8)
	ddSorted := run(DiskDirectedSort, "rc", pfs.RandomBlocks, 8)
	ddPlain := run(DiskDirected, "rc", pfs.RandomBlocks, 8)
	ddContig := run(DiskDirected, "rc", pfs.Contiguous, 8192)
	if ddSorted < 2*tcRandom {
		t.Errorf("DDIO+sort (%.2f) should beat TC (%.2f) by far on random 8-byte cyclic", ddSorted, tcRandom)
	}
	if ddSorted <= ddPlain {
		t.Errorf("presort (%.2f) should beat unsorted (%.2f) on random layout", ddSorted, ddPlain)
	}
	if ddContig < 2*ddSorted {
		t.Errorf("contiguous (%.2f) should dwarf random (%.2f)", ddContig, ddSorted)
	}
}
