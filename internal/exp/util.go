package exp

import "ddio/internal/stats"

func mean(xs []float64) float64 { return stats.Mean(xs) }
func cv(xs []float64) float64   { return stats.CV(xs) }
