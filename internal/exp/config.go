// Package exp is the experiment harness: it assembles the simulated
// machine from a Config (Table 1 defaults), runs one whole-file transfer
// under the selected file system, verifies the data end to end, and
// reports throughput plus substrate metrics. The figure generators that
// regenerate the paper's evaluation live in figures.go; the declarative
// scale-sweep layer (SweepSpec, of which Figures 5–8 are preset
// instances) lives in sweep.go and presets.go.
package exp

import (
	"fmt"
	"time"

	"ddio/internal/core"
	"ddio/internal/disk"
	"ddio/internal/fault"
	"ddio/internal/netsim"
	"ddio/internal/pfs"
	"ddio/internal/tcfs"
	"ddio/internal/trace"
	"ddio/internal/twophase"
	"ddio/internal/workload"
)

// MiB matches the paper's "Mbytes": the quoted disk peak of 2.34
// Mbytes/s is the HP 97560's 2.46e6 B/s expressed in 2^20-byte units.
const MiB = 1 << 20

// Method selects the file-system implementation under test.
type Method int

// Methods.
const (
	// TraditionalCaching is the baseline of Figure 1a.
	TraditionalCaching Method = iota
	// DiskDirected is disk-directed I/O without the block-list presort.
	DiskDirected
	// DiskDirectedSort is disk-directed I/O with the presort
	// (Figure 1c as written).
	DiskDirectedSort
	// TwoPhase is del Rosario/Bordawekar/Choudhary two-phase I/O,
	// which the paper discusses (§7.1) but did not simulate.
	TwoPhase
)

// String returns the method's display name as figures label it.
func (m Method) String() string {
	switch m {
	case TraditionalCaching:
		return "TC"
	case DiskDirected:
		return "DDIO"
	case DiskDirectedSort:
		return "DDIO+sort"
	case TwoPhase:
		return "2phase"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// ParseMethod converts a method name ("tc", "ddio", "ddio-sort",
// "2phase") to a Method.
func ParseMethod(s string) (Method, error) {
	switch s {
	case "tc", "TC", "caching":
		return TraditionalCaching, nil
	case "ddio", "DDIO":
		return DiskDirected, nil
	case "ddio-sort", "DDIO+sort", "sort":
		return DiskDirectedSort, nil
	case "2phase", "twophase":
		return TwoPhase, nil
	}
	return 0, fmt.Errorf("exp: unknown method %q", s)
}

// Config describes one experiment: machine shape, file, pattern, layout,
// and method, with all substrate parameters exposed for ablations.
type Config struct {
	Method  Method // file system under test
	Pattern string // paper shorthand, e.g. "ra", "rcb", "wb"

	NCP    int // compute processors
	NIOP   int // I/O processors, one SCSI bus each
	NDisks int // disks, distributed round-robin over the IOPs

	FileBytes  int64          // whole-file transfer size
	BlockSize  int            // file-system block size
	RecordSize int            // application record size
	Layout     pfs.LayoutKind // physical block placement

	Seed   int64 // root seed for layout and network jitter streams
	Verify bool  // verify every byte end to end after the run

	// Disk is the drive model. The Spec is shared by every disk of the
	// run — and, when a Config is replicated across trials, by
	// concurrent runs on the Runner's pool — so it must not be mutated
	// once experiments start (mutate a copy, as cmd/ddiosim does).
	Disk         *disk.Spec
	DiskSched    disk.Scheduler // nil = FCFS
	Net          netsim.Config  // torus interconnect parameters
	BusBandwidth float64        // SCSI bus bandwidth, bytes/s
	BusOverhead  time.Duration  // per-transfer bus arbitration cost
	BarrierCost  time.Duration  // collective-operation entry cost

	TC tcfs.Params     // traditional-caching tuning
	DD core.Params     // disk-directed I/O tuning
	TP twophase.Params // two-phase I/O tuning

	// Trace, when non-nil, receives the run's event trace (disk service
	// intervals, queue depths, request lifecycles, cache occupancy,
	// interconnect messages — see internal/trace). Tracing is passive:
	// the run fires the identical events either way. A recorder belongs
	// to exactly one run — Runner.Trials strips it from replicated
	// configs (they would race on the pool), and configs handed to
	// RunAll directly must not share one. TracedRun wraps the
	// single-run case.
	Trace *trace.Recorder

	// Faults, when non-nil and enabled, injects deterministic faults
	// (disk stragglers, transient disk errors, interconnect loss and
	// latency spikes — see internal/fault) and arms the servers'
	// bounded-retry recovery with the plan's policy. nil injects nothing
	// and leaves the run byte-identical to a build without fault
	// injection. The plan is read-only during runs and may be shared
	// across trials and Runner workers.
	Faults *fault.Plan

	// Workload, when non-nil and enabled, replaces the classic
	// whole-file collective transfer with the declared request streams
	// (synthetic phases, trace replay — see internal/workload), driven
	// through the selected method. nil (or a phase-less spec) leaves
	// the run byte-identical to a build without the workload layer.
	// The spec is read-only during runs and may be shared across trials
	// and Runner workers.
	Workload *workload.Spec
}

// DefaultConfig returns the paper's Table 1 configuration: 16 CPs, 16
// IOPs with one SCSI bus and one HP 97560 each, a 10 MB file in 8 KB
// blocks, 8 KB records, the ra pattern, traditional caching, and the
// random-blocks layout.
func DefaultConfig() Config {
	return Config{
		Method:       TraditionalCaching,
		Pattern:      "ra",
		NCP:          16,
		NIOP:         16,
		NDisks:       16,
		FileBytes:    10 * MiB,
		BlockSize:    8 * 1024,
		RecordSize:   8 * 1024,
		Layout:       pfs.RandomBlocks,
		Seed:         1,
		Verify:       true,
		Disk:         disk.HP97560(),
		Net:          netsim.DefaultConfig(),
		BusBandwidth: 10e6,
		BusOverhead:  100 * time.Microsecond,
		BarrierCost:  50 * time.Microsecond,
		TC:           tcfs.DefaultParams(),
		DD:           core.DefaultParams(),
		TP:           twophase.DefaultParams(),
	}
}

// ConfigError is the typed validation error Config.Validate returns:
// which field (or field combination) is impossible, and why. Err, when
// non-nil, carries the underlying layer's error (fault plans, workload
// specs) for errors.Is/As chains.
type ConfigError struct {
	Field  string // the offending field, e.g. "record_size"
	Reason string
	Err    error // underlying cause, when the failure came from a sub-plan
}

// Error implements error.
func (e *ConfigError) Error() string {
	return fmt.Sprintf("exp: config %s: %s", e.Field, e.Reason)
}

// Unwrap exposes the underlying cause for errors.Is/As.
func (e *ConfigError) Unwrap() error { return e.Err }

func cfgErr(field, format string, args ...any) *ConfigError {
	return &ConfigError{Field: field, Reason: fmt.Sprintf(format, args...)}
}

// Validate checks internal consistency: every impossible combination —
// sizes that cannot tile the file, records larger than the file, fault
// or workload plans that do not fit the machine — is reported as a
// typed *ConfigError before any simulation starts, never by a
// mid-run panic.
func (c *Config) Validate() error {
	switch {
	case c.NCP < 1 || c.NIOP < 1 || c.NDisks < 1:
		return cfgErr("machine", "need at least one CP, IOP and disk (have %d/%d/%d)", c.NCP, c.NIOP, c.NDisks)
	case c.FileBytes <= 0:
		return cfgErr("file_bytes", "file size %d must be positive", c.FileBytes)
	case c.BlockSize <= 0:
		return cfgErr("block_size", "block size %d must be positive", c.BlockSize)
	case c.RecordSize <= 0:
		return cfgErr("record_size", "record size %d must be positive", c.RecordSize)
	case int64(c.BlockSize) > c.FileBytes:
		return cfgErr("block_size", "block size %d exceeds file size %d", c.BlockSize, c.FileBytes)
	case int64(c.RecordSize) > c.FileBytes:
		return cfgErr("record_size", "record size %d exceeds file size %d", c.RecordSize, c.FileBytes)
	case c.FileBytes%int64(c.BlockSize) != 0:
		return cfgErr("file_bytes", "file size %d not a multiple of block size %d", c.FileBytes, c.BlockSize)
	case c.FileBytes%int64(c.RecordSize) != 0:
		return cfgErr("file_bytes", "file size %d not a multiple of record size %d", c.FileBytes, c.RecordSize)
	case c.Disk == nil:
		return cfgErr("disk", "no disk spec")
	case c.BlockSize%c.Disk.SectorSize != 0:
		return cfgErr("block_size", "block size %d not a multiple of sector size %d", c.BlockSize, c.Disk.SectorSize)
	}
	if c.Faults != nil {
		if err := c.Faults.Validate(c.NDisks); err != nil {
			return &ConfigError{Field: "faults", Reason: err.Error(), Err: err}
		}
	}
	if c.Workload.Enabled() {
		shape := workload.Shape{
			NCP:        c.NCP,
			FileBytes:  c.FileBytes,
			BlockSize:  c.BlockSize,
			RecordSize: c.RecordSize,
		}
		if err := c.Workload.Validate(&shape); err != nil {
			return &ConfigError{Field: "workload", Reason: err.Error(), Err: err}
		}
	}
	return nil
}

// NumBlocks returns the file length in blocks.
func (c *Config) NumBlocks() int { return int(c.FileBytes / int64(c.BlockSize)) }

// MaxBandwidthMBps returns the hardware ceiling for this configuration
// in MiB/s: the disks' aggregate sustained rate or the busses' aggregate
// bandwidth, whichever binds (the "Max bandwidth" line of Figures 5–8).
func (c *Config) MaxBandwidthMBps() float64 {
	diskBW := float64(c.NDisks) * c.Disk.SustainedRate()
	busBW := float64(c.NIOP) * c.BusBandwidth
	if busBW < diskBW {
		return busBW / MiB
	}
	return diskBW / MiB
}
