package exp

import (
	"fmt"
	"strings"
)

// LongCSV renders the sweep result in long ("tidy") format: one row per
// measured cell, one column per variable, carrying the full per-cell
// trial statistics (the wide Table.CSV keeps only means, one column per
// method×pattern). This is the shape external plotting tools
// (dataframes, gnuplot, vega) and internal/plot's sweep figures both
// consume: filter by method/pattern, facet by axis value, no header
// parsing. The trailing max_bw_mbps column repeats each row's hardware
// ceiling so bandwidth-bound cells are identifiable without a join.
//
// The column set adapts to what the sweep measured, keeping the classic
// single-axis output byte-identical (pinned by TestLongCSV): two-axis
// surfaces insert axis2,value2 after value, and workload sweeps append
// p50_ms,p90_ms,p99_ms request-latency columns after max_bw_mbps.
func (r *SweepResult) LongCSV() string {
	var b strings.Builder
	s := r.Spec
	b.WriteString("sweep,figure,axis,value")
	if s.Axis2 != "" {
		b.WriteString(",axis2,value2")
	}
	b.WriteString(",method,pattern,n,mean_mbps,stddev,cv,min_mbps,max_mbps,max_bw_mbps")
	latency := r.Table != nil && r.Table.Latency != nil
	if latency {
		b.WriteString(",p50_ms,p90_ms,p99_ms")
	}
	b.WriteByte('\n')
	nPat := len(s.Patterns)
	for vi, pt := range s.rowPoints() {
		ceiling := 0.0
		if cells := r.Table.Cells[vi]; len(cells) > 0 {
			ceiling = cells[len(cells)-1].Mean // trailing max-bw column
		}
		for ci, sum := range r.CellStats[vi] {
			method := s.Methods[ci/nPat]
			pattern := s.Patterns[ci%nPat]
			fmt.Fprintf(&b, "%s,%s,%s,%d", s.Name, r.Table.ID, s.Axis, pt.v)
			if s.Axis2 != "" {
				fmt.Fprintf(&b, ",%s,%d", s.Axis2, pt.v2)
			}
			fmt.Fprintf(&b, ",%s,%s,%d,%.3f,%.4f,%.4f,%.3f,%.3f,%.3f",
				method, pattern,
				sum.N, sum.Mean, sum.Stddev, sum.CV, sum.Min, sum.Max, ceiling)
			if latency {
				lat := r.Table.Latency[vi][ci]
				fmt.Fprintf(&b, ",%.3f,%.3f,%.3f", lat.P50*1e3, lat.P90*1e3, lat.P99*1e3)
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}
