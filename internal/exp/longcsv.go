package exp

import (
	"fmt"
	"strings"
)

// LongCSV renders the sweep result in long ("tidy") format: one row per
// measured cell, one column per variable, carrying the full per-cell
// trial statistics (the wide Table.CSV keeps only means, one column per
// method×pattern). This is the shape external plotting tools
// (dataframes, gnuplot, vega) and internal/plot's sweep figures both
// consume: filter by method/pattern, facet by axis value, no header
// parsing. The trailing max_bw_mbps column repeats each row's hardware
// ceiling so bandwidth-bound cells are identifiable without a join.
func (r *SweepResult) LongCSV() string {
	var b strings.Builder
	b.WriteString("sweep,figure,axis,value,method,pattern,n,mean_mbps,stddev,cv,min_mbps,max_mbps,max_bw_mbps\n")
	s := r.Spec
	nPat := len(s.Patterns)
	for vi, v := range s.Values {
		ceiling := 0.0
		if cells := r.Table.Cells[vi]; len(cells) > 0 {
			ceiling = cells[len(cells)-1].Mean // trailing max-bw column
		}
		for ci, sum := range r.CellStats[vi] {
			method := s.Methods[ci/nPat]
			pattern := s.Patterns[ci%nPat]
			fmt.Fprintf(&b, "%s,%s,%s,%d,%s,%s,%d,%.3f,%.4f,%.4f,%.3f,%.3f,%.3f\n",
				s.Name, r.Table.ID, s.Axis, v, method, pattern,
				sum.N, sum.Mean, sum.Stddev, sum.CV, sum.Min, sum.Max, ceiling)
		}
	}
	return b.String()
}
