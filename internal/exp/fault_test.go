package exp

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"time"

	"ddio/internal/fault"
	"ddio/internal/pfs"
)

// benchStyle returns the BenchmarkSimulatorEventRate configuration —
// the message-heavy run whose event count CI pins.
func benchStyle() Config {
	cfg := DefaultConfig()
	cfg.FileBytes = MiB / 2
	cfg.Method = TraditionalCaching
	cfg.Pattern = "rc"
	cfg.RecordSize = 8
	cfg.Verify = false
	return cfg
}

// smallFaulted returns a small faulted configuration with every fault
// model armed and a retry budget generous enough that nothing is lost.
func smallFaulted(m Method, pattern string) Config {
	cfg := DefaultConfig()
	cfg.Method = m
	cfg.Pattern = pattern
	cfg.NCP, cfg.NIOP, cfg.NDisks = 4, 4, 4
	cfg.FileBytes = MiB
	cfg.Layout = pfs.RandomBlocks
	cfg.Seed = 5
	cfg.Faults = &fault.Plan{
		Stragglers:        1,
		StragglerSlowdown: 2,
		DiskErrorRate:     0.05,
		MsgLossRate:       0.02,
		SpikeRate:         0.01,
		SpikeLatency:      50 * time.Microsecond,
		RetryLimit:        6,
	}
	return cfg
}

// TestNilAndZeroFaultPlanByteIdentical: a nil Faults pointer and an
// all-zero Plan must both leave the run bit-identical to a build
// without fault injection — same event count (the CI-pinned 888,040 of
// BenchmarkSimulatorEventRate), same virtual end time, and a byte-
// identical event trace.
func TestNilAndZeroFaultPlanByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full benchmark configuration")
	}
	base := benchStyle()
	run := func(plan *fault.Plan) (*Result, string) {
		cfg := base
		cfg.Faults = plan
		res, rec, err := TracedRun(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		if err := rec.WriteJSONL(&b); err != nil {
			t.Fatal(err)
		}
		return res, b.String()
	}
	nilRes, nilTrace := run(nil)
	zeroRes, zeroTrace := run(&fault.Plan{})
	if nilRes.Events != 888040 {
		t.Errorf("nil-plan run fired %d events, want the pinned 888040", nilRes.Events)
	}
	if nilRes.Events != zeroRes.Events || nilRes.Elapsed != zeroRes.Elapsed || nilRes.MBps != zeroRes.MBps {
		t.Errorf("zero plan perturbed the run: events %d/%d elapsed %v/%v",
			nilRes.Events, zeroRes.Events, nilRes.Elapsed, zeroRes.Elapsed)
	}
	if nilTrace != zeroTrace {
		t.Error("zero plan produced a different event trace than a nil plan")
	}
	if nilRes.Faults != (FaultTotals{}) || zeroRes.Faults != (FaultTotals{}) {
		t.Errorf("fault totals nonzero for fault-free runs: %+v / %+v", nilRes.Faults, zeroRes.Faults)
	}
}

// TestFaultRecoveryAccounting runs each file system under all fault
// models and checks the no-silent-loss bookkeeping: every injected disk
// error is either recovered by a retry or counted as exhausted
// (DiskErrors == Retries + Exhausted), every dropped message is
// retransmitted (Resends == DroppedMsgs), and with a generous retry
// budget nothing is lost and every byte verifies.
func TestFaultRecoveryAccounting(t *testing.T) {
	for _, m := range []Method{TraditionalCaching, DiskDirectedSort, TwoPhase} {
		for _, pattern := range []string{"rb", "wb"} {
			res, err := Run(smallFaulted(m, pattern))
			if err != nil {
				t.Fatalf("%v/%s: %v", m, pattern, err)
			}
			f := res.Faults
			if f.DiskErrors == 0 {
				t.Errorf("%v/%s: no disk errors injected at 5%% over %d blocks", m, pattern, res.Config.NumBlocks())
			}
			if f.DiskErrors != f.Retries+f.Exhausted {
				t.Errorf("%v/%s: DiskErrors %d != Retries %d + Exhausted %d", m, pattern, f.DiskErrors, f.Retries, f.Exhausted)
			}
			if f.Exhausted != 0 {
				t.Errorf("%v/%s: %d requests lost despite retry budget 6", m, pattern, f.Exhausted)
			}
			if f.Recovered == 0 || f.Recovered > f.Retries {
				t.Errorf("%v/%s: Recovered %d out of range (Retries %d)", m, pattern, f.Recovered, f.Retries)
			}
			if f.Resends != f.DroppedMsgs {
				t.Errorf("%v/%s: Resends %d != DroppedMsgs %d", m, pattern, f.Resends, f.DroppedMsgs)
			}
			if f.DroppedMsgs == 0 {
				t.Errorf("%v/%s: no messages dropped at 2%%", m, pattern)
			}
			if res.VerifyErrors != 0 {
				t.Errorf("%v/%s: %d verification errors after full recovery", m, pattern, res.VerifyErrors)
			}
		}
	}
}

// TestFaultedRunDeterministic: identical seed + identical plan must
// reproduce the identical faulted run, trace and all.
func TestFaultedRunDeterministic(t *testing.T) {
	run := func() (*Result, string) {
		res, rec, err := TracedRun(smallFaulted(DiskDirectedSort, "rb"))
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		if err := rec.WriteJSONL(&b); err != nil {
			t.Fatal(err)
		}
		return res, b.String()
	}
	r1, t1 := run()
	r2, t2 := run()
	if r1.Faults != r2.Faults {
		t.Errorf("fault totals differ across identical runs: %+v / %+v", r1.Faults, r2.Faults)
	}
	if r1.Elapsed != r2.Elapsed || r1.Events != r2.Events {
		t.Errorf("timing differs: %v/%d vs %v/%d", r1.Elapsed, r1.Events, r2.Elapsed, r2.Events)
	}
	if t1 != t2 {
		t.Error("identical faulted runs produced different traces")
	}
	if !strings.Contains(t1, `"fault"`) || !strings.Contains(t1, `"retry"`) {
		t.Error("faulted trace carries no fault/retry events")
	}
}

// TestDegradationSweepDeterministicAcrossWorkers: the CI smoke sweep
// must produce byte-identical JSON for any worker count.
func TestDegradationSweepDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) []byte {
		s, ok := LookupPreset("degrade-smoke")
		if !ok {
			t.Fatal("degrade-smoke preset missing")
		}
		res, err := s.RunFull(Options{Trials: 1, FileBytes: MiB, Seed: 42, Verify: true, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if res.CellTime == nil {
			t.Fatal("degradation sweep carries no completion-time statistics")
		}
		data, err := res.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a, b := run(4), run(1)
	if string(a) != string(b) {
		t.Error("degrade-smoke JSON differs between 4 workers and sequential")
	}
}

// TestFaultExhaustionIsTypedFailure: a run whose retry budget cannot
// absorb the error rate must surface a FaultLossError from the runner —
// typed, counting the losses — rather than silently degrading.
func TestFaultExhaustionIsTypedFailure(t *testing.T) {
	cfg := smallFaulted(TraditionalCaching, "rb")
	cfg.Faults = &fault.Plan{DiskErrorRate: 0.9, RetryLimit: 1}
	_, err := NewRunner(1, nil).RunAll([]Config{cfg}, nil)
	var loss *FaultLossError
	if !errors.As(err, &loss) {
		t.Fatalf("got %v, want a *FaultLossError", err)
	}
	if loss.Lost == 0 {
		t.Error("FaultLossError reports zero lost requests")
	}
	// The direct result must carry the same count, so library users who
	// bypass the runner still see the loss.
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults.Exhausted != loss.Lost {
		t.Errorf("Result.Faults.Exhausted %d != runner's Lost %d", res.Faults.Exhausted, loss.Lost)
	}
	if res.Faults.DiskErrors != res.Faults.Retries+res.Faults.Exhausted {
		t.Errorf("counting invariant broken under exhaustion: %+v", res.Faults)
	}
}

// TestRunnerIsolatesPanickedCell: one poisoned cell must not take down
// the sweep — its panic is recovered into a CellPanicError carrying the
// cell's config and stack, while every other cell's result lands.
func TestRunnerIsolatesPanickedCell(t *testing.T) {
	const poisoned = int64(3)
	orig := runExperiment
	runExperiment = func(cfg Config) (*Result, error) {
		if cfg.Seed == poisoned {
			panic("poisoned cell")
		}
		return &Result{Config: cfg, MBps: 1}, nil
	}
	defer func() { runExperiment = orig }()

	cfgs := make([]Config, 5)
	for i := range cfgs {
		cfgs[i] = DefaultConfig()
		cfgs[i].Seed = int64(i)
	}
	for _, workers := range []int{1, 4} {
		done := map[int64]bool{}
		results, err := NewRunner(workers, nil).RunAll(cfgs, func(i int, res *Result) {
			done[res.Config.Seed] = true
		})
		if results != nil {
			t.Errorf("workers=%d: got results despite a panicked cell", workers)
		}
		var cp *CellPanicError
		if !errors.As(err, &cp) {
			t.Fatalf("workers=%d: got %v, want a *CellPanicError", workers, err)
		}
		if cp.Config.Seed != poisoned || cp.Value != "poisoned cell" || !strings.Contains(cp.Stack, "panic") {
			t.Errorf("workers=%d: panic error lacks cell identity: seed %d value %v", workers, cp.Config.Seed, cp.Value)
		}
		for i := range cfgs {
			if s := int64(i); s != poisoned && !done[s] {
				t.Errorf("workers=%d: healthy cell seed %d never completed", workers, s)
			}
		}
	}
}

// TestValidateFaultFields covers the fault-field error paths of
// Config.Validate and SweepSpec.Validate.
func TestValidateFaultFields(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Faults = &fault.Plan{DiskErrorRate: -0.1}
	if err := cfg.Validate(); err == nil {
		t.Error("negative disk_error_rate accepted")
	}
	cfg.Faults = &fault.Plan{Stragglers: cfg.NDisks + 1, StragglerSlowdown: 2}
	if err := cfg.Validate(); err == nil {
		t.Error("straggler count above the disk count accepted")
	}
	cfg.Faults = &fault.Plan{DiskErrorRate: 0.1}
	if err := cfg.Validate(); err == nil {
		t.Error("disk errors without a retry budget accepted")
	}
	cfg.Faults = &fault.Plan{DiskErrorRate: 0.1, RetryLimit: 3}
	if err := cfg.Validate(); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}

	spec := func() *SweepSpec {
		return &SweepSpec{
			Name: "t", Title: "t", Axis: AxisFaultPM, Values: []int{0, 10},
			Layout: "contiguous", Methods: []string{"ddio"}, Patterns: []string{"ra"},
			Faults: &fault.Plan{RetryLimit: 3},
		}
	}
	if err := spec().Validate(); err != nil {
		t.Errorf("valid degradation spec rejected: %v", err)
	}
	s := spec()
	s.Faults = nil
	if err := s.Validate(); err == nil {
		t.Error("faultpm axis without a retry budget accepted")
	}
	s = spec()
	s.Values = []int{-1, 10}
	if err := s.Validate(); err == nil {
		t.Error("negative fault-axis value accepted")
	}
	s = spec()
	s.Axis = AxisStragglers
	if err := s.Validate(); err == nil {
		t.Error("stragglers axis without a slowdown factor accepted")
	}
	s = spec()
	s.Axis = AxisCPs
	s.Values = []int{0, 1}
	if err := s.Validate(); err == nil {
		t.Error("zero CPs accepted on a machine-shape axis")
	}
}

// TestFaultPlanSweepSpecRoundTrip is a property test: any valid plan
// embedded in a sweep spec must survive the JSON encode/parse cycle
// exactly — degradation sweeps re-run from spec files must mean the
// same faults.
func TestFaultPlanSweepSpecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	durations := []time.Duration{0, time.Microsecond, 50 * time.Microsecond, time.Millisecond, 7 * time.Millisecond}
	for i := 0; i < 100; i++ {
		p := &fault.Plan{
			DiskErrorRate:    float64(rng.Intn(90)) / 100,
			DiskErrorLatency: durations[rng.Intn(len(durations))],
			MsgLossRate:      float64(rng.Intn(90)) / 100,
			ResendTimeout:    durations[rng.Intn(len(durations))],
			SpikeRate:        float64(rng.Intn(90)) / 100,
			RetryLimit:       1 + rng.Intn(8),
			RetryBackoff:     durations[rng.Intn(len(durations))],
		}
		if p.SpikeRate > 0 {
			p.SpikeLatency = durations[1+rng.Intn(len(durations)-1)]
		}
		if rng.Intn(2) == 1 {
			p.Stragglers = 1 + rng.Intn(4)
			p.StragglerSlowdown = 1.5 + float64(rng.Intn(5))
			if rng.Intn(2) == 1 {
				p.SlowPeriod = 10 * time.Millisecond
				p.SlowWindow = durations[rng.Intn(len(durations))]
			}
		}
		spec := &SweepSpec{
			Name: fmt.Sprintf("rt-%d", i), Title: "round trip", Axis: AxisFaultPM,
			Values: []int{0, 10}, Layout: "contiguous",
			Methods: []string{"ddio"}, Patterns: []string{"ra"},
			Faults: p,
		}
		if err := spec.Validate(); err != nil {
			t.Fatalf("case %d: generated an invalid plan: %v (%+v)", i, err, p)
		}
		data, err := json.Marshal(spec)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		back, err := ParseSweepSpec(data)
		if err != nil {
			t.Fatalf("case %d: re-parse failed: %v\n%s", i, err, data)
		}
		if !reflect.DeepEqual(spec, back) {
			t.Fatalf("case %d: spec did not round-trip:\nin:  %+v\nout: %+v", i, spec, back)
		}
	}
}
