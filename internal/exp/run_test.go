package exp

import (
	"strings"
	"testing"

	"ddio/internal/pfs"
)

func TestValidateRejectsBadConfigs(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*Config)
	}{
		{"no cps", func(c *Config) { c.NCP = 0 }},
		{"no iops", func(c *Config) { c.NIOP = 0 }},
		{"no disks", func(c *Config) { c.NDisks = 0 }},
		{"zero file", func(c *Config) { c.FileBytes = 0 }},
		{"file not block multiple", func(c *Config) { c.FileBytes = 8192*3 + 1 }},
		{"file not record multiple", func(c *Config) { c.RecordSize = 8192 * 3 }},
		{"no disk spec", func(c *Config) { c.Disk = nil }},
		{"block not sector multiple", func(c *Config) { c.BlockSize = 1000 }},
	}
	for _, m := range mutations {
		cfg := DefaultConfig()
		m.mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: accepted", m.name)
		}
	}
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestRunRejectsBadPattern(t *testing.T) {
	cfg := smokeCfg()
	cfg.Pattern = "zz"
	if _, err := Run(cfg); err == nil {
		t.Fatal("bad pattern accepted")
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	cfg := smokeCfg()
	cfg.Method = DiskDirectedSort
	cfg.Pattern = "rb"
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Elapsed != b.Elapsed || a.Events != b.Events {
		t.Fatalf("same seed, different runs: %v/%d vs %v/%d", a.Elapsed, a.Events, b.Elapsed, b.Events)
	}
}

func TestSeedChangesRandomLayoutTiming(t *testing.T) {
	cfg := smokeCfg()
	cfg.Method = DiskDirected // no presort: layout order matters most
	cfg.Pattern = "rb"
	cfg.Layout = pfs.RandomBlocks
	cfg.Seed = 1
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 2
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Elapsed == b.Elapsed {
		t.Fatal("different seeds produced identical elapsed time on random layout")
	}
}

func TestRANormalization(t *testing.T) {
	cfg := smokeCfg()
	cfg.Method = DiskDirected
	cfg.Pattern = "ra"
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.MovedBytes != cfg.FileBytes*int64(cfg.NCP) {
		t.Fatalf("ra moved %d bytes, want %d", r.MovedBytes, cfg.FileBytes*int64(cfg.NCP))
	}
	// Reported MBps is normalized (file/elapsed), aggregate is NCP times
	// larger.
	if r.AggMBps < 3.9*r.MBps || r.AggMBps > 4.1*r.MBps {
		t.Fatalf("agg %.2f vs normalized %.2f with 4 CPs", r.AggMBps, r.MBps)
	}
}

func TestMetricsArePopulated(t *testing.T) {
	cfg := smokeCfg()
	cfg.Method = TraditionalCaching
	cfg.Pattern = "rb"
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Disk.Reads == 0 || r.NetMsgs == 0 || r.IOPBusy == 0 || r.TC.Requests == 0 {
		t.Fatalf("metrics not collected: %+v", r)
	}
	cfg.Method = DiskDirectedSort
	r2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r2.DD.Blocks == 0 || r2.DD.Memputs == 0 {
		t.Fatalf("DD metrics not collected: %+v", r2.DD)
	}
}

func TestTrialsAggregates(t *testing.T) {
	cfg := smokeCfg()
	cfg.Method = DiskDirectedSort
	cfg.Pattern = "rb"
	tr, err := Trials(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Results) != 3 || len(tr.MBps) != 3 {
		t.Fatalf("trial count %d", len(tr.Results))
	}
	if tr.Mean <= 0 {
		t.Fatalf("mean %v", tr.Mean)
	}
	if tr.CV < 0 || tr.CV > 0.5 {
		t.Fatalf("cv %v out of sane range", tr.CV)
	}
	// Seeds must differ across trials.
	if tr.Results[0].Config.Seed == tr.Results[1].Config.Seed {
		t.Fatal("trials reused the seed")
	}
}

func TestParseMethod(t *testing.T) {
	for _, c := range []struct {
		in   string
		want Method
	}{{"tc", TraditionalCaching}, {"ddio", DiskDirected}, {"ddio-sort", DiskDirectedSort}, {"2phase", TwoPhase}} {
		got, err := ParseMethod(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseMethod(%q) = %v, %v", c.in, got, err)
		}
	}
	if _, err := ParseMethod("zz"); err == nil {
		t.Error("bogus method accepted")
	}
	if TraditionalCaching.String() != "TC" || DiskDirectedSort.String() != "DDIO+sort" {
		t.Error("method names")
	}
	if !strings.Contains(Method(99).String(), "99") {
		t.Error("unknown method string")
	}
}

func TestMaxBandwidthCeilings(t *testing.T) {
	cfg := DefaultConfig()
	// 16 disks x ~2.2 vs 16 busses x ~9.5: disks bind.
	diskBound := cfg.MaxBandwidthMBps()
	if diskBound < 30 || diskBound > 40 {
		t.Fatalf("16-disk ceiling %.1f", diskBound)
	}
	cfg.NIOP = 1
	cfg.NDisks = 16
	busBound := cfg.MaxBandwidthMBps()
	if busBound > 10 {
		t.Fatalf("single-bus ceiling %.1f, want <= 10 MB/s", busBound)
	}
}

func TestNumBlocks(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.NumBlocks() != 1280 {
		t.Fatalf("10 MB / 8 KB = %d blocks", cfg.NumBlocks())
	}
}

func TestTwoPhaseThroughRunner(t *testing.T) {
	cfg := smokeCfg()
	cfg.Method = TwoPhase
	cfg.Pattern = "rc"
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.VerifyErrors != 0 {
		t.Fatalf("verify errors %d", r.VerifyErrors)
	}
}

func TestTrialsFailOnVerifyError(t *testing.T) {
	// Sanity: trials propagate run errors (bad pattern here).
	cfg := smokeCfg()
	cfg.Pattern = "qq"
	if _, err := Trials(cfg, 2); err == nil {
		t.Fatal("bad pattern not propagated")
	}
}
