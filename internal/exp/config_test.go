package exp

import (
	"errors"
	"testing"

	"ddio/internal/fault"
	"ddio/internal/workload"
)

// TestValidateTypedErrors pins that every impossible Config is rejected
// with a typed *ConfigError naming the offending field before any
// simulation starts — record sizes beyond the file, shapes that cannot
// tile, missing disk specs — instead of a silent acceptance or a
// mid-run panic.
func TestValidateTypedErrors(t *testing.T) {
	cases := []struct {
		name  string
		edit  func(*Config)
		field string
	}{
		{"no CPs", func(c *Config) { c.NCP = 0 }, "machine"},
		{"negative IOPs", func(c *Config) { c.NIOP = -1 }, "machine"},
		{"no disks", func(c *Config) { c.NDisks = 0 }, "machine"},
		{"zero file", func(c *Config) { c.FileBytes = 0 }, "file_bytes"},
		{"zero block", func(c *Config) { c.BlockSize = 0 }, "block_size"},
		{"zero record", func(c *Config) { c.RecordSize = 0 }, "record_size"},
		{"block beyond file", func(c *Config) { c.FileBytes = 4096; c.BlockSize = 8192; c.RecordSize = 8 }, "block_size"},
		{"record beyond file", func(c *Config) { c.RecordSize = int(c.FileBytes) * 2 }, "record_size"},
		{"file not block multiple", func(c *Config) { c.FileBytes += 3 }, "file_bytes"},
		{"file not record multiple", func(c *Config) { c.RecordSize = 8192 + 512 }, "file_bytes"},
		{"no disk spec", func(c *Config) { c.Disk = nil }, "disk"},
		{"block not sector multiple", func(c *Config) {
			c.BlockSize = 8192 + 1
			c.RecordSize = c.BlockSize
			c.FileBytes = int64(c.BlockSize) * 128
		}, "block_size"},
		{"bad fault plan", func(c *Config) { c.Faults = &fault.Plan{DiskErrorRate: 2} }, "faults"},
		{"bad workload", func(c *Config) {
			c.Workload = &workload.Spec{Phases: []workload.Phase{{Pattern: "bogus"}}}
		}, "workload"},
		{"workload beyond file", func(c *Config) {
			c.Workload = &workload.Spec{Phases: []workload.Phase{{
				Pattern: workload.PatternUniform, Requests: 1, RecordSize: int(c.FileBytes) * 2,
			}}}
		}, "workload"},
	}
	for _, tc := range cases {
		cfg := DefaultConfig()
		tc.edit(&cfg)
		err := cfg.Validate()
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		var cerr *ConfigError
		if !errors.As(err, &cerr) {
			t.Errorf("%s: error %T is not *ConfigError: %v", tc.name, err, err)
			continue
		}
		if cerr.Field != tc.field {
			t.Errorf("%s: error field %q, want %q (%v)", tc.name, cerr.Field, tc.field, err)
		}
	}
	valid := DefaultConfig()
	if err := valid.Validate(); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
}

// TestValidateUnwraps pins that sub-plan failures keep their underlying
// typed error reachable through errors.As — callers can distinguish a
// workload DSL error from a shape error without string matching.
func TestValidateUnwraps(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Workload = &workload.Spec{Phases: []workload.Phase{{Pattern: workload.PatternZipf, Requests: 1, Alpha: 0.5}}}
	err := cfg.Validate()
	var werr *workload.Error
	if !errors.As(err, &werr) {
		t.Fatalf("workload cause not unwrapped from %v", err)
	}
	if werr.Field != "phases[0].alpha" {
		t.Errorf("cause field = %q", werr.Field)
	}
}

// TestRunRejectsInvalid: Run surfaces the typed validation error, never
// a panic, for a config that used to slip through to a mid-run crash.
func TestRunRejectsInvalid(t *testing.T) {
	cfg := smokeCfg()
	cfg.RecordSize = int(cfg.FileBytes) * 4
	if _, err := Run(cfg); err == nil {
		t.Fatal("Run accepted record size beyond the file")
	}
}
