package exp

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// CellPanicError records a sweep cell whose simulation panicked. The
// runner recovers the panic in the worker, so one poisoned cell reports
// a typed error (with the failing cell's full config and stack) while
// every other cell's table entry completes normally.
type CellPanicError struct {
	Config Config // the configuration whose run panicked
	Value  any    // the recovered panic value
	Stack  string // goroutine stack at the point of the panic
}

func (e *CellPanicError) Error() string {
	return fmt.Sprintf("exp: %v/%s seed %d panicked: %v",
		e.Config.Method, e.Config.Pattern, e.Config.Seed, e.Value)
}

// FaultLossError reports a run that lost requests after exhausting its
// retry budget under fault injection. The loss is typed, never silent:
// any injected transient error not recovered by a retry surfaces here.
type FaultLossError struct {
	Method       Method
	Pattern      string
	Seed         int64
	Lost         int64 // requests still failing after the retry budget
	VerifyErrors int   // end-to-end verification failures, if verification ran
}

func (e *FaultLossError) Error() string {
	return fmt.Sprintf("exp: %v/%s seed %d: %d disk requests lost after retry budget (%d verify errors)",
		e.Method, e.Pattern, e.Seed, e.Lost, e.VerifyErrors)
}

// runExperiment is the cell-execution hook; tests substitute it to
// inject failures into specific cells.
var runExperiment = Run

// Runner executes independent experiment runs on a bounded worker pool.
// Every simulation is a pure function of its Config (including the
// seed), so runs can proceed concurrently; results are slotted by input
// index, which makes tables and trial aggregates bit-identical to a
// sequential execution regardless of worker count or completion order.
//
// Progress lines are serialized through the runner's lock so concurrent
// completions never interleave mid-line.
type Runner struct {
	workers  int
	progress func(string)
	run      func(Config) (*Result, error) // nil = Run; see SetRunFunc
	mu       sync.Mutex
}

// NewRunner returns a runner with the given concurrency. workers <= 0
// selects GOMAXPROCS. progress, if non-nil, receives serialized
// progress lines (one per completed cell or trial group).
func NewRunner(workers int, progress func(string)) *Runner {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Runner{workers: workers, progress: progress}
}

// SetRunFunc replaces the runner's per-cell execution function (default:
// Run). The serving layer wires a cache-and-deduplicate wrapper here, so
// already-computed cells return instantly and concurrent requests for
// the same cell collapse onto one simulation. fn must be safe for
// concurrent calls and must preserve Run's contract: for a given Config
// it returns a Result identical to what Run would produce (a cache of
// pure-function results does, by construction). nil restores the default.
func (r *Runner) SetRunFunc(fn func(Config) (*Result, error)) { r.run = fn }

// progressf emits one progress line under the runner's lock. Safe to
// call from any goroutine.
func (r *Runner) progressf(format string, args ...any) {
	if r.progress == nil {
		return
	}
	r.mu.Lock()
	r.progressLocked(format, args...)
	r.mu.Unlock()
}

// progressLocked emits one progress line; the caller must already hold
// the runner's lock (as RunAll onDone callbacks do).
func (r *Runner) progressLocked(format string, args ...any) {
	if r.progress == nil {
		return
	}
	r.progress(fmt.Sprintf(format, args...))
}

// RunAll executes every config and returns the results in input order.
// onDone, if non-nil, is invoked once per successful run while holding
// the runner's lock, so callers can update shared completion state
// (and emit progress) without further synchronization; by the time the
// last onDone for a group fires, all of that group's result slots are
// visible. On failure RunAll reports the lowest-indexed error that was
// observed; when several configs fail, which one was observed first
// can vary with scheduling.
func (r *Runner) RunAll(cfgs []Config, onDone func(i int, res *Result)) ([]*Result, error) {
	results := make([]*Result, len(cfgs))
	errs := make([]error, len(cfgs))
	workers := r.workers
	if workers > len(cfgs) {
		workers = len(cfgs)
	}
	if workers <= 1 {
		for i := range cfgs {
			if err := r.runOne(cfgs, i, results, errs, onDone); err != nil {
				return nil, err
			}
		}
		// Panicked cells do not fail fast (see runOne); surface the
		// lowest-indexed one after every other cell has completed.
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		return results, nil
	}
	// Fail fast like the sequential path: once any run fails, workers
	// skip the remaining configs (draining the feed so it never
	// blocks). A lower-indexed config may be skipped after a
	// higher-indexed one has already failed, so the error scan below
	// picks the lowest-indexed failure that actually ran.
	var failed atomic.Bool
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if failed.Load() {
					continue
				}
				if r.runOne(cfgs, i, results, errs, onDone) != nil {
					failed.Store(true)
				}
			}
		}()
	}
	for i := range cfgs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// safeRun executes cfgs[i] with panic isolation: a panic inside the
// simulation becomes a CellPanicError carrying the cell's config, the
// panic value, and the stack, instead of crashing the whole sweep.
func (r *Runner) safeRun(cfg Config) (res *Result, err error) {
	defer func() {
		if v := recover(); v != nil {
			res = nil
			err = &CellPanicError{Config: cfg, Value: v, Stack: string(debug.Stack())}
		}
	}()
	if r.run != nil {
		return r.run(cfg)
	}
	return runExperiment(cfg)
}

// runOne executes cfgs[i] and slots its outcome. Errors are wrapped
// with the config's method/pattern/seed so figure generators only need
// to add the table id. A panicked cell is recorded in its error slot
// but reported as nil here, so the remaining cells keep running; the
// typed error surfaces from RunAll's final scan.
func (r *Runner) runOne(cfgs []Config, i int, results []*Result, errs []error, onDone func(int, *Result)) error {
	res, err := r.safeRun(cfgs[i])
	_, panicked := err.(*CellPanicError)
	switch {
	case panicked:
		// keep the typed error as-is; it already names the cell
	case err != nil:
		err = fmt.Errorf("%v/%s seed %d: %w", cfgs[i].Method, cfgs[i].Pattern, cfgs[i].Seed, err)
	case res.Faults.Exhausted > 0:
		err = &FaultLossError{Method: cfgs[i].Method, Pattern: cfgs[i].Pattern, Seed: cfgs[i].Seed,
			Lost: res.Faults.Exhausted, VerifyErrors: res.VerifyErrors}
	case res.VerifyErrors > 0:
		err = fmt.Errorf("exp: %v/%s seed %d: %d verification errors",
			cfgs[i].Method, cfgs[i].Pattern, cfgs[i].Seed, res.VerifyErrors)
	}
	results[i], errs[i] = res, err
	if err == nil && onDone != nil {
		r.mu.Lock()
		onDone(i, res)
		r.mu.Unlock()
	}
	if panicked {
		return nil
	}
	return err
}

// trialSeed derives the seed of trial k from a base config, the same
// derivation sequential Trials has always used.
func trialSeed(base int64, k int) int64 { return base + int64(k)*1000003 }

// Trials replicates cfg n times with derived seeds (varying the random
// disk layout and network jitter), running them on the pool, and
// aggregates throughput.
func (r *Runner) Trials(cfg Config, n int) (*Trial, error) {
	if n < 1 {
		n = 1
	}
	cfgs := make([]Config, n)
	for i := range cfgs {
		cfgs[i] = cfg
		cfgs[i].Seed = trialSeed(cfg.Seed, i)
		if n > 1 {
			// A trace recorder serves exactly one run; replicated
			// configs sharing one would race on the pool (and interleave
			// into nonsense even sequentially). Trace a single run via
			// TracedRun instead.
			cfgs[i].Trace = nil
		}
	}
	results, err := r.RunAll(cfgs, nil)
	if err != nil {
		return nil, err
	}
	t := &Trial{Results: results, MBps: make([]float64, n)}
	for i, res := range results {
		t.MBps[i] = res.MBps
	}
	t.Mean = mean(t.MBps)
	t.CV = cv(t.MBps)
	return t, nil
}
