package exp

import (
	"fmt"

	"ddio/internal/cluster"
	"ddio/internal/core"
	"ddio/internal/hpf"
	"ddio/internal/pfs"
	"ddio/internal/sim"
	"ddio/internal/tcfs"
	"ddio/internal/trace"
	"ddio/internal/twophase"
	"ddio/internal/workload"
)

// phaseExec is one resolved workload phase bound to a method: the
// per-CP body and where the phase's completion time is read from.
type phaseExec struct {
	runCP func(p *sim.Proc, cp int)
	end   func() sim.Time
}

// runWorkload executes cfg's workload: every phase in order, separated
// by barriers, through the selected file-system method. The machine is
// built exactly as for a classic run; all workload randomness comes
// from dedicated "wl:*" sub-streams of the run seed, so the substrate
// draws are untouched and results are identical for any worker count.
func runWorkload(cfg Config) (*Result, error) {
	shape := workload.Shape{
		NCP:        cfg.NCP,
		FileBytes:  cfg.FileBytes,
		BlockSize:  cfg.BlockSize,
		RecordSize: cfg.RecordSize,
	}
	// Workload runs always time their requests (open-arrival runs are
	// latency studies): when the caller did not attach a recorder, attach
	// one filtered to request-end events — one retained event per
	// request. Recorders are passive, so the event sequence and every
	// throughput metric are identical either way.
	latRec := cfg.Trace
	if latRec == nil {
		latRec = trace.NewFiltered(trace.KindReqEnd)
		cfg.Trace = latRec
	}
	mc, err := buildMachine(&cfg)
	if err != nil {
		return nil, err
	}
	defer mc.Close()
	eng, m, f := mc.eng, mc.m, mc.f

	res, err := cfg.Workload.Resolve(shape, mc.rng)
	if err != nil {
		return nil, err
	}

	// Per-CP memory layout: each phase's application buffer, then (for
	// two-phase I/O) its staging areas, stacked in phase order.
	twoPhase := cfg.Method == TwoPhase
	appBase := make([][]int64, len(res.Phases))   // [phase][cp]
	stageBase := make([][]int64, len(res.Phases)) // [phase][cp] read staging
	stageBaseW := make([][]int64, len(res.Phases))
	confs := make([]*hpf.Decomp, len(res.Phases)) // collective conforming decomp
	confR := make([]*workload.SlotAccess, len(res.Phases))
	confW := make([]*workload.SlotAccess, len(res.Phases))
	cur := make([]int64, cfg.NCP)
	for i := range res.Phases {
		ph := &res.Phases[i]
		appBase[i] = append([]int64(nil), cur...)
		for cp := 0; cp < cfg.NCP; cp++ {
			cur[cp] += phaseAppBytes(ph, cp)
		}
		if !twoPhase {
			continue
		}
		if ph.Collective {
			rec := ph.Dec.RecordSize
			conf, err := hpf.New1D(int(cfg.FileBytes/int64(rec)), hpf.Block, rec, cfg.NCP)
			if err != nil {
				return nil, err
			}
			confs[i] = conf
			stageBase[i] = append([]int64(nil), cur...)
			for cp := 0; cp < cfg.NCP; cp++ {
				cur[cp] += conf.CPBytes(cp)
			}
			continue
		}
		if ph.ReadAcc != nil {
			confR[i] = workload.Conforming(ph.ReadAcc, cfg.NCP)
			stageBase[i] = append([]int64(nil), cur...)
			for cp := 0; cp < cfg.NCP; cp++ {
				cur[cp] += confR[i].CPBytes(cp)
			}
		}
		if ph.WriteAcc != nil {
			confW[i] = workload.Conforming(ph.WriteAcc, cfg.NCP)
			stageBaseW[i] = append([]int64(nil), cur...)
			for cp := 0; cp < cfg.NCP; cp++ {
				cur[cp] += confW[i].CPBytes(cp)
			}
		}
	}
	for cp, node := range m.CPs {
		node.Mem = make([]byte, cur[cp])
	}

	// Build the method's servers once (caches and service pools persist
	// across phases, as they would on a real machine), then one client
	// per phase transfer.
	phases := make([]phaseExec, len(res.Phases))
	var collectTC, collectDD func(r *Result)
	switch cfg.Method {
	case TraditionalCaching:
		servers := make([]*tcfs.Server, cfg.NIOP)
		for i := range servers {
			servers[i] = tcfs.NewServer(m, m.IOPs[i], f, cfg.NCP, cfg.TC)
		}
		collectTC = collectTCFrom(servers)
		for i := range res.Phases {
			ph := &res.Phases[i]
			if ph.Collective {
				client := tcfs.NewClient(m, f, ph.Dec, servers, cfg.TC)
				client.SetMemBase(appBase[i])
				write := ph.Write
				phases[i] = phaseExec{
					runCP: func(p *sim.Proc, cp int) { client.TransferCP(p, cp, write) },
					end:   client.EndTime,
				}
				continue
			}
			client := tcfs.NewClient(m, f, nil, servers, cfg.TC)
			streams := streamReqs(ph, appBase[i])
			phases[i] = phaseExec{
				runCP: func(p *sim.Proc, cp int) { client.StreamCP(p, cp, streams[cp]) },
				end:   client.EndTime,
			}
		}
	case DiskDirected, DiskDirectedSort:
		prm := cfg.DD
		prm.Presort = cfg.Method == DiskDirectedSort
		servers := make([]*core.Server, cfg.NIOP)
		for i := range servers {
			servers[i] = core.NewServer(m, m.IOPs[i], f, prm)
		}
		collectDD = collectDDFrom(servers)
		for i := range res.Phases {
			ph := &res.Phases[i]
			if ph.Collective {
				client := core.NewClient(m, f, workload.Offset(ph.Dec, appBase[i]), servers, prm)
				write := ph.Write
				phases[i] = phaseExec{
					runCP: func(p *sim.Proc, cp int) { client.CollectiveCP(p, cp, write) },
					end:   client.EndTime,
				}
				continue
			}
			// A disk-directed collective cannot start before the phase's
			// requests exist: each CP waits out its arrival makespan,
			// then reads collectively, then writes collectively.
			var rdClient, wrClient *core.Client
			if ph.ReadAcc != nil {
				rdClient = core.NewClient(m, f, workload.Offset(ph.ReadAcc, appBase[i]), servers, prm)
			}
			if ph.WriteAcc != nil {
				wrClient = core.NewClient(m, f, workload.Offset(ph.WriteAcc, appBase[i]), servers, prm)
			}
			delay := ph.Delay
			phases[i] = phaseExec{
				runCP: func(p *sim.Proc, cp int) {
					if delay[cp] > 0 {
						p.Sleep(delay[cp])
					}
					if rdClient != nil {
						rdClient.CollectiveCP(p, cp, false)
					}
					if wrClient != nil {
						wrClient.CollectiveCP(p, cp, true)
					}
				},
				end: func() sim.Time {
					if wrClient != nil {
						return wrClient.EndTime()
					}
					return rdClient.EndTime()
				},
			}
		}
	case TwoPhase:
		servers := make([]*tcfs.Server, cfg.NIOP)
		for i := range servers {
			servers[i] = tcfs.NewServer(m, m.IOPs[i], f, cfg.NCP, cfg.TC)
		}
		collectTC = collectTCFrom(servers)
		for i := range res.Phases {
			ph := &res.Phases[i]
			if ph.Collective {
				client := twophase.NewAccessClient(m, f,
					workload.Offset(ph.Dec, appBase[i]),
					workload.Offset(confs[i], stageBase[i]),
					servers, cfg.TC, cfg.TP)
				write := ph.Write
				phases[i] = phaseExec{
					runCP: func(p *sim.Proc, cp int) { client.TransferCP(p, cp, write) },
					end:   client.EndTime,
				}
				continue
			}
			var rdClient, wrClient *twophase.Client
			if ph.ReadAcc != nil {
				rdClient = twophase.NewAccessClient(m, f,
					workload.Offset(ph.ReadAcc, appBase[i]),
					workload.Offset(confR[i], stageBase[i]),
					servers, cfg.TC, cfg.TP)
			}
			if ph.WriteAcc != nil {
				wrClient = twophase.NewAccessClient(m, f,
					workload.Offset(ph.WriteAcc, appBase[i]),
					workload.Offset(confW[i], stageBaseW[i]),
					servers, cfg.TC, cfg.TP)
			}
			delay := ph.Delay
			phases[i] = phaseExec{
				runCP: func(p *sim.Proc, cp int) {
					if delay[cp] > 0 {
						p.Sleep(delay[cp])
					}
					if rdClient != nil {
						rdClient.TransferCP(p, cp, false)
					}
					if wrClient != nil {
						wrClient.TransferCP(p, cp, true)
					}
				},
				end: func() sim.Time {
					if wrClient != nil {
						return wrClient.EndTime()
					}
					return rdClient.EndTime()
				},
			}
		}
	default:
		return nil, fmt.Errorf("exp: unknown method %v", cfg.Method)
	}

	// Preload the file image when anything reads; seed write buffers
	// with the image of the ranges they will write (so written bytes
	// are verifiable end to end).
	anyRead := false
	for i := range res.Phases {
		ph := &res.Phases[i]
		if (ph.Collective && !ph.Write) || ph.ReadAcc != nil {
			anyRead = true
		}
		fillWrites(ph, appBase[i], m.CPs)
	}
	if anyRead {
		f.Preload()
	}

	for cp := range m.CPs {
		cp := cp
		eng.Go(cpProcName(cp), func(p *sim.Proc) {
			for i := range phases {
				p.Sleep(cfg.BarrierCost) // collective entry cost per phase
				phases[i].runCP(p, cp)
			}
		})
	}
	eng.Run()

	var end sim.Time
	for i := range phases {
		if t := phases[i].end(); t > end {
			end = t
		}
	}
	if end == 0 {
		return nil, fmt.Errorf("exp: %v workload %q did not complete; blocked procs: %v",
			cfg.Method, cfg.Workload.Summary(), eng.BlockedProcs())
	}

	r := &Result{Config: cfg, Elapsed: end.Duration(), Events: eng.Events()}
	r.MovedBytes = res.Bytes
	sec := r.Elapsed.Seconds()
	// For request streams the paper's file-bytes-over-time metric is
	// meaningless; both throughput columns report bytes actually moved.
	r.MBps = float64(r.MovedBytes) / sec / MiB
	r.AggMBps = r.MBps
	r.ReqLatency = latRec.RequestLatencies()

	if cfg.Verify {
		r.VerifyErrors = verifyWorkload(res, appBase, f, m)
	}
	if collectTC != nil {
		collectTC(r)
	}
	if collectDD != nil {
		collectDD(r)
	}
	mc.collectSubstrate(r)
	return r, nil
}

// phaseAppBytes returns cp's application-buffer size for one phase.
func phaseAppBytes(ph *workload.ResolvedPhase, cp int) int64 {
	if ph.Collective {
		return ph.Dec.CPBytes(cp)
	}
	var n int64
	for _, rq := range ph.Streams[cp] {
		if end := rq.MemOff + rq.Len; end > n {
			n = end
		}
	}
	return n
}

// streamReqs converts a phase's per-CP requests into tcfs stream
// requests with absolute memory offsets.
func streamReqs(ph *workload.ResolvedPhase, base []int64) [][]tcfs.StreamReq {
	out := make([][]tcfs.StreamReq, len(ph.Streams))
	for cp, reqs := range ph.Streams {
		s := make([]tcfs.StreamReq, len(reqs))
		for k, rq := range reqs {
			s[k] = tcfs.StreamReq{
				Write:   rq.Write,
				FileOff: rq.FileOff,
				Len:     rq.Len,
				MemOff:  base[cp] + rq.MemOff,
				At:      rq.At,
				Think:   rq.Think,
			}
		}
		out[cp] = s
	}
	return out
}

// fillWrites seeds the memory behind a phase's write requests (and
// write-collective chunks) with the deterministic file image, so what
// lands on disk is verifiable.
func fillWrites(ph *workload.ResolvedPhase, base []int64, cps []*cluster.Node) {
	if ph.Collective {
		if !ph.Write {
			return
		}
		for cp, node := range cps {
			for _, ch := range ph.Dec.Chunks(cp) {
				off := base[cp] + ch.MemOff
				pfs.FillImage(node.Mem[off:off+ch.Len], ch.FileOff)
			}
		}
		return
	}
	for cp, node := range cps {
		for _, rq := range ph.Streams[cp] {
			if !rq.Write {
				continue
			}
			off := base[cp] + rq.MemOff
			pfs.FillImage(node.Mem[off:off+rq.Len], rq.FileOff)
		}
	}
}

// verifyWorkload checks every byte the workload moved: read buffers
// against the file image, written file ranges against the disks' final
// contents.
func verifyWorkload(res *workload.Resolved, appBase [][]int64, f *pfs.File, m *cluster.Machine) int {
	errs := 0
	var readBack []byte
	for i := range res.Phases {
		ph := &res.Phases[i]
		base := appBase[i]
		if ph.Collective {
			if ph.Write {
				if readBack == nil {
					readBack = f.ReadBack()
				}
				for cp := 0; cp < len(m.CPs); cp++ {
					for _, ch := range ph.Dec.Chunks(cp) {
						if pfs.VerifyImage(readBack[ch.FileOff:ch.FileOff+ch.Len], ch.FileOff) >= 0 {
							errs++
						}
					}
				}
				continue
			}
			for cp, node := range m.CPs {
				for _, ch := range ph.Dec.Chunks(cp) {
					off := base[cp] + ch.MemOff
					if pfs.VerifyImage(node.Mem[off:off+ch.Len], ch.FileOff) >= 0 {
						errs++
					}
				}
			}
			continue
		}
		for cp, node := range m.CPs {
			for _, rq := range ph.Streams[cp] {
				if rq.Write {
					if readBack == nil {
						readBack = f.ReadBack()
					}
					if pfs.VerifyImage(readBack[rq.FileOff:rq.FileOff+rq.Len], rq.FileOff) >= 0 {
						errs++
					}
					continue
				}
				off := base[cp] + rq.MemOff
				if pfs.VerifyImage(node.Mem[off:off+rq.Len], rq.FileOff) >= 0 {
					errs++
				}
			}
		}
	}
	return errs
}
