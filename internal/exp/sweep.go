package exp

// sweep.go is the declarative scale-sweep layer: a SweepSpec names the
// swept axis (CPs, IOPs, disks, or record size), the values to sweep,
// and the fixed machine/workload shape around it, and expands into the
// same (cell × trial) config grid the hard-coded figure generators used
// to build by hand. Figures 5–8 are now instances of specs (see
// presets.go); extended presets push the same figures past the paper's
// 1994 hardware envelope. Specs serialize to/from JSON, so experiments
// can be defined in files and re-run exactly (EXPERIMENTS.md documents
// every preset and the file format).

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"

	"ddio/internal/fault"
	"ddio/internal/hpf"
	"ddio/internal/pfs"
	"ddio/internal/stats"
	"ddio/internal/workload"
)

// Axis names accepted by SweepSpec.Axis.
const (
	AxisCPs    = "cps"    // number of compute processors
	AxisIOPs   = "iops"   // number of I/O processors (one bus each)
	AxisDisks  = "disks"  // number of disks
	AxisRecord = "record" // record size in bytes

	// Degradation axes: fault intensity in per-mille (so the axis stays
	// integer-valued like every other), applied over the spec's Faults
	// template. Zero is a valid value — the fault-free baseline row.
	AxisFaultPM    = "faultpm"    // transient disk-error rate, ‰ per request
	AxisLossPM     = "losspm"     // interconnect message-loss rate, ‰ per traversal
	AxisStragglers = "stragglers" // number of straggling disks

	// AxisWLRate sweeps the open-arrival rate (requests/s) of the spec's
	// Workload template — every poisson phase is re-rated to the axis
	// value on a clone, so one spec charts throughput versus offered load.
	AxisWLRate = "wlrate"
)

// axisInfo maps an axis name to its table row label, the config field it
// sweeps, and the smallest legal axis value (machine-shape axes need at
// least 1; fault axes include the fault-free 0 baseline). Fault axes
// clone the cell's plan before mutating it — the template is shared
// across every cell of the sweep.
var axisInfo = map[string]struct {
	rowLabel string
	min      int
	apply    func(*Config, int)
}{
	AxisCPs:    {"CPs", 1, func(c *Config, v int) { c.NCP = v }},
	AxisIOPs:   {"IOPs", 1, func(c *Config, v int) { c.NIOP = v }},
	AxisDisks:  {"disks", 1, func(c *Config, v int) { c.NDisks = v }},
	AxisRecord: {"record", 1, func(c *Config, v int) { c.RecordSize = v }},
	AxisFaultPM: {"err-permille", 0, func(c *Config, v int) {
		p := c.Faults.Clone()
		p.DiskErrorRate = float64(v) / 1000
		c.Faults = p
	}},
	AxisLossPM: {"loss-permille", 0, func(c *Config, v int) {
		p := c.Faults.Clone()
		p.MsgLossRate = float64(v) / 1000
		c.Faults = p
	}},
	AxisStragglers: {"stragglers", 0, func(c *Config, v int) {
		p := c.Faults.Clone()
		p.Stragglers = v
		c.Faults = p
	}},
	AxisWLRate: {"req-per-sec", 1, func(c *Config, v int) {
		w := c.Workload.Clone()
		w.SetOpenRate(float64(v))
		c.Workload = w
	}},
}

// SweepSpec declaratively describes one machine/workload sweep: one
// swept axis crossed with a pattern × method grid, everything else held
// fixed. A spec expands into the experiment runner's (cell × trial)
// config grid and renders as the same row-per-value table the paper's
// Figures 5–8 use, so the canonical figures are just specs whose axes
// stop at the paper's ranges.
//
// The zero values of the optional fields defer to the paper's Table 1
// machine and the caller's Options, which is what keeps the paper-range
// presets bit-identical to the original hard-coded generators.
type SweepSpec struct {
	// Name identifies the spec (preset registry key, CLI argument).
	Name string `json:"name"`
	// ID is the table ID; it defaults to Name. The paper presets set it
	// to the figure ID ("fig5") so their output matches the original
	// figure tables byte for byte.
	ID string `json:"id,omitempty"`
	// Title is the table title line.
	Title string `json:"title"`
	// Extends names the paper figure this spec reproduces or extends
	// (documentation only).
	Extends string `json:"extends,omitempty"`
	// Note, if set, is appended to the rendered table.
	Note string `json:"note,omitempty"`

	// Axis is the swept parameter: "cps", "iops", "disks" or "record".
	Axis string `json:"axis"`
	// Values are the axis values, one table row each.
	Values []int `json:"values"`

	// Axis2 and Values2, when set, turn the sweep into a response
	// surface: the table gets one row per (Values × Values2) pair, first
	// axis outermost, labeled "v1×v2". Any axis pair from the same axis
	// set works (cps × disks, wlrate × faultpm, ...) as long as the two
	// axes differ; template-coherence rules (faultpm needs a retry
	// budget, wlrate needs an open-arrival phase, ...) apply to either
	// position. plot.SweepFigure renders two-axis results as heatmaps.
	Axis2   string `json:"axis2,omitempty"`
	Values2 []int  `json:"values2,omitempty"`

	// Layout is the disk layout ("contiguous" or "random-blocks").
	Layout string `json:"layout"`
	// Methods are the file systems under test, in column-group order
	// (names as ParseMethod accepts: "tc", "ddio", "ddio-sort", "2phase").
	Methods []string `json:"methods"`
	// Patterns are the access patterns, in column order within each
	// method group (paper shorthand: "ra", "rb", "rc", ...).
	Patterns []string `json:"patterns"`
	// Record is the fixed record size in bytes; 0 means the paper's
	// 8 KB. Ignored when Axis is "record".
	Record int `json:"record,omitempty"`

	// CPs, IOPs, Disks fix the non-swept machine shape; 0 defers to the
	// Table 1 defaults (16 each).
	CPs   int `json:"cps,omitempty"`   // fixed compute processors
	IOPs  int `json:"iops,omitempty"`  // fixed I/O processors (one bus each)
	Disks int `json:"disks,omitempty"` // fixed disks

	// Trials and FileMB, when positive, override the caller's Options —
	// used by smoke presets that must stay cheap no matter the flags.
	Trials int   `json:"trials,omitempty"` // trials per data point
	FileMB int64 `json:"filemb,omitempty"` // file size in MiB

	// Faults is the fault-plan template for degradation sweeps: every
	// cell starts from it (the fault axes then overlay the swept
	// intensity on a clone). nil keeps the sweep fault-free and its
	// output byte-identical to before fault injection existed.
	Faults *fault.Plan `json:"faults,omitempty"`

	// Workload is the workload template: every cell runs its request
	// streams instead of the classic whole-file transfer (the wlrate axis
	// then overlays the swept arrival rate on a clone). nil keeps the
	// sweep on whole-file collective transfers and its output
	// byte-identical to before the workload layer existed.
	Workload *workload.Spec `json:"workload,omitempty"`
}

// SpecError is the typed validation error for a SweepSpec's two-axis
// (response-surface) fields, so parsers of untrusted specs — the daemon,
// the fuzz targets — can distinguish a malformed axis pair from the
// generic validation failures.
type SpecError struct {
	Spec  string // spec name (may be empty if the spec had none)
	Field string // offending field: "axis2" or "values2"
	Msg   string
}

func (e *SpecError) Error() string {
	return fmt.Sprintf("exp: sweep %q: %s: %s", e.Spec, e.Field, e.Msg)
}

// Validate checks internal consistency of the spec.
func (s *SweepSpec) Validate() error {
	switch {
	case s.Name == "":
		return fmt.Errorf("exp: sweep spec needs a name")
	case len(s.Values) == 0:
		return fmt.Errorf("exp: sweep %q has no axis values", s.Name)
	case len(s.Methods) == 0:
		return fmt.Errorf("exp: sweep %q has no methods", s.Name)
	case len(s.Patterns) == 0:
		return fmt.Errorf("exp: sweep %q has no patterns", s.Name)
	case s.CPs < 0 || s.IOPs < 0 || s.Disks < 0 || s.Record < 0 || s.Trials < 0 || s.FileMB < 0:
		return fmt.Errorf("exp: sweep %q has negative shape parameters", s.Name)
	}
	axis, ok := axisInfo[s.Axis]
	if !ok {
		return fmt.Errorf("exp: sweep %q: unknown axis %q (want cps, iops, disks, record, faultpm, losspm, stragglers or wlrate)", s.Name, s.Axis)
	}
	for _, v := range s.Values {
		if v < axis.min {
			return fmt.Errorf("exp: sweep %q: axis value %d out of range", s.Name, v)
		}
	}
	if s.Axis2 == "" && len(s.Values2) > 0 {
		return &SpecError{Spec: s.Name, Field: "values2", Msg: "set without axis2"}
	}
	if s.Axis2 != "" {
		axis2, ok := axisInfo[s.Axis2]
		if !ok {
			return &SpecError{Spec: s.Name, Field: "axis2",
				Msg: fmt.Sprintf("unknown axis %q (want cps, iops, disks, record, faultpm, losspm, stragglers or wlrate)", s.Axis2)}
		}
		if s.Axis2 == s.Axis {
			return &SpecError{Spec: s.Name, Field: "axis2",
				Msg: fmt.Sprintf("duplicates axis %q; a surface needs two distinct axes", s.Axis)}
		}
		if len(s.Values2) == 0 {
			return &SpecError{Spec: s.Name, Field: "values2", Msg: "axis2 set but values2 empty"}
		}
		for _, v := range s.Values2 {
			if v < axis2.min {
				return &SpecError{Spec: s.Name, Field: "values2",
					Msg: fmt.Sprintf("axis value %d out of range", v)}
			}
		}
	}
	if s.Faults != nil {
		if err := s.Faults.Validate(0); err != nil {
			return fmt.Errorf("exp: sweep %q: %w", s.Name, err)
		}
	}
	// Degradation axes need a coherent template: injecting disk errors
	// without a retry budget would be guaranteed data loss, and a
	// straggler sweep without a slowdown factor would sweep nothing.
	// Either axis position counts — surfaces may put a fault axis second.
	if maxValue(s.axisValues(AxisFaultPM)) > 0 && s.Faults.Retry().Limit < 1 {
		return fmt.Errorf("exp: sweep %q: faultpm axis needs a faults template with retry_limit >= 1", s.Name)
	}
	if maxValue(s.axisValues(AxisStragglers)) > 0 && (s.Faults == nil || s.Faults.StragglerSlowdown <= 1) {
		return fmt.Errorf("exp: sweep %q: stragglers axis needs a faults template with straggler_slowdown > 1", s.Name)
	}
	if s.Workload != nil {
		if err := s.Workload.Validate(nil); err != nil {
			return fmt.Errorf("exp: sweep %q: %w", s.Name, err)
		}
	}
	// The wlrate axis re-rates open-arrival phases; without one there is
	// nothing to sweep.
	if (s.Axis == AxisWLRate || s.Axis2 == AxisWLRate) && s.Workload.OpenPhases() == 0 {
		return fmt.Errorf("exp: sweep %q: wlrate axis needs a workload template with a poisson-arrival phase", s.Name)
	}
	if _, err := pfs.ParseLayout(s.Layout); err != nil {
		return fmt.Errorf("exp: sweep %q: %w", s.Name, err)
	}
	for _, m := range s.Methods {
		if _, err := ParseMethod(m); err != nil {
			return fmt.Errorf("exp: sweep %q: %w", s.Name, err)
		}
	}
	for _, p := range s.Patterns {
		if _, err := hpf.ParsePattern(p); err != nil {
			return fmt.Errorf("exp: sweep %q: %w", s.Name, err)
		}
	}
	return nil
}

// axisValues returns the value list for whichever axis position name
// occupies, or nil when the spec does not sweep that axis — so
// coherence checks apply regardless of whether an axis is first or
// second in a surface.
func (s *SweepSpec) axisValues(name string) []int {
	switch name {
	case s.Axis:
		return s.Values
	case s.Axis2:
		return s.Values2
	}
	return nil
}

// maxValue returns the largest axis value (0 for an empty list;
// Validate rejects those anyway).
func maxValue(vs []int) int {
	m := 0
	for _, v := range vs {
		if v > m {
			m = v
		}
	}
	return m
}

// TableID returns the ID the spec's table will carry (ID, defaulting to
// Name).
func (s *SweepSpec) TableID() string {
	if s.ID != "" {
		return s.ID
	}
	return s.Name
}

// options applies the spec's own Trials/FileMB overrides to the caller's
// options.
func (s *SweepSpec) options(o Options) Options {
	if s.Trials > 0 {
		o.Trials = s.Trials
	}
	if s.FileMB > 0 {
		o.FileBytes = s.FileMB * MiB
	}
	return o
}

// record returns the fixed record size (the paper's 8 KB by default).
func (s *SweepSpec) record() int {
	if s.Record > 0 {
		return s.Record
	}
	return 8192
}

// methods parses the method list (Validate has already vetted it).
func (s *SweepSpec) methods() []Method {
	ms := make([]Method, len(s.Methods))
	for i, name := range s.Methods {
		ms[i], _ = ParseMethod(name)
	}
	return ms
}

// axisPoint is one table row of the expansion: its label and the value
// for each axis position (v2 is unused for single-axis sweeps).
type axisPoint struct {
	label string
	v, v2 int
}

// rowPoints returns one point per table row: the axis values of a
// single-axis sweep, or the Values × Values2 cross-product (first axis
// outermost) of a two-axis surface, row-labeled "v1×v2".
func (s *SweepSpec) rowPoints() []axisPoint {
	if s.Axis2 == "" {
		pts := make([]axisPoint, len(s.Values))
		for i, v := range s.Values {
			pts[i] = axisPoint{label: fmt.Sprintf("%d", v), v: v}
		}
		return pts
	}
	pts := make([]axisPoint, 0, len(s.Values)*len(s.Values2))
	for _, v := range s.Values {
		for _, v2 := range s.Values2 {
			pts = append(pts, axisPoint{label: fmt.Sprintf("%d×%d", v, v2), v: v, v2: v2})
		}
	}
	return pts
}

// rowLabel returns the table's row-label header: the axis label, or
// "label1×label2" for a surface.
func (s *SweepSpec) rowLabel() string {
	if s.Axis2 == "" {
		return axisInfo[s.Axis].rowLabel
	}
	return axisInfo[s.Axis].rowLabel + "×" + axisInfo[s.Axis2].rowLabel
}

// Expand validates the spec and expands it against the options into the
// table skeleton (rows, columns, hardware-ceiling cells) and the flat
// (cell × trial) config grid, in the exact order the original figure
// generators produced: rows outermost, then methods, patterns, trials.
// Expansion is pure — no simulation runs — so tests can pin the grid a
// spec denotes without paying for the runs.
func (s *SweepSpec) Expand(o Options) (*Table, []Config, error) {
	if err := s.Validate(); err != nil {
		return nil, nil, err
	}
	o = s.options(o)
	layout, _ := pfs.ParseLayout(s.Layout)
	methods := s.methods()
	axis := axisInfo[s.Axis]
	points := s.rowPoints()
	t := &Table{ID: s.TableID(), Title: s.Title, RowLabel: s.rowLabel(), Note: s.Note}
	for _, m := range methods {
		for _, p := range s.Patterns {
			t.Cols = append(t.Cols, fmt.Sprintf("%s %s", m, p))
		}
	}
	t.Cols = append(t.Cols, "max-bw")
	cellsPerRow := len(methods) * len(s.Patterns)
	trials := o.trials()
	cfgs := make([]Config, 0, len(points)*cellsPerRow*trials)
	t.Cells = make([][]Cell, len(points))
	for pi, pt := range points {
		t.Rows = append(t.Rows, pt.label)
		t.Cells[pi] = make([]Cell, cellsPerRow+1)
		var ceiling float64
		for _, m := range methods {
			for _, p := range s.Patterns {
				cfg := o.base()
				cfg.Layout = layout
				cfg.RecordSize = s.record()
				cfg.Pattern = p
				cfg.Method = m
				if s.CPs > 0 {
					cfg.NCP = s.CPs
				}
				if s.IOPs > 0 {
					cfg.NIOP = s.IOPs
				}
				if s.Disks > 0 {
					cfg.NDisks = s.Disks
				}
				if s.Faults != nil {
					cfg.Faults = s.Faults
				}
				if s.Workload != nil {
					cfg.Workload = s.Workload
				}
				axis.apply(&cfg, pt.v)
				if s.Axis2 != "" {
					axisInfo[s.Axis2].apply(&cfg, pt.v2)
				}
				ceiling = cfg.MaxBandwidthMBps()
				for k := 0; k < trials; k++ {
					c := cfg
					c.Seed = trialSeed(cfg.Seed, k)
					cfgs = append(cfgs, c)
				}
			}
		}
		t.Cells[pi][cellsPerRow] = Cell{Mean: ceiling}
	}
	return t, cfgs, nil
}

// SweepResult is the machine-readable outcome of one executed sweep: the
// spec that produced it, the rendered table, and per measured cell the
// full descriptive statistics over its trials (the table keeps only
// mean and CV). CellStats is indexed [row][method×pattern column] and
// excludes the table's trailing max-bw column, which is a hardware
// ceiling, not a measurement.
type SweepResult struct {
	Spec      *SweepSpec        `json:"spec"`       // the spec that ran
	Table     *Table            `json:"table"`      // rendered figure table
	CellStats [][]stats.Summary `json:"cell_stats"` // per-cell trial statistics
	// CellTime is the per-cell completion-time statistics (seconds over
	// trials), same indexing as CellStats. Populated only for
	// degradation sweeps (a Faults template is present): under faults,
	// recovery stretches completion time even when throughput curves
	// flatten, so both views matter. Absent for fault-free sweeps,
	// keeping their JSON byte-identical to before fault injection.
	CellTime [][]stats.Summary `json:"cell_time,omitempty"`
}

// JSON renders the sweep result as indented JSON.
func (r *SweepResult) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// ParseSweepResult parses JSON produced by SweepResult.JSON.
func ParseSweepResult(data []byte) (*SweepResult, error) {
	var r SweepResult
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("exp: parsing sweep result: %w", err)
	}
	return &r, nil
}

// Run executes the sweep on the options' worker pool and returns its
// table. For the paper-range presets the result is bit-identical to the
// original hard-coded figure generators (pinned by the golden expansion
// test): the config grid, seed derivation, and aggregation order are
// exactly theirs.
func (s *SweepSpec) Run(o Options) (*Table, error) {
	res, err := s.RunFull(o)
	if err != nil {
		return nil, err
	}
	return res.Table, nil
}

// RunFull executes the sweep and returns the table plus per-cell trial
// statistics for machine-readable output.
func (s *SweepSpec) RunFull(o Options) (*SweepResult, error) {
	t, cfgs, err := s.Expand(o)
	if err != nil {
		return nil, err
	}
	o = s.options(o)
	methods := s.methods()
	cellsPerRow := len(methods) * len(s.Patterns)
	trials := o.trials()
	nRows := len(t.Rows)
	cellStats := make([][]stats.Summary, nRows)
	var cellTime [][]stats.Summary
	if s.Faults != nil {
		cellTime = make([][]stats.Summary, nRows)
	}
	// Workload sweeps are latency studies as much as bandwidth studies:
	// every cell carries request-latency percentiles (seconds over all
	// trial requests). Absent for classic whole-file sweeps, keeping
	// their table JSON byte-identical (omitempty).
	var cellLat [][]stats.Summary
	if s.Workload != nil {
		cellLat = make([][]stats.Summary, nRows)
	}
	for i := 0; i < nRows; i++ {
		cellStats[i] = make([]stats.Summary, cellsPerRow)
		if cellTime != nil {
			cellTime[i] = make([]stats.Summary, cellsPerRow)
		}
		if cellLat != nil {
			cellLat[i] = make([]stats.Summary, cellsPerRow)
		}
	}
	r := o.runner()
	aggs := newCellAggs(nRows*cellsPerRow, trials)
	_, err = r.RunAll(cfgs, func(idx int, res *Result) {
		cell, trial := idx/trials, idx%trials
		if aggs[cell].done(trial, res) {
			vi, ci := cell/cellsPerRow, cell%cellsPerRow
			t.Cells[vi][ci] = aggs[cell].cell()
			cellStats[vi][ci] = stats.Summarize(aggs[cell].mbps)
			if cellTime != nil {
				cellTime[vi][ci] = stats.Summarize(aggs[cell].secs)
			}
			if cellLat != nil {
				cellLat[vi][ci] = stats.Combine(aggs[cell].lat)
			}
			r.progressLocked("%s %s=%s %-4s %-9v %7.2f MB/s (cv %.3f)", t.ID, t.RowLabel,
				t.Rows[vi], s.Patterns[ci%len(s.Patterns)], methods[ci/len(s.Patterns)],
				t.Cells[vi][ci].Mean, t.Cells[vi][ci].CV)
		}
	})
	if err != nil {
		return nil, fmt.Errorf("%s: %w", t.ID, err)
	}
	t.Latency = cellLat
	return &SweepResult{Spec: s, Table: t, CellStats: cellStats, CellTime: cellTime}, nil
}

// ResolveSweep turns a sweep argument — as the -sweep flags of
// cmd/figures and cmd/ddiosim accept — into a validated spec: a
// built-in preset name, or a path to a JSON spec file.
func ResolveSweep(nameOrPath string) (*SweepSpec, error) {
	if spec, ok := LookupPreset(nameOrPath); ok {
		return spec, nil
	}
	data, err := os.ReadFile(nameOrPath)
	if err != nil {
		return nil, fmt.Errorf("exp: %q is neither a built-in sweep preset nor a readable spec file: %w", nameOrPath, err)
	}
	return ParseSweepSpec(data)
}

// ParseSweepSpec parses a JSON sweep-spec file (see EXPERIMENTS.md for
// the format) and validates it. Unknown fields are rejected so typos in
// hand-written spec files fail loudly instead of silently deferring to
// defaults.
func ParseSweepSpec(data []byte) (*SweepSpec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s SweepSpec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("exp: parsing sweep spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}
