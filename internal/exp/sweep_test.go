package exp

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"ddio/internal/pfs"
)

// legacyExpand is a verbatim transcription of the hard-coded sweepTable
// expansion that produced Figures 5–8 before the declarative sweep layer
// existed. The golden test below requires every paper-range preset to
// expand to the exact same table skeleton and (cell × trial) config
// grid, which — simulations being pure functions of their configs — is
// what makes the preset output bit-identical to the historical figures.
func legacyExpand(o Options, id, title, rowLabel string, values []int,
	layout pfs.LayoutKind, ddioMethod Method, mutate func(*Config, int)) (*Table, []Config) {
	patterns := []string{"ra", "rn", "rb", "rc"}
	methods := []Method{ddioMethod, TraditionalCaching}
	t := &Table{ID: id, Title: title, RowLabel: rowLabel}
	for _, m := range methods {
		for _, p := range patterns {
			t.Cols = append(t.Cols, fmt.Sprintf("%s %s", m, p))
		}
	}
	t.Cols = append(t.Cols, "max-bw")
	cellsPerRow := len(methods) * len(patterns)
	trials := o.trials()
	cfgs := make([]Config, 0, len(values)*cellsPerRow*trials)
	t.Cells = make([][]Cell, len(values))
	for vi, v := range values {
		t.Rows = append(t.Rows, fmt.Sprintf("%d", v))
		t.Cells[vi] = make([]Cell, cellsPerRow+1)
		var ceiling float64
		for _, m := range methods {
			for _, p := range patterns {
				cfg := o.base()
				cfg.Layout = layout
				cfg.RecordSize = 8192
				cfg.Pattern = p
				cfg.Method = m
				mutate(&cfg, v)
				ceiling = cfg.MaxBandwidthMBps()
				for k := 0; k < trials; k++ {
					c := cfg
					c.Seed = trialSeed(cfg.Seed, k)
					cfgs = append(cfgs, c)
				}
			}
		}
		t.Cells[vi][cellsPerRow] = Cell{Mean: ceiling}
	}
	return t, cfgs
}

// TestPaperPresetsMatchLegacyExpansion is the golden contract of the
// sweep layer: the four paper-range presets expand — skeleton and config
// grid — exactly as the retired hard-coded Figure 5–8 generators did, at
// both the paper's default options and scaled-down ones. No simulation
// runs; identical configs imply bit-identical tables.
func TestPaperPresetsMatchLegacyExpansion(t *testing.T) {
	legacy := map[string]func(o Options) (*Table, []Config){
		"fig5-paper": func(o Options) (*Table, []Config) {
			return legacyExpand(o, "fig5", "throughput vs number of CPs (contiguous, 8 KB records)",
				"CPs", []int{1, 2, 4, 8, 16}, pfs.Contiguous, DiskDirected,
				func(c *Config, v int) { c.NCP = v })
		},
		"fig6-paper": func(o Options) (*Table, []Config) {
			return legacyExpand(o, "fig6", "throughput vs number of IOPs/busses (16 disks, contiguous, 8 KB records)",
				"IOPs", []int{1, 2, 4, 8, 16}, pfs.Contiguous, DiskDirected,
				func(c *Config, v int) { c.NIOP = v })
		},
		"fig7-paper": func(o Options) (*Table, []Config) {
			return legacyExpand(o, "fig7", "throughput vs number of disks (1 IOP/bus, contiguous, 8 KB records)",
				"disks", []int{1, 2, 4, 8, 16, 32}, pfs.Contiguous, DiskDirected,
				func(c *Config, v int) { c.NIOP = 1; c.NDisks = v })
		},
		"fig8-paper": func(o Options) (*Table, []Config) {
			return legacyExpand(o, "fig8", "throughput vs number of disks (1 IOP/bus, random-blocks, 8 KB records)",
				"disks", []int{1, 2, 4, 8, 16, 32}, pfs.RandomBlocks, DiskDirectedSort,
				func(c *Config, v int) { c.NIOP = 1; c.NDisks = v })
		},
	}
	for _, o := range []Options{DefaultOptions(), tinyOptions()} {
		for name, gen := range legacy {
			wantT, wantCfgs := gen(o)
			spec, ok := LookupPreset(name)
			if !ok {
				t.Fatalf("preset %q missing", name)
			}
			gotT, gotCfgs, err := spec.Expand(o)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if !reflect.DeepEqual(gotT, wantT) {
				t.Errorf("%s: table skeleton diverges from legacy:\ngot  %+v\nwant %+v", name, gotT, wantT)
			}
			if len(gotCfgs) != len(wantCfgs) {
				t.Fatalf("%s: %d configs, legacy had %d", name, len(gotCfgs), len(wantCfgs))
			}
			for i := range gotCfgs {
				g, w := gotCfgs[i], wantCfgs[i]
				// Spec.Seek is a func, which DeepEqual can't compare;
				// both sides take the same fresh HP97560, so compare the
				// model by name and the rest of the config structurally.
				if g.Disk == nil || w.Disk == nil || g.Disk.Name != w.Disk.Name {
					t.Fatalf("%s: config %d disk %v vs %v", name, i, g.Disk, w.Disk)
				}
				g.Disk, w.Disk = nil, nil
				if !reflect.DeepEqual(g, w) {
					t.Fatalf("%s: config %d diverges from legacy:\ngot  %+v\nwant %+v", name, i, g, w)
				}
			}
		}
	}
}

// TestPresetsValid checks every built-in preset validates and expands.
func TestPresetsValid(t *testing.T) {
	seen := map[string]bool{}
	for _, s := range Presets() {
		if seen[s.Name] {
			t.Errorf("duplicate preset name %q", s.Name)
		}
		seen[s.Name] = true
		if _, _, err := s.Expand(DefaultOptions()); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
	for _, name := range []string{"fig5-paper", "fig6-paper", "fig7-paper", "fig8-paper", "ext-smoke"} {
		if !seen[name] {
			t.Errorf("required preset %q missing", name)
		}
	}
}

// TestSweepExtendedBeyondPaper runs the CI smoke preset end to end: axes
// beyond the paper's 16 CPs, one trial of a small file, with the result
// round-tripping through the sweep-result JSON emitter.
func TestSweepExtendedBeyondPaper(t *testing.T) {
	spec, ok := LookupPreset("ext-smoke")
	if !ok {
		t.Fatal("ext-smoke preset missing")
	}
	res, err := spec.RunFull(DefaultOptions()) // preset overrides trials/file size itself
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range res.Table.Rows {
		for j := range res.Table.Cols[:len(res.Table.Cols)-1] {
			if res.Table.Cells[i][j].Mean <= 0 {
				t.Errorf("cell (%s, %s) empty", row, res.Table.Cols[j])
			}
			if st := res.CellStats[i][j]; st.N != 1 || st.Mean != res.Table.Cells[i][j].Mean {
				t.Errorf("cell (%s, %s): stats %+v disagree with table mean %v",
					row, res.Table.Cols[j], st, res.Table.Cells[i][j].Mean)
			}
		}
	}
	data, err := res.JSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseSweepResult(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, res) {
		t.Fatalf("sweep result JSON round trip diverged:\ngot  %+v\nwant %+v", back, res)
	}
}

// randomTable builds a table with pseudo-random labels and cells. Means
// are quantized to the CSV emitter's three-decimal precision so the CSV
// round trip is exact; CVs keep full float64 precision for the JSON leg.
func randomTable(rng *rand.Rand) *Table {
	nr, nc := 1+rng.Intn(6), 1+rng.Intn(6)
	t := &Table{
		ID:       fmt.Sprintf("t%d", rng.Intn(1000)),
		Title:    "random table",
		RowLabel: "row",
	}
	for j := 0; j < nc; j++ {
		t.Cols = append(t.Cols, fmt.Sprintf("c%d", j))
	}
	for i := 0; i < nr; i++ {
		t.Rows = append(t.Rows, fmt.Sprintf("r%d", i))
		cells := make([]Cell, nc)
		for j := range cells {
			cells[j] = Cell{
				Mean: float64(rng.Intn(1_000_000)) / 1000,
				CV:   rng.Float64(),
			}
		}
		t.Cells = append(t.Cells, cells)
	}
	if rng.Intn(2) == 0 {
		t.Note = "a note"
	}
	return t
}

// TestTableJSONRoundTrip is the property that the JSON emitter is
// lossless: parse(emit(t)) == t for random tables.
func TestTableJSONRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		want := randomTable(rng)
		data, err := want.JSON()
		if err != nil {
			t.Fatal(err)
		}
		got, err := ParseTableJSON(data)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("iteration %d: JSON round trip diverged:\ngot  %+v\nwant %+v", i, got, want)
		}
	}
}

// TestTableCSVRoundTrip is the property that the CSV emitter round-trips
// everything CSV carries: labels and three-decimal means.
func TestTableCSVRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 200; i++ {
		want := randomTable(rng)
		got, err := ParseTableCSV(want.CSV())
		if err != nil {
			t.Fatal(err)
		}
		if got.RowLabel != want.RowLabel || !reflect.DeepEqual(got.Rows, want.Rows) ||
			!reflect.DeepEqual(got.Cols, want.Cols) {
			t.Fatalf("iteration %d: CSV labels diverged:\ngot  %+v\nwant %+v", i, got, want)
		}
		for r := range want.Cells {
			for c := range want.Cells[r] {
				if got.Cells[r][c].Mean != want.Cells[r][c].Mean {
					t.Fatalf("iteration %d: cell (%d,%d) %v != %v",
						i, r, c, got.Cells[r][c].Mean, want.Cells[r][c].Mean)
				}
			}
		}
	}
}

// TestParseSweepSpec checks the JSON file format: a valid file parses to
// the expected spec, unknown fields and invalid axes are rejected.
func TestParseSweepSpec(t *testing.T) {
	good := `{
  "name": "my-sweep", "title": "custom", "axis": "disks",
  "values": [2, 6], "iops": 1,
  "layout": "random-blocks", "methods": ["ddio-sort", "tc"],
  "patterns": ["rb", "rc"], "record": 4096, "trials": 2
}`
	s, err := ParseSweepSpec([]byte(good))
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "my-sweep" || s.Axis != AxisDisks || s.IOPs != 1 || s.Record != 4096 {
		t.Fatalf("parsed spec %+v", s)
	}
	if _, _, err := s.Expand(tinyOptions()); err != nil {
		t.Fatal(err)
	}
	for name, bad := range map[string]string{
		"unknown field": `{"name":"x","axis":"cps","values":[1],"layout":"contiguous",
			"methods":["tc"],"patterns":["ra"],"bogus":1}`,
		"bad axis":    `{"name":"x","axis":"warp","values":[1],"layout":"contiguous","methods":["tc"],"patterns":["ra"]}`,
		"bad layout":  `{"name":"x","axis":"cps","values":[1],"layout":"striped","methods":["tc"],"patterns":["ra"]}`,
		"bad method":  `{"name":"x","axis":"cps","values":[1],"layout":"contiguous","methods":["nfs"],"patterns":["ra"]}`,
		"bad pattern": `{"name":"x","axis":"cps","values":[1],"layout":"contiguous","methods":["tc"],"patterns":["zz"]}`,
		"no values":   `{"name":"x","axis":"cps","values":[],"layout":"contiguous","methods":["tc"],"patterns":["ra"]}`,
		"zero value":  `{"name":"x","axis":"cps","values":[0],"layout":"contiguous","methods":["tc"],"patterns":["ra"]}`,
		"no name":     `{"axis":"cps","values":[1],"layout":"contiguous","methods":["tc"],"patterns":["ra"]}`,
		"not json":    `axis: cps`,
		"no patterns": `{"name":"x","axis":"cps","values":[1],"layout":"contiguous","methods":["tc"],"patterns":[]}`,
	} {
		if _, err := ParseSweepSpec([]byte(bad)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestSweepSpecOverrides pins the Trials/FileMB spec overrides and the
// record default used by smoke presets.
func TestSweepSpecOverrides(t *testing.T) {
	spec := tinySweepSpec()
	spec.Trials = 3
	spec.FileMB = 2
	_, cfgs, err := spec.Expand(Options{Trials: 9, FileBytes: 16 * MiB, Seed: 5, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	perCell := 3
	if want := len(spec.Values) * len(spec.Methods) * len(spec.Patterns) * perCell; len(cfgs) != want {
		t.Fatalf("%d configs, want %d (trials override)", len(cfgs), want)
	}
	for _, c := range cfgs {
		if c.FileBytes != 2*MiB {
			t.Fatalf("file size %d, want %d (filemb override)", c.FileBytes, 2*MiB)
		}
		if c.RecordSize != 8192 {
			t.Fatalf("record size %d, want paper default 8192", c.RecordSize)
		}
	}
}

// TestSweepProgressLines checks the executed sweep reports one progress
// line per measured cell, in the historical format.
func TestSweepProgressLines(t *testing.T) {
	var lines []string
	o := tinyOptions()
	o.Progress = func(s string) { lines = append(lines, s) }
	spec := tinySweepSpec()
	if _, err := spec.Run(o); err != nil {
		t.Fatal(err)
	}
	want := len(spec.Values) * len(spec.Methods) * len(spec.Patterns)
	if len(lines) != want {
		t.Fatalf("%d progress lines, want %d: %q", len(lines), want, lines)
	}
	for _, l := range lines {
		if !strings.HasPrefix(l, "figS CPs=") || !strings.Contains(l, "MB/s") {
			t.Fatalf("malformed progress line %q", l)
		}
	}
}
