package exp

import (
	"fmt"
	"time"

	"ddio/internal/bus"
	"ddio/internal/cluster"
	"ddio/internal/core"
	"ddio/internal/disk"
	"ddio/internal/fault"
	"ddio/internal/hpf"
	"ddio/internal/pfs"
	"ddio/internal/sim"
	"ddio/internal/stats"
	"ddio/internal/tcfs"
	"ddio/internal/trace"
	"ddio/internal/twophase"
)

// DiskTotals sums the per-disk metrics of a run.
type DiskTotals struct {
	Reads, Writes          int64         // media transfers
	CacheHits, CacheStream int64         // read-ahead segment hits / streamed sectors
	Seeks                  int64         // arm movements
	SeekCylinders          int64         // cylinders crossed, summed
	QueueWait              time.Duration // total request time spent queued
	Busy                   time.Duration // total mechanism busy time
}

// FaultTotals sums what fault injection did to a run and what recovery
// cost. Zero throughout for fault-free runs. The counting invariant —
// every injected disk error was either recovered by a retry or counted
// as exhausted — is DiskErrors == Retries + Exhausted: each recovered
// request contributes exactly as many resubmissions as failures, and
// each exhausted request fails Limit+1 times on Limit resubmissions,
// with the final failure counted here as the loss.
type FaultTotals struct {
	DiskErrors  int64 // transient disk failures injected
	Retries     int64 // disk-request resubmissions by the servers
	Recovered   int64 // failed requests a retry eventually completed
	Exhausted   int64 // requests lost after the retry budget — typed failures
	DroppedMsgs int64 // interconnect messages dropped in the fabric
	Resends     int64 // retransmissions (equals DroppedMsgs)
	Spikes      int64 // interconnect latency spikes injected
}

// Result reports one experiment run.
type Result struct {
	Config  Config        // the configuration that produced this result
	Elapsed time.Duration // simulated wall-clock time of the transfer
	// MBps is the paper's reported number: file bytes over elapsed time
	// in MiB/s; for the ra pattern this is already the "normalized by
	// number of CPs" value since every CP moved a whole file copy.
	MBps float64
	// AggMBps counts all application bytes actually moved (ra moves
	// NCP copies).
	AggMBps    float64
	MovedBytes int64 // application bytes moved across all CPs

	Disk     DiskTotals    // summed per-disk metrics
	BusBusy  time.Duration // total SCSI bus busy time
	NetMsgs  int64         // interconnect messages
	NetBytes int64         // interconnect payload bytes
	IOPBusy  time.Duration // total IOP CPU busy time
	CPBusy   time.Duration // total CP CPU busy time
	TC       tcfs.Metrics  // traditional-caching counters (TC and 2phase runs)
	DD       core.Metrics  // disk-directed counters (DDIO runs)
	Faults   FaultTotals   // fault-injection and recovery totals
	Events   int64         // simulation events fired

	// ReqLatency holds per-request latency statistics (seconds, with
	// p50/p90/p99 populated) for workload runs — open-arrival runs are
	// latency studies, not bandwidth studies. Zero for classic
	// whole-file runs, which have no per-request arrivals to time.
	ReqLatency stats.Summary

	VerifyErrors int // blocks/chunks that failed end-to-end verification
}

// cpNames are the per-CP proc names for the machine widths the presets
// reach (≤ 64 CPs), precomputed so per-run spawns don't allocate them.
var cpNames = func() [64]string {
	var a [64]string
	for i := range a {
		a[i] = fmt.Sprintf("cp%d", i)
	}
	return a
}()

// cpProcName returns the diagnostic proc name for compute processor cp.
func cpProcName(cp int) string {
	if cp < len(cpNames) {
		return cpNames[cp]
	}
	return fmt.Sprintf("cp%d", cp)
}

// machine is the assembled simulated hardware of one run: engine,
// interconnect, buses, disks, and the striped file — everything below
// the file-system method. Built identically for classic and workload
// runs so the substrate streams (layout, jitter, faults) draw the same
// values either way.
type machine struct {
	eng   *sim.Engine
	rng   *sim.Rand
	inj   *fault.Injector
	m     *cluster.Machine
	buses []*bus.Bus
	disks []*disk.Disk
	f     *pfs.File
}

// buildMachine assembles the simulated machine from cfg. It may arm
// cfg.TC.Retry/cfg.DD.Retry from the fault plan — pass a private copy.
// The caller owns mc.Close.
func buildMachine(cfg *Config) (*machine, error) {
	mc := &machine{eng: sim.NewEngine()}
	mc.eng.SetRecorder(cfg.Trace) // before machine build: components capture it
	mc.rng = sim.NewRand(cfg.Seed)
	// The injector draws only from dedicated "fault-*" sub-streams, so a
	// nil (or disabled) plan leaves the layout and jitter streams — and
	// therefore the whole run — bit-identical to a faultless build.
	mc.inj = fault.NewInjector(cfg.Faults, mc.rng, cfg.NDisks)
	if pol := mc.inj.Retry(); pol.Enabled() {
		cfg.TC.Retry = pol // also covers the two-phase path (it runs on tcfs servers)
		cfg.DD.Retry = pol
	}
	mc.m = cluster.New(mc.eng, cfg.Net, cfg.NCP, cfg.NIOP, mc.rng)
	mc.m.InjectFaults(mc.inj)

	mc.buses = make([]*bus.Bus, cfg.NIOP)
	for i := range mc.buses {
		mc.buses[i] = bus.New(mc.eng, fmt.Sprintf("bus%d", i), cfg.BusBandwidth, cfg.BusOverhead)
	}
	mc.disks = make([]*disk.Disk, cfg.NDisks)
	for d := range mc.disks {
		mc.disks[d] = disk.New(mc.eng, fmt.Sprintf("d%d", d), cfg.Disk, mc.buses[d%cfg.NIOP], cfg.DiskSched)
		mc.disks[d].SetFaults(mc.inj.Disk(d))
	}
	f, err := pfs.NewFile(mc.disks, cfg.BlockSize, cfg.NumBlocks(), cfg.Layout, mc.rng)
	if err != nil {
		mc.eng.Close()
		return nil, err
	}
	mc.f = f
	return mc, nil
}

// Close releases the machine's engine resources.
func (mc *machine) Close() { mc.eng.Close() }

// collectSubstrate sums the machine-level metrics — disks, buses,
// interconnect, CPU busy time, fault totals — into r. Call after the
// method counters (TC/DD) are collected: the fault block folds in
// their retry counts.
func (mc *machine) collectSubstrate(r *Result) {
	for _, d := range mc.disks {
		dm := d.Metrics()
		r.Disk.Reads += dm.Reads
		r.Disk.Writes += dm.Writes
		r.Disk.CacheHits += dm.CacheHits
		r.Disk.CacheStream += dm.CacheStreams
		r.Disk.Seeks += dm.SeekCount
		r.Disk.SeekCylinders += dm.SeekCylinders
		r.Disk.QueueWait += dm.QueueWait
		r.Disk.Busy += dm.Busy
	}
	for _, b := range mc.buses {
		r.BusBusy += b.Busy()
	}
	r.NetMsgs = mc.m.Net.Messages()
	r.NetBytes = mc.m.Net.Bytes()
	for _, n := range mc.m.IOPs {
		r.IOPBusy += n.CPU.Busy()
	}
	for _, n := range mc.m.CPs {
		r.CPBusy += n.CPU.Busy()
	}
	if st := mc.inj.Stats(); st != (fault.Stats{}) || r.TC.DiskRetries+r.DD.DiskRetries > 0 {
		r.Faults = FaultTotals{
			DiskErrors:  st.DiskErrors,
			Retries:     r.TC.DiskRetries + r.DD.DiskRetries,
			Recovered:   r.TC.DiskRecovered + r.DD.DiskRecovered,
			Exhausted:   r.TC.DiskLost + r.DD.DiskLost,
			DroppedMsgs: st.DroppedMsgs,
			Resends:     st.Resends,
			Spikes:      st.Spikes,
		}
	}
}

// collectTCFrom sums tcfs server counters into the result; shared by
// the TC and two-phase cases (both run on tcfs servers).
func collectTCFrom(servers []*tcfs.Server) func(r *Result) {
	return func(r *Result) {
		for _, s := range servers {
			sm := s.Metrics()
			r.TC.Requests += sm.Requests
			r.TC.Reads += sm.Reads
			r.TC.Writes += sm.Writes
			r.TC.CacheHits += sm.CacheHits
			r.TC.CacheMiss += sm.CacheMiss
			r.TC.Prefetches += sm.Prefetches
			r.TC.Flushes += sm.Flushes
			r.TC.PartialRMW += sm.PartialRMW
			r.TC.DiskRetries += sm.DiskRetries
			r.TC.DiskRecovered += sm.DiskRecovered
			r.TC.DiskLost += sm.DiskLost
		}
	}
}

// collectDDFrom sums disk-directed server counters into the result.
func collectDDFrom(servers []*core.Server) func(r *Result) {
	return func(r *Result) {
		for _, s := range servers {
			sm := s.Metrics()
			r.DD.Requests += sm.Requests
			r.DD.Blocks += sm.Blocks
			r.DD.Memputs += sm.Memputs
			r.DD.Memgets += sm.Memgets
			r.DD.PartialBlockRMW += sm.PartialBlockRMW
			r.DD.DiskRetries += sm.DiskRetries
			r.DD.DiskRecovered += sm.DiskRecovered
			r.DD.DiskLost += sm.DiskLost
		}
	}
}

// Run executes one experiment: the classic whole-file collective
// transfer of cfg.Pattern, or — when cfg.Workload is enabled — the
// declared workload's phases, under the selected method either way.
func Run(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Workload.Enabled() {
		return runWorkload(cfg)
	}
	pat, err := hpf.ParsePattern(cfg.Pattern)
	if err != nil {
		return nil, err
	}
	dec, err := pat.Decomp(cfg.FileBytes, cfg.RecordSize, cfg.NCP)
	if err != nil {
		return nil, err
	}

	mc, err := buildMachine(&cfg)
	if err != nil {
		return nil, err
	}
	defer mc.Close()
	eng, m, f := mc.eng, mc.m, mc.f

	// Build the file system under test and the per-CP transfer bodies.
	var runCP func(p *sim.Proc, cp int)
	var endTime func() sim.Time
	var collectTC func(r *Result)
	var collectDD func(r *Result)
	memBytes := func(cp int) int64 { return dec.CPBytes(cp) }

	switch cfg.Method {
	case TraditionalCaching:
		servers := make([]*tcfs.Server, cfg.NIOP)
		for i := range servers {
			servers[i] = tcfs.NewServer(m, m.IOPs[i], f, cfg.NCP, cfg.TC)
		}
		client := tcfs.NewClient(m, f, dec, servers, cfg.TC)
		runCP = func(p *sim.Proc, cp int) { client.TransferCP(p, cp, pat.Write) }
		endTime = client.EndTime
		collectTC = collectTCFrom(servers)
	case DiskDirected, DiskDirectedSort:
		prm := cfg.DD
		prm.Presort = cfg.Method == DiskDirectedSort
		servers := make([]*core.Server, cfg.NIOP)
		for i := range servers {
			servers[i] = core.NewServer(m, m.IOPs[i], f, prm)
		}
		client := core.NewClient(m, f, dec, servers, prm)
		runCP = func(p *sim.Proc, cp int) { client.CollectiveCP(p, cp, pat.Write) }
		endTime = client.EndTime
		collectDD = collectDDFrom(servers)
	case TwoPhase:
		servers := make([]*tcfs.Server, cfg.NIOP)
		for i := range servers {
			servers[i] = tcfs.NewServer(m, m.IOPs[i], f, cfg.NCP, cfg.TC)
		}
		client, err := twophase.NewClient(m, f, dec, servers, cfg.TC, cfg.TP)
		if err != nil {
			return nil, err
		}
		memBytes = client.MemBytes
		runCP = func(p *sim.Proc, cp int) { client.TransferCP(p, cp, pat.Write) }
		endTime = client.EndTime
		collectTC = collectTCFrom(servers)
	default:
		return nil, fmt.Errorf("exp: unknown method %v", cfg.Method)
	}

	// Allocate CP memory; writes start with the application data (the
	// deterministic file image) already in memory.
	for cp, node := range m.CPs {
		node.Mem = make([]byte, memBytes(cp))
	}
	if pat.Write {
		for cp, node := range m.CPs {
			for _, ch := range dec.Chunks(cp) {
				pfs.FillImage(node.Mem[ch.MemOff:ch.MemOff+ch.Len], ch.FileOff)
			}
		}
	} else {
		f.Preload()
	}

	for cp := range m.CPs {
		cp := cp
		eng.Go(cpProcName(cp), func(p *sim.Proc) {
			p.Sleep(cfg.BarrierCost) // collective entry cost (negligible, §3)
			runCP(p, cp)
		})
	}
	eng.Run()

	end := endTime()
	if end == 0 {
		return nil, fmt.Errorf("exp: %v/%s did not complete; blocked procs: %v",
			cfg.Method, cfg.Pattern, eng.BlockedProcs())
	}

	r := &Result{Config: cfg, Elapsed: end.Duration(), Events: eng.Events()}
	r.MovedBytes = 0
	for cp := 0; cp < cfg.NCP; cp++ {
		r.MovedBytes += dec.CPBytes(cp)
	}
	sec := r.Elapsed.Seconds()
	r.MBps = float64(cfg.FileBytes) / sec / MiB
	r.AggMBps = float64(r.MovedBytes) / sec / MiB

	if cfg.Verify {
		r.VerifyErrors = verify(cfg, pat, dec, f, m)
	}

	if collectTC != nil {
		collectTC(r)
	}
	if collectDD != nil {
		collectDD(r)
	}
	mc.collectSubstrate(r)
	return r, nil
}

// verify checks every byte that should have moved. Reads: each CP's
// buffer must hold the image of its chunks. Writes: the file read back
// from the disks must equal the image.
func verify(cfg Config, pat hpf.Pattern, dec *hpf.Decomp, f *pfs.File, m *cluster.Machine) int {
	errs := 0
	if pat.Write {
		data := f.ReadBack()
		for off := 0; off < len(data); off += cfg.BlockSize {
			endOff := off + cfg.BlockSize
			if pfs.VerifyImage(data[off:endOff], int64(off)) >= 0 {
				errs++
			}
		}
		return errs
	}
	for cp, node := range m.CPs {
		for _, ch := range dec.Chunks(cp) {
			if pfs.VerifyImage(node.Mem[ch.MemOff:ch.MemOff+ch.Len], ch.FileOff) >= 0 {
				errs++
			}
		}
	}
	return errs
}

// TracedRun executes one experiment with a fresh event-trace recorder
// attached and returns both. The traced run fires the identical event
// sequence (and reports the identical throughput) as an untraced run of
// the same Config; the recorder holds the time-resolved view — disk
// busy intervals, queue depths, request latencies, per-link messages —
// that the Result's end-of-run totals summarize.
func TracedRun(cfg Config) (*Result, *trace.Recorder, error) {
	rec := trace.New()
	cfg.Trace = rec
	res, err := Run(cfg)
	if err != nil {
		return nil, nil, err
	}
	return res, rec, nil
}

// TraceTitle is the canonical title for a traced run's artifacts (the
// HTML trace viewer, the utilization timeline): one string shared by
// the CLI and the daemon so both emit byte-identical pages for the
// same configuration.
func TraceTitle(cfg Config) string {
	return fmt.Sprintf("%v %s, %s layout", cfg.Method, cfg.Pattern, cfg.Layout)
}

// Trial is the aggregate of replicated runs of one configuration.
type Trial struct {
	Results []*Result // per-trial results, in trial order
	MBps    []float64 // per-trial throughput, in trial order
	Mean    float64   // mean throughput over trials
	CV      float64   // coefficient of variation over trials
}

// Trials replicates cfg n times with derived seeds (varying the random
// disk layout and network jitter) and aggregates throughput. Runs are
// sequential; use Runner.Trials to replicate on a worker pool.
func Trials(cfg Config, n int) (*Trial, error) {
	return NewRunner(1, nil).Trials(cfg, n)
}
