package exp

import (
	"errors"
	"strings"
	"testing"
)

// tinySurfaceSpec is a minimal two-axis (CPs × disks) spec for shape
// and determinism tests: 2×2 rows, one method, one pattern.
func tinySurfaceSpec() *SweepSpec {
	return &SweepSpec{
		Name: "surfS", Title: "surface test",
		Axis: AxisCPs, Values: []int{1, 2},
		Axis2: AxisDisks, Values2: []int{2, 4},
		IOPs:   2,
		Layout: "contiguous", Methods: []string{"tc"}, Patterns: []string{"rb"},
	}
}

// TestSurfaceExpansionShape pins the two-axis cross product: one row
// per (value, value2) pair, first axis outermost, labels "v1×v2", and
// both axis fields applied to every expanded config.
func TestSurfaceExpansionShape(t *testing.T) {
	spec := tinySurfaceSpec()
	tab, cfgs, err := spec.Expand(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	wantRows := []string{"1×2", "1×4", "2×2", "2×4"}
	if len(tab.Rows) != len(wantRows) {
		t.Fatalf("%d rows, want %d: %v", len(tab.Rows), len(wantRows), tab.Rows)
	}
	for i, want := range wantRows {
		if tab.Rows[i] != want {
			t.Fatalf("row %d = %q, want %q", i, tab.Rows[i], want)
		}
	}
	// 4 rows × 1 method × 1 pattern × 1 trial; row-major in the same
	// order as rows, so config i belongs to row i.
	if len(cfgs) != 4 {
		t.Fatalf("%d configs, want 4", len(cfgs))
	}
	wantShape := []struct{ cps, disks int }{{1, 2}, {1, 4}, {2, 2}, {2, 4}}
	for i, c := range cfgs {
		if c.NCP != wantShape[i].cps || c.NDisks != wantShape[i].disks {
			t.Fatalf("config %d: CPs=%d disks=%d, want CPs=%d disks=%d",
				i, c.NCP, c.NDisks, wantShape[i].cps, wantShape[i].disks)
		}
		if c.NIOP != 2 {
			t.Fatalf("config %d: IOPs=%d, want fixed 2", i, c.NIOP)
		}
	}
}

// TestSurfaceRunFull runs the tiny surface end to end: the table row
// label joins both axes, every cell measures, and the long CSV carries
// the axis2/value2 columns.
func TestSurfaceRunFull(t *testing.T) {
	spec := tinySurfaceSpec()
	res, err := spec.RunFull(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	tab := res.Table
	if tab.RowLabel != "CPs×disks" {
		t.Fatalf("row label %q, want %q", tab.RowLabel, "CPs×disks")
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("%d rows, want 4", len(tab.Rows))
	}
	for i, row := range tab.Cells {
		for j, c := range row {
			if c.Mean <= 0 {
				t.Fatalf("cell (%d,%d) empty", i, j)
			}
		}
	}
	csv := res.LongCSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	wantHeader := "sweep,figure,axis,value,axis2,value2,method,pattern,n,mean_mbps,stddev,cv,min_mbps,max_mbps,max_bw_mbps"
	if lines[0] != wantHeader {
		t.Fatalf("header %q, want %q", lines[0], wantHeader)
	}
	if len(lines) != 1+4 {
		t.Fatalf("%d data rows, want 4", len(lines)-1)
	}
	if !strings.Contains(lines[2], ",cps,1,disks,4,tc,rb,") {
		t.Fatalf("row 2 lacks the axis pair: %q", lines[2])
	}
}

// TestSurfaceSpecErrors pins the typed validation errors of malformed
// axis pairs: each case surfaces as a *SpecError naming the offending
// field, extractable with errors.As.
func TestSurfaceSpecErrors(t *testing.T) {
	cases := map[string]struct {
		mutate func(*SweepSpec)
		field  string
	}{
		"values2 without axis2": {func(s *SweepSpec) { s.Axis2 = "" }, "values2"},
		"unknown axis2":         {func(s *SweepSpec) { s.Axis2 = "warp" }, "axis2"},
		"duplicate axis":        {func(s *SweepSpec) { s.Axis2 = s.Axis }, "axis2"},
		"empty values2":         {func(s *SweepSpec) { s.Values2 = nil }, "values2"},
		"axis2 value below min": {func(s *SweepSpec) { s.Values2 = []int{0} }, "values2"},
	}
	for name, tc := range cases {
		spec := tinySurfaceSpec()
		tc.mutate(spec)
		err := spec.Validate()
		if err == nil {
			t.Errorf("%s: accepted", name)
			continue
		}
		var specErr *SpecError
		if !errors.As(err, &specErr) {
			t.Errorf("%s: error %v is not a *SpecError", name, err)
			continue
		}
		if specErr.Field != tc.field {
			t.Errorf("%s: field %q, want %q", name, specErr.Field, tc.field)
		}
		if specErr.Spec != spec.Name {
			t.Errorf("%s: spec %q, want %q", name, specErr.Spec, spec.Name)
		}
	}
}

// TestSurfaceDeterministicAcrossWorkers pins the two-axis result
// byte-identical across runner fan-outs, like every other artifact.
func TestSurfaceDeterministicAcrossWorkers(t *testing.T) {
	spec := tinySurfaceSpec()
	o1 := tinyOptions()
	o1.Workers = 1
	r1, err := spec.RunFull(o1)
	if err != nil {
		t.Fatal(err)
	}
	o8 := tinyOptions()
	o8.Workers = 8
	r8, err := tinySurfaceSpec().RunFull(o8)
	if err != nil {
		t.Fatal(err)
	}
	if r1.LongCSV() != r8.LongCSV() {
		t.Fatal("two-axis LongCSV differs between -j1 and -j8")
	}
	j1, err := r1.JSON()
	if err != nil {
		t.Fatal(err)
	}
	j8, err := r8.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(j1) != string(j8) {
		t.Fatal("two-axis JSON differs between -j1 and -j8")
	}
}

// TestWorkloadSweepLatency runs the workload smoke preset and checks the
// request-latency percentiles surface everywhere a workload sweep
// reports: the Latency grid, the formatted table, and the long CSV.
func TestWorkloadSweepLatency(t *testing.T) {
	spec, ok := LookupPreset("wl-smoke")
	if !ok {
		t.Fatal("wl-smoke preset missing")
	}
	res, err := spec.RunFull(Options{Seed: 3, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	lat := res.Table.Latency
	if lat == nil {
		t.Fatal("workload sweep carries no Latency grid")
	}
	if len(lat) != len(res.Table.Rows) {
		t.Fatalf("%d latency rows, want %d", len(lat), len(res.Table.Rows))
	}
	for vi, row := range lat {
		for ci, s := range row {
			if s.N == 0 || s.P50 <= 0 {
				t.Fatalf("latency cell (%d,%d) empty: %+v", vi, ci, s)
			}
			if s.P50 > s.P90 || s.P90 > s.P99 {
				t.Fatalf("latency cell (%d,%d) percentiles unordered: %+v", vi, ci, s)
			}
		}
	}
	if txt := res.Table.Format(); !strings.Contains(txt, "request latency p50/p90/p99 (ms)") {
		t.Fatalf("formatted table lacks the latency block:\n%s", txt)
	}
	csv := res.LongCSV()
	if !strings.Contains(strings.SplitN(csv, "\n", 2)[0], ",p50_ms,p90_ms,p99_ms") {
		t.Fatalf("long CSV header lacks latency columns: %q", strings.SplitN(csv, "\n", 2)[0])
	}
	// Classic sweeps stay latency-free: zero grid, classic header.
	classic, err := tinySweepSpec().RunFull(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if classic.Table.Latency != nil {
		t.Fatal("classic sweep unexpectedly carries a Latency grid")
	}
	if strings.Contains(classic.LongCSV(), "p50_ms") {
		t.Fatal("classic long CSV unexpectedly carries latency columns")
	}
}
