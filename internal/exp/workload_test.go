package exp

import (
	"strings"
	"testing"
	"time"

	"ddio/internal/workload"
)

// skewSpec is the ISSUE's headline DSL workload: a skewed, mixed
// read/write stream with open Poisson arrivals.
func skewSpec() *workload.Spec {
	frac := 0.8
	return &workload.Spec{
		Name: "skew-open",
		Phases: []workload.Phase{{
			Pattern:      workload.PatternSkew,
			Requests:     96,
			Alpha:        1.2,
			ReadFraction: &frac,
			Arrival:      "poisson",
			RatePerSec:   2000,
		}},
	}
}

// traceSpec loads the checked-in sample trace.
func traceSpec(t *testing.T) *workload.Spec {
	t.Helper()
	s, err := workload.LoadTrace("../workload/testdata/sample.csv")
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestWorkloadAllMethods drives a replayed trace and a DSL-defined
// skewed open-arrival workload end to end through all three methods,
// with full byte verification.
func TestWorkloadAllMethods(t *testing.T) {
	specs := map[string]*workload.Spec{
		"trace": traceSpec(t),
		"skew":  skewSpec(),
	}
	for name, spec := range specs {
		for _, method := range []Method{TraditionalCaching, DiskDirected, DiskDirectedSort, TwoPhase} {
			cfg := smokeCfg()
			cfg.Method = method
			cfg.Workload = spec
			r, err := Run(cfg)
			if err != nil {
				t.Fatalf("%v/%s: %v", method, name, err)
			}
			if r.VerifyErrors > 0 {
				t.Errorf("%v/%s: %d verify errors", method, name, r.VerifyErrors)
			}
			if r.MBps <= 0 || r.MovedBytes <= 0 {
				t.Errorf("%v/%s: throughput %v over %d bytes", method, name, r.MBps, r.MovedBytes)
			}
			t.Logf("%v/%-5s %7.3f MB/s elapsed=%v moved=%d events=%d",
				method, name, r.MBps, r.Elapsed, r.MovedBytes, r.Events)
		}
	}
}

// TestWorkloadMultiPhase mixes collective, synthetic, and trace phases
// in one spec: phases run in order under every method.
func TestWorkloadMultiPhase(t *testing.T) {
	frac := 0.5
	spec := &workload.Spec{
		Name: "mixed",
		Phases: []workload.Phase{
			{Pattern: "rb"}, // collective whole-file read
			{Pattern: workload.PatternHotspot, Requests: 40, HotFraction: 0.1, HotWeight: 0.9,
				ReadFraction: &frac, Arrival: "closed", Think: 200 * time.Microsecond},
			{Pattern: workload.PatternZipf, Requests: 32, Alpha: 1.5, RecordSize: 4096},
			{Pattern: "wb"}, // collective whole-file write
		},
	}
	for _, method := range []Method{TraditionalCaching, DiskDirected, TwoPhase} {
		cfg := smokeCfg()
		cfg.Method = method
		cfg.Workload = spec
		r, err := Run(cfg)
		if err != nil {
			t.Fatalf("%v: %v", method, err)
		}
		if r.VerifyErrors > 0 {
			t.Errorf("%v: %d verify errors", method, r.VerifyErrors)
		}
		t.Logf("%v mixed %7.3f MB/s elapsed=%v events=%d", method, r.MBps, r.Elapsed, r.Events)
	}
}

// TestWorkloadDeterministic: identical seeds resolve and run to
// identical results, and distinct seeds perturb the sampled streams.
func TestWorkloadDeterministic(t *testing.T) {
	cfg := smokeCfg()
	cfg.Method = DiskDirectedSort
	cfg.Workload = skewSpec()
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Elapsed != b.Elapsed || a.Events != b.Events || a.MovedBytes != b.MovedBytes {
		t.Fatalf("same seed diverged: %v/%d/%d vs %v/%d/%d",
			a.Elapsed, a.Events, a.MovedBytes, b.Elapsed, b.Events, b.MovedBytes)
	}
	cfg.Seed = 99
	c, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.Elapsed == a.Elapsed && c.Events == a.Events {
		t.Errorf("different seed produced identical run (%v, %d events)", a.Elapsed, a.Events)
	}
}

// TestWorkloadSweepDeterministicAcrossWorkers: the wl-smoke CI preset
// must produce byte-identical tables and JSON for any worker count (the
// SVG figure is a pure function of the result, so it follows).
func TestWorkloadSweepDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) (string, []byte) {
		s, ok := LookupPreset("wl-smoke")
		if !ok {
			t.Fatal("wl-smoke preset missing")
		}
		res, err := s.RunFull(Options{Trials: 1, FileBytes: MiB, Seed: 42, Verify: true, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		data, err := res.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return res.Table.Format(), data
	}
	t8, j8 := run(8)
	t1, j1 := run(1)
	if t8 != t1 {
		t.Error("wl-smoke table differs between 8 workers and sequential")
	}
	if string(j8) != string(j1) {
		t.Error("wl-smoke JSON differs between 8 workers and sequential")
	}
	if !strings.Contains(t8, "req-per-sec") {
		t.Errorf("wl-smoke table missing the wlrate row label:\n%s", t8)
	}
}

// TestWorkloadTracedRunDeterministic: a traced trace-replay run is
// reproducible event for event — the replay resolves identically and
// the simulation fires the identical sequence.
func TestWorkloadTracedRunDeterministic(t *testing.T) {
	run := func() (*Result, string) {
		cfg := smokeCfg()
		cfg.Method = DiskDirectedSort
		cfg.Workload = traceSpec(t)
		res, rec, err := TracedRun(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		if err := rec.WriteJSONL(&b); err != nil {
			t.Fatal(err)
		}
		return res, b.String()
	}
	r1, t1 := run()
	r2, t2 := run()
	if r1.Elapsed != r2.Elapsed || r1.Events != r2.Events || r1.MovedBytes != r2.MovedBytes {
		t.Errorf("timing differs: %v/%d/%d vs %v/%d/%d",
			r1.Elapsed, r1.Events, r1.MovedBytes, r2.Elapsed, r2.Events, r2.MovedBytes)
	}
	if t1 != t2 {
		t.Error("identical trace-replay runs produced different traces")
	}
	if len(t1) == 0 {
		t.Error("trace-replay run recorded no events")
	}
}

// TestWLRateAxis: the wlrate axis re-rates every poisson phase on a
// clone per cell, leaves the template untouched, and demands a template
// with an open phase.
func TestWLRateAxis(t *testing.T) {
	tmpl := skewSpec()
	s := &SweepSpec{
		Name: "t", Title: "t", Axis: AxisWLRate, Values: []int{100, 400},
		Layout: "random-blocks", Methods: []string{"ddio"}, Patterns: []string{"rb"},
		Workload: tmpl,
	}
	_, cfgs, err := s.Expand(Options{Trials: 1, FileBytes: MiB, Seed: 1, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(cfgs) != 2 {
		t.Fatalf("%d cells", len(cfgs))
	}
	for i, want := range []float64{100, 400} {
		if got := cfgs[i].Workload.Phases[0].RatePerSec; got != want {
			t.Errorf("cell %d rate = %v, want %v", i, got, want)
		}
	}
	if tmpl.Phases[0].RatePerSec != 2000 {
		t.Errorf("axis mutated the shared template: %v", tmpl.Phases[0].RatePerSec)
	}
	closed := &SweepSpec{
		Name: "t", Title: "t", Axis: AxisWLRate, Values: []int{100},
		Layout: "random-blocks", Methods: []string{"ddio"}, Patterns: []string{"rb"},
		Workload: &workload.Spec{Phases: []workload.Phase{{Pattern: workload.PatternUniform, Requests: 4}}},
	}
	if err := closed.Validate(); err == nil {
		t.Error("wlrate axis without a poisson phase accepted")
	}
	if err := (&SweepSpec{
		Name: "t", Title: "t", Axis: AxisWLRate, Values: []int{100},
		Layout: "random-blocks", Methods: []string{"ddio"}, Patterns: []string{"rb"},
	}).Validate(); err == nil {
		t.Error("wlrate axis without a workload template accepted")
	}
}
