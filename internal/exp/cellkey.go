package exp

// cellkey.go canonicalizes one experiment cell — a fully resolved Config,
// whose Seed already encodes the trial index (trialSeed) — into a stable
// content hash. The serving layer (internal/serve) keys its completed-cell
// cache and its in-flight deduplication on this hash, so "a million users
// asking for Figure 5" collapse onto one simulation per cell: every run is
// a pure function of its Config, which makes the hash a sound cache key.
//
// The hash is computed over a canonical struct view with a fixed field
// order, not over caller-provided JSON, so it is invariant under JSON
// field reordering in request bodies by construction: two spec documents
// that resolve to the same Config hash identically no matter how their
// fields were ordered, and any change to a field that can influence the
// simulation (seed, shape, pattern, method, layout, disk model, tuning
// parameters, fault plan) changes the encoding and therefore the hash.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"time"

	"ddio/internal/core"
	"ddio/internal/fault"
	"ddio/internal/netsim"
	"ddio/internal/tcfs"
	"ddio/internal/twophase"
	"ddio/internal/workload"
)

// The substrate parameter structs are hashed through exact mirror types
// (same field names, types, and order) converted with a Go struct
// conversion, which the compiler only permits while the field sets match:
// adding a tuning knob to any of these structs fails this file's build
// until the hash is taught about it. Silently omitting a new knob from
// the key would serve stale cached results for runs the knob changes.
type (
	netKeyView struct {
		Width, Height int
		LinkBandwidth float64
		RouterDelay   time.Duration
		DMASetup      time.Duration
		HeaderBytes   int
		JitterMax     time.Duration
	}

	tcKeyView struct {
		RequestSendCPU time.Duration
		ReplyRecvCPU   time.Duration

		DispatchCPU    time.Duration
		ThreadCreate   time.Duration
		CacheAccessCPU time.Duration
		ReplySendCPU   time.Duration
		CopyPerByte    time.Duration

		BuffersPerDiskPerCP int
		PrefetchBlocks      int
		ServiceThreads      int

		StridedRequests bool

		Retry fault.RetryPolicy
	}

	ddKeyView struct {
		RequestCPU       time.Duration
		IOPStartCPU      time.Duration
		PlanPerBlockCPU  time.Duration
		MemputCPU        time.Duration
		MemgetCPU        time.Duration
		MemgetRemoteCPU  time.Duration
		GatherSegmentCPU time.Duration

		BuffersPerDisk int
		ServiceThreads int
		Presort        bool
		GatherScatter  bool
		Retry          fault.RetryPolicy
	}

	tpKeyView struct {
		PermuteMsgCPU time.Duration
		SegmentCPU    time.Duration
		CopyPerByte   time.Duration
	}
)

// Compile-time lockstep between the mirrors and their sources.
var (
	_ = netKeyView(netsim.Config{})
	_ = tcKeyView(tcfs.Params{})
	_ = ddKeyView(core.Params{})
	_ = tpKeyView(twophase.Params{})
)

// seekProbeDistances samples the disk model's seek curve at one short,
// two mid, and one full-stroke distance (the HP 97560 breakpoint is 383
// cylinders), so seek-curve ablations that keep the rest of the Spec
// unchanged still produce distinct cell keys.
var seekProbeDistances = [4]int{1, 16, 384, 1961}

// diskKeyView is the hashable image of a disk.Spec: every numeric
// parameter plus sampled points of the (unhashable) seek function.
type diskKeyView struct {
	Name                string
	Cylinders           int
	Heads               int
	SectorsPerTrack     int
	SectorSize          int
	RPM                 float64
	HeadSwitch          time.Duration
	TrackSkew           int
	CylinderSkew        int
	ControllerOverhead  time.Duration
	CacheSegmentSectors int
	SeekProbes          [4]time.Duration
}

// cellKeyView is the canonical encoding of a resolved Config. Field order
// is fixed by the struct; encoding/json emits struct fields in declaration
// order, so the byte encoding — and the hash — is deterministic. Trace is
// deliberately absent: tracing is passive (the run is bit-identical with
// or without a recorder), and the serving layer never serves a traced run
// from cache anyway, because the recorder itself is the product.
type cellKeyView struct {
	Method     string
	Pattern    string
	NCP        int
	NIOP       int
	NDisks     int
	FileBytes  int64
	BlockSize  int
	RecordSize int
	Layout     int
	Seed       int64
	Verify     bool

	Disk         diskKeyView
	DiskSched    string // scheduler name; FCFS when unset
	Net          netKeyView
	BusBandwidth float64
	BusOverhead  time.Duration
	BarrierCost  time.Duration

	TC tcKeyView
	DD ddKeyView
	TP tpKeyView

	// Faults is the plan verbatim (all fields are plain values). nil and
	// a zero plan hash differently even though they behave identically;
	// the split only costs a duplicate cache entry, never a wrong result.
	Faults *fault.Plan

	// Workload is the spec verbatim: every phase knob (pattern, request
	// count, record sizes, mix, arrival process, trace entries) feeds the
	// key, so two cells differing in any workload parameter never share a
	// cache slot. Same nil-vs-zero note as Faults.
	Workload *workload.Spec
}

// CellKey returns the canonical content hash of one resolved experiment
// cell: a hex SHA-256 over the Config's canonical encoding. Identical
// Configs — regardless of how their defining JSON was ordered — yield
// identical keys; any simulation-relevant difference (seed, trial, shape,
// method, pattern, layout, record size, disk model, substrate tuning,
// fault plan) yields a distinct encoding and therefore a distinct key.
func CellKey(cfg Config) string {
	sum := sha256.Sum256(cellKeyBytes(cfg))
	return hex.EncodeToString(sum[:])
}

// cellKeyBytes returns the canonical encoding CellKey hashes; tests pin
// its invariance and sensitivity properties directly on the bytes.
func cellKeyBytes(cfg Config) []byte {
	v := cellKeyView{
		Method:       cfg.Method.String(),
		Pattern:      cfg.Pattern,
		NCP:          cfg.NCP,
		NIOP:         cfg.NIOP,
		NDisks:       cfg.NDisks,
		FileBytes:    cfg.FileBytes,
		BlockSize:    cfg.BlockSize,
		RecordSize:   cfg.RecordSize,
		Layout:       int(cfg.Layout),
		Seed:         cfg.Seed,
		Verify:       cfg.Verify,
		DiskSched:    "fcfs",
		Net:          netKeyView(cfg.Net),
		BusBandwidth: cfg.BusBandwidth,
		BusOverhead:  cfg.BusOverhead,
		BarrierCost:  cfg.BarrierCost,
		TC:           tcKeyView(cfg.TC),
		DD:           ddKeyView(cfg.DD),
		TP:           tpKeyView(cfg.TP),
		Faults:       cfg.Faults,
		Workload:     cfg.Workload,
	}
	if cfg.DiskSched != nil {
		v.DiskSched = cfg.DiskSched.Name()
	}
	if d := cfg.Disk; d != nil {
		v.Disk = diskKeyView{
			Name: d.Name, Cylinders: d.Cylinders, Heads: d.Heads,
			SectorsPerTrack: d.SectorsPerTrack, SectorSize: d.SectorSize,
			RPM: d.RPM, HeadSwitch: d.HeadSwitch,
			TrackSkew: d.TrackSkew, CylinderSkew: d.CylinderSkew,
			ControllerOverhead:  d.ControllerOverhead,
			CacheSegmentSectors: d.CacheSegmentSectors,
		}
		if d.Seek != nil {
			for i, dist := range seekProbeDistances {
				v.Disk.SeekProbes[i] = d.Seek(dist)
			}
		}
	}
	b, err := json.Marshal(v)
	if err != nil {
		// Unreachable: the view holds only plain data.
		panic("exp: cell key encoding failed: " + err.Error())
	}
	return b
}
