package pfs

import (
	"bytes"
	"testing"
	"testing/quick"

	"ddio/internal/disk"
	"ddio/internal/sim"
)

func newDisks(t *testing.T, n int) []*disk.Disk {
	t.Helper()
	e := sim.NewEngine()
	t.Cleanup(e.Close)
	out := make([]*disk.Disk, n)
	for i := range out {
		out[i] = disk.New(e, "d", disk.HP97560(), nil, nil)
	}
	return out
}

func TestStripingRoundRobin(t *testing.T) {
	disks := newDisks(t, 4)
	f, err := NewFile(disks, 8192, 16, Contiguous, sim.NewRand(1))
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b < 16; b++ {
		if f.DiskOf(b) != b%4 {
			t.Fatalf("block %d on disk %d", b, f.DiskOf(b))
		}
	}
	if f.Size() != 16*8192 {
		t.Fatalf("size %d", f.Size())
	}
	if f.SectorsPerBlock() != 16 {
		t.Fatalf("sectors per block %d", f.SectorsPerBlock())
	}
}

func TestContiguousLayoutIsSequentialPerDisk(t *testing.T) {
	disks := newDisks(t, 4)
	f, _ := NewFile(disks, 8192, 64, Contiguous, sim.NewRand(1))
	for d := 0; d < 4; d++ {
		blocks := f.LocalBlocks(d)
		for i, b := range blocks {
			if f.LBN(b) != int64(i)*16 {
				t.Fatalf("disk %d block %d at LBN %d, want %d", d, b, f.LBN(b), i*16)
			}
		}
	}
}

func TestRandomLayoutIsPermutationOfSlots(t *testing.T) {
	disks := newDisks(t, 2)
	f, _ := NewFile(disks, 8192, 64, RandomBlocks, sim.NewRand(3))
	for d := 0; d < 2; d++ {
		seen := map[int64]bool{}
		sequential := true
		for i, b := range f.LocalBlocks(d) {
			lbn := f.LBN(b)
			if lbn%16 != 0 {
				t.Fatalf("unaligned LBN %d", lbn)
			}
			if seen[lbn] {
				t.Fatalf("disk %d: slot %d used twice", d, lbn)
			}
			seen[lbn] = true
			if lbn != int64(i)*16 {
				sequential = false
			}
		}
		if sequential {
			t.Fatalf("random layout of disk %d came out sequential", d)
		}
	}
}

func TestRandomLayoutVariesWithSeed(t *testing.T) {
	a, _ := NewFile(newDisks(t, 1), 8192, 32, RandomBlocks, sim.NewRand(1))
	b, _ := NewFile(newDisks(t, 1), 8192, 32, RandomBlocks, sim.NewRand(2))
	same := true
	for i := 0; i < 32; i++ {
		if a.LBN(i) != b.LBN(i) {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical layouts")
	}
}

func TestLocalBlocksUnevenDivision(t *testing.T) {
	disks := newDisks(t, 3)
	f, _ := NewFile(disks, 8192, 10, Contiguous, sim.NewRand(1))
	total := 0
	for d := 0; d < 3; d++ {
		n := len(f.LocalBlocks(d))
		total += n
	}
	if total != 10 {
		t.Fatalf("local blocks sum %d, want 10", total)
	}
	if len(f.LocalBlocks(0)) != 4 || len(f.LocalBlocks(2)) != 3 {
		t.Fatalf("distribution %d/%d/%d", len(f.LocalBlocks(0)), len(f.LocalBlocks(1)), len(f.LocalBlocks(2)))
	}
}

func TestPreloadReadBackRoundTrip(t *testing.T) {
	disks := newDisks(t, 4)
	f, _ := NewFile(disks, 8192, 20, RandomBlocks, sim.NewRand(5))
	f.Preload()
	got := f.ReadBack()
	if idx := VerifyImage(got, 0); idx >= 0 {
		t.Fatalf("image mismatch at offset %d", idx)
	}
}

func TestNewFileErrors(t *testing.T) {
	if _, err := NewFile(nil, 8192, 4, Contiguous, sim.NewRand(1)); err == nil {
		t.Error("no disks accepted")
	}
	disks := newDisks(t, 1)
	if _, err := NewFile(disks, 1000, 4, Contiguous, sim.NewRand(1)); err == nil {
		t.Error("non-sector-aligned block accepted")
	}
	// Too many blocks for one disk.
	if _, err := NewFile(disks, 8192, 1<<20, Contiguous, sim.NewRand(1)); err == nil {
		t.Error("oversized file accepted")
	}
}

func TestParseLayout(t *testing.T) {
	for _, c := range []struct {
		in   string
		want LayoutKind
	}{{"contiguous", Contiguous}, {"contig", Contiguous}, {"random", RandomBlocks}, {"random-blocks", RandomBlocks}} {
		got, err := ParseLayout(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseLayout(%q) = %v, %v", c.in, got, err)
		}
	}
	if _, err := ParseLayout("bogus"); err == nil {
		t.Error("bogus layout accepted")
	}
	if Contiguous.String() != "contiguous" || RandomBlocks.String() != "random-blocks" {
		t.Error("layout names")
	}
}

func TestImageDeterministicAndOffsetSensitive(t *testing.T) {
	a := Image(0, 64)
	b := Image(0, 64)
	if !bytes.Equal(a, b) {
		t.Fatal("image not deterministic")
	}
	c := Image(1, 64)
	if bytes.Equal(a, c) {
		t.Fatal("image insensitive to offset")
	}
	if VerifyImage(a, 0) != -1 {
		t.Fatal("self-verify failed")
	}
	a[10] ^= 0xFF
	if VerifyImage(a, 0) != 10 {
		t.Fatal("corruption not located")
	}
}

// Property: BlockImage(b) is exactly the corresponding slice of the
// whole-file image.
func TestQuickBlockImageConsistent(t *testing.T) {
	f := func(b uint8, szSel bool) bool {
		size := 512
		if szSel {
			size = 8192
		}
		blk := BlockImage(int(b), size)
		return VerifyImage(blk, int64(b)*int64(size)) == -1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
