package pfs

import "ddio/internal/sim"

// sampleSlots draws k distinct integers uniformly at random from [0, n),
// in the order a Fisher–Yates shuffle of [0, n) would emit its first k
// elements. It runs in O(k) time and space by keeping only the shuffled
// prefix and the displaced entries in a sparse map, instead of
// materializing (and permuting) all n slots the way rng.Perm(n)[:k]
// does. For a file of a few dozen blocks per disk on a ~165k-slot
// HP 97560, that turns layout setup from O(disk) into O(transfer).
func sampleSlots(r *sim.Rand, n int64, k int) []int64 {
	if int64(k) > n {
		panic("pfs: sample larger than population")
	}
	out := make([]int64, k)
	displaced := make(map[int64]int64, k)
	for i := int64(0); i < int64(k); i++ {
		j := i + r.Int63n(n-i)
		vj, ok := displaced[j]
		if !ok {
			vj = j
		}
		vi, ok := displaced[i]
		if !ok {
			vi = i
		}
		out[i] = vj
		displaced[j] = vi
	}
	return out
}
