// Package pfs provides the parallel-file abstraction shared by both file
// systems under study: a file declustered block by block across all
// disks (paper §4: "Files were striped across all disks, block by
// block"), with the physical placement of each disk's blocks governed by
// a layout policy — contiguous or random-blocks (§5).
package pfs

import (
	"fmt"

	"ddio/internal/disk"
	"ddio/internal/sim"
)

// LayoutKind selects the physical placement of file blocks on each disk.
type LayoutKind int

// Layouts from the paper's §5.
const (
	// Contiguous places a disk's file blocks in consecutive physical
	// blocks starting at sector zero.
	Contiguous LayoutKind = iota
	// RandomBlocks places each file block at an independently chosen
	// random physical block slot.
	RandomBlocks
)

// String returns the layout's display name.
func (k LayoutKind) String() string {
	switch k {
	case Contiguous:
		return "contiguous"
	case RandomBlocks:
		return "random-blocks"
	default:
		return fmt.Sprintf("LayoutKind(%d)", int(k))
	}
}

// ParseLayout converts a layout name to its kind.
func ParseLayout(s string) (LayoutKind, error) {
	switch s {
	case "contiguous", "contig":
		return Contiguous, nil
	case "random-blocks", "random":
		return RandomBlocks, nil
	}
	return 0, fmt.Errorf("pfs: unknown layout %q", s)
}

// File is a striped parallel file.
type File struct {
	BlockSize int          // bytes per file block
	NumBlocks int          // file length in blocks
	Disks     []*disk.Disk // stripe set; block b lives on disk b mod len

	sectorsPerBlock int64
	placement       []int64 // file block -> starting sector on its disk
}

// NewFile creates a file of numBlocks blocks of blockSize bytes striped
// over the given disks with the requested layout. rng seeds the
// random-blocks placement (one independent stream per disk).
func NewFile(disks []*disk.Disk, blockSize, numBlocks int, layout LayoutKind, rng *sim.Rand) (*File, error) {
	if len(disks) == 0 {
		return nil, fmt.Errorf("pfs: file needs at least one disk")
	}
	spec := disks[0].Spec
	if blockSize%spec.SectorSize != 0 {
		return nil, fmt.Errorf("pfs: block size %d not a multiple of sector size %d", blockSize, spec.SectorSize)
	}
	f := &File{
		BlockSize:       blockSize,
		NumBlocks:       numBlocks,
		Disks:           disks,
		sectorsPerBlock: int64(blockSize / spec.SectorSize),
		placement:       make([]int64, numBlocks),
	}
	slotsPerDisk := spec.TotalSectors() / f.sectorsPerBlock
	for d := range disks {
		nLocal := f.blocksOnDisk(d)
		if int64(nLocal) > slotsPerDisk {
			return nil, fmt.Errorf("pfs: %d blocks exceed disk capacity of %d slots", nLocal, slotsPerDisk)
		}
		var slots []int64
		switch layout {
		case Contiguous:
			slots = make([]int64, nLocal)
			for i := range slots {
				slots[i] = int64(i)
			}
		case RandomBlocks:
			r := rng.Stream(fmt.Sprintf("layout:disk%d", d))
			slots = sampleSlots(r, slotsPerDisk, nLocal)
		default:
			return nil, fmt.Errorf("pfs: unknown layout %v", layout)
		}
		i := 0
		for b := d; b < numBlocks; b += len(disks) {
			f.placement[b] = slots[i] * f.sectorsPerBlock
			i++
		}
	}
	return f, nil
}

// blocksOnDisk returns how many file blocks live on disk d.
func (f *File) blocksOnDisk(d int) int {
	n := f.NumBlocks / len(f.Disks)
	if d < f.NumBlocks%len(f.Disks) {
		n++
	}
	return n
}

// Size returns the file size in bytes.
func (f *File) Size() int64 { return int64(f.NumBlocks) * int64(f.BlockSize) }

// SectorsPerBlock returns the number of sectors per file block.
func (f *File) SectorsPerBlock() int64 { return f.sectorsPerBlock }

// DiskOf returns the index of the disk holding file block b.
func (f *File) DiskOf(b int) int { return b % len(f.Disks) }

// LBN returns the starting sector of file block b on its disk.
func (f *File) LBN(b int) int64 { return f.placement[b] }

// LocalBlocks returns the file blocks resident on disk d, in ascending
// file order.
func (f *File) LocalBlocks(d int) []int {
	out := make([]int, 0, f.blocksOnDisk(d))
	for b := d; b < f.NumBlocks; b += len(f.Disks) {
		out = append(out, b)
	}
	return out
}

// Preload writes the deterministic file image to the disks directly,
// without simulating any I/O time, to set up read experiments.
func (f *File) Preload() {
	for b := 0; b < f.NumBlocks; b++ {
		f.Disks[f.DiskOf(b)].WriteData(f.LBN(b), BlockImage(b, f.BlockSize))
	}
}

// ReadBack assembles the file's current content from the disks (no
// simulated time), for write verification.
func (f *File) ReadBack() []byte {
	out := make([]byte, f.Size())
	for b := 0; b < f.NumBlocks; b++ {
		data := f.Disks[f.DiskOf(b)].ReadData(f.LBN(b), f.sectorsPerBlock)
		copy(out[b*f.BlockSize:], data)
	}
	return out
}
