package pfs

// The deterministic file image: every byte of the file is a pure function
// of its offset, so any subset of any transfer can be verified without
// keeping a reference copy.

// ByteAt returns the image byte at file offset off.
func ByteAt(off int64) byte {
	v := uint64(off)*0x9E3779B97F4A7C15 + 0xD1B54A32D192ED03
	v ^= v >> 29
	return byte(v >> 24)
}

// Image returns the image bytes for file range [off, off+n).
func Image(off int64, n int) []byte {
	out := make([]byte, n)
	FillImage(out, off)
	return out
}

// FillImage writes the image for the range starting at off into dst.
func FillImage(dst []byte, off int64) {
	for i := range dst {
		dst[i] = ByteAt(off + int64(i))
	}
}

// BlockImage returns the image of file block b for the given block size.
func BlockImage(b, blockSize int) []byte {
	return Image(int64(b)*int64(blockSize), blockSize)
}

// VerifyImage reports the first mismatching index (or -1) comparing data
// against the image starting at file offset off.
func VerifyImage(data []byte, off int64) int {
	for i := range data {
		if data[i] != ByteAt(off+int64(i)) {
			return i
		}
	}
	return -1
}
