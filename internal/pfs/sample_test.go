package pfs

import (
	"testing"
	"testing/quick"

	"ddio/internal/disk"
	"ddio/internal/sim"
)

// Property: every sample is k unique values in [0, n), for arbitrary
// seeds and sizes.
func TestQuickSampleSlotsUniqueInRange(t *testing.T) {
	f := func(seed int64, nSel, kSel uint16) bool {
		n := int64(nSel)%100000 + 1
		k := int(int64(kSel) % (n + 1))
		out := sampleSlots(sim.NewRand(seed), n, k)
		if len(out) != k {
			return false
		}
		seen := make(map[int64]bool, k)
		for _, v := range out {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// A full-population sample is a permutation.
func TestSampleSlotsFullPermutation(t *testing.T) {
	const n = 1000
	out := sampleSlots(sim.NewRand(7), n, n)
	seen := make(map[int64]bool, n)
	for _, v := range out {
		if v < 0 || v >= n || seen[v] {
			t.Fatalf("not a permutation: %d", v)
		}
		seen[v] = true
	}
}

func TestSampleSlotsOverdrawPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("sample larger than population did not panic")
		}
	}()
	sampleSlots(sim.NewRand(1), 4, 5)
}

// Golden placement: the O(k) sampler is part of the experiment's
// deterministic seed contract, so a fixed seed must keep producing the
// same slots across refactors. Values are the HP 97560's 167580
// 8 KB-block slots; update them only with a deliberate seed-breaking
// change.
func TestSampleSlotsGolden(t *testing.T) {
	got := sampleSlots(sim.NewRand(1), 167580, 8)
	want := []int64{75290, 81956, 56307, 141218, 29253, 71950, 166032, 47095}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("slot %d: got %d, want %d (full: %v)", i, got[i], want[i], got)
		}
	}
	// And through NewFile's per-disk stream derivation, as experiments
	// actually consume it.
	rng := sim.NewRand(42)
	got = sampleSlots(rng.Stream("layout:disk0"), 167580, 8)
	want = []int64{41619, 4783, 128749, 19694, 18762, 118564, 88828, 91454}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("stream slot %d: got %d, want %d (full: %v)", i, got[i], want[i], got)
		}
	}
}

// BenchmarkNewFileRandom guards the O(transfer) setup claim: building a
// small random-blocks file on full-size HP 97560 disks must cost
// proportional to the file's dozen-odd blocks, not the ~165k block
// slots of the disk. Before the partial Fisher–Yates sampler this was
// ~2 ms/op (rng.Perm over every slot, per disk); now it is microseconds.
func BenchmarkNewFileRandom(b *testing.B) {
	e := sim.NewEngine()
	defer e.Close()
	disks := make([]*disk.Disk, 16)
	for i := range disks {
		disks[i] = disk.New(e, "d", disk.HP97560(), nil, nil)
	}
	rng := sim.NewRand(11)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewFile(disks, 8192, 128, RandomBlocks, rng); err != nil {
			b.Fatal(err)
		}
	}
}
