package trace

// Critical-path decomposition: split each file-system request's
// server-side latency window into where the time went. The spans are
// already in the trace as typed events — disk service intervals, retry
// backoffs, service-pool busy intervals — so the decomposition is a
// pure derivation, computed per request by intersecting its [start,
// end] window with the merged activity unions in priority order:
//
//	Disk    — some disk was servicing a media transfer
//	Retry   — else the owning server sat in a bounded-retry backoff
//	Service — else the server's service pool was executing work
//	Queue   — else nothing was moving: the request waited in a queue
//
// The four buckets partition the window exactly (Disk + Retry +
// Service + Queue == End − Start), pinned by the critical-path golden
// test. Shared resources are attributed to every request concurrently
// in flight — the decomposition answers "what was the system doing
// while this request waited", not "which microsecond belonged to whom".

import (
	"sort"
	"strings"
)

// CriticalPath is one request's latency decomposition, in virtual-time
// nanoseconds. Node and ID identify the request as its KindReqEnd event
// does.
type CriticalPath struct {
	Node  string `json:"node"`
	ID    int64  `json:"id"`
	Start int64  `json:"start_ns"`
	End   int64  `json:"end_ns"`

	Disk    int64 `json:"disk_ns"`    // disk media transfers in progress
	Retry   int64 `json:"retry_ns"`   // fault-recovery backoff at the server
	Service int64 `json:"service_ns"` // server pool executing (no disk active)
	Queue   int64 `json:"queue_ns"`   // nothing active: queueing/waiting
}

// intervalSet is a sorted, non-overlapping interval union.
type intervalSet []Interval

// mergeIntervals sorts ivs and merges overlapping/adjacent intervals
// into a canonical union. The input slice is reused.
func mergeIntervals(ivs []Interval) intervalSet {
	if len(ivs) == 0 {
		return nil
	}
	sort.Slice(ivs, func(i, j int) bool {
		if ivs[i].Start != ivs[j].Start {
			return ivs[i].Start < ivs[j].Start
		}
		return ivs[i].End < ivs[j].End
	})
	out := ivs[:1]
	for _, iv := range ivs[1:] {
		last := &out[len(out)-1]
		if iv.Start <= last.End {
			if iv.End > last.End {
				last.End = iv.End
			}
			continue
		}
		out = append(out, iv)
	}
	return out
}

// covers reports whether time t falls inside the union (half-open
// [Start, End) so adjacent intervals don't double-cover an edge).
func (s intervalSet) covers(t int64) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i].End > t })
	return i < len(s) && s[i].Start <= t
}

// edgesWithin appends the union's interval edges that fall strictly
// inside (lo, hi) to dst.
func (s intervalSet) edgesWithin(lo, hi int64, dst []int64) []int64 {
	first := sort.Search(len(s), func(i int) bool { return s[i].End > lo })
	for _, iv := range s[first:] {
		if iv.Start >= hi {
			break
		}
		if iv.Start > lo && iv.Start < hi {
			dst = append(dst, iv.Start)
		}
		if iv.End > lo && iv.End < hi {
			dst = append(dst, iv.End)
		}
	}
	return dst
}

// poolNode maps a service-pool name to the server node it belongs to:
// pools are named "<kind>:<node>" ("tc-svc:IOP0", "dd-work:IOP3"), and
// request events carry the bare node name.
func poolNode(pool string) string {
	if i := strings.LastIndexByte(pool, ':'); i >= 0 {
		return pool[i+1:]
	}
	return pool
}

// CriticalPaths decomposes every completed request (KindReqEnd) in the
// trace, in trace order. The result is deterministic: a pure function
// of the (deterministic) event stream.
func (r *Recorder) CriticalPaths() []CriticalPath {
	if r == nil {
		return nil
	}
	var diskIvs []Interval
	retryIvs := map[string][]Interval{}
	poolIvs := map[string][]Interval{}
	nReq := 0
	for _, e := range r.Events() {
		switch e.Kind {
		case KindDiskService:
			diskIvs = append(diskIvs, Interval{Start: e.T, End: e.End})
		case KindRetry:
			retryIvs[e.Node] = append(retryIvs[e.Node], Interval{Start: e.T, End: e.End})
		case KindPoolBusy:
			n := poolNode(e.Node)
			poolIvs[n] = append(poolIvs[n], Interval{Start: e.T, End: e.End})
		case KindReqEnd:
			nReq++
		}
	}
	if nReq == 0 {
		return nil
	}
	disk := mergeIntervals(diskIvs)
	retry := make(map[string]intervalSet, len(retryIvs))
	for n, ivs := range retryIvs {
		retry[n] = mergeIntervals(ivs)
	}
	pool := make(map[string]intervalSet, len(poolIvs))
	for n, ivs := range poolIvs {
		pool[n] = mergeIntervals(ivs)
	}

	out := make([]CriticalPath, 0, nReq)
	var edges []int64
	for _, e := range r.Events() {
		if e.Kind != KindReqEnd {
			continue
		}
		cp := CriticalPath{Node: e.Node, ID: e.ID, Start: e.T, End: e.End}
		if e.End > e.T {
			// Boundary sweep: cut the window at every union edge inside
			// it, then classify each elementary segment by its midpoint
			// in priority order. Segments partition the window, so the
			// four buckets sum to the latency exactly.
			edges = edges[:0]
			edges = append(edges, e.T, e.End)
			edges = disk.edgesWithin(e.T, e.End, edges)
			edges = retry[e.Node].edgesWithin(e.T, e.End, edges)
			edges = pool[e.Node].edgesWithin(e.T, e.End, edges)
			sort.Slice(edges, func(i, j int) bool { return edges[i] < edges[j] })
			for i := 1; i < len(edges); i++ {
				a, b := edges[i-1], edges[i]
				if b <= a {
					continue
				}
				mid := a + (b-a)/2
				switch {
				case disk.covers(mid):
					cp.Disk += b - a
				case retry[e.Node].covers(mid):
					cp.Retry += b - a
				case pool[e.Node].covers(mid):
					cp.Service += b - a
				default:
					cp.Queue += b - a
				}
			}
		}
		out = append(out, cp)
	}
	return out
}
