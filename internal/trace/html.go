package trace

// html.go is the explorable single-page trace viewer: WriteHTML embeds
// the trace's derived views — disk and service-pool timelines,
// utilization/bandwidth/queue-depth/occupancy time series, per-request
// critical paths — as one JSON blob inside a self-contained HTML page
// with inline CSS and vanilla JS. No external assets, no network, no
// timestamps: for a given trace the page is byte-deterministic, so it
// is golden-testable and the daemon can serve the identical bytes the
// CLI writes (pinned by the serve golden test).
//
// Scale guards keep the page loadable for big runs: timelines coalesce
// busy intervals separated by less than 1/2000 of the horizon (below
// one CSS pixel at page width), and the request table keeps the 512
// slowest requests (the interesting tail; the total is still shown).

import (
	"encoding/json"
	"fmt"
	"html"
	"io"
	"sort"

	"ddio/internal/stats"
)

// htmlMaxRequests caps the request table at the slowest N requests.
const htmlMaxRequests = 512

// htmlSpan is one busy interval in milliseconds.
type htmlSpan struct {
	S float64 `json:"s"`
	E float64 `json:"e"`
}

// htmlTimeline is one component row of the viewer.
type htmlTimeline struct {
	Name  string     `json:"name"`
	Util  float64    `json:"util"`
	Spans []htmlSpan `json:"spans"`
}

// htmlSeries is one time series: values at bin midpoints.
type htmlSeries struct {
	Name  string    `json:"name"`
	BinMs float64   `json:"bin_ms"`
	Y     []float64 `json:"y"`
}

// htmlRequest is one critical-path row, times in milliseconds.
type htmlRequest struct {
	Node    string  `json:"node"`
	ID      int64   `json:"id"`
	Start   float64 `json:"start_ms"`
	Latency float64 `json:"latency_ms"`
	Disk    float64 `json:"disk_ms"`
	Retry   float64 `json:"retry_ms"`
	Service float64 `json:"service_ms"`
	Queue   float64 `json:"queue_ms"`
}

// htmlData is the embedded payload; field order is the marshal order,
// so the blob is deterministic.
type htmlData struct {
	Title        string         `json:"title"`
	HorizonMs    float64        `json:"horizon_ms"`
	Events       int            `json:"events"`
	MeanDiskUtil float64        `json:"mean_disk_util"`
	Latency      stats.Summary  `json:"latency"`
	Disks        []htmlTimeline `json:"disks"`
	Pools        []htmlTimeline `json:"pools"`
	Series       []htmlSeries   `json:"series"`
	Requests     []htmlRequest  `json:"requests"`
	TotalReqs    int            `json:"total_requests"`
}

// coalesce merges busy intervals separated by less than gap ns —
// sub-pixel idle slivers that would only bloat the page.
func coalesce(ivs []Interval, gap int64) []Interval {
	if len(ivs) == 0 {
		return ivs
	}
	out := ivs[:1]
	for _, iv := range ivs[1:] {
		last := &out[len(out)-1]
		if iv.Start-last.End < gap {
			if iv.End > last.End {
				last.End = iv.End
			}
			continue
		}
		out = append(out, iv)
	}
	return out
}

// htmlTimelines converts Timelines to the wire rows, coalescing gaps
// below horizon/2000.
func htmlTimelines(tls []Timeline, horizon int64) []htmlTimeline {
	gap := horizon / 2000
	out := make([]htmlTimeline, len(tls))
	for i, tl := range tls {
		row := htmlTimeline{Name: tl.Name, Util: tl.Util, Spans: []htmlSpan{}}
		for _, iv := range coalesce(tl.Busy, gap) {
			row.Spans = append(row.Spans, htmlSpan{S: float64(iv.Start) / 1e6, E: float64(iv.End) / 1e6})
		}
		out[i] = row
	}
	return out
}

// WriteHTML writes the self-contained trace viewer page.
func (r *Recorder) WriteHTML(w io.Writer, title string) error {
	horizon := r.End()
	d := htmlData{
		Title:        title,
		HorizonMs:    float64(horizon) / 1e6,
		Events:       r.Len(),
		MeanDiskUtil: r.MeanDiskUtilization(horizon),
		Latency:      r.RequestLatencies(),
		Disks:        htmlTimelines(r.DiskTimelines(horizon), horizon),
		Pools:        htmlTimelines(r.PoolTimelines(horizon), horizon),
		Requests:     []htmlRequest{},
	}
	util := r.UtilizationSeries(0)
	bw := r.BandwidthSeries(0)
	for i := range bw.Y {
		bw.Y[i] /= 1 << 20 // bytes/s → MiB/s
	}
	bw.Name = "disk bandwidth (MB/s)"
	occ := r.OccupancySeries(0)
	d.Series = append(d.Series, toHTMLSeries(util), toHTMLSeries(bw), toHTMLSeries(occ))
	for _, qs := range r.QueueDepthSeries(0) {
		d.Series = append(d.Series, toHTMLSeries(qs))
	}

	paths := r.CriticalPaths()
	d.TotalReqs = len(paths)
	// Keep the slowest requests, deterministically ordered: duration
	// desc, then node, id, start asc.
	sort.SliceStable(paths, func(i, j int) bool {
		di, dj := paths[i].End-paths[i].Start, paths[j].End-paths[j].Start
		if di != dj {
			return di > dj
		}
		if paths[i].Node != paths[j].Node {
			return paths[i].Node < paths[j].Node
		}
		if paths[i].ID != paths[j].ID {
			return paths[i].ID < paths[j].ID
		}
		return paths[i].Start < paths[j].Start
	})
	if len(paths) > htmlMaxRequests {
		paths = paths[:htmlMaxRequests]
	}
	for _, p := range paths {
		d.Requests = append(d.Requests, htmlRequest{
			Node:    p.Node,
			ID:      p.ID,
			Start:   float64(p.Start) / 1e6,
			Latency: float64(p.End-p.Start) / 1e6,
			Disk:    float64(p.Disk) / 1e6,
			Retry:   float64(p.Retry) / 1e6,
			Service: float64(p.Service) / 1e6,
			Queue:   float64(p.Queue) / 1e6,
		})
	}

	blob, err := json.Marshal(&d) // json.Marshal escapes <>& — safe inside <script>
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, htmlPage, html.EscapeString(title), blob); err != nil {
		return err
	}
	return nil
}

// toHTMLSeries converts a Series to wire form (bin in ms).
func toHTMLSeries(s Series) htmlSeries {
	y := s.Y
	if y == nil {
		y = []float64{}
	}
	return htmlSeries{Name: s.Name, BinMs: float64(s.Bin) / 1e6, Y: y}
}

// htmlPage is the viewer shell: %s slots are the escaped title and the
// JSON payload. Everything else is constant, so page bytes are a pure
// function of the trace.
const htmlPage = `<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>%s — ddio trace</title>
<style>
:root{--surface:#fcfcfb;--ink:#0b0b0b;--ink2:#52514e;--grid:#e5e4e0;
--blue:#2a78d6;--orange:#eb6834;--aqua:#1baf7a;--yellow:#eda100;--magenta:#e87ba4;--green:#008300}
body{background:var(--surface);color:var(--ink);font-family:ui-sans-serif,system-ui,'Helvetica Neue',Arial,sans-serif;
margin:24px auto;max-width:1080px;padding:0 16px;font-size:14px}
h1{font-size:18px;margin:0 0 4px}
h2{font-size:14px;margin:28px 0 8px;border-bottom:1px solid var(--grid);padding-bottom:4px}
.sub{color:var(--ink2);font-size:12px;margin-bottom:16px}
.row{display:flex;align-items:center;margin:3px 0}
.rl{width:110px;text-align:right;padding-right:8px;color:var(--ink2);font-size:11px;
white-space:nowrap;overflow:hidden;text-overflow:ellipsis}
.track{position:relative;flex:1;height:16px;background:var(--grid);border-radius:2px;overflow:hidden}
.span{position:absolute;top:0;height:100%%;background:var(--blue)}
.pool .span{background:var(--aqua)}
.band{position:absolute;top:0;height:100%%;background:rgba(235,104,52,.35);display:none;pointer-events:none}
.ru{width:48px;padding-left:8px;font-size:11px}
svg{display:block}
table{border-collapse:collapse;width:100%%;font-size:12px}
th,td{text-align:right;padding:3px 8px;border-bottom:1px solid var(--grid)}
th{color:var(--ink2);font-weight:600;cursor:default}
td:first-child,th:first-child{text-align:left}
tbody tr{cursor:pointer}
tbody tr:hover{background:#f2f1ee}
tbody tr.sel{background:#fbe8de}
.stack{display:inline-flex;width:140px;height:10px;border-radius:2px;overflow:hidden;vertical-align:middle}
.stack i{display:block;height:100%%}
.legend{color:var(--ink2);font-size:11px;margin:6px 0 12px}
.legend i{display:inline-block;width:10px;height:10px;border-radius:2px;margin:0 4px 0 12px;vertical-align:-1px}
.note{color:var(--ink2);font-size:11px;margin-top:6px}
</style>
</head>
<body>
<h1 id="title"></h1>
<div class="sub" id="summary"></div>
<h2>Disk timelines</h2>
<div id="disks"></div>
<h2>Service pools</h2>
<div id="pools" class="pool"></div>
<h2>Time series</h2>
<div id="series"></div>
<h2 id="reqhead">Requests</h2>
<div class="legend">critical path:
<i style="background:var(--blue)"></i>disk <i style="background:var(--orange)"></i>retry
<i style="background:var(--aqua)"></i>service <i style="background:var(--grid)"></i>queue
— click a row to highlight its window on the timelines</div>
<table id="reqs"><thead><tr>
<th>server</th><th>id</th><th>start (ms)</th><th>latency (ms)</th>
<th>disk</th><th>retry</th><th>service</th><th>queue</th><th>decomposition</th>
</tr></thead><tbody></tbody></table>
<div class="note" id="reqnote"></div>
<script id="data" type="application/json">%s</script>
<script>
"use strict";
const D = JSON.parse(document.getElementById("data").textContent);
const H = D.horizon_ms > 0 ? D.horizon_ms : 1;
const fmt = (v, d) => v.toLocaleString("en-US", {minimumFractionDigits: d, maximumFractionDigits: d});
document.getElementById("title").textContent = D.title;
document.getElementById("summary").textContent =
  D.events.toLocaleString("en-US") + " events over " + fmt(H, 2) + " ms — mean disk utilization " +
  fmt(D.mean_disk_util * 100, 0) + "%% — " + D.total_requests.toLocaleString("en-US") + " requests" +
  (D.latency.n ? ", latency p50/p90/p99 " + fmt((D.latency.p50 || 0) * 1e3, 2) + "/" +
   fmt((D.latency.p90 || 0) * 1e3, 2) + "/" + fmt((D.latency.p99 || 0) * 1e3, 2) + " ms" : "");

function timelines(el, rows) {
  for (const r of rows) {
    const div = document.createElement("div");
    div.className = "row";
    const lbl = document.createElement("span");
    lbl.className = "rl"; lbl.textContent = r.name; lbl.title = r.name;
    const tr = document.createElement("span");
    tr.className = "track";
    for (const sp of r.spans) {
      const s = document.createElement("i");
      s.className = "span";
      s.style.left = (sp.s / H * 100) + "%%";
      s.style.width = Math.max((sp.e - sp.s) / H * 100, 0.05) + "%%";
      tr.appendChild(s);
    }
    const band = document.createElement("i");
    band.className = "band"; tr.appendChild(band);
    const u = document.createElement("span");
    u.className = "ru"; u.textContent = fmt(r.util * 100, 0) + "%%";
    div.append(lbl, tr, u);
    el.appendChild(div);
  }
}
timelines(document.getElementById("disks"), D.disks);
timelines(document.getElementById("pools"), D.pools);

const palette = ["#2a78d6", "#eb6834", "#1baf7a", "#eda100", "#e87ba4", "#008300"];
function chart(s, color) {
  const W = 1040, Hc = 90, L = 46, B = 14;
  const max = Math.max(...s.y, 1e-12);
  const pts = s.y.map((v, i) =>
    (L + (i + 0.5) * s.bin_ms / H * (W - L - 4)).toFixed(1) + "," +
    (4 + (1 - v / max) * (Hc - B - 8)).toFixed(1)).join(" ");
  const div = document.createElement("div");
  div.innerHTML = '<svg viewBox="0 0 ' + W + ' ' + Hc + '" width="100%%">' +
    '<line x1="' + L + '" y1="' + (Hc - B) + '" x2="' + (W - 4) + '" y2="' + (Hc - B) + '" stroke="#e5e4e0"/>' +
    '<text x="' + (L - 6) + '" y="10" text-anchor="end" font-size="9" fill="#52514e">' + fmt(max, 2) + "</text>" +
    '<text x="' + (L - 6) + '" y="' + (Hc - B) + '" text-anchor="end" font-size="9" fill="#52514e">0</text>' +
    '<text x="' + (W - 4) + '" y="' + (Hc - 2) + '" text-anchor="end" font-size="9" fill="#52514e">' +
    s.name + " — " + fmt(H, 1) + " ms</text>" +
    '<polyline fill="none" stroke="' + color + '" stroke-width="1.5" points="' + pts + '"/></svg>';
  document.getElementById("series").appendChild(div);
}
D.series.forEach((s, i) => chart(s, palette[i %% palette.length]));

document.getElementById("reqhead").textContent =
  "Requests — " + D.requests.length.toLocaleString("en-US") +
  (D.total_requests > D.requests.length ? " slowest of " + D.total_requests.toLocaleString("en-US") : "") +
  " (by latency)";
document.getElementById("reqnote").textContent =
  D.requests.length ? "decomposition: what the system was doing during each request's window" : "no requests traced";
const tbody = document.querySelector("#reqs tbody");
const colors = {disk_ms: "var(--blue)", retry_ms: "var(--orange)", service_ms: "var(--aqua)", queue_ms: "var(--grid)"};
for (const r of D.requests) {
  const tr = document.createElement("tr");
  const stack = Object.keys(colors).map(k => {
    const f = r.latency_ms > 0 ? r[k] / r.latency_ms * 100 : 0;
    return '<i style="width:' + f.toFixed(2) + '%%;background:' + colors[k] + '"></i>';
  }).join("");
  tr.innerHTML = "<td>" + r.node + "</td><td>" + r.id + "</td><td>" + fmt(r.start_ms, 3) +
    "</td><td>" + fmt(r.latency_ms, 3) + "</td><td>" + fmt(r.disk_ms, 3) + "</td><td>" +
    fmt(r.retry_ms, 3) + "</td><td>" + fmt(r.service_ms, 3) + "</td><td>" + fmt(r.queue_ms, 3) +
    '</td><td><span class="stack">' + stack + "</span></td>";
  tr.addEventListener("click", () => {
    const was = tr.classList.contains("sel");
    tbody.querySelectorAll("tr.sel").forEach(x => x.classList.remove("sel"));
    document.querySelectorAll(".band").forEach(b => b.style.display = "none");
    if (was) return;
    tr.classList.add("sel");
    document.querySelectorAll(".band").forEach(b => {
      b.style.left = (r.start_ms / H * 100) + "%%";
      b.style.width = Math.max(r.latency_ms / H * 100, 0.1) + "%%";
      b.style.display = "block";
    });
  });
  tbody.appendChild(tr);
}
</script>
</body>
</html>
`
