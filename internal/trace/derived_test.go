package trace

// derived_test.go covers the viewer-feeding derived views — queue-depth
// percentile series, occupancy, pool timelines, critical paths, the
// HTML emitter — including the edge cases an empty or minimal trace
// exercises: no events, zero horizon, single-event timelines.

import (
	"strings"
	"testing"
)

func TestDerivedSeriesEmptyRecorder(t *testing.T) {
	r := New()
	qs := r.QueueDepthSeries(0)
	if len(qs) != 3 {
		t.Fatalf("%d queue series, want 3", len(qs))
	}
	for _, s := range qs {
		if len(s.Y) != 1 || s.Y[0] != 0 {
			t.Fatalf("empty-trace series %q = %v, want one zero bin", s.Name, s.Y)
		}
	}
	occ := r.OccupancySeries(0)
	if len(occ.Y) != 1 || occ.Y[0] != 0 {
		t.Fatalf("empty occupancy = %v", occ.Y)
	}
	if tls := r.PoolTimelines(0); tls != nil {
		t.Fatalf("empty pool timelines = %v", tls)
	}
	if cp := r.CriticalPaths(); cp != nil {
		t.Fatalf("empty critical paths = %v", cp)
	}
	var nilRec *Recorder
	if cp := nilRec.CriticalPaths(); cp != nil {
		t.Fatalf("nil critical paths = %v", cp)
	}
	if tls := nilRec.PoolTimelines(0); tls != nil {
		t.Fatalf("nil pool timelines = %v", tls)
	}
}

// TestDerivedSeriesShortHorizon pins the single-event / tiny-horizon
// edges: one instantaneous sample still yields one bin, and a
// zero-duration trace does not divide by zero anywhere.
func TestDerivedSeriesShortHorizon(t *testing.T) {
	r := New()
	r.DiskQueue("d0", 0, 3) // single event at t=0: horizon 0
	qs := r.QueueDepthSeries(0)
	for _, s := range qs {
		if len(s.Y) != 1 || s.Y[0] != 3 {
			t.Fatalf("single-sample series %q = %v, want [3]", s.Name, s.Y)
		}
	}
	r2 := New()
	r2.PoolBusy("tc-svc:IOP0", 0, 0) // zero-length busy span
	tls := r2.PoolTimelines(0)
	if len(tls) != 1 || tls[0].Util != 0 {
		t.Fatalf("zero-horizon pool timeline = %+v", tls)
	}
	var sb strings.Builder
	if err := r2.WriteHTML(&sb, "tiny"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"horizon_ms":0`) {
		t.Fatal("zero-horizon page lacks horizon_ms 0")
	}
}

func TestQueueDepthSeriesCarryForward(t *testing.T) {
	r := New()
	r.DiskQueue("d0", 100, 4)
	r.DiskQueue("d0", 950, 2)
	qs := r.QueueDepthSeries(100) // horizon 950 → 10 bins
	p50 := qs[0]
	if len(p50.Y) != 10 {
		t.Fatalf("%d bins, want 10", len(p50.Y))
	}
	want := []float64{0, 4, 4, 4, 4, 4, 4, 4, 4, 2}
	for i, v := range p50.Y {
		if v != want[i] {
			t.Fatalf("p50 bin %d = %v, want %v (carry-forward)", i, p50.Y[i], want[i])
		}
	}
	// With several samples in one bin the three series diverge.
	r2 := New()
	for d := 1; d <= 10; d++ {
		r2.DiskQueue("d0", int64(d), d)
	}
	r2.DiskQueue("d0", 100, 1)
	qs2 := r2.QueueDepthSeries(50)
	if p50, p99 := qs2[0].Y[0], qs2[2].Y[0]; p50 >= p99 {
		t.Fatalf("p50 %v >= p99 %v over spread samples", p50, p99)
	}
}

func TestOccupancySeriesFractionAndCarry(t *testing.T) {
	r := New()
	r.Buffer("IOP0", 100, 10, 20) // 0.5
	r.Buffer("IOP1", 150, 20, 20) // 1.0 — same bin, mean 0.75
	r.Buffer("IOP0", 950, 5, 20)  // 0.25 in the last bin
	r.Buffer("IOP0", 500, 7, 0)   // zero capacity: skipped
	occ := r.OccupancySeries(100) // horizon 950 → 10 bins
	if len(occ.Y) != 10 {
		t.Fatalf("%d bins, want 10", len(occ.Y))
	}
	if occ.Y[1] != 0.75 {
		t.Fatalf("bin 1 = %v, want 0.75", occ.Y[1])
	}
	if occ.Y[5] != 0.75 {
		t.Fatalf("bin 5 = %v, want 0.75 carried forward past the skipped sample", occ.Y[5])
	}
	if occ.Y[9] != 0.25 {
		t.Fatalf("bin 9 = %v, want 0.25", occ.Y[9])
	}
}

func TestPoolTimelinesMergeOverlap(t *testing.T) {
	r := New()
	r.PoolBusy("tc-svc:IOP0", 0, 400)
	r.PoolBusy("tc-svc:IOP0", 200, 600) // overlaps → one merged span
	r.PoolBusy("tc-svc:IOP0", 800, 900)
	r.PoolBusy("tc-svc:IOP1", 100, 200)
	tls := r.PoolTimelines(1000)
	if len(tls) != 2 {
		t.Fatalf("%d pools, want 2", len(tls))
	}
	if len(tls[0].Busy) != 2 || tls[0].Busy[0] != (Interval{0, 600}) || tls[0].Busy[1] != (Interval{800, 900}) {
		t.Fatalf("merged spans %v", tls[0].Busy)
	}
	if tls[0].Util != 0.7 {
		t.Fatalf("util %v, want 0.7", tls[0].Util)
	}
	if tls[1].Name != "tc-svc:IOP1" {
		t.Fatalf("pool order %q", tls[1].Name)
	}
}

// TestCriticalPathPartition pins the decomposition on a hand-built
// request: the four buckets land on the constructed spans and always
// sum to the end-to-end latency.
func TestCriticalPathPartition(t *testing.T) {
	r := New()
	r.RequestEnd("IOP0", 7, 0, 1000)
	r.DiskService("d0", 200, 400, false, 8192, 1) // Disk: [200,400)
	r.PoolBusy("tc-svc:IOP0", 100, 500)           // Service: [100,200)+[400,500)
	r.Retry("IOP0", 600, 700, 1)                  // Retry: [600,700)
	cps := r.CriticalPaths()
	if len(cps) != 1 {
		t.Fatalf("%d paths, want 1", len(cps))
	}
	p := cps[0]
	if p.Node != "IOP0" || p.ID != 7 {
		t.Fatalf("identity %s/%d", p.Node, p.ID)
	}
	if p.Disk != 200 || p.Retry != 100 || p.Service != 200 || p.Queue != 500 {
		t.Fatalf("decomposition disk=%d retry=%d service=%d queue=%d, want 200/100/200/500",
			p.Disk, p.Retry, p.Service, p.Queue)
	}
	if sum := p.Disk + p.Retry + p.Service + p.Queue; sum != p.End-p.Start {
		t.Fatalf("buckets sum %d != latency %d", sum, p.End-p.Start)
	}
}

// TestCriticalPathNodeScoping pins that retries and pool activity
// attribute only to requests on the same server node.
func TestCriticalPathNodeScoping(t *testing.T) {
	r := New()
	r.RequestEnd("IOP0", 1, 0, 100)
	r.RequestEnd("IOP1", 2, 0, 100)
	r.Retry("IOP0", 20, 40, 1)
	r.PoolBusy("dd-work:IOP1", 50, 80)
	cps := r.CriticalPaths()
	if len(cps) != 2 {
		t.Fatalf("%d paths, want 2", len(cps))
	}
	byNode := map[string]CriticalPath{}
	for _, p := range cps {
		byNode[p.Node] = p
	}
	if p := byNode["IOP0"]; p.Retry != 20 || p.Service != 0 {
		t.Fatalf("IOP0 retry=%d service=%d, want 20/0", p.Retry, p.Service)
	}
	if p := byNode["IOP1"]; p.Retry != 0 || p.Service != 30 {
		t.Fatalf("IOP1 retry=%d service=%d, want 0/30", p.Retry, p.Service)
	}
}

func TestNewFilteredKeepsOnlyListedKinds(t *testing.T) {
	r := NewFiltered(KindReqEnd)
	r.DiskService("d0", 0, 10, false, 8192, 1)
	r.DiskQueue("d0", 0, 1)
	r.NetMsg("CP0", "IOP0", 5, 64)
	r.RequestEnd("IOP0", 1, 0, 10)
	if r.Len() != 1 || r.Events()[0].Kind != KindReqEnd {
		t.Fatalf("filtered recorder kept %d events: %+v", r.Len(), r.Events())
	}
	if lat := r.RequestLatencies(); lat.N != 1 {
		t.Fatalf("latencies over filtered trace: %+v", lat)
	}
	// No kinds = keep everything, exactly like New.
	all := NewFiltered()
	all.DiskQueue("d0", 0, 1)
	all.RequestEnd("IOP0", 1, 0, 10)
	if all.Len() != 2 {
		t.Fatalf("unfiltered NewFiltered kept %d events, want 2", all.Len())
	}
}

// TestWriteHTMLDeterministicAndSelfContained pins the viewer page: two
// emissions of the same trace are byte-identical, the payload carries
// every section, and the page references no external assets.
func TestWriteHTMLDeterministicAndSelfContained(t *testing.T) {
	build := func() *Recorder {
		r := New()
		r.RegisterDisk("d0")
		r.DiskService("d0", 100, 400, false, 8192, 1)
		r.DiskQueue("d0", 100, 2)
		r.PoolBusy("tc-svc:IOP0", 50, 450)
		r.Buffer("IOP0", 200, 10, 20)
		r.RequestEnd("IOP0", 1, 0, 500)
		r.Retry("IOP0", 420, 450, 1)
		return r
	}
	var a, b strings.Builder
	if err := build().WriteHTML(&a, "t <&> title"); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteHTML(&b, "t <&> title"); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("HTML viewer output is not deterministic")
	}
	page := a.String()
	for _, want := range []string{
		"<title>t &lt;&amp;&gt; title — ddio trace</title>", // escaped title
		`"total_requests":1`,
		`"disks":[{"name":"d0"`,
		`"pools":[{"name":"tc-svc:IOP0"`,
		`"queue depth p50"`,
		`"cache occupancy"`,
		`"disk_ms"`,
	} {
		if !strings.Contains(page, want) {
			t.Errorf("page lacks %q", want)
		}
	}
	for _, banned := range []string{"http://", "https://", "<script src", "<link"} {
		if strings.Contains(page, banned) {
			t.Errorf("page references external asset: %q", banned)
		}
	}
	// json.Marshal's <>& escaping keeps the payload from closing its own
	// script tag: the raw title "<&>" must appear escaped in the blob.
	if strings.Contains(page, `"title":"t <`) {
		t.Error("payload embeds unescaped '<' inside the script tag")
	}
	var empty strings.Builder
	if err := New().WriteHTML(&empty, "empty"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(empty.String(), `"total_requests":0`) {
		t.Fatal("empty-trace page malformed")
	}
}
