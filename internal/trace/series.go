package trace

// Derived views over a raw trace: per-disk busy timelines, utilization
// and bandwidth time-series, request-latency statistics, and per-link
// message totals. All derivations are deterministic — component order
// is first appearance in the (deterministic) trace — so plots and
// golden files built on them are stable run-to-run.

import (
	"ddio/internal/stats"
)

// Interval is one busy span [Start, End] in virtual-time nanoseconds.
type Interval struct {
	Start, End int64
}

// Timeline is one component's busy intervals in trace order, plus its
// utilization over the observed span.
type Timeline struct {
	Name string     // component name ("d0", ...)
	Busy []Interval // non-overlapping service intervals, in time order
	Util float64    // sum(Busy) / horizon, set by DiskTimelines
}

// Series is one named time-series: Y[i] is the value of bin i, where
// bin i covers [i*Bin, (i+1)*Bin) ns.
type Series struct {
	Name string
	Bin  int64 // bin width, ns
	Y    []float64
}

// End returns the time of the last event edge in the trace (the natural
// plotting horizon), 0 for an empty trace.
func (r *Recorder) End() int64 {
	var end int64
	for _, e := range r.Events() {
		if e.T > end {
			end = e.T
		}
		if e.End > end {
			end = e.End
		}
	}
	return end
}

// DiskTimelines returns one Timeline per disk — the registered disks
// (see RegisterDisk) in registration order, idle ones included, plus
// any unregistered disk that recorded service intervals in
// first-appearance order — with Util computed over [0, horizon].
// horizon <= 0 uses End().
func (r *Recorder) DiskTimelines(horizon int64) []Timeline {
	if r == nil {
		return nil
	}
	if horizon <= 0 {
		horizon = r.End()
	}
	index := map[string]int{}
	var tls []Timeline
	for _, name := range r.disks {
		index[name] = len(tls)
		tls = append(tls, Timeline{Name: name})
	}
	for _, e := range r.Events() {
		if e.Kind != KindDiskService {
			continue
		}
		i, ok := index[e.Node]
		if !ok {
			i = len(tls)
			index[e.Node] = i
			tls = append(tls, Timeline{Name: e.Node})
		}
		tls[i].Busy = append(tls[i].Busy, Interval{Start: e.T, End: e.End})
	}
	for i := range tls {
		var busy int64
		for _, iv := range tls[i].Busy {
			busy += iv.End - iv.Start
		}
		if horizon > 0 {
			tls[i].Util = float64(busy) / float64(horizon)
		}
	}
	return tls
}

// MeanDiskUtilization returns the mean of the per-disk utilizations
// over [0, horizon] (horizon <= 0 uses End()); 0 when no disk activity
// was traced. This is the number behind the paper's "disk-directed I/O
// keeps the disks busy" claim: on the same workload it is high for the
// disk-directed file system and low for traditional caching.
func (r *Recorder) MeanDiskUtilization(horizon int64) float64 {
	tls := r.DiskTimelines(horizon)
	if len(tls) == 0 {
		return 0
	}
	var sum float64
	for _, tl := range tls {
		sum += tl.Util
	}
	return sum / float64(len(tls))
}

// UtilizationSeries returns aggregate disk utilization per time bin:
// the busy time of all disks inside each bin divided by bin width times
// the disk count (1.0 = every disk busy for the whole bin). bin <= 0
// picks 1/100 of the horizon.
func (r *Recorder) UtilizationSeries(bin int64) Series {
	horizon := r.End()
	if bin <= 0 {
		bin = horizon / 100
		if bin <= 0 {
			bin = 1
		}
	}
	tls := r.DiskTimelines(horizon)
	s := Series{Name: "disk utilization", Bin: bin, Y: make([]float64, numBins(horizon, bin))}
	if len(tls) == 0 {
		return s
	}
	for _, tl := range tls {
		for _, iv := range tl.Busy {
			spread(s.Y, bin, iv.Start, iv.End, float64(iv.End-iv.Start))
		}
	}
	for i := range s.Y {
		s.Y[i] /= float64(binWidth(i, horizon, bin)) * float64(len(tls))
	}
	return s
}

// numBins returns how many bins of width bin cover [0, horizon].
func numBins(horizon, bin int64) int {
	n := int((horizon + bin - 1) / bin)
	if n < 1 {
		n = 1
	}
	return n
}

// binWidth returns the covered width of bin i: bin for interior bins,
// the remainder for the final bin clipped by the horizon.
func binWidth(i int, horizon, bin int64) int64 {
	w := horizon - int64(i)*bin
	if w > bin || w <= 0 {
		w = bin
	}
	return w
}

// BandwidthSeries returns aggregate disk bandwidth per time bin in
// bytes/s, attributing each service interval's bytes proportionally to
// the bins it overlaps. bin <= 0 picks 1/100 of the horizon.
func (r *Recorder) BandwidthSeries(bin int64) Series {
	horizon := r.End()
	if bin <= 0 {
		bin = horizon / 100
		if bin <= 0 {
			bin = 1
		}
	}
	s := Series{Name: "disk bandwidth", Bin: bin, Y: make([]float64, numBins(horizon, bin))}
	for _, e := range r.Events() {
		if e.Kind != KindDiskService || e.Bytes == 0 {
			continue
		}
		spread(s.Y, bin, e.T, e.End, float64(e.Bytes))
	}
	for i := range s.Y {
		s.Y[i] /= float64(binWidth(i, horizon, bin)) / 1e9
	}
	return s
}

// spread adds total to the bins overlapped by [start, end],
// proportionally to the overlap. A zero-length interval credits its
// whole weight to the bin containing it.
func spread(bins []float64, bin, start, end int64, total float64) {
	if end < start {
		return
	}
	if end == start {
		i := int(start / bin)
		if i >= len(bins) {
			i = len(bins) - 1
		}
		bins[i] += total
		return
	}
	dur := float64(end - start)
	for i := int(start / bin); i <= int((end-1)/bin) && i < len(bins); i++ {
		lo, hi := int64(i)*bin, (int64(i)+1)*bin
		if start > lo {
			lo = start
		}
		if end < hi {
			hi = end
		}
		if hi > lo {
			bins[i] += total * float64(hi-lo) / dur
		}
	}
}

// RequestLatencies summarizes server-side request latencies (seconds)
// from KindReqEnd events, with the p50/p90/p99 fields populated.
func (r *Recorder) RequestLatencies() stats.Summary {
	var xs []float64
	for _, e := range r.Events() {
		if e.Kind == KindReqEnd {
			xs = append(xs, float64(e.End-e.T)/1e9)
		}
	}
	return stats.SummarizePercentiles(xs)
}

// QueueDepthSeries returns the p50/p90/p99 of disk queue depth per time
// bin, over the KindDiskQueue samples of all disks. Bins without a
// sample carry the previous bin's value forward (a queue keeps its
// depth between submissions), starting from 0. bin <= 0 picks 1/100 of
// the horizon.
func (r *Recorder) QueueDepthSeries(bin int64) []Series {
	horizon := r.End()
	if bin <= 0 {
		bin = horizon / 100
		if bin <= 0 {
			bin = 1
		}
	}
	n := numBins(horizon, bin)
	samples := make([][]float64, n)
	for _, e := range r.Events() {
		if e.Kind != KindDiskQueue {
			continue
		}
		i := int(e.T / bin)
		if i >= n {
			i = n - 1
		}
		samples[i] = append(samples[i], float64(e.Depth))
	}
	quantiles := []struct {
		name string
		q    float64
	}{
		{"queue depth p50", 0.50},
		{"queue depth p90", 0.90},
		{"queue depth p99", 0.99},
	}
	out := make([]Series, len(quantiles))
	for k, qq := range quantiles {
		s := Series{Name: qq.name, Bin: bin, Y: make([]float64, n)}
		var last float64
		for i := range s.Y {
			if len(samples[i]) > 0 {
				last = stats.Quantile(samples[i], qq.q)
			}
			s.Y[i] = last
		}
		out[k] = s
	}
	return out
}

// OccupancySeries returns mean buffer/cache occupancy (fraction of
// capacity, 0..1) per time bin over the KindBuffer samples of all
// nodes. Bins without a sample carry the previous value forward. bin
// <= 0 picks 1/100 of the horizon.
func (r *Recorder) OccupancySeries(bin int64) Series {
	horizon := r.End()
	if bin <= 0 {
		bin = horizon / 100
		if bin <= 0 {
			bin = 1
		}
	}
	n := numBins(horizon, bin)
	sum := make([]float64, n)
	cnt := make([]int, n)
	for _, e := range r.Events() {
		if e.Kind != KindBuffer || e.Depth <= 0 {
			continue
		}
		i := int(e.T / bin)
		if i >= n {
			i = n - 1
		}
		sum[i] += float64(e.Bytes) / float64(e.Depth)
		cnt[i]++
	}
	s := Series{Name: "cache occupancy", Bin: bin, Y: make([]float64, n)}
	var last float64
	for i := range s.Y {
		if cnt[i] > 0 {
			last = sum[i] / float64(cnt[i])
		}
		s.Y[i] = last
	}
	return s
}

// PoolTimelines returns one Timeline per service pool from KindPoolBusy
// events, in first-appearance order. A pool runs several workers, so
// its raw busy intervals overlap; each timeline carries the merged
// union (the "at least one worker busy" view) and its utilization over
// [0, horizon] (horizon <= 0 uses End()).
func (r *Recorder) PoolTimelines(horizon int64) []Timeline {
	if r == nil {
		return nil
	}
	if horizon <= 0 {
		horizon = r.End()
	}
	index := map[string]int{}
	var tls []Timeline
	for _, e := range r.Events() {
		if e.Kind != KindPoolBusy {
			continue
		}
		i, ok := index[e.Node]
		if !ok {
			i = len(tls)
			index[e.Node] = i
			tls = append(tls, Timeline{Name: e.Node})
		}
		tls[i].Busy = append(tls[i].Busy, Interval{Start: e.T, End: e.End})
	}
	for i := range tls {
		tls[i].Busy = mergeIntervals(tls[i].Busy)
		var busy int64
		for _, iv := range tls[i].Busy {
			busy += iv.End - iv.Start
		}
		if horizon > 0 {
			tls[i].Util = float64(busy) / float64(horizon)
		}
	}
	return tls
}

// LinkTotal aggregates one directed interconnect link's traffic.
type LinkTotal struct {
	Src, Dst    string
	Msgs, Bytes int64
}

// LinkTotals returns per-link message and byte totals, in
// first-appearance order of each (src, dst) pair.
func (r *Recorder) LinkTotals() []LinkTotal {
	type key struct{ src, dst string }
	index := map[key]int{}
	var out []LinkTotal
	for _, e := range r.Events() {
		if e.Kind != KindNetMsg {
			continue
		}
		k := key{e.Node, e.Peer}
		i, ok := index[k]
		if !ok {
			i = len(out)
			index[k] = i
			out = append(out, LinkTotal{Src: e.Node, Dst: e.Peer})
		}
		out[i].Msgs++
		out[i].Bytes += e.Bytes
	}
	return out
}
