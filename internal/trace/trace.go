// Package trace is the simulator's event-trace recorder: a flat,
// seq-ordered stream of typed instrumentation records that the sim
// kernel, the disk and network layers, and the file-system servers emit
// while a run executes. A trace answers the *temporal* question the
// end-of-run throughput tables cannot: what was every disk doing at
// every instant, how deep were the queues, where did requests wait.
// That is the paper's central mechanism claim — disk-directed I/O keeps
// every disk continuously busy while traditional caching leaves them
// idle between cache misses — made observable.
//
// The recorder is strictly passive: it appends records to a slice and
// never touches the event queue, so an instrumented run fires the same
// events at the same virtual times as an uninstrumented one (pinned by
// TestTracingDoesNotPerturbRun). All record methods are nil-safe no-ops,
// so instrumentation points cost one nil check when tracing is off —
// no allocations, no closures, no interface boxing. Times are plain
// int64 nanoseconds of virtual time (sim.Time's representation) so this
// package has no simulator dependency and the kernel itself can import
// it.
//
// Because the simulation kernel is single-threaded and deterministic, a
// trace is a pure function of the run's Config: identical seeds yield
// byte-identical JSONL streams (pinned by TestTraceDeterministic). A
// Recorder must be attached to at most one run at a time — it is not
// safe for concurrent use from a parallel Runner pool.
package trace

// Kind classifies one trace event.
type Kind uint8

// Event kinds. Interval kinds carry both T (start) and End; point kinds
// carry only T.
const (
	// KindDiskService is one disk request's foreground service interval
	// [T, End]: Node is the disk, Write the direction, Bytes the media
	// transfer size, Depth the number of requests still queued when
	// service began. The gaps between a disk's service intervals are its
	// idle time; their sum over the run is its utilization.
	KindDiskService Kind = iota
	// KindDiskQueue samples a disk's queue depth (Depth) when a request
	// is submitted.
	KindDiskQueue
	// KindDiskSeek is an arm movement of Cyls cylinders on disk Node.
	KindDiskSeek
	// KindReqStart marks file-system request ID arriving at server Node
	// (Write mirrors the request direction, Bytes its payload size).
	KindReqStart
	// KindReqEnd marks request ID completing at server Node; T is the
	// matching start time and End the completion, so End-T is the
	// server-side latency.
	KindReqEnd
	// KindPoolBusy is one service-pool work item's busy interval on pool
	// Node.
	KindPoolBusy
	// KindBuffer samples buffer/cache occupancy at Node: Bytes holds the
	// occupied frame count, Depth the capacity.
	KindBuffer
	// KindNetMsg is one interconnect message from Node to Peer carrying
	// Bytes payload bytes, stamped at send time.
	KindNetMsg
	// KindFault is one injected fault at component Node; Peer carries
	// the fault class ("disk-err", "msg-drop", "net-spike").
	KindFault
	// KindRetry is one bounded-retry backoff interval at server Node:
	// [T, End] spans the modeled backoff sleep before resubmission
	// number Depth.
	KindRetry
)

// kindNames are the stable external names used in JSONL and CSV.
var kindNames = [...]string{
	KindDiskService: "disk",
	KindDiskQueue:   "queue",
	KindDiskSeek:    "seek",
	KindReqStart:    "req-start",
	KindReqEnd:      "req-end",
	KindPoolBusy:    "pool",
	KindBuffer:      "buffer",
	KindNetMsg:      "msg",
	KindFault:       "fault",
	KindRetry:       "retry",
}

// String returns the kind's stable external name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Event is one trace record. The fields are a flat union over all
// kinds; each Kind documents which fields it populates. Node and Peer
// are component names as the simulator labels them ("d3", "IOP0",
// "tc-svc:IOP2"); instrumentation sites pass preexisting strings so
// recording never allocates name storage.
type Event struct {
	Seq   int64  // 0-based record order (deterministic run order)
	Kind  Kind   // what happened
	T     int64  // virtual time, ns (interval start for interval kinds)
	End   int64  // interval end, ns (0 for point kinds)
	Node  string // primary component
	Peer  string // counterpart component (KindNetMsg destination)
	Write bool   // request direction, where applicable
	Bytes int64  // payload/transfer size, or occupancy count (KindBuffer)
	Depth int64  // queue depth or capacity, where applicable
	Cyls  int64  // cylinders crossed (KindDiskSeek)
	ID    int64  // request id (KindReqStart/KindReqEnd)
}

// Recorder accumulates trace events for one run. The zero value is
// ready to use; a nil *Recorder is a valid "tracing off" recorder whose
// record methods all no-op.
type Recorder struct {
	events []Event
	disks  []string // registered disks, in construction order
	mask   uint32   // kind-filter bitmask; 0 records every kind
}

// RegisterDisk declares a disk before any activity, so a drive that
// stays completely idle still gets a (zero-utilization) timeline row
// and counts in MeanDiskUtilization — without registration an idle
// disk would silently vanish from the derived views and overstate the
// mean. Registration is metadata, not an event: it does not appear in
// the JSONL/CSV streams.
func (r *Recorder) RegisterDisk(name string) {
	if r == nil {
		return
	}
	r.disks = append(r.disks, name)
}

// New returns an empty enabled recorder.
func New() *Recorder { return &Recorder{} }

// NewFiltered returns a recorder that retains only the listed event
// kinds and discards the rest at the instrumentation point — the cheap
// way to collect one derived view (say, request latencies from
// KindReqEnd) without holding the full event stream of a long run.
// With no kinds it behaves exactly like New.
func NewFiltered(kinds ...Kind) *Recorder {
	r := &Recorder{}
	for _, k := range kinds {
		r.mask |= 1 << k
	}
	return r
}

// keeps reports whether the recorder retains events of kind k.
func (r *Recorder) keeps(k Kind) bool {
	return r != nil && (r.mask == 0 || r.mask&(1<<k) != 0)
}

// Enabled reports whether the recorder actually records (false for nil).
func (r *Recorder) Enabled() bool { return r != nil }

// Len returns the number of recorded events.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return len(r.events)
}

// Events returns the recorded events in seq order. The slice is owned
// by the recorder; callers must not modify it.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	return r.events
}

// add appends one record, stamping its seq.
func (r *Recorder) add(e Event) {
	e.Seq = int64(len(r.events))
	r.events = append(r.events, e)
}

// DiskService records one disk request's service interval.
func (r *Recorder) DiskService(disk string, start, end int64, write bool, bytes int64, depth int) {
	if !r.keeps(KindDiskService) {
		return
	}
	r.add(Event{Kind: KindDiskService, T: start, End: end, Node: disk, Write: write, Bytes: bytes, Depth: int64(depth)})
}

// DiskQueue records a disk's queue depth after a request was submitted.
func (r *Recorder) DiskQueue(disk string, t int64, depth int) {
	if !r.keeps(KindDiskQueue) {
		return
	}
	r.add(Event{Kind: KindDiskQueue, T: t, Node: disk, Depth: int64(depth)})
}

// DiskSeek records one arm movement.
func (r *Recorder) DiskSeek(disk string, t, cyls int64) {
	if !r.keeps(KindDiskSeek) {
		return
	}
	r.add(Event{Kind: KindDiskSeek, T: t, Node: disk, Cyls: cyls})
}

// RequestStart records a file-system request arriving at a server.
func (r *Recorder) RequestStart(node string, id, t int64, write bool, bytes int64) {
	if !r.keeps(KindReqStart) {
		return
	}
	r.add(Event{Kind: KindReqStart, T: t, Node: node, ID: id, Write: write, Bytes: bytes})
}

// RequestEnd records a file-system request completing at a server;
// start is the matching RequestStart time, so the event carries the
// full latency interval.
func (r *Recorder) RequestEnd(node string, id, start, end int64) {
	if !r.keeps(KindReqEnd) {
		return
	}
	r.add(Event{Kind: KindReqEnd, T: start, End: end, Node: node, ID: id})
}

// PoolBusy records one service-pool work item's busy interval.
func (r *Recorder) PoolBusy(pool string, start, end int64) {
	if !r.keeps(KindPoolBusy) {
		return
	}
	r.add(Event{Kind: KindPoolBusy, T: start, End: end, Node: pool})
}

// Buffer samples buffer/cache occupancy (used of capacity) at a node.
func (r *Recorder) Buffer(node string, t int64, used, capacity int) {
	if !r.keeps(KindBuffer) {
		return
	}
	r.add(Event{Kind: KindBuffer, T: t, Node: node, Bytes: int64(used), Depth: int64(capacity)})
}

// NetMsg records one interconnect message at send time.
func (r *Recorder) NetMsg(src, dst string, t, bytes int64) {
	if !r.keeps(KindNetMsg) {
		return
	}
	r.add(Event{Kind: KindNetMsg, T: t, Node: src, Peer: dst, Bytes: bytes})
}

// Fault records one injected fault at a component; class is the stable
// fault label ("disk-err", "msg-drop", "net-spike"), carried in Peer.
func (r *Recorder) Fault(node string, t int64, class string) {
	if !r.keeps(KindFault) {
		return
	}
	r.add(Event{Kind: KindFault, T: t, Node: node, Peer: class})
}

// Retry records one bounded-retry backoff interval at a server: [start,
// end] spans the modeled backoff sleep before resubmission number
// attempt (1-based).
func (r *Recorder) Retry(node string, start, end int64, attempt int) {
	if !r.keeps(KindRetry) {
		return
	}
	r.add(Event{Kind: KindRetry, T: start, End: end, Node: node, Depth: int64(attempt)})
}
