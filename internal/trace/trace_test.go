package trace

import (
	"strings"
	"testing"
)

// TestNilRecorderIsInert: every record method and every derived view
// must be a safe no-op on a nil recorder — that is the whole
// zero-cost-when-disabled contract.
func TestNilRecorderIsInert(t *testing.T) {
	var r *Recorder
	r.DiskService("d0", 0, 10, false, 512, 1)
	r.DiskQueue("d0", 0, 1)
	r.DiskSeek("d0", 0, 3)
	r.RequestStart("IOP0", 1, 0, false, 8)
	r.RequestEnd("IOP0", 1, 0, 5)
	r.PoolBusy("svc", 0, 5)
	r.Buffer("IOP0", 0, 1, 4)
	r.NetMsg("CP0", "IOP0", 0, 64)
	if r.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	if r.Len() != 0 || r.Events() != nil || r.End() != 0 {
		t.Fatal("nil recorder holds state")
	}
	if u := r.MeanDiskUtilization(0); u != 0 {
		t.Fatalf("nil recorder utilization = %v", u)
	}
	if tl := r.DiskTimelines(0); len(tl) != 0 {
		t.Fatalf("nil recorder timelines = %v", tl)
	}
}

// TestSeqOrder: events carry consecutive seq numbers in record order.
func TestSeqOrder(t *testing.T) {
	r := New()
	r.NetMsg("a", "b", 5, 1)
	r.DiskSeek("d0", 7, 2)
	r.DiskService("d0", 7, 9, true, 512, 0)
	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("got %d events", len(evs))
	}
	for i, e := range evs {
		if e.Seq != int64(i) {
			t.Fatalf("event %d has seq %d", i, e.Seq)
		}
	}
	if evs[2].Kind != KindDiskService || !evs[2].Write || evs[2].Bytes != 512 {
		t.Fatalf("disk event fields wrong: %+v", evs[2])
	}
}

// TestEmitters: JSONL carries one object per line with stable keys; CSV
// carries the header plus one row per event.
func TestEmitters(t *testing.T) {
	r := New()
	r.NetMsg("CP0", "IOP1", 1000, 64)
	r.DiskService("d0", 2000, 5000, true, 4096, 2)

	var jb strings.Builder
	if err := r.WriteJSONL(&jb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(jb.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("JSONL lines = %d", len(lines))
	}
	if want := `{"seq":0,"kind":"msg","t_ns":1000,"node":"CP0","peer":"IOP1","bytes":64}`; lines[0] != want {
		t.Fatalf("JSONL line 0:\n got %s\nwant %s", lines[0], want)
	}
	if !strings.Contains(lines[1], `"kind":"disk"`) || !strings.Contains(lines[1], `"write":true`) {
		t.Fatalf("JSONL line 1: %s", lines[1])
	}

	var cb strings.Builder
	if err := r.WriteCSV(&cb); err != nil {
		t.Fatal(err)
	}
	csv := strings.Split(strings.TrimRight(cb.String(), "\n"), "\n")
	if len(csv) != 3 {
		t.Fatalf("CSV lines = %d", len(csv))
	}
	if csv[0] != strings.TrimRight(csvHeader, "\n") {
		t.Fatalf("CSV header: %s", csv[0])
	}
	if want := "1,disk,2000,5000,d0,,1,4096,2,,"; csv[2] != want {
		t.Fatalf("CSV row:\n got %s\nwant %s", csv[2], want)
	}
}

// TestEmittersKeepLegitimateZeros: a kind's fields are emitted even at
// zero (request id 0, queue depth 0), while fields the kind does not
// use stay absent — consumers must be able to tell "zero" from "not
// applicable".
func TestEmittersKeepLegitimateZeros(t *testing.T) {
	r := New()
	r.RequestStart("IOP0", 0, 100, false, 0) // first request: id 0, 0 payload
	r.DiskService("d0", 200, 300, false, 512, 0)

	var jb strings.Builder
	if err := r.WriteJSONL(&jb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(jb.String(), "\n"), "\n")
	if want := `{"seq":0,"kind":"req-start","t_ns":100,"node":"IOP0","write":false,"bytes":0,"id":0}`; lines[0] != want {
		t.Fatalf("JSONL req-start:\n got %s\nwant %s", lines[0], want)
	}
	if !strings.Contains(lines[1], `"depth":0`) {
		t.Fatalf("JSONL disk lost its zero depth: %s", lines[1])
	}
	if strings.Contains(lines[1], `"id"`) || strings.Contains(lines[0], `"end_ns"`) {
		t.Fatalf("kind-unused fields leaked:\n%s\n%s", lines[0], lines[1])
	}

	var cb strings.Builder
	if err := r.WriteCSV(&cb); err != nil {
		t.Fatal(err)
	}
	rows := strings.Split(strings.TrimRight(cb.String(), "\n"), "\n")
	if want := "0,req-start,100,,IOP0,,0,0,,,0"; rows[1] != want {
		t.Fatalf("CSV req-start:\n got %s\nwant %s", rows[1], want)
	}
	if want := "1,disk,200,300,d0,,0,512,0,,"; rows[2] != want {
		t.Fatalf("CSV disk:\n got %s\nwant %s", rows[2], want)
	}
}

// TestDiskTimelinesAndUtilization on a hand-built trace: two disks,
// one busy half the horizon, one a quarter.
func TestDiskTimelinesAndUtilization(t *testing.T) {
	r := New()
	r.DiskService("d0", 0, 500, false, 512, 0)
	r.DiskService("d1", 100, 350, false, 512, 0)
	r.DiskService("d0", 900, 1000, false, 512, 0) // sets End() = 1000
	tls := r.DiskTimelines(0)
	if len(tls) != 2 || tls[0].Name != "d0" || tls[1].Name != "d1" {
		t.Fatalf("timelines = %+v", tls)
	}
	if got := tls[0].Util; got != 0.6 {
		t.Fatalf("d0 util = %v, want 0.6", got)
	}
	if got := tls[1].Util; got != 0.25 {
		t.Fatalf("d1 util = %v, want 0.25", got)
	}
	if got := r.MeanDiskUtilization(0); got != (0.6+0.25)/2 {
		t.Fatalf("mean util = %v", got)
	}
}

// TestIdleRegisteredDiskCountsInMean: a registered disk that never
// serves a request still gets a timeline row and drags the mean down —
// one busy disk among idle ones must not report 100% utilization.
func TestIdleRegisteredDiskCountsInMean(t *testing.T) {
	r := New()
	r.RegisterDisk("d0")
	r.RegisterDisk("d1")
	r.RegisterDisk("d2")
	r.RegisterDisk("d3")
	r.DiskService("d1", 0, 1000, false, 512, 0) // only d1 ever works
	tls := r.DiskTimelines(0)
	if len(tls) != 4 {
		t.Fatalf("timelines = %d rows, want 4 (idle disks included)", len(tls))
	}
	if tls[0].Name != "d0" || tls[0].Util != 0 || len(tls[0].Busy) != 0 {
		t.Fatalf("idle d0 row = %+v", tls[0])
	}
	if tls[1].Util != 1.0 {
		t.Fatalf("d1 util = %v, want 1", tls[1].Util)
	}
	if got := r.MeanDiskUtilization(0); got != 0.25 {
		t.Fatalf("mean util = %v, want 0.25", got)
	}
	// An unregistered latecomer still appears, after the registered set.
	r.DiskService("dX", 0, 500, false, 512, 0)
	if tls = r.DiskTimelines(0); len(tls) != 5 || tls[4].Name != "dX" {
		t.Fatalf("unregistered disk handling: %+v", tls)
	}
}

// TestUtilizationSeries: binning splits intervals proportionally.
func TestUtilizationSeries(t *testing.T) {
	r := New()
	// One disk, busy [0,100) and [150,200): horizon 200.
	r.DiskService("d0", 0, 100, false, 512, 0)
	r.DiskService("d0", 150, 200, false, 512, 0)
	s := r.UtilizationSeries(100)
	// Bin 0: fully busy. Bin 1: half busy. Horizon 200 = exactly 2 bins.
	if len(s.Y) != 2 {
		t.Fatalf("series length = %d, want 2: %v", len(s.Y), s.Y)
	}
	if s.Y[0] != 1.0 || s.Y[1] != 0.5 {
		t.Fatalf("utilization bins = %v, want [1 0.5]", s.Y)
	}

	// A horizon that is not a bin multiple: the final bin is divided by
	// its covered width, so a fully-busy tail reads 1.0, not a dip.
	r2 := New()
	r2.DiskService("d0", 0, 150, false, 512, 0)
	s2 := r2.UtilizationSeries(100)
	if len(s2.Y) != 2 || s2.Y[0] != 1.0 || s2.Y[1] != 1.0 {
		t.Fatalf("partial-bin utilization = %v, want [1 1]", s2.Y)
	}
}

// TestBandwidthSeries: bytes spread over interval bins scale to B/s.
func TestBandwidthSeries(t *testing.T) {
	r := New()
	r.DiskService("d0", 0, 1e9, false, 1000, 0) // 1000 B over 1 s
	s := r.BandwidthSeries(5e8)                 // two 0.5 s bins (plus edge bin)
	if s.Y[0] != 1000 || s.Y[1] != 1000 {
		t.Fatalf("bandwidth bins = %v, want 1000 B/s each", s.Y[:2])
	}
}

// TestRequestLatencies summarizes end-start spans in seconds.
func TestRequestLatencies(t *testing.T) {
	r := New()
	r.RequestEnd("IOP0", 0, 0, 2e9)
	r.RequestEnd("IOP0", 1, 1e9, 2e9)
	sum := r.RequestLatencies()
	if sum.N != 2 || sum.Mean != 1.5 || sum.Min != 1 || sum.Max != 2 {
		t.Fatalf("latency summary = %+v", sum)
	}
}

// TestLinkTotals aggregates per directed link in first-appearance order.
func TestLinkTotals(t *testing.T) {
	r := New()
	r.NetMsg("CP0", "IOP0", 0, 100)
	r.NetMsg("CP1", "IOP0", 1, 50)
	r.NetMsg("CP0", "IOP0", 2, 25)
	lt := r.LinkTotals()
	if len(lt) != 2 {
		t.Fatalf("links = %+v", lt)
	}
	if lt[0].Src != "CP0" || lt[0].Msgs != 2 || lt[0].Bytes != 125 {
		t.Fatalf("link 0 = %+v", lt[0])
	}
	if lt[1].Src != "CP1" || lt[1].Msgs != 1 || lt[1].Bytes != 50 {
		t.Fatalf("link 1 = %+v", lt[1])
	}
}
