package trace

import (
	"bufio"
	"encoding/json"
	"io"
	"strconv"
)

// fieldSet says which optional Event fields a kind populates. Emitters
// write exactly these fields — legitimate zero values (request id 0,
// queue depth 0, occupancy 0) are emitted, and fields a kind does not
// use are absent (JSONL) or empty (CSV), so consumers can tell "zero"
// from "not applicable".
type fieldSet struct{ end, write, bytes, depth, cyls, id bool }

var kindFields = [...]fieldSet{
	KindDiskService: {end: true, write: true, bytes: true, depth: true},
	KindDiskQueue:   {depth: true},
	KindDiskSeek:    {cyls: true},
	KindReqStart:    {write: true, bytes: true, id: true},
	KindReqEnd:      {end: true, id: true},
	KindPoolBusy:    {end: true},
	KindBuffer:      {bytes: true, depth: true},
	KindNetMsg:      {bytes: true},
	KindFault:       {},
	KindRetry:       {end: true, depth: true},
}

// jsonEvent is Event's wire form: stable snake_case keys; pointer
// fields appear exactly when the event's kind populates them.
type jsonEvent struct {
	Seq   int64  `json:"seq"`
	Kind  string `json:"kind"`
	T     int64  `json:"t_ns"`
	End   *int64 `json:"end_ns,omitempty"`
	Node  string `json:"node,omitempty"`
	Peer  string `json:"peer,omitempty"`
	Write *bool  `json:"write,omitempty"`
	Bytes *int64 `json:"bytes,omitempty"`
	Depth *int64 `json:"depth,omitempty"`
	Cyls  *int64 `json:"cyls,omitempty"`
	ID    *int64 `json:"id,omitempty"`
}

// WriteJSONL writes the trace as JSON Lines: one event object per line,
// in seq order. Identical runs produce byte-identical output.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw) // Encode appends the newline per event
	for i := range r.Events() {
		e := &r.Events()[i]
		fs := kindFields[e.Kind]
		je := jsonEvent{Seq: e.Seq, Kind: e.Kind.String(), T: e.T, Node: e.Node, Peer: e.Peer}
		if fs.end {
			je.End = &e.End
		}
		if fs.write {
			je.Write = &e.Write
		}
		if fs.bytes {
			je.Bytes = &e.Bytes
		}
		if fs.depth {
			je.Depth = &e.Depth
		}
		if fs.cyls {
			je.Cyls = &e.Cyls
		}
		if fs.id {
			je.ID = &e.ID
		}
		if err := enc.Encode(&je); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// csvHeader is the long-format column set; every event is one row, with
// columns unused by its kind left empty.
const csvHeader = "seq,kind,t_ns,end_ns,node,peer,write,bytes,depth,cyls,id\n"

// WriteCSV writes the trace as long-format (tidy) CSV: one row per
// event, one column per field, so spreadsheet and dataframe tools can
// filter by kind without parsing JSON.
func (r *Recorder) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(csvHeader); err != nil {
		return err
	}
	var buf []byte
	for _, e := range r.Events() {
		fs := kindFields[e.Kind]
		buf = buf[:0]
		buf = strconv.AppendInt(buf, e.Seq, 10)
		buf = append(buf, ',')
		buf = append(buf, e.Kind.String()...)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, e.T, 10)
		buf = append(buf, ',')
		buf = appendField(buf, e.End, fs.end)
		buf = append(buf, ',')
		buf = append(buf, e.Node...)
		buf = append(buf, ',')
		buf = append(buf, e.Peer...)
		buf = append(buf, ',')
		if fs.write {
			if e.Write {
				buf = append(buf, '1')
			} else {
				buf = append(buf, '0')
			}
		}
		buf = append(buf, ',')
		buf = appendField(buf, e.Bytes, fs.bytes)
		buf = append(buf, ',')
		buf = appendField(buf, e.Depth, fs.depth)
		buf = append(buf, ',')
		buf = appendField(buf, e.Cyls, fs.cyls)
		buf = append(buf, ',')
		buf = appendField(buf, e.ID, fs.id)
		buf = append(buf, '\n')
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// appendField renders v when the kind uses the field, else leaves the
// column empty.
func appendField(buf []byte, v int64, used bool) []byte {
	if !used {
		return buf
	}
	return strconv.AppendInt(buf, v, 10)
}
