package disk

import (
	"bytes"
	"testing"

	"ddio/internal/sim"
)

// TestPoolNoCrossRequestAliasing: buffers returned by concurrent reads
// must never share backing storage, and a buffer's contents must stay
// intact while later requests are served — only an explicit Recycle may
// hand its storage to a subsequent request.
func TestPoolNoCrossRequestAliasing(t *testing.T) {
	e, d := newTestDisk(t, HP97560())
	pa := make([]byte, 16*512)
	pb := make([]byte, 16*512)
	for i := range pa {
		pa[i] = 0xAA
		pb[i] = 0xBB
	}
	var a, b, c []byte
	e.Go("t", func(p *sim.Proc) {
		d.WriteSync(p, 0, pa)
		d.WriteSync(p, 16, pb)
		d.Flush(p)
		a = d.ReadSync(p, 0, 16)  // held across the next reads, not recycled
		b = d.ReadSync(p, 16, 16) // must not alias a
		c = d.ReadSync(p, 0, 16)  // must not alias a or b
	})
	e.Run()
	if &a[0] == &b[0] || &a[0] == &c[0] || &b[0] == &c[0] {
		t.Fatal("outstanding read buffers share backing storage")
	}
	if !bytes.Equal(a, pa) || !bytes.Equal(c, pa) || !bytes.Equal(b, pb) {
		t.Fatal("read contents corrupted while other requests were in flight")
	}
}

// TestPoolRecycleReusesBuffer: a recycled buffer is handed back to the
// next same-size request (LIFO), with correct fresh contents, and the
// reuse shows up in PoolStats.
func TestPoolRecycleReusesBuffer(t *testing.T) {
	e, d := newTestDisk(t, HP97560())
	payload := make([]byte, 16*512)
	for i := range payload {
		payload[i] = byte(i)
	}
	var first, second []byte
	e.Go("t", func(p *sim.Proc) {
		d.WriteSync(p, 0, payload)
		d.Flush(p)
		first = d.ReadSync(p, 0, 16)
		d.Recycle(first)
		second = d.ReadSync(p, 0, 16)
	})
	e.Run()
	if &first[0] != &second[0] {
		t.Fatal("recycled buffer was not reused by the next same-size read")
	}
	if !bytes.Equal(second, payload) {
		t.Fatal("reused buffer carries wrong contents")
	}
	if _, reuses := d.PoolStats(); reuses == 0 {
		t.Fatal("PoolStats reports no reuse")
	}
}

// TestPoolRecycledBufferReadsZeroForUnwritten: ReadData must clear the
// unwritten sectors of a recycled (stale) buffer, preserving the
// "unwritten sectors read as zeros" contract.
func TestPoolRecycledBufferReadsZeroForUnwritten(t *testing.T) {
	e, d := newTestDisk(t, HP97560())
	dirty := make([]byte, 16*512)
	for i := range dirty {
		dirty[i] = 0xFF
	}
	var got []byte
	e.Go("t", func(p *sim.Proc) {
		d.WriteSync(p, 0, dirty)
		d.Flush(p)
		buf := d.ReadSync(p, 0, 16) // buffer now full of 0xFF
		d.Recycle(buf)
		got = d.ReadSync(p, 5000, 16) // unwritten range, same size
	})
	e.Run()
	for _, v := range got {
		if v != 0 {
			t.Fatal("unwritten sectors leaked stale bytes from a recycled buffer")
		}
	}
}

// TestWriteDataRecyclesOverwrittenBacking: overwriting every sector of a
// previous WriteData returns its backing array to the free list, so a
// workload that rewrites blocks in place reaches a steady state with no
// new allocation (reuses grow write over write).
func TestWriteDataRecyclesOverwrittenBacking(t *testing.T) {
	e, d := newTestDisk(t, HP97560())
	payload := make([]byte, 16*512)
	e.Go("t", func(p *sim.Proc) {
		for round := 0; round < 8; round++ {
			for i := range payload {
				payload[i] = byte(round)
			}
			d.WriteSync(p, 0, payload)
			d.Flush(p)
		}
	})
	e.Run()
	_, reuses := d.PoolStats()
	if reuses < 6 {
		t.Fatalf("rewrites reused only %d backing arrays, want >= 6", reuses)
	}
	var got []byte
	e.Go("t2", func(p *sim.Proc) { got = d.ReadSync(p, 0, 16) })
	e.Run()
	for _, v := range got {
		if v != 7 {
			t.Fatal("latest write's contents lost across backing reuse")
		}
	}
}

// TestPartialOverwriteKeepsOldBackingAlive: overwriting only some
// sectors of an earlier write must not recycle the shared backing array
// while other sectors still reference it.
func TestPartialOverwriteKeepsOldBackingAlive(t *testing.T) {
	e, d := newTestDisk(t, HP97560())
	oldData := make([]byte, 16*512)
	for i := range oldData {
		oldData[i] = 0x11
	}
	newData := make([]byte, 4*512)
	for i := range newData {
		newData[i] = 0x22
	}
	var got []byte
	e.Go("t", func(p *sim.Proc) {
		d.WriteSync(p, 0, oldData)
		d.Flush(p)
		d.WriteSync(p, 0, newData) // overwrite first 4 of 16 sectors
		d.Flush(p)
		got = d.ReadSync(p, 0, 16)
	})
	e.Run()
	for i, v := range got {
		want := byte(0x11)
		if i < 4*512 {
			want = 0x22
		}
		if v != want {
			t.Fatalf("byte %d = %#x, want %#x", i, v, want)
		}
	}
}
