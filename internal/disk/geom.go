package disk

import (
	"fmt"

	"ddio/internal/sim"
)

// geom implements the timing mathematics of the mechanical model. It is
// deliberately free of simulation state: all functions are pure in
// (time, position) so both the foreground request path and the lazy
// read-ahead accounting can share them.
type geom struct {
	spec       *Spec
	st         sim.Time // sector time, ns
	rev        sim.Time // st * SectorsPerTrack
	spt        int64
	heads      int64
	totalSlots int64
}

func newGeom(s *Spec) *geom {
	st := sim.Time(s.SectorTime())
	return &geom{
		spec:  s,
		st:    st,
		rev:   st * sim.Time(s.SectorsPerTrack),
		spt:   int64(s.SectorsPerTrack),
		heads: int64(s.Heads),
	}
}

// Decompose maps an LBN to its cylinder, head, and sector.
func (g *geom) decompose(lbn int64) (cyl, head, sector int64) {
	perCyl := g.heads * g.spt
	cyl = lbn / perCyl
	rem := lbn % perCyl
	return cyl, rem / g.spt, rem % g.spt
}

// compose is the inverse of decompose.
func (g *geom) compose(cyl, head, sector int64) int64 {
	return (cyl*g.heads+head)*g.spt + sector
}

// slot returns the rotational slot index ([0, spt)) at which the given
// sector physically sits, after track and cylinder skewing.
func (g *geom) slot(cyl, head, sector int64) int64 {
	track := cyl*g.heads + head
	skew := track*int64(g.spec.TrackSkew) + cyl*int64(g.spec.CylinderSkew)
	return (sector + skew) % g.spt
}

// nextSlotStart returns the earliest time >= t at which rotational slot k
// begins to pass under the heads. The platter angle is a pure function of
// absolute time: rotation never stops.
func (g *geom) nextSlotStart(t sim.Time, k int64) sim.Time {
	target := sim.Time(k) * g.st
	tin := t % g.rev
	wait := (target - tin) % g.rev
	if wait < 0 {
		wait += g.rev
	}
	return t + wait
}

// walk computes the completion time of a sequential media transfer of
// sectors [lbn, lbn+n) beginning no earlier than t, assuming the arm is
// already at the cylinder of lbn with its rotational position given by
// absolute time. Head switches and single-cylinder seeks encountered
// along the way are charged; skew makes them (mostly) rotation-neutral.
// It returns the completion time and the final cylinder.
func (g *geom) walk(t sim.Time, lbn, n int64) (end sim.Time, endCyl int64) {
	if n <= 0 {
		c, _, _ := g.decompose(lbn)
		return t, c
	}
	cyl, head, sec := g.decompose(lbn)
	curCyl, curHead := cyl, head
	first := true
	for n > 0 {
		cyl, head, sec = g.decompose(lbn)
		if !first {
			if cyl != curCyl {
				t += sim.Time(g.spec.Seek(int(abs64(cyl - curCyl))))
			} else if head != curHead {
				t += sim.Time(g.spec.HeadSwitch)
			}
		}
		curCyl, curHead = cyl, head
		run := g.spt - sec
		if run > n {
			run = n
		}
		start := g.nextSlotStart(t, g.slot(cyl, head, sec))
		t = start + sim.Time(run)*g.st
		lbn += run
		n -= run
		first = false
	}
	return t, curCyl
}

// access computes the completion time of a media transfer of sectors
// [lbn, lbn+n) starting no earlier than t with the arm currently at
// cylinder fromCyl: an initial seek if needed, then a sequential walk.
func (g *geom) access(fromCyl int64, t sim.Time, lbn, n int64) (end sim.Time, endCyl int64) {
	cyl, _, _ := g.decompose(lbn)
	if cyl != fromCyl {
		t += sim.Time(g.spec.Seek(int(abs64(cyl - fromCyl))))
	}
	return g.walk(t, lbn, n)
}

func (g *geom) check(lbn, n int64) {
	if lbn < 0 || n < 0 || lbn+n > g.spec.TotalSectors() {
		panic(fmt.Sprintf("disk: access [%d,%d) outside device of %d sectors",
			lbn, lbn+n, g.spec.TotalSectors()))
	}
}

func abs64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}
