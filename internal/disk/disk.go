package disk

import (
	"errors"
	"fmt"
	"time"

	"ddio/internal/bus"
	"ddio/internal/fault"
	"ddio/internal/sim"
	"ddio/internal/trace"
)

// ErrTransient reports a request that the drive failed transiently —
// the mechanical model charged the drive-internal recovery time but no
// data moved. Injected only when fault injection is active; a resubmit
// of the same request may succeed.
var ErrTransient = errors.New("disk: transient request failure")

// Request is one I/O command issued to a disk. Reads fill Data at
// completion with a transfer buffer drawn from the disk's free list (the
// receiver owns it; see Disk.Recycle); writes consume Data (which must
// hold Count*SectorSize bytes and is copied, so the caller keeps
// ownership). OnDone, if set, is invoked when the drive reports
// completion — for writes this is when the data is accepted into the
// drive's write-behind buffer, matching an "immediate report" drive; use
// Flush to wait for media durability.
type Request struct {
	Write  bool
	LBN    int64 // starting sector
	Count  int64 // sectors
	Data   []byte
	OnDone func(t sim.Time)
	// Err is set (to ErrTransient) before OnDone when fault injection
	// failed the request; Data is nil and no media state changed.
	Err error

	cyl int64
	enq sim.Time
}

// Metrics aggregates per-disk activity counters.
type Metrics struct {
	Reads         int64
	Writes        int64
	CacheHits     int64 // reads served entirely from the read-ahead buffer
	CacheStreams  int64 // reads that waited on the ongoing read-ahead stream
	SeekCount     int64
	SeekCylinders int64
	SectorsRead   int64
	SectorsWrite  int64
	QueueWait     time.Duration // sum of time requests spent queued
	Busy          time.Duration // foreground service time (approximate)
	Errors        int64         // transient failures injected on this disk
}

// Disk simulates one drive: a server process draining a request queue
// through the mechanical model, a read-ahead cache, a write-behind
// buffer, and an optional shared bus on the host side of the transfer.
type Disk struct {
	Name string
	Spec *Spec

	eng   *sim.Engine
	bus   *bus.Bus
	g     *geom
	cache *racache
	wb    wcache
	sched Scheduler

	curCyl  int64
	queue   []*Request
	queued  *sim.Cond
	m       Metrics
	storage map[int64]sector  // sector LBN -> stored bytes + backing ref
	pool    Pool              // free-listed transfer buffers (see pool.go)
	rec     *trace.Recorder   // event tracing, nil when disabled
	faults  *fault.DiskFaults // fault injection, nil when disabled
}

// New creates a disk and starts its server process on the engine. b may
// be nil to model a drive with an uncontended, infinitely fast channel.
// sched nil defaults to FCFS.
func New(e *sim.Engine, name string, spec *Spec, b *bus.Bus, sched Scheduler) *Disk {
	if sched == nil {
		sched = FCFS{}
	}
	d := &Disk{
		Name:    name,
		Spec:    spec,
		eng:     e,
		bus:     b,
		g:       newGeom(spec),
		sched:   sched,
		storage: make(map[int64]sector),
		rec:     e.Recorder(),
	}
	d.rec.RegisterDisk(name)
	d.cache = newRACache(d.g)
	d.wb = wcache{g: d.g}
	d.queued = sim.NewCond(e, "disk "+name)
	e.GoDaemon("disk:"+name, d.run)
	return d
}

// Metrics returns a copy of the disk's activity counters.
func (d *Disk) Metrics() Metrics { return d.m }

// SetFaults attaches a fault-injection handle. nil (the default) keeps
// the drive healthy and the service path bit-identical to a build
// without fault injection. Call before the run starts.
func (d *Disk) SetFaults(f *fault.DiskFaults) { d.faults = f }

// PoolStats reports how many transfer buffers the disk handed out and
// how many of those were reused from its free list (diagnostic).
func (d *Disk) PoolStats() (gets, reuses int64) { return d.pool.gets, d.pool.reuses }

// QueueLen returns the number of requests waiting (diagnostic).
func (d *Disk) QueueLen() int { return len(d.queue) }

// Submit enqueues a request; the server process picks it up according to
// the disk's scheduler. May be called from proc or event context.
func (d *Disk) Submit(r *Request) {
	d.g.check(r.LBN, r.Count)
	if r.Write && int64(len(r.Data)) != r.Count*int64(d.Spec.SectorSize) {
		panic(fmt.Sprintf("disk %s: write of %d sectors with %d data bytes", d.Name, r.Count, len(r.Data)))
	}
	r.cyl, _, _ = d.g.decompose(r.LBN)
	r.enq = d.eng.Now()
	d.queue = append(d.queue, r)
	d.rec.DiskQueue(d.Name, int64(r.enq), len(d.queue))
	d.queued.Signal()
}

// TryReadSync submits a read and blocks p until it completes, returning
// the data or the request's failure (ErrTransient under fault
// injection). Callers that retry use this; ReadSync panics instead.
func (d *Disk) TryReadSync(p *sim.Proc, lbn, count int64) ([]byte, error) {
	done := sim.NewWaitGroup(d.eng, "diskread", 1)
	r := &Request{LBN: lbn, Count: count, OnDone: func(sim.Time) { done.Done() }}
	d.Submit(r)
	done.Wait(p)
	return r.Data, r.Err
}

// ReadSync submits a read and blocks p until it completes, returning the
// data. A failed request panics: callers without a retry loop must not
// silently read nothing, and without fault injection requests cannot
// fail.
func (d *Disk) ReadSync(p *sim.Proc, lbn, count int64) []byte {
	data, err := d.TryReadSync(p, lbn, count)
	if err != nil {
		panic(fmt.Sprintf("disk %s: unretried read failure: %v", d.Name, err))
	}
	return data
}

// TryWriteSync submits a write and blocks p until the drive accepts it
// or reports a transient failure.
func (d *Disk) TryWriteSync(p *sim.Proc, lbn int64, data []byte) error {
	done := sim.NewWaitGroup(d.eng, "diskwrite", 1)
	r := &Request{Write: true, LBN: lbn, Count: int64(len(data) / d.Spec.SectorSize), Data: data,
		OnDone: func(sim.Time) { done.Done() }}
	d.Submit(r)
	done.Wait(p)
	return r.Err
}

// WriteSync submits a write and blocks p until the drive accepts it,
// panicking on an unretried failure (see ReadSync).
func (d *Disk) WriteSync(p *sim.Proc, lbn int64, data []byte) {
	if err := d.TryWriteSync(p, lbn, data); err != nil {
		panic(fmt.Sprintf("disk %s: unretried write failure: %v", d.Name, err))
	}
}

// Flush blocks p until the write-behind buffer has drained to media and
// the request queue is empty.
func (d *Disk) Flush(p *sim.Proc) {
	for len(d.queue) > 0 {
		// Wait for the queue to drain by polling at the next service
		// completion; simplest is to enqueue a zero-length read barrier.
		done := sim.NewWaitGroup(d.eng, "diskflush", 1)
		d.Submit(&Request{LBN: 0, Count: 0, OnDone: func(sim.Time) { done.Done() }})
		done.Wait(p)
	}
	d.drainWrites(p)
}

// run is the drive's server process.
func (d *Disk) run(p *sim.Proc) {
	for {
		for len(d.queue) == 0 {
			d.queued.Wait(p)
		}
		i := d.sched.Pick(d.queue, d.curCyl)
		r := d.queue[i]
		d.queue = append(d.queue[:i], d.queue[i+1:]...)
		d.m.QueueWait += time.Duration(p.Now() - r.enq)
		d.serve(p, r)
	}
}

func (d *Disk) serve(p *sim.Proc, r *Request) {
	start := p.Now()
	waiting := len(d.queue) // requests still queued behind this one
	if r.Count == 0 {       // barrier request used by Flush
		if r.OnDone != nil {
			r.OnDone(p.Now())
		}
		return
	}
	p.Sleep(d.Spec.ControllerOverhead)
	if d.faults.FailRequest() {
		// Transient failure: the drive burns its internal recovery time
		// and reports the error; no data moves, no media state changes.
		p.Sleep(d.faults.ErrorLatency())
		r.Err = ErrTransient
		d.m.Errors++
		d.m.Busy += time.Duration(p.Now() - start)
		d.rec.Fault(d.Name, int64(start), "disk-err")
		d.rec.DiskService(d.Name, int64(start), int64(p.Now()), r.Write, 0, waiting)
		if r.OnDone != nil {
			r.OnDone(p.Now())
		}
		return
	}
	if r.Write {
		d.serveWrite(p, r)
	} else {
		d.serveRead(p, r)
	}
	if extra := d.faults.StragglerExtra(start, p.Now()); extra > 0 {
		p.Sleep(extra)
	}
	d.m.Busy += time.Duration(p.Now() - start)
	d.rec.DiskService(d.Name, int64(start), int64(p.Now()), r.Write,
		r.Count*int64(d.Spec.SectorSize), waiting)
	if r.OnDone != nil {
		r.OnDone(p.Now())
	}
}

func (d *Disk) serveRead(p *sim.Proc, r *Request) {
	d.m.Reads++
	d.m.SectorsRead += r.Count
	// The media must be done with buffered writes before it can serve
	// reads (no internal reordering across the write buffer).
	d.drainWrites(p)
	if ready, ok := d.cache.serveRead(p.Now(), r.LBN, r.Count); ok {
		if ready > p.Now() {
			d.m.CacheStreams++
			p.SleepUntil(ready)
		} else {
			d.m.CacheHits++
		}
		d.curCyl, _, _ = d.g.decompose(d.cache.mediaAt - 1)
	} else {
		d.countSeek(r.cyl)
		end, endCyl := d.g.access(d.curCyl, p.Now(), r.LBN, r.Count)
		p.SleepUntil(end)
		d.curCyl = endCyl
		d.cache.startStream(r.LBN, r.LBN+r.Count, end)
	}
	if d.bus != nil {
		d.bus.Transfer(p, int(r.Count)*d.Spec.SectorSize)
	}
	r.Data = d.ReadData(r.LBN, r.Count)
}

func (d *Disk) serveWrite(p *sim.Proc, r *Request) {
	d.m.Writes++
	d.m.SectorsWrite += r.Count
	if d.bus != nil {
		d.bus.Transfer(p, int(r.Count)*d.Spec.SectorSize)
	}
	d.WriteData(r.LBN, r.Data)
	if d.cache.overlaps(r.LBN, r.Count) {
		d.cache.invalidate()
	} else {
		d.cache.freeze(p.Now()) // the media is about to leave the read stream
	}
	d.acceptWrite(p, r.LBN, r.Count)
}

func (d *Disk) countSeek(toCyl int64) {
	if toCyl != d.curCyl {
		d.m.SeekCount++
		d.m.SeekCylinders += abs64(toCyl - d.curCyl)
		d.rec.DiskSeek(d.Name, int64(d.eng.Now()), abs64(toCyl-d.curCyl))
	}
}
