package disk

// Byte storage behind the mechanical model. Contents are kept per sector
// so experiments can verify end-to-end data integrity; unwritten sectors
// read as zeros.
//
// Both directions run over the disk's buffer free-list (see pool.go):
// reads fill a recycled transfer buffer, and writes keep their backing
// array alive only while at least one of its sectors is still current —
// overwriting the last live sector of an old write returns its array to
// the free list.

// sector is one stored sector: its bytes plus a reference to the write
// whose backing array holds them (for free-list accounting).
type sector struct {
	data []byte
	src  *wbuf
}

// wbuf is the backing array of one WriteData call, reference-counted by
// the number of its sectors still present in the storage map.
type wbuf struct {
	buf  []byte
	live int
}

// WriteData stores bytes at the given sector without simulating any time
// (used both by the write path and to preload file images before a run).
// The data is copied; the caller keeps ownership of data.
func (d *Disk) WriteData(lbn int64, data []byte) {
	ss := d.Spec.SectorSize
	if len(data)%ss != 0 {
		panic("disk: WriteData length not sector-aligned")
	}
	// One pooled backing array per call, subsliced per sector. Stored
	// sectors are never mutated in place (a later write replaces the map
	// entry), so sharing the backing array between sectors is safe.
	buf := d.pool.Get(len(data))
	copy(buf, data)
	src := &wbuf{buf: buf, live: len(data) / ss}
	for off := 0; off < len(data); off += ss {
		l := lbn + int64(off/ss)
		if old, ok := d.storage[l]; ok && old.src != nil {
			old.src.live--
			if old.src.live == 0 {
				d.pool.Put(old.src.buf)
			}
		}
		d.storage[l] = sector{data: buf[off : off+ss : off+ss], src: src}
	}
}

// ReadData returns the bytes in sectors [lbn, lbn+count) in a transfer
// buffer drawn from the disk's free list. The buffer is owned by the
// caller; pass it to Recycle once its contents are no longer referenced
// to keep the free list warm (dropping it instead is safe but allocates).
func (d *Disk) ReadData(lbn, count int64) []byte {
	ss := d.Spec.SectorSize
	out := d.pool.Get(int(count) * ss)
	for i := int64(0); i < count; i++ {
		dst := out[int(i)*ss : int(i+1)*ss]
		if s, ok := d.storage[lbn+i]; ok {
			copy(dst, s.data)
		} else {
			clear(dst) // pooled buffers carry stale bytes
		}
	}
	return out
}

// Buffer returns an n-byte scratch buffer from the disk's free list with
// unspecified contents, for callers staging data they will hand to
// WriteData. Pass it to Recycle when done.
func (d *Disk) Buffer(n int) []byte { return d.pool.Get(n) }

// Recycle returns a buffer obtained from ReadData, ReadSync, or Buffer
// to the disk's free list. The caller must not retain any reference into
// the buffer (including subslices) afterwards; a recycled buffer is
// reused verbatim by a later read or write.
func (d *Disk) Recycle(buf []byte) { d.pool.Put(buf) }

// StoredSectors returns how many distinct sectors hold data (diagnostic).
func (d *Disk) StoredSectors() int { return len(d.storage) }
