package disk

// Byte storage behind the mechanical model. Contents are kept per sector
// so experiments can verify end-to-end data integrity; unwritten sectors
// read as zeros.

// WriteData stores bytes at the given sector without simulating any time
// (used both by the write path and to preload file images before a run).
func (d *Disk) WriteData(lbn int64, data []byte) {
	ss := d.Spec.SectorSize
	if len(data)%ss != 0 {
		panic("disk: WriteData length not sector-aligned")
	}
	// One backing array per call, subsliced per sector. Stored sectors
	// are never mutated in place (a later write replaces the map entry),
	// so sharing the backing array between sectors is safe.
	buf := make([]byte, len(data))
	copy(buf, data)
	for off := 0; off < len(data); off += ss {
		d.storage[lbn+int64(off/ss)] = buf[off : off+ss : off+ss]
	}
}

// ReadData returns a copy of the bytes in sectors [lbn, lbn+count).
func (d *Disk) ReadData(lbn, count int64) []byte {
	ss := d.Spec.SectorSize
	out := make([]byte, int(count)*ss)
	for i := int64(0); i < count; i++ {
		if sector, ok := d.storage[lbn+i]; ok {
			copy(out[int(i)*ss:], sector)
		}
	}
	return out
}

// StoredSectors returns how many distinct sectors hold data (diagnostic).
func (d *Disk) StoredSectors() int { return len(d.storage) }
