package disk

import (
	"bytes"
	"testing"
	"time"

	"ddio/internal/sim"
)

// newTestDisk returns an engine and a disk with no bus (infinite channel)
// unless withBus is set, in which case a 10 MB/s bus is attached.
func newTestDisk(t *testing.T, spec *Spec) (*sim.Engine, *Disk) {
	t.Helper()
	e := sim.NewEngine()
	t.Cleanup(e.Close)
	d := New(e, "t0", spec, nil, nil)
	return e, d
}

func TestReadWriteRoundTripData(t *testing.T) {
	e, d := newTestDisk(t, HP97560())
	payload := make([]byte, 16*512)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	var got []byte
	e.Go("t", func(p *sim.Proc) {
		d.WriteSync(p, 4096, payload)
		d.Flush(p)
		got = d.ReadSync(p, 4096, 16)
	})
	e.Run()
	if !bytes.Equal(got, payload) {
		t.Fatal("read-back mismatch")
	}
}

func TestUnwrittenSectorsReadZero(t *testing.T) {
	e, d := newTestDisk(t, HP97560())
	var got []byte
	e.Go("t", func(p *sim.Proc) { got = d.ReadSync(p, 100, 4) })
	e.Run()
	for _, b := range got {
		if b != 0 {
			t.Fatal("unwritten sector not zero")
		}
	}
}

func TestSequentialReadApproachesSustainedRate(t *testing.T) {
	e, d := newTestDisk(t, HP97560())
	const blocks = 400 // ~3.2 MB
	var end sim.Time
	e.Go("t", func(p *sim.Proc) {
		for b := int64(0); b < blocks; b++ {
			d.ReadSync(p, b*16, 16)
		}
		end = p.Now()
	})
	e.Run()
	rate := float64(blocks*16*512) / end.Seconds()
	sustained := d.Spec.SustainedRate()
	if rate < 0.85*sustained {
		t.Fatalf("sequential read %.0f B/s, sustained model %.0f B/s", rate, sustained)
	}
	if rate > d.Spec.MediaRate() {
		t.Fatalf("sequential read %.0f B/s beats media rate %.0f", rate, d.Spec.MediaRate())
	}
	m := d.Metrics()
	if m.CacheHits+m.CacheStreams < blocks/2 {
		t.Fatalf("read-ahead served only %d of %d blocks", m.CacheHits+m.CacheStreams, blocks)
	}
}

func TestSequentialWriteApproachesSustainedRate(t *testing.T) {
	e, d := newTestDisk(t, HP97560())
	const blocks = 400
	data := make([]byte, 16*512)
	var end sim.Time
	e.Go("t", func(p *sim.Proc) {
		for b := int64(0); b < blocks; b++ {
			d.WriteSync(p, b*16, data)
		}
		d.Flush(p)
		end = p.Now()
	})
	e.Run()
	rate := float64(blocks*16*512) / end.Seconds()
	if rate < 0.85*d.Spec.SustainedRate() {
		t.Fatalf("sequential write %.0f B/s vs sustained %.0f", rate, d.Spec.SustainedRate())
	}
}

func TestRandomReadsCostSeekPlusRotation(t *testing.T) {
	e, d := newTestDisk(t, HP97560())
	rng := sim.NewRand(3)
	const n = 60
	var end sim.Time
	e.Go("t", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			slot := rng.Int63n(d.Spec.TotalSectors()/16 - 1)
			d.ReadSync(p, slot*16, 16)
		}
		end = p.Now()
	})
	e.Run()
	per := time.Duration(end) / n
	// Expect roughly overhead + seek + half-rev + transfer: 15–30 ms.
	if per < 12*time.Millisecond || per > 35*time.Millisecond {
		t.Fatalf("random 8K read service time %v, want 15-30ms", per)
	}
	if d.Metrics().SeekCount < n/2 {
		t.Fatalf("only %d seeks for %d random reads", d.Metrics().SeekCount, n)
	}
}

func TestSortedReadsBeatUnsorted(t *testing.T) {
	run := func(sortIt bool) time.Duration {
		e := sim.NewEngine()
		defer e.Close()
		d := New(e, "t", HP97560(), nil, nil)
		rng := sim.NewRand(9)
		slots := make([]int64, 80)
		for i := range slots {
			slots[i] = rng.Int63n(d.Spec.TotalSectors()/16-1) * 16
		}
		if sortIt {
			for i := 0; i < len(slots); i++ { // insertion sort, small n
				for j := i; j > 0 && slots[j] < slots[j-1]; j-- {
					slots[j], slots[j-1] = slots[j-1], slots[j]
				}
			}
		}
		var end sim.Time
		e.Go("t", func(p *sim.Proc) {
			for _, s := range slots {
				d.ReadSync(p, s, 16)
			}
			end = p.Now()
		})
		e.Run()
		return end.Duration()
	}
	sorted, unsorted := run(true), run(false)
	if float64(unsorted) < 1.2*float64(sorted) {
		t.Fatalf("sorted %v vs unsorted %v: expected >=20%% win", sorted, unsorted)
	}
}

func TestCacheHitIsMechanicallyFree(t *testing.T) {
	spec := HP97560()
	e, d := newTestDisk(t, spec)
	var first, second time.Duration
	e.Go("t", func(p *sim.Proc) {
		t0 := p.Now()
		d.ReadSync(p, 0, 16)
		first = time.Duration(p.Now() - t0)
		// Wait for read-ahead to cover the next block, then re-read it.
		p.Sleep(100 * time.Millisecond)
		t1 := p.Now()
		d.ReadSync(p, 16, 16)
		second = time.Duration(p.Now() - t1)
	})
	e.Run()
	if second >= first/2 {
		t.Fatalf("cached read %v vs cold %v: expected big win", second, first)
	}
	if d.Metrics().CacheHits != 1 {
		t.Fatalf("cache hits %d, want 1", d.Metrics().CacheHits)
	}
}

func TestReadAheadDisabledByZeroSegment(t *testing.T) {
	spec := HP97560()
	spec.CacheSegmentSectors = 0
	e, d := newTestDisk(t, spec)
	e.Go("t", func(p *sim.Proc) {
		d.ReadSync(p, 0, 16)
		p.Sleep(50 * time.Millisecond)
		d.ReadSync(p, 16, 16)
	})
	e.Run()
	m := d.Metrics()
	if m.CacheHits+m.CacheStreams != 0 {
		t.Fatalf("cache served %d reads with read-ahead disabled", m.CacheHits+m.CacheStreams)
	}
	// Write-behind is also disabled: writes are synchronous.
	e2 := sim.NewEngine()
	defer e2.Close()
	d2 := New(e2, "t2", spec, nil, nil)
	var dur time.Duration
	e2.Go("t", func(p *sim.Proc) {
		t0 := p.Now()
		d2.WriteSync(p, 0, make([]byte, 16*512))
		dur = time.Duration(p.Now() - t0)
	})
	e2.Run()
	if dur < 3*time.Millisecond { // must include rotation+transfer
		t.Fatalf("synchronous write returned in %v", dur)
	}
}

func TestWriteInvalidatesOverlappingReadCache(t *testing.T) {
	e, d := newTestDisk(t, HP97560())
	fresh := make([]byte, 16*512)
	for i := range fresh {
		fresh[i] = 0xAB
	}
	var got []byte
	e.Go("t", func(p *sim.Proc) {
		d.ReadSync(p, 0, 16)     // populates cache with zeros
		d.WriteSync(p, 0, fresh) // overwrite same block
		d.Flush(p)
		got = d.ReadSync(p, 0, 16)
	})
	e.Run()
	if !bytes.Equal(got, fresh) {
		t.Fatal("read served stale cache after overlapping write")
	}
}

func TestFlushDrainsQueueAndWriteBehind(t *testing.T) {
	e, d := newTestDisk(t, HP97560())
	data := make([]byte, 16*512)
	e.Go("t", func(p *sim.Proc) {
		for b := int64(0); b < 10; b++ {
			d.Submit(&Request{Write: true, LBN: b * 16, Count: 16, Data: data})
		}
		d.Flush(p)
		if d.QueueLen() != 0 {
			t.Error("queue not drained after Flush")
		}
		if d.wb.pendingAt(p.Now()) != 0 {
			t.Error("write-behind not drained after Flush")
		}
	})
	e.Run()
}

func TestSchedulerSSTFPicksNearest(t *testing.T) {
	g := testGeom()
	q := []*Request{
		{cyl: 500},
		{cyl: 100},
		{cyl: 105},
	}
	if i := (SSTF{}).Pick(q, 104); i != 2 {
		t.Fatalf("SSTF picked %d, want 2 (cyl 105)", i)
	}
	if i := (SSTF{}).Pick(q, 600); i != 0 {
		t.Fatalf("SSTF picked %d, want 0 (cyl 500)", i)
	}
	_ = g
}

func TestSchedulerCSCANSweepsUpThenWraps(t *testing.T) {
	q := []*Request{
		{cyl: 50},
		{cyl: 900},
		{cyl: 400},
	}
	if i := (CSCAN{}).Pick(q, 300); i != 2 {
		t.Fatalf("CSCAN picked %d, want 2 (cyl 400 ahead)", i)
	}
	if i := (CSCAN{}).Pick(q, 950); i != 0 {
		t.Fatalf("CSCAN wrap picked %d, want 0 (lowest cyl)", i)
	}
}

func TestSchedulerFCFS(t *testing.T) {
	q := []*Request{{cyl: 9}, {cyl: 1}}
	if (FCFS{}).Pick(q, 0) != 0 {
		t.Fatal("FCFS must pick the head")
	}
	for _, s := range []Scheduler{FCFS{}, SSTF{}, CSCAN{}} {
		if s.Name() == "" {
			t.Error("scheduler without a name")
		}
	}
}

func TestOnDoneCallbackFires(t *testing.T) {
	e, d := newTestDisk(t, HP97560())
	var doneAt sim.Time
	d.Submit(&Request{LBN: 0, Count: 16, OnDone: func(tt sim.Time) { doneAt = tt }})
	e.Run()
	if doneAt == 0 {
		t.Fatal("OnDone never fired")
	}
}

func TestWriteWrongLengthPanics(t *testing.T) {
	e, d := newTestDisk(t, HP97560())
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	d.Submit(&Request{Write: true, LBN: 0, Count: 16, Data: make([]byte, 3)})
	e.Run()
}

func TestMetricsCountOps(t *testing.T) {
	e, d := newTestDisk(t, HP97560())
	e.Go("t", func(p *sim.Proc) {
		d.ReadSync(p, 0, 16)
		d.WriteSync(p, 320, make([]byte, 16*512))
		d.Flush(p)
	})
	e.Run()
	m := d.Metrics()
	if m.Reads != 1 || m.Writes != 1 {
		t.Fatalf("ops %d/%d", m.Reads, m.Writes)
	}
	if m.SectorsRead != 16 || m.SectorsWrite != 16 {
		t.Fatalf("sectors %d/%d", m.SectorsRead, m.SectorsWrite)
	}
	if d.StoredSectors() != 16 {
		t.Fatalf("stored %d sectors", d.StoredSectors())
	}
}

func TestNonSequentialWriteDrainsFirst(t *testing.T) {
	e, d := newTestDisk(t, HP97560())
	data := make([]byte, 16*512)
	var gap time.Duration
	e.Go("t", func(p *sim.Proc) {
		d.WriteSync(p, 0, data) // starts a write-behind run
		t0 := p.Now()
		d.WriteSync(p, 50000, data) // far away: must drain + seek
		gap = time.Duration(p.Now() - t0)
	})
	e.Run()
	if gap < 3*time.Millisecond {
		t.Fatalf("non-sequential write accepted in %v, expected drain+seek", gap)
	}
}
