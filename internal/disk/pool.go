package disk

// Pool is a plain free-list of byte buffers, keyed by exact length. The
// simulation engine is single-threaded per run, so no sync.Pool (or any
// locking) is needed and reuse order is deterministic: a Put buffer is
// handed back LIFO to the next Get of the same size. Buffers returned
// by Get carry unspecified contents; callers overwrite or clear what
// they read. The zero value is ready to use. Each Disk owns one for its
// transfer buffers; other per-engine owners (e.g. a tcfs server's reply
// payloads) may embed their own.
type Pool struct {
	free   map[int][][]byte
	gets   int64 // total buffers handed out
	reuses int64 // handed out from the free list rather than allocated
}

// Get returns a buffer of exactly n bytes, reusing a recycled one when
// available.
func (bp *Pool) Get(n int) []byte {
	bp.gets++
	if s := bp.free[n]; len(s) > 0 {
		b := s[len(s)-1]
		s[len(s)-1] = nil
		bp.free[n] = s[:len(s)-1]
		bp.reuses++
		return b
	}
	return make([]byte, n)
}

// Put returns a buffer to the free list. The caller must not retain any
// reference into b (including subslices) after putting it.
func (bp *Pool) Put(b []byte) {
	if len(b) == 0 {
		return
	}
	if bp.free == nil {
		bp.free = make(map[int][][]byte)
	}
	bp.free[len(b)] = append(bp.free[len(b)], b)
}
