package disk

import "ddio/internal/sim"

// racache models the drive's read-ahead cache segment. After a read the
// drive keeps reading sequentially "for free" while otherwise idle; a
// later request that falls inside the segment is served without any
// mechanical delay, and a request just beyond the media point streams at
// media speed. This is what lets the contiguous layout approach the
// drive's sustained rate even though the host issues one 8 KB command at
// a time (paper §6: "benefiting from the disks' own caches").
//
// The cache is accounted lazily: instead of simulating the background
// media activity with events, the media point is advanced arithmetically
// (via geom.walk) whenever the foreground looks at the cache.
type racache struct {
	g       *geom
	valid   bool
	start   int64    // first LBN held
	mediaAt int64    // media has read through here (exclusive)...
	mediaT  sim.Time // ...as of this time
	limit   int64    // read-ahead will not pass this LBN
	flowing bool     // media is still streaming forward
}

func newRACache(g *geom) *racache { return &racache{g: g} }

// advance credits background read-ahead progress up to time t.
func (c *racache) advance(t sim.Time) {
	if !c.valid || !c.flowing || t <= c.mediaT || c.mediaAt >= c.limit {
		if c.mediaAt >= c.limit {
			c.flowing = false
		}
		return
	}
	// Binary-search the furthest LBN whose walk-completion is <= t.
	lo, hi := c.mediaAt, c.limit
	for lo < hi {
		mid := (lo + hi + 1) / 2
		end, _ := c.g.walk(c.mediaT, c.mediaAt, mid-c.mediaAt)
		if end <= t {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	if lo > c.mediaAt {
		end, _ := c.g.walk(c.mediaT, c.mediaAt, lo-c.mediaAt)
		c.mediaAt, c.mediaT = lo, end
	}
	if c.mediaAt >= c.limit {
		c.flowing = false
	}
	c.trim()
}

// trim drops the oldest cached sectors so the segment never exceeds its
// configured size.
func (c *racache) trim() {
	seg := int64(c.g.spec.CacheSegmentSectors)
	if c.mediaAt-c.start > seg {
		c.start = c.mediaAt - seg
	}
}

// freeze stops background read-ahead (the media is needed elsewhere);
// already-cached sectors remain valid for hits.
func (c *racache) freeze(t sim.Time) {
	if c.valid {
		c.advance(t)
		c.flowing = false
		c.limit = c.mediaAt
	}
}

// invalidate discards the cache entirely.
func (c *racache) invalidate() {
	c.valid = false
	c.flowing = false
}

// overlaps reports whether [lbn, lbn+n) intersects the cached/streaming
// range.
func (c *racache) overlaps(lbn, n int64) bool {
	return c.valid && lbn < c.limit && lbn+n > c.start
}

// serveRead attempts to satisfy a read [lbn, lbn+n) at time t from the
// cache or the ongoing stream. It returns (mediaReady, true) when the
// request is a hit: mediaReady is the time the last sector is in the
// drive's buffer (== t for a full hit, later when streaming). A miss
// returns ok == false and leaves the cache for the caller to rebuild.
func (c *racache) serveRead(t sim.Time, lbn, n int64) (mediaReady sim.Time, ok bool) {
	if !c.valid {
		return 0, false
	}
	c.advance(t)
	end := lbn + n
	if lbn < c.start || lbn > c.mediaAt {
		return 0, false // behind the segment or ahead of a dead stream
	}
	if end <= c.mediaAt {
		return t, true // full hit
	}
	if !c.flowing && end > c.mediaAt {
		return 0, false // stream stopped short of the request
	}
	// Streaming: extend the limit so a steady sequential consumer keeps
	// the drive reading ahead, then wait for the media to pass 'end'.
	if wantLimit := end + int64(c.g.spec.CacheSegmentSectors); wantLimit > c.limit {
		if max := c.g.spec.TotalSectors(); wantLimit > max {
			wantLimit = max
		}
		c.limit = wantLimit
	}
	mediaReady, _ = c.g.walk(c.mediaT, c.mediaAt, end-c.mediaAt)
	c.mediaAt, c.mediaT = end, mediaReady
	if c.mediaAt >= c.limit {
		c.flowing = false
	}
	c.trim()
	return mediaReady, true
}

// startStream (re)builds the cache after a mechanical read that finished
// reading through LBN end at time t: the drive continues reading ahead up
// to a full segment beyond the request.
func (c *racache) startStream(start, end int64, t sim.Time) {
	if c.g.spec.CacheSegmentSectors <= 0 {
		c.invalidate()
		return
	}
	c.valid = true
	c.start = start
	c.mediaAt = end
	c.mediaT = t
	c.limit = end + int64(c.g.spec.CacheSegmentSectors)
	if max := c.g.spec.TotalSectors(); c.limit > max {
		c.limit = max
	}
	c.flowing = c.limit > c.mediaAt
	c.trim()
}
