package disk

import (
	"testing"
)

// Unit tests for the read-ahead cache's lazy media accounting, isolated
// from the disk server.

func newTestCache() (*geom, *racache) {
	g := newGeom(HP97560())
	return g, newRACache(g)
}

func TestRACacheMissWhenInvalid(t *testing.T) {
	_, c := newTestCache()
	if _, ok := c.serveRead(0, 0, 16); ok {
		t.Fatal("hit on empty cache")
	}
}

func TestRACacheFullHitAfterStream(t *testing.T) {
	g, c := newTestCache()
	// Mechanical read of [0,16) finished at t0; read-ahead continues.
	t0, _ := g.walk(g.nextSlotStart(0, g.slot(0, 0, 0)), 0, 16)
	c.startStream(0, 16, t0)
	// Much later, the next 16 sectors are fully buffered.
	later := t0 + 10*g.rev
	ready, ok := c.serveRead(later, 16, 16)
	if !ok {
		t.Fatal("miss on read-ahead data")
	}
	if ready != later {
		t.Fatalf("full hit should be instantaneous, got wait until %v from %v", ready, later)
	}
}

func TestRACacheStreamingWaitsForMedia(t *testing.T) {
	g, c := newTestCache()
	t0, _ := g.walk(g.nextSlotStart(0, g.slot(0, 0, 0)), 0, 16)
	c.startStream(0, 16, t0)
	// Immediately ask for the next block: the media hasn't read it yet,
	// so the ready time is in the future but far less than a seek away.
	ready, ok := c.serveRead(t0, 16, 16)
	if !ok {
		t.Fatal("streaming read missed")
	}
	if ready <= t0 {
		t.Fatal("streaming read cannot be instantaneous")
	}
	if ready-t0 > 20*g.st {
		t.Fatalf("streaming wait %v, want about 16 sector times", ready-t0)
	}
}

func TestRACacheLimitStopsReadAhead(t *testing.T) {
	g, c := newTestCache()
	t0, _ := g.walk(g.nextSlotStart(0, g.slot(0, 0, 0)), 0, 16)
	c.startStream(0, 16, t0)
	limit := c.limit
	// Advance far beyond any plausible read-ahead duration.
	c.advance(t0 + 1000*g.rev)
	if c.mediaAt > limit {
		t.Fatalf("read-ahead passed its limit: %d > %d", c.mediaAt, limit)
	}
	if c.flowing {
		t.Fatal("stream still flowing at its limit")
	}
}

func TestRACacheTrimBoundsSegment(t *testing.T) {
	g, c := newTestCache()
	seg := int64(g.spec.CacheSegmentSectors)
	t0, _ := g.walk(g.nextSlotStart(0, g.slot(0, 0, 0)), 0, 16)
	c.startStream(0, 16, t0)
	// Stream far forward by repeatedly consuming at the media point.
	for i := 0; i < 40; i++ {
		end := c.mediaAt + 16
		ready, ok := c.serveRead(c.mediaT, c.mediaAt, 16)
		if !ok {
			t.Fatalf("sequential consumption missed at %d", end)
		}
		_ = ready
	}
	if c.mediaAt-c.start > seg {
		t.Fatalf("cache holds %d sectors, segment is %d", c.mediaAt-c.start, seg)
	}
}

func TestRACacheBehindSegmentMisses(t *testing.T) {
	g, c := newTestCache()
	t0, _ := g.walk(g.nextSlotStart(0, g.slot(0, 0, 0)), 0, 16)
	c.startStream(512, 528, t0) // stream starting at sector 512
	if _, ok := c.serveRead(t0+10*g.rev, 0, 16); ok {
		t.Fatal("hit on data before the cached range")
	}
}

func TestRACacheFreezeStopsGrowthKeepsData(t *testing.T) {
	g, c := newTestCache()
	t0, _ := g.walk(g.nextSlotStart(0, g.slot(0, 0, 0)), 0, 16)
	c.startStream(0, 16, t0)
	c.advance(t0 + 2*g.rev) // some read-ahead happened
	at := c.mediaAt
	c.freeze(t0 + 2*g.rev)
	c.advance(t0 + 50*g.rev)
	if c.mediaAt != at {
		t.Fatalf("frozen cache advanced from %d to %d", at, c.mediaAt)
	}
	// Data already buffered still hits.
	if _, ok := c.serveRead(t0+50*g.rev, 0, 16); !ok {
		t.Fatal("frozen cache lost its data")
	}
	// Data beyond the freeze point misses.
	if _, ok := c.serveRead(t0+50*g.rev, at, 16); ok {
		t.Fatal("frozen cache served unread data")
	}
}

func TestRACacheInvalidate(t *testing.T) {
	g, c := newTestCache()
	t0, _ := g.walk(g.nextSlotStart(0, g.slot(0, 0, 0)), 0, 16)
	c.startStream(0, 16, t0)
	if !c.overlaps(8, 16) {
		t.Fatal("overlap not detected")
	}
	c.invalidate()
	if c.valid || c.overlaps(8, 16) {
		t.Fatal("invalidate did not clear the cache")
	}
}

func TestRACacheZeroSegmentNeverValid(t *testing.T) {
	spec := HP97560()
	spec.CacheSegmentSectors = 0
	g := newGeom(spec)
	c := newRACache(g)
	c.startStream(0, 16, 12345)
	if c.valid {
		t.Fatal("zero-segment cache became valid")
	}
}

// Write-behind buffer accounting.

func TestWCachePendingDrainsOverTime(t *testing.T) {
	g := newGeom(HP97560())
	atT0 := g.nextSlotStart(0, g.slot(0, 0, 0))
	fresh := func() wcache { return wcache{g: g, active: true, at: 0, atT: atT0, end: 64} }
	w := fresh()
	done, _ := w.drainTime() // drainTime does not mutate
	if p := w.pendingAt(atT0); p != 64 {
		t.Fatalf("pending %d at start", p)
	}
	if w := fresh(); w.pendingAt(done) != 0 {
		t.Fatalf("pending after drain time")
	}
	// Partially drained in between (pendingAt advances the media point,
	// so each check uses a fresh buffer).
	mid := atT0 + (done-atT0)/2
	if w := fresh(); func() int64 { return w.pendingAt(mid) }() <= 0 || w.at >= w.end {
		t.Fatalf("midpoint accounting: at=%d end=%d", w.at, w.end)
	}
	if w := fresh(); w.pendingAt(mid) >= 64 {
		t.Fatalf("no progress by midpoint")
	}
}

func TestWCacheDrainTimeIdleIsNow(t *testing.T) {
	g := newGeom(HP97560())
	w := wcache{g: g, active: true, at: 64, atT: 999999, end: 64}
	done, cyl := w.drainTime()
	if done != 999999 {
		t.Fatalf("idle drain time %v", done)
	}
	if wantCyl, _, _ := g.decompose(63); cyl != wantCyl {
		t.Fatalf("idle drain cylinder %d", cyl)
	}
}

func TestWCacheInactivePendingZero(t *testing.T) {
	g := newGeom(HP97560())
	w := wcache{g: g}
	if w.pendingAt(12345) != 0 {
		t.Fatal("inactive buffer reports pending writes")
	}
}
