package disk

// Scheduler selects which queued request a disk serves next. The queue is
// passed in arrival order; Pick returns an index into it.
//
// In the paper, traditional caching leaves scheduling to whatever order
// requests reach each disk (FCFS here, with only a handful outstanding),
// while disk-directed I/O achieves its ordering by presorting the block
// list before issuing, so it too runs over FCFS. SSTF and CSCAN are
// provided for ablations.
type Scheduler interface {
	Name() string
	Pick(queue []*Request, curCyl int64) int
}

// FCFS serves requests strictly in arrival order.
type FCFS struct{}

// Name implements Scheduler.
func (FCFS) Name() string { return "fcfs" }

// Pick implements Scheduler.
func (FCFS) Pick(queue []*Request, curCyl int64) int { return 0 }

// SSTF serves the request with the shortest seek distance from the
// current cylinder, breaking ties by arrival order.
type SSTF struct{}

// Name implements Scheduler.
func (SSTF) Name() string { return "sstf" }

// Pick implements Scheduler.
func (SSTF) Pick(queue []*Request, curCyl int64) int {
	best, bestDist := 0, int64(-1)
	for i, r := range queue {
		d := abs64(r.cyl - curCyl)
		if bestDist < 0 || d < bestDist {
			best, bestDist = i, d
		}
	}
	return best
}

// CSCAN sweeps from the current cylinder toward higher cylinders, wrapping
// to the lowest queued cylinder when none remain ahead.
type CSCAN struct{}

// Name implements Scheduler.
func (CSCAN) Name() string { return "cscan" }

// Pick implements Scheduler.
func (CSCAN) Pick(queue []*Request, curCyl int64) int {
	ahead, aheadCyl := -1, int64(-1)
	low, lowCyl := -1, int64(-1)
	for i, r := range queue {
		if r.cyl >= curCyl && (ahead == -1 || r.cyl < aheadCyl) {
			ahead, aheadCyl = i, r.cyl
		}
		if low == -1 || r.cyl < lowCyl {
			low, lowCyl = i, r.cyl
		}
	}
	if ahead != -1 {
		return ahead
	}
	return low
}
