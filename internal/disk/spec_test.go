package disk

import (
	"testing"
	"testing/quick"
	"time"
)

func TestHP97560PublishedGeometry(t *testing.T) {
	s := HP97560()
	if s.Cylinders != 1962 || s.Heads != 19 || s.SectorsPerTrack != 72 || s.SectorSize != 512 {
		t.Fatalf("geometry %+v", s)
	}
	// 1.3 GB drive (paper Table 1).
	if gb := float64(s.Capacity()) / 1e9; gb < 1.25 || gb > 1.45 {
		t.Fatalf("capacity %.2f GB, want ~1.37", gb)
	}
}

func TestHP97560RotationPeriod(t *testing.T) {
	s := HP97560()
	// 4002 RPM -> 14.99 ms per revolution.
	rev := s.RevTime()
	if rev < 14900*time.Microsecond || rev > 15100*time.Microsecond {
		t.Fatalf("rev time %v, want ~14.99ms", rev)
	}
	if s.SectorTime()*time.Duration(s.SectorsPerTrack) != rev {
		t.Fatal("RevTime must be an exact multiple of SectorTime")
	}
}

func TestHP97560SeekCurveEndpoints(t *testing.T) {
	// Published curve: 3.24+0.400*sqrt(d) ms short, 8.00+0.008d ms long.
	cases := []struct {
		d    int
		want time.Duration
		tol  time.Duration
	}{
		{0, 0, 0},
		{1, 3640 * time.Microsecond, 10 * time.Microsecond},
		{383, 11067 * time.Microsecond, 40 * time.Microsecond},
		{384, 11072 * time.Microsecond, 40 * time.Microsecond},
		{1961, 23688 * time.Microsecond, 40 * time.Microsecond},
	}
	for _, c := range cases {
		got := HP97560Seek(c.d)
		diff := got - c.want
		if diff < 0 {
			diff = -diff
		}
		if diff > c.tol {
			t.Errorf("seek(%d) = %v, want %v±%v", c.d, got, c.want, c.tol)
		}
	}
}

// Property: the seek curve is monotonically non-decreasing — sorting by
// cylinder really does reduce total seek time.
func TestQuickSeekMonotonic(t *testing.T) {
	f := func(a, b uint16) bool {
		da, db := int(a)%1962, int(b)%1962
		if da > db {
			da, db = db, da
		}
		return HP97560Seek(da) <= HP97560Seek(db)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMediaAndSustainedRates(t *testing.T) {
	s := HP97560()
	media := s.MediaRate()
	sustained := s.SustainedRate()
	if sustained >= media {
		t.Fatalf("sustained %.0f >= media %.0f", sustained, media)
	}
	// The paper quotes 2.34 Mbytes/s peak (2^20 units); our sustained
	// model lands within ~8% of it (skew slots cost slightly more than
	// the switch times they hide).
	mb := sustained / (1 << 20)
	if mb < 2.1 || mb > 2.46 {
		t.Fatalf("sustained rate %.3f MB/s, want ~2.34", mb)
	}
}

func TestSpecTotalSectors(t *testing.T) {
	s := HP97560()
	want := int64(1962 * 19 * 72)
	if s.TotalSectors() != want {
		t.Fatalf("TotalSectors %d, want %d", s.TotalSectors(), want)
	}
}
