package disk

import (
	"testing"
	"testing/quick"

	"ddio/internal/sim"
)

func testGeom() *geom { return newGeom(HP97560()) }

func TestDecomposeComposeRoundTrip(t *testing.T) {
	g := testGeom()
	for _, lbn := range []int64{0, 1, 71, 72, 1367, 1368, g.spec.TotalSectors() - 1} {
		c, h, s := g.decompose(lbn)
		if got := g.compose(c, h, s); got != lbn {
			t.Errorf("roundtrip %d -> (%d,%d,%d) -> %d", lbn, c, h, s, got)
		}
	}
}

// Property: decompose/compose are inverse bijections over the device.
func TestQuickGeometryBijection(t *testing.T) {
	g := testGeom()
	total := g.spec.TotalSectors()
	f := func(x uint32) bool {
		lbn := int64(x) % total
		c, h, s := g.decompose(lbn)
		if c < 0 || c >= int64(g.spec.Cylinders) || h < 0 || h >= g.heads || s < 0 || s >= g.spt {
			return false
		}
		return g.compose(c, h, s) == lbn
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSlotSkewAdvancesPerTrack(t *testing.T) {
	g := testGeom()
	// Sector 0 of consecutive tracks is skewed by TrackSkew slots.
	s0 := g.slot(0, 0, 0)
	s1 := g.slot(0, 1, 0)
	if (s1-s0+g.spt)%g.spt != int64(g.spec.TrackSkew) {
		t.Fatalf("track skew %d, want %d", (s1-s0+g.spt)%g.spt, g.spec.TrackSkew)
	}
	// Crossing a cylinder adds CylinderSkew on top.
	sLast := g.slot(0, g.heads-1, 0)
	sNext := g.slot(1, 0, 0)
	want := int64(g.spec.TrackSkew+g.spec.CylinderSkew) % g.spt
	if (sNext-sLast+g.spt)%g.spt != want {
		t.Fatalf("cylinder skew %d, want %d", (sNext-sLast+g.spt)%g.spt, want)
	}
}

func TestNextSlotStartWithinOneRevolution(t *testing.T) {
	g := testGeom()
	for _, now := range []sim.Time{0, 1, g.st, g.rev - 1, g.rev, 12345678} {
		for _, k := range []int64{0, 1, 35, 71} {
			start := g.nextSlotStart(now, k)
			if start < now || start >= now+g.rev {
				t.Fatalf("nextSlotStart(%v,%d) = %v outside [now, now+rev)", now, k, start)
			}
			// The returned time must actually be slot k's start.
			if (start % g.rev) != sim.Time(k)*g.st {
				t.Fatalf("slot %d starts at phase %v", k, start%g.rev)
			}
		}
	}
}

func TestWalkFullTrackTakesOneRevolution(t *testing.T) {
	g := testGeom()
	// Start exactly at slot of sector 0 of track 0.
	t0 := g.nextSlotStart(0, g.slot(0, 0, 0))
	end, _ := g.walk(t0, 0, g.spt)
	if end-t0 != g.rev {
		t.Fatalf("full-track walk took %v, want one rev %v", end-t0, g.rev)
	}
}

func TestWalkSequentialTracksHideSwitch(t *testing.T) {
	g := testGeom()
	t0 := g.nextSlotStart(0, g.slot(0, 0, 0))
	end1, _ := g.walk(t0, 0, g.spt)       // track 0
	end2, _ := g.walk(end1, g.spt, g.spt) // track 1 immediately after
	gap := end2 - end1 - g.rev            // extra beyond one revolution
	want := sim.Time(g.spec.TrackSkew) * g.st
	if gap != want {
		t.Fatalf("inter-track gap %v, want skew %v", gap, want)
	}
}

func TestWalkContinuationHasNoRotationalLoss(t *testing.T) {
	g := testGeom()
	t0 := g.nextSlotStart(0, g.slot(0, 0, 0))
	// Reading 16-sector blocks back to back must cost exactly 16
	// sector times each while on one track.
	end1, _ := g.walk(t0, 0, 16)
	end2, _ := g.walk(end1, 16, 16)
	if end2-end1 != 16*g.st {
		t.Fatalf("continuation block took %v, want %v", end2-end1, 16*g.st)
	}
}

func TestWalkMissedRotationCostsFullRev(t *testing.T) {
	g := testGeom()
	t0 := g.nextSlotStart(0, g.slot(0, 0, 0))
	end1, _ := g.walk(t0, 0, 16)
	// Ask for the same block again a hair later: nearly a full rev wait.
	end2, _ := g.walk(end1+1, 0, 16)
	wait := end2 - (end1 + 1) - 16*g.st
	if wait < g.rev-17*g.st || wait > g.rev {
		t.Fatalf("re-read rotational wait %v, want ~%v", wait, g.rev-16*g.st)
	}
}

func TestAccessIncludesSeek(t *testing.T) {
	g := testGeom()
	spec := g.spec
	farLBN := g.compose(1000, 0, 0)
	endNear, _ := g.access(0, 0, 0, 16)
	endFar, _ := g.access(0, 0, farLBN, 16)
	minDiff := sim.Time(spec.Seek(1000)) - g.rev // rotational phase can differ by up to a rev
	if endFar-endNear < minDiff {
		t.Fatalf("far access only %v slower, seek alone is %v", endFar-endNear, spec.Seek(1000))
	}
	if _, endCyl := g.access(0, 0, farLBN, 16); endCyl != 1000 {
		t.Fatalf("arm ended at cylinder %d, want 1000", endCyl)
	}
}

func TestAccessOutOfRangePanics(t *testing.T) {
	g := testGeom()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	g.check(g.spec.TotalSectors(), 1)
}

func TestWalkZeroSectors(t *testing.T) {
	g := testGeom()
	end, cyl := g.walk(1234, 72*19*3, 0)
	if end != 1234 || cyl != 3 {
		t.Fatalf("zero walk = (%v, %d)", end, cyl)
	}
}
