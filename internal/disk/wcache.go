package disk

import "ddio/internal/sim"

// wcache models the drive's write-behind ("immediate report") buffer: a
// write command completes as soon as its data is in the drive buffer, and
// the media commits it in the background. Sequential writes therefore
// stream at close to media rate, which the paper's write throughputs
// (slightly above its read throughputs) imply the HP 97560 did.
//
// Like racache, progress is accounted lazily with geom.walk rather than
// with background events. The buffer holds a single contiguous run; a
// non-sequential write drains the run first (no internal reordering).
type wcache struct {
	g      *geom
	active bool
	at     int64    // media has committed through here (exclusive)...
	atT    sim.Time // ...as of this time (a walk origin, not wall progress)
	end    int64    // buffered run extends to here
}

// pendingAt returns how many sectors remain uncommitted at time t.
func (w *wcache) pendingAt(t sim.Time) int64 {
	if !w.active {
		return 0
	}
	w.advance(t)
	return w.end - w.at
}

// advance credits background commit progress up to time t.
func (w *wcache) advance(t sim.Time) {
	if !w.active || w.at >= w.end {
		return
	}
	lo, hi := w.at, w.end
	for lo < hi {
		mid := (lo + hi + 1) / 2
		endT, _ := w.g.walk(w.atT, w.at, mid-w.at)
		if endT <= t {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	if lo > w.at {
		endT, _ := w.g.walk(w.atT, w.at, lo-w.at)
		w.at, w.atT = lo, endT
	}
}

// drainTime returns the absolute time at which all buffered sectors will
// be on media, and the cylinder the arm ends on.
func (w *wcache) drainTime() (sim.Time, int64) {
	if !w.active || w.at >= w.end {
		cyl := int64(0)
		if w.active && w.end > 0 {
			cyl, _, _ = w.g.decompose(w.end - 1)
		}
		return w.atT, cyl
	}
	return w.g.walk(w.atT, w.at, w.end-w.at)
}

// drainWrites blocks p until the drive's write buffer is empty, updating
// the arm position.
func (d *Disk) drainWrites(p *sim.Proc) {
	if !d.wb.active {
		return
	}
	d.wb.advance(p.Now())
	if d.wb.at < d.wb.end {
		endT, endCyl := d.wb.drainTime()
		p.SleepUntil(endT)
		d.wb.at, d.wb.atT = d.wb.end, endT
		d.curCyl = endCyl
	} else if d.wb.end > 0 {
		d.curCyl, _, _ = d.g.decompose(d.wb.end - 1)
	}
	d.wb.active = false
}

// acceptWrite admits sectors [lbn, lbn+n) into the write buffer, blocking
// p when the buffer is full or when the run is not sequential with the
// buffered one. Capacity is the drive's cache segment size; when
// write-behind is disabled (segment 0) the write is fully synchronous.
func (d *Disk) acceptWrite(p *sim.Proc, lbn, n int64) {
	w := &d.wb
	capacity := int64(d.Spec.CacheSegmentSectors)
	if capacity == 0 {
		// Synchronous write-through.
		d.countSeek(cylOf(d.g, lbn))
		end, endCyl := d.g.access(d.curCyl, p.Now(), lbn, n)
		p.SleepUntil(end)
		d.curCyl = endCyl
		return
	}
	if w.active && lbn != w.end {
		d.drainWrites(p) // non-sequential: commit the old run first
	}
	if w.active {
		// Sequential append; wait for space if the buffer is full.
		for w.pendingAt(p.Now())+n > capacity && w.at < w.end {
			freeAt, _ := d.g.walk(w.atT, w.at, (w.end+n-capacity)-w.at)
			p.SleepUntil(freeAt)
		}
		w.advance(p.Now())
		w.end += n
		return
	}
	// Start a new run: the arm departs now; positioning is folded into
	// the walk origin (seek first, then rotational wait via walk).
	d.countSeek(cylOf(d.g, lbn))
	seek := sim.Time(0)
	if c := cylOf(d.g, lbn); c != d.curCyl {
		seek = sim.Time(d.Spec.Seek(int(abs64(c - d.curCyl))))
		d.curCyl = c
	}
	w.active = true
	w.at = lbn
	w.atT = p.Now() + seek
	w.end = lbn + n
}

func cylOf(g *geom, lbn int64) int64 {
	c, _, _ := g.decompose(lbn)
	return c
}
