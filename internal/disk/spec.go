// Package disk implements a mechanical disk-drive model in the style of
// Ruemmler and Wilkes ("An Introduction to Disk Drive Modeling", IEEE
// Computer 1994), parameterized for the HP 97560 used by the paper
// (validated in Kotz/Toh/Radhakrishnan, Dartmouth TR94-220).
//
// The model tracks geometry (cylinders, heads, sectors, track and
// cylinder skew), a piecewise seek-time curve, rotational position
// derived from absolute virtual time, a read-ahead cache segment, and a
// per-disk request queue with pluggable scheduling. Data is carried for
// real: writes store bytes, reads return them, so higher layers can
// verify end-to-end correctness.
package disk

import (
	"math"
	"time"
)

// Spec describes a disk drive model.
type Spec struct {
	Name string

	// Geometry.
	Cylinders       int
	Heads           int // data surfaces == tracks per cylinder
	SectorsPerTrack int
	SectorSize      int

	// Mechanics.
	RPM        float64
	HeadSwitch time.Duration
	// Seek returns the time to move the arm across the given number of
	// cylinders (>= 1). Zero distance never calls Seek.
	Seek func(cylinders int) time.Duration

	// TrackSkew and CylinderSkew are the number of sector slots the
	// logical origin of a track is rotated relative to the previous
	// track, hiding head-switch and cylinder-switch times during
	// sequential transfers. CylinderSkew is applied in addition to
	// TrackSkew at cylinder boundaries.
	TrackSkew    int
	CylinderSkew int

	// ControllerOverhead is the fixed per-command processing time.
	ControllerOverhead time.Duration

	// CacheSegmentSectors is the size of the read-ahead cache segment.
	// Zero disables read-ahead (an ablation knob).
	CacheSegmentSectors int
}

// HP97560 returns the paper's disk: a 1.3 GB HP 97560.
//
// Parameters follow Ruemmler & Wilkes and Dartmouth TR94-220: 1962
// cylinders, 19 data heads, 72 sectors of 512 bytes per track, 4002 RPM;
// seek(d) = 3.24 + 0.400·sqrt(d) ms for short seeks (d <= 383) and
// 8.00 + 0.008·d ms for long ones. Skews are chosen to just cover the
// head-switch and single-cylinder-seek times, which yields the sustained
// sequential rate of about 2.3 MB/s that the paper quotes as the 2.34
// MB/s "peak transfer rate" (16 disks => 37.5 MB/s aggregate).
func HP97560() *Spec {
	return &Spec{
		Name:                "HP97560",
		Cylinders:           1962,
		Heads:               19,
		SectorsPerTrack:     72,
		SectorSize:          512,
		RPM:                 4002,
		HeadSwitch:          1 * time.Millisecond,
		Seek:                HP97560Seek,
		TrackSkew:           5,  // ceil(1.0 ms / 208 us per sector)
		CylinderSkew:        13, // with TrackSkew totals 18 slots ~= seek(1)
		ControllerOverhead:  1100 * time.Microsecond,
		CacheSegmentSectors: 256, // 128 KB read-ahead segment
	}
}

// HP97560Seek is the published piecewise seek curve for the HP 97560.
func HP97560Seek(d int) time.Duration {
	if d <= 0 {
		return 0
	}
	var ms float64
	if d <= 383 {
		ms = 3.24 + 0.400*math.Sqrt(float64(d))
	} else {
		ms = 8.00 + 0.008*float64(d)
	}
	return time.Duration(ms * float64(time.Millisecond))
}

// SectorTime returns the time one sector passes under the head.
func (s *Spec) SectorTime() time.Duration {
	return time.Duration(60e9 / (s.RPM * float64(s.SectorsPerTrack)))
}

// RevTime returns one rotation period (SectorsPerTrack * SectorTime, so
// that slot arithmetic is exact in integer nanoseconds).
func (s *Spec) RevTime() time.Duration {
	return s.SectorTime() * time.Duration(s.SectorsPerTrack)
}

// TotalSectors returns the drive's capacity in sectors.
func (s *Spec) TotalSectors() int64 {
	return int64(s.Cylinders) * int64(s.Heads) * int64(s.SectorsPerTrack)
}

// Capacity returns the drive's capacity in bytes.
func (s *Spec) Capacity() int64 { return s.TotalSectors() * int64(s.SectorSize) }

// MediaRate returns the instantaneous media transfer rate in bytes/sec
// while the head is over a track.
func (s *Spec) MediaRate() float64 {
	return float64(s.SectorSize) / s.SectorTime().Seconds()
}

// SustainedRate returns the long-run sequential transfer rate in
// bytes/sec, accounting for head switches and cylinder-to-cylinder seeks
// hidden behind skew: per cylinder, Heads revolutions plus the skew slots
// consumed at each track and cylinder boundary.
func (s *Spec) SustainedRate() float64 {
	st := s.SectorTime()
	perCyl := time.Duration(s.Heads)*s.RevTime() +
		time.Duration((s.Heads-1)*s.TrackSkew)*st +
		time.Duration(s.TrackSkew+s.CylinderSkew)*st
	bytesPerCyl := float64(s.Heads * s.SectorsPerTrack * s.SectorSize)
	return bytesPerCyl / perCyl.Seconds()
}
