package core

import (
	"fmt"
	"sort"
	"time"

	"ddio/internal/cluster"
	"ddio/internal/disk"
	"ddio/internal/hpf"
	"ddio/internal/pfs"
	"ddio/internal/sim"
	"ddio/internal/trace"
)

// collReq is the collective request multicast to every IOP: the access
// pattern itself travels, and each IOP re-derives its local work from it
// (the paper's "determine the set of file data local to this IOP").
type collReq struct {
	write bool
	dec   hpf.Access
	src   *cluster.Node
	done  *sim.WaitGroup // signaled (once per IOP) back at the requester
}

// Server is the disk-directed IOP engine.
type Server struct {
	m    *cluster.Machine
	node *cluster.Node
	f    *pfs.File
	prm  Params
	m2   Metrics

	localDisks                 []int            // global disk indices served by this IOP
	pool                       *sim.ServicePool // persistent collective-request service threads
	bufNames                   [][]string       // precomputed buffer-thread proc names [localDisk][buffer]
	deliveredName, workersName string           // precomputed per-request WaitGroup names
	rec                        *trace.Recorder  // event tracing, nil when disabled
	traceName                  string           // precomputed node label for trace records
	reqSeq                     int64            // per-server collective-request id in traces
}

// NewServer builds the disk-directed server for one IOP: a dispatcher
// daemon that demultiplexes the mailbox, and a pool of persistent
// service threads that execute collective requests (cf. the paper's
// fixed per-IOP thread structure).
func NewServer(m *cluster.Machine, node *cluster.Node, f *pfs.File, prm Params) *Server {
	if prm.BuffersPerDisk < 1 {
		prm.BuffersPerDisk = 1
	}
	if prm.ServiceThreads < 1 {
		prm.ServiceThreads = 1
	}
	s := &Server{m: m, node: node, f: f, prm: prm}
	s.rec = m.Eng.Recorder()
	s.traceName = node.String()
	for d := range f.Disks {
		if d%len(m.IOPs) == node.Index {
			s.localDisks = append(s.localDisks, d)
		}
	}
	s.bufNames = make([][]string, len(s.localDisks))
	for i, d := range s.localDisks {
		s.bufNames[i] = make([]string, prm.BuffersPerDisk)
		for b := 0; b < prm.BuffersPerDisk; b++ {
			s.bufNames[i][b] = fmt.Sprintf("dd-buf:%s:d%d.%d", node, d, b)
		}
	}
	s.deliveredName = "dd-delivered:" + node.String()
	s.workersName = "dd-workers:" + node.String()
	s.pool = sim.NewServicePool(m.Eng, "dd-work:"+node.String(), prm.ServiceThreads,
		func(w *sim.Proc, item any) { s.serve(w, item.(*collReq)) })
	m.Eng.GoDaemon("dd-dispatch:"+node.String(), s.dispatch)
	return s
}

// Metrics returns a copy of the server's counters.
func (s *Server) Metrics() Metrics { return s.m2 }

func (s *Server) dispatch(p *sim.Proc) {
	for {
		msg := s.node.Mail.Get(p)
		req, ok := msg.(*collReq)
		if !ok {
			panic(fmt.Sprintf("core: unexpected message %T", msg))
		}
		s.node.CPU.UseFor(p, s.prm.IOPStartCPU)
		s.pool.Submit(req)
	}
}

// serve executes one collective request end to end on this IOP.
func (s *Server) serve(p *sim.Proc, req *collReq) {
	s.m2.Requests++
	reqID := s.reqSeq
	s.reqSeq++
	reqStart := p.Now()
	// Plan: the per-disk block lists, sorted by physical location when
	// presorting (Figure 1c), otherwise in file order.
	totalBlocks := 0
	bs := int64(s.f.BlockSize)
	plans := make([][]int, len(s.localDisks))
	for i, d := range s.localDisks {
		blocks := s.f.LocalBlocks(d)
		if req.dec.Partial() {
			// A partial access (workload request streams) touches only
			// some blocks; plan only those the pattern covers.
			// LocalBlocks returns a fresh slice, so filter in place.
			kept := blocks[:0]
			for _, b := range blocks {
				if len(req.dec.RunsInRange(int64(b)*bs, bs)) > 0 {
					kept = append(kept, b)
				}
			}
			blocks = kept
		}
		if s.prm.Presort {
			blocks = append([]int(nil), blocks...)
			sort.Slice(blocks, func(a, b int) bool {
				return s.f.LBN(blocks[a]) < s.f.LBN(blocks[b])
			})
		}
		plans[i] = blocks
		totalBlocks += len(blocks)
	}
	s.node.CPU.UseFor(p, s.prm.PlanPerBlockCPU*time.Duration(totalBlocks))
	// Recorded after planning so the payload (the bytes this IOP will
	// move) is known; T still carries the arrival time.
	s.rec.RequestStart(s.traceName, reqID, int64(reqStart), req.write,
		int64(totalBlocks)*int64(s.f.BlockSize))

	// delivered counts every Memput landed / every block durably
	// written, so "finished" really means the data has arrived.
	delivered := sim.NewWaitGroup(s.m.Eng, s.deliveredName, 0)
	workers := sim.NewWaitGroup(s.m.Eng, s.workersName, 0)
	for i, d := range s.localDisks {
		dd := s.f.Disks[d]
		it := &blockIter{blocks: plans[i]}
		for b := 0; b < s.prm.BuffersPerDisk; b++ {
			workers.Add(1)
			s.m.Eng.Go(s.bufNames[i][b], func(w *sim.Proc) {
				defer workers.Done()
				if req.write {
					s.writeLoop(w, dd, it, req.dec, delivered)
				} else {
					s.readLoop(w, dd, it, req.dec, delivered)
				}
			})
		}
	}
	workers.Wait(p)
	if req.write {
		// The measured time includes waiting for write-behind (§5).
		for _, d := range s.localDisks {
			s.f.Disks[d].Flush(p)
		}
	}
	delivered.Wait(p)
	s.rec.RequestEnd(s.traceName, reqID, int64(reqStart), int64(p.Now()))
	s.m.SendC(s.node, req.src, 0, s.prm.RequestCPU, req.done.DoneC())
}

// diskRead is ReadSync with the server's bounded-retry policy: a
// transient failure sleeps the policy's (doubling) backoff in simulated
// time and resubmits, up to Retry.Limit times. Exhaustion is counted as
// a lost request — the experiment layer reports it as a typed failure,
// never silent loss.
func (s *Server) diskRead(w *sim.Proc, dd *disk.Disk, lbn, count int64) ([]byte, error) {
	data, err := dd.TryReadSync(w, lbn, count)
	for attempt := 1; err != nil && attempt <= s.prm.Retry.Limit; attempt++ {
		s.m2.DiskRetries++
		t0 := w.Now()
		w.Sleep(s.prm.Retry.BackoffFor(attempt))
		s.rec.Retry(s.traceName, int64(t0), int64(w.Now()), attempt)
		if data, err = dd.TryReadSync(w, lbn, count); err == nil {
			s.m2.DiskRecovered++
		}
	}
	if err != nil {
		s.m2.DiskLost++
	}
	return data, err
}

// diskWrite is WriteSync under the same bounded-retry policy.
func (s *Server) diskWrite(w *sim.Proc, dd *disk.Disk, lbn int64, data []byte) error {
	err := dd.TryWriteSync(w, lbn, data)
	for attempt := 1; err != nil && attempt <= s.prm.Retry.Limit; attempt++ {
		s.m2.DiskRetries++
		t0 := w.Now()
		w.Sleep(s.prm.Retry.BackoffFor(attempt))
		s.rec.Retry(s.traceName, int64(t0), int64(w.Now()), attempt)
		if err = dd.TryWriteSync(w, lbn, data); err == nil {
			s.m2.DiskRecovered++
		}
	}
	if err != nil {
		s.m2.DiskLost++
	}
	return err
}

// blockIter hands out blocks of one disk's plan to its buffer threads;
// with two threads this is the paper's double buffering ("letting the
// disk thread choose which block to transfer next" — the shared queue
// plus the disk's FCFS service realizes the planned order).
type blockIter struct {
	blocks []int
	next   int
}

func (it *blockIter) take() (int, bool) {
	if it.next >= len(it.blocks) {
		return 0, false
	}
	b := it.blocks[it.next]
	it.next++
	return b, true
}

// readLoop: disk → buffer → Memputs to the destination CPs.
func (s *Server) readLoop(w *sim.Proc, dd *disk.Disk, it *blockIter, dec hpf.Access, delivered *sim.WaitGroup) {
	bs := int64(s.f.BlockSize)
	for {
		b, ok := it.take()
		if !ok {
			return
		}
		s.m2.Blocks++
		data, err := s.diskRead(w, dd, s.f.LBN(b), s.f.SectorsPerBlock())
		if err != nil {
			// Retry budget exhausted: the block is lost (counted in
			// DiskLost and surfaced as a typed failure by the runner);
			// nothing was read, so there is no data to deliver or recycle.
			continue
		}
		runs := dec.RunsInRange(int64(b)*bs, bs)
		if s.prm.GatherScatter {
			s.memputGather(w, b, data, runs, delivered)
			dd.Recycle(data)
			continue
		}
		sent := sim.NewWaitGroup(s.m.Eng, "dd-sent", 0)
		for _, r := range runs {
			s.m2.Memputs++
			delivered.Add(1)
			sent.Add(1)
			piece := data[r.FileOff-int64(b)*bs : r.FileOff-int64(b)*bs+r.Len]
			s.m.Memput(s.node, s.m.CPs[r.CP], int(r.MemOff), piece, s.prm.MemputCPU,
				sent.DoneC(), delivered.DoneC())
		}
		// The buffer is reusable once the NIC has drained it.
		sent.Wait(w)
		dd.Recycle(data)
	}
}

// writeLoop: Memgets from the source CPs → buffer → disk.
func (s *Server) writeLoop(w *sim.Proc, dd *disk.Disk, it *blockIter, dec hpf.Access, delivered *sim.WaitGroup) {
	bs := int64(s.f.BlockSize)
	for {
		b, ok := it.take()
		if !ok {
			return
		}
		s.m2.Blocks++
		runs := dec.RunsInRange(int64(b)*bs, bs)
		// Scratch block from the disk's free list; only run-covered bytes
		// are ever read out of it, so no clearing is needed.
		buf := dd.Buffer(s.f.BlockSize)
		covered := coveredBytes(runs)
		arrived := sim.NewWaitGroup(s.m.Eng, "dd-arrived", 0)
		if s.prm.GatherScatter {
			s.memgetGather(w, b, buf, runs, arrived)
		} else {
			for _, r := range runs {
				s.m2.Memgets++
				arrived.Add(1)
				dst := buf[r.FileOff-int64(b)*bs : r.FileOff-int64(b)*bs+r.Len]
				s.m.Memget(s.node, s.m.CPs[r.CP], int(r.MemOff), dst,
					s.prm.MemgetCPU, s.prm.MemgetRemoteCPU, arrived.DoneC())
			}
		}
		arrived.Wait(w)
		if covered < bs {
			// The pattern does not cover the whole block: preserve the
			// uncovered bytes (read-modify-write) by overlaying the
			// fetched runs onto the block's current contents.
			s.m2.PartialBlockRMW++
			if old, err := s.diskRead(w, dd, s.f.LBN(b), s.f.SectorsPerBlock()); err == nil {
				blockOff := int64(b) * bs
				for _, r := range runs {
					copy(old[r.FileOff-blockOff:r.FileOff-blockOff+r.Len], buf[r.FileOff-blockOff:r.FileOff-blockOff+r.Len])
				}
				dd.Recycle(buf)
				buf = old
			}
			// On a lost RMW read the fetched runs are written as-is: the
			// loss of the uncovered bytes is already counted in DiskLost
			// and reported as a typed failure.
		}
		s.diskWrite(w, dd, s.f.LBN(b), buf)
		dd.Recycle(buf)
		// Durability is awaited via disk.Flush in serve; 'delivered' is
		// only tracked for reads.
	}
}

// coveredBytes returns the number of distinct bytes the runs cover.
// Workload request streams may carry overlapping slots, so each byte
// must be counted once: summing run lengths would overstate coverage and
// let a partial block skip its read-modify-write, writing stale scratch
// bytes over file data the pattern never touched. Runs arrive sorted by
// FileOff (the RunsInRange contract), so a single interval-merge pass
// suffices.
func coveredBytes(runs []hpf.Run) int64 {
	var covered int64
	var lo, hi int64
	for i, r := range runs {
		if i == 0 || r.FileOff > hi {
			covered += hi - lo
			lo, hi = r.FileOff, r.FileOff+r.Len
			continue
		}
		if end := r.FileOff + r.Len; end > hi {
			hi = end
		}
	}
	return covered + (hi - lo)
}
