package core

import (
	"fmt"
	"testing"

	"ddio/internal/hpf"
	"ddio/internal/pfs"
	"ddio/internal/sim"
	"ddio/internal/workload"
)

// TestCoveredBytesDedupesOverlap pins the interval-merge helper: summing
// run lengths overstates coverage when runs overlap.
func TestCoveredBytesDedupesOverlap(t *testing.T) {
	cases := []struct {
		runs []hpf.Run
		want int64
	}{
		{nil, 0},
		{[]hpf.Run{{FileOff: 0, Len: 100}}, 100},
		{[]hpf.Run{{FileOff: 0, Len: 100}, {FileOff: 100, Len: 50}}, 150},
		{[]hpf.Run{{FileOff: 0, Len: 100}, {FileOff: 50, Len: 100}}, 150},
		{[]hpf.Run{{FileOff: 0, Len: 100}, {FileOff: 10, Len: 20}}, 100},
		{[]hpf.Run{{FileOff: 0, Len: 100}, {FileOff: 200, Len: 10}}, 110},
		// The bug's shape: two 5000-byte runs overlapping by 4000 sum to
		// 10000 (>= an 8192 block) but cover only 6000 distinct bytes.
		{[]hpf.Run{{FileOff: 0, Len: 5000}, {FileOff: 1000, Len: 5000}}, 6000},
	}
	for i, c := range cases {
		if got := coveredBytes(c.runs); got != c.want {
			t.Errorf("case %d: coveredBytes = %d, want %d", i, got, c.want)
		}
	}
}

// TestOverlappingWriteSlotsKeepRMW is the end-to-end regression test for
// the overlap-accounting bug: writeLoop's read-modify-write decision
// summed run lengths, so overlapping partial-block write slots whose
// lengths add up past the block size skipped the RMW and destroyed the
// block's uncovered tail. Two workload request slots overlap within
// block 0 — 5000 + 5000 bytes covering only [0, 6000) of an 8192-byte
// block — so the RMW must still run and the tail must survive.
func TestOverlappingWriteSlotsKeepRMW(t *testing.T) {
	r := newRig(t, rigOpts{ncp: 2, niop: 1, ndisks: 1, blocks: 2, layout: pfs.Contiguous})
	slots := []workload.Slot{
		{CP: 0, FileOff: 0, MemOff: 0, Len: 5000},
		{CP: 1, FileOff: 1000, MemOff: 0, Len: 5000},
	}
	acc := workload.NewSlotAccess(slots, len(r.m.CPs))
	r.f.Preload() // uncovered bytes must survive the partial write
	// Overlapping writes carry the identical deterministic file image
	// (the workload layer's contract), so write order cannot matter.
	for cp, node := range r.m.CPs {
		node.Mem = make([]byte, acc.CPBytes(cp))
		for _, s := range acc.Slots(cp) {
			pfs.FillImage(node.Mem[s.MemOff:s.MemOff+s.Len], s.FileOff)
		}
	}
	client := NewClient(r.m, r.f, acc, r.servers, DefaultParams())
	for cp := range r.m.CPs {
		cp := cp
		r.eng.Go(fmt.Sprintf("cp%d", cp), func(p *sim.Proc) { client.CollectiveCP(p, cp, true) })
	}
	r.eng.Run()
	if client.EndTime() == 0 {
		t.Fatalf("collective did not complete; blocked: %v", r.eng.BlockedProcs())
	}
	if got := r.totalMetrics().PartialBlockRMW; got != 1 {
		t.Fatalf("PartialBlockRMW = %d, want 1 (overlap must not fake full coverage)", got)
	}
	r.verifyWrite(t)
}
