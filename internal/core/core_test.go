package core

import (
	"time"

	"testing"

	"ddio/internal/pfs"
	"ddio/internal/sim"
)

func TestCollectiveReadCorrectnessAcrossPatterns(t *testing.T) {
	for _, layout := range []pfs.LayoutKind{pfs.Contiguous, pfs.RandomBlocks} {
		for _, pattern := range []string{"ra", "rn", "rb", "rc", "rnb", "rbb", "rcb", "rbc", "rcc", "rcn"} {
			r := newRig(t, rigOpts{ncp: 4, niop: 2, ndisks: 4, blocks: 32, layout: layout})
			dec := mustDecomp(t, pattern, r.f.Size(), 1024, 4)
			r.collective(t, dec, false, DefaultParams())
			r.verifyRead(t, dec)
		}
	}
}

func TestCollectiveWriteCorrectnessAcrossPatterns(t *testing.T) {
	for _, layout := range []pfs.LayoutKind{pfs.Contiguous, pfs.RandomBlocks} {
		for _, pattern := range []string{"wn", "wb", "wc", "wbb", "wcc", "wcn"} {
			r := newRig(t, rigOpts{ncp: 4, niop: 2, ndisks: 4, blocks: 32, layout: layout})
			dec := mustDecomp(t, pattern, r.f.Size(), 1024, 4)
			r.collective(t, dec, true, DefaultParams())
			r.verifyWrite(t)
		}
	}
}

func TestOddRecordSizeStraddling(t *testing.T) {
	r := newRig(t, rigOpts{ncp: 4, niop: 2, ndisks: 4, blocks: 12, layout: pfs.RandomBlocks})
	dec := mustDecomp(t, "rc", r.f.Size(), 24, 4)
	r.collective(t, dec, false, DefaultParams())
	r.verifyRead(t, dec)
}

func TestEveryBlockMovedExactlyOnce(t *testing.T) {
	r := newRig(t, rigOpts{ncp: 4, niop: 2, ndisks: 4, blocks: 32, layout: pfs.Contiguous})
	dec := mustDecomp(t, "rb", r.f.Size(), 8192, 4)
	r.collective(t, dec, false, DefaultParams())
	m := r.totalMetrics()
	if m.Blocks != 32 {
		t.Fatalf("blocks moved %d, want 32", m.Blocks)
	}
	if m.Requests != 2 { // one collective request per IOP
		t.Fatalf("collective requests %d, want 2", m.Requests)
	}
	var diskReads int64
	for _, d := range r.disks {
		diskReads += d.Metrics().Reads
	}
	if diskReads != 32 {
		t.Fatalf("disk reads %d, want exactly 32 (no prefetch mistakes)", diskReads)
	}
}

func TestMemputCountMatchesRuns(t *testing.T) {
	r := newRig(t, rigOpts{ncp: 4, niop: 2, ndisks: 4, blocks: 16, layout: pfs.Contiguous})
	dec := mustDecomp(t, "rc", r.f.Size(), 1024, 4)
	// Expected: one Memput per run per block.
	want := int64(0)
	for b := 0; b < 16; b++ {
		want += int64(len(dec.RunsInRange(int64(b)*8192, 8192)))
	}
	r.collective(t, dec, false, DefaultParams())
	if got := r.totalMetrics().Memputs; got != want {
		t.Fatalf("memputs %d, want %d", got, want)
	}
}

func TestRAFansOutToAllCPs(t *testing.T) {
	r := newRig(t, rigOpts{ncp: 4, niop: 2, ndisks: 4, blocks: 8, layout: pfs.Contiguous})
	dec := mustDecomp(t, "ra", r.f.Size(), 8192, 4)
	r.collective(t, dec, false, DefaultParams())
	r.verifyRead(t, dec)
	if got := r.totalMetrics().Memputs; got != 8*4 {
		t.Fatalf("memputs %d, want 32 (every block to every CP)", got)
	}
	// The disks still read each block only once.
	var reads int64
	for _, d := range r.disks {
		reads += d.Metrics().Reads
	}
	if reads != 8 {
		t.Fatalf("disk reads %d, want 8", reads)
	}
}

func TestPresortReordersRandomLayout(t *testing.T) {
	run := func(presort bool) time.Duration {
		prm := DefaultParams()
		prm.Presort = presort
		r := newRig(t, rigOpts{ncp: 4, niop: 1, ndisks: 1, blocks: 48, layout: pfs.RandomBlocks, prm: &prm, seed: 7})
		dec := mustDecomp(t, "rb", r.f.Size(), 8192, 4)
		d := r.collective(t, dec, false, prm)
		r.verifyRead(t, dec)
		return d
	}
	sorted, unsorted := run(true), run(false)
	if float64(unsorted) < 1.15*float64(sorted) {
		t.Fatalf("presort: sorted %v vs unsorted %v, expected >=15%% win", sorted, unsorted)
	}
}

func TestPresortNoopOnContiguous(t *testing.T) {
	run := func(presort bool) time.Duration {
		prm := DefaultParams()
		prm.Presort = presort
		r := newRig(t, rigOpts{ncp: 4, niop: 2, ndisks: 4, blocks: 32, layout: pfs.Contiguous, prm: &prm})
		dec := mustDecomp(t, "rb", r.f.Size(), 8192, 4)
		return r.collective(t, dec, false, prm)
	}
	if a, b := run(true), run(false); a != b {
		t.Fatalf("presort changed contiguous timing: %v vs %v", a, b)
	}
}

func TestDoubleBufferingBeatsSingle(t *testing.T) {
	// One disk per IOP so the only way to overlap the per-record Memput
	// CPU burn with the next disk read is a second buffer thread.
	run := func(buffers int) time.Duration {
		prm := DefaultParams()
		prm.BuffersPerDisk = buffers
		r := newRig(t, rigOpts{ncp: 4, niop: 2, ndisks: 2, blocks: 64, layout: pfs.Contiguous, prm: &prm})
		dec := mustDecomp(t, "rc", r.f.Size(), 8, 4)
		return r.collective(t, dec, false, prm)
	}
	single, double := run(1), run(2)
	if double >= single {
		t.Fatalf("double buffering (%v) not faster than single (%v)", double, single)
	}
}

func TestGatherScatterReducesMessages(t *testing.T) {
	count := func(gs bool) (int64, time.Duration) {
		prm := DefaultParams()
		prm.GatherScatter = gs
		r := newRig(t, rigOpts{ncp: 4, niop: 2, ndisks: 4, blocks: 16, layout: pfs.Contiguous, prm: &prm})
		dec := mustDecomp(t, "rc", r.f.Size(), 8, 4) // 8-byte cyclic: worst case
		d := r.collective(t, dec, false, prm)
		r.verifyRead(t, dec)
		return r.totalMetrics().Memputs, d
	}
	plainMsgs, plainT := count(false)
	gsMsgs, gsT := count(true)
	if gsMsgs*10 > plainMsgs {
		t.Fatalf("gather/scatter sent %d messages vs %d plain: expected >10x reduction", gsMsgs, plainMsgs)
	}
	if gsT >= plainT {
		t.Fatalf("gather/scatter (%v) not faster than per-record messages (%v)", gsT, plainT)
	}
}

func TestGatherScatterWriteCorrect(t *testing.T) {
	prm := DefaultParams()
	prm.GatherScatter = true
	r := newRig(t, rigOpts{ncp: 4, niop: 2, ndisks: 4, blocks: 16, layout: pfs.RandomBlocks, prm: &prm})
	dec := mustDecomp(t, "wc", r.f.Size(), 8, 4)
	r.collective(t, dec, true, prm)
	r.verifyWrite(t)
	if r.totalMetrics().Memgets == 0 {
		t.Fatal("no gather Memgets recorded")
	}
}

func TestPartialBlockWriteRMW(t *testing.T) {
	// A decomposition covering only half the file's records cannot
	// exist with our generators, but a *write of a pattern over a file
	// preloaded with the image* exercises RMW when record size doesn't
	// align... here we instead drive the server directly with a decomp
	// whose file is larger than the pattern. Simplest honest case: a
	// 2-D pattern over a file whose tail block is only partially
	// covered is impossible with divisible sizes, so construct a
	// 1.5-block file of 3 records of 4096 bytes.
	r := newRig(t, rigOpts{ncp: 2, niop: 1, ndisks: 1, blocks: 2, layout: pfs.Contiguous})
	r.f.Preload() // existing content must survive in uncovered bytes
	dec := mustDecomp(t, "wb", 12288, 4096, 2)
	// Patch: dec covers only 12 KB of the 16 KB file; block 1 is half
	// covered and needs read-modify-write.
	client := NewClient(r.m, r.f, dec, r.servers, DefaultParams())
	for cp, node := range r.m.CPs {
		node.Mem = make([]byte, dec.CPBytes(cp))
		for _, ch := range dec.Chunks(cp) {
			pfs.FillImage(node.Mem[ch.MemOff:ch.MemOff+ch.Len], ch.FileOff)
		}
	}
	for cp := range r.m.CPs {
		cp := cp
		r.eng.Go("cp", func(p *sim.Proc) { client.CollectiveCP(p, cp, true) })
	}
	r.eng.Run()
	if client.EndTime() == 0 {
		t.Fatalf("did not complete: %v", r.eng.BlockedProcs())
	}
	if r.totalMetrics().PartialBlockRMW == 0 {
		t.Fatal("no RMW for partially covered block")
	}
	r.verifyWrite(t) // both written and preserved bytes must match image
}

func TestBlockIterHandsOutEachBlockOnce(t *testing.T) {
	it := &blockIter{blocks: []int{3, 1, 4, 1, 5}}
	var got []int
	for {
		b, ok := it.take()
		if !ok {
			break
		}
		got = append(got, b)
	}
	if len(got) != 5 || got[0] != 3 || got[4] != 5 {
		t.Fatalf("iterator yielded %v", got)
	}
}
