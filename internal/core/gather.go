package core

import (
	"time"

	"ddio/internal/cluster"
	"ddio/internal/hpf"
	"ddio/internal/sim"
)

// Gather/scatter messaging: the paper's future-work suggestion of moving
// all of a block's non-contiguous pieces for one CP in a single message
// ("the real solution would be to use gather/scatter Memput and Memget
// operations", §6). It collapses the per-record message storm of 8-byte
// cyclic patterns into one message per (block, CP) pair.

// memputGather sends one scatter-Memput per destination CP covering all
// of that CP's runs within the block.
func (s *Server) memputGather(w *sim.Proc, b int, data []byte, runs []hpf.Run, delivered *sim.WaitGroup) {
	bs := int64(s.f.BlockSize)
	blockOff := int64(b) * bs
	groups := groupRunsByCP(runs)
	sent := sim.NewWaitGroup(s.m.Eng, "dd-gsent", 0)
	for _, g := range groups {
		segs := make([]cluster.MemSeg, len(g))
		for i, r := range g {
			segs[i] = cluster.MemSeg{
				Off:  r.MemOff,
				Data: data[r.FileOff-blockOff : r.FileOff-blockOff+r.Len],
			}
		}
		s.m2.Memputs++
		delivered.Add(1)
		sent.Add(1)
		cpu := s.prm.MemputCPU + s.prm.GatherSegmentCPU*time.Duration(len(segs)-1)
		s.m.MemputGather(s.node, s.m.CPs[g[0].CP], segs, cpu,
			sent.DoneC(), delivered.DoneC())
	}
	sent.Wait(w)
}

// memgetGather issues one gather-Memget per source CP covering all of
// that CP's runs within the block, scattering replies into buf.
func (s *Server) memgetGather(w *sim.Proc, b int, buf []byte, runs []hpf.Run, arrived *sim.WaitGroup) {
	bs := int64(s.f.BlockSize)
	blockOff := int64(b) * bs
	for _, g := range groupRunsByCP(runs) {
		segs := make([]cluster.GetSeg, len(g))
		for i, r := range g {
			off := r.FileOff - blockOff
			segs[i] = cluster.GetSeg{Off: r.MemOff, Len: r.Len, Dst: buf[off : off+r.Len]}
		}
		s.m2.Memgets++
		arrived.Add(1)
		cpu := s.prm.MemgetCPU + s.prm.GatherSegmentCPU*time.Duration(len(segs)-1)
		s.m.MemgetGather(s.node, s.m.CPs[g[0].CP], segs, cpu, s.prm.MemgetRemoteCPU,
			arrived.DoneC())
	}
	arrived.Wait(w)
}

// groupRunsByCP partitions runs by destination CP, preserving file
// order within each group. Order over groups follows first appearance.
func groupRunsByCP(runs []hpf.Run) [][]hpf.Run {
	idx := make(map[int]int)
	var out [][]hpf.Run
	for _, r := range runs {
		i, ok := idx[r.CP]
		if !ok {
			i = len(out)
			idx[r.CP] = i
			out = append(out, nil)
		}
		out[i] = append(out[i], r)
	}
	return out
}
