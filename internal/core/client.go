package core

import (
	"ddio/internal/cluster"
	"ddio/internal/hpf"
	"ddio/internal/pfs"
	"ddio/internal/sim"
)

// Client drives the CP side of a disk-directed collective operation
// (Figure 1c): barrier, one multicast request from a single CP, wait for
// every IOP to report completion, final barrier. CP memory is passive
// during the transfer — Memputs and Memgets address it by DMA.
type Client struct {
	m       *cluster.Machine
	f       *pfs.File
	dec     hpf.Access
	prm     Params
	servers []*Server

	barrier *sim.Barrier
	done    *sim.WaitGroup
	end     sim.Time
}

// NewClient builds the collective client for all of the machine's CPs.
func NewClient(m *cluster.Machine, f *pfs.File, dec hpf.Access, servers []*Server, prm Params) *Client {
	return &Client{
		m:       m,
		f:       f,
		dec:     dec,
		prm:     prm,
		servers: servers,
		barrier: sim.NewBarrier(m.Eng, "dd-collective", len(m.CPs)),
	}
}

// EndTime returns the time the coordinator observed completion, valid
// after the run.
func (c *Client) EndTime() sim.Time { return c.end }

// CollectiveCP runs cp's side of a collective read or write of the whole
// file.
func (c *Client) CollectiveCP(p *sim.Proc, cp int, write bool) {
	c.barrier.Wait(p)
	cpNode := c.m.CPs[cp]
	if cp == 0 {
		c.done = sim.NewWaitGroup(c.m.Eng, "dd-done", len(c.servers))
		// Multicast the collective request to all IOPs. The torus has
		// no hardware multicast; the coordinator unicasts, paying the
		// (tiny) per-request CPU cost once per IOP.
		for _, s := range c.servers {
			c.m.Send(cpNode, s.node, 64, c.prm.RequestCPU, &collReq{
				write: write,
				dec:   c.dec,
				src:   cpNode,
				done:  c.done,
			})
		}
		c.done.Wait(p)
		c.end = p.Now()
	}
	c.barrier.Wait(p)
}
