// Package core implements the paper's primary contribution:
// disk-directed I/O (Figure 1c). The compute processors issue one
// collective request describing the whole transfer; every I/O processor
// independently derives the set of its local disk blocks the request
// touches, optionally presorts them by physical location, and streams
// data with two buffers per disk — Memput DMA messages toward CP memory
// on reads, Memget round-trips from CP memory on writes — overlapping
// disk, bus, and network the entire time. One request per IOP replaces
// the per-chunk request storm of the traditional system, which is where
// the 16× gains of the paper come from.
package core

import (
	"time"

	"ddio/internal/fault"
)

// Params are the disk-directed-I/O software costs and policy knobs.
type Params struct {
	// CP-side cost of building and multicasting the collective request.
	RequestCPU time.Duration
	// IOP-side cost of receiving the request and spawning the worker.
	IOPStartCPU time.Duration
	// Per-local-block planning cost (computing and sorting the block
	// list, Figure 1c's "sort the disk blocks to optimize disk
	// movement").
	PlanPerBlockCPU time.Duration
	// Per-message DMA setup costs on the IOP.
	MemputCPU time.Duration
	MemgetCPU time.Duration
	// CP-side DMA engine time to service one Memget (no software
	// thread is involved).
	MemgetRemoteCPU time.Duration
	// Per-extra-segment cost when gather/scatter messages are enabled.
	GatherSegmentCPU time.Duration

	// BuffersPerDisk is the number of one-block buffers (and buffer
	// threads) per local disk (paper: 2, double buffering).
	BuffersPerDisk int
	// ServiceThreads is the number of persistent collective-request
	// service threads each IOP retains (paper: one thread per request
	// stream). Overlapping requests grow the pool on demand through the
	// kernel's recycled-proc path and shrink it back when idle, so the
	// simulated timing is identical to spawn-per-request for any value.
	ServiceThreads int
	// Presort orders each disk's block list by physical location
	// instead of file order.
	Presort bool
	// GatherScatter batches all runs of a block destined to the same
	// CP into a single message (the paper's "future work" extension).
	GatherScatter bool
	// Retry bounds resubmission of transiently failed disk requests
	// (fault injection only; the zero policy never retries).
	Retry fault.RetryPolicy
}

// DefaultParams returns calibrated defaults (presort off; experiment
// configs enable it for the "DDIO sort" series).
func DefaultParams() Params {
	return Params{
		RequestCPU:       20 * time.Microsecond,
		IOPStartCPU:      50 * time.Microsecond,
		PlanPerBlockCPU:  2 * time.Microsecond,
		MemputCPU:        3 * time.Microsecond,
		MemgetCPU:        3 * time.Microsecond,
		MemgetRemoteCPU:  2 * time.Microsecond,
		GatherSegmentCPU: 500 * time.Nanosecond,
		BuffersPerDisk:   2,
		ServiceThreads:   1,
	}
}

// Metrics aggregates per-IOP disk-directed activity.
type Metrics struct {
	Requests        int64 // collective requests served
	Blocks          int64 // blocks moved
	Memputs         int64
	Memgets         int64
	PartialBlockRMW int64 // write blocks not fully covered by the pattern
	DiskRetries     int64 // disk-request resubmissions after transient failures
	DiskRecovered   int64 // failed requests that a retry eventually completed
	DiskLost        int64 // requests still failing after the retry budget
}
