package tcfs

import (
	"time"

	"ddio/internal/cluster"
	"ddio/internal/hpf"
	"ddio/internal/pfs"
	"ddio/internal/sim"
)

// Client drives the CP side of a whole-file transfer under traditional
// caching: each CP walks its chunk list, splits chunks at block
// boundaries, and keeps at most one request outstanding per disk (one
// pump process per disk), as in the paper's §4.
type Client struct {
	m       *cluster.Machine
	f       *pfs.File
	dec     hpf.Access
	prm     Params
	servers []*Server // indexed by IOP

	barrier *sim.Barrier
	end     sim.Time
	memBase []int64 // optional per-CP offset added to all memory addresses

	// wgfree pools the per-request reply-tracking WaitGroups (one per
	// block piece — formerly the top allocation source on message-heavy
	// runs). The engine is single-threaded, so a plain LIFO list is safe
	// and reuse order is deterministic.
	wgfree []*sim.WaitGroup
	// reqs pools the request records themselves; each is released back
	// here by its reply's terminal completion (see request.release).
	reqs sim.Arena[request]
}

// SetMemBase offsets every CP's memory addresses by base[cp]; two-phase
// I/O uses this to direct the conforming-distribution phase into a
// staging area above the application buffer.
func (c *Client) SetMemBase(base []int64) { c.memBase = base }

// memBaseOf returns the memory base for cp.
func (c *Client) memBaseOf(cp int) int64 {
	if c.memBase == nil {
		return 0
	}
	return c.memBase[cp]
}

// NewClient builds the client side for a transfer by all of the
// machine's CPs. dec may be nil for a client used only via StreamCP.
func NewClient(m *cluster.Machine, f *pfs.File, dec hpf.Access, servers []*Server, prm Params) *Client {
	return &Client{
		m:       m,
		f:       f,
		dec:     dec,
		prm:     prm,
		servers: servers,
		barrier: sim.NewBarrier(m.Eng, "tc-transfer", len(m.CPs)),
	}
}

// EndTime returns the time the coordinator observed transfer completion
// (all replies received and all IOPs synced), valid after the run.
func (c *Client) EndTime() sim.Time { return c.end }

// getWG takes a one-shot reply WaitGroup (count 1) from the free list,
// or makes one on first use.
func (c *Client) getWG() *sim.WaitGroup {
	if n := len(c.wgfree); n > 0 {
		wg := c.wgfree[n-1]
		c.wgfree[n-1] = nil
		c.wgfree = c.wgfree[:n-1]
		wg.Reset(1)
		return wg
	}
	return sim.NewWaitGroup(c.m.Eng, "tc-req", 1)
}

// putWG recycles a drained reply WaitGroup. Callers only recycle after
// Wait returned, so no Done event or waiter can still reference it.
func (c *Client) putWG(wg *sim.WaitGroup) { c.wgfree = append(c.wgfree, wg) }

// getReq takes a pooled request record, stamping this client as owner.
func (c *Client) getReq() *request {
	r := c.reqs.Get()
	r.owner = c
	return r
}

// putReq recycles a released request record.
func (c *Client) putReq(r *request) { c.reqs.Put(r) }

// cpReq is one block-piece request to be issued.
type cpReq struct {
	block  int
	disk   int
	off, n int
	memOff int64
}

// pieces splits one chunk into per-block requests (in file order): a
// traditional file system must address each block's disk separately.
func (c *Client) pieces(ch hpf.Chunk, base int64, out []cpReq) []cpReq {
	bs := int64(c.f.BlockSize)
	for off := ch.FileOff; off < ch.FileOff+ch.Len; {
		b := int(off / bs)
		pieceEnd := (int64(b) + 1) * bs
		if end := ch.FileOff + ch.Len; pieceEnd > end {
			pieceEnd = end
		}
		out = append(out, cpReq{
			block:  b,
			disk:   c.f.DiskOf(b),
			off:    int(off - int64(b)*bs),
			n:      int(pieceEnd - off),
			memOff: base + ch.MemOff + (off - ch.FileOff),
		})
		off = pieceEnd
	}
	return out
}

// issue sends one ReadCP/WriteCP call's pieces, honoring Figure 1a's
// flow control — "if our previous request to that disk is still
// outstanding, wait for response" — then waits for all of them.
func (c *Client) issue(p *sim.Proc, cpNode *cluster.Node, pieces []cpReq, write bool,
	outstanding []*sim.WaitGroup) {
	for _, rq := range pieces {
		if prev := outstanding[rq.disk]; prev != nil {
			prev.Wait(p)
			c.putWG(prev)
		}
		done := c.getWG()
		outstanding[rq.disk] = done
		msg := c.getReq()
		msg.write = write
		msg.block = rq.block
		msg.off = rq.off
		msg.n = rq.n
		msg.memOff = rq.memOff
		msg.src = cpNode
		msg.done = done
		payload := 0
		if write {
			msg.data = append(msg.data[:0], cpNode.Mem[msg.memOff:msg.memOff+int64(rq.n)]...)
			payload = rq.n
		}
		c.m.Send(cpNode, c.servers[rq.disk%len(c.servers)].node, payload, c.prm.RequestSendCPU, msg)
	}
	for _, wg := range outstanding {
		if wg != nil {
			wg.Wait(p)
			c.putWG(wg)
		}
	}
	for i := range outstanding {
		outstanding[i] = nil
	}
}

// TransferCP runs cp's side of the transfer: one file-system call per
// contiguous chunk (or a single strided call when the extension is
// enabled), then — on CP 0 — a sync of every IOP so that outstanding
// write-behind and prefetch requests are included in the measured time,
// as the paper requires.
func (c *Client) TransferCP(p *sim.Proc, cp int, write bool) {
	c.barrier.Wait(p)
	cpNode := c.m.CPs[cp]
	base := c.memBaseOf(cp)
	outstanding := make([]*sim.WaitGroup, len(c.f.Disks))
	if c.prm.StridedRequests {
		// Extension: the whole access list goes down in one call, so
		// requests to different disks pipeline across chunks.
		var all []cpReq
		for _, ch := range c.dec.Chunks(cp) {
			all = c.pieces(ch, base, all)
		}
		c.issue(p, cpNode, all, write, outstanding)
	} else {
		var buf []cpReq
		for _, ch := range c.dec.Chunks(cp) {
			buf = c.pieces(ch, base, buf[:0])
			c.issue(p, cpNode, buf, write, outstanding)
		}
	}
	c.barrier.Wait(p)
	c.sync(p, cp, cpNode)
	c.barrier.Wait(p)
}

// sync has CP 0 flush every IOP so outstanding write-behind and prefetch
// are included in the measured time, then stamps the end time.
func (c *Client) sync(p *sim.Proc, cp int, cpNode *cluster.Node) {
	if cp != 0 {
		return
	}
	sdone := sim.NewWaitGroup(c.m.Eng, "tc-sync", len(c.servers))
	for _, s := range c.servers {
		c.m.Send(cpNode, s.node, 0, c.prm.RequestSendCPU, &syncReq{src: cpNode, done: sdone})
	}
	sdone.Wait(p)
	c.end = p.Now()
}

// StreamReq is one request of a workload stream: a contiguous file range
// read into (or written from) an absolute memory offset, optionally
// released into the system at an absolute arrival time (open workload)
// or after a think pause (closed loop).
type StreamReq struct {
	Write   bool
	FileOff int64
	Len     int64
	MemOff  int64 // absolute offset in the CP's memory
	// At, when positive, is the request's arrival offset from the
	// phase's start: the CP does not issue it earlier (open arrivals).
	At time.Duration
	// Think, when positive, is slept before issuing (closed loop).
	Think time.Duration
}

// StreamCP runs cp's side of a workload phase under traditional caching:
// each request is split at block boundaries and issued with the same
// one-outstanding-per-disk flow control TransferCP uses, honoring the
// stream's arrival process. The final sync mirrors TransferCP so
// write-behind and prefetch are inside the measured time.
func (c *Client) StreamCP(p *sim.Proc, cp int, reqs []StreamReq) {
	c.barrier.Wait(p)
	cpNode := c.m.CPs[cp]
	start := p.Now()
	outstanding := make([]*sim.WaitGroup, len(c.f.Disks))
	var buf []cpReq
	for _, rq := range reqs {
		if rq.Think > 0 {
			p.Sleep(rq.Think)
		}
		if at := start + sim.Time(rq.At); rq.At > 0 && at > p.Now() {
			p.SleepUntil(at)
		}
		buf = c.pieces(hpf.Chunk{FileOff: rq.FileOff, MemOff: rq.MemOff, Len: rq.Len}, 0, buf[:0])
		c.issue(p, cpNode, buf, rq.Write, outstanding)
	}
	c.barrier.Wait(p)
	c.sync(p, cp, cpNode)
	c.barrier.Wait(p)
}
