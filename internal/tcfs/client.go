package tcfs

import (
	"ddio/internal/cluster"
	"ddio/internal/hpf"
	"ddio/internal/pfs"
	"ddio/internal/sim"
)

// Client drives the CP side of a whole-file transfer under traditional
// caching: each CP walks its chunk list, splits chunks at block
// boundaries, and keeps at most one request outstanding per disk (one
// pump process per disk), as in the paper's §4.
type Client struct {
	m       *cluster.Machine
	f       *pfs.File
	dec     *hpf.Decomp
	prm     Params
	servers []*Server // indexed by IOP

	barrier *sim.Barrier
	end     sim.Time
	memBase []int64 // optional per-CP offset added to all memory addresses

	// wgfree pools the per-request reply-tracking WaitGroups (one per
	// block piece — the top allocation source on message-heavy runs).
	// The engine is single-threaded, so a plain LIFO list is safe and
	// reuse order is deterministic.
	wgfree []*sim.WaitGroup
}

// SetMemBase offsets every CP's memory addresses by base[cp]; two-phase
// I/O uses this to direct the conforming-distribution phase into a
// staging area above the application buffer.
func (c *Client) SetMemBase(base []int64) { c.memBase = base }

// memBaseOf returns the memory base for cp.
func (c *Client) memBaseOf(cp int) int64 {
	if c.memBase == nil {
		return 0
	}
	return c.memBase[cp]
}

// NewClient builds the client side for a transfer by all of the
// machine's CPs.
func NewClient(m *cluster.Machine, f *pfs.File, dec *hpf.Decomp, servers []*Server, prm Params) *Client {
	return &Client{
		m:       m,
		f:       f,
		dec:     dec,
		prm:     prm,
		servers: servers,
		barrier: sim.NewBarrier(m.Eng, "tc-transfer", len(m.CPs)),
	}
}

// EndTime returns the time the coordinator observed transfer completion
// (all replies received and all IOPs synced), valid after the run.
func (c *Client) EndTime() sim.Time { return c.end }

// getWG takes a one-shot reply WaitGroup (count 1) from the free list,
// or makes one on first use.
func (c *Client) getWG() *sim.WaitGroup {
	if n := len(c.wgfree); n > 0 {
		wg := c.wgfree[n-1]
		c.wgfree[n-1] = nil
		c.wgfree = c.wgfree[:n-1]
		wg.Reset(1)
		return wg
	}
	return sim.NewWaitGroup(c.m.Eng, "tc-req", 1)
}

// putWG recycles a drained reply WaitGroup. Callers only recycle after
// Wait returned, so no Done event or waiter can still reference it.
func (c *Client) putWG(wg *sim.WaitGroup) { c.wgfree = append(c.wgfree, wg) }

// cpReq is one block-piece request to be issued.
type cpReq struct {
	block  int
	disk   int
	off, n int
	memOff int64
}

// pieces splits one chunk into per-block requests (in file order): a
// traditional file system must address each block's disk separately.
func (c *Client) pieces(ch hpf.Chunk, base int64, out []cpReq) []cpReq {
	bs := int64(c.f.BlockSize)
	for off := ch.FileOff; off < ch.FileOff+ch.Len; {
		b := int(off / bs)
		pieceEnd := (int64(b) + 1) * bs
		if end := ch.FileOff + ch.Len; pieceEnd > end {
			pieceEnd = end
		}
		out = append(out, cpReq{
			block:  b,
			disk:   c.f.DiskOf(b),
			off:    int(off - int64(b)*bs),
			n:      int(pieceEnd - off),
			memOff: base + ch.MemOff + (off - ch.FileOff),
		})
		off = pieceEnd
	}
	return out
}

// issue sends one ReadCP/WriteCP call's pieces, honoring Figure 1a's
// flow control — "if our previous request to that disk is still
// outstanding, wait for response" — then waits for all of them.
func (c *Client) issue(p *sim.Proc, cpNode *cluster.Node, pieces []cpReq, write bool,
	outstanding []*sim.WaitGroup) {
	for _, rq := range pieces {
		if prev := outstanding[rq.disk]; prev != nil {
			prev.Wait(p)
			c.putWG(prev)
		}
		done := c.getWG()
		outstanding[rq.disk] = done
		msg := &request{
			write:  write,
			block:  rq.block,
			off:    rq.off,
			n:      rq.n,
			memOff: rq.memOff,
			src:    cpNode,
			done:   done,
		}
		payload := 0
		if write {
			msg.data = make([]byte, rq.n)
			copy(msg.data, cpNode.Mem[msg.memOff:msg.memOff+int64(rq.n)])
			payload = rq.n
		}
		c.m.Send(cpNode, c.servers[rq.disk%len(c.servers)].node, payload, c.prm.RequestSendCPU, msg)
	}
	for _, wg := range outstanding {
		if wg != nil {
			wg.Wait(p)
			c.putWG(wg)
		}
	}
	for i := range outstanding {
		outstanding[i] = nil
	}
}

// TransferCP runs cp's side of the transfer: one file-system call per
// contiguous chunk (or a single strided call when the extension is
// enabled), then — on CP 0 — a sync of every IOP so that outstanding
// write-behind and prefetch requests are included in the measured time,
// as the paper requires.
func (c *Client) TransferCP(p *sim.Proc, cp int, write bool) {
	c.barrier.Wait(p)
	cpNode := c.m.CPs[cp]
	base := c.memBaseOf(cp)
	outstanding := make([]*sim.WaitGroup, len(c.f.Disks))
	if c.prm.StridedRequests {
		// Extension: the whole access list goes down in one call, so
		// requests to different disks pipeline across chunks.
		var all []cpReq
		for _, ch := range c.dec.Chunks(cp) {
			all = c.pieces(ch, base, all)
		}
		c.issue(p, cpNode, all, write, outstanding)
	} else {
		var buf []cpReq
		for _, ch := range c.dec.Chunks(cp) {
			buf = c.pieces(ch, base, buf[:0])
			c.issue(p, cpNode, buf, write, outstanding)
		}
	}
	c.barrier.Wait(p)
	if cp == 0 {
		sdone := sim.NewWaitGroup(c.m.Eng, "tc-sync", len(c.servers))
		for _, s := range c.servers {
			c.m.Send(cpNode, s.node, 0, c.prm.RequestSendCPU, &syncReq{src: cpNode, done: sdone})
		}
		sdone.Wait(p)
		c.end = p.Now()
	}
	c.barrier.Wait(p)
}
