// Package tcfs implements the paper's baseline: a "traditional" parallel
// file system in the style of Intel CFS (Figure 1a). There is no
// collective interface: each compute processor issues one request per
// contiguous file chunk (split at block boundaries), with at most one
// outstanding request per disk per CP, and each I/O processor runs a
// block cache with LRU replacement, one-block-ahead prefetching, and
// write-behind of full blocks. Every request costs real IOP software
// time (thread creation, cache accesses), which is precisely the
// overhead disk-directed I/O eliminates.
package tcfs

import (
	"time"

	"ddio/internal/fault"
)

// Params are the traditional-caching software costs and policy knobs.
// The CPU costs are calibrated to 1994-era file-system software on a
// 50 MHz RISC processor; they reproduce the paper's relative results
// (e.g. ~100 µs of IOP time per request making 8-byte cyclic patterns
// roughly 10× slower than the disks could go).
type Params struct {
	// CP-side costs.
	RequestSendCPU time.Duration // build + send one request
	ReplyRecvCPU   time.Duration // process one reply / wake the waiter

	// IOP-side costs.
	DispatchCPU    time.Duration // receive + demultiplex one message
	ThreadCreate   time.Duration // spawn a handler thread per request
	CacheAccessCPU time.Duration // one cache lookup/insert
	ReplySendCPU   time.Duration // build + send one reply
	CopyPerByte    time.Duration // memory-memory copy (write path)

	// Policy.
	BuffersPerDiskPerCP int // cache capacity factor (paper: 2)
	PrefetchBlocks      int // read-ahead depth in blocks (paper: 1)
	// ServiceThreads is the number of persistent handler threads each
	// IOP retains; 0 (the default) retains one per cache frame, the
	// server's natural concurrency bound. Bursts beyond the retained
	// size grow the pool on demand through the kernel's recycled-proc
	// path and shrink it back when idle, so the simulated timing is
	// identical to spawn-per-request for any value. The modeled server
	// still pays ThreadCreate CPU per request either way.
	ServiceThreads int

	// StridedRequests enables the paper's future-work extension of
	// batching a CP's entire (strided) request list into one
	// file-system call, so requests to different disks pipeline across
	// chunk boundaries. The paper's baseline (false) issues one call
	// per contiguous chunk: within a call there is at most one
	// outstanding request per disk, and calls are sequential — which
	// is what starves disk parallelism for 1-block CYCLIC patterns
	// (Figure 5).
	StridedRequests bool

	// Retry bounds resubmission of transiently failed disk requests
	// (fault injection only; the zero policy never retries).
	Retry fault.RetryPolicy
}

// DefaultParams returns the calibrated defaults.
func DefaultParams() Params {
	return Params{
		RequestSendCPU: 15 * time.Microsecond,
		ReplyRecvCPU:   10 * time.Microsecond,

		DispatchCPU:    15 * time.Microsecond,
		ThreadCreate:   60 * time.Microsecond,
		CacheAccessCPU: 40 * time.Microsecond,
		ReplySendCPU:   15 * time.Microsecond,
		CopyPerByte:    25 * time.Nanosecond, // ~40 MB/s memcpy

		BuffersPerDiskPerCP: 2,
		PrefetchBlocks:      1,
	}
}

// Metrics aggregates per-server activity.
type Metrics struct {
	Requests      int64
	Reads         int64
	Writes        int64
	CacheHits     int64
	CacheMiss     int64
	Prefetches    int64
	Flushes       int64
	PartialRMW    int64 // partial-block flushes needing read-modify-write
	DiskRetries   int64 // disk-request resubmissions after transient failures
	DiskRecovered int64 // failed requests that a retry eventually completed
	DiskLost      int64 // requests still failing after the retry budget
}
