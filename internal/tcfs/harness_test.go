package tcfs

import (
	"fmt"
	"testing"
	"time"

	"ddio/internal/bus"
	"ddio/internal/cluster"
	"ddio/internal/disk"
	"ddio/internal/hpf"
	"ddio/internal/netsim"
	"ddio/internal/pfs"
	"ddio/internal/sim"
)

// rig is a small machine + file + traditional-caching file system.
type rig struct {
	eng     *sim.Engine
	m       *cluster.Machine
	f       *pfs.File
	servers []*Server
	disks   []*disk.Disk
}

type rigOpts struct {
	ncp, niop, ndisks int
	blocks            int
	blockSize         int
	layout            pfs.LayoutKind
	prm               *Params
	seed              int64
}

func newRig(t *testing.T, o rigOpts) *rig {
	t.Helper()
	if o.blockSize == 0 {
		o.blockSize = 8192
	}
	if o.seed == 0 {
		o.seed = 1
	}
	e := sim.NewEngine()
	t.Cleanup(e.Close)
	rng := sim.NewRand(o.seed)
	m := cluster.New(e, netsim.DefaultConfig(), o.ncp, o.niop, rng)
	disks := make([]*disk.Disk, o.ndisks)
	buses := make([]*bus.Bus, o.niop)
	for i := range buses {
		buses[i] = bus.New(e, fmt.Sprintf("bus%d", i), 10e6, 100*time.Microsecond)
	}
	for d := range disks {
		disks[d] = disk.New(e, fmt.Sprintf("d%d", d), disk.HP97560(), buses[d%o.niop], nil)
	}
	f, err := pfs.NewFile(disks, o.blockSize, o.blocks, o.layout, rng)
	if err != nil {
		t.Fatal(err)
	}
	prm := DefaultParams()
	if o.prm != nil {
		prm = *o.prm
	}
	servers := make([]*Server, o.niop)
	for i := range servers {
		servers[i] = NewServer(m, m.IOPs[i], f, o.ncp, prm)
	}
	return &rig{eng: e, m: m, f: f, servers: servers, disks: disks}
}

// transfer runs a whole-file transfer under the given decomposition and
// returns the elapsed virtual time.
func (r *rig) transfer(t *testing.T, dec *hpf.Decomp, write bool, prm Params) time.Duration {
	t.Helper()
	client := NewClient(r.m, r.f, dec, r.servers, prm)
	for cp, node := range r.m.CPs {
		node.Mem = make([]byte, dec.CPBytes(cp))
	}
	if write {
		for cp, node := range r.m.CPs {
			for _, ch := range dec.Chunks(cp) {
				pfs.FillImage(node.Mem[ch.MemOff:ch.MemOff+ch.Len], ch.FileOff)
			}
		}
	} else {
		r.f.Preload()
	}
	for cp := range r.m.CPs {
		cp := cp
		r.eng.Go(fmt.Sprintf("cp%d", cp), func(p *sim.Proc) { client.TransferCP(p, cp, write) })
	}
	r.eng.Run()
	if client.EndTime() == 0 {
		t.Fatalf("transfer did not complete; blocked: %v", r.eng.BlockedProcs())
	}
	// Proc-leak hygiene: every transient proc (CP bodies, handler and
	// prefetch work, sync handlers) must have exited; only daemons — the
	// dispatchers, disk servers, and parked pool workers — may remain.
	if n := r.eng.NumBlocked(); n != 0 {
		t.Fatalf("proc leak: %d non-daemon procs blocked after run: %v", n, r.eng.BlockedProcs())
	}
	return client.EndTime().Duration()
}

// verifyRead checks every CP buffer against the file image.
func (r *rig) verifyRead(t *testing.T, dec *hpf.Decomp) {
	t.Helper()
	for cp, node := range r.m.CPs {
		for _, ch := range dec.Chunks(cp) {
			if i := pfs.VerifyImage(node.Mem[ch.MemOff:ch.MemOff+ch.Len], ch.FileOff); i >= 0 {
				t.Fatalf("cp%d chunk at %d: mismatch at %d", cp, ch.FileOff, i)
			}
		}
	}
}

// verifyWrite checks the on-disk file against the image.
func (r *rig) verifyWrite(t *testing.T) {
	t.Helper()
	if i := pfs.VerifyImage(r.f.ReadBack(), 0); i >= 0 {
		t.Fatalf("file mismatch at offset %d", i)
	}
}

func (r *rig) totalMetrics() Metrics {
	var m Metrics
	for _, s := range r.servers {
		sm := s.Metrics()
		m.Requests += sm.Requests
		m.Reads += sm.Reads
		m.Writes += sm.Writes
		m.CacheHits += sm.CacheHits
		m.CacheMiss += sm.CacheMiss
		m.Prefetches += sm.Prefetches
		m.Flushes += sm.Flushes
		m.PartialRMW += sm.PartialRMW
	}
	return m
}

func mustDecomp(t *testing.T, pattern string, fileBytes int64, recSize, ncp int) *hpf.Decomp {
	t.Helper()
	d, err := hpf.MustPattern(pattern).Decomp(fileBytes, recSize, ncp)
	if err != nil {
		t.Fatal(err)
	}
	return d
}
