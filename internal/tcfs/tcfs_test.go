package tcfs

import (
	"testing"
	"time"

	"ddio/internal/pfs"
)

func TestReadCorrectnessAcrossPatterns(t *testing.T) {
	for _, layout := range []pfs.LayoutKind{pfs.Contiguous, pfs.RandomBlocks} {
		for _, pattern := range []string{"ra", "rn", "rb", "rc", "rnb", "rbb", "rcb", "rbc", "rcc", "rcn"} {
			r := newRig(t, rigOpts{ncp: 4, niop: 2, ndisks: 4, blocks: 32, layout: layout})
			dec := mustDecomp(t, pattern, r.f.Size(), 1024, 4)
			r.transfer(t, dec, false, DefaultParams())
			r.verifyRead(t, dec)
		}
	}
}

func TestWriteCorrectnessAcrossPatterns(t *testing.T) {
	for _, layout := range []pfs.LayoutKind{pfs.Contiguous, pfs.RandomBlocks} {
		for _, pattern := range []string{"wn", "wb", "wc", "wbb", "wcc", "wcn"} {
			r := newRig(t, rigOpts{ncp: 4, niop: 2, ndisks: 4, blocks: 32, layout: layout})
			dec := mustDecomp(t, pattern, r.f.Size(), 1024, 4)
			r.transfer(t, dec, true, DefaultParams())
			r.verifyWrite(t)
		}
	}
}

func TestOddRecordSizesStraddleBlocks(t *testing.T) {
	// 24-byte records do not divide the 8 KB block size, so chunks
	// straddle block boundaries and requests carry partial records.
	r := newRig(t, rigOpts{ncp: 4, niop: 2, ndisks: 4, blocks: 12, layout: pfs.Contiguous})
	dec := mustDecomp(t, "rc", r.f.Size(), 24, 4)
	r.transfer(t, dec, false, DefaultParams())
	r.verifyRead(t, dec)
}

func TestRequestCountMatchesChunkPieces(t *testing.T) {
	r := newRig(t, rigOpts{ncp: 4, niop: 2, ndisks: 4, blocks: 32, layout: pfs.Contiguous})
	dec := mustDecomp(t, "rb", r.f.Size(), 1024, 4)
	r.transfer(t, dec, false, DefaultParams())
	m := r.totalMetrics()
	// rb: each CP owns a contiguous 8-block region -> 8 block requests.
	if m.Requests != 32 {
		t.Fatalf("requests %d, want 32", m.Requests)
	}
	if m.Reads != 32 {
		t.Fatalf("read handlers %d", m.Reads)
	}
}

func TestRAPatternHitsCache(t *testing.T) {
	// All CPs read the whole file: the first requester misses, the other
	// three hit the cache.
	r := newRig(t, rigOpts{ncp: 4, niop: 2, ndisks: 4, blocks: 16, layout: pfs.Contiguous})
	dec := mustDecomp(t, "ra", r.f.Size(), 8192, 4)
	r.transfer(t, dec, false, DefaultParams())
	r.verifyRead(t, dec)
	m := r.totalMetrics()
	if m.CacheHits < int64(3*16/2) {
		t.Fatalf("cache hits %d with 4 CPs reading the same file", m.CacheHits)
	}
	// The disks must not have read every block four times.
	var diskReads int64
	for _, d := range r.disks {
		diskReads += d.Metrics().Reads
	}
	if diskReads > 2*16+8 {
		t.Fatalf("%d disk reads for a 16-block file read by 4 CPs", diskReads)
	}
}

func TestPrefetchesHappenAndAreCounted(t *testing.T) {
	r := newRig(t, rigOpts{ncp: 2, niop: 2, ndisks: 2, blocks: 16, layout: pfs.Contiguous})
	dec := mustDecomp(t, "rn", r.f.Size(), 8192, 2)
	r.transfer(t, dec, false, DefaultParams())
	if m := r.totalMetrics(); m.Prefetches == 0 {
		t.Fatal("no prefetches issued for a sequential read")
	}
}

func TestPrefetchCanBeDisabled(t *testing.T) {
	prm := DefaultParams()
	prm.PrefetchBlocks = 0
	r := newRig(t, rigOpts{ncp: 2, niop: 2, ndisks: 2, blocks: 16, layout: pfs.Contiguous, prm: &prm})
	dec := mustDecomp(t, "rn", r.f.Size(), 8192, 2)
	r.transfer(t, dec, false, prm)
	if m := r.totalMetrics(); m.Prefetches != 0 {
		t.Fatalf("%d prefetches with prefetching disabled", m.Prefetches)
	}
}

func TestWriteBehindFlushesFullBlocks(t *testing.T) {
	r := newRig(t, rigOpts{ncp: 4, niop: 2, ndisks: 4, blocks: 16, layout: pfs.Contiguous})
	dec := mustDecomp(t, "wb", r.f.Size(), 8192, 4)
	r.transfer(t, dec, true, DefaultParams())
	m := r.totalMetrics()
	if m.Flushes < 16 {
		t.Fatalf("flushes %d, want >= one per block", m.Flushes)
	}
	if m.PartialRMW != 0 {
		t.Fatalf("%d read-modify-writes for fully covered blocks", m.PartialRMW)
	}
	r.verifyWrite(t)
}

func TestCachePressureForcesPartialRMW(t *testing.T) {
	// A tiny cache with a cyclic write pattern evicts blocks before they
	// fill, forcing read-modify-write flushes — and the data must still
	// come out exactly right.
	prm := DefaultParams()
	prm.BuffersPerDiskPerCP = 1 // frames = 1*ncp*localdisks, below working set
	r := newRig(t, rigOpts{ncp: 2, niop: 1, ndisks: 1, blocks: 8, layout: pfs.Contiguous, prm: &prm})
	dec := mustDecomp(t, "wc", r.f.Size(), 1024, 2)
	r.transfer(t, dec, true, prm)
	r.verifyWrite(t)
	if m := r.totalMetrics(); m.PartialRMW == 0 {
		t.Fatal("expected partial-block RMW under cache pressure")
	}
}

func TestCacheSizeFollowsPolicy(t *testing.T) {
	r := newRig(t, rigOpts{ncp: 4, niop: 2, ndisks: 4, blocks: 8, layout: pfs.Contiguous})
	// 2 buffers per disk per CP, 2 local disks, 4 CPs = 16 frames.
	if got := r.servers[0].CacheFrames(); got != 16 {
		t.Fatalf("cache frames %d, want 16", got)
	}
}

func TestStridedRequestsSpeedUpCyclic(t *testing.T) {
	elapsed := func(strided bool) time.Duration {
		prm := DefaultParams()
		prm.StridedRequests = strided
		r := newRig(t, rigOpts{ncp: 2, niop: 2, ndisks: 4, blocks: 64, layout: pfs.Contiguous, prm: &prm})
		dec := mustDecomp(t, "rc", r.f.Size(), 8192, 2)
		d := r.transfer(t, dec, false, prm)
		r.verifyRead(t, dec)
		return d
	}
	plain, strided := elapsed(false), elapsed(true)
	if float64(strided) > 0.9*float64(plain) {
		t.Fatalf("strided %v vs per-chunk %v: expected a clear win", strided, plain)
	}
}

func TestIdleCPsParticipateInBarriers(t *testing.T) {
	// rn leaves CPs 1..3 idle; the run must still complete.
	r := newRig(t, rigOpts{ncp: 4, niop: 2, ndisks: 4, blocks: 16, layout: pfs.Contiguous})
	dec := mustDecomp(t, "rn", r.f.Size(), 8192, 4)
	r.transfer(t, dec, false, DefaultParams())
	r.verifyRead(t, dec)
}

func TestSyncWaitsForOutstandingPrefetch(t *testing.T) {
	// After a sequential read the last prefetch is still in flight when
	// the data has been delivered; the reported end time must include
	// it (the paper charges rb for exactly this).
	r := newRig(t, rigOpts{ncp: 2, niop: 1, ndisks: 1, blocks: 8, layout: pfs.RandomBlocks})
	dec := mustDecomp(t, "rb", r.f.Size(), 8192, 2)
	r.transfer(t, dec, false, DefaultParams())
	var reads int64
	for _, d := range r.disks {
		reads += d.Metrics().Reads
	}
	if reads <= 8 {
		t.Skip("no extra prefetch read occurred in this configuration")
	}
	// Nothing to assert numerically beyond completion: the sync path ran
	// and the engine drained, which is the regression this guards.
}
