package tcfs

import (
	"fmt"
	"time"

	"ddio/internal/cluster"
	"ddio/internal/disk"
	"ddio/internal/pfs"
	"ddio/internal/sim"
	"ddio/internal/trace"
)

// request is one CP→IOP file-system call for a piece of a single block,
// pooled on the issuing Client (owner) and reused LIFO. The record is
// also the completion target for its own reply: the server stamps srv
// and schedules a reqReadLand/reqWriteAck token as the reply message's
// delivery completion, and the record is released back to its owner at
// that terminal stage — after which gen has been bumped, so any stale
// token drops as a no-op.
type request struct {
	owner   *Client // issuing client, for release back to its pool
	gen     uint64
	srv     *Server // serving IOP, stamped when the reply is sent
	write   bool
	block   int
	off     int // offset within the block
	n       int
	memOff  int64  // CP memory offset (read deposit target)
	data    []byte // write payload snapshot (pooled capacity)
	payload []byte // read reply staging buffer (owned by srv.pfree)
	src     *cluster.Node
	done    *sim.WaitGroup // signaled at the CP when the reply lands
}

// Reply token kinds.
const (
	reqReadLand uint8 = iota + 1 // read data arrived at the CP
	reqWriteAck                  // write ack arrived at the CP
)

func (r *request) token(kind uint8) sim.Completion {
	return sim.Completion{Target: r, Gen: r.gen, Kind: kind}
}

// Complete handles the reply's arrival at the CP: a read deposits its
// payload into the user buffer first; both kinds then charge the CP's
// reply-wakeup cost and signal the requester.
func (r *request) Complete(c sim.Completion, now sim.Time) {
	if c.Gen != r.gen {
		return
	}
	s := r.srv
	if c.Kind == reqReadLand {
		copy(r.src.Mem[r.memOff:], r.payload)
		s.pfree.Put(r.payload) // bytes deposited; buffer reusable
		r.payload = nil
	}
	_, end := r.src.CPU.ReserveFor(s.prm.ReplyRecvCPU)
	done := r.done
	r.release()
	s.m.Eng.AtCompletion(end, done.DoneC())
}

// release returns the record to its owner's pool, invalidating queued
// tokens (write-payload capacity is kept for reuse).
func (r *request) release() {
	r.gen++
	r.srv = nil
	r.src = nil
	r.done = nil
	r.data = r.data[:0]
	r.owner.putReq(r)
}

// syncReq asks an IOP to flush write-behind data, wait out prefetches,
// and drain its disks.
type syncReq struct {
	src  *cluster.Node
	done *sim.WaitGroup
}

// prefetch is a pool work item asking for one block to be pulled into
// the cache ahead of demand.
type prefetch struct {
	block int
}

// Server is the traditional-caching IOP: a dispatcher daemon that hands
// each incoming request to a pool of persistent handler threads over a
// shared block cache. The modeled 1994 server still pays ThreadCreate
// CPU per request — pooling the simulator's procs changes the host cost
// of a handler, not the simulated cost model.
type Server struct {
	m     *cluster.Machine
	node  *cluster.Node
	f     *pfs.File
	prm   Params
	cache *blockCache
	m2    Metrics

	outstanding *sim.WaitGroup   // in-flight handler work items
	pool        *sim.ServicePool // persistent handler/prefetch threads
	syncName    string           // precomputed sync-handler proc name
	pfree       disk.Pool        // reply-payload free list (deterministic: one engine)
	pffree      []*prefetch      // prefetch work-item free list
	rec         *trace.Recorder  // event tracing, nil when disabled
	traceName   string           // precomputed node label for trace records
	reqSeq      int64            // per-server request id for trace correlation
}

// NewServer builds the caching server for one IOP and starts its
// dispatcher. nCP sizes the cache: BuffersPerDiskPerCP frames per local
// disk per CP; the handler pool retains one service thread per cache
// frame by default (ServiceThreads overrides).
func NewServer(m *cluster.Machine, node *cluster.Node, f *pfs.File, nCP int, prm Params) *Server {
	s := &Server{m: m, node: node, f: f, prm: prm}
	s.rec = m.Eng.Recorder()
	s.traceName = node.String()
	s.syncName = "tc-sync:" + s.traceName
	frames := prm.BuffersPerDiskPerCP * nCP * s.localDiskCount()
	s.cache = newBlockCache(s, frames, f.BlockSize)
	s.outstanding = sim.NewWaitGroup(m.Eng, "tc-outstanding:"+node.String(), 0)
	retain := prm.ServiceThreads
	if retain == 0 {
		retain = frames
	}
	s.pool = sim.NewServicePool(m.Eng, "tc-svc:"+node.String(), retain, s.serveItem)
	m.Eng.GoDaemon("tc-dispatch:"+node.String(), s.dispatch)
	return s
}

// Metrics returns a copy of the server's counters.
func (s *Server) Metrics() Metrics { return s.m2 }

// CacheFrames returns the cache capacity in buffers (diagnostic).
func (s *Server) CacheFrames() int { return len(s.cache.bufs) }

// localDiskCount returns how many of the file's disks this IOP serves.
func (s *Server) localDiskCount() int {
	n := 0
	for d := range s.f.Disks {
		if s.ownsDisk(d) {
			n++
		}
	}
	return n
}

// ownsDisk reports whether this IOP serves disk index d. Disks are
// assigned to IOPs round-robin by the machine builder; the convention is
// shared with the disk-directed file system.
func (s *Server) ownsDisk(d int) bool {
	return d%len(s.m.IOPs) == s.node.Index
}

func (s *Server) dispatch(p *sim.Proc) {
	for {
		msg := s.node.Mail.Get(p)
		s.node.CPU.UseFor(p, s.prm.DispatchCPU)
		switch r := msg.(type) {
		case *request:
			s.node.CPU.UseFor(p, s.prm.ThreadCreate)
			s.outstanding.Add(1)
			s.pool.Submit(r)
		case *syncReq:
			s.m.Eng.Go(s.syncName, func(h *sim.Proc) { s.handleSync(h, r) })
		default:
			panic(fmt.Sprintf("tcfs: unexpected message %T", msg))
		}
	}
}

// serveItem is the pool's service function: one file-system request or
// one prefetch per invocation.
func (s *Server) serveItem(h *sim.Proc, item any) {
	switch r := item.(type) {
	case *request:
		s.handle(h, r)
		s.outstanding.Done()
	case *prefetch:
		b := s.cache.getRead(h, r.block)
		s.cache.unpin(b)
		s.outstanding.Done()
		s.pffree = append(s.pffree, r)
	default:
		panic(fmt.Sprintf("tcfs: unexpected work item %T", item))
	}
}

func (s *Server) handle(h *sim.Proc, r *request) {
	s.m2.Requests++
	id := s.reqSeq
	s.reqSeq++
	start := h.Now()
	s.rec.RequestStart(s.traceName, id, int64(start), r.write, int64(r.n))
	s.node.CPU.UseFor(h, s.prm.CacheAccessCPU)
	if r.write {
		s.handleWrite(h, r)
	} else {
		s.handleRead(h, r)
	}
	s.rec.RequestEnd(s.traceName, id, int64(start), int64(h.Now()))
}

func (s *Server) handleRead(h *sim.Proc, r *request) {
	s.m2.Reads++
	b := s.cache.getRead(h, r.block)
	// Reply staging buffer from the server's free list (contents are
	// unspecified; the next line overwrites all r.n bytes).
	payload := s.pfree.Get(r.n)
	copy(payload, b.data[r.off:r.off+r.n])
	s.cache.unpin(b)
	// Reply with the data; it is DMA-deposited straight into the user
	// buffer at the CP (reqReadLand), which then pays a small wakeup cost.
	r.payload = payload
	r.srv = s
	s.node.CPU.UseFor(h, s.prm.ReplySendCPU)
	s.m.SendC(s.node, r.src, len(payload), 0, r.token(reqReadLand))
	s.maybePrefetch(h, r.block)
}

func (s *Server) handleWrite(h *sim.Proc, r *request) {
	s.m2.Writes++
	b := s.cache.getWrite(h, r.block)
	// The only memory-memory copy in the system (paper §4): from the
	// handler's message buffer into the cache frame.
	s.node.CPU.UseFor(h, s.prm.CopyPerByte*time.Duration(r.n))
	copy(b.data[r.off:r.off+r.n], r.data)
	for i := r.off; i < r.off+r.n; i++ {
		if !b.written[i] {
			b.written[i] = true
			b.dirty++
		}
	}
	full := b.dirty == s.f.BlockSize
	// Ack before the write-behind happens: the data is safely cached.
	r.srv = s
	s.node.CPU.UseFor(h, s.prm.ReplySendCPU)
	s.m.SendC(s.node, r.src, 0, 0, r.token(reqWriteAck))
	if full && !b.flushing {
		s.cache.flush(h, b)
	}
	s.cache.unpin(b)
}

// maybePrefetch starts an asynchronous read of the next block(s) on the
// same disk, if cache frames are idle — the paper's one-block-ahead
// prefetch whose occasional mistake (one extra block at the end of rb)
// it also reproduces.
func (s *Server) maybePrefetch(h *sim.Proc, afterBlock int) {
	for k := 1; k <= s.prm.PrefetchBlocks; k++ {
		nb := afterBlock + k*len(s.f.Disks) // next file block on this disk
		if nb >= s.f.NumBlocks || s.cache.contains(nb) {
			continue
		}
		s.m2.Prefetches++
		s.node.CPU.UseFor(h, s.prm.CacheAccessCPU)
		s.outstanding.Add(1)
		var pf *prefetch
		if n := len(s.pffree); n > 0 {
			pf = s.pffree[n-1]
			s.pffree = s.pffree[:n-1]
		} else {
			pf = new(prefetch)
		}
		pf.block = nb
		s.pool.Submit(pf)
	}
}

func (s *Server) handleSync(h *sim.Proc, r *syncReq) {
	// Wait for all in-flight handler threads (including prefetches) to
	// finish, flush dirty buffers, then drain the disks' own queues and
	// write-behind buffers.
	s.outstanding.Wait(h)
	s.cache.flushAll(h)
	for d, dd := range s.f.Disks {
		if s.ownsDisk(d) {
			dd.Flush(h)
		}
	}
	s.m.SendC(s.node, r.src, 0, s.prm.ReplySendCPU, r.done.DoneC())
}

// diskFor returns the disk holding the given file block.
func (s *Server) diskFor(block int) *disk.Disk { return s.f.Disks[s.f.DiskOf(block)] }

// diskReadBlock performs a synchronous block read on behalf of a
// handler, applying the server's bounded-retry policy on transient
// failures (each retry sleeps the policy's doubling backoff in simulated
// time before resubmitting). The returned buffer comes from the disk's
// free list; the caller should Recycle it (on the same disk, see
// diskFor) once done with the contents. When the retry budget is
// exhausted the loss is counted (the experiment layer reports it as a
// typed failure) and a zeroed buffer is returned so the cache machinery
// above stays oblivious to faults.
func (s *Server) diskReadBlock(p *sim.Proc, block int) []byte {
	d := s.diskFor(block)
	data, err := d.TryReadSync(p, s.f.LBN(block), s.f.SectorsPerBlock())
	for attempt := 1; err != nil && attempt <= s.prm.Retry.Limit; attempt++ {
		s.m2.DiskRetries++
		t0 := p.Now()
		p.Sleep(s.prm.Retry.BackoffFor(attempt))
		s.rec.Retry(s.traceName, int64(t0), int64(p.Now()), attempt)
		if data, err = d.TryReadSync(p, s.f.LBN(block), s.f.SectorsPerBlock()); err == nil {
			s.m2.DiskRecovered++
		}
	}
	if err != nil {
		s.m2.DiskLost++
		data = d.Buffer(s.f.BlockSize)
		clear(data)
	}
	return data
}

// diskWriteBlock performs a synchronous block write on behalf of a
// handler (the drive's write-behind makes it fast for sequential runs),
// with the same bounded-retry policy as diskReadBlock; an exhausted
// write is counted as lost and dropped.
func (s *Server) diskWriteBlock(p *sim.Proc, block int, data []byte) {
	d := s.diskFor(block)
	err := d.TryWriteSync(p, s.f.LBN(block), data)
	for attempt := 1; err != nil && attempt <= s.prm.Retry.Limit; attempt++ {
		s.m2.DiskRetries++
		t0 := p.Now()
		p.Sleep(s.prm.Retry.BackoffFor(attempt))
		s.rec.Retry(s.traceName, int64(t0), int64(p.Now()), attempt)
		if err = d.TryWriteSync(p, s.f.LBN(block), data); err == nil {
			s.m2.DiskRecovered++
		}
	}
	if err != nil {
		s.m2.DiskLost++
	}
}
