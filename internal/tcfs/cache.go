package tcfs

import (
	"ddio/internal/sim"
)

// bufState tracks the lifecycle of one cache buffer.
type bufState int

const (
	bufFree bufState = iota
	bufReading
	bufValid
)

// buffer is one block-sized cache frame.
type buffer struct {
	block    int // file block held, -1 when free
	data     []byte
	written  []bool // per-byte dirty bitmap (write-behind)
	dirty    int    // count of dirty bytes
	state    bufState
	flushing bool
	pins     int
	lastUse  sim.Time
}

func (b *buffer) reset(blockSize int) {
	b.block = -1
	if b.data == nil {
		b.data = make([]byte, blockSize)
	} else {
		clear(b.data) // keep the frame; a fresh frame reads as zeros
	}
	b.written = nil
	b.dirty = 0
	b.state = bufFree
	b.flushing = false
	b.pins = 0
}

// blockCache is an IOP's block cache: a fixed pool of buffers indexed by
// file block, LRU-replaced, shared by all concurrently running handler
// threads of that IOP. Blocking (waiting for a fill, a flush, or a free
// frame) parks the handler on the cache's condition variables.
type blockCache struct {
	s         *Server
	blockSize int
	bufs      []*buffer
	index     map[int]*buffer
	avail     *sim.Cond // a frame may have become reclaimable
	changed   *sim.Cond // some buffer changed state (fill/flush done)
}

func newBlockCache(s *Server, frames, blockSize int) *blockCache {
	c := &blockCache{
		s:         s,
		blockSize: blockSize,
		index:     make(map[int]*buffer),
		avail:     sim.NewCond(s.m.Eng, "tc-cache-avail:"+s.node.String()),
		changed:   sim.NewCond(s.m.Eng, "tc-cache-state:"+s.node.String()),
	}
	if frames < 2 {
		frames = 2
	}
	c.bufs = make([]*buffer, frames)
	for i := range c.bufs {
		c.bufs[i] = &buffer{}
		c.bufs[i].reset(blockSize)
	}
	return c
}

// lookup returns the buffer holding block, or nil.
func (c *blockCache) lookup(block int) *buffer { return c.index[block] }

// noteOccupancy traces the cache's occupied-frame count; called after
// every install or eviction so the trace carries a step function of
// buffer occupancy over time.
func (c *blockCache) noteOccupancy(t sim.Time) {
	c.s.rec.Buffer(c.s.traceName, int64(t), len(c.index), len(c.bufs))
}

// getRead returns a pinned, valid buffer holding block, reading it from
// disk on a miss. The caller must unpin.
func (c *blockCache) getRead(p *sim.Proc, block int) *buffer {
	for {
		if b := c.index[block]; b != nil {
			b.pins++
			for b.state == bufReading {
				c.changed.Wait(p)
			}
			if b.block == block && b.state == bufValid {
				b.lastUse = p.Now()
				c.s.m2.CacheHits++
				return b
			}
			// The frame was stolen while we waited; retry.
			b.pins--
			continue
		}
		b := c.acquire(p)
		if c.index[block] != nil {
			// Someone else started the same fill while we acquired.
			c.release(b)
			continue
		}
		b.block = block
		b.state = bufReading
		b.pins++
		c.index[block] = b
		c.noteOccupancy(p.Now())
		c.s.m2.CacheMiss++
		data := c.s.diskReadBlock(p, block)
		copy(b.data, data)
		c.s.diskFor(block).Recycle(data)
		b.state = bufValid
		b.lastUse = p.Now()
		c.changed.Broadcast()
		return b
	}
}

// getWrite returns a pinned buffer for writing into block. On a miss no
// disk read happens: a fresh frame with a dirty bitmap is installed
// (write-behind merges with disk content at flush time if the block is
// never fully overwritten).
func (c *blockCache) getWrite(p *sim.Proc, block int) *buffer {
	for {
		if b := c.index[block]; b != nil {
			b.pins++
			for b.state == bufReading || b.flushing {
				c.changed.Wait(p)
			}
			if b.block == block && b.state == bufValid {
				b.lastUse = p.Now()
				c.s.m2.CacheHits++
				if b.written == nil {
					b.written = make([]bool, c.blockSize)
				}
				return b
			}
			b.pins--
			continue
		}
		b := c.acquire(p)
		if c.index[block] != nil {
			c.release(b)
			continue
		}
		b.block = block
		b.state = bufValid
		b.written = make([]bool, c.blockSize)
		b.pins++
		b.lastUse = p.Now()
		c.index[block] = b
		c.noteOccupancy(p.Now())
		c.s.m2.CacheMiss++
		return b
	}
}

// unpin releases a pinned buffer.
func (c *blockCache) unpin(b *buffer) {
	b.pins--
	if b.pins == 0 {
		c.avail.Signal()
	}
}

// release returns an unused acquired frame to the free pool.
func (c *blockCache) release(b *buffer) {
	b.reset(c.blockSize)
	c.avail.Signal()
}

// acquire obtains a free frame, evicting the least-recently-used
// unpinned buffer (flushing it first if dirty). It blocks when every
// frame is pinned or in flight.
func (c *blockCache) acquire(p *sim.Proc) *buffer {
	for {
		var victim *buffer
		for _, b := range c.bufs {
			if b.state == bufFree {
				victim = b
				break
			}
		}
		if victim == nil {
			for _, b := range c.bufs {
				if b.state == bufValid && b.pins == 0 && !b.flushing &&
					(victim == nil || b.lastUse < victim.lastUse) {
					victim = b
				}
			}
		}
		if victim == nil {
			c.avail.Wait(p)
			continue
		}
		if victim.state == bufValid {
			if victim.dirty > 0 {
				c.flush(p, victim)
				continue // state changed while flushing; re-scan
			}
			delete(c.index, victim.block)
			c.noteOccupancy(p.Now())
			victim.reset(c.blockSize)
		}
		victim.state = bufReading // reserve the frame for the caller
		return victim
	}
}

// flush writes a dirty buffer to disk, merging with existing disk
// content first when the block was only partially overwritten.
func (c *blockCache) flush(p *sim.Proc, b *buffer) {
	b.flushing = true
	c.s.m2.Flushes++
	dd := c.s.diskFor(b.block)
	data := dd.Buffer(c.blockSize)
	copy(data, b.data) // full-frame copy: no stale pool bytes survive
	if b.dirty < c.blockSize {
		c.s.m2.PartialRMW++
		diskData := c.s.diskReadBlock(p, b.block)
		for i, w := range b.written {
			if !w {
				data[i] = diskData[i]
			}
		}
		dd.Recycle(diskData)
	}
	dirtyAtSubmit := b.dirty
	c.s.diskWriteBlock(p, b.block, data)
	dd.Recycle(data)
	// Bytes written while the flush was in flight stay dirty.
	if dirtyAtSubmit == b.dirty {
		b.dirty = 0
		for i := range b.written {
			b.written[i] = false
		}
	}
	b.flushing = false
	c.changed.Broadcast()
	c.avail.Signal()
}

// flushAll writes out every dirty buffer (used by Sync).
func (c *blockCache) flushAll(p *sim.Proc) {
	for {
		var b *buffer
		for _, cand := range c.bufs {
			if cand.state == bufValid && cand.dirty > 0 && !cand.flushing {
				b = cand
				break
			}
		}
		if b == nil {
			// Wait out any flushes in flight started by other handlers.
			busy := false
			for _, cand := range c.bufs {
				if cand.flushing || cand.state == bufReading {
					busy = true
					break
				}
			}
			if !busy {
				return
			}
			c.changed.Wait(p)
			continue
		}
		c.flush(p, b)
	}
}

// contains reports whether block is cached or being read (prefetch
// planning).
func (c *blockCache) contains(block int) bool { return c.index[block] != nil }
