package bus

import (
	"testing"
	"time"

	"ddio/internal/sim"
)

func TestTransferTimeIncludesOverhead(t *testing.T) {
	e := sim.NewEngine()
	b := New(e, "scsi", 10e6, 100*time.Microsecond)
	// 8 KB at 10 MB/s = 819.2 us, plus 100 us overhead.
	got := b.TransferTime(8192)
	want := 100*time.Microsecond + time.Duration(8192*100)*time.Nanosecond
	if got != want {
		t.Fatalf("TransferTime = %v, want %v", got, want)
	}
}

func TestBusSerializesContenders(t *testing.T) {
	e := sim.NewEngine()
	defer e.Close()
	b := New(e, "scsi", 10e6, 0)
	var ends []sim.Time
	for i := 0; i < 3; i++ {
		e.Go("d", func(p *sim.Proc) {
			b.Transfer(p, 1000) // 100 us each
			ends = append(ends, p.Now())
		})
	}
	e.Run()
	want := []sim.Time{
		sim.Time(100 * time.Microsecond),
		sim.Time(200 * time.Microsecond),
		sim.Time(300 * time.Microsecond),
	}
	for i := range want {
		if ends[i] != want[i] {
			t.Fatalf("transfer ends %v, want %v", ends, want)
		}
	}
	if b.Transfers() != 3 {
		t.Fatalf("Transfers = %d", b.Transfers())
	}
}

func TestBusUtilization(t *testing.T) {
	e := sim.NewEngine()
	defer e.Close()
	b := New(e, "scsi", 10e6, 0)
	e.Go("d", func(p *sim.Proc) {
		b.Transfer(p, 1000)
		p.Sleep(100 * time.Microsecond) // idle period
	})
	e.Run()
	if u := b.Utilization(e.Now()); u < 0.49 || u > 0.51 {
		t.Fatalf("utilization %v, want ~0.5", u)
	}
	if b.Busy() != 100*time.Microsecond {
		t.Fatalf("busy %v", b.Busy())
	}
}

func TestBusCapsAggregateThroughput(t *testing.T) {
	e := sim.NewEngine()
	defer e.Close()
	b := New(e, "scsi", 10e6, 0)
	const n = 100
	var end sim.Time
	done := sim.NewWaitGroup(e, "wg", n)
	for i := 0; i < n; i++ {
		e.Go("d", func(p *sim.Proc) {
			b.Transfer(p, 8192)
			done.Done()
		})
	}
	e.Go("waiter", func(p *sim.Proc) { done.Wait(p); end = p.Now() })
	e.Run()
	rate := float64(n*8192) / end.Seconds()
	if rate > 10e6*1.001 {
		t.Fatalf("aggregate %.0f B/s exceeds 10 MB/s bus", rate)
	}
	if rate < 9.9e6 {
		t.Fatalf("saturated bus only reached %.0f B/s", rate)
	}
}
