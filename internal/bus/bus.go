// Package bus models the shared I/O bus between an I/O processor and its
// disks: a fixed-bandwidth, first-come-first-served channel with a small
// per-transfer arbitration/selection overhead (the paper's Table 1: one
// 10 MB/s SCSI bus per IOP). With more than a few disks per bus, the bus
// — not the disks — becomes the bottleneck, which is exactly the effect
// Figures 6–8 of the paper explore.
package bus

import (
	"time"

	"ddio/internal/sim"
)

// Bus is a shared bandwidth resource.
type Bus struct {
	pipe *sim.Pipe
}

// New returns a bus moving bytesPerSec with perTransfer fixed overhead
// charged on every transaction.
func New(e *sim.Engine, name string, bytesPerSec float64, perTransfer time.Duration) *Bus {
	return &Bus{pipe: sim.NewPipe(e, name, bytesPerSec, perTransfer)}
}

// Transfer moves n bytes across the bus, blocking p for queueing plus
// service time.
func (b *Bus) Transfer(p *sim.Proc, n int) { b.pipe.Use(p, n) }

// TransferTime returns the uncontended service time for n bytes.
func (b *Bus) TransferTime(n int) time.Duration { return b.pipe.TransferTime(n) }

// Busy returns the accumulated busy time.
func (b *Bus) Busy() time.Duration { return b.pipe.Busy() }

// Transfers returns the number of transactions carried.
func (b *Bus) Transfers() int64 { return b.pipe.Uses() }

// Utilization returns busy time as a fraction of [0, at].
func (b *Bus) Utilization(at sim.Time) float64 { return b.pipe.Utilization(at) }
