// Package twophase implements two-phase I/O (del Rosario, Bordawekar,
// and Choudhary), the contemporaneous alternative the paper compares
// against analytically in §7.1 but did not simulate. I/O is performed in
// a "conforming distribution" — a 1-D BLOCK decomposition matching the
// file's row-major layout — through the unmodified traditional-caching
// IOP software, and a separate in-memory permutation phase moves data
// between the conforming staging buffers and the application's true
// distribution. Disk-directed I/O subsumes both phases; implementing
// two-phase I/O lets the repository check the paper's §7.1 reasoning
// (extra network traversal, unoverlapped permutation) experimentally.
//
// Fault recovery rides on the tcfs servers this package runs its I/O
// phase through: the bounded-retry policy of a run's fault plan (see
// internal/fault) is armed via tcfs.Params.Retry, so degradation sweeps
// compare two-phase I/O under exactly the recovery model the
// traditional-caching baseline uses.
package twophase

import (
	"fmt"
	"time"

	"ddio/internal/cluster"
	"ddio/internal/hpf"
	"ddio/internal/pfs"
	"ddio/internal/sim"
	"ddio/internal/tcfs"
)

// Params are the permutation-phase software costs.
type Params struct {
	// PermuteMsgCPU is the per-message cost of building/sending one
	// permutation message (batched per destination CP).
	PermuteMsgCPU time.Duration
	// SegmentCPU is the additional cost per gather segment in a
	// permutation message.
	SegmentCPU time.Duration
	// CopyPerByte is the local memory-copy cost for data already owned.
	CopyPerByte time.Duration
}

// DefaultParams returns calibrated defaults.
func DefaultParams() Params {
	return Params{
		PermuteMsgCPU: 10 * time.Microsecond,
		SegmentCPU:    500 * time.Nanosecond,
		CopyPerByte:   25 * time.Nanosecond,
	}
}

// Client orchestrates a two-phase collective transfer for all CPs.
type Client struct {
	m       *cluster.Machine
	f       *pfs.File
	target  hpf.Access // the application's true distribution
	conf    hpf.Access // the conforming (1-D BLOCK-like) distribution
	prm     Params
	tc      *tcfs.Client
	barrier *sim.Barrier
	perm    *sim.WaitGroup // permutation messages in flight
	end     sim.Time
	// absolute marks an access-built client (NewAccessClient): both
	// distributions carry absolute memory offsets, so no per-CP base is
	// added on either side.
	absolute bool
}

// NewClient builds the two-phase client. servers are the traditional
// caching IOPs that perform the conforming I/O phase. The staging area
// for cp lives at stagingBase[cp] in its memory.
func NewClient(m *cluster.Machine, f *pfs.File, target *hpf.Decomp,
	servers []*tcfs.Server, tcPrm tcfs.Params, prm Params) (*Client, error) {
	records := int(f.Size() / int64(target.RecordSize))
	conf, err := hpf.New1D(records, hpf.Block, target.RecordSize, len(m.CPs))
	if err != nil {
		return nil, err
	}
	c := &Client{
		m:       m,
		f:       f,
		target:  target,
		conf:    conf,
		prm:     prm,
		barrier: sim.NewBarrier(m.Eng, "2ph", len(m.CPs)),
		perm:    sim.NewWaitGroup(m.Eng, "2ph-perm", 0),
	}
	c.tc = tcfs.NewClient(m, f, conf, servers, tcPrm)
	base := make([]int64, len(m.CPs))
	for cp := range base {
		base[cp] = c.StagingBase(cp)
	}
	c.tc.SetMemBase(base)
	return c, nil
}

// NewAccessClient builds a two-phase client over arbitrary access
// patterns (the workload layer's request streams): target is the
// application's pattern, conf a conforming pattern covering the same
// file ranges. Both must carry absolute memory offsets — the staging
// layout is the caller's, so no per-CP base is applied.
func NewAccessClient(m *cluster.Machine, f *pfs.File, target, conf hpf.Access,
	servers []*tcfs.Server, tcPrm tcfs.Params, prm Params) *Client {
	c := &Client{
		m:        m,
		f:        f,
		target:   target,
		conf:     conf,
		prm:      prm,
		barrier:  sim.NewBarrier(m.Eng, "2ph", len(m.CPs)),
		perm:     sim.NewWaitGroup(m.Eng, "2ph-perm", 0),
		absolute: true,
	}
	c.tc = tcfs.NewClient(m, f, conf, servers, tcPrm)
	return c
}

// StagingBase returns the offset of cp's conforming staging area within
// its memory (just above the application buffer).
func (c *Client) StagingBase(cp int) int64 { return c.target.CPBytes(cp) }

// MemBytes returns the total memory cp needs: application buffer plus
// staging — the extra memory cost of two-phase I/O the paper points out.
func (c *Client) MemBytes(cp int) int64 {
	return c.target.CPBytes(cp) + c.conf.CPBytes(cp)
}

// EndTime returns the coordinator-observed completion time.
func (c *Client) EndTime() sim.Time { return c.end }

// TransferCP runs cp's side of the whole-file two-phase transfer.
func (c *Client) TransferCP(p *sim.Proc, cp int, write bool) {
	if write {
		// Phase 1: permute application data into the conforming
		// staging areas; Phase 2: write conforming.
		c.permute(p, cp, c.target, c.conf)
		c.tc.TransferCP(p, cp, true)
		if cp == 0 {
			c.end = c.tc.EndTime()
		}
		return
	}
	// Phase 1: read conforming into staging; Phase 2: permute into the
	// application distribution.
	c.tc.TransferCP(p, cp, false)
	c.permute(p, cp, c.conf, c.target)
	if cp == 0 {
		c.end = p.Now()
	}
	c.barrier.Wait(p) // keep all CPs resident until the transfer ends
}

// permute moves every byte from its location under decomposition 'from'
// to its location under decomposition 'to'. Each CP walks the file
// ranges it holds under 'from', batches the pieces per destination CP,
// and ships them with gather messages; local pieces are memcpy'd.
func (c *Client) permute(p *sim.Proc, cp int, from, to hpf.Access) {
	c.barrier.Wait(p)
	cpNode := c.m.CPs[cp]
	fromBase := c.baseFor(cp, from)
	// Destination base depends on the *destination* CP's role of 'to'.
	perDest := make(map[int][]cluster.MemSeg)
	for _, ch := range from.Chunks(cp) {
		for _, run := range to.RunsInRange(ch.FileOff, ch.Len) {
			src := fromBase + ch.MemOff + (run.FileOff - ch.FileOff)
			dstOff := c.baseFor(run.CP, to) + run.MemOff
			data := cpNode.Mem[src : src+run.Len]
			if run.CP == cp {
				_, end := cpNode.CPU.ReserveFor(c.prm.CopyPerByte * time.Duration(run.Len))
				copy(cpNode.Mem[dstOff:dstOff+run.Len], data)
				p.SleepUntil(end)
				continue
			}
			perDest[run.CP] = append(perDest[run.CP], cluster.MemSeg{Off: dstOff, Data: data})
		}
	}
	// Iterate destinations in CP order: map order would be
	// nondeterministic and break reproducibility.
	for dst := 0; dst < len(c.m.CPs); dst++ {
		segs, ok := perDest[dst]
		if !ok {
			continue
		}
		c.perm.Add(1)
		cpu := c.prm.PermuteMsgCPU + c.prm.SegmentCPU*time.Duration(len(segs)-1)
		c.m.MemputGather(cpNode, c.m.CPs[dst], segs, cpu,
			sim.Completion{}, c.perm.DoneC())
	}
	c.barrier.Wait(p)
	if cp == 0 {
		c.perm.Wait(p)
	}
	c.barrier.Wait(p)
}

// baseFor returns where distribution d's buffer starts in cp's memory:
// the application distribution sits at 0, the conforming one at the
// staging base — unless the client was built over absolute-offset access
// patterns, where both already address memory directly.
func (c *Client) baseFor(cp int, d hpf.Access) int64 {
	if !c.absolute && d == c.conf {
		return c.StagingBase(cp)
	}
	return 0
}

// String describes the client (diagnostic).
func (c *Client) String() string {
	return fmt.Sprintf("twophase(conf=1D-BLOCK over %d CPs)", len(c.m.CPs))
}
