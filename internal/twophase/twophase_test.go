package twophase

import (
	"fmt"
	"testing"
	"time"

	"ddio/internal/bus"
	"ddio/internal/cluster"
	"ddio/internal/disk"
	"ddio/internal/hpf"
	"ddio/internal/netsim"
	"ddio/internal/pfs"
	"ddio/internal/sim"
	"ddio/internal/tcfs"
)

type rig struct {
	eng     *sim.Engine
	m       *cluster.Machine
	f       *pfs.File
	servers []*tcfs.Server
}

func newRig(t *testing.T, ncp, niop, ndisks, blocks int, layout pfs.LayoutKind) *rig {
	t.Helper()
	e := sim.NewEngine()
	t.Cleanup(e.Close)
	rng := sim.NewRand(1)
	m := cluster.New(e, netsim.DefaultConfig(), ncp, niop, rng)
	buses := make([]*bus.Bus, niop)
	for i := range buses {
		buses[i] = bus.New(e, fmt.Sprintf("bus%d", i), 10e6, 100*time.Microsecond)
	}
	disks := make([]*disk.Disk, ndisks)
	for d := range disks {
		disks[d] = disk.New(e, fmt.Sprintf("d%d", d), disk.HP97560(), buses[d%niop], nil)
	}
	f, err := pfs.NewFile(disks, 8192, blocks, layout, rng)
	if err != nil {
		t.Fatal(err)
	}
	servers := make([]*tcfs.Server, niop)
	for i := range servers {
		servers[i] = tcfs.NewServer(m, m.IOPs[i], f, ncp, tcfs.DefaultParams())
	}
	return &rig{eng: e, m: m, f: f, servers: servers}
}

func (r *rig) run(t *testing.T, dec *hpf.Decomp, write bool) (*Client, time.Duration) {
	t.Helper()
	client, err := NewClient(r.m, r.f, dec, r.servers, tcfs.DefaultParams(), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	for cp, node := range r.m.CPs {
		node.Mem = make([]byte, client.MemBytes(cp))
	}
	if write {
		for cp, node := range r.m.CPs {
			for _, ch := range dec.Chunks(cp) {
				pfs.FillImage(node.Mem[ch.MemOff:ch.MemOff+ch.Len], ch.FileOff)
			}
		}
	} else {
		r.f.Preload()
	}
	for cp := range r.m.CPs {
		cp := cp
		r.eng.Go(fmt.Sprintf("cp%d", cp), func(p *sim.Proc) { client.TransferCP(p, cp, write) })
	}
	r.eng.Run()
	if client.EndTime() == 0 {
		t.Fatalf("two-phase transfer did not complete; blocked: %v", r.eng.BlockedProcs())
	}
	return client, client.EndTime().Duration()
}

func mustDecomp(t *testing.T, pattern string, fileBytes int64, recSize, ncp int) *hpf.Decomp {
	t.Helper()
	d, err := hpf.MustPattern(pattern).Decomp(fileBytes, recSize, ncp)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestTwoPhaseReadCorrectness(t *testing.T) {
	for _, pattern := range []string{"rn", "rb", "rc", "rbb", "rcc", "rcn"} {
		r := newRig(t, 4, 2, 4, 32, pfs.RandomBlocks)
		dec := mustDecomp(t, pattern, r.f.Size(), 1024, 4)
		r.run(t, dec, false)
		for cp, node := range r.m.CPs {
			for _, ch := range dec.Chunks(cp) {
				if i := pfs.VerifyImage(node.Mem[ch.MemOff:ch.MemOff+ch.Len], ch.FileOff); i >= 0 {
					t.Fatalf("%s cp%d: mismatch at %d", pattern, cp, i)
				}
			}
		}
	}
}

func TestTwoPhaseWriteCorrectness(t *testing.T) {
	for _, pattern := range []string{"wb", "wc", "wbb", "wcn"} {
		r := newRig(t, 4, 2, 4, 32, pfs.Contiguous)
		dec := mustDecomp(t, pattern, r.f.Size(), 1024, 4)
		r.run(t, dec, true)
		if i := pfs.VerifyImage(r.f.ReadBack(), 0); i >= 0 {
			t.Fatalf("%s: file mismatch at %d", pattern, i)
		}
	}
}

func TestTwoPhaseMemoryOverhead(t *testing.T) {
	// Two-phase needs application buffer + conforming staging — the
	// extra memory cost the paper's §7.1 lists against it.
	r := newRig(t, 4, 2, 4, 32, pfs.Contiguous)
	dec := mustDecomp(t, "rc", r.f.Size(), 1024, 4)
	client, err := NewClient(r.m, r.f, dec, r.servers, tcfs.DefaultParams(), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	for cp := 0; cp < 4; cp++ {
		if client.MemBytes(cp) <= dec.CPBytes(cp) {
			t.Fatalf("cp%d: two-phase memory %d not larger than app buffer %d",
				cp, client.MemBytes(cp), dec.CPBytes(cp))
		}
		if client.StagingBase(cp) != dec.CPBytes(cp) {
			t.Fatalf("cp%d staging base %d", cp, client.StagingBase(cp))
		}
	}
}

func TestTwoPhaseConformingPhaseIsBlockDistributed(t *testing.T) {
	// The conforming distribution must make large contiguous requests:
	// request count equals the block count, not the (much larger)
	// cyclic chunk count.
	r := newRig(t, 4, 2, 4, 32, pfs.Contiguous)
	dec := mustDecomp(t, "rc", r.f.Size(), 8, 4) // 8-byte cyclic: 32768 chunks
	r.run(t, dec, false)
	var requests int64
	for _, s := range r.servers {
		requests += s.Metrics().Requests
	}
	if requests != 32 {
		t.Fatalf("conforming phase made %d IOP requests, want 32 (one per block)", requests)
	}
}

func TestTwoPhaseLocalDataIsCopiedNotSent(t *testing.T) {
	// rb == the conforming distribution: the permutation is all local
	// copies, no network messages beyond the I/O phase itself.
	r := newRig(t, 4, 2, 4, 16, pfs.Contiguous)
	dec := mustDecomp(t, "rb", r.f.Size(), 8192, 4)
	r.run(t, dec, false)
	// rb equals the conforming distribution, so the permutation degrades
	// to pure local copies; the strong invariant is a byte-identical
	// result without any cross-CP placement.
	for cp, node := range r.m.CPs {
		for _, ch := range dec.Chunks(cp) {
			if i := pfs.VerifyImage(node.Mem[ch.MemOff:ch.MemOff+ch.Len], ch.FileOff); i >= 0 {
				t.Fatalf("cp%d mismatch at %d", cp, i)
			}
		}
	}
}

func TestTwoPhaseString(t *testing.T) {
	r := newRig(t, 2, 1, 1, 4, pfs.Contiguous)
	dec := mustDecomp(t, "rb", r.f.Size(), 8192, 2)
	client, err := NewClient(r.m, r.f, dec, r.servers, tcfs.DefaultParams(), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if client.String() == "" {
		t.Fatal("empty description")
	}
}
