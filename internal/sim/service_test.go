package sim

import (
	"testing"
	"time"
)

// TestServicePoolReusesWorkers: sequential items are all served by one
// persistent worker — the pool's reason to exist.
func TestServicePoolReusesWorkers(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	served := 0
	sp := NewServicePool(e, "svc", 2, func(p *Proc, item any) {
		served += item.(int)
		p.Sleep(time.Microsecond)
	})
	for i := 0; i < 10; i++ {
		sp.Submit(1)
		e.Run() // each item completes before the next is submitted
	}
	if served != 10 {
		t.Fatalf("served %d items, want 10", served)
	}
	if sp.Spawns() != 1 || sp.Workers() != 1 || sp.Idle() != 1 {
		t.Fatalf("spawns %d workers %d idle %d, want 1/1/1", sp.Spawns(), sp.Workers(), sp.Idle())
	}
	if e.NumBlocked() != 0 {
		t.Fatalf("idle worker counted as blocked: %d", e.NumBlocked())
	}
}

// TestServicePoolGrowsAndShrinks: overlapping items never queue behind a
// busy worker — the pool grows on demand and retires the excess.
func TestServicePoolGrowsAndShrinks(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	var starts []Time
	sp := NewServicePool(e, "svc", 1, func(p *Proc, item any) {
		starts = append(starts, p.Now())
		p.Sleep(time.Millisecond)
	})
	for i := 0; i < 4; i++ {
		sp.Submit(i) // all at t=0, each service takes 1ms
	}
	e.Run()
	if sp.Spawns() != 4 {
		t.Fatalf("spawned %d workers for 4 overlapping items, want 4", sp.Spawns())
	}
	for i, at := range starts {
		if at != 0 {
			t.Fatalf("item %d started at %v, want 0 (no queuing behind busy workers)", i, at)
		}
	}
	if sp.Workers() != 1 || sp.Idle() != 1 {
		t.Fatalf("after drain: workers %d idle %d, want 1/1 (excess retired)", sp.Workers(), sp.Idle())
	}
	if len(e.free) != 3 {
		t.Fatalf("engine free list holds %d procs, want 3 retired workers", len(e.free))
	}
}

// TestServicePoolTimingMatchesSpawn is the equivalence contract behind
// the server refactor: a pooled service and spawn-per-request fire the
// same number of events and finish every item at the same virtual time,
// for a workload with bursts, gaps, and re-entrant submissions.
func TestServicePoolTimingMatchesSpawn(t *testing.T) {
	type doneRec struct {
		item int
		at   Time
	}
	workload := func(submit func(e *Engine, item int)) (recs []doneRec, events int64) {
		e := NewEngine()
		defer e.Close()
		// Bursts of 3 at t=0 and t=50µs, plus a straggler at 120µs.
		for burst, base := range []time.Duration{0, 50 * time.Microsecond} {
			for i := 0; i < 3; i++ {
				item := burst*3 + i
				e.After(base, func() { submit(e, item) })
			}
		}
		e.After(120*time.Microsecond, func() { submit(e, 6) })
		e.Run()
		return nil, e.Events()
	}

	var spawnRecs, poolRecs []doneRec
	serve := func(recs *[]doneRec) func(p *Proc, item int) {
		return func(p *Proc, item int) {
			p.Sleep(time.Duration(10+item) * time.Microsecond)
			*recs = append(*recs, doneRec{item, p.Now()})
		}
	}

	spawnBody := serve(&spawnRecs)
	_, spawnEvents := workload(func(e *Engine, item int) {
		e.Go("svc", func(p *Proc) { spawnBody(p, item) })
	})

	poolBody := serve(&poolRecs)
	var sp *ServicePool
	_, poolEvents := workload(func(e *Engine, item int) {
		if sp == nil || sp.eng != e {
			sp = NewServicePool(e, "svc", 2, func(p *Proc, item any) { poolBody(p, item.(int)) })
		}
		sp.Submit(item)
	})

	if spawnEvents != poolEvents {
		t.Fatalf("event counts differ: spawn %d, pool %d", spawnEvents, poolEvents)
	}
	if len(spawnRecs) != len(poolRecs) {
		t.Fatalf("completion counts differ: %d vs %d", len(spawnRecs), len(poolRecs))
	}
	for i := range spawnRecs {
		if spawnRecs[i] != poolRecs[i] {
			t.Fatalf("completion %d differs: spawn %+v, pool %+v", i, spawnRecs[i], poolRecs[i])
		}
	}
}

// TestServicePoolSubmitFromWorker: a service routine may itself submit
// follow-up work (the tcfs prefetch path does exactly this).
func TestServicePoolSubmitFromWorker(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	var sp *ServicePool
	served := 0
	sp = NewServicePool(e, "svc", 1, func(p *Proc, item any) {
		served++
		if n := item.(int); n > 0 {
			sp.Submit(n - 1)
		}
		p.Sleep(time.Microsecond)
	})
	sp.Submit(5)
	e.Run()
	if served != 6 {
		t.Fatalf("served %d items, want 6", served)
	}
}
