package sim

// Completion tokens are the closure-free form of "call me back at time
// t". A classic callback event boxes a closure per message — on
// message-heavy runs that is the dominant allocation source, and a
// closure's captured environment is pinned to one heap, which is what
// will keep a future partitioned kernel from sharding the event queue.
// A Completion instead names a long-lived target object plus a small
// (kind, arg) payload, all carried by value inside the event record, so
// scheduling one allocates nothing.
//
// Lifecycle and staleness mirror proc dispatch tokens: a target that is
// pooled (netsim's in-flight messages, cluster's operation records,
// tcfs's request records) stamps its current generation into every
// token it hands out and bumps the generation when the record is
// released to its arena. A token that fires after its target was
// recycled mismatches and must be ignored — Complete implementations
// check c.Gen first. Targets that are never recycled (e.g. WaitGroup)
// ignore Gen entirely.

// CompletionTarget is an object completion tokens dispatch to. Complete
// runs in event context (never inside a Proc) at the token's scheduled
// time; implementations for pooled records must drop tokens whose Gen
// no longer matches the record's generation.
type CompletionTarget interface {
	Complete(c Completion, now Time)
}

// Completion is one schedulable completion token: Target receives the
// token, Gen pins it to the target's current incarnation, and Kind/Arg
// are payload the target interprets (typically a dispatch kind and an
// index or count). The zero value is "no completion"; schedulers and
// senders treat it as an absent callback.
type Completion struct {
	Target CompletionTarget
	Gen    uint64
	Kind   uint8
	Arg    int64
}

// Valid reports whether the completion names a target.
func (c Completion) Valid() bool { return c.Target != nil }

// Invoke fires the completion synchronously in the caller's context (a
// no-op for the zero Completion). Use it when the completing code is
// already running at the right instant and scheduling another event
// would perturb the event count.
func (c Completion) Invoke(now Time) {
	if c.Target != nil {
		c.Target.Complete(c, now)
	}
}

// AtCompletion schedules c to fire at absolute time t. Like At it
// panics on scheduling into the past; unlike At it boxes no closure —
// the token travels by value in the event record. A zero c is ignored.
func (e *Engine) AtCompletion(t Time, c Completion) {
	if e.closed || c.Target == nil {
		return
	}
	if t < e.now {
		panic("sim: completion scheduled in the past, by " + e.curName())
	}
	e.seq++
	e.queue.push(event{t: t, seq: e.seq, tgt: c.Target, gen: c.Gen, kind: c.Kind, arg: c.Arg})
}

// CompletionFunc adapts a plain function to CompletionTarget for
// contexts where an allocation per callback is acceptable — tests and
// rare control-path messages. Hot paths should implement
// CompletionTarget on a pooled record instead.
type CompletionFunc func(now Time)

// Complete invokes the function.
func (f CompletionFunc) Complete(_ Completion, now Time) { f(now) }

// Callback wraps fn as a Completion (allocating the closure as usual).
func Callback(fn func(now Time)) Completion {
	return Completion{Target: CompletionFunc(fn)}
}

// Arena is a deterministic LIFO free list for per-engine record types:
// the allocation arena behind pooled messages, operation records, and
// request records. Get pops the most recently Put record (or allocates
// a zero one); Put returns a record for reuse. Reuse order is LIFO and
// the engine is single-threaded, so arena behavior is identical run to
// run. Callers own generation bumping: bump the record's generation in
// its release path *before* Put so stale completion tokens mismatch.
type Arena[T any] struct {
	free []*T
}

// Get returns a pooled record, or a new zero-valued one.
func (a *Arena[T]) Get() *T {
	if n := len(a.free); n > 0 {
		x := a.free[n-1]
		a.free[n-1] = nil
		a.free = a.free[:n-1]
		return x
	}
	return new(T)
}

// Put returns x to the arena. The caller must have dropped references
// it does not own (and bumped the record's generation) first.
func (a *Arena[T]) Put(x *T) { a.free = append(a.free, x) }
