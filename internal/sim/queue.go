package sim

import (
	"math/bits"
	"sort"
)

// The engine's pending-event set is a priority queue ordered by (t, seq):
// virtual time first, then insertion sequence, so events scheduled for the
// same instant fire in FIFO order. Three implementations satisfy evq — a
// binary min-heap (heapQueue), a Brown-style calendar queue
// (calendarQueue), and an adaptive hybrid of the two (hybridQueue) — and
// because the (t, seq) order is a strict total order, all fire identical
// workloads in identical order. NewEngine uses the hybrid; NewEngineWithQueue
// selects one explicitly for A/B benchmarking (see
// TestQueueEquivalenceRandom for the property that pins them together).

// evq is the minimal priority-queue surface the engine needs. push may be
// called with any t not less than the last popped t (the engine forbids
// scheduling into the past); pop removes and returns the (t, seq)-minimum
// event.
type evq interface {
	push(ev event)
	pop() event
	len() int
	clear()
}

// QueueKind selects the engine's event-queue implementation.
type QueueKind int

// The available event-queue implementations.
const (
	// HybridQueue adapts to queue size: a binary heap while few events
	// are pending (where the calendar ring scan costs ~2x a heap pop)
	// and the calendar queue once the queue grows (the default).
	HybridQueue QueueKind = iota
	// CalendarQueue is a time-bucketed ring with an overflow heap for
	// far-future events: O(1) expected push/pop at scale.
	CalendarQueue
	// HeapQueue is the classic binary min-heap: O(log n) push/pop, kept
	// for A/B benchmarking against the calendar queue.
	HeapQueue
)

func newQueue(k QueueKind) evq {
	switch k {
	case HeapQueue:
		return &heapQueue{}
	case CalendarQueue:
		return newCalendarQueue()
	default:
		return &hybridQueue{}
	}
}

// evLess is the queue's strict total order.
func evLess(a, b event) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	return a.seq < b.seq
}

// --- binary min-heap ---

// eventQueue is a binary min-heap of events ordered by (t, seq).
type eventQueue []event

func (q eventQueue) less(i, j int) bool { return evLess(q[i], q[j]) }

func (q *eventQueue) push(ev event) {
	*q = append(*q, ev)
	i := len(*q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !(*q).less(i, parent) {
			break
		}
		(*q)[i], (*q)[parent] = (*q)[parent], (*q)[i]
		i = parent
	}
}

func (q *eventQueue) pop() event {
	h := *q
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = event{} // release closure for GC
	*q = h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		if l >= n {
			break
		}
		c := l
		if r < n && h.less(r, l) {
			c = r
		}
		if !h.less(c, i) {
			break
		}
		h[i], h[c] = h[c], h[i]
		i = c
	}
	return top
}

// heapQueue adapts eventQueue to the evq interface.
type heapQueue struct{ q eventQueue }

func (h *heapQueue) push(ev event) { h.q.push(ev) }
func (h *heapQueue) pop() event    { return h.q.pop() }
func (h *heapQueue) len() int      { return len(h.q) }
func (h *heapQueue) clear()        { h.q = nil }

// --- calendar queue ---

// Tuning constants for the calendar queue. Buckets and widths are powers
// of two so the bucket index is a shift and a mask rather than a divide.
const (
	cqMinBuckets = 16 // smallest ring; must be a power of two
	cqInitShift  = 12 // initial bucket width 2^12 ns ≈ 4 µs
	cqMaxShift   = 40 // widest bucket ≈ 18 min of virtual time
	cqSampleMax  = 64 // events sampled to estimate inter-event gaps
)

// calendarQueue is a bucketed calendar queue (R. Brown, CACM 1988): a
// ring of time buckets of width 2^shift ns, indexed by bucket(t) =
// (t >> shift) & mask. Events within one "year" (bucketCount × width) of
// the current position live in the ring, kept sorted per bucket; events
// further out wait in an overflow min-heap and migrate into the ring when
// it drains or is rebuilt. The ring is lazily resized — doubled when
// overfull, halved when sparse — with the bucket width re-estimated from
// the observed inter-event gaps, so push and pop stay O(1) expected while
// preserving the exact (t, seq) FIFO order of the heap.
type calendarQueue struct {
	buckets  [][]event
	mask     int  // len(buckets) - 1
	shift    uint // bucket width is 1 << shift nanoseconds
	n        int  // events resident in buckets (overflow excluded)
	cur      int  // ring index of the bucket holding the current position
	curTop   Time // exclusive upper time bound of bucket cur
	lastT    Time // lower bound for every queued event (last pop's time)
	ovLimit  Time // events at or beyond this time go to the overflow heap
	overflow eventQueue
}

func newCalendarQueue() *calendarQueue {
	cq := &calendarQueue{}
	cq.rebuild(cqMinBuckets, cqInitShift, 0)
	return cq
}

// rebuild installs an empty ring of nb buckets with the given width,
// anchored so that events in [at, at + year) map directly into it.
func (cq *calendarQueue) rebuild(nb int, shift uint, at Time) {
	cq.buckets = make([][]event, nb)
	cq.mask = nb - 1
	cq.shift = shift
	cq.n = 0
	cq.anchor(at)
}

// anchor positions the ring's current bucket at time t and refreshes the
// overflow horizon (one full year past t, window-aligned so a single lap
// of the ring always covers every resident event). Overflow events that
// fall inside the refreshed horizon are pulled into the ring, keeping the
// invariant that every ring event precedes every overflow event.
func (cq *calendarQueue) anchor(t Time) {
	w := t >> cq.shift
	cq.lastT = t
	cq.cur = int(w) & cq.mask
	cq.curTop = (w + 1) << cq.shift
	cq.ovLimit = (w + Time(len(cq.buckets))) << cq.shift
	cq.drainOverflow()
}

// drainOverflow moves every overflow event inside the current horizon
// into the ring.
func (cq *calendarQueue) drainOverflow() {
	for len(cq.overflow) > 0 && cq.overflow[0].t < cq.ovLimit {
		cq.bucketInsert(cq.overflow.pop())
		cq.n++
	}
}

func (cq *calendarQueue) len() int { return cq.n + len(cq.overflow) }

func (cq *calendarQueue) clear() {
	cq.overflow = nil // before rebuild: anchor would drain it into the ring
	cq.rebuild(cqMinBuckets, cqInitShift, 0)
}

func (cq *calendarQueue) push(ev event) {
	// Note: lastT may only advance through pops. It is a lower bound on
	// every queued event (the engine never schedules into the past), but
	// pushes before the first pop can arrive in any time order, so the
	// anchor must never chase a pushed event forward.
	if ev.t >= cq.ovLimit {
		cq.overflow.push(ev)
		return
	}
	cq.bucketInsert(ev)
	cq.n++
	if cq.n > 2*len(cq.buckets) {
		cq.resize(2 * len(cq.buckets))
	}
}

// bucketInsert places ev into its ring bucket, keeping the bucket sorted
// by (t, seq). The common case — events arriving in increasing order —
// appends; otherwise a binary search finds the insertion point.
func (cq *calendarQueue) bucketInsert(ev event) {
	idx := int(ev.t>>cq.shift) & cq.mask
	s := cq.buckets[idx]
	if k := len(s); k == 0 || evLess(s[k-1], ev) {
		cq.buckets[idx] = append(s, ev)
		return
	}
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if evLess(ev, s[mid]) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	s = append(s, event{})
	copy(s[lo+1:], s[lo:])
	s[lo] = ev
	cq.buckets[idx] = s
}

func (cq *calendarQueue) pop() event {
	if cq.n == 0 {
		cq.migrate()
	}
	// Walk the ring from the current position. Every resident event is
	// within one year of lastT, so at most one lap finds the minimum; the
	// direct search after a full lap is a defensive fallback only. Each
	// empty-bucket step rolls the year forward one window: the overflow
	// horizon advances in lockstep and any overflow event that enters it
	// drops into the ring (almost a year ahead of the scan, so the lap
	// bound still holds for everything the scan is looking for).
	width := Time(1) << cq.shift
	for i := 0; i <= cq.mask; i++ {
		if b := cq.buckets[cq.cur]; len(b) > 0 && b[0].t < cq.curTop {
			ev := b[0]
			copy(b, b[1:])
			b[len(b)-1] = event{} // release closure for GC
			cq.buckets[cq.cur] = b[:len(b)-1]
			cq.n--
			cq.lastT = ev.t
			if 4*cq.n < len(cq.buckets) && len(cq.buckets) > cqMinBuckets {
				cq.resize(len(cq.buckets) / 2)
			}
			return ev
		}
		cq.cur = (cq.cur + 1) & cq.mask
		cq.curTop += width
		cq.ovLimit += width
		cq.drainOverflow()
	}
	return cq.popMin()
}

// popMin removes the globally minimal resident event by direct search and
// re-anchors the ring at it. It is the fallback for the (theoretically
// unreachable) case of a lap that finds nothing.
func (cq *calendarQueue) popMin() event {
	best, bestAt := -1, Time(0)
	var bestSeq int64
	for i, b := range cq.buckets {
		if len(b) == 0 {
			continue
		}
		if best < 0 || b[0].t < bestAt || (b[0].t == bestAt && b[0].seq < bestSeq) {
			best, bestAt, bestSeq = i, b[0].t, b[0].seq
		}
	}
	if best < 0 {
		panic("sim: pop from empty event queue")
	}
	b := cq.buckets[best]
	ev := b[0]
	copy(b, b[1:])
	b[len(b)-1] = event{}
	cq.buckets[best] = b[:len(b)-1]
	cq.n--
	cq.anchor(ev.t)
	return ev
}

// migrate refills an empty ring from the overflow heap: the year is
// re-anchored at the earliest overflow event, which pulls everything
// within the new year into buckets.
func (cq *calendarQueue) migrate() {
	if len(cq.overflow) == 0 {
		panic("sim: pop from empty event queue")
	}
	cq.anchor(cq.overflow[0].t)
	if cq.n > 2*len(cq.buckets) {
		cq.resize(2 * len(cq.buckets))
	}
}

// resize rebuilds the ring with nb buckets, re-estimating the bucket
// width from the head of the event distribution and redistributing every
// queued event (overflow included) between ring and overflow.
func (cq *calendarQueue) resize(nb int) {
	all := make([]event, 0, cq.n+len(cq.overflow))
	for _, b := range cq.buckets {
		all = append(all, b...)
	}
	all = append(all, cq.overflow...)
	cq.overflow = cq.overflow[:0]
	sort.Slice(all, func(i, j int) bool { return evLess(all[i], all[j]) })

	// Brown's width rule, simplified: three times the mean gap across the
	// first cqSampleMax events, so a year comfortably covers the active
	// head while buckets average ≲1 event.
	shift := cq.shift
	if k := len(all); k >= 2 {
		s := k
		if s > cqSampleMax {
			s = cqSampleMax
		}
		span := all[s-1].t - all[0].t
		target := 3 * span / Time(s-1)
		if target < 1 {
			target = 1
		}
		shift = uint(bits.Len64(uint64(target))) - 1
		if shift > cqMaxShift {
			shift = cqMaxShift
		}
	}

	at := cq.lastT // never move the anchor backward past engine time
	cq.buckets = make([][]event, nb)
	cq.mask = nb - 1
	cq.shift = shift
	cq.n = 0
	cq.anchor(at)
	for _, ev := range all {
		if ev.t >= cq.ovLimit {
			cq.overflow.push(ev)
		} else {
			cq.bucketInsert(ev)
			cq.n++
		}
	}
}

// --- adaptive hybrid ---

// Hysteresis thresholds for the hybrid queue. Below ~100 pending events
// the calendar ring scan costs about twice a heap pop (BenchmarkQueue),
// so the hybrid stays on the heap until the queue clearly outgrows that
// regime and only returns once it has clearly shrunk back; the wide gap
// between the two marks keeps migrations rare.
const (
	hqToCalendar = 128 // heap -> calendar above this many pending events
	hqToHeap     = 16  // calendar -> heap below this many pending events
)

// hybridQueue runs on a binary heap while the pending set is small and
// migrates to the calendar queue when it grows past hqToCalendar (and
// back when it drains below hqToHeap). A migration drains the source in
// (t, seq) order and replays it into the target — a strict-total-order
// replay — so the firing sequence is identical to either implementation
// alone; TestQueueEquivalenceRandom crosses the thresholds repeatedly to
// pin that.
type hybridQueue struct {
	heap  heapQueue
	cal   *calendarQueue
	onCal bool
	lastT Time // most recent pop's time: lower bound for every future push
}

func (h *hybridQueue) len() int {
	if h.onCal {
		return h.cal.len()
	}
	return h.heap.len()
}

func (h *hybridQueue) clear() {
	h.heap.clear()
	if h.cal != nil {
		h.cal.clear()
	}
	h.onCal = false
	h.lastT = 0
}

func (h *hybridQueue) push(ev event) {
	if h.onCal {
		h.cal.push(ev)
		return
	}
	h.heap.push(ev)
	if h.heap.len() > hqToCalendar {
		h.toCalendar()
	}
}

func (h *hybridQueue) pop() event {
	if !h.onCal {
		ev := h.heap.pop()
		h.lastT = ev.t
		return ev
	}
	ev := h.cal.pop()
	h.lastT = ev.t
	if h.cal.len() < hqToHeap {
		h.toHeap()
	}
	return ev
}

// toCalendar migrates the pending set heap -> calendar. The fresh ring
// is anchored at the hybrid's last popped time — a lower bound both for
// every migrated event and for every future push (the heap minimum is
// not: the engine may still push between lastT and it) — so nearby
// events land in buckets rather than all spilling to the overflow heap,
// and the replay's (t, seq) order makes those inserts take the bucket
// append fast path.
func (h *hybridQueue) toCalendar() {
	if h.cal == nil {
		h.cal = newCalendarQueue()
	} else {
		h.cal.clear()
	}
	h.cal.anchor(h.lastT)
	for h.heap.len() > 0 {
		h.cal.push(h.heap.pop())
	}
	h.onCal = true
}

// toHeap migrates the pending set calendar -> heap.
func (h *hybridQueue) toHeap() {
	for h.cal.len() > 0 {
		h.heap.push(h.cal.pop())
	}
	h.onCal = false
}
