package sim

import (
	"testing"
	"time"
)

// recordTarget is a pooled-style completion target for tests: it records
// fired tokens and drops stale ones by generation, exactly as netsim's
// messages and cluster's operation records do.
type recordTarget struct {
	gen   uint64
	fired []Completion
	at    []Time
}

func (r *recordTarget) Complete(c Completion, now Time) {
	if c.Gen != r.gen {
		return
	}
	r.fired = append(r.fired, c)
	r.at = append(r.at, now)
}

// TestCompletionFiresWithKindArg pins the token round trip: kind and arg
// travel through the event queue unchanged, and the token fires at its
// scheduled time in FIFO order with callback events.
func TestCompletionFiresWithKindArg(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	r := &recordTarget{gen: 7}
	e.AtCompletion(Time(3*time.Microsecond), Completion{Target: r, Gen: 7, Kind: 2, Arg: 41})
	e.AtCompletion(Time(1*time.Microsecond), Completion{Target: r, Gen: 7, Kind: 9, Arg: -5})
	e.Run()
	if len(r.fired) != 2 {
		t.Fatalf("fired %d completions, want 2", len(r.fired))
	}
	if r.fired[0].Kind != 9 || r.fired[0].Arg != -5 || r.at[0] != Time(1*time.Microsecond) {
		t.Fatalf("first completion = kind %d arg %d at %v", r.fired[0].Kind, r.fired[0].Arg, r.at[0])
	}
	if r.fired[1].Kind != 2 || r.fired[1].Arg != 41 || r.at[1] != Time(3*time.Microsecond) {
		t.Fatalf("second completion = kind %d arg %d at %v", r.fired[1].Kind, r.fired[1].Arg, r.at[1])
	}
}

// TestZeroCompletionIsIgnored: the zero Completion means "no callback";
// scheduling it must queue nothing (it is the token analogue of the old
// nil-closure checks at call sites).
func TestZeroCompletionIsIgnored(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	e.AtCompletion(0, Completion{})
	if e.Pending() != 0 {
		t.Fatalf("zero completion queued an event")
	}
	var c Completion
	c.Invoke(0) // must be a no-op, not a nil dereference
	if c.Valid() {
		t.Fatal("zero completion reports Valid")
	}
}

// TestStaleCompletionOnRecycledTargetIsDropped mirrors
// TestStaleWakeOnRecycledProcIsDropped for completion targets: a pooled
// record is released (generation bumped) with a token still queued, then
// reused as a new incarnation. The stale token must no-op — but still
// fire as an event, so event counts cannot depend on recycling timing.
func TestStaleCompletionOnRecycledTargetIsDropped(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	var arena Arena[recordTarget]
	r := arena.Get()
	r.gen = 1
	// Token for incarnation 1 at t=5µs; the record is released (and its
	// generation bumped) before the token fires.
	e.AtCompletion(Time(5*time.Microsecond), Completion{Target: r, Gen: r.gen, Kind: 1})
	r.gen++ // release path: bump before Put so queued tokens go stale
	arena.Put(r)
	// The next Get hands the same record out as incarnation 2.
	r2 := arena.Get()
	if r2 != r {
		t.Fatal("arena did not recycle the released record")
	}
	e.AtCompletion(Time(10*time.Microsecond), Completion{Target: r2, Gen: r2.gen, Kind: 2})
	e.Run()
	if len(r2.fired) != 1 || r2.fired[0].Kind != 2 {
		t.Fatalf("fired %v, want only the kind-2 token for the new incarnation", r2.fired)
	}
	// Both tokens fired as events: stale drops must not change counts.
	if e.Events() != 2 {
		t.Fatalf("fired %d events, want 2 (stale token must count)", e.Events())
	}
}

// TestAtCompletionAllocFree is the allocation guard the token design
// exists for: scheduling and firing a completion on a warm engine must
// not allocate.
func TestAtCompletionAllocFree(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	wg := NewWaitGroup(e, "alloc", 0)
	done := wg.DoneC()
	for i := 0; i < 8; i++ { // warm the event queue
		wg.Add(1)
		e.AtCompletion(e.Now(), done)
		e.Run()
	}
	avg := testing.AllocsPerRun(200, func() {
		wg.Add(1)
		e.AtCompletion(e.Now(), done)
		e.Run()
	})
	if avg > 0 {
		t.Errorf("completion schedule+fire allocates %.2f objects/op, want 0", avg)
	}
}

// TestArenaLIFOAndZeroing pins Arena's contract: LIFO reuse (most
// recently released first, deterministic) and zero-valued fresh records.
func TestArenaLIFOAndZeroing(t *testing.T) {
	var a Arena[int]
	x, y := a.Get(), a.Get()
	if *x != 0 || *y != 0 {
		t.Fatal("fresh arena records not zero-valued")
	}
	*x, *y = 1, 2
	a.Put(x)
	a.Put(y)
	if got := a.Get(); got != y {
		t.Fatal("arena reuse is not LIFO")
	}
	if got := a.Get(); got != x {
		t.Fatal("arena lost a released record")
	}
	if a.Get() == x {
		t.Fatal("arena handed out a record twice")
	}
}

// TestWaitGroupCompletionReleasesWaiter: a DoneC token fired by the
// engine must release a parked waiter exactly like Done.
func TestWaitGroupCompletionReleasesWaiter(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	wg := NewWaitGroup(e, "tok", 1)
	var wokeAt Time
	e.Go("waiter", func(p *Proc) {
		wg.Wait(p)
		wokeAt = p.Now()
	})
	e.AtCompletion(Time(4*time.Microsecond), wg.DoneC())
	e.Run()
	if wokeAt != Time(4*time.Microsecond) {
		t.Fatalf("waiter woke at %v, want 4µs", wokeAt)
	}
}

// TestCallbackAdapter: the closure adapter still works for cold paths.
func TestCallbackAdapter(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	var got Time
	e.AtCompletion(Time(2*time.Microsecond), Callback(func(now Time) { got = now }))
	e.Run()
	if got != Time(2*time.Microsecond) {
		t.Fatalf("callback fired at %v, want 2µs", got)
	}
}
