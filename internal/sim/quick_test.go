package sim

import (
	"testing"
	"testing/quick"
	"time"
)

// Property: events always fire in non-decreasing time order regardless
// of insertion order.
func TestQuickEventOrdering(t *testing.T) {
	f := func(times []uint16) bool {
		e := NewEngine()
		var fired []Time
		for _, tt := range times {
			tt := Time(tt)
			e.At(tt, func() { fired = append(fired, tt) })
		}
		e.Run()
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == len(times)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: pipe reservations never overlap and never move backward.
func TestQuickPipeReservationsDisjoint(t *testing.T) {
	f := func(sizes []uint8) bool {
		e := NewEngine()
		pp := NewPipe(e, "p", 1e6, time.Microsecond)
		var lastEnd Time
		for _, n := range sizes {
			s, end := pp.Reserve(int(n))
			if s < lastEnd || end < s {
				return false
			}
			lastEnd = end
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: a semaphore never goes negative and all waiters are served
// when enough permits are released.
func TestQuickSemaphoreConservation(t *testing.T) {
	f := func(requests []uint8) bool {
		if len(requests) > 50 {
			requests = requests[:50]
		}
		e := NewEngine()
		sem := NewSemaphore(e, "s", 10)
		served := 0
		for _, r := range requests {
			n := int(r)%3 + 1
			e.Go("p", func(p *Proc) {
				sem.Acquire(p, n)
				p.Sleep(time.Microsecond)
				served++
				sem.Release(n)
			})
		}
		e.Run()
		defer e.Close()
		return served == len(requests) && sem.Available() == 10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: derived random streams are stable (same label, same values)
// and independent of draw order.
func TestQuickRandStreams(t *testing.T) {
	f := func(seed int64) bool {
		a := NewRand(seed).Stream("x").Int63()
		r := NewRand(seed)
		r.Stream("y").Int63() // interleave another stream
		b := r.Stream("x").Int63()
		return a == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRandSeedAccessor(t *testing.T) {
	if NewRand(123).Seed() != 123 {
		t.Fatal("Seed() mismatch")
	}
	if NewRand(1).Stream("a").Seed() == NewRand(2).Stream("a").Seed() {
		t.Fatal("streams from different seeds collide")
	}
}

func TestRandPermIsPermutation(t *testing.T) {
	p := NewRand(5).Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}
