package sim

import (
	"testing"
	"time"
)

func TestMailboxFIFO(t *testing.T) {
	e := NewEngine()
	mb := NewMailbox(e, "m")
	mb.Put(1)
	mb.Put(2)
	mb.Put(3)
	var got []int
	e.Go("r", func(p *Proc) {
		for i := 0; i < 3; i++ {
			got = append(got, mb.Get(p).(int))
		}
	})
	e.Run()
	if got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("order %v", got)
	}
}

func TestMailboxGetBlocksUntilPut(t *testing.T) {
	e := NewEngine()
	mb := NewMailbox(e, "m")
	var at Time
	e.Go("r", func(p *Proc) {
		v := mb.Get(p).(string)
		at = p.Now()
		if v != "hello" {
			t.Errorf("got %q", v)
		}
	})
	e.After(5*time.Millisecond, func() { mb.Put("hello") })
	e.Run()
	if at != Time(5*time.Millisecond) {
		t.Fatalf("received at %v, want 5ms", at)
	}
}

func TestMailboxMultipleWaitersFIFO(t *testing.T) {
	e := NewEngine()
	mb := NewMailbox(e, "m")
	var got []string
	for _, n := range []string{"a", "b"} {
		n := n
		e.Go(n, func(p *Proc) {
			v := mb.Get(p).(int)
			got = append(got, n)
			_ = v
		})
	}
	e.After(time.Millisecond, func() { mb.Put(1); mb.Put(2) })
	e.Run()
	if len(got) != 2 || got[0] != "a" {
		t.Fatalf("waiter order %v, want a first", got)
	}
}

func TestMailboxTryGet(t *testing.T) {
	e := NewEngine()
	mb := NewMailbox(e, "m")
	if _, ok := mb.TryGet(); ok {
		t.Fatal("TryGet on empty mailbox succeeded")
	}
	mb.Put(9)
	v, ok := mb.TryGet()
	if !ok || v.(int) != 9 {
		t.Fatalf("TryGet = %v,%v", v, ok)
	}
	if mb.Len() != 0 {
		t.Fatalf("Len %d after drain", mb.Len())
	}
	if mb.Delivered() != 1 {
		t.Fatalf("Delivered %d", mb.Delivered())
	}
}
