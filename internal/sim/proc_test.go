package sim

import (
	"testing"
	"time"
)

func TestProcSleepAdvancesClock(t *testing.T) {
	e := NewEngine()
	var wake Time
	e.Go("p", func(p *Proc) {
		p.Sleep(3 * time.Millisecond)
		wake = p.Now()
	})
	e.Run()
	if wake != Time(3*time.Millisecond) {
		t.Fatalf("woke at %v, want 3ms", wake)
	}
}

func TestProcSleepUntilPastIsNow(t *testing.T) {
	e := NewEngine()
	var wake Time
	e.Go("p", func(p *Proc) {
		p.Sleep(time.Millisecond)
		p.SleepUntil(0) // in the past
		wake = p.Now()
	})
	e.Run()
	if wake != Time(time.Millisecond) {
		t.Fatalf("woke at %v, want 1ms", wake)
	}
}

func TestProcsInterleaveDeterministically(t *testing.T) {
	e := NewEngine()
	var order []string
	for _, name := range []string{"a", "b"} {
		name := name
		e.Go(name, func(p *Proc) {
			for i := 0; i < 3; i++ {
				order = append(order, name)
				p.Sleep(time.Millisecond)
			}
		})
	}
	e.Run()
	want := []string{"a", "b", "a", "b", "a", "b"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("interleave %v, want %v", order, want)
		}
	}
}

func TestYieldRunsOthersFirst(t *testing.T) {
	e := NewEngine()
	var order []string
	e.Go("a", func(p *Proc) {
		order = append(order, "a1")
		p.Yield()
		order = append(order, "a2")
	})
	e.Go("b", func(p *Proc) { order = append(order, "b") })
	e.Run()
	// b starts (same instant) before a's continuation after the yield.
	if order[0] != "a1" || order[1] != "b" || order[2] != "a2" {
		t.Fatalf("yield order %v", order)
	}
}

func TestNestedSpawn(t *testing.T) {
	e := NewEngine()
	var childAt Time
	e.Go("parent", func(p *Proc) {
		p.Sleep(time.Millisecond)
		e.Go("child", func(c *Proc) {
			c.Sleep(time.Millisecond)
			childAt = c.Now()
		})
		p.Sleep(5 * time.Millisecond)
	})
	e.Run()
	if childAt != Time(2*time.Millisecond) {
		t.Fatalf("child finished at %v, want 2ms", childAt)
	}
}

func TestProcNameAndEngineAccessors(t *testing.T) {
	e := NewEngine()
	e.Go("worker", func(p *Proc) {
		if p.Name() != "worker" {
			t.Errorf("Name() = %q", p.Name())
		}
		if p.Engine() != e {
			t.Error("Engine() mismatch")
		}
	})
	e.Run()
}

func TestManyProcsComplete(t *testing.T) {
	e := NewEngine()
	done := 0
	for i := 0; i < 1000; i++ {
		i := i
		e.Go("p", func(p *Proc) {
			p.Sleep(time.Duration(i) * time.Microsecond)
			done++
		})
	}
	e.Run()
	if done != 1000 {
		t.Fatalf("%d procs completed, want 1000", done)
	}
	if e.NumBlocked() != 0 {
		t.Fatalf("%d procs leaked", e.NumBlocked())
	}
}
