package sim

// Synchronization primitives for simulated processes. All of them follow
// the same discipline: blocking operations take the calling *Proc;
// non-blocking operations (signals, releases) may be called from proc or
// event context and hand wake-ups to the engine as zero-delay events, so
// execution order stays deterministic.

// Semaphore is a counting semaphore with FIFO waiters.
type Semaphore struct {
	eng       *Engine
	name      string
	parkLabel string // precomputed park reason (avoids per-wait concat)
	avail     int
	waits     []*semWaiter
}

type semWaiter struct {
	p *Proc
	n int
}

// NewSemaphore returns a semaphore with n initial permits.
func NewSemaphore(e *Engine, name string, n int) *Semaphore {
	return &Semaphore{eng: e, name: name, parkLabel: "sem " + name, avail: n}
}

// Available returns the current number of permits.
func (s *Semaphore) Available() int { return s.avail }

// Acquire blocks p until n permits are available, then takes them.
// Waiters are served strictly in arrival order: a large request at the
// head of the queue blocks later small ones (no barging), which keeps
// buffer-pool style usage fair.
func (s *Semaphore) Acquire(p *Proc, n int) {
	if n <= 0 {
		return
	}
	if len(s.waits) == 0 && s.avail >= n {
		s.avail -= n
		return
	}
	s.waits = append(s.waits, &semWaiter{p: p, n: n})
	p.park(s.parkLabel)
}

// TryAcquire takes n permits if immediately available and no earlier
// waiter is queued; it reports whether it succeeded.
func (s *Semaphore) TryAcquire(n int) bool {
	if n <= 0 {
		return true
	}
	if len(s.waits) == 0 && s.avail >= n {
		s.avail -= n
		return true
	}
	return false
}

// Release returns n permits and wakes as many queued waiters as can now
// be satisfied, in FIFO order.
func (s *Semaphore) Release(n int) {
	s.avail += n
	for len(s.waits) > 0 && s.avail >= s.waits[0].n {
		w := s.waits[0]
		s.waits = s.waits[1:]
		s.avail -= w.n
		s.eng.wake(w.p)
	}
}

// Barrier is a reusable N-party barrier, used by compute processors
// around collective operations.
type Barrier struct {
	eng       *Engine
	name      string
	parkLabel string
	parties   int
	arrived   int
	waits     []*Proc
}

// NewBarrier returns a barrier for the given number of parties.
func NewBarrier(e *Engine, name string, parties int) *Barrier {
	if parties < 1 {
		panic("sim: barrier needs at least one party")
	}
	return &Barrier{eng: e, name: name, parkLabel: "barrier " + name, parties: parties}
}

// Wait blocks p until all parties have arrived; the last arrival releases
// everyone and resets the barrier for reuse.
func (b *Barrier) Wait(p *Proc) {
	b.arrived++
	if b.arrived == b.parties {
		b.arrived = 0
		for _, w := range b.waits {
			b.eng.wake(w)
		}
		b.waits = b.waits[:0]
		return
	}
	b.waits = append(b.waits, p)
	p.park(b.parkLabel)
}

// WaitGroup counts outstanding work items; procs can wait for the count
// to reach zero. Unlike sync.WaitGroup it is usable from event context
// for Add/Done.
type WaitGroup struct {
	eng       *Engine
	name      string
	parkLabel string
	count     int
	waits     []*Proc
}

// NewWaitGroup returns a WaitGroup with an initial count.
func NewWaitGroup(e *Engine, name string, count int) *WaitGroup {
	return &WaitGroup{eng: e, name: name, parkLabel: "waitgroup " + name, count: count}
}

// Add adds delta (which may be negative) to the counter. If the counter
// reaches zero all waiters are released. A negative counter panics.
func (w *WaitGroup) Add(delta int) {
	w.count += delta
	if w.count < 0 {
		panic("sim: negative WaitGroup counter " + w.name)
	}
	if w.count == 0 {
		for _, p := range w.waits {
			w.eng.wake(p)
		}
		w.waits = w.waits[:0]
	}
}

// Done decrements the counter by one.
func (w *WaitGroup) Done() { w.Add(-1) }

// Complete implements CompletionTarget: a fired token decrements the
// counter by one, so "signal this WaitGroup when the message lands" is
// a token instead of a boxed wg.Done closure. WaitGroups are never
// recycled under outstanding tokens (Reset panics while in use), so Gen
// is ignored.
func (w *WaitGroup) Complete(Completion, Time) { w.Done() }

// DoneC returns the completion token equivalent of Done.
func (w *WaitGroup) DoneC() Completion { return Completion{Target: w} }

// Reset re-arms a drained WaitGroup with a fresh count so callers can
// pool per-request WaitGroups instead of allocating one per operation.
// Resetting while the counter is nonzero or waiters are parked panics:
// that would silently detach them from their outcome.
func (w *WaitGroup) Reset(count int) {
	if w.count != 0 || len(w.waits) != 0 {
		panic("sim: Reset of an in-use WaitGroup " + w.name)
	}
	if count < 0 {
		panic("sim: negative WaitGroup counter " + w.name)
	}
	w.count = count
}

// Count returns the current counter value.
func (w *WaitGroup) Count() int { return w.count }

// Wait blocks p until the counter is zero. A zero counter returns
// immediately.
func (w *WaitGroup) Wait(p *Proc) {
	if w.count == 0 {
		return
	}
	w.waits = append(w.waits, p)
	p.park(w.parkLabel)
}

// Cond is a condition variable: procs wait for a predicate guarded by the
// single-threaded engine, and any context may signal.
type Cond struct {
	eng       *Engine
	name      string
	parkLabel string
	waits     []*Proc
}

// NewCond returns a new condition variable.
func NewCond(e *Engine, name string) *Cond {
	return &Cond{eng: e, name: name, parkLabel: "cond " + name}
}

// Wait blocks p until Signal or Broadcast wakes it. As with all condition
// variables, callers must re-check their predicate after waking.
func (c *Cond) Wait(p *Proc) {
	c.waits = append(c.waits, p)
	p.park(c.parkLabel)
}

// Signal wakes one waiter (FIFO), if any.
func (c *Cond) Signal() {
	if len(c.waits) == 0 {
		return
	}
	p := c.waits[0]
	c.waits = c.waits[1:]
	c.eng.wake(p)
}

// Broadcast wakes all waiters.
func (c *Cond) Broadcast() {
	for _, p := range c.waits {
		c.eng.wake(p)
	}
	c.waits = c.waits[:0]
}
