package sim

import (
	"fmt"
	"time"
)

// A Proc is a simulated process: a goroutine scheduled cooperatively by
// the engine so that exactly one proc (or event callback) runs at a time.
// Procs block by parking themselves on synchronization objects or by
// sleeping; control returns to the engine, which advances virtual time.
type Proc struct {
	eng      *Engine
	name     string
	state    string // park reason for non-sleep parks, for deadlock diagnosis
	asleep   bool   // parked in SleepUntil; deadline holds the wake time
	deadline Time
	dispatch func() // reusable event callback: dispatches this proc
	resume   chan struct{}
	exited   chan struct{}
	killed   bool
	dead     bool
}

// procKilled is panicked inside a proc goroutine when the engine shuts
// down; the spawn wrapper recovers it so the goroutine exits cleanly.
type procKilled struct{}

// Go spawns a new simulated process that starts at the current virtual
// time. The name appears in deadlock diagnostics. fn runs to completion
// unless the engine is closed first.
func (e *Engine) Go(name string, fn func(p *Proc)) *Proc {
	p := &Proc{
		eng:    e,
		name:   name,
		resume: make(chan struct{}),
		exited: make(chan struct{}),
	}
	// One dispatch closure per proc, reused by every sleep and wake-up,
	// instead of a fresh allocation per event.
	p.dispatch = func() { e.dispatch(p) }
	e.At(e.now, func() {
		go p.top(fn)
		e.procs[p] = struct{}{}
		e.dispatch(p)
	})
	return p
}

// top is the outermost frame of a proc goroutine.
func (p *Proc) top(fn func(p *Proc)) {
	defer func() {
		p.dead = true
		close(p.exited)
		if r := recover(); r != nil {
			if _, ok := r.(procKilled); ok {
				return // engine shutdown; exit silently
			}
			panic(r)
		}
		// Normal completion: this goroutine still holds the execution
		// token, so keep firing events here until the token moves on.
		delete(p.eng.procs, p)
		if p.eng.loop(nil) != tokenMoved {
			p.eng.rootWake <- struct{}{}
		}
	}()
	<-p.resume // wait for first dispatch
	fn(p)
}

// park blocks the calling proc until another party wakes it via
// Engine.wake. state describes what the proc is waiting for.
//
// The parking goroutine holds the execution token, so instead of handing
// control back to a central scheduler it keeps running the event loop in
// place. The loop either resumes this very proc (no channel operation at
// all), passes the token to the next dispatched proc (one channel send),
// or — when the run ends — returns it to the Run caller.
func (p *Proc) park(state string) {
	p.state = state
	e := p.eng
	switch e.loop(p) {
	case tokenSelf:
		// This proc was the next thing to run; continue in place.
	case tokenDrained:
		e.rootWake <- struct{}{}
		fallthrough
	case tokenMoved:
		_, ok := <-p.resume
		if !ok || p.killed {
			panic(procKilled{})
		}
	}
	p.state = ""
	p.asleep = false
}

// parkState returns the human-readable reason the proc is blocked.
// Sleep deadlines are formatted lazily here rather than on every sleep.
func (p *Proc) parkState() string {
	if p.asleep {
		return fmt.Sprintf("sleep until %v", p.deadline)
	}
	return p.state
}

// Name returns the proc's diagnostic name.
func (p *Proc) Name() string { return p.name }

// Engine returns the engine this proc runs on.
func (p *Proc) Engine() *Engine { return p.eng }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.eng.now }

// Sleep suspends the proc for d of virtual time. Negative or zero d
// yields the processor for the current instant (other events at the same
// time run first).
func (p *Proc) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	p.SleepUntil(p.eng.now.Add(d))
}

// SleepUntil suspends the proc until absolute time t (or the current
// instant if t is in the past).
func (p *Proc) SleepUntil(t Time) {
	e := p.eng
	if t < e.now {
		t = e.now
	}
	e.At(t, p.dispatch)
	p.deadline = t
	p.asleep = true
	p.park("")
}

// Yield reschedules the proc at the current instant behind already-queued
// events, giving other ready work a chance to run first.
func (p *Proc) Yield() { p.SleepUntil(p.eng.now) }
