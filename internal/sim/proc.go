package sim

import (
	"fmt"
	"time"
)

// A Proc is a simulated process: a goroutine scheduled cooperatively by
// the engine so that exactly one proc (or event callback) runs at a time.
// Procs block by parking themselves on synchronization objects or by
// sleeping; control returns to the engine, which advances virtual time.
//
// Proc objects are recycled: when a body function returns, the proc dies
// and goes onto the engine's free list, and the next Engine.Go re-arms it
// (same goroutine, same channels) with a fresh body. Each death bumps the
// proc's generation; dispatch tokens queued for an earlier incarnation
// mismatch and fire as harmless no-ops (see Engine.loop), so a wake-up
// left behind by a dead-and-recycled proc can never resume the wrong
// incarnation.
type Proc struct {
	eng      *Engine
	name     string
	gen      uint64 // incarnation tag; bumped at every death
	state    string // park reason for non-sleep parks, for deadlock diagnosis
	asleep   bool   // parked in SleepUntil; deadline holds the wake time
	deadline Time
	fn       func(p *Proc) // body of the armed (or running) incarnation
	resume   chan struct{}
	exited   chan struct{}
	killed   bool
	dead     bool // no live incarnation (idle on the free list)
	daemon   bool // excluded from NumBlocked (dispatchers, pool workers...)
}

// procKilled is panicked inside a proc goroutine when the engine shuts
// down; the goroutine's top frame recovers it so the goroutine exits
// cleanly.
type procKilled struct{}

// Go spawns a new simulated process that starts at the current virtual
// time. The name appears in deadlock diagnostics. fn runs to completion
// unless the engine is closed first. The returned Proc is only valid for
// the lifetime of fn: once fn returns, the engine may recycle the object
// for a later Go.
func (e *Engine) Go(name string, fn func(p *Proc)) *Proc {
	return e.spawn(name, fn, false)
}

// GoDaemon is Go for procs that intentionally never exit — message
// dispatchers, disk server loops, parked service-pool workers. Daemons
// are excluded from NumBlocked, so "no procs blocked after the run"
// remains a meaningful leak check; they still appear in BlockedProcs.
func (e *Engine) GoDaemon(name string, fn func(p *Proc)) *Proc {
	return e.spawn(name, fn, true)
}

func (e *Engine) spawn(name string, fn func(p *Proc), daemon bool) *Proc {
	if e.closed {
		// The engine rejects new work after Close; hand back an inert
		// dead proc so callers need no special case.
		return &Proc{eng: e, name: name, dead: true}
	}
	var p *Proc
	if n := len(e.free); n > 0 {
		p = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		p.dead = false
	} else {
		p = &Proc{
			eng:    e,
			resume: make(chan struct{}),
			exited: make(chan struct{}),
		}
		go p.top()
	}
	p.name = name
	p.fn = fn
	p.daemon = daemon
	e.procs[p] = struct{}{}
	e.atProc(e.now, p) // start token: dispatches p when it fires
	return p
}

// top is the outermost frame of a proc goroutine. One goroutine serves
// many incarnations: it waits to be dispatched, runs the armed body, and
// — after the body returns and the proc is retired — waits to be re-armed
// by a later Go.
func (p *Proc) top() {
	defer func() {
		close(p.exited)
		if r := recover(); r != nil {
			if _, ok := r.(procKilled); ok {
				return // engine shutdown; exit silently
			}
			panic(r)
		}
	}()
	for {
		if _, ok := <-p.resume; !ok || p.killed {
			panic(procKilled{})
		}
		p.run()
	}
}

// run executes body functions, starting with the currently armed one.
// When a body returns, the proc retires but its goroutine still holds the
// execution token, so it keeps firing events in place; if one of those
// events starts this proc's next incarnation (the engine recycled it),
// the goroutine continues straight into the new body with no channel
// operation at all.
func (p *Proc) run() {
	e := p.eng
	for {
		fn := p.fn
		p.fn = nil
		fn(p)
		p.retire()
		e.cur = nil // back in event context until the loop dispatches
		switch e.loop(p) {
		case tokenSelf:
			continue // recycled and dispatched again: run the new body
		case tokenDrained:
			e.rootWake <- struct{}{}
		case tokenMoved:
		}
		return
	}
}

// retire ends the current incarnation: the proc leaves the live set and
// joins the engine's free list. Bumping the generation invalidates any
// dispatch tokens still queued for the incarnation that just ended.
func (p *Proc) retire() {
	p.gen++
	p.dead = true
	p.daemon = false
	p.state = ""
	p.asleep = false
	e := p.eng
	delete(e.procs, p)
	e.free = append(e.free, p)
}

// park blocks the calling proc until another party wakes it via
// Engine.wake. state describes what the proc is waiting for.
//
// The parking goroutine holds the execution token, so instead of handing
// control back to a central scheduler it keeps running the event loop in
// place. The loop either resumes this very proc (no channel operation at
// all), passes the token to the next dispatched proc (one channel send),
// or — when the run ends — returns it to the Run caller.
func (p *Proc) park(state string) {
	p.state = state
	e := p.eng
	e.cur = nil // back in event context until the loop dispatches
	switch e.loop(p) {
	case tokenSelf:
		// This proc was the next thing to run; continue in place.
	case tokenDrained:
		e.rootWake <- struct{}{}
		fallthrough
	case tokenMoved:
		if _, ok := <-p.resume; !ok || p.killed {
			panic(procKilled{})
		}
	}
	p.state = ""
	p.asleep = false
}

// parkState returns the human-readable reason the proc is blocked.
// Sleep deadlines are formatted lazily here rather than on every sleep.
func (p *Proc) parkState() string {
	if p.asleep {
		return fmt.Sprintf("sleep until %v", p.deadline)
	}
	return p.state
}

// Name returns the proc's diagnostic name.
func (p *Proc) Name() string { return p.name }

// Engine returns the engine this proc runs on.
func (p *Proc) Engine() *Engine { return p.eng }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.eng.now }

// Sleep suspends the proc for d of virtual time. Negative or zero d
// yields the processor for the current instant (other events at the same
// time run first).
func (p *Proc) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	p.SleepUntil(p.eng.now.Add(d))
}

// SleepUntil suspends the proc until absolute time t (or the current
// instant if t is in the past).
func (p *Proc) SleepUntil(t Time) {
	e := p.eng
	if t < e.now {
		t = e.now
	}
	e.atProc(t, p)
	p.deadline = t
	p.asleep = true
	p.park("")
}

// Yield reschedules the proc at the current instant behind already-queued
// events, giving other ready work a chance to run first.
func (p *Proc) Yield() { p.SleepUntil(p.eng.now) }
