package sim

// ServicePool runs submitted work items on persistent service procs —
// the simulated analogue of an I/O server's resident thread pool. An
// idle worker parks on the pool; Submit hands it the next item and wakes
// it with a single dispatch token, exactly the cost of starting a
// freshly spawned proc, so a pooled server fires the same events at the
// same virtual times as one that spawns a handler per request.
//
// Submit never queues an item behind a busy worker: if no worker is
// idle, a new one is spawned (cheaply, through the engine's recycled-proc
// path). retain bounds only how many idle workers are parked for reuse;
// a worker finding the pool over that size when its item completes
// retires back to the engine's proc free list. The simulated cost model
// is therefore unchanged by pooling — callers still charge whatever
// per-request CPU (e.g. thread-creation time) the modeled system pays —
// while the host-level cost of a handler drops to one token wake.
//
// Like the rest of the kernel, a pool is single-threaded per engine and
// fully deterministic: idle workers are reused in LIFO order.
type ServicePool struct {
	eng       *Engine
	procName  string
	parkLabel string
	retain    int
	serve     func(p *Proc, item any)
	idle      []*svcWorker
	freeW     []*svcWorker // retired workers awaiting reuse (like Engine.free)
	workers   int          // live workers, busy + idle
	spawns    int64        // total worker-proc starts (diagnostic)
}

// svcWorker is one persistent service thread: its proc and the handoff
// slot Submit fills before waking it. mainFn is the worker body bound
// once, so respawning a retired worker allocates nothing.
type svcWorker struct {
	pool   *ServicePool
	p      *Proc
	item   any
	mainFn func(p *Proc)
}

// NewServicePool returns a pool whose workers run serve once per
// submitted item. name is the diagnostic proc name shared by all
// workers; retain (minimum 1) is how many idle workers the pool keeps
// parked.
func NewServicePool(e *Engine, name string, retain int, serve func(p *Proc, item any)) *ServicePool {
	if retain < 1 {
		retain = 1
	}
	return &ServicePool{
		eng:       e,
		procName:  name,
		parkLabel: "svcpool " + name,
		retain:    retain,
		serve:     serve,
	}
}

// Submit hands item to an idle service proc, or spawns one if all are
// busy. It may be called from proc or event context; the item starts at
// the current instant, behind events already queued for it.
func (sp *ServicePool) Submit(item any) {
	if n := len(sp.idle); n > 0 {
		w := sp.idle[n-1]
		sp.idle[n-1] = nil
		sp.idle = sp.idle[:n-1]
		w.item = item
		sp.eng.wake(w.p)
		return
	}
	sp.workers++
	sp.spawns++
	var w *svcWorker
	if n := len(sp.freeW); n > 0 { // growth reuses retired workers too
		w = sp.freeW[n-1]
		sp.freeW[n-1] = nil
		sp.freeW = sp.freeW[:n-1]
	} else {
		w = &svcWorker{pool: sp}
		w.mainFn = w.main
	}
	w.item = item
	sp.eng.Go(sp.procName, w.mainFn)
}

// main is the worker body: serve the handed item, then park idle (as a
// daemon, so leak checks ignore it) or retire if the pool is over its
// retained size.
func (w *svcWorker) main(p *Proc) {
	w.p = p
	sp := w.pool
	for {
		item := w.item
		w.item = nil
		start := sp.eng.now
		sp.serve(p, item)
		sp.eng.rec.PoolBusy(sp.procName, int64(start), int64(sp.eng.now))
		if sp.workers > sp.retain {
			sp.workers--
			sp.freeW = append(sp.freeW, w)
			return // proc goes back to the engine's free list
		}
		p.daemon = true
		sp.idle = append(sp.idle, w)
		p.park(sp.parkLabel)
		p.daemon = false
	}
}

// Workers returns the number of live workers, busy or idle (diagnostic).
func (sp *ServicePool) Workers() int { return sp.workers }

// Idle returns the number of parked idle workers (diagnostic).
func (sp *ServicePool) Idle() int { return len(sp.idle) }

// Spawns returns how many worker-proc starts the pool ever made; in a
// steady state it stays put while submissions keep flowing (diagnostic).
func (sp *ServicePool) Spawns() int64 { return sp.spawns }
