package sim

import (
	"testing"
	"time"
)

func TestPipeTransferTime(t *testing.T) {
	e := NewEngine()
	pp := NewPipe(e, "p", 1e6, time.Millisecond) // 1 MB/s + 1 ms setup
	if got := pp.TransferTime(1000); got != time.Millisecond+time.Millisecond {
		t.Fatalf("TransferTime(1000) = %v, want 2ms", got)
	}
	if got := pp.TransferTime(0); got != time.Millisecond {
		t.Fatalf("TransferTime(0) = %v, want 1ms setup", got)
	}
}

func TestPipeZeroBandwidthIsPureLatency(t *testing.T) {
	e := NewEngine()
	pp := NewPipe(e, "cpu", 0, 0)
	if pp.TransferTime(1<<20) != 0 {
		t.Fatal("zero-bandwidth pipe should carry no per-byte cost")
	}
	_, end := pp.ReserveFor(5 * time.Microsecond)
	if end != Time(5*time.Microsecond) {
		t.Fatalf("ReserveFor end %v", end)
	}
}

func TestPipeReservationsQueueFCFS(t *testing.T) {
	e := NewEngine()
	pp := NewPipe(e, "p", 1e9, 0) // 1 ns/byte
	s1, e1 := pp.Reserve(100)
	s2, e2 := pp.Reserve(50)
	if s1 != 0 || e1 != 100 {
		t.Fatalf("first reservation [%v,%v]", s1, e1)
	}
	if s2 != 100 || e2 != 150 {
		t.Fatalf("second reservation [%v,%v], want [100,150]", s2, e2)
	}
	if pp.FreeAt() != 150 {
		t.Fatalf("FreeAt %v", pp.FreeAt())
	}
}

func TestPipeIdleGapThenReserve(t *testing.T) {
	e := NewEngine()
	pp := NewPipe(e, "p", 1e9, 0)
	pp.Reserve(10)
	e.At(100, func() {
		s, _ := pp.Reserve(10)
		if s != 100 {
			t.Errorf("reservation after idle gap starts at %v, want 100", s)
		}
	})
	e.Run()
}

func TestPipeUseBlocksProc(t *testing.T) {
	e := NewEngine()
	pp := NewPipe(e, "p", 1e9, 0)
	var t1, t2 Time
	e.Go("a", func(p *Proc) { pp.Use(p, 100); t1 = p.Now() })
	e.Go("b", func(p *Proc) { pp.Use(p, 100); t2 = p.Now() })
	e.Run()
	if t1 != 100 || t2 != 200 {
		t.Fatalf("procs finished at %v/%v, want 100/200", t1, t2)
	}
}

func TestPipeBusyAndUtilization(t *testing.T) {
	e := NewEngine()
	pp := NewPipe(e, "p", 1e9, 0)
	pp.Reserve(100)
	e.At(400, func() {})
	e.Run()
	if pp.Busy() != 100*time.Nanosecond {
		t.Fatalf("Busy %v", pp.Busy())
	}
	if u := pp.Utilization(400); u != 0.25 {
		t.Fatalf("Utilization %v, want 0.25", u)
	}
	if pp.Uses() != 1 {
		t.Fatalf("Uses %d", pp.Uses())
	}
	if pp.Utilization(0) != 0 {
		t.Fatal("Utilization at t=0 should be 0")
	}
}

func TestPipeUseForChargesExactDuration(t *testing.T) {
	e := NewEngine()
	pp := NewPipe(e, "cpu", 0, 42*time.Second) // perUse must NOT apply
	var end Time
	e.Go("p", func(p *Proc) {
		pp.UseFor(p, 7*time.Microsecond)
		end = p.Now()
	})
	e.Run()
	if end != Time(7*time.Microsecond) {
		t.Fatalf("UseFor ended at %v, want 7us", end)
	}
}
