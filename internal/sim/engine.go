// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel plays the role Proteus played in the paper: it advances a
// virtual clock from event to event and runs simulated "processes"
// (cooperatively scheduled goroutines) one at a time, so a run is a pure
// function of its inputs and seeds. Entities that need to block — disk
// servers, cache handler threads, compute-processor request pumps — are
// Procs; cheap asynchronous activity (message delivery, DMA deposit) is
// modeled with plain timed events.
//
// Time is absolute virtual time in nanoseconds (Time); durations use the
// standard time.Duration. The engine is not safe for concurrent use from
// multiple OS threads: all interaction happens either before Run, from
// within event callbacks, or from within Procs.
package sim

import (
	"fmt"
	"time"
)

// Time is an absolute virtual time in nanoseconds since the start of the
// simulation.
type Time int64

// Seconds converts t to seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// Duration converts t, interpreted as a span since time zero, to a
// time.Duration.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Add returns t shifted by d. Negative results are clamped to t itself,
// since the engine cannot schedule into the past.
func (t Time) Add(d time.Duration) Time {
	u := t + Time(d)
	if u < t && d > 0 { // overflow; callers never get here in practice
		panic("sim: time overflow")
	}
	return u
}

func (t Time) String() string { return time.Duration(t).String() }

// event is a single scheduled callback.
type event struct {
	t   Time
	seq int64 // FIFO tie-break for events at the same instant
	fn  func()
}

// eventQueue is a binary min-heap of events ordered by (t, seq).
type eventQueue []event

func (q eventQueue) less(i, j int) bool {
	if q[i].t != q[j].t {
		return q[i].t < q[j].t
	}
	return q[i].seq < q[j].seq
}

func (q *eventQueue) push(ev event) {
	*q = append(*q, ev)
	i := len(*q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !(*q).less(i, parent) {
			break
		}
		(*q)[i], (*q)[parent] = (*q)[parent], (*q)[i]
		i = parent
	}
}

func (q *eventQueue) pop() event {
	h := *q
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = event{} // release closure for GC
	*q = h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		if l >= n {
			break
		}
		c := l
		if r < n && h.less(r, l) {
			c = r
		}
		if !h.less(c, i) {
			break
		}
		h[i], h[c] = h[c], h[i]
		i = c
	}
	return top
}

// Engine is a discrete-event simulator instance.
//
// The zero value is not usable; create engines with NewEngine.
type Engine struct {
	now     Time
	queue   eventQueue
	seq     int64
	yield   chan struct{} // proc -> engine control handoff
	procs   map[*Proc]struct{}
	running bool
	closed  bool
	events  int64 // total events fired, for diagnostics
}

// NewEngine returns a new engine with the clock at zero and no pending
// events.
func NewEngine() *Engine {
	return &Engine{
		yield: make(chan struct{}),
		procs: make(map[*Proc]struct{}),
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Events returns the number of events fired so far (diagnostic).
func (e *Engine) Events() int64 { return e.events }

// Pending reports the number of scheduled, not-yet-fired events.
func (e *Engine) Pending() int { return len(e.queue) }

// At schedules fn to run at absolute time t. Scheduling in the past
// (t < Now) is an error and panics: it would silently corrupt causality.
func (e *Engine) At(t Time, fn func()) {
	if e.closed {
		return
	}
	if t < e.now {
		panic(fmt.Sprintf("sim: event scheduled in the past (now=%v, t=%v)", e.now, t))
	}
	e.seq++
	e.queue.push(event{t: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d from now. Negative d is treated as zero.
func (e *Engine) After(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	e.At(e.now.Add(d), fn)
}

// Run executes events in timestamp order until no events remain. Procs
// that are still blocked when the queue drains stay blocked (see
// BlockedProcs and Close). Run may be called again after it returns if
// new events have been scheduled.
func (e *Engine) Run() {
	e.runWhile(func() bool { return true })
}

// RunUntil executes events with timestamps <= t, then stops, leaving the
// clock at min(t, time of last event). Events after t remain queued.
func (e *Engine) RunUntil(t Time) {
	e.runWhile(func() bool { return e.queue[0].t <= t })
	if e.now < t && len(e.queue) == 0 {
		e.now = t
	}
}

func (e *Engine) runWhile(cond func() bool) {
	if e.running {
		panic("sim: Run called re-entrantly")
	}
	e.running = true
	defer func() { e.running = false }()
	for len(e.queue) > 0 && cond() {
		ev := e.queue.pop()
		e.now = ev.t
		e.events++
		ev.fn()
	}
}

// dispatch hands control to p and waits until p blocks or finishes.
// It must only be called from engine context (inside an event callback).
func (e *Engine) dispatch(p *Proc) {
	if p.dead {
		return
	}
	p.resume <- struct{}{}
	<-e.yield
}

// wake schedules p to resume at the current instant, after any events
// already queued for this instant (FIFO fairness).
func (e *Engine) wake(p *Proc) {
	e.At(e.now, p.dispatch)
}

// BlockedProcs returns the names and park-states of procs that are
// currently blocked. After Run returns, a non-empty result usually
// indicates a deadlock or a daemon process awaiting shutdown.
func (e *Engine) BlockedProcs() []string {
	var out []string
	for p := range e.procs {
		out = append(out, p.name+" ["+p.parkState()+"]")
	}
	return out
}

// NumBlocked returns the number of currently blocked procs.
func (e *Engine) NumBlocked() int { return len(e.procs) }

// Close terminates all blocked procs and discards pending events. It is
// safe to call multiple times. After Close the engine rejects new events.
// Close must not be called from inside the simulation.
func (e *Engine) Close() {
	if e.closed {
		return
	}
	e.closed = true
	e.queue = nil
	for p := range e.procs {
		delete(e.procs, p)
		p.killed = true
		close(p.resume)
		<-p.exited
	}
}
