// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel plays the role Proteus played in the paper: it advances a
// virtual clock from event to event and runs simulated "processes"
// (cooperatively scheduled goroutines) one at a time, so a run is a pure
// function of its inputs and seeds. Entities that need to block — disk
// servers, cache handler threads, compute-processor request pumps — are
// Procs; cheap asynchronous activity (message delivery, DMA deposit) is
// modeled with plain timed events.
//
// Time is absolute virtual time in nanoseconds (Time); durations use the
// standard time.Duration. The engine is not safe for concurrent use from
// multiple OS threads: all interaction happens either before Run, from
// within event callbacks, or from within Procs.
package sim

import (
	"fmt"
	"sort"
	"time"

	"ddio/internal/trace"
)

// Time is an absolute virtual time in nanoseconds since the start of the
// simulation.
type Time int64

// Seconds converts t to seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// Duration converts t, interpreted as a span since time zero, to a
// time.Duration.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Add returns t shifted by d. Negative results are clamped to t itself,
// since the engine cannot schedule into the past.
func (t Time) Add(d time.Duration) Time {
	u := t + Time(d)
	if u < t && d > 0 { // overflow; callers never get here in practice
		panic("sim: time overflow")
	}
	return u
}

// String formats t as a duration since time zero (e.g. "1.5ms").
func (t Time) String() string { return time.Duration(t).String() }

// event is a single scheduled callback, proc-dispatch token, or
// completion token.
//
// A callback event carries fn. A proc dispatch token instead carries
// (p, gen): when it fires, p is dispatched only if its generation still
// matches, so a token left queued past its incarnation's death — the
// proc may already be recycled into an unrelated incarnation — is
// dropped harmlessly. A completion token carries (tgt, gen, kind, arg)
// and fires tgt.Complete; pooled targets use gen the same way procs do
// (see completion.go). Tokens need no closure, which is what lets
// sleeps, wakes, spawns, and message completions run allocation-free.
type event struct {
	t    Time
	seq  int64 // FIFO tie-break for events at the same instant
	fn   func()
	p    *Proc            // non-nil: dispatch token for p...
	gen  uint64           // ...valid while p.gen (or the target's gen) equals this
	tgt  CompletionTarget // non-nil: completion token
	kind uint8
	arg  int64
}

// Engine is a discrete-event simulator instance.
//
// The zero value is not usable; create engines with NewEngine.
//
// Exactly one goroutine — the Run caller or one proc — executes
// simulation code at any moment. That goroutine holds the "execution
// token" and runs the event loop itself; when an event dispatches a proc,
// the token moves to that proc with a single channel send, and when a
// proc parks, its goroutine keeps the token and continues the event loop
// in place. This halves the channel traffic of a hub-and-spoke scheduler
// (one operation per handoff instead of two).
type Engine struct {
	now      Time
	queue    evq
	seq      int64
	xfer     *Proc           // proc to hand the token to after the current event
	cur      *Proc           // proc currently executing (nil in event context)
	rootWake chan struct{}   // returns the token to the Run caller when the loop ends
	cond     func(Time) bool // run-limit predicate for the current Run/RunUntil
	procs    map[*Proc]struct{}
	free     []*Proc // dead procs (with parked goroutines) awaiting reuse
	running  bool
	closed   bool
	events   int64           // total events fired, for diagnostics
	rec      *trace.Recorder // nil unless event tracing is attached
}

// NewEngine returns a new engine with the clock at zero, no pending
// events, and the default (adaptive hybrid) event queue: a binary heap
// while few events are pending, the calendar queue once the set grows.
func NewEngine() *Engine { return NewEngineWithQueue(HybridQueue) }

// NewEngineWithQueue returns a new engine using the given event-queue
// implementation. All kinds fire identical workloads in identical order;
// the switch exists for A/B benchmarking.
func NewEngineWithQueue(k QueueKind) *Engine {
	return &Engine{
		queue:    newQueue(k),
		rootWake: make(chan struct{}),
		procs:    make(map[*Proc]struct{}),
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// SetRecorder attaches an event-trace recorder (nil detaches). The
// recorder is passive — it never schedules events — so a traced run
// fires the identical event sequence as an untraced one. Attach before
// building the machine: components capture the recorder when they are
// constructed.
func (e *Engine) SetRecorder(r *trace.Recorder) { e.rec = r }

// Recorder returns the attached trace recorder. A nil result is a valid
// "tracing off" recorder: all its record methods are no-ops, so
// instrumentation sites use the return unconditionally.
func (e *Engine) Recorder() *trace.Recorder { return e.rec }

// Events returns the number of events fired so far (diagnostic).
func (e *Engine) Events() int64 { return e.events }

// Pending reports the number of scheduled, not-yet-fired events.
func (e *Engine) Pending() int { return e.queue.len() }

// At schedules fn to run at absolute time t. Scheduling in the past
// (t < Now) is an error and panics: it would silently corrupt causality.
func (e *Engine) At(t Time, fn func()) {
	if e.closed {
		return
	}
	if t < e.now {
		panic(fmt.Sprintf("sim: event scheduled in the past (now=%v, t=%v, by %s)", e.now, t, e.curName()))
	}
	e.seq++
	e.queue.push(event{t: t, seq: e.seq, fn: fn})
}

// curName describes who is executing right now, for panic diagnostics:
// the running proc's name, or "event context" between procs.
func (e *Engine) curName() string {
	if e.cur != nil {
		return "proc " + e.cur.name
	}
	return "event context"
}

// After schedules fn to run d from now. Negative d is treated as zero.
func (e *Engine) After(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	e.At(e.now.Add(d), fn)
}

// atProc schedules a dispatch token for p at absolute time t, tagged with
// p's current generation. Allocation-free: the token is three words in
// the event queue, no closure.
func (e *Engine) atProc(t Time, p *Proc) {
	if e.closed {
		return
	}
	if t < e.now {
		panic(fmt.Sprintf("sim: event scheduled in the past (now=%v, t=%v, proc=%s, by %s)", e.now, t, p.name, e.curName()))
	}
	e.seq++
	e.queue.push(event{t: t, seq: e.seq, p: p, gen: p.gen})
}

// Run executes events in timestamp order until no events remain. Procs
// that are still blocked when the queue drains stay blocked (see
// BlockedProcs and Close). Run may be called again after it returns if
// new events have been scheduled.
func (e *Engine) Run() {
	e.runWhile(func(Time) bool { return true })
}

// RunUntil executes events with timestamps <= t, then stops, leaving the
// clock at min(t, time of last event). Events after t remain queued.
func (e *Engine) RunUntil(t Time) {
	e.runWhile(func(et Time) bool { return et <= t })
	if e.now < t && e.queue.len() == 0 {
		e.now = t
	}
}

func (e *Engine) runWhile(cond func(Time) bool) {
	if e.running {
		panic("sim: Run called re-entrantly")
	}
	e.running = true
	e.cond = cond
	if e.loop(nil) == tokenMoved {
		// The token moved to a proc; wait for it to come back when the
		// queue drains or the run limit is reached.
		<-e.rootWake
	}
	e.cond = nil
	e.running = false
}

// tokenState reports where the execution token went when loop returned.
type tokenState int

const (
	// tokenDrained: the queue drained or the run limit was reached; the
	// calling goroutine still holds the token.
	tokenDrained tokenState = iota
	// tokenMoved: the token was handed to another proc; the caller must
	// wait for its own wake-up.
	tokenMoved
	// tokenSelf: the owner proc itself was dispatched; it may continue
	// immediately without any channel operation.
	tokenSelf
)

// loop fires events on the calling goroutine until the queue drains, the
// run condition fails, or an event hands the execution token to a proc.
// owner is the proc whose goroutine is running the loop (nil for the Run
// caller): dispatching the owner itself short-circuits without touching
// any channel, which makes a plain sleep-and-wake — the single most
// common blocking pattern — free of context switches when no other work
// intervenes.
func (e *Engine) loop(owner *Proc) tokenState {
	for e.queue.len() > 0 {
		ev := e.queue.pop()
		if !e.cond(ev.t) {
			e.queue.push(ev) // same seq: original FIFO position is kept
			return tokenDrained
		}
		e.now = ev.t
		e.events++
		if ev.p != nil {
			// Dispatch token: valid only while the generation matches. A
			// mismatch means the target incarnation died (and the proc
			// was possibly recycled) after this token was queued — the
			// stale wake-up fires as a harmless no-op event.
			if ev.gen == ev.p.gen {
				e.dispatch(ev.p)
			}
		} else if ev.tgt != nil {
			// Completion token. Staleness is the target's concern: a
			// pooled target checks ev.gen against its current
			// incarnation inside Complete (the engine cannot, since
			// target generations live in the target).
			ev.tgt.Complete(Completion{Target: ev.tgt, Gen: ev.gen, Kind: ev.kind, Arg: ev.arg}, ev.t)
		} else {
			ev.fn()
		}
		if p := e.xfer; p != nil {
			e.xfer = nil
			e.cur = p
			if p == owner {
				return tokenSelf
			}
			p.resume <- struct{}{}
			return tokenMoved
		}
	}
	return tokenDrained
}

// dispatch marks p as the next owner of the execution token. It must only
// be called from event context; the event loop performs the actual
// handoff after the current callback returns.
func (e *Engine) dispatch(p *Proc) {
	if p.dead {
		return
	}
	if e.xfer != nil {
		panic(fmt.Sprintf("sim: two procs dispatched by one event (%s then %s at %v)", e.xfer.name, p.name, e.now))
	}
	e.xfer = p
}

// wake schedules p to resume at the current instant, after any events
// already queued for this instant (FIFO fairness).
func (e *Engine) wake(p *Proc) {
	e.atProc(e.now, p)
}

// BlockedProcs returns the names and park-states of procs that are
// currently blocked, sorted so diagnostics are stable run-to-run. After
// Run returns, a non-empty result usually indicates a deadlock or a
// daemon process awaiting shutdown.
func (e *Engine) BlockedProcs() []string {
	var out []string
	for p := range e.procs {
		out = append(out, p.name+" ["+p.parkState()+"]")
	}
	sort.Strings(out)
	return out
}

// NumBlocked returns the number of currently blocked procs, excluding
// daemons (dispatch loops, disk servers, idle pool workers — procs
// spawned with GoDaemon or parked by a ServicePool). After a successful
// run it should be zero; anything else is a leaked transient proc.
func (e *Engine) NumBlocked() int {
	n := 0
	for p := range e.procs {
		if !p.daemon {
			n++
		}
	}
	return n
}

// Close terminates all blocked procs (and the parked goroutines of
// recycled procs on the free list) and discards pending events. It is
// safe to call multiple times. After Close the engine rejects new events
// and new procs. Close must not be called from inside the simulation.
func (e *Engine) Close() {
	if e.closed {
		return
	}
	e.closed = true
	e.queue.clear()
	for p := range e.procs {
		delete(e.procs, p)
		e.kill(p)
	}
	for i, p := range e.free {
		e.free[i] = nil
		e.kill(p)
	}
	e.free = nil
}

// kill shuts down one proc goroutine and waits for it to exit.
func (e *Engine) kill(p *Proc) {
	p.killed = true
	close(p.resume)
	<-p.exited
}
