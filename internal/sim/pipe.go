package sim

import "time"

// Pipe models a serially-shared, fixed-bandwidth resource: a SCSI bus, a
// network interface, or a CPU executing file-system software. Users
// reserve the pipe for a byte count and/or a fixed duration; reservations
// are granted first-come-first-served with no preemption, so the pipe
// naturally models queueing delay under contention.
//
// A Pipe also accumulates total busy time so experiments can report
// utilization.
type Pipe struct {
	eng       *Engine
	name      string
	nsPerByte float64
	perUse    time.Duration
	freeAt    Time
	busy      time.Duration
	uses      int64
}

// NewPipe returns a pipe that moves bytesPerSec bytes per second and
// charges perUse of fixed setup time on every reservation. bytesPerSec of
// zero means the pipe carries no per-byte cost (a pure CPU or latency
// resource).
func NewPipe(e *Engine, name string, bytesPerSec float64, perUse time.Duration) *Pipe {
	p := &Pipe{eng: e, name: name, perUse: perUse}
	if bytesPerSec > 0 {
		p.nsPerByte = 1e9 / bytesPerSec
	}
	return p
}

// Name returns the pipe's diagnostic name.
func (pp *Pipe) Name() string { return pp.name }

// TransferTime returns the service time (excluding queueing) for n bytes.
func (pp *Pipe) TransferTime(n int) time.Duration {
	return pp.perUse + time.Duration(float64(n)*pp.nsPerByte)
}

// Reserve books the pipe for n bytes starting no earlier than now,
// returning the reservation's start and end times. The pipe is busy until
// end; later reservations queue behind it.
func (pp *Pipe) Reserve(n int) (start, end Time) {
	return pp.ReserveFor(pp.TransferTime(n))
}

// ReserveFor books the pipe for an explicit duration (used to charge CPU
// costs that are not byte-proportional). The perUse overhead is NOT added.
func (pp *Pipe) ReserveFor(d time.Duration) (start, end Time) {
	start = pp.eng.now
	if pp.freeAt > start {
		start = pp.freeAt
	}
	end = start.Add(d)
	pp.freeAt = end
	pp.busy += d
	pp.uses++
	return start, end
}

// Use reserves the pipe for n bytes and sleeps the calling proc until the
// reservation completes.
func (pp *Pipe) Use(p *Proc, n int) {
	_, end := pp.Reserve(n)
	p.SleepUntil(end)
}

// UseFor reserves the pipe for duration d and sleeps the calling proc
// until the reservation completes.
func (pp *Pipe) UseFor(p *Proc, d time.Duration) {
	_, end := pp.ReserveFor(d)
	p.SleepUntil(end)
}

// FreeAt returns the time at which the pipe next becomes idle.
func (pp *Pipe) FreeAt() Time { return pp.freeAt }

// Busy returns accumulated busy time.
func (pp *Pipe) Busy() time.Duration { return pp.busy }

// Uses returns the number of reservations made.
func (pp *Pipe) Uses() int64 { return pp.uses }

// Utilization returns busy time as a fraction of the interval [0, at].
func (pp *Pipe) Utilization(at Time) float64 {
	if at <= 0 {
		return 0
	}
	return float64(pp.busy) / float64(at)
}
