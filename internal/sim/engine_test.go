package sim

import (
	"testing"
	"time"
)

func TestEngineStartsAtZero(t *testing.T) {
	e := NewEngine()
	if e.Now() != 0 {
		t.Fatalf("new engine at %v, want 0", e.Now())
	}
	if e.Pending() != 0 {
		t.Fatalf("new engine has %d pending events", e.Pending())
	}
}

func TestEventsFireInTimeOrder(t *testing.T) {
	e := NewEngine()
	var got []int
	e.At(30, func() { got = append(got, 3) })
	e.At(10, func() { got = append(got, 1) })
	e.At(20, func() { got = append(got, 2) })
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events fired as %v, want [1 2 3]", got)
	}
	if e.Now() != 30 {
		t.Fatalf("clock at %v, want 30", e.Now())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("tie-broken order %v, want ascending", got)
		}
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	e := NewEngine()
	var at Time
	e.After(time.Millisecond, func() {
		at = e.Now()
		e.After(time.Millisecond, func() { at = e.Now() })
	})
	e.Run()
	if at != Time(2*time.Millisecond) {
		t.Fatalf("nested After fired at %v, want 2ms", at)
	}
}

func TestNegativeAfterClampsToNow(t *testing.T) {
	e := NewEngine()
	fired := false
	e.After(-time.Second, func() { fired = true })
	e.Run()
	if !fired || e.Now() != 0 {
		t.Fatalf("negative After: fired=%v now=%v", fired, e.Now())
	}
}

func TestPastEventPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.At(10, func() { e.At(5, func() {}) })
	e.Run()
}

func TestRunUntilStopsEarly(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, tt := range []Time{10, 20, 30, 40} {
		tt := tt
		e.At(tt, func() { fired = append(fired, tt) })
	}
	e.RunUntil(25)
	if len(fired) != 2 {
		t.Fatalf("RunUntil(25) fired %v", fired)
	}
	if e.Pending() != 2 {
		t.Fatalf("RunUntil left %d pending, want 2", e.Pending())
	}
	e.Run()
	if len(fired) != 4 {
		t.Fatalf("resumed Run fired %v", fired)
	}
}

func TestRunUntilAdvancesClockWhenIdle(t *testing.T) {
	e := NewEngine()
	e.RunUntil(100)
	if e.Now() != 100 {
		t.Fatalf("idle RunUntil left clock at %v, want 100", e.Now())
	}
}

func TestEventCountsAccumulate(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 7; i++ {
		e.At(Time(i), func() {})
	}
	e.Run()
	if e.Events() != 7 {
		t.Fatalf("Events() = %d, want 7", e.Events())
	}
}

func TestCloseDiscardsPendingAndKillsProcs(t *testing.T) {
	e := NewEngine()
	e.At(100, func() { t.Fatal("event fired after Close") })
	ran := false
	cleaned := false
	e.Go("sleeper", func(p *Proc) {
		ran = true
		defer func() {
			cleaned = true
			// The kill panic must propagate; swallow only our flag.
			panic(recover().(procKilled))
		}()
		NewCond(e, "never").Wait(p)
		t.Fatal("proc resumed after Close")
	})
	e.RunUntil(0)
	if !ran {
		t.Fatal("proc never started")
	}
	if e.NumBlocked() != 1 {
		t.Fatalf("blocked procs = %d, want 1", e.NumBlocked())
	}
	e.Close()
	if !cleaned {
		t.Fatal("deferred cleanup did not run on kill")
	}
	if e.NumBlocked() != 0 {
		t.Fatalf("blocked procs after Close = %d", e.NumBlocked())
	}
	e.Close() // idempotent
}

func TestBlockedProcsReportNamesAndStates(t *testing.T) {
	e := NewEngine()
	sem := NewSemaphore(e, "gate", 0)
	e.Go("waiter", func(p *Proc) { sem.Acquire(p, 1) })
	e.Run()
	defer e.Close()
	procs := e.BlockedProcs()
	if len(procs) != 1 {
		t.Fatalf("BlockedProcs = %v", procs)
	}
	if procs[0] != "waiter [sem gate]" {
		t.Fatalf("diagnostic %q", procs[0])
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	trace := func() []Time {
		e := NewEngine()
		defer e.Close()
		var out []Time
		rng := NewRand(7)
		pipe := NewPipe(e, "p", 1e6, 0)
		for i := 0; i < 50; i++ {
			e.At(Time(rng.Int63n(1000)), func() {
				_, end := pipe.Reserve(100)
				out = append(out, end)
			})
		}
		e.Run()
		return out
	}
	a, b := trace(), trace()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trace diverges at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestTimeConversions(t *testing.T) {
	if Time(1500000000).Seconds() != 1.5 {
		t.Fatalf("Seconds: %v", Time(1500000000).Seconds())
	}
	if Time(250).Duration() != 250*time.Nanosecond {
		t.Fatalf("Duration: %v", Time(250).Duration())
	}
	if Time(10).Add(5*time.Nanosecond) != 15 {
		t.Fatalf("Add: %v", Time(10).Add(5))
	}
}
