package sim

import (
	"hash/fnv"
	"math/rand"
)

// Rand is the kernel's deterministic random source; it is a thin wrapper
// over math/rand with support for deriving independent sub-streams, so
// that, e.g., the disk-layout stream and the network-jitter stream of one
// trial do not perturb each other when one of them draws more values.
type Rand struct {
	*rand.Rand
	seed int64
}

// NewRand returns a deterministic source for the given seed.
func NewRand(seed int64) *Rand {
	return &Rand{Rand: rand.New(rand.NewSource(seed)), seed: seed}
}

// Seed returns the seed the source was created with.
func (r *Rand) Seed() int64 { return r.seed }

// Stream derives an independent sub-stream identified by label. The
// derivation hashes (seed, label), so streams are stable across runs and
// insensitive to the order in which other streams are used.
func (r *Rand) Stream(label string) *Rand {
	h := fnv.New64a()
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(uint64(r.seed) >> (8 * i))
	}
	h.Write(buf[:])
	h.Write([]byte(label))
	return NewRand(int64(h.Sum64()))
}

// Perm returns a deterministic pseudo-random permutation of [0,n).
func (r *Rand) Perm(n int) []int { return r.Rand.Perm(n) }
