package sim

import "testing"

// TestWaitGroupReset: a drained WaitGroup can be re-armed (the tcfs
// client pools its per-request WaitGroups on this), but resetting one
// that is still counting or has parked waiters must panic — that would
// silently strand them.
func TestWaitGroupReset(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	wg := NewWaitGroup(e, "reset-test", 1)
	wg.Done()
	wg.Reset(2)
	if wg.Count() != 2 {
		t.Fatalf("count after Reset = %d, want 2", wg.Count())
	}
	wg.Done()
	wg.Done()

	// Reuse through a full park/wake cycle.
	wg.Reset(1)
	woke := false
	e.Go("waiter", func(p *Proc) {
		wg.Wait(p)
		woke = true
	})
	e.After(0, wg.Done)
	e.Run()
	if !woke {
		t.Fatal("waiter never woke after Reset reuse")
	}

	defer func() {
		if recover() == nil {
			t.Fatal("Reset of a counting WaitGroup did not panic")
		}
	}()
	wg.Reset(1)
	wg.Reset(1) // count is 1: must panic
}
