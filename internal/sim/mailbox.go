package sim

// Mailbox is an unbounded FIFO message queue with blocking receive, the
// basic transport endpoint for simulated nodes. Put never blocks (the
// interconnect applies backpressure through its bandwidth pipes instead);
// Get blocks the calling proc until a message is available.
type Mailbox struct {
	eng       *Engine
	name      string
	parkLabel string // precomputed park reason (avoids per-wait concat)
	queue     []any
	waits     []*Proc
	puts      int64
}

// NewMailbox returns an empty mailbox.
func NewMailbox(e *Engine, name string) *Mailbox {
	return &Mailbox{eng: e, name: name, parkLabel: "mailbox " + name}
}

// Put appends v and wakes the oldest waiting receiver, if any. It may be
// called from proc or event context.
func (m *Mailbox) Put(v any) {
	m.queue = append(m.queue, v)
	m.puts++
	if len(m.waits) > 0 {
		p := m.waits[0]
		m.waits = m.waits[1:]
		m.eng.wake(p)
	}
}

// Get removes and returns the oldest message, blocking p until one is
// available.
func (m *Mailbox) Get(p *Proc) any {
	for len(m.queue) == 0 {
		m.waits = append(m.waits, p)
		p.park(m.parkLabel)
	}
	v := m.queue[0]
	m.queue[0] = nil
	m.queue = m.queue[1:]
	return v
}

// TryGet removes and returns the oldest message without blocking; ok
// reports whether a message was available.
func (m *Mailbox) TryGet() (v any, ok bool) {
	if len(m.queue) == 0 {
		return nil, false
	}
	v = m.queue[0]
	m.queue[0] = nil
	m.queue = m.queue[1:]
	return v, true
}

// Len returns the number of queued messages.
func (m *Mailbox) Len() int { return len(m.queue) }

// Delivered returns the total number of messages ever Put (diagnostic).
func (m *Mailbox) Delivered() int64 { return m.puts }
