package sim

import (
	"testing"
	"time"
)

// TestProcRecycleReusesObject pins the free-list contract: a proc that
// dies is handed out again by the next Go, same object, same goroutine.
func TestProcRecycleReusesObject(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	p1 := e.Go("first", func(p *Proc) {})
	e.Run()
	if len(e.free) != 1 || e.free[0] != p1 {
		t.Fatalf("dead proc not on free list (len %d)", len(e.free))
	}
	ran := false
	p2 := e.Go("second", func(p *Proc) {
		ran = true
		if p.Name() != "second" {
			t.Errorf("recycled proc named %q", p.Name())
		}
	})
	if p2 != p1 {
		t.Fatal("Go did not recycle the dead proc")
	}
	e.Run()
	if !ran {
		t.Fatal("recycled incarnation never ran")
	}
}

// TestStaleWakeOnRecycledProcIsDropped is the stale-wake safety pin the
// recycling design hinges on: a proc dies with a wake-up still queued,
// is recycled into a new incarnation that parks, and the stale token
// must fire as a no-op instead of resuming the new incarnation early.
func TestStaleWakeOnRecycledProcIsDropped(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	var victim *Proc
	e.Go("victim", func(p *Proc) {
		victim = p
		// Token for this incarnation at t=5µs; the proc dies right away,
		// so by the time it fires the proc has been recycled.
		e.atProc(Time(5*time.Microsecond), p)
	})
	e.RunUntil(0) // victim runs and dies; the 5µs token stays queued
	var wokeAt Time
	reborn := e.Go("reborn", func(p *Proc) {
		p.SleepUntil(Time(10 * time.Microsecond))
		wokeAt = p.Now()
	})
	e.Run()
	if victim == nil || reborn != victim {
		t.Fatalf("reborn proc was not the recycled victim")
	}
	if wokeAt != Time(10*time.Microsecond) {
		t.Fatalf("stale wake resumed the new incarnation at %v, want 10µs", wokeAt)
	}
	// The stale token still fires as an event (event counts must not
	// depend on whether a proc happened to be recycled): victim start,
	// reborn start, stale token, reborn's sleep wake.
	if e.Events() != 4 {
		t.Fatalf("fired %d events, want 4 (stale token must count)", e.Events())
	}
}

// TestStaleWakeOnDeadProcIsDropped covers the simpler half of the same
// hazard: the wake fires after death but before any recycling.
func TestStaleWakeOnDeadProcIsDropped(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	e.Go("mayfly", func(p *Proc) {
		e.wake(p) // queued self-wake that will outlive the proc
	})
	e.Run() // must terminate: the stale token resumes nothing
	if n := e.NumBlocked(); n != 0 {
		t.Fatalf("NumBlocked = %d after run", n)
	}
}

// TestRecycleChainSameGoroutine exercises the token-self handoff: when
// a dying proc's goroutine fires the event that re-arms that very proc,
// it must continue straight into the new body — same goroutine, no
// channel operation — for arbitrarily long chains. The respawn goes
// through an event so it runs after the previous incarnation retired.
func TestRecycleChainSameGoroutine(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	count := 0
	var body func(p *Proc)
	respawn := func() { e.Go("chain", body) }
	body = func(p *Proc) {
		count++
		if count < 500 {
			e.At(p.Now(), respawn)
		}
	}
	e.Go("chain", body)
	e.Run()
	if count != 500 {
		t.Fatalf("chain ran %d incarnations, want 500", count)
	}
	if len(e.free) != 1 {
		t.Fatalf("free list holds %d procs, want 1 (all incarnations share one)", len(e.free))
	}
}

// TestRecycleDirectChain is the eager variant: a body that spawns its
// successor before returning cannot reuse its own proc (it is still
// live), so the engine ping-pongs between exactly two procs.
func TestRecycleDirectChain(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	count := 0
	var body func(p *Proc)
	body = func(p *Proc) {
		count++
		if count < 500 {
			e.Go("chain", body)
		}
	}
	e.Go("chain", body)
	e.Run()
	if count != 500 {
		t.Fatalf("chain ran %d incarnations, want 500", count)
	}
	if len(e.free) != 2 {
		t.Fatalf("free list holds %d procs, want 2 (spawner still live at spawn time)", len(e.free))
	}
}

// TestCloseAfterRecycleIdempotent: Close must shut down parked free-list
// goroutines exactly once, and a second Close must be a no-op.
func TestCloseAfterRecycleIdempotent(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 10; i++ {
		e.Go("w", func(p *Proc) { p.Sleep(time.Microsecond) })
		e.Run()
	}
	if len(e.free) != 1 {
		t.Fatalf("free list holds %d procs, want 1", len(e.free))
	}
	e.Close()
	e.Close() // must not double-close resume channels
	if e.NumBlocked() != 0 || len(e.free) != 0 {
		t.Fatalf("Close left procs: blocked %d, free %d", e.NumBlocked(), len(e.free))
	}
	// Spawning after Close hands back an inert proc and schedules nothing.
	p := e.Go("late", func(p *Proc) { t.Error("proc ran after Close") })
	if p == nil || !p.dead {
		t.Fatal("post-Close Go did not return an inert proc")
	}
	e.Run()
}

// TestGoDaemonExcludedFromNumBlocked: daemons park forever by design and
// must not trip the proc-leak check, while still being listed for
// deadlock diagnosis.
func TestGoDaemonExcludedFromNumBlocked(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	mb := NewMailbox(e, "mb")
	e.GoDaemon("dispatcher", func(p *Proc) {
		for {
			mb.Get(p)
		}
	})
	e.Go("worker", func(p *Proc) { p.Sleep(time.Microsecond) })
	e.Run()
	if n := e.NumBlocked(); n != 0 {
		t.Fatalf("NumBlocked = %d, want 0 (daemon excluded)", n)
	}
	if procs := e.BlockedProcs(); len(procs) != 1 || procs[0] != "dispatcher [mailbox mb]" {
		t.Fatalf("BlockedProcs = %v", procs)
	}
}

// TestBlockedProcsSorted: diagnostics must not depend on map iteration
// order.
func TestBlockedProcsSorted(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	never := NewCond(e, "never")
	for _, name := range []string{"zeta", "alpha", "mid"} {
		e.Go(name, func(p *Proc) { never.Wait(p) })
	}
	e.Run()
	procs := e.BlockedProcs()
	want := []string{"alpha [cond never]", "mid [cond never]", "zeta [cond never]"}
	if len(procs) != len(want) {
		t.Fatalf("BlockedProcs = %v", procs)
	}
	for i := range want {
		if procs[i] != want[i] {
			t.Fatalf("BlockedProcs[%d] = %q, want %q (sorted)", i, procs[i], want[i])
		}
	}
}

// TestProcSpawnAllocFree is the allocation-regression guard for the
// recycling path: once the engine is warm, a spawn-run cycle must not
// allocate (the proc, its channels, and its dispatch tokens are all
// reused).
func TestProcSpawnAllocFree(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	fn := func(p *Proc) {}
	for i := 0; i < 8; i++ { // warm the free list, queue, and procs map
		e.Go("w", fn)
		e.Run()
	}
	avg := testing.AllocsPerRun(200, func() {
		e.Go("w", fn)
		e.Run()
	})
	if avg > 0.5 {
		t.Errorf("recycled spawn allocates %.2f objects/op, want 0", avg)
	}
}

// BenchmarkProcSpawn measures the cost of one spawn-run cycle on a warm
// engine — the hot path the free list exists for.
func BenchmarkProcSpawn(b *testing.B) {
	e := NewEngine()
	defer e.Close()
	fn := func(p *Proc) {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Go("w", fn)
		e.Run()
	}
}
