package sim

import (
	"testing"
	"time"
)

func TestSemaphoreBasicAcquireRelease(t *testing.T) {
	e := NewEngine()
	sem := NewSemaphore(e, "s", 2)
	var order []int
	for i := 0; i < 4; i++ {
		i := i
		e.Go("p", func(p *Proc) {
			sem.Acquire(p, 1)
			order = append(order, i)
			p.Sleep(time.Millisecond)
			sem.Release(1)
		})
	}
	e.Run()
	if len(order) != 4 {
		t.Fatalf("only %d acquisitions", len(order))
	}
	if e.Now() != Time(2*time.Millisecond) {
		t.Fatalf("4 holders of 2 permits for 1ms each took %v, want 2ms", e.Now())
	}
}

func TestSemaphoreFIFONoBarging(t *testing.T) {
	e := NewEngine()
	sem := NewSemaphore(e, "s", 2)
	var got []string
	e.Go("setup", func(p *Proc) {
		sem.Acquire(p, 2)
		// big waits first; small arrives later but must not barge.
		e.Go("big", func(b *Proc) { sem.Acquire(b, 2); got = append(got, "big") })
		e.Go("small", func(s *Proc) { sem.Acquire(s, 1); got = append(got, "small") })
		p.Sleep(time.Millisecond)
		sem.Release(2)
	})
	e.Run()
	defer e.Close()
	if len(got) == 0 || got[0] != "big" {
		t.Fatalf("service order %v, want big first", got)
	}
}

func TestSemaphoreTryAcquire(t *testing.T) {
	e := NewEngine()
	sem := NewSemaphore(e, "s", 1)
	if !sem.TryAcquire(1) {
		t.Fatal("TryAcquire failed with permit available")
	}
	if sem.TryAcquire(1) {
		t.Fatal("TryAcquire succeeded with no permits")
	}
	sem.Release(1)
	if sem.Available() != 1 {
		t.Fatalf("Available = %d", sem.Available())
	}
	if !sem.TryAcquire(0) {
		t.Fatal("zero TryAcquire should always succeed")
	}
}

func TestBarrierReleasesAllAndReuses(t *testing.T) {
	e := NewEngine()
	b := NewBarrier(e, "b", 3)
	var phase1, phase2 int
	for i := 0; i < 3; i++ {
		i := i
		e.Go("p", func(p *Proc) {
			p.Sleep(time.Duration(i) * time.Millisecond)
			b.Wait(p)
			phase1++
			p.Sleep(time.Millisecond)
			b.Wait(p)
			phase2++
		})
	}
	e.Run()
	if phase1 != 3 || phase2 != 3 {
		t.Fatalf("phases %d/%d, want 3/3", phase1, phase2)
	}
	if e.NumBlocked() != 0 {
		t.Fatal("procs stuck at barrier")
	}
}

func TestBarrierSinglePartyPassesThrough(t *testing.T) {
	e := NewEngine()
	b := NewBarrier(e, "b", 1)
	passed := false
	e.Go("p", func(p *Proc) { b.Wait(p); passed = true })
	e.Run()
	if !passed {
		t.Fatal("single-party barrier blocked")
	}
}

func TestBarrierZeroPartiesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewBarrier(NewEngine(), "b", 0)
}

func TestWaitGroupWaitsForZero(t *testing.T) {
	e := NewEngine()
	wg := NewWaitGroup(e, "wg", 0)
	var doneAt Time
	wg.Add(3)
	for i := 1; i <= 3; i++ {
		i := i
		e.Go("w", func(p *Proc) {
			p.Sleep(time.Duration(i) * time.Millisecond)
			wg.Done()
		})
	}
	e.Go("waiter", func(p *Proc) {
		wg.Wait(p)
		doneAt = p.Now()
	})
	e.Run()
	if doneAt != Time(3*time.Millisecond) {
		t.Fatalf("waiter released at %v, want 3ms", doneAt)
	}
}

func TestWaitGroupZeroCountReturnsImmediately(t *testing.T) {
	e := NewEngine()
	wg := NewWaitGroup(e, "wg", 0)
	ok := false
	e.Go("p", func(p *Proc) { wg.Wait(p); ok = true })
	e.Run()
	if !ok {
		t.Fatal("Wait on zero counter blocked")
	}
}

func TestWaitGroupNegativePanics(t *testing.T) {
	e := NewEngine()
	wg := NewWaitGroup(e, "wg", 0)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on negative counter")
		}
	}()
	wg.Done()
}

func TestCondSignalWakesOneFIFO(t *testing.T) {
	e := NewEngine()
	c := NewCond(e, "c")
	var got []int
	for i := 0; i < 3; i++ {
		i := i
		e.Go("w", func(p *Proc) {
			c.Wait(p)
			got = append(got, i)
		})
	}
	e.Go("signaler", func(p *Proc) {
		p.Sleep(time.Millisecond)
		c.Signal()
		p.Sleep(time.Millisecond)
		c.Broadcast()
	})
	e.Run()
	if len(got) != 3 || got[0] != 0 {
		t.Fatalf("wake order %v", got)
	}
}

func TestCondSignalWithoutWaitersIsNoop(t *testing.T) {
	e := NewEngine()
	c := NewCond(e, "c")
	c.Signal()
	c.Broadcast()
	e.Run() // nothing scheduled, nothing panics
}
