package sim

import (
	"strings"
	"testing"
)

// recoverPanic runs fn and returns the recovered panic rendered as a
// string ("" if fn returned normally).
func recoverPanic(fn func()) (msg string) {
	defer func() {
		if r := recover(); r != nil {
			if s, ok := r.(string); ok {
				msg = s
			} else {
				msg = "non-string panic"
			}
		}
	}()
	fn()
	return ""
}

func TestPastEventPanicNamesProc(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	var msg string
	e.Go("worker", func(p *Proc) {
		p.Sleep(100)
		msg = recoverPanic(func() { e.At(e.Now()-1, func() {}) })
	})
	e.Run()
	if !strings.Contains(msg, "proc worker") || !strings.Contains(msg, "in the past") {
		t.Fatalf("proc-context past-At panic %q does not name the proc", msg)
	}
}

func TestPastEventPanicNamesEventContext(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	var msg string
	e.At(100, func() {
		msg = recoverPanic(func() { e.At(50, func() {}) })
	})
	e.Run()
	if !strings.Contains(msg, "event context") || !strings.Contains(msg, "in the past") {
		t.Fatalf("event-context past-At panic %q does not name the context", msg)
	}
}

func TestPastDispatchTokenPanicNamesTarget(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	c := NewCond(e, "hold")
	p := e.GoDaemon("sleeper", func(p *Proc) { c.Wait(p) })
	e.At(100, func() {})
	e.Run()
	msg := recoverPanic(func() { e.atProc(50, p) })
	if !strings.Contains(msg, "proc=sleeper") || !strings.Contains(msg, "in the past") {
		t.Fatalf("past token panic %q does not name the target proc", msg)
	}
}

func TestDoubleDispatchPanicNamesBothProcs(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	c := NewCond(e, "hold")
	p1 := e.GoDaemon("alpha", func(p *Proc) { c.Wait(p) })
	p2 := e.GoDaemon("beta", func(p *Proc) { c.Wait(p) })
	e.Run() // park both procs on the cond
	var msg string
	e.At(e.Now(), func() {
		msg = recoverPanic(func() {
			e.dispatch(p1)
			e.dispatch(p2)
		})
		e.xfer = nil // undo the first dispatch so the run can finish
	})
	e.Run()
	if !strings.Contains(msg, "alpha") || !strings.Contains(msg, "beta") {
		t.Fatalf("double-dispatch panic %q does not name both procs", msg)
	}
}
