package sim

import (
	"math/rand"
	"strconv"
	"testing"
	"time"
)

// popAll drains q and returns the (t, seq) sequence.
func popAll(q evq) []event {
	var out []event
	for q.len() > 0 {
		out = append(out, q.pop())
	}
	return out
}

// TestQueueEquivalenceRandom is the property that pins the calendar queue
// and the adaptive hybrid to the heap: on randomized interleavings of
// pushes and pops — with bursts that force ring resizes (and drive the
// hybrid across both migration thresholds), same-instant ties that
// exercise the FIFO seq ordering, and far-future events that land in the
// overflow heap — all implementations produce the identical firing
// sequence, event for event.
func TestQueueEquivalenceRandom(t *testing.T) {
	// Time deltas mix zero (FIFO ties), small (same bucket), medium
	// (ring laps), and huge (overflow horizon) gaps.
	deltas := []int64{0, 0, 1, 3, 100, 4096, 65536, 1 << 22, 1 << 34}
	for seed := int64(1); seed <= 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		heap := &heapQueue{}
		others := []evq{newCalendarQueue(), &hybridQueue{}}
		var seq int64
		low := Time(0) // last popped time: pushes may not precede it
		for op := 0; op < 5000; op++ {
			for qi, q := range others {
				if q.len() != heap.len() {
					t.Fatalf("seed %d op %d queue %d: len %d vs %d", seed, op, qi, q.len(), heap.len())
				}
			}
			// Bias towards pushes so the queues grow and resize, but keep
			// popping throughout so cur/lastT advance through the ring.
			if heap.len() == 0 || rng.Intn(3) > 0 {
				burst := 1
				if rng.Intn(20) == 0 {
					burst = 50 + rng.Intn(200) // trigger grow resizes
				}
				for i := 0; i < burst; i++ {
					seq++
					tt := low + Time(deltas[rng.Intn(len(deltas))])
					ev := event{t: tt, seq: seq}
					heap.push(ev)
					for _, q := range others {
						q.push(ev)
					}
				}
				continue
			}
			b := heap.pop()
			for qi, q := range others {
				if a := q.pop(); a.t != b.t || a.seq != b.seq {
					t.Fatalf("seed %d op %d queue %d: pop (%d,%d) vs (%d,%d)", seed, op, qi, a.t, a.seq, b.t, b.seq)
				}
			}
			low = b.t
		}
		ha := popAll(heap)
		for qi, q := range others {
			qa := popAll(q)
			if len(qa) != len(ha) {
				t.Fatalf("seed %d queue %d: drain lengths %d vs %d", seed, qi, len(qa), len(ha))
			}
			for i := range qa {
				if qa[i].t != ha[i].t || qa[i].seq != ha[i].seq {
					t.Fatalf("seed %d queue %d: drain diverges at %d: (%d,%d) vs (%d,%d)",
						seed, qi, i, qa[i].t, qa[i].seq, ha[i].t, ha[i].seq)
				}
			}
		}
	}
}

// TestQueueSameInstantFIFO pins the tie-break rule in isolation: many
// events at one instant fire in push order on both implementations.
func TestQueueSameInstantFIFO(t *testing.T) {
	for _, k := range []QueueKind{CalendarQueue, HeapQueue, HybridQueue} {
		q := newQueue(k)
		for i := 1; i <= 100; i++ {
			q.push(event{t: 42, seq: int64(i)})
		}
		for i := 1; i <= 100; i++ {
			if ev := q.pop(); ev.seq != int64(i) {
				t.Fatalf("kind %v: tie %d popped as seq %d", k, i, ev.seq)
			}
		}
	}
}

// TestQueueShrinkAfterDrain exercises the shrink path: grow the ring with
// a large burst, drain most of it, and check order is still exact.
func TestQueueShrinkAfterDrain(t *testing.T) {
	cal, heap := newCalendarQueue(), &heapQueue{}
	rng := rand.New(rand.NewSource(9))
	for i := 1; i <= 3000; i++ {
		ev := event{t: Time(rng.Int63n(1 << 30)), seq: int64(i)}
		cal.push(ev)
		heap.push(ev)
	}
	for cal.len() > 0 {
		a, b := cal.pop(), heap.pop()
		if a.t != b.t || a.seq != b.seq {
			t.Fatalf("diverged: (%d,%d) vs (%d,%d)", a.t, a.seq, b.t, b.seq)
		}
	}
	if heap.len() != 0 {
		t.Fatal("heap not drained")
	}
}

// TestEngineQueueKindsProduceIdenticalRuns runs a small random proc
// workload — sleepers, a contended semaphore, zero-delay wakes — on one
// engine per queue kind and requires the full (time, label) firing traces
// to match. This is the engine-level determinism contract behind the
// constructor switch: the queue is an implementation detail invisible to
// any simulation.
func TestEngineQueueKindsProduceIdenticalRuns(t *testing.T) {
	trace := func(kind QueueKind) []string {
		e := NewEngineWithQueue(kind)
		defer e.Close()
		var out []string
		note := func(tag string) {
			out = append(out, Time(e.Now()).String()+" "+tag)
		}
		rng := rand.New(rand.NewSource(31))
		sem := NewSemaphore(e, "s", 2)
		for i := 0; i < 40; i++ {
			tag := string(rune('A' + i%26))
			d := time.Duration(rng.Int63n(int64(5 * time.Microsecond)))
			e.Go("p"+tag, func(p *Proc) {
				p.Sleep(d)
				sem.Acquire(p, 1)
				note("acq" + tag)
				p.Sleep(time.Duration(rng.Int63n(int64(time.Microsecond))))
				note("rel" + tag)
				sem.Release(1)
			})
			e.After(d/2, func() { note("ev" + tag) })
		}
		e.Run()
		return out
	}
	a, b, c := trace(CalendarQueue), trace(HeapQueue), trace(HybridQueue)
	if len(a) != len(b) || len(a) != len(c) {
		t.Fatalf("trace lengths differ: %d vs %d vs %d", len(a), len(b), len(c))
	}
	for i := range a {
		if a[i] != b[i] || a[i] != c[i] {
			t.Fatalf("traces diverge at %d: %q vs %q vs %q", i, a[i], b[i], c[i])
		}
	}
}

// TestHybridQueueMigrates pins the hybrid's mode transitions: growing
// past the upper threshold moves the pending set onto the calendar,
// draining below the lower threshold moves it back, and order is exact
// throughout.
func TestHybridQueueMigrates(t *testing.T) {
	h, ref := &hybridQueue{}, &heapQueue{}
	rng := rand.New(rand.NewSource(4))
	var seq int64
	push := func(n int, low Time) {
		for i := 0; i < n; i++ {
			seq++
			ev := event{t: low + Time(rng.Int63n(1<<30)), seq: seq}
			h.push(ev)
			ref.push(ev)
		}
	}
	push(hqToCalendar, 0)
	if h.onCal {
		t.Fatalf("on calendar at %d pending (threshold %d)", h.len(), hqToCalendar)
	}
	push(1, 0)
	if !h.onCal {
		t.Fatalf("still on heap at %d pending (threshold %d)", h.len(), hqToCalendar)
	}
	low := Time(0)
	for h.len() >= hqToHeap {
		a, b := h.pop(), ref.pop()
		if a.t != b.t || a.seq != b.seq {
			t.Fatalf("diverged: (%d,%d) vs (%d,%d)", a.t, a.seq, b.t, b.seq)
		}
		low = a.t
	}
	if h.onCal {
		t.Fatalf("still on calendar at %d pending (threshold %d)", h.len(), hqToHeap)
	}
	push(300, low) // grow again: a second migration must stay exact
	for h.len() > 0 {
		a, b := h.pop(), ref.pop()
		if a.t != b.t || a.seq != b.seq {
			t.Fatalf("post-remigration divergence: (%d,%d) vs (%d,%d)", a.t, a.seq, b.t, b.seq)
		}
	}
	if ref.len() != 0 {
		t.Fatal("reference heap not drained")
	}
}

var queueKinds = []struct {
	name string
	kind QueueKind
}{{"calendar", CalendarQueue}, {"heap", HeapQueue}, {"hybrid", HybridQueue}}

// benchmarkQueueHold measures raw push/pop throughput on a hold-model
// workload (pop one, push one a random distance ahead), which is the
// steady state the engine presents, at a fixed pending-set size.
func benchmarkQueueHold(b *testing.B, kind QueueKind, size int) {
	rng := rand.New(rand.NewSource(1))
	q := newQueue(kind)
	var seq int64
	now := Time(0)
	for i := 0; i < size; i++ {
		seq++
		q.push(event{t: now + Time(rng.Int63n(1<<20)), seq: seq})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := q.pop()
		now = ev.t
		seq++
		q.push(event{t: now + Time(rng.Int63n(1<<20)), seq: seq})
	}
}

// BenchmarkQueueSmall covers the small-queue regime the hybrid exists
// for: the hybrid should track the heap here, not the calendar's ring
// scan (the sizes straddle the hybrid's lower migration threshold).
func BenchmarkQueueSmall(b *testing.B) {
	for _, bc := range queueKinds {
		for _, size := range []int{4, 12, 48} {
			b.Run(bc.name+"/"+strconv.Itoa(size), func(b *testing.B) {
				benchmarkQueueHold(b, bc.kind, size)
			})
		}
	}
}

// BenchmarkQueue measures the queue kinds across the sizes simulation
// runs actually present (hundreds to thousands pending).
func BenchmarkQueue(b *testing.B) {
	for _, bc := range queueKinds {
		for _, size := range []int{32, 512, 8192} {
			b.Run(bc.name+"/"+strconv.Itoa(size), func(b *testing.B) {
				benchmarkQueueHold(b, bc.kind, size)
			})
		}
	}
}
