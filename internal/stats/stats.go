// Package stats provides the small statistical toolkit the experiment
// harness needs: replicated trials are reported as means with their
// coefficient of variation, as in the paper ("Each test case was
// replicated in five independent trials ... maximum coefficient of
// variation is 0.14").
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Stddev returns the sample standard deviation of xs (0 when len < 2).
func Stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// CV returns the coefficient of variation (stddev/mean), 0 when the mean
// is 0.
func CV(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 {
		return 0
	}
	return Stddev(xs) / m
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs by linear
// interpolation between closest ranks (the R-7 / numpy default rule):
// with n sorted samples, the quantile sits at fractional rank q·(n−1).
// It is deterministic for a given sample, never mutates xs, and returns
// 0 for an empty sample. q is clamped into [0, 1].
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

// Percentiles returns the p50, p90, and p99 of xs in one pass over a
// single sorted copy — the three latency percentiles the experiment
// harness reports for open-arrival workload runs.
func Percentiles(xs []float64) (p50, p90, p99 float64) {
	if len(xs) == 0 {
		return 0, 0, 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return quantileSorted(sorted, 0.50), quantileSorted(sorted, 0.90), quantileSorted(sorted, 0.99)
}

func quantileSorted(sorted []float64, q float64) float64 {
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	rank := q * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	frac := rank - float64(lo)
	if frac == 0 || lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo] + frac*(sorted[lo+1]-sorted[lo])
}

// Summary holds descriptive statistics of one sample. It marshals to
// JSON with stable snake_case keys — the experiment harness embeds it in
// machine-readable sweep results (one Summary per table cell). The
// percentile fields are populated only by SummarizePercentiles (latency
// samples); bandwidth cells summarized with Summarize omit them.
type Summary struct {
	N      int     `json:"n"`
	Mean   float64 `json:"mean"`
	Stddev float64 `json:"stddev"`
	CV     float64 `json:"cv"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	P50    float64 `json:"p50,omitempty"`
	P90    float64 `json:"p90,omitempty"`
	P99    float64 `json:"p99,omitempty"`
}

// Summarize computes a Summary of xs. It leaves the percentile fields
// zero — use SummarizePercentiles for latency-style samples.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs), Mean: Mean(xs), Stddev: Stddev(xs), CV: CV(xs)}
	for i, x := range xs {
		if i == 0 || x < s.Min {
			s.Min = x
		}
		if i == 0 || x > s.Max {
			s.Max = x
		}
	}
	return s
}

// SummarizePercentiles computes a Summary of xs with the P50/P90/P99
// fields populated.
func SummarizePercentiles(xs []float64) Summary {
	s := Summarize(xs)
	s.P50, s.P90, s.P99 = Percentiles(xs)
	return s
}

// Combine merges per-trial Summaries of one metric into a cross-trial
// Summary: N sums, Min/Max span the trials, Mean and the percentiles
// average the per-trial values with equal weight (exact for Mean when
// trials are equal-sized; a deterministic approximation for the
// percentiles, which cannot be recovered from summaries alone), and
// Stddev/CV describe the spread of the per-trial means — the same
// trial-to-trial variability the throughput cells report.
func Combine(ss []Summary) Summary {
	if len(ss) == 0 {
		return Summary{}
	}
	means := make([]float64, len(ss))
	var out Summary
	for i, s := range ss {
		means[i] = s.Mean
		out.N += s.N
		out.P50 += s.P50
		out.P90 += s.P90
		out.P99 += s.P99
		if i == 0 || s.Min < out.Min {
			out.Min = s.Min
		}
		if i == 0 || s.Max > out.Max {
			out.Max = s.Max
		}
	}
	n := float64(len(ss))
	out.Mean = Mean(means)
	out.Stddev = Stddev(means)
	out.CV = CV(means)
	out.P50 /= n
	out.P90 /= n
	out.P99 /= n
	return out
}
