// Package stats provides the small statistical toolkit the experiment
// harness needs: replicated trials are reported as means with their
// coefficient of variation, as in the paper ("Each test case was
// replicated in five independent trials ... maximum coefficient of
// variation is 0.14").
package stats

import "math"

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Stddev returns the sample standard deviation of xs (0 when len < 2).
func Stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// CV returns the coefficient of variation (stddev/mean), 0 when the mean
// is 0.
func CV(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 {
		return 0
	}
	return Stddev(xs) / m
}

// Summary holds descriptive statistics of one sample. It marshals to
// JSON with stable snake_case keys — the experiment harness embeds it in
// machine-readable sweep results (one Summary per table cell).
type Summary struct {
	N      int     `json:"n"`
	Mean   float64 `json:"mean"`
	Stddev float64 `json:"stddev"`
	CV     float64 `json:"cv"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs), Mean: Mean(xs), Stddev: Stddev(xs), CV: CV(xs)}
	for i, x := range xs {
		if i == 0 || x < s.Min {
			s.Min = x
		}
		if i == 0 || x > s.Max {
			s.Max = x
		}
	}
	return s
}
