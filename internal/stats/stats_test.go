package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("empty mean")
	}
	if Mean([]float64{2, 4, 6}) != 4 {
		t.Fatal("mean")
	}
}

func TestStddev(t *testing.T) {
	if Stddev([]float64{5}) != 0 {
		t.Fatal("single-sample stddev")
	}
	got := Stddev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(got-2.138) > 0.01 {
		t.Fatalf("stddev %v", got)
	}
}

func TestCV(t *testing.T) {
	if CV([]float64{0, 0}) != 0 {
		t.Fatal("zero-mean cv")
	}
	xs := []float64{10, 10, 10}
	if CV(xs) != 0 {
		t.Fatal("constant sample cv")
	}
	if got := CV([]float64{8, 12}); math.Abs(got-0.2828) > 0.001 {
		t.Fatalf("cv %v", got)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{3, 1, 2})
	if s.N != 3 || s.Min != 1 || s.Max != 3 || s.Mean != 2 {
		t.Fatalf("summary %+v", s)
	}
}

// Property: mean lies within [min, max] and stddev is non-negative.
func TestQuickSummaryBounds(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e9 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		return s.Mean >= s.Min-1e-9 && s.Mean <= s.Max+1e-9 && s.Stddev >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
