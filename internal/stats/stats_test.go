package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("empty mean")
	}
	if Mean([]float64{2, 4, 6}) != 4 {
		t.Fatal("mean")
	}
}

func TestStddev(t *testing.T) {
	if Stddev([]float64{5}) != 0 {
		t.Fatal("single-sample stddev")
	}
	got := Stddev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(got-2.138) > 0.01 {
		t.Fatalf("stddev %v", got)
	}
}

func TestCV(t *testing.T) {
	if CV([]float64{0, 0}) != 0 {
		t.Fatal("zero-mean cv")
	}
	xs := []float64{10, 10, 10}
	if CV(xs) != 0 {
		t.Fatal("constant sample cv")
	}
	if got := CV([]float64{8, 12}); math.Abs(got-0.2828) > 0.001 {
		t.Fatalf("cv %v", got)
	}
}

func TestQuantile(t *testing.T) {
	cases := []struct {
		name string
		xs   []float64
		q    float64
		want float64
	}{
		{"empty", nil, 0.5, 0},
		{"single", []float64{7}, 0.5, 7},
		{"single p99", []float64{7}, 0.99, 7},
		{"two median", []float64{10, 20}, 0.5, 15},
		{"interpolation", []float64{10, 20, 30, 40}, 0.25, 17.5},
		{"exact rank", []float64{10, 20, 30}, 0.5, 20},
		{"ties", []float64{5, 5, 5, 5}, 0.9, 5},
		{"ties mixed", []float64{1, 2, 2, 2, 3}, 0.5, 2},
		{"p90 of 1..10", []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, 0.9, 9.1},
		{"q below 0 clamps", []float64{3, 1, 2}, -1, 1},
		{"q above 1 clamps", []float64{3, 1, 2}, 2, 3},
		{"unsorted input", []float64{30, 10, 20}, 0.5, 20},
	}
	for _, c := range cases {
		if got := Quantile(c.xs, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%s: Quantile(%v, %v) = %v, want %v", c.name, c.xs, c.q, got, c.want)
		}
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestPercentiles(t *testing.T) {
	p50, p90, p99 := Percentiles(nil)
	if p50 != 0 || p90 != 0 || p99 != 0 {
		t.Fatal("empty percentiles should be zero")
	}
	xs := make([]float64, 101) // 0..100: pK is exactly K
	for i := range xs {
		xs[i] = float64(i)
	}
	p50, p90, p99 = Percentiles(xs)
	if p50 != 50 || p90 != 90 || p99 != 99 {
		t.Fatalf("percentiles of 0..100 = %v %v %v", p50, p90, p99)
	}
}

func TestSummarizePercentiles(t *testing.T) {
	s := SummarizePercentiles([]float64{10, 20, 30})
	if s.N != 3 || s.Mean != 20 || s.P50 != 20 || s.P90 != 28 {
		t.Fatalf("summary %+v", s)
	}
	// Plain Summarize must leave percentiles zero: the sweep JSON for
	// bandwidth cells omits them (omitempty) and is pinned by goldens.
	if p := Summarize([]float64{10, 20, 30}); p.P50 != 0 || p.P90 != 0 || p.P99 != 0 {
		t.Fatalf("Summarize populated percentiles: %+v", p)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{3, 1, 2})
	if s.N != 3 || s.Min != 1 || s.Max != 3 || s.Mean != 2 {
		t.Fatalf("summary %+v", s)
	}
}

// Property: mean lies within [min, max] and stddev is non-negative.
func TestQuickSummaryBounds(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e9 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		return s.Mean >= s.Min-1e-9 && s.Mean <= s.Max+1e-9 && s.Stddev >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
