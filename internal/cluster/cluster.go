// Package cluster assembles the simulated MIMD machine: compute
// processors (CPs) and I/O processors (IOPs) placed on the interconnect,
// each with a CPU resource for file-system software costs, a mailbox for
// protocol messages, and — for CPs — a user memory buffer that remote
// Memput/Memget DMA operations address directly.
package cluster

import (
	"fmt"
	"time"

	"ddio/internal/fault"
	"ddio/internal/netsim"
	"ddio/internal/sim"
)

// Kind distinguishes compute processors from I/O processors.
type Kind int

// Node kinds.
const (
	CP Kind = iota
	IOP
)

func (k Kind) String() string {
	if k == CP {
		return "CP"
	}
	return "IOP"
}

// Node is one processor.
type Node struct {
	Kind  Kind
	Index int // index within its kind
	NetID int // interconnect address

	// CPU serializes file-system software costs on this processor
	// (50 MHz RISC in the paper; we charge calibrated absolute times).
	CPU *sim.Pipe
	// Mail receives protocol messages that need software handling.
	Mail *sim.Mailbox
	// Mem is the node's directly-addressable memory for DMA transfers
	// (used on CPs as the application buffer).
	Mem []byte
}

func (n *Node) String() string { return fmt.Sprintf("%v%d", n.Kind, n.Index) }

// Machine is the assembled multiprocessor.
type Machine struct {
	Eng  *sim.Engine
	Net  *netsim.Network
	CPs  []*Node
	IOPs []*Node

	ops sim.Arena[op] // in-flight messaging operation records
}

// New builds a machine with nCP compute and nIOP I/O processors,
// interleaving the two kinds across interconnect addresses so neither is
// clustered in one corner of the torus.
func New(e *sim.Engine, netCfg netsim.Config, nCP, nIOP int, rng *sim.Rand) *Machine {
	m := &Machine{
		Eng: e,
		Net: netsim.New(e, netCfg, nCP+nIOP, rng),
	}
	// Bresenham-style interleave of CPs and IOPs over net addresses.
	cpLeft, iopLeft := nCP, nIOP
	var cpAcc, iopAcc int
	for id := 0; id < nCP+nIOP; id++ {
		takeCP := false
		switch {
		case iopLeft == 0:
			takeCP = true
		case cpLeft == 0:
			takeCP = false
		default:
			// Pick the kind lagging most behind its proportional share.
			takeCP = cpAcc*nIOP <= iopAcc*nCP
		}
		if takeCP {
			m.CPs = append(m.CPs, m.newNode(CP, len(m.CPs), id))
			cpLeft--
			cpAcc++
		} else {
			m.IOPs = append(m.IOPs, m.newNode(IOP, len(m.IOPs), id))
			iopLeft--
			iopAcc++
		}
	}
	return m
}

// InjectFaults attaches a run's fault injector to the machine's layers
// (currently the interconnect; disks are attached by the experiment
// driver, which owns them). A nil injector is the fault-free default.
func (m *Machine) InjectFaults(in *fault.Injector) {
	if in == nil {
		return
	}
	m.Net.SetFaults(in.Net())
}

func (m *Machine) newNode(k Kind, index, netID int) *Node {
	name := fmt.Sprintf("%v%d", k, index)
	m.Net.SetNodeName(netID, name)
	return &Node{
		Kind:  k,
		Index: index,
		NetID: netID,
		CPU:   sim.NewPipe(m.Eng, "cpu:"+name, 0, 0),
		Mail:  sim.NewMailbox(m.Eng, "mail:"+name),
	}
}

// op is one in-flight messaging operation — a mailbox send, a DMA put,
// or a DMA get — pooled on the machine's arena. Every stage of an
// operation's event chain (CPU setup done, data landed, remote DMA done)
// is a completion token targeting the op itself, so a steady-state
// message costs no allocations: the record, its payload snapshot buffer,
// and its segment lists are all reused LIFO. gen is bumped when the
// record is released at its terminal stage, so a token queued against a
// previous incarnation drops as a no-op.
type op struct {
	m       *Machine
	gen     uint64
	src     *Node          // data sender (the remote node for Memget)
	dst     *Node          // data receiver (the caller for Memget)
	n       int            // payload bytes of the data message
	req     int            // request-message bytes (Memget only)
	off     int64          // remote source offset (single-Memget only)
	cpu     time.Duration  // remote DMA setup cost (Memget only)
	msg     any            // mailbox message (Send only)
	buf     []byte         // Memput payload snapshot, segments concatenated
	segOff  []int64        // Memput scatter destination offsets
	segLen  []int          // Memput scatter segment lengths
	getSegs []GetSeg       // MemgetGather segments (with caller-side Dst)
	dstBuf  []byte         // single-Memget caller destination
	onSent  sim.Completion // fires when the source NIC is free
	done    sim.Completion // terminal completion (delivered / data landed)
}

// Op token kinds, one per event-chain stage.
const (
	opSendMail   uint8 = iota + 1 // Send: CPU done, ship to mailbox
	opMailPut                     // Send: delivered, put in mailbox
	opSendC                       // SendC: CPU done, ship with completion
	opMemput                      // Memput: CPU done, ship the data
	opMemputLand                  // Memput: delivered, scatter into memory
	opMemgetReq                   // Memget: CPU done, ship the request
	opMemgetDMA                   // Memget: request arrived, start remote DMA
	opMemgetCopy                  // Memget: DMA done, copy and ship reply
)

func (m *Machine) newOp(src, dst *Node) *op {
	o := m.ops.Get()
	o.m = m
	o.src, o.dst = src, dst
	return o
}

func (o *op) token(kind uint8) sim.Completion {
	return sim.Completion{Target: o, Gen: o.gen, Kind: kind}
}

// release returns the record to the arena, invalidating queued tokens
// and dropping payload references (snapshot capacity is kept for reuse).
func (o *op) release() {
	o.gen++
	o.src, o.dst = nil, nil
	o.msg = nil
	o.buf = o.buf[:0]
	o.segOff = o.segOff[:0]
	o.segLen = o.segLen[:0]
	for i := range o.getSegs {
		o.getSegs[i].Dst = nil
	}
	o.getSegs = o.getSegs[:0]
	o.dstBuf = nil
	o.onSent, o.done = sim.Completion{}, sim.Completion{}
	o.m.ops.Put(o)
}

// Complete advances the operation by one stage.
func (o *op) Complete(c sim.Completion, now sim.Time) {
	if c.Gen != o.gen {
		return
	}
	m := o.m
	switch c.Kind {
	case opSendMail:
		m.Net.Send(o.src.NetID, o.dst.NetID, o.n, sim.Completion{}, o.token(opMailPut))
	case opMailPut:
		msg, dst := o.msg, o.dst
		o.release()
		dst.Mail.Put(msg)
	case opSendC:
		src, dst, n, done := o.src, o.dst, o.n, o.done
		o.release()
		m.Net.Send(src.NetID, dst.NetID, n, sim.Completion{}, done)
	case opMemput:
		m.Net.Send(o.src.NetID, o.dst.NetID, o.n, o.onSent, o.token(opMemputLand))
	case opMemputLand:
		pos := 0
		for i, so := range o.segOff {
			ln := o.segLen[i]
			copy(o.dst.Mem[so:], o.buf[pos:pos+ln])
			pos += ln
		}
		done := o.done
		o.release()
		done.Invoke(now)
	case opMemgetReq:
		// The request travels caller -> remote (against the op's data
		// direction, which is src=remote -> dst=caller).
		m.Net.Send(o.dst.NetID, o.src.NetID, o.req, sim.Completion{}, o.token(opMemgetDMA))
	case opMemgetDMA:
		_, dmaDone := o.src.CPU.ReserveFor(o.cpu)
		m.Eng.AtCompletion(dmaDone, o.token(opMemgetCopy))
	case opMemgetCopy:
		// The DMA instant is the snapshot point: bytes land in the
		// caller's destination now, while the data message is in flight;
		// the caller must not read them until done fires at delivery.
		if len(o.getSegs) > 0 {
			for _, s := range o.getSegs {
				copy(s.Dst[:s.Len], o.src.Mem[s.Off:s.Off+s.Len])
			}
		} else {
			copy(o.dstBuf, o.src.Mem[o.off:o.off+int64(len(o.dstBuf))])
		}
		src, caller, n, done := o.src, o.dst, o.n, o.done
		o.release()
		m.Net.Send(src.NetID, caller.NetID, n, sim.Completion{}, done)
	}
}

// Send models a software message: srcCPU is charged on the sender, the
// network carries the payload, and at delivery the message is placed in
// dst's mailbox (the receiver charges its own processing cost when it
// dequeues the message).
func (m *Machine) Send(src, dst *Node, payloadBytes int, srcCPU time.Duration, msg any) {
	o := m.newOp(src, dst)
	o.n = payloadBytes
	o.msg = msg
	_, cpuDone := src.CPU.ReserveFor(srcCPU)
	m.Eng.AtCompletion(cpuDone, o.token(opSendMail))
}

// SendC is like Send but fires the done completion (in event context) at
// delivery time instead of using the destination mailbox — the shape of
// a reply whose payload is deposited by DMA and whose handler is a
// lightweight interrupt rather than a software thread.
func (m *Machine) SendC(src, dst *Node, payloadBytes int, srcCPU time.Duration, done sim.Completion) {
	o := m.newOp(src, dst)
	o.n = payloadBytes
	o.done = done
	_, cpuDone := src.CPU.ReserveFor(srcCPU)
	m.Eng.AtCompletion(cpuDone, o.token(opSendC))
}

// Memput copies data into dst.Mem at off using DMA: the source CPU pays
// cpuCost to set up the transfer, the NICs carry the bytes, and the data
// lands in dst.Mem with no software on the destination node. The data is
// snapshotted at call time (into a pooled buffer). onSent, if valid,
// fires when the source NIC is free; onDelivered, if valid, fires when
// the data has landed.
func (m *Machine) Memput(src, dst *Node, off int, data []byte, cpuCost time.Duration,
	onSent, onDelivered sim.Completion) {
	o := m.newOp(src, dst)
	o.buf = append(o.buf[:0], data...)
	o.segOff = append(o.segOff[:0], int64(off))
	o.segLen = append(o.segLen[:0], len(data))
	o.n = len(data)
	o.onSent, o.done = onSent, onDelivered
	_, cpuDone := src.CPU.ReserveFor(cpuCost)
	m.Eng.AtCompletion(cpuDone, o.token(opMemput))
}

// MemSeg is one piece of a gather/scatter Memput: Data lands at Off in
// the destination's memory.
type MemSeg struct {
	Off  int64
	Data []byte
}

// GetSeg names one piece of a gather Memget: Len bytes at Off in the
// remote memory, landing in Dst (len >= Len) at the caller.
type GetSeg struct {
	Off int64
	Len int64
	Dst []byte
}

// MemputGather is Memput for several non-contiguous destination ranges
// carried in a single message (the paper's gather/scatter extension).
func (m *Machine) MemputGather(src, dst *Node, segs []MemSeg, cpuCost time.Duration,
	onSent, onDelivered sim.Completion) {
	o := m.newOp(src, dst)
	total := 0
	for _, s := range segs {
		o.buf = append(o.buf, s.Data...)
		o.segOff = append(o.segOff, s.Off)
		o.segLen = append(o.segLen, len(s.Data))
		total += len(s.Data)
	}
	o.n = total
	o.onSent, o.done = onSent, onDelivered
	_, cpuDone := src.CPU.ReserveFor(cpuCost)
	m.Eng.AtCompletion(cpuDone, o.token(opMemput))
}

// MemgetGather is Memget for several non-contiguous source ranges: one
// request message out, one data message back, each piece copied into its
// segment's Dst at the remote DMA instant. done fires at the caller when
// the data message arrives; the Dst slices must not be read before then.
func (m *Machine) MemgetGather(caller, src *Node, segs []GetSeg, cpuCost, remoteCPU time.Duration,
	done sim.Completion) {
	o := m.newOp(src, caller)
	o.getSegs = append(o.getSegs[:0], segs...)
	total := 0
	for _, s := range segs {
		total += int(s.Len)
	}
	o.n = total
	o.req = 8 * len(segs)
	o.cpu = remoteCPU
	o.done = done
	_, cpuDone := caller.CPU.ReserveFor(cpuCost)
	m.Eng.AtCompletion(cpuDone, o.token(opMemgetReq))
}

// Memget fetches len(dst) bytes from src.Mem at off on behalf of the
// caller node: a small request message travels to src, whose DMA engine
// (charged as remoteCPU on src's CPU pipe, without any software thread)
// replies with the data, copied into dst at the DMA instant. done fires
// at the caller when the data message arrives; dst must not be read
// before then.
func (m *Machine) Memget(caller, src *Node, off int, dst []byte, cpuCost, remoteCPU time.Duration,
	done sim.Completion) {
	o := m.newOp(src, caller)
	o.off = int64(off)
	o.dstBuf = dst
	o.n = len(dst)
	o.req = 0
	o.cpu = remoteCPU
	o.done = done
	_, cpuDone := caller.CPU.ReserveFor(cpuCost)
	m.Eng.AtCompletion(cpuDone, o.token(opMemgetReq))
}
