// Package cluster assembles the simulated MIMD machine: compute
// processors (CPs) and I/O processors (IOPs) placed on the interconnect,
// each with a CPU resource for file-system software costs, a mailbox for
// protocol messages, and — for CPs — a user memory buffer that remote
// Memput/Memget DMA operations address directly.
package cluster

import (
	"fmt"
	"time"

	"ddio/internal/fault"
	"ddio/internal/netsim"
	"ddio/internal/sim"
)

// Kind distinguishes compute processors from I/O processors.
type Kind int

// Node kinds.
const (
	CP Kind = iota
	IOP
)

func (k Kind) String() string {
	if k == CP {
		return "CP"
	}
	return "IOP"
}

// Node is one processor.
type Node struct {
	Kind  Kind
	Index int // index within its kind
	NetID int // interconnect address

	// CPU serializes file-system software costs on this processor
	// (50 MHz RISC in the paper; we charge calibrated absolute times).
	CPU *sim.Pipe
	// Mail receives protocol messages that need software handling.
	Mail *sim.Mailbox
	// Mem is the node's directly-addressable memory for DMA transfers
	// (used on CPs as the application buffer).
	Mem []byte
}

func (n *Node) String() string { return fmt.Sprintf("%v%d", n.Kind, n.Index) }

// Machine is the assembled multiprocessor.
type Machine struct {
	Eng  *sim.Engine
	Net  *netsim.Network
	CPs  []*Node
	IOPs []*Node
}

// New builds a machine with nCP compute and nIOP I/O processors,
// interleaving the two kinds across interconnect addresses so neither is
// clustered in one corner of the torus.
func New(e *sim.Engine, netCfg netsim.Config, nCP, nIOP int, rng *sim.Rand) *Machine {
	m := &Machine{
		Eng: e,
		Net: netsim.New(e, netCfg, nCP+nIOP, rng),
	}
	// Bresenham-style interleave of CPs and IOPs over net addresses.
	cpLeft, iopLeft := nCP, nIOP
	var cpAcc, iopAcc int
	for id := 0; id < nCP+nIOP; id++ {
		takeCP := false
		switch {
		case iopLeft == 0:
			takeCP = true
		case cpLeft == 0:
			takeCP = false
		default:
			// Pick the kind lagging most behind its proportional share.
			takeCP = cpAcc*nIOP <= iopAcc*nCP
		}
		if takeCP {
			m.CPs = append(m.CPs, m.newNode(CP, len(m.CPs), id))
			cpLeft--
			cpAcc++
		} else {
			m.IOPs = append(m.IOPs, m.newNode(IOP, len(m.IOPs), id))
			iopLeft--
			iopAcc++
		}
	}
	return m
}

// InjectFaults attaches a run's fault injector to the machine's layers
// (currently the interconnect; disks are attached by the experiment
// driver, which owns them). A nil injector is the fault-free default.
func (m *Machine) InjectFaults(in *fault.Injector) {
	if in == nil {
		return
	}
	m.Net.SetFaults(in.Net())
}

func (m *Machine) newNode(k Kind, index, netID int) *Node {
	name := fmt.Sprintf("%v%d", k, index)
	m.Net.SetNodeName(netID, name)
	return &Node{
		Kind:  k,
		Index: index,
		NetID: netID,
		CPU:   sim.NewPipe(m.Eng, "cpu:"+name, 0, 0),
		Mail:  sim.NewMailbox(m.Eng, "mail:"+name),
	}
}

// Send models a software message: srcCPU is charged on the sender, the
// network carries the payload, and at delivery the message is placed in
// dst's mailbox (the receiver charges its own processing cost when it
// dequeues the message).
func (m *Machine) Send(src, dst *Node, payloadBytes int, srcCPU time.Duration, msg any) {
	_, cpuDone := src.CPU.ReserveFor(srcCPU)
	m.Eng.At(cpuDone, func() {
		m.Net.Send(src.NetID, dst.NetID, payloadBytes, nil, func(sim.Time) {
			dst.Mail.Put(msg)
		})
	})
}

// SendFn is like Send but invokes fn (in event context) at delivery time
// instead of using the destination mailbox — the shape of a reply whose
// payload is deposited by DMA and whose handler is a lightweight
// interrupt rather than a software thread.
func (m *Machine) SendFn(src, dst *Node, payloadBytes int, srcCPU time.Duration, fn func(t sim.Time)) {
	_, cpuDone := src.CPU.ReserveFor(srcCPU)
	m.Eng.At(cpuDone, func() {
		m.Net.Send(src.NetID, dst.NetID, payloadBytes, nil, fn)
	})
}

// Memput copies data into dst.Mem at off using DMA: the source CPU pays
// cpuCost to set up the transfer, the NICs carry the bytes, and the data
// lands in dst.Mem with no software on the destination node. onSent (may
// be nil) fires when the source NIC is free; onDelivered (may be nil)
// fires when the data has landed.
func (m *Machine) Memput(src, dst *Node, off int, data []byte, cpuCost time.Duration,
	onSent, onDelivered func(t sim.Time)) {
	snapshot := make([]byte, len(data))
	copy(snapshot, data)
	_, cpuDone := src.CPU.ReserveFor(cpuCost)
	m.Eng.At(cpuDone, func() {
		m.Net.Send(src.NetID, dst.NetID, len(snapshot), onSent, func(t sim.Time) {
			copy(dst.Mem[off:], snapshot)
			if onDelivered != nil {
				onDelivered(t)
			}
		})
	})
}

// MemSeg is one piece of a gather/scatter Memput: Data lands at Off in
// the destination's memory.
type MemSeg struct {
	Off  int64
	Data []byte
}

// GetSeg names one piece of a gather Memget: Len bytes at Off in the
// remote memory.
type GetSeg struct {
	Off int64
	Len int64
}

// MemputGather is Memput for several non-contiguous destination ranges
// carried in a single message (the paper's gather/scatter extension).
func (m *Machine) MemputGather(src, dst *Node, segs []MemSeg, cpuCost time.Duration,
	onSent, onDelivered func(t sim.Time)) {
	total := 0
	snap := make([]MemSeg, len(segs))
	for i, s := range segs {
		data := make([]byte, len(s.Data))
		copy(data, s.Data)
		snap[i] = MemSeg{Off: s.Off, Data: data}
		total += len(data)
	}
	_, cpuDone := src.CPU.ReserveFor(cpuCost)
	m.Eng.At(cpuDone, func() {
		m.Net.Send(src.NetID, dst.NetID, total, onSent, func(t sim.Time) {
			for _, s := range snap {
				copy(dst.Mem[s.Off:], s.Data)
			}
			if onDelivered != nil {
				onDelivered(t)
			}
		})
	})
}

// MemgetGather is Memget for several non-contiguous source ranges: one
// request message out, one data message back, pieces returned in seg
// order.
func (m *Machine) MemgetGather(caller, src *Node, segs []GetSeg, cpuCost, remoteCPU time.Duration,
	onData func(pieces [][]byte, t sim.Time)) {
	segs = append([]GetSeg(nil), segs...)
	total := 0
	for _, s := range segs {
		total += int(s.Len)
	}
	_, cpuDone := caller.CPU.ReserveFor(cpuCost)
	m.Eng.At(cpuDone, func() {
		m.Net.Send(caller.NetID, src.NetID, 8*len(segs), nil, func(sim.Time) {
			_, dmaDone := src.CPU.ReserveFor(remoteCPU)
			m.Eng.At(dmaDone, func() {
				pieces := make([][]byte, len(segs))
				for i, s := range segs {
					piece := make([]byte, s.Len)
					copy(piece, src.Mem[s.Off:s.Off+s.Len])
					pieces[i] = piece
				}
				m.Net.Send(src.NetID, caller.NetID, total, nil, func(t sim.Time) {
					onData(pieces, t)
				})
			})
		})
	})
}

// Memget fetches n bytes from src.Mem at off on behalf of the caller
// node: a small request message travels to src, whose DMA engine (charged
// as remoteCPU on src's CPU pipe, without any software thread) replies
// with the data; onData receives the bytes at the caller at arrival time.
func (m *Machine) Memget(caller, src *Node, off, n int, cpuCost, remoteCPU time.Duration,
	onData func(data []byte, t sim.Time)) {
	_, cpuDone := caller.CPU.ReserveFor(cpuCost)
	m.Eng.At(cpuDone, func() {
		m.Net.Send(caller.NetID, src.NetID, 0, nil, func(sim.Time) {
			_, dmaDone := src.CPU.ReserveFor(remoteCPU)
			m.Eng.At(dmaDone, func() {
				data := make([]byte, n)
				copy(data, src.Mem[off:off+n])
				m.Net.Send(src.NetID, caller.NetID, n, nil, func(t sim.Time) {
					onData(data, t)
				})
			})
		})
	})
}
