package cluster

import (
	"bytes"
	"testing"
	"time"

	"ddio/internal/netsim"
	"ddio/internal/sim"
)

func newMachine(t *testing.T, ncp, niop int) (*sim.Engine, *Machine) {
	t.Helper()
	e := sim.NewEngine()
	t.Cleanup(e.Close)
	return e, New(e, netsim.DefaultConfig(), ncp, niop, sim.NewRand(1))
}

func TestMachineShape(t *testing.T) {
	_, m := newMachine(t, 16, 16)
	if len(m.CPs) != 16 || len(m.IOPs) != 16 {
		t.Fatalf("machine %d CPs, %d IOPs", len(m.CPs), len(m.IOPs))
	}
	for i, n := range m.CPs {
		if n.Kind != CP || n.Index != i {
			t.Fatalf("CP %d mislabeled: %v", i, n)
		}
	}
	for i, n := range m.IOPs {
		if n.Kind != IOP || n.Index != i {
			t.Fatalf("IOP %d mislabeled: %v", i, n)
		}
	}
}

func TestPlacementInterleavesKinds(t *testing.T) {
	_, m := newMachine(t, 16, 16)
	// With equal counts the interleave should alternate perfectly:
	// no two CPs on adjacent net IDs.
	kind := make(map[int]Kind)
	for _, n := range m.CPs {
		kind[n.NetID] = CP
	}
	for _, n := range m.IOPs {
		kind[n.NetID] = IOP
	}
	for id := 0; id+1 < 32; id++ {
		if kind[id] == kind[id+1] {
			t.Fatalf("net IDs %d and %d both %v; want alternating", id, id+1, kind[id])
		}
	}
}

func TestPlacementUnevenCounts(t *testing.T) {
	_, m := newMachine(t, 16, 1)
	ids := map[int]bool{}
	for _, n := range append(append([]*Node{}, m.CPs...), m.IOPs...) {
		if ids[n.NetID] {
			t.Fatalf("duplicate net ID %d", n.NetID)
		}
		ids[n.NetID] = true
	}
	if len(ids) != 17 {
		t.Fatalf("%d distinct net IDs, want 17", len(ids))
	}
}

func TestNodeString(t *testing.T) {
	_, m := newMachine(t, 2, 2)
	if m.CPs[1].String() != "CP1" || m.IOPs[0].String() != "IOP0" {
		t.Fatalf("names %v %v", m.CPs[1], m.IOPs[0])
	}
}

func TestSendDeliversToMailboxAndChargesCPU(t *testing.T) {
	e, m := newMachine(t, 2, 2)
	src, dst := m.CPs[0], m.IOPs[0]
	var got any
	e.Go("recv", func(p *sim.Proc) { got = dst.Mail.Get(p) })
	m.Send(src, dst, 128, 10*time.Microsecond, "payload")
	e.Run()
	if got != "payload" {
		t.Fatalf("got %v", got)
	}
	if src.CPU.Busy() != 10*time.Microsecond {
		t.Fatalf("source CPU busy %v", src.CPU.Busy())
	}
}

func TestSendCRunsAtDelivery(t *testing.T) {
	e, m := newMachine(t, 2, 2)
	var at sim.Time
	m.SendC(m.CPs[0], m.CPs[1], 64, 0, sim.Callback(func(ts sim.Time) { at = ts }))
	e.Run()
	if at == 0 {
		t.Fatal("SendC completion never fired")
	}
}

func TestMemputLandsDataAndSignals(t *testing.T) {
	e, m := newMachine(t, 2, 2)
	dst := m.CPs[1]
	dst.Mem = make([]byte, 64)
	data := []byte{1, 2, 3, 4}
	var sentAt, doneAt sim.Time
	m.Memput(m.IOPs[0], dst, 8, data, time.Microsecond,
		sim.Callback(func(ts sim.Time) { sentAt = ts }),
		sim.Callback(func(td sim.Time) { doneAt = td }))
	// Mutate the source buffer after the call: the Memput must have
	// snapshotted it.
	data[0] = 99
	e.Run()
	if !bytes.Equal(dst.Mem[8:12], []byte{1, 2, 3, 4}) {
		t.Fatalf("dest memory %v", dst.Mem[8:12])
	}
	if sentAt == 0 || doneAt == 0 || doneAt < sentAt {
		t.Fatalf("sent %v, delivered %v", sentAt, doneAt)
	}
}

func TestMemgetFetchesRemoteData(t *testing.T) {
	e, m := newMachine(t, 2, 2)
	src := m.CPs[0]
	src.Mem = []byte{10, 20, 30, 40, 50}
	got := make([]byte, 3)
	var doneAt sim.Time
	m.Memget(m.IOPs[0], src, 1, got, time.Microsecond, time.Microsecond,
		sim.Callback(func(ts sim.Time) { doneAt = ts }))
	e.Run()
	if doneAt == 0 {
		t.Fatal("Memget done completion never fired")
	}
	if !bytes.Equal(got, []byte{20, 30, 40}) {
		t.Fatalf("got %v", got)
	}
	if src.CPU.Busy() == 0 {
		t.Fatal("remote DMA charged no CPU time")
	}
}

func TestMemputGatherScattersSegments(t *testing.T) {
	e, m := newMachine(t, 2, 2)
	dst := m.CPs[1]
	dst.Mem = make([]byte, 32)
	segs := []MemSeg{
		{Off: 0, Data: []byte{1}},
		{Off: 10, Data: []byte{2, 3}},
		{Off: 30, Data: []byte{4}},
	}
	delivered := false
	m.MemputGather(m.IOPs[0], dst, segs, time.Microsecond, sim.Completion{},
		sim.Callback(func(sim.Time) { delivered = true }))
	e.Run()
	if !delivered {
		t.Fatal("gather Memput not delivered")
	}
	if dst.Mem[0] != 1 || dst.Mem[10] != 2 || dst.Mem[11] != 3 || dst.Mem[30] != 4 {
		t.Fatalf("scatter result %v", dst.Mem)
	}
}

func TestMemgetGatherReturnsPiecesInOrder(t *testing.T) {
	e, m := newMachine(t, 2, 2)
	src := m.CPs[0]
	src.Mem = []byte{0, 1, 2, 3, 4, 5, 6, 7}
	p0, p1 := make([]byte, 2), make([]byte, 3)
	fired := false
	m.MemgetGather(m.IOPs[0], src,
		[]GetSeg{{Off: 6, Len: 2, Dst: p0}, {Off: 0, Len: 3, Dst: p1}},
		time.Microsecond, time.Microsecond,
		sim.Callback(func(sim.Time) { fired = true }))
	e.Run()
	if !fired || !bytes.Equal(p0, []byte{6, 7}) || !bytes.Equal(p1, []byte{0, 1, 2}) {
		t.Fatalf("pieces %v %v (fired %v)", p0, p1, fired)
	}
}

// TestSendCRoundTripAllocFree pins the tentpole's alloc contract at the
// cluster layer: a warm request/reply round trip — SendC out, SendC
// back, both signaling a pooled WaitGroup — allocates nothing.
func TestSendCRoundTripAllocFree(t *testing.T) {
	e, m := newMachine(t, 2, 2)
	cp, iop := m.CPs[0], m.IOPs[0]
	wg := sim.NewWaitGroup(e, "rt", 0)
	done := wg.DoneC()
	roundTrip := func() {
		wg.Add(2)
		m.SendC(cp, iop, 64, time.Microsecond, done)  // request
		m.SendC(iop, cp, 128, time.Microsecond, done) // reply
		e.Run()
	}
	for i := 0; i < 8; i++ { // warm op arena, message arena, pipes, queue
		roundTrip()
	}
	avg := testing.AllocsPerRun(200, roundTrip)
	if avg > 0 {
		t.Errorf("warm SendC round trip allocates %.2f objects/op, want 0", avg)
	}
}

// TestMemputMemgetAllocFree extends the guard to the DMA path: warm
// Memput and Memget with completion tokens must not allocate.
func TestMemputMemgetAllocFree(t *testing.T) {
	e, m := newMachine(t, 2, 2)
	cp, iop := m.CPs[0], m.IOPs[0]
	cp.Mem = make([]byte, 256)
	src := make([]byte, 64)
	dst := make([]byte, 64)
	wg := sim.NewWaitGroup(e, "dma", 0)
	done := wg.DoneC()
	op := func() {
		wg.Add(2)
		m.Memput(iop, cp, 0, src, time.Microsecond, sim.Completion{}, done)
		m.Memget(iop, cp, 64, dst, time.Microsecond, time.Microsecond, done)
		e.Run()
	}
	for i := 0; i < 8; i++ {
		op()
	}
	avg := testing.AllocsPerRun(200, op)
	if avg > 0 {
		t.Errorf("warm Memput+Memget allocates %.2f objects/op, want 0", avg)
	}
}

func TestGatherIsOneMessageEachWay(t *testing.T) {
	e, m := newMachine(t, 2, 2)
	dst := m.CPs[1]
	dst.Mem = make([]byte, 16)
	m.MemputGather(m.IOPs[0], dst, []MemSeg{{0, []byte{1}}, {8, []byte{2}}}, 0,
		sim.Completion{}, sim.Completion{})
	e.Run()
	if m.Net.Messages() != 1 {
		t.Fatalf("gather Memput used %d messages, want 1", m.Net.Messages())
	}
}
