package fault

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"

	"ddio/internal/sim"
)

func TestPlanEnabled(t *testing.T) {
	var nilPlan *Plan
	if nilPlan.Enabled() {
		t.Error("nil plan reports enabled")
	}
	if (&Plan{}).Enabled() {
		t.Error("zero plan reports enabled")
	}
	if (&Plan{RetryLimit: 3, RetryBackoff: time.Millisecond}).Enabled() {
		t.Error("retry-only plan reports enabled (injects nothing)")
	}
	for _, p := range []*Plan{
		{DiskErrorRate: 0.01, RetryLimit: 1},
		{Stragglers: 1, StragglerSlowdown: 2},
		{MsgLossRate: 0.01},
		{SpikeRate: 0.01, SpikeLatency: time.Microsecond},
	} {
		if !p.Enabled() {
			t.Errorf("plan %+v reports disabled", p)
		}
	}
}

func TestPlanValidate(t *testing.T) {
	cases := []struct {
		name   string
		plan   *Plan
		nDisks int
		want   string // substring of the error, "" for valid
	}{
		{"nil", nil, 0, ""},
		{"zero", &Plan{}, 16, ""},
		{"full valid", &Plan{
			Stragglers: 2, StragglerSlowdown: 4,
			SlowPeriod: 100 * time.Millisecond, SlowWindow: 20 * time.Millisecond,
			DiskErrorRate: 0.05, DiskErrorLatency: 2 * time.Millisecond,
			MsgLossRate: 0.02, ResendTimeout: 100 * time.Microsecond,
			SpikeRate: 0.01, SpikeLatency: 50 * time.Microsecond,
			RetryLimit: 4, RetryBackoff: time.Millisecond,
		}, 16, ""},
		{"negative disk rate", &Plan{DiskErrorRate: -0.1}, 0, "disk_error_rate"},
		{"disk rate above cap", &Plan{DiskErrorRate: 0.95, RetryLimit: 1}, 0, "disk_error_rate"},
		{"negative loss rate", &Plan{MsgLossRate: -1}, 0, "msg_loss_rate"},
		{"negative spike rate", &Plan{SpikeRate: -0.5}, 0, "spike_rate"},
		{"negative stragglers", &Plan{Stragglers: -1}, 0, "straggler count"},
		{"stragglers exceed disks", &Plan{Stragglers: 9, StragglerSlowdown: 2}, 8, "exceed"},
		{"stragglers fit disks", &Plan{Stragglers: 8, StragglerSlowdown: 2}, 8, ""},
		{"stragglers unchecked without shape", &Plan{Stragglers: 99, StragglerSlowdown: 2}, 0, ""},
		{"slowdown missing", &Plan{Stragglers: 1}, 0, "straggler_slowdown"},
		{"slowdown of 1", &Plan{Stragglers: 1, StragglerSlowdown: 1}, 0, "straggler_slowdown"},
		{"negative slowdown", &Plan{StragglerSlowdown: -2}, 0, "straggler_slowdown"},
		{"negative duration", &Plan{DiskErrorLatency: -time.Millisecond}, 0, "negative duration"},
		{"window without period", &Plan{SlowWindow: time.Millisecond}, 0, "slow_period"},
		{"window exceeds period", &Plan{SlowPeriod: time.Millisecond, SlowWindow: 2 * time.Millisecond}, 0, "exceeds slow_period"},
		{"negative retry limit", &Plan{RetryLimit: -1}, 0, "retry_limit"},
		{"errors without retry budget", &Plan{DiskErrorRate: 0.01}, 0, "retry_limit must be at least 1"},
		{"spike without latency", &Plan{SpikeRate: 0.01}, 0, "spike_latency"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.plan.Validate(tc.nDisks)
			if tc.want == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %v does not mention %q", err, tc.want)
			}
		})
	}
}

func TestPlanJSONRoundTrip(t *testing.T) {
	p := &Plan{
		Stragglers: 2, StragglerSlowdown: 4,
		SlowPeriod: 100 * time.Millisecond, SlowWindow: 20 * time.Millisecond,
		DiskErrorRate: 0.05, DiskErrorLatency: 2 * time.Millisecond,
		MsgLossRate: 0.02, ResendTimeout: 100 * time.Microsecond,
		SpikeRate: 0.01, SpikeLatency: 50 * time.Microsecond,
		RetryLimit: 4, RetryBackoff: time.Millisecond,
	}
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParsePlan(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, p) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, p)
	}
}

func TestParsePlanRejectsUnknownFields(t *testing.T) {
	if _, err := ParsePlan([]byte(`{"disk_error_rte": 0.1}`)); err == nil {
		t.Fatal("typoed field accepted")
	}
	if _, err := ParsePlan([]byte(`{"disk_error_rate": 0.1}`)); err == nil {
		t.Fatal("invalid plan (no retry budget) accepted")
	}
}

func TestResolvePlanInline(t *testing.T) {
	p, err := ResolvePlan(` {"msg_loss_rate": 0.02}`)
	if err != nil {
		t.Fatal(err)
	}
	if p.MsgLossRate != 0.02 {
		t.Fatalf("got %+v", p)
	}
	if _, err := ResolvePlan("/no/such/plan.json"); err == nil {
		t.Fatal("missing plan file accepted")
	}
}

func TestRetryPolicy(t *testing.T) {
	if (RetryPolicy{}).Enabled() {
		t.Error("zero policy reports enabled")
	}
	rp := (&Plan{RetryLimit: 3}).Retry()
	if rp.Backoff != DefaultRetryBackoff {
		t.Errorf("default backoff not applied: %v", rp.Backoff)
	}
	rp = RetryPolicy{Limit: 10, Backoff: time.Millisecond}
	for _, tc := range []struct {
		attempt int
		want    time.Duration
	}{
		{1, time.Millisecond},
		{2, 2 * time.Millisecond},
		{3, 4 * time.Millisecond},
		{7, 64 * time.Millisecond},
		{12, 64 * time.Millisecond}, // capped
	} {
		if got := rp.BackoffFor(tc.attempt); got != tc.want {
			t.Errorf("BackoffFor(%d) = %v, want %v", tc.attempt, got, tc.want)
		}
	}
	if got := (RetryPolicy{Limit: 2}).BackoffFor(1); got != 0 {
		t.Errorf("zero-backoff policy sleeps %v", got)
	}
}

func TestPlanSummary(t *testing.T) {
	var nilPlan *Plan
	if got := nilPlan.Summary(); got != "fault-free" {
		t.Errorf("nil plan summary %q", got)
	}
	if got := (&Plan{}).Summary(); got != "fault-free" {
		t.Errorf("zero plan summary %q", got)
	}
	p := &Plan{DiskErrorRate: 0.02, Stragglers: 2, StragglerSlowdown: 4, RetryLimit: 4}
	want := "disk-err 2.0%, 2 stragglers ×4, retry 4"
	if got := p.Summary(); got != want {
		t.Errorf("summary %q, want %q", got, want)
	}
}

func TestNewInjectorNilForDisabledPlans(t *testing.T) {
	rng := sim.NewRand(1)
	if in := NewInjector(nil, rng, 8); in != nil {
		t.Error("nil plan built an injector")
	}
	if in := NewInjector(&Plan{}, rng, 8); in != nil {
		t.Error("zero plan built an injector")
	}
	// The nil injector's whole handle surface must be usable.
	var in *Injector
	if in.Disk(3) != nil || in.Net() != nil || in.Retry().Enabled() ||
		in.Stats() != (Stats{}) || in.Stragglers() != nil {
		t.Error("nil injector handles not inert")
	}
	var df *DiskFaults
	if df.FailRequest() || df.ErrorLatency() != 0 || df.StragglerExtra(0, 100) != 0 {
		t.Error("nil DiskFaults not inert")
	}
	var nf *NetFaults
	nf.CountResend()
	if nf.Spike() != 0 || nf.DropMsg() || nf.ResendTimeout() != 0 {
		t.Error("nil NetFaults not inert")
	}
}

func TestInjectorDeterministic(t *testing.T) {
	plan := &Plan{
		Stragglers: 2, StragglerSlowdown: 4,
		DiskErrorRate: 0.2, MsgLossRate: 0.1,
		SpikeRate: 0.05, SpikeLatency: 50 * time.Microsecond,
		RetryLimit: 3,
	}
	draw := func() ([]int, []bool, []bool) {
		in := NewInjector(plan, sim.NewRand(42), 8)
		var fails, drops []bool
		for i := 0; i < 200; i++ {
			fails = append(fails, in.Disk(i%8).FailRequest())
			_ = in.Net().Spike()
			drops = append(drops, in.Net().DropMsg())
		}
		return in.Stragglers(), fails, drops
	}
	s1, f1, d1 := draw()
	s2, f2, d2 := draw()
	if !reflect.DeepEqual(s1, s2) || !reflect.DeepEqual(f1, f2) || !reflect.DeepEqual(d1, d2) {
		t.Fatal("same seed + plan produced different fault sequences")
	}
	if len(s1) != 2 {
		t.Fatalf("straggler set %v, want 2 disks", s1)
	}
	// A different seed must reshuffle at least something across 200 draws.
	in := NewInjector(plan, sim.NewRand(43), 8)
	var f3 []bool
	for i := 0; i < 200; i++ {
		f3 = append(f3, in.Disk(i%8).FailRequest())
	}
	if reflect.DeepEqual(f1, f3) {
		t.Fatal("different seeds produced identical fault sequences")
	}
}

func TestInjectorHealthyDisksGetNoHandle(t *testing.T) {
	plan := &Plan{Stragglers: 1, StragglerSlowdown: 4}
	in := NewInjector(plan, sim.NewRand(7), 8)
	s := in.Stragglers()
	if len(s) != 1 {
		t.Fatalf("straggler set %v", s)
	}
	for d := 0; d < 8; d++ {
		h := in.Disk(d)
		if d == s[0] {
			if h == nil {
				t.Fatalf("straggler %d has no handle", d)
			}
			if h.FailRequest() {
				t.Error("straggler without error rate failed a request")
			}
			if h.StragglerExtra(0, 1000) != 3000 {
				t.Errorf("slowdown 4 over 1000ns gave extra %v", h.StragglerExtra(0, 1000))
			}
			continue
		}
		if h != nil {
			t.Errorf("healthy disk %d got a handle", d)
		}
	}
	if in.Disk(100) != nil {
		t.Error("out-of-range disk got a handle")
	}
}

func TestStragglerWindows(t *testing.T) {
	f := &DiskFaults{
		straggler: true, scale: 3,
		period: time.Duration(1000), window: time.Duration(400),
	}
	// Start inside the window → slowed.
	if got := f.StragglerExtra(sim.Time(2100), sim.Time(2200)); got != 200 {
		t.Errorf("in-window extra %v, want 200", got)
	}
	// Start outside the window → full speed.
	if got := f.StragglerExtra(sim.Time(2600), sim.Time(2700)); got != 0 {
		t.Errorf("out-of-window extra %v, want 0", got)
	}
	// No period → always slow.
	f.period, f.window = 0, 0
	if got := f.StragglerExtra(sim.Time(2600), sim.Time(2700)); got != 200 {
		t.Errorf("always-slow extra %v, want 200", got)
	}
}

func TestInjectorStatsCount(t *testing.T) {
	plan := &Plan{DiskErrorRate: 0.9, MsgLossRate: 0.9, RetryLimit: 1}
	in := NewInjector(plan, sim.NewRand(1), 2)
	for i := 0; i < 100; i++ {
		in.Disk(0).FailRequest()
		if in.Net().DropMsg() {
			in.Net().CountResend()
		}
	}
	st := in.Stats()
	if st.DiskErrors == 0 || st.DroppedMsgs == 0 {
		t.Fatalf("stats did not count: %+v", st)
	}
	if st.Resends != st.DroppedMsgs {
		t.Fatalf("resends %d != drops %d", st.Resends, st.DroppedMsgs)
	}
}
