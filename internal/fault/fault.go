// Package fault is the simulator's deterministic fault-injection layer:
// disk stragglers, transient disk errors, and interconnect message loss
// and latency spikes, all driven by dedicated PRNG sub-streams of the
// run's seed so that identical seed + identical Plan reproduce the
// identical fault sequence — and the identical recovery cost — for any
// worker count.
//
// The layer follows the same contract as internal/trace: it is wired
// into the disk and network layers behind nil-safe handles, so a run
// with no Plan (or an all-zero Plan) performs exactly the same draws and
// fires exactly the same events as a build without this package. The
// recovery half — bounded retry with modeled backoff — lives in the
// file-system servers (core, tcfs; the two-phase path rides on tcfs),
// parameterized by the Plan's RetryPolicy, so recovery time is paid in
// simulated time and measured, never hand-waved.
package fault

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"
)

// Default recovery-model costs, applied when the corresponding Plan
// field is zero. They are deliberately large against the HP 97560's
// ~20 ms average access: a transient error costs the drive an internal
// retry/remap cycle, a lost message a protocol timeout.
const (
	// DefaultDiskErrorLatency is the drive-internal recovery time a
	// failed request burns before the error is reported.
	DefaultDiskErrorLatency = 2 * time.Millisecond
	// DefaultResendTimeout is the sender-side timeout before a dropped
	// message is retransmitted.
	DefaultResendTimeout = 200 * time.Microsecond
	// DefaultRetryBackoff is the server-side backoff before the first
	// disk-request retry (doubling per attempt, see RetryPolicy).
	DefaultRetryBackoff = time.Millisecond
)

// Plan declares what misbehaves during a run. The zero value (and a nil
// *Plan) injects nothing; Enabled reports whether any fault model is
// active. Plans serialize to JSON (all durations are nanosecond
// integers) so degradation sweeps can be defined in spec files and
// reproduced exactly.
type Plan struct {
	// Stragglers is the number of disks whose service is slowed. The
	// subset is drawn from the run seed's "fault-straggler" stream, so
	// it is stable per seed and independent of every other stream.
	Stragglers int `json:"stragglers,omitempty"`
	// StragglerSlowdown scales a straggler's service time (must exceed
	// 1 when Stragglers > 0; 4 means the disk is 4× slower).
	StragglerSlowdown float64 `json:"straggler_slowdown,omitempty"`
	// SlowPeriod/SlowWindow confine the slowdown to periodic windows:
	// a straggler is slow while (now mod SlowPeriod) < SlowWindow.
	// Both zero means the straggler is slow for the whole run.
	SlowPeriod time.Duration `json:"slow_period_ns,omitempty"`
	SlowWindow time.Duration `json:"slow_window_ns,omitempty"`

	// DiskErrorRate is the per-request transient-failure probability,
	// drawn from a dedicated per-disk stream ("fault-disk:<i>"). A
	// failed request burns DiskErrorLatency of drive time and reports
	// disk.ErrTransient instead of moving data.
	DiskErrorRate    float64       `json:"disk_error_rate,omitempty"`
	DiskErrorLatency time.Duration `json:"disk_error_latency_ns,omitempty"`

	// MsgLossRate is the per-traversal probability that an interconnect
	// message is dropped in the fabric; the sender retransmits after
	// ResendTimeout, re-occupying its NIC for the full message.
	MsgLossRate   float64       `json:"msg_loss_rate,omitempty"`
	ResendTimeout time.Duration `json:"resend_timeout_ns,omitempty"`
	// SpikeRate is the per-traversal probability that a message's
	// fabric latency grows by SpikeLatency (congestion transients).
	SpikeRate    float64       `json:"spike_rate,omitempty"`
	SpikeLatency time.Duration `json:"spike_latency_ns,omitempty"`

	// RetryLimit bounds how many times a file-system server resubmits a
	// failed disk request (at least 1 whenever DiskErrorRate > 0 —
	// injecting errors with no retry budget is a spec error, not silent
	// data loss). RetryBackoff is the pre-retry sleep, doubling per
	// attempt.
	RetryLimit   int           `json:"retry_limit,omitempty"`
	RetryBackoff time.Duration `json:"retry_backoff_ns,omitempty"`
}

// Enabled reports whether the plan injects any fault at all. A nil or
// all-zero plan is disabled: runs behave bit-identically to builds
// without fault injection.
func (p *Plan) Enabled() bool {
	if p == nil {
		return false
	}
	return p.Stragglers > 0 || p.DiskErrorRate > 0 || p.MsgLossRate > 0 || p.SpikeRate > 0
}

// Clone returns a copy of the plan (nil-safe; cloning nil yields a zero
// plan). Sweep axes clone before mutating so cells never share state.
func (p *Plan) Clone() *Plan {
	c := new(Plan)
	if p != nil {
		*c = *p
	}
	return c
}

// Validate checks the plan's internal consistency. nDisks, when
// positive, bounds the straggler count; pass 0 when the machine shape
// is not yet known (sweep templates).
func (p *Plan) Validate(nDisks int) error {
	if p == nil {
		return nil
	}
	switch {
	case p.DiskErrorRate < 0 || p.DiskErrorRate > 0.9:
		return fmt.Errorf("fault: disk_error_rate %v outside [0, 0.9]", p.DiskErrorRate)
	case p.MsgLossRate < 0 || p.MsgLossRate > 0.9:
		return fmt.Errorf("fault: msg_loss_rate %v outside [0, 0.9]", p.MsgLossRate)
	case p.SpikeRate < 0 || p.SpikeRate > 0.9:
		return fmt.Errorf("fault: spike_rate %v outside [0, 0.9]", p.SpikeRate)
	case p.Stragglers < 0:
		return fmt.Errorf("fault: negative straggler count %d", p.Stragglers)
	case nDisks > 0 && p.Stragglers > nDisks:
		return fmt.Errorf("fault: %d stragglers exceed %d disks", p.Stragglers, nDisks)
	case p.Stragglers > 0 && p.StragglerSlowdown <= 1:
		return fmt.Errorf("fault: straggler_slowdown %v must exceed 1 when stragglers are enabled", p.StragglerSlowdown)
	case p.StragglerSlowdown < 0:
		return fmt.Errorf("fault: negative straggler_slowdown %v", p.StragglerSlowdown)
	case p.SlowPeriod < 0 || p.SlowWindow < 0 || p.DiskErrorLatency < 0 ||
		p.ResendTimeout < 0 || p.SpikeLatency < 0 || p.RetryBackoff < 0:
		return fmt.Errorf("fault: negative duration in plan")
	case p.SlowWindow > 0 && p.SlowPeriod == 0:
		return fmt.Errorf("fault: slow_window_ns needs a slow_period_ns")
	case p.SlowPeriod > 0 && p.SlowWindow > p.SlowPeriod:
		return fmt.Errorf("fault: slow_window_ns %v exceeds slow_period_ns %v", p.SlowWindow, p.SlowPeriod)
	case p.RetryLimit < 0:
		return fmt.Errorf("fault: negative retry_limit %d", p.RetryLimit)
	case p.DiskErrorRate > 0 && p.RetryLimit < 1:
		return fmt.Errorf("fault: retry_limit must be at least 1 when disk_error_rate > 0")
	case p.SpikeRate > 0 && p.SpikeLatency <= 0:
		return fmt.Errorf("fault: spike_rate needs a positive spike_latency_ns")
	}
	return nil
}

// Retry returns the plan's retry policy with defaults applied (nil-safe;
// a nil plan yields a zero policy, i.e. no retries).
func (p *Plan) Retry() RetryPolicy {
	if p == nil {
		return RetryPolicy{}
	}
	rp := RetryPolicy{Limit: p.RetryLimit, Backoff: p.RetryBackoff}
	if rp.Limit > 0 && rp.Backoff == 0 {
		rp.Backoff = DefaultRetryBackoff
	}
	return rp
}

// Summary renders the plan compactly for figure subtitles and logs.
func (p *Plan) Summary() string {
	if p == nil {
		return "fault-free"
	}
	var parts []string
	if p.DiskErrorRate > 0 {
		parts = append(parts, fmt.Sprintf("disk-err %.1f%%", p.DiskErrorRate*100))
	}
	if p.Stragglers > 0 {
		parts = append(parts, fmt.Sprintf("%d stragglers ×%.3g", p.Stragglers, p.StragglerSlowdown))
	}
	if p.MsgLossRate > 0 {
		parts = append(parts, fmt.Sprintf("loss %.1f%%", p.MsgLossRate*100))
	}
	if p.SpikeRate > 0 {
		parts = append(parts, fmt.Sprintf("spikes %.1f%%", p.SpikeRate*100))
	}
	if p.RetryLimit > 0 {
		parts = append(parts, fmt.Sprintf("retry %d", p.RetryLimit))
	}
	if len(parts) == 0 {
		return "fault-free"
	}
	return strings.Join(parts, ", ")
}

// ParsePlan parses a JSON fault plan. Unknown fields are rejected so
// typos in hand-written plans fail loudly, and the parsed plan is
// validated (without a machine shape; straggler count is re-checked
// against the configured disks at run time).
func ParsePlan(data []byte) (*Plan, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var p Plan
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("fault: parsing plan: %w", err)
	}
	if err := p.Validate(0); err != nil {
		return nil, err
	}
	return &p, nil
}

// ResolvePlan turns a -faults flag argument into a plan: inline JSON
// (first non-space byte '{') or a path to a JSON plan file.
func ResolvePlan(arg string) (*Plan, error) {
	if strings.HasPrefix(strings.TrimSpace(arg), "{") {
		return ParsePlan([]byte(arg))
	}
	data, err := os.ReadFile(arg)
	if err != nil {
		return nil, fmt.Errorf("fault: %q is neither inline JSON nor a readable plan file: %w", arg, err)
	}
	return ParsePlan(data)
}

// RetryPolicy bounds a file-system server's disk-request retries.
type RetryPolicy struct {
	// Limit is the maximum number of resubmissions per request (0
	// disables retries entirely).
	Limit int
	// Backoff is the modeled sleep before the first retry; it doubles
	// per attempt (capped at 64× so virtual time cannot overflow).
	Backoff time.Duration
}

// Enabled reports whether the policy retries at all.
func (rp RetryPolicy) Enabled() bool { return rp.Limit > 0 }

// BackoffFor returns the sleep before resubmission number attempt
// (1-based): Backoff doubled per prior attempt.
func (rp RetryPolicy) BackoffFor(attempt int) time.Duration {
	if rp.Backoff <= 0 {
		return 0
	}
	shift := attempt - 1
	if shift < 0 {
		shift = 0
	}
	if shift > 6 {
		shift = 6
	}
	return rp.Backoff << shift
}
