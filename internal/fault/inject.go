package fault

import (
	"fmt"
	"sort"
	"time"

	"ddio/internal/sim"
)

// Stats counts what the injector did to one run. The engine is
// single-threaded, so plain counters suffice; the recovery-side
// counters (retries, recoveries, losses) live in the file-system
// servers' metrics, since the servers own the retry loops.
type Stats struct {
	DiskErrors  int64 // transient disk-request failures injected
	DroppedMsgs int64 // interconnect messages dropped in the fabric
	Resends     int64 // retransmissions (equals DroppedMsgs: every drop is resent)
	Spikes      int64 // latency spikes injected
}

// Injector is one run's fault state: per-disk error streams, the
// straggler set, and the network fault stream, all derived from the
// run's root seed by label so no stream perturbs any other (the layout
// and jitter streams of a fault-free run draw identically whether or
// not an injector exists). Build one per run with NewInjector; a nil
// *Injector — and every handle it hands out — is a valid "faults off"
// injector.
type Injector struct {
	plan  Plan
	disks []*DiskFaults
	net   *NetFaults
	stats Stats
}

// NewInjector builds the injector for a run, or returns nil when the
// plan is nil or injects nothing — the nil injector keeps the fault-free
// path bit-identical to builds without fault injection.
func NewInjector(p *Plan, rng *sim.Rand, nDisks int) *Injector {
	if !p.Enabled() {
		return nil
	}
	in := &Injector{plan: *p}
	if in.plan.DiskErrorLatency == 0 {
		in.plan.DiskErrorLatency = DefaultDiskErrorLatency
	}
	if in.plan.ResendTimeout == 0 {
		in.plan.ResendTimeout = DefaultResendTimeout
	}
	straggler := make([]bool, nDisks)
	if n := in.plan.Stragglers; n > 0 {
		if n > nDisks {
			n = nDisks
		}
		for _, d := range rng.Stream("fault-straggler").Perm(nDisks)[:n] {
			straggler[d] = true
		}
	}
	in.disks = make([]*DiskFaults, nDisks)
	for d := 0; d < nDisks; d++ {
		if in.plan.DiskErrorRate == 0 && !straggler[d] {
			continue // healthy disk: no handle, no draws
		}
		f := &DiskFaults{
			errRate:   in.plan.DiskErrorRate,
			errLat:    in.plan.DiskErrorLatency,
			straggler: straggler[d],
			scale:     in.plan.StragglerSlowdown,
			period:    in.plan.SlowPeriod,
			window:    in.plan.SlowWindow,
			stats:     &in.stats,
		}
		if f.errRate > 0 {
			f.rng = rng.Stream(fmt.Sprintf("fault-disk:%d", d))
		}
		in.disks[d] = f
	}
	if in.plan.MsgLossRate > 0 || in.plan.SpikeRate > 0 {
		in.net = &NetFaults{
			rng:       rng.Stream("fault-net"),
			loss:      in.plan.MsgLossRate,
			spikeRate: in.plan.SpikeRate,
			spikeLat:  in.plan.SpikeLatency,
			rto:       in.plan.ResendTimeout,
			stats:     &in.stats,
		}
	}
	return in
}

// Disk returns the fault handle for disk d (nil when the injector is
// nil or disk d is healthy — the disk layer treats nil as faults off).
func (in *Injector) Disk(d int) *DiskFaults {
	if in == nil || d >= len(in.disks) {
		return nil
	}
	return in.disks[d]
}

// Net returns the network fault handle (nil when faults are off).
func (in *Injector) Net() *NetFaults {
	if in == nil {
		return nil
	}
	return in.net
}

// Retry returns the plan's retry policy (zero when the injector is nil).
func (in *Injector) Retry() RetryPolicy {
	if in == nil {
		return RetryPolicy{}
	}
	return in.plan.Retry()
}

// Stats returns a copy of the injection counters.
func (in *Injector) Stats() Stats {
	if in == nil {
		return Stats{}
	}
	return in.stats
}

// Stragglers returns the slowed disks' indices in ascending order
// (diagnostic).
func (in *Injector) Stragglers() []int {
	if in == nil {
		return nil
	}
	var out []int
	for d, f := range in.disks {
		if f != nil && f.straggler {
			out = append(out, d)
		}
	}
	sort.Ints(out)
	return out
}

// DiskFaults is one disk's fault state. All methods are nil-safe no-ops
// so the disk layer pays one nil check when faults are off.
type DiskFaults struct {
	rng       *sim.Rand // per-disk error stream, nil when errRate == 0
	errRate   float64
	errLat    time.Duration
	straggler bool
	scale     float64
	period    time.Duration
	window    time.Duration
	stats     *Stats
}

// FailRequest draws whether the next request fails transiently. Each
// call advances this disk's private stream only, so disks' fault fates
// are independent and stable under machine-shape changes elsewhere.
func (f *DiskFaults) FailRequest() bool {
	if f == nil || f.errRate == 0 {
		return false
	}
	if f.rng.Float64() >= f.errRate {
		return false
	}
	f.stats.DiskErrors++
	return true
}

// ErrorLatency is the drive time a failed request burns before the
// error is reported.
func (f *DiskFaults) ErrorLatency() time.Duration {
	if f == nil {
		return 0
	}
	return f.errLat
}

// StragglerExtra returns the additional service time a straggler owes
// for a request serviced over [start, end): elapsed × (slowdown − 1)
// when the service began inside a slow window (always, if no period is
// configured). Deterministic — a pure function of the service interval —
// so straggling never perturbs any PRNG stream.
func (f *DiskFaults) StragglerExtra(start, end sim.Time) time.Duration {
	if f == nil || !f.straggler || end <= start {
		return 0
	}
	if f.period > 0 && time.Duration(start%sim.Time(f.period)) >= f.window {
		return 0
	}
	return time.Duration(float64(end-start) * (f.scale - 1))
}

// NetFaults is the interconnect's fault state. All methods are nil-safe
// no-ops.
type NetFaults struct {
	rng       *sim.Rand
	loss      float64
	spikeRate float64
	spikeLat  time.Duration
	rto       time.Duration
	stats     *Stats
}

// Spike draws whether this fabric traversal suffers a latency spike,
// returning the extra latency (0 for no spike). Drawn before DropMsg so
// the draw order per traversal is fixed.
func (f *NetFaults) Spike() time.Duration {
	if f == nil || f.spikeRate == 0 {
		return 0
	}
	if f.rng.Float64() >= f.spikeRate {
		return 0
	}
	f.stats.Spikes++
	return f.spikeLat
}

// DropMsg draws whether this fabric traversal loses the message.
func (f *NetFaults) DropMsg() bool {
	if f == nil || f.loss == 0 {
		return false
	}
	if f.rng.Float64() >= f.loss {
		return false
	}
	f.stats.DroppedMsgs++
	return true
}

// ResendTimeout is the sender-side timeout before retransmission.
func (f *NetFaults) ResendTimeout() time.Duration {
	if f == nil {
		return 0
	}
	return f.rto
}

// CountResend records one retransmission.
func (f *NetFaults) CountResend() {
	if f == nil {
		return
	}
	f.stats.Resends++
}
