// Sensitivity runs a miniature of the paper's Figure 5: throughput as
// the number of compute processors varies, for the ra/rn/rb/rc patterns
// under both file systems. Disk-directed I/O is flat — it never depends
// on how many CPs the data is scattered over — while traditional caching
// starves with few CPs on 1-block cyclic records.
//
//	go run ./examples/sensitivity
package main

import (
	"fmt"
	"log"

	"ddio"
)

func main() {
	opt := ddio.DefaultOptions()
	opt.Trials = 1
	opt.FileBytes = 2 * ddio.MiB
	opt.Progress = func(line string) { fmt.Println("  ", line) }

	table, err := ddio.Figure5(opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println(table.Format())
}
