// Outofcore models the paper's other motivating workload (§2): an
// out-of-core algorithm that processes a data set too large for memory
// in "memoryloads" — repeatedly reading a slab of a scratch file,
// computing on it, and writing it back. Each transfer is large but its
// pieces land cyclically across the CPs, so the pattern stresses exactly
// what collective I/O is for.
//
//	go run ./examples/outofcore
package main

import (
	"fmt"
	"log"
	"time"

	"ddio"
)

func main() {
	const sweeps = 3
	fmt.Printf("Out-of-core sweep: %d x (read slab, compute, write slab), cyclic records\n\n", sweeps)

	for _, method := range []ddio.Method{ddio.TraditionalCaching, ddio.DiskDirectedSort} {
		var ioTime time.Duration
		for s := 0; s < sweeps; s++ {
			ioTime += transfer(method, "rc") // load the slab
			ioTime += transfer(method, "wc") // store the updated slab
		}
		fmt.Printf("  %-10v total I/O time %8v for %d sweeps\n",
			method, ioTime.Round(time.Millisecond), sweeps)
	}
	fmt.Println("\nThe scratch file never changes layout; only the file-system software")
	fmt.Println("differs. Disk-directed I/O turns every memoryload into one collective")
	fmt.Println("request per IOP instead of thousands of per-record calls.")
}

// transfer runs one whole-slab collective transfer and returns the
// simulated I/O time.
func transfer(method ddio.Method, pattern string) time.Duration {
	cfg := ddio.DefaultConfig()
	cfg.Method = method
	cfg.Pattern = pattern
	cfg.Layout = ddio.RandomBlocks
	cfg.FileBytes = 2 * ddio.MiB // one memoryload slab
	cfg.RecordSize = 1024
	res, err := ddio.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	return res.Elapsed
}
