// Matrixload reproduces the paper's motivating scenario (§2): a large
// two-dimensional matrix, stored row-major in a striped file, is loaded
// into memories distributed BLOCK×BLOCK over a 4×4 grid of compute
// processors — and the same under the harder CYCLIC×CYCLIC distribution,
// whose 8-byte chunks are what break traditional caching.
//
//	go run ./examples/matrixload
package main

import (
	"fmt"
	"log"

	"ddio"
)

func main() {
	fmt.Println("Loading a distributed matrix (10 MiB, 16 CPs, 16 disks, random layout)")
	fmt.Println()
	fmt.Printf("%-28s %12s %12s %10s\n", "distribution", "TC MB/s", "DDIO+sort", "speedup")

	for _, c := range []struct {
		label   string
		pattern string
		record  int
	}{
		{"BLOCK x BLOCK, 8 KB recs", "rbb", 8192},
		{"CYCLIC x BLOCK, 8 KB recs", "rcb", 8192},
		{"BLOCK x BLOCK, 8 B recs", "rbb", 8},
		{"CYCLIC x CYCLIC, 8 B recs", "rcc", 8},
	} {
		cfg := ddio.DefaultConfig()
		cfg.Layout = ddio.RandomBlocks
		cfg.Pattern = c.pattern
		cfg.RecordSize = c.record

		cfg.Method = ddio.TraditionalCaching
		tc, err := ddio.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Method = ddio.DiskDirectedSort
		dd, err := ddio.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s %12.2f %12.2f %9.1fx\n", c.label, tc.MBps, dd.MBps, dd.MBps/tc.MBps)
	}
	fmt.Println()
	fmt.Println("Disk-directed throughput is nearly independent of the distribution;")
	fmt.Println("traditional caching collapses once chunks shrink to single records.")
}
