// Quickstart: run one collective-read experiment under both file systems
// and print their throughput.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ddio"
)

func main() {
	cfg := ddio.DefaultConfig() // the paper's Table 1 machine
	cfg.Pattern = "rb"          // HPF BLOCK distribution over 16 CPs
	cfg.Layout = ddio.RandomBlocks
	cfg.FileBytes = 2 * ddio.MiB // small file: quick demo

	fmt.Printf("collective read, pattern %s, %s layout, %d MiB file\n\n",
		cfg.Pattern, cfg.Layout, cfg.FileBytes/ddio.MiB)
	for _, method := range []ddio.Method{
		ddio.TraditionalCaching, ddio.DiskDirected, ddio.DiskDirectedSort,
	} {
		cfg.Method = method
		res, err := ddio.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-10v %6.2f MB/s  (elapsed %v, %d disk reads, verified)\n",
			method, res.MBps, res.Elapsed.Round(100_000), res.Disk.Reads)
	}
	fmt.Println("\nDisk-directed I/O wins by eliminating per-request IOP software")
	fmt.Println("costs and presorting the block list by physical location.")
}
