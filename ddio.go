// Package ddio reproduces "Disk-directed I/O for MIMD Multiprocessors"
// (David Kotz, OSDI 1994): a complete simulated MIMD multiprocessor —
// HP 97560 disks, SCSI busses, a wormhole-routed torus interconnect,
// compute and I/O processors — together with three parallel file
// systems: the paper's traditional-caching baseline, its disk-directed
// I/O contribution (with and without physical presorting), and the
// contemporaneous two-phase I/O alternative.
//
// The top-level API runs whole-file transfer experiments:
//
//	cfg := ddio.DefaultConfig()       // the paper's Table 1 machine
//	cfg.Method = ddio.DiskDirectedSort
//	cfg.Pattern = "rc"                // HPF CYCLIC, Figure 2
//	res, err := ddio.Run(cfg)
//	fmt.Printf("%.1f MB/s\n", res.MBps)
//
// Every simulated transfer moves real bytes and is verified end to end.
// Figure3 … Figure8 regenerate the paper's evaluation; README.md maps
// each figure to its command and benchmark, and ARCHITECTURE.md tours
// the simulation stack underneath.
package ddio

import (
	"ddio/internal/disk"
	"ddio/internal/exp"
	"ddio/internal/fault"
	"ddio/internal/hpf"
	"ddio/internal/pfs"
	"ddio/internal/plot"
	"ddio/internal/serve"
	"ddio/internal/trace"
	"ddio/internal/workload"
)

// MiB is 2^20 bytes; the paper's "Mbytes/s" are MiB/s.
const MiB = exp.MiB

// Config describes one experiment: machine shape, file, access pattern,
// layout, and file-system method. See DefaultConfig.
type Config = exp.Config

// Result reports one experiment's throughput and substrate metrics.
type Result = exp.Result

// Trial aggregates replicated runs (mean throughput and coefficient of
// variation).
type Trial = exp.Trial

// Method selects the file system under test.
type Method = exp.Method

// File-system methods.
const (
	// TraditionalCaching is the Intel CFS-style baseline (Figure 1a).
	TraditionalCaching = exp.TraditionalCaching
	// DiskDirected is disk-directed I/O without the block presort.
	DiskDirected = exp.DiskDirected
	// DiskDirectedSort is full disk-directed I/O (Figure 1c).
	DiskDirectedSort = exp.DiskDirectedSort
	// TwoPhase is del Rosario/Bordawekar/Choudhary two-phase I/O (§7.1).
	TwoPhase = exp.TwoPhase
)

// LayoutKind selects the physical placement of file blocks on disk.
type LayoutKind = pfs.LayoutKind

// Disk layouts (paper §5).
const (
	Contiguous   = pfs.Contiguous
	RandomBlocks = pfs.RandomBlocks
)

// DiskSpec describes a disk-drive model.
type DiskSpec = disk.Spec

// Table is one regenerated figure or table.
type Table = exp.Table

// Options control figure regeneration (trials, file size, seed).
type Options = exp.Options

// SweepSpec declaratively describes a machine/workload scale sweep: one
// axis (CPs, IOPs, disks, or record size) crossed with a pattern ×
// method grid. Figures 5–8 are built-in specs; see SweepPresets and
// EXPERIMENTS.md.
type SweepSpec = exp.SweepSpec

// SweepResult is the machine-readable outcome of one executed sweep:
// the spec, the rendered table, and per-cell trial statistics.
type SweepResult = exp.SweepResult

// DefaultConfig returns the paper's Table 1 configuration: 16 CPs and 16
// IOPs on a 6×6 torus, 16 HP 97560 disks on one SCSI bus per IOP, and a
// 10 MB file in 8 KB blocks.
func DefaultConfig() Config { return exp.DefaultConfig() }

// DefaultOptions mirrors the paper's experimental design: five trials of
// a 10 MB file.
func DefaultOptions() Options { return exp.DefaultOptions() }

// HP97560 returns the paper's disk model: a 1.3 GB HP 97560 (Ruemmler &
// Wilkes parameters).
func HP97560() *DiskSpec { return disk.HP97560() }

// Runner executes independent experiment runs on a bounded worker pool,
// with results slotted by index so output is bit-identical to a
// sequential run regardless of worker count.
type Runner = exp.Runner

// NewRunner returns a runner with the given concurrency (workers <= 0
// selects GOMAXPROCS) and optional serialized progress sink.
func NewRunner(workers int, progress func(string)) *Runner {
	return exp.NewRunner(workers, progress)
}

// Run executes one experiment.
func Run(cfg Config) (*Result, error) { return exp.Run(cfg) }

// RunTrials replicates cfg n times with independent seeds and aggregates
// throughput.
func RunTrials(cfg Config, n int) (*Trial, error) { return exp.Trials(cfg, n) }

// ParseMethod converts a method name ("tc", "ddio", "ddio-sort",
// "2phase") to a Method.
func ParseMethod(s string) (Method, error) { return exp.ParseMethod(s) }

// ParseLayout converts a layout name ("contiguous", "random") to its
// kind.
func ParseLayout(s string) (LayoutKind, error) { return pfs.ParseLayout(s) }

// ReadPatterns returns the paper's read patterns in display order.
func ReadPatterns() []string { return hpf.ReadPatterns() }

// WritePatterns returns the paper's write patterns in display order.
func WritePatterns() []string { return hpf.WritePatterns() }

// AllPatterns returns every pattern of Figures 3 and 4.
func AllPatterns() []string { return hpf.AllPatterns() }

// Figure3 regenerates Figure 3 (random-blocks layout; returns the
// 8-byte and 8192-byte record tables).
func Figure3(o Options) ([]*Table, error) { return exp.Figure3(o) }

// Figure4 regenerates Figure 4 (contiguous layout).
func Figure4(o Options) ([]*Table, error) { return exp.Figure4(o) }

// Figure5 regenerates Figure 5 (varying the number of CPs).
func Figure5(o Options) (*Table, error) { return exp.Figure5(o) }

// Figure6 regenerates Figure 6 (varying the number of IOPs/busses).
func Figure6(o Options) (*Table, error) { return exp.Figure6(o) }

// Figure7 regenerates Figure 7 (varying disks, one bus, contiguous).
func Figure7(o Options) (*Table, error) { return exp.Figure7(o) }

// Figure8 regenerates Figure 8 (varying disks, one bus, random layout).
func Figure8(o Options) (*Table, error) { return exp.Figure8(o) }

// Table1 renders the simulator parameters (the paper's Table 1).
func Table1() string { return exp.Table1() }

// SweepPresets returns the built-in sweep specs: the fig5-paper…
// fig8-paper presets behind Figure5…Figure8 and the extended presets
// that push those figures past the paper's 16 CPs/IOPs/disks.
func SweepPresets() []*SweepSpec { return exp.Presets() }

// LookupSweepPreset returns a fresh copy of the named built-in preset.
func LookupSweepPreset(name string) (*SweepSpec, bool) { return exp.LookupPreset(name) }

// ParseSweepSpec parses and validates a JSON sweep-spec file (see
// EXPERIMENTS.md for the format).
func ParseSweepSpec(data []byte) (*SweepSpec, error) { return exp.ParseSweepSpec(data) }

// FaultPlan declares deterministic fault injection for a run: disk
// stragglers, transient disk errors, interconnect message loss and
// latency spikes, plus the servers' bounded-retry recovery policy (see
// internal/fault). Assign one to Config.Faults; nil injects nothing and
// leaves runs byte-identical to a build without fault injection.
type FaultPlan = fault.Plan

// FaultTotals aggregates a run's injected faults and recovery outcomes
// (Result.Faults). DiskErrors always equals Retries + Exhausted: every
// injected error is either retried away or reported as a loss, never
// silent.
type FaultTotals = exp.FaultTotals

// ParseFaultPlan parses and validates a JSON fault plan (durations are
// nanosecond integers; see EXPERIMENTS.md).
func ParseFaultPlan(data []byte) (*FaultPlan, error) { return fault.ParsePlan(data) }

// ResolveFaultPlan turns a -faults style argument — inline JSON (starts
// with '{') or a path to a plan file — into a validated plan.
func ResolveFaultPlan(arg string) (*FaultPlan, error) { return fault.ResolvePlan(arg) }

// WorkloadSpec declares per-CP request streams for a run — synthetic
// access patterns (uniform, skewed, hotspot, Zipf, plus the paper's
// collective patterns), record-size mixes, read/write fractions, and
// arrival processes (closed-loop think time or open Poisson), in
// multi-phase sequences separated by barriers — or a replayed block
// trace (see internal/workload). Assign one to Config.Workload; nil
// keeps the classic whole-file collective transfer and leaves runs
// byte-identical to a build without the workload layer.
type WorkloadSpec = workload.Spec

// WorkloadPhase is one phase of a WorkloadSpec.
type WorkloadPhase = workload.Phase

// ParseWorkload parses and validates a JSON workload spec (durations
// are nanosecond integers; see EXPERIMENTS.md "Workloads and trace
// replay").
func ParseWorkload(data []byte) (*WorkloadSpec, error) { return workload.Parse(data) }

// ResolveWorkload turns a -workload style argument — inline JSON
// (starts with '{'), a path to a spec file, or a path to a .csv block
// trace — into a validated spec.
func ResolveWorkload(arg string) (*WorkloadSpec, error) { return workload.ResolveSpec(arg) }

// LoadTrace reads a CSV block trace (time,node,op,offset,bytes; see
// EXPERIMENTS.md) into a single-phase replay spec.
func LoadTrace(path string) (*WorkloadSpec, error) { return workload.LoadTrace(path) }

// TraceRecorder is a passive event-trace recorder (see internal/trace):
// attached to a run it captures disk busy/idle intervals, queue depths,
// request lifecycles, cache occupancy, and interconnect messages as a
// deterministic seq-ordered stream with JSONL/CSV emitters and derived
// utilization, bandwidth, and latency views.
type TraceRecorder = trace.Recorder

// TraceEvent is one trace record.
type TraceEvent = trace.Event

// NewTraceRecorder returns an empty enabled recorder; assign it to
// Config.Trace (or use TracedRun) before running.
func NewTraceRecorder() *TraceRecorder { return trace.New() }

// TracedRun executes one experiment with a fresh trace recorder
// attached. Tracing is passive: the run fires the identical event
// sequence and reports the identical throughput as an untraced run.
func TracedRun(cfg Config) (*Result, *TraceRecorder, error) { return exp.TracedRun(cfg) }

// SweepFigureSVG renders an executed sweep as a paper-style SVG line
// figure (the plot counterpart of the Figure 5–8 tables).
func SweepFigureSVG(res *SweepResult) string { return plot.SweepFigure(res) }

// SweepTimeFigureSVG renders a degradation sweep's completion-time
// companion figure (empty string for fault-free sweeps, which carry no
// per-cell times).
func SweepTimeFigureSVG(res *SweepResult) string { return plot.SweepTimeFigure(res) }

// FigureSVG renders a regenerated table in its natural SVG form:
// grouped bars for the pattern grids (Figures 3–4), a line figure for
// the machine-shape sweeps (Figures 5–8).
func FigureSVG(t *Table) string { return plot.FigureSVG(t) }

// UtilizationTimelineSVG renders a traced run's per-disk busy intervals
// as a Gantt-style SVG timeline — the picture behind the paper's
// "disk-directed I/O keeps the disks busy" claim.
func UtilizationTimelineSVG(rec *TraceRecorder, title string) string {
	return plot.UtilizationTimeline(rec, title)
}

// CellKey returns the canonical cache identity of one experiment cell:
// a hex SHA-256 over the resolved configuration (method, pattern,
// machine shape, tuning, seed, fault plan). Because every run is a pure
// function of its Config, equal keys mean byte-identical results — the
// invariant the sweep server's cell cache is built on. Two configs that
// differ only in JSON field order hash identically; any change to seed,
// trial, or a tuning knob changes the key.
func CellKey(cfg Config) string { return exp.CellKey(cfg) }

// ServerConfig tunes a sweep server: cache capacity, queue depth,
// concurrency, and the option defaults applied to requests.
type ServerConfig = serve.Config

// Server is the ddiosimd daemon as an embeddable http.Handler: POST
// /v1/sweeps and /v1/runs with cell-level LRU caching, singleflight
// deduplication, bounded-queue admission control, async jobs, and a
// /metrics endpoint. See cmd/ddiosimd and EXPERIMENTS.md "Serving
// sweeps".
type Server = serve.Server

// NewServer returns a sweep server; zero-valued config fields select
// the defaults (cache 4096 cells, queue 16, concurrency 2, and the
// figures CLI option defaults).
func NewServer(cfg ServerConfig) *Server { return serve.New(cfg) }
