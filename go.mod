module ddio

go 1.24
