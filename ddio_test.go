package ddio_test

import (
	"strings"
	"testing"

	"ddio"
)

// The facade tests double as compile-time proof that the public API is
// usable without reaching into internal packages.

func smallConfig() ddio.Config {
	cfg := ddio.DefaultConfig()
	cfg.NCP, cfg.NIOP, cfg.NDisks = 4, 4, 4
	cfg.FileBytes = 1 * ddio.MiB
	return cfg
}

func TestDefaultConfigIsTable1(t *testing.T) {
	cfg := ddio.DefaultConfig()
	if cfg.NCP != 16 || cfg.NIOP != 16 || cfg.NDisks != 16 {
		t.Fatalf("machine %d/%d/%d", cfg.NCP, cfg.NIOP, cfg.NDisks)
	}
	if cfg.FileBytes != 10*ddio.MiB || cfg.BlockSize != 8192 {
		t.Fatalf("file %d/%d", cfg.FileBytes, cfg.BlockSize)
	}
	if cfg.Disk.Name != "HP97560" {
		t.Fatalf("disk %q", cfg.Disk.Name)
	}
}

func TestPublicRun(t *testing.T) {
	cfg := smallConfig()
	cfg.Method = ddio.DiskDirectedSort
	cfg.Pattern = "rb"
	res, err := ddio.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.MBps <= 0 || res.VerifyErrors != 0 {
		t.Fatalf("result %+v", res)
	}
}

func TestPublicTrials(t *testing.T) {
	cfg := smallConfig()
	cfg.Method = ddio.TraditionalCaching
	cfg.Pattern = "rc"
	tr, err := ddio.RunTrials(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Mean <= 0 || len(tr.Results) != 2 {
		t.Fatalf("trial %+v", tr)
	}
}

func TestPublicParsers(t *testing.T) {
	if m, err := ddio.ParseMethod("ddio"); err != nil || m != ddio.DiskDirected {
		t.Fatalf("ParseMethod: %v %v", m, err)
	}
	if l, err := ddio.ParseLayout("contiguous"); err != nil || l != ddio.Contiguous {
		t.Fatalf("ParseLayout: %v %v", l, err)
	}
}

func TestPublicPatternLists(t *testing.T) {
	if len(ddio.AllPatterns()) != len(ddio.ReadPatterns())+len(ddio.WritePatterns()) {
		t.Fatal("pattern list arithmetic")
	}
}

func TestPublicDiskModel(t *testing.T) {
	spec := ddio.HP97560()
	if spec.Cylinders != 1962 {
		t.Fatalf("cylinders %d", spec.Cylinders)
	}
	if spec.SustainedRate() <= 0 {
		t.Fatal("no sustained rate")
	}
}

func TestPublicTable1(t *testing.T) {
	if !strings.Contains(ddio.Table1(), "HP97560") {
		t.Fatal("Table1 content")
	}
}

func TestAllMethodsAllPatternsSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("full pattern sweep")
	}
	for _, pattern := range ddio.AllPatterns() {
		cfg := smallConfig()
		cfg.Method = ddio.DiskDirectedSort
		cfg.Pattern = pattern
		res, err := ddio.Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", pattern, err)
		}
		if res.VerifyErrors != 0 {
			t.Fatalf("%s: %d verify errors", pattern, res.VerifyErrors)
		}
	}
}
