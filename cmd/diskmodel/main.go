// Command diskmodel characterizes the HP 97560 disk model against its
// published behaviour — the stand-in for the trace-based validation of
// Kotz/Toh/Radhakrishnan (TR94-220), whose HP traces are not available.
// It prints the geometry, samples the seek curve, and measures
// sequential, random, and sorted-sweep service with the full mechanical
// model.
//
//	diskmodel [-blocks 512]
package main

import (
	"flag"
	"fmt"
	"sort"

	"ddio/internal/disk"
	"ddio/internal/sim"
)

func main() {
	blocks := flag.Int("blocks", 512, "blocks per micro-benchmark")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	spec := disk.HP97560()
	fmt.Printf("%s: %d cylinders x %d heads x %d sectors x %d B = %.2f GB\n",
		spec.Name, spec.Cylinders, spec.Heads, spec.SectorsPerTrack, spec.SectorSize,
		float64(spec.Capacity())/1e9)
	fmt.Printf("rotation %.3f ms (%g RPM), media rate %.2f MB/s, sustained %.2f MB/s\n",
		spec.RevTime().Seconds()*1e3, spec.RPM, spec.MediaRate()/(1<<20), spec.SustainedRate()/(1<<20))

	fmt.Println("\nseek curve (published: 3.24+0.400*sqrt(d) ms short, 8.00+0.008d ms long):")
	for _, d := range []int{1, 4, 16, 64, 256, 383, 384, 1000, 1961} {
		fmt.Printf("  seek %5d cyl: %8.3f ms\n", d, spec.Seek(d).Seconds()*1e3)
	}

	fmt.Println("\nmicro-benchmarks (8 KB accesses, queue depth 1):")
	fmt.Printf("  sequential read:  %s\n", bench(*seed, *blocks, seqSlots(*blocks), false))
	fmt.Printf("  sequential write: %s\n", bench(*seed, *blocks, seqSlots(*blocks), true))
	rnd := randomSlots(*seed, *blocks, spec)
	fmt.Printf("  random read:      %s\n", bench(*seed, *blocks, rnd, false))
	srt := append([]int64(nil), rnd...)
	sort.Slice(srt, func(i, j int) bool { return srt[i] < srt[j] })
	fmt.Printf("  sorted sweep:     %s\n", bench(*seed, *blocks, srt, false))
}

func seqSlots(n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(i) * 16
	}
	return out
}

func randomSlots(seed int64, n int, spec *disk.Spec) []int64 {
	rng := sim.NewRand(seed)
	out := make([]int64, n)
	for i := range out {
		out[i] = rng.Int63n(spec.TotalSectors()/16-1) * 16
	}
	return out
}

// bench runs the access list on a fresh disk and reports throughput and
// mean service time.
func bench(seed int64, n int, slots []int64, write bool) string {
	e := sim.NewEngine()
	defer e.Close()
	d := disk.New(e, "bench", disk.HP97560(), nil, nil)
	data := make([]byte, 16*512)
	var end sim.Time
	e.Go("driver", func(p *sim.Proc) {
		for _, s := range slots {
			if write {
				d.WriteSync(p, s, data)
			} else {
				d.ReadSync(p, s, 16)
			}
		}
		d.Flush(p)
		end = p.Now()
	})
	e.Run()
	bytes := float64(n * 16 * 512)
	m := d.Metrics()
	return fmt.Sprintf("%6.2f MB/s, %7.3f ms/op  (%d seeks, %d cache hits, %d streamed)",
		bytes/end.Seconds()/(1<<20),
		end.Seconds()*1e3/float64(n),
		m.SeekCount, m.CacheHits, m.CacheStreams)
}
