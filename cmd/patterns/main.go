// Command patterns renders the paper's Figure 2: for each HPF access
// pattern it draws which CP owns each element of a small matrix, and
// reports the chunk size (cs) and stride (s) that determine how many
// file-system calls a traditional client must make.
//
//	patterns              # the paper's 8x8 matrix / 1x8 vector over 4 CPs
//	patterns -rows 16 -cols 16 -cps 8
//	patterns -pattern rcb # a single pattern
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"ddio/internal/hpf"
)

func main() {
	rows := flag.Int("rows", 8, "matrix rows (2-D patterns)")
	cols := flag.Int("cols", 8, "matrix columns (2-D patterns); also vector length for 1-D")
	ncp := flag.Int("cps", 4, "number of compute processors")
	one := flag.String("pattern", "", "show a single pattern (default: all of Figure 2)")
	flag.Parse()

	names := []string{
		"rn", "rb", "rc", "ra",
		"rnn", "rbn", "rcn", "rnb", "rbb", "rcb", "rnc", "rbc", "rcc",
	}
	if *one != "" {
		names = []string{*one}
	}
	for _, name := range names {
		if err := show(name, *rows, *cols, *ncp); err != nil {
			fmt.Fprintln(os.Stderr, "patterns:", err)
			os.Exit(1)
		}
	}
}

func show(name string, rows, cols, ncp int) error {
	p, err := hpf.ParsePattern(name)
	if err != nil {
		return err
	}
	records := cols
	if p.TwoD {
		records = rows * cols
	}
	d, err := p.Decomp(int64(records), 1, ncp)
	if err != nil {
		return err
	}
	fmt.Printf("%s — %s\n", name, describe(p))
	if p.TwoD {
		for i := 0; i < d.Rows.N; i++ {
			fmt.Print("  ")
			for j := 0; j < d.Cols.N; j++ {
				fmt.Printf("%2d", d.Owner(i*d.Cols.N+j))
			}
			fmt.Println()
		}
	} else if p.All {
		fmt.Printf("  every CP receives all %d elements\n", d.NumRecords())
	} else {
		fmt.Print("  ")
		for j := 0; j < d.Cols.N; j++ {
			fmt.Printf("%2d", d.Owner(j))
		}
		fmt.Println()
	}
	cs, strides := chunkStats(d)
	if len(strides) == 0 {
		fmt.Printf("  cs = %d (one contiguous chunk per CP)\n\n", cs)
	} else {
		fmt.Printf("  cs = %d, s = %v\n\n", cs, strides)
	}
	return nil
}

func describe(p hpf.Pattern) string {
	if p.All {
		return "ALL: every CP reads the entire file"
	}
	if !p.TwoD {
		return fmt.Sprintf("vector, %v", p.ColKind)
	}
	return fmt.Sprintf("matrix, rows %v x cols %v", p.RowKind, p.ColKind)
}

// chunkStats computes the paper's cs (largest contiguous chunk, in
// elements) and the distinct strides between CP 0's consecutive chunks.
func chunkStats(d *hpf.Decomp) (cs int64, strides []int64) {
	set := map[int64]bool{}
	chunks := d.Chunks(0)
	for i, c := range chunks {
		if c.Len > cs {
			cs = c.Len
		}
		if i > 0 {
			set[c.FileOff-chunks[i-1].FileOff] = true
		}
	}
	for s := range set {
		strides = append(strides, s)
	}
	sort.Slice(strides, func(i, j int) bool { return strides[i] < strides[j] })
	return cs, strides
}
