// Command ddiosim runs a single disk-directed-I/O experiment and prints
// its throughput and substrate metrics. With -sweep it runs a whole
// declarative scale sweep (a preset name or JSON spec file — the same
// specs cmd/figures runs; see EXPERIMENTS.md) using this command's
// -trials/-j/-seed/-filemb flags.
//
// Example:
//
//	ddiosim -method ddio-sort -pattern rc -layout random -record 8
//	ddiosim -sweep ext-smoke -sweepjson ext-smoke.json
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ddio/internal/exp"
	"ddio/internal/pfs"
)

func main() {
	cfg := exp.DefaultConfig()
	method := flag.String("method", "tc", "file system: tc | ddio | ddio-sort | 2phase")
	pattern := flag.String("pattern", "ra", "access pattern (ra rn rb rc rnb rbb rcb rbc rcc rcn, w...)")
	layout := flag.String("layout", "random", "disk layout: contiguous | random")
	sweep := flag.String("sweep", "", "run a sweep spec (preset name or JSON file) instead of a single experiment")
	sweepJSON := flag.String("sweepjson", "", "with -sweep: also write the machine-readable sweep result to this file")
	flag.IntVar(&cfg.NCP, "cps", cfg.NCP, "number of compute processors")
	flag.IntVar(&cfg.NIOP, "iops", cfg.NIOP, "number of I/O processors (one bus each)")
	flag.IntVar(&cfg.NDisks, "disks", cfg.NDisks, "number of disks")
	fileMB := flag.Int64("filemb", 10, "file size in MiB")
	flag.IntVar(&cfg.RecordSize, "record", cfg.RecordSize, "record size in bytes")
	flag.Int64Var(&cfg.Seed, "seed", cfg.Seed, "random seed")
	trials := flag.Int("trials", 1, "independent trials (mean reported)")
	workers := flag.Int("j", 0, "concurrent trial runs (0 = GOMAXPROCS)")
	verbose := flag.Bool("v", false, "print substrate metrics")
	flag.BoolVar(&cfg.Verify, "verify", true, "verify data end to end")
	flag.BoolVar(&cfg.DD.GatherScatter, "gather", false, "gather/scatter Memput/Memget (paper future work)")
	flag.IntVar(&cfg.DD.BuffersPerDisk, "buffers", cfg.DD.BuffersPerDisk, "disk-directed buffers per disk")
	flag.BoolVar(&cfg.TC.StridedRequests, "strided", false, "strided traditional-caching requests (paper future work)")
	noDiskCache := flag.Bool("nodiskcache", false, "disable the drive's read-ahead/write-behind cache")
	flag.Parse()

	if *sweep != "" {
		opt := exp.Options{
			Trials:    *trials,
			FileBytes: *fileMB * exp.MiB,
			Seed:      cfg.Seed,
			Verify:    cfg.Verify,
			Workers:   *workers,
		}
		if *verbose {
			opt.Progress = func(line string) { fmt.Fprintln(os.Stderr, line) }
		}
		spec, err := exp.ResolveSweep(*sweep)
		if err != nil {
			fatal(err)
		}
		res, err := spec.RunFull(opt)
		if err != nil {
			fatal(err)
		}
		fmt.Println(res.Table.Format())
		fmt.Printf("max cv %.3f\n", res.Table.MaxCV())
		if *sweepJSON != "" {
			data, err := res.JSON()
			if err != nil {
				fatal(err)
			}
			if err := os.WriteFile(*sweepJSON, data, 0o644); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", *sweepJSON)
		}
		return
	}

	if *noDiskCache {
		spec := *cfg.Disk
		spec.CacheSegmentSectors = 0
		cfg.Disk = &spec
	}

	var err error
	if cfg.Method, err = exp.ParseMethod(*method); err != nil {
		fatal(err)
	}
	if cfg.Layout, err = pfs.ParseLayout(*layout); err != nil {
		fatal(err)
	}
	cfg.Pattern = *pattern
	cfg.FileBytes = *fileMB * exp.MiB

	t, err := exp.NewRunner(*workers, nil).Trials(cfg, *trials)
	if err != nil {
		fatal(err)
	}
	r := t.Results[0]
	fmt.Printf("%s %s on %s layout: %.2f MB/s (cv %.3f over %d trials)\n",
		cfg.Method, cfg.Pattern, cfg.Layout, t.Mean, t.CV, len(t.Results))
	fmt.Printf("  elapsed %v, %d MiB moved, hardware ceiling %.1f MB/s\n",
		r.Elapsed.Round(10*time.Microsecond), r.MovedBytes/exp.MiB, cfg.MaxBandwidthMBps())
	if *verbose {
		fmt.Printf("  disk: %d reads, %d writes, %d ra-hits, %d streamed, %d seeks (%d cyls)\n",
			r.Disk.Reads, r.Disk.Writes, r.Disk.CacheHits, r.Disk.CacheStream, r.Disk.Seeks, r.Disk.SeekCylinders)
		fmt.Printf("  net: %d msgs, %d bytes; IOP cpu busy %v; CP cpu busy %v; bus busy %v\n",
			r.NetMsgs, r.NetBytes, r.IOPBusy, r.CPBusy, r.BusBusy)
		if r.TC.Requests > 0 {
			fmt.Printf("  tc: %d requests, %d hits / %d misses, %d prefetches, %d flushes (%d RMW)\n",
				r.TC.Requests, r.TC.CacheHits, r.TC.CacheMiss, r.TC.Prefetches, r.TC.Flushes, r.TC.PartialRMW)
		}
		if r.DD.Requests > 0 {
			fmt.Printf("  ddio: %d blocks, %d memputs, %d memgets, %d partial-RMW\n",
				r.DD.Blocks, r.DD.Memputs, r.DD.Memgets, r.DD.PartialBlockRMW)
		}
		fmt.Printf("  %d simulation events\n", r.Events)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ddiosim:", err)
	os.Exit(1)
}
