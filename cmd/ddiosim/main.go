// Command ddiosim runs a single disk-directed-I/O experiment and prints
// its throughput and substrate metrics. With -sweep it runs a whole
// declarative scale sweep (a preset name or JSON spec file — the same
// specs cmd/figures runs; see EXPERIMENTS.md) using this command's
// -trials/-j/-seed/-filemb flags.
//
// Observability (see EXPERIMENTS.md "Traces and figures"): -trace and
// -tracecsv record the run's event trace as JSONL / long-format CSV,
// -tracehtml writes a self-contained explorable HTML viewer (timelines,
// latency percentiles, per-request critical paths), and -plot renders
// SVG — a per-disk utilization timeline for a single run, a paper-style
// figure (or two-axis response-surface heatmap) for a sweep. Tracing
// forces a single trial: a trace is one run's story.
//
// Example:
//
//	ddiosim -method ddio-sort -pattern rc -layout random -record 8
//	ddiosim -method ddio-sort -pattern rb -trace run.jsonl -plot run.svg
//	ddiosim -sweep ext-smoke -sweepjson ext-smoke.json -plot ext-smoke.svg
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"ddio/internal/exp"
	"ddio/internal/fault"
	"ddio/internal/pfs"
	"ddio/internal/plot"
	"ddio/internal/trace"
	"ddio/internal/workload"
)

func main() {
	cfg := exp.DefaultConfig()
	method := flag.String("method", "tc", "file system: tc | ddio | ddio-sort | 2phase")
	pattern := flag.String("pattern", "ra", "access pattern (ra rn rb rc rnb rbb rcb rbc rcc rcn, w...)")
	layout := flag.String("layout", "random", "disk layout: contiguous | random")
	sweep := flag.String("sweep", "", "run a sweep spec (preset name or JSON file) instead of a single experiment")
	sweepJSON := flag.String("sweepjson", "", "with -sweep: also write the machine-readable sweep result to this file")
	sweepCSV := flag.String("sweepcsv", "", "with -sweep: also write the long-format (tidy) per-cell CSV to this file")
	traceOut := flag.String("trace", "", "write the run's event trace as JSON Lines to this file (single run; forces -trials 1)")
	traceCSV := flag.String("tracecsv", "", "write the run's event trace as long-format CSV to this file (single run; forces -trials 1)")
	traceHTML := flag.String("tracehtml", "", "write the run's explorable HTML trace viewer to this file (single run; forces -trials 1)")
	plotOut := flag.String("plot", "", "write an SVG to this file: a disk-utilization timeline for a single run, the sweep figure with -sweep")
	faultsArg := flag.String("faults", "", "fault plan: inline JSON ({\"disk_error_rate\":0.05,...}) or a plan file; see EXPERIMENTS.md")
	workloadArg := flag.String("workload", "", "workload: inline JSON spec, a spec file, or a .csv block trace; see EXPERIMENTS.md")
	flag.IntVar(&cfg.NCP, "cps", cfg.NCP, "number of compute processors")
	flag.IntVar(&cfg.NIOP, "iops", cfg.NIOP, "number of I/O processors (one bus each)")
	flag.IntVar(&cfg.NDisks, "disks", cfg.NDisks, "number of disks")
	fileMB := flag.Int64("filemb", 10, "file size in MiB")
	flag.IntVar(&cfg.RecordSize, "record", cfg.RecordSize, "record size in bytes")
	flag.Int64Var(&cfg.Seed, "seed", cfg.Seed, "random seed")
	trials := flag.Int("trials", 1, "independent trials (mean reported)")
	workers := flag.Int("j", 0, "concurrent trial runs (0 = GOMAXPROCS)")
	verbose := flag.Bool("v", false, "print substrate metrics")
	flag.BoolVar(&cfg.Verify, "verify", true, "verify data end to end")
	flag.BoolVar(&cfg.DD.GatherScatter, "gather", false, "gather/scatter Memput/Memget (paper future work)")
	flag.IntVar(&cfg.DD.BuffersPerDisk, "buffers", cfg.DD.BuffersPerDisk, "disk-directed buffers per disk")
	flag.BoolVar(&cfg.TC.StridedRequests, "strided", false, "strided traditional-caching requests (paper future work)")
	noDiskCache := flag.Bool("nodiskcache", false, "disable the drive's read-ahead/write-behind cache")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file (inspect with go tool pprof)")
	memProfile := flag.String("memprofile", "", "write an allocation profile to this file at exit")
	flag.Parse()

	// Profiles are written on normal completion (including the -sweep
	// early return); a fatal() exit abandons them — profiling a failed
	// run is not useful.
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			closeOut(f, *cpuProfile)
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fatal(err)
			}
			runtime.GC() // settle the heap so live-object numbers are stable
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fatal(err)
			}
			closeOut(f, *memProfile)
		}()
	}

	var plan *fault.Plan
	if *faultsArg != "" {
		var err error
		if plan, err = fault.ResolvePlan(*faultsArg); err != nil {
			fatal(err)
		}
	}
	var wl *workload.Spec
	if *workloadArg != "" {
		var err error
		if wl, err = workload.ResolveSpec(*workloadArg); err != nil {
			fatal(err)
		}
	}

	if *sweep != "" {
		if *traceOut != "" || *traceCSV != "" || *traceHTML != "" {
			fmt.Fprintln(os.Stderr, "ddiosim: -trace/-tracecsv/-tracehtml record a single run and are ignored with -sweep")
		}
		opt := exp.Options{
			Trials:    *trials,
			FileBytes: *fileMB * exp.MiB,
			Seed:      cfg.Seed,
			Verify:    cfg.Verify,
			Workers:   *workers,
			Faults:    plan,
			Workload:  wl,
		}
		if *verbose {
			opt.Progress = func(line string) { fmt.Fprintln(os.Stderr, line) }
		}
		spec, err := exp.ResolveSweep(*sweep)
		if err != nil {
			fatal(err)
		}
		res, err := spec.RunFull(opt)
		if err != nil {
			fatal(err)
		}
		fmt.Println(res.Table.Format())
		fmt.Printf("max cv %.3f\n", res.Table.MaxCV())
		if *sweepJSON != "" {
			data, err := res.JSON()
			if err != nil {
				fatal(err)
			}
			writeOut(*sweepJSON, data)
		}
		if *sweepCSV != "" {
			writeOut(*sweepCSV, []byte(res.LongCSV()))
		}
		if *plotOut != "" {
			writeOut(*plotOut, []byte(plot.SweepFigure(res)))
		}
		return
	}

	if *noDiskCache {
		spec := *cfg.Disk
		spec.CacheSegmentSectors = 0
		cfg.Disk = &spec
	}

	var err error
	if cfg.Method, err = exp.ParseMethod(*method); err != nil {
		fatal(err)
	}
	if cfg.Layout, err = pfs.ParseLayout(*layout); err != nil {
		fatal(err)
	}
	cfg.Pattern = *pattern
	cfg.FileBytes = *fileMB * exp.MiB
	cfg.Faults = plan
	cfg.Workload = wl

	if *sweepJSON != "" || *sweepCSV != "" {
		fmt.Fprintln(os.Stderr, "ddiosim: -sweepjson/-sweepcsv apply only with -sweep; ignored")
	}
	var t *exp.Trial
	var rec *trace.Recorder
	if traced := *traceOut != "" || *traceCSV != "" || *traceHTML != "" || *plotOut != ""; traced {
		// A trace is the story of one run; replicated trials would
		// interleave into nonsense, so tracing forces a single run.
		if *trials > 1 {
			fmt.Fprintln(os.Stderr, "ddiosim: tracing records a single run; ignoring -trials")
		}
		res, r2, err := exp.TracedRun(cfg)
		if err != nil {
			fatal(err)
		}
		rec = r2
		t = &exp.Trial{Results: []*exp.Result{res}, MBps: []float64{res.MBps}, Mean: res.MBps}
	} else {
		t, err = exp.NewRunner(*workers, nil).Trials(cfg, *trials)
		if err != nil {
			fatal(err)
		}
	}
	r := t.Results[0]
	fmt.Printf("%s %s on %s layout: %.2f MB/s (cv %.3f over %d trials)\n",
		cfg.Method, cfg.Pattern, cfg.Layout, t.Mean, t.CV, len(t.Results))
	if wl.Enabled() {
		fmt.Printf("  workload: %s\n", wl.Summary())
	}
	fmt.Printf("  elapsed %v, %d MiB moved, hardware ceiling %.1f MB/s\n",
		r.Elapsed.Round(10*time.Microsecond), r.MovedBytes/exp.MiB, cfg.MaxBandwidthMBps())
	if *verbose {
		fmt.Printf("  disk: %d reads, %d writes, %d ra-hits, %d streamed, %d seeks (%d cyls)\n",
			r.Disk.Reads, r.Disk.Writes, r.Disk.CacheHits, r.Disk.CacheStream, r.Disk.Seeks, r.Disk.SeekCylinders)
		fmt.Printf("  net: %d msgs, %d bytes; IOP cpu busy %v; CP cpu busy %v; bus busy %v\n",
			r.NetMsgs, r.NetBytes, r.IOPBusy, r.CPBusy, r.BusBusy)
		if r.TC.Requests > 0 {
			fmt.Printf("  tc: %d requests, %d hits / %d misses, %d prefetches, %d flushes (%d RMW)\n",
				r.TC.Requests, r.TC.CacheHits, r.TC.CacheMiss, r.TC.Prefetches, r.TC.Flushes, r.TC.PartialRMW)
		}
		if r.DD.Requests > 0 {
			fmt.Printf("  ddio: %d blocks, %d memputs, %d memgets, %d partial-RMW\n",
				r.DD.Blocks, r.DD.Memputs, r.DD.Memgets, r.DD.PartialBlockRMW)
		}
		if f := r.Faults; f != (exp.FaultTotals{}) {
			fmt.Printf("  faults: %d disk errors, %d retries, %d recovered, %d lost; %d msgs dropped, %d resends, %d spikes\n",
				f.DiskErrors, f.Retries, f.Recovered, f.Exhausted, f.DroppedMsgs, f.Resends, f.Spikes)
		}
		fmt.Printf("  %d simulation events\n", r.Events)
	}

	if rec != nil {
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			if err != nil {
				fatal(err)
			}
			if err := rec.WriteJSONL(f); err != nil {
				fatal(err)
			}
			closeOut(f, *traceOut)
		}
		if *traceCSV != "" {
			f, err := os.Create(*traceCSV)
			if err != nil {
				fatal(err)
			}
			if err := rec.WriteCSV(f); err != nil {
				fatal(err)
			}
			closeOut(f, *traceCSV)
		}
		if *traceHTML != "" {
			f, err := os.Create(*traceHTML)
			if err != nil {
				fatal(err)
			}
			if err := rec.WriteHTML(f, exp.TraceTitle(cfg)); err != nil {
				fatal(err)
			}
			closeOut(f, *traceHTML)
		}
		if *plotOut != "" {
			title := "disk activity — " + exp.TraceTitle(cfg)
			writeOut(*plotOut, []byte(plot.UtilizationTimeline(rec, title)))
		}
		fmt.Printf("  trace: %d events, mean disk utilization %.0f%%\n",
			rec.Len(), rec.MeanDiskUtilization(0)*100)
	}
}

// writeOut writes one artifact file, reporting it on stderr like the
// sweep emitters do.
func writeOut(path string, data []byte) {
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
}

func closeOut(f *os.File, path string) {
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ddiosim:", err)
	os.Exit(1)
}
