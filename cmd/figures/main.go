// Command figures regenerates the paper's evaluation: Table 1 and
// Figures 3–8. Output is aligned text (one table per figure); -csv and
// -json add machine-readable files.
//
// The paper used five trials of a 10 MB file; -trials and -filemb trade
// fidelity for time (shapes are stable well below the defaults). Every
// (cell × trial) simulation is independent, so -j fans them out over a
// worker pool; tables are bit-identical for any -j, only the progress
// line order changes.
//
// -sweep runs a declarative scale sweep instead: a built-in preset by
// name (-sweeps lists them; the fig5-paper…fig8-paper presets emit
// exactly the Figure 5–8 tables, the *-ext presets push the same axes
// past the paper's 16 CPs/IOPs/disks) or a JSON spec file by path.
// EXPERIMENTS.md documents every preset and the file format.
//
// -plot additionally renders every emitted table as an SVG figure
// (grouped bars for the pattern grids, line figures for the sweeps),
// and -trace runs one traced Figure-3a-style transfer per file system
// (random-blocks, 8-byte records, the rc pattern) and writes its
// per-disk utilization timeline SVG plus the raw JSONL trace
// — the time-resolved view behind the paper's "disk-directed I/O keeps
// the disks busy" claim. See EXPERIMENTS.md "Traces and figures".
//
// Example:
//
//	figures -fig 3 -trials 5
//	figures -all -trials 3 -filemb 10 -out results/
//	figures -all -j 16
//	figures -sweep fig5-paper            # == -fig 5, via the sweep layer
//	figures -sweep fig7-ext -json -j 16  # extended axes, JSON artifact
//	figures -sweep my-sweep.json
//	figures -sweep fig5-paper -plot      # + fig5-paper.svg
//	figures -trace -trials 1 -filemb 1   # timeline-{tc,ddio,2phase}.svg
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"ddio/internal/exp"
	"ddio/internal/fault"
	"ddio/internal/pfs"
	"ddio/internal/plot"
	"ddio/internal/workload"
)

func main() {
	fig := flag.String("fig", "", "which figure to regenerate: 3,4,5,6,7,8 or table1 (empty with -all for everything)")
	all := flag.Bool("all", false, "regenerate every table and figure")
	sweep := flag.String("sweep", "", "run sweep specs instead: comma-separated preset names or JSON spec files")
	listSweeps := flag.Bool("sweeps", false, "list the built-in sweep presets and exit")
	trials := flag.Int("trials", 5, "independent trials per data point")
	fileMB := flag.Int64("filemb", 10, "file size in MiB")
	seed := flag.Int64("seed", 42, "base random seed")
	verify := flag.Bool("verify", true, "verify data end to end in every run")
	workers := flag.Int("j", 0, "concurrent experiment runs (0 = GOMAXPROCS); tables are identical for any -j")
	quiet := flag.Bool("q", false, "suppress per-cell progress on stderr")
	csv := flag.Bool("csv", false, "also write CSV files (sweeps also get a long-format *-long.csv)")
	jsonOut := flag.Bool("json", false, "also write JSON files (sweeps carry per-cell trial statistics)")
	plotOut := flag.Bool("plot", false, "also render every table as an SVG figure")
	traceRuns := flag.Bool("trace", false, "run one traced Figure-3a-style transfer per file system; write timeline SVGs + JSONL traces")
	out := flag.String("out", "", "directory for CSV/JSON/SVG output (default: current)")
	faultsArg := flag.String("faults", "", "fault plan for every run: inline JSON or a plan file (sweep specs with their own faults template take precedence)")
	workloadArg := flag.String("workload", "", "workload for every run: inline JSON spec, a spec file, or a .csv block trace (sweep specs with their own workload template take precedence)")
	flag.Parse()

	if *listSweeps {
		fmt.Printf("%-12s %-8s %-22s %s\n", "preset", "axis", "values", "title")
		for _, s := range exp.Presets() {
			fmt.Printf("%-12s %-8s %-22s %s\n", s.Name, s.Axis, trimJoin(s.Values), s.Title)
		}
		return
	}

	opt := exp.Options{
		Trials:    *trials,
		FileBytes: *fileMB * exp.MiB,
		Seed:      *seed,
		Verify:    *verify,
		Workers:   *workers,
	}
	if *faultsArg != "" {
		plan, err := fault.ResolvePlan(*faultsArg)
		if err != nil {
			fatal(err)
		}
		opt.Faults = plan
	}
	if *workloadArg != "" {
		wl, err := workload.ResolveSpec(*workloadArg)
		if err != nil {
			fatal(err)
		}
		opt.Workload = wl
	}
	if !*quiet {
		start := time.Now()
		opt.Progress = func(line string) {
			fmt.Fprintf(os.Stderr, "[%7.1fs] %s\n", time.Since(start).Seconds(), line)
		}
	}

	writeOut := func(name string, data []byte) {
		path := filepath.Join(*out, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	}

	// printTable is the shared text + wide-CSV emission; emit adds the
	// per-table SVG for the figure path (sweeps name their SVG after the
	// spec instead, see below).
	printTable := func(t *exp.Table) {
		fmt.Println(t.Format())
		fmt.Printf("max cv %.3f\n\n", t.MaxCV())
		if *csv {
			writeOut(t.ID+".csv", []byte(t.CSV()))
		}
	}
	emit := func(tables ...*exp.Table) {
		for _, t := range tables {
			printTable(t)
			if *plotOut {
				writeOut(t.ID+".svg", []byte(plot.FigureSVG(t)))
			}
		}
	}

	if *sweep != "" {
		for _, name := range strings.Split(*sweep, ",") {
			if name == "" {
				continue
			}
			spec, err := exp.ResolveSweep(name)
			if err != nil {
				fatal(err)
			}
			res, err := spec.RunFull(opt)
			if err != nil {
				fatal(err)
			}
			printTable(res.Table)
			if *csv {
				writeOut(spec.Name+"-long.csv", []byte(res.LongCSV()))
			}
			if *jsonOut {
				data, err := res.JSON()
				if err != nil {
					fatal(err)
				}
				// Sweep results are written under the spec name, not the
				// table ID: fig5-paper's table carries the historical ID
				// "fig5", and fig5.json is the bare-Table schema that
				// `-fig 5 -json` emits — a different format.
				writeOut(spec.Name+".json", data)
			}
			if *plotOut {
				writeOut(spec.Name+".svg", []byte(plot.SweepFigure(res)))
				if svg := plot.SweepTimeFigure(res); svg != "" {
					// Degradation sweeps get the completion-time companion
					// figure (recovery stretches time even where throughput
					// curves flatten); workload sweeps get the
					// request-latency-percentile companion.
					writeOut(spec.Name+"-time.svg", []byte(svg))
				}
			}
		}
		if *traceRuns {
			traceFigure3Runs(opt, *out, writeOut)
		}
		return
	}

	emitJSON := func(tables ...*exp.Table) {
		if !*jsonOut {
			return
		}
		for _, t := range tables {
			data, err := t.JSON()
			if err != nil {
				fatal(err)
			}
			path := filepath.Join(*out, t.ID+".json")
			if err := os.WriteFile(path, data, 0o644); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", path)
		}
	}

	which := map[string]bool{}
	if *all || (*fig == "" && !*traceRuns) {
		for _, f := range []string{"table1", "3", "4", "5", "6", "7", "8"} {
			which[f] = true
		}
	}
	for _, f := range strings.Split(*fig, ",") {
		if f != "" {
			which[strings.TrimPrefix(f, "fig")] = true
		}
	}

	if which["table1"] {
		fmt.Println(exp.Table1())
	}
	// When both pattern figures are requested, regenerate them together
	// and distill the paper's headline claims (printed after the other
	// figures).
	var headlines *exp.Headlines
	if which["3"] && which["4"] {
		h, tables, err := exp.RegenerateHeadlines(opt)
		if err != nil {
			fatal(err)
		}
		headlines = h
		emit(tables...)
		emitJSON(tables...)
		which["3"], which["4"] = false, false
	}
	type gen2 func(exp.Options) ([]*exp.Table, error)
	type gen1 func(exp.Options) (*exp.Table, error)
	for _, g := range []struct {
		key string
		fn2 gen2
		fn1 gen1
	}{
		{"3", exp.Figure3, nil},
		{"4", exp.Figure4, nil},
		{"5", nil, exp.Figure5},
		{"6", nil, exp.Figure6},
		{"7", nil, exp.Figure7},
		{"8", nil, exp.Figure8},
	} {
		if !which[g.key] {
			continue
		}
		if g.fn2 != nil {
			tables, err := g.fn2(opt)
			if err != nil {
				fatal(err)
			}
			emit(tables...)
			emitJSON(tables...)
		} else {
			t, err := g.fn1(opt)
			if err != nil {
				fatal(err)
			}
			emit(t)
			emitJSON(t)
		}
	}
	if headlines != nil {
		fmt.Println(headlines.Format())
	}
	if *traceRuns {
		traceFigure3Runs(opt, *out, writeOut)
	}
}

// traceFigure3Runs runs one traced Figure-3-style transfer per file
// system — random-blocks layout, 8-byte records, the cyclic rc pattern,
// Figure 3a's worst case — and writes each run's per-disk utilization
// timeline SVG plus its raw JSONL trace. This is the workload where the
// paper's mechanism is starkest: traditional caching goes
// request-bound, its disk tracks striped with idle gaps between cache
// requests, while disk-directed I/O keeps every track near-solid on
// double-buffered, schedule-ordered transfers. (With 8 KB records both
// systems are disk-bound and the timelines look alike; the throughput
// gap there is seek ordering, not idleness.)
func traceFigure3Runs(opt exp.Options, outDir string, writeOut func(name string, data []byte)) {
	for _, name := range []string{"tc", "ddio", "2phase"} {
		method, err := exp.ParseMethod(name)
		if err != nil {
			fatal(err)
		}
		cfg := exp.DefaultConfig()
		cfg.FileBytes = opt.FileBytes
		cfg.Seed = opt.Seed
		cfg.Verify = opt.Verify
		cfg.Layout = pfs.RandomBlocks
		cfg.RecordSize = 8
		cfg.Pattern = "rc"
		cfg.Method = method
		res, rec, err := exp.TracedRun(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("trace %-6s rc: %6.2f MB/s, mean disk utilization %3.0f%%, %d trace events\n",
			name, res.MBps, rec.MeanDiskUtilization(0)*100, rec.Len())
		title := fmt.Sprintf("disk activity — %v, rc pattern, random-blocks layout, 8-byte records", method)
		writeOut("timeline-"+name+".svg", []byte(plot.UtilizationTimeline(rec, title)))
		// Streamed, not buffered: large traces would otherwise be held
		// in memory twice.
		path := filepath.Join(outDir, "trace-"+name+".jsonl")
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		if err := rec.WriteJSONL(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	}
}

// trimJoin renders an int slice compactly for the preset listing.
func trimJoin(vs []int) string {
	var b strings.Builder
	for i, v := range vs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", v)
	}
	return b.String()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "figures:", err)
	os.Exit(1)
}
