// Command ddiosimd serves disk-directed-I/O sweeps over HTTP: the same
// declarative SweepSpec documents cmd/figures renders (preset name or
// inline JSON) POSTed to /v1/sweeps come back as tables, JSON, CSV, or
// SVG figures — byte-identical to the CLI artifacts for the same inputs.
//
// The daemon exploits the simulator's determinism: completed cells are
// cached in an LRU keyed by their canonical config hash, concurrent
// identical requests are collapsed onto one simulation per cell
// (singleflight), and a bounded job queue answers 429 + Retry-After
// when full instead of accepting unbounded work.
//
// Endpoints (see EXPERIMENTS.md "Serving sweeps"):
//
//	GET  /healthz                health probe
//	GET  /v1/presets             built-in sweep specs, as JSON
//	POST /v1/sweeps              run a sweep (?format=text|json|csv|tablecsv|svg|timesvg, ?async=1)
//	POST /v1/runs                run one experiment (?trace=jsonl for the event trace,
//	                             ?trace=html for the explorable trace viewer)
//	GET  /v1/jobs/{id}           poll an async job
//	GET  /v1/jobs/{id}/result    collect a finished async job's body
//	GET  /v1/stats               cache/queue counters, as JSON
//	GET  /metrics                the counters plus per-endpoint duration
//	                             histograms and response-format totals
//
// Example:
//
//	ddiosimd -addr :8080 &
//	curl -d '{"preset":"fig5-paper","trials":1,"filemb":1}' localhost:8080/v1/sweeps
//	curl -d '{"method":"ddio-sort","pattern":"rc"}' localhost:8080/v1/runs
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ddio/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	cache := flag.Int("cache", 4096, "completed-cell LRU capacity")
	queue := flag.Int("queue", 16, "job queue depth; beyond it requests get 429")
	concurrency := flag.Int("concurrency", 2, "jobs simulating at once (the rest wait queued)")
	workers := flag.Int("j", 0, "runner worker goroutines per sweep (0 = GOMAXPROCS)")
	maxCells := flag.Int("maxcells", 4096, "largest (cell x trial) expansion accepted per request")
	trials := flag.Int("trials", 5, "default trials per cell when a request omits trials")
	filemb := flag.Int64("filemb", 10, "default file size in MiB when a request omits filemb")
	seed := flag.Int64("seed", 42, "default base seed when a request omits seed")
	quiet := flag.Bool("quiet", false, "suppress per-job log lines")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "ddiosimd: unexpected arguments: %v\n", flag.Args())
		os.Exit(2)
	}

	logger := log.New(os.Stderr, "ddiosimd: ", log.LstdFlags)
	cfg := serve.Config{
		CacheCells:  *cache,
		QueueDepth:  *queue,
		Concurrency: *concurrency,
		Workers:     *workers,
		MaxCells:    *maxCells,
		Trials:      *trials,
		FileMB:      *filemb,
		Seed:        *seed,
		Log:         logger,
	}
	if *quiet {
		cfg.Log = nil
	}
	srv := &http.Server{Addr: *addr, Handler: serve.New(cfg)}

	// Serve until SIGINT/SIGTERM, then drain in-flight requests.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	logger.Printf("listening on %s (queue=%d concurrency=%d cache=%d)",
		*addr, *queue, *concurrency, *cache)

	select {
	case err := <-errc:
		logger.Fatalf("serve: %v", err)
	case <-ctx.Done():
	}
	logger.Printf("shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Printf("shutdown: %v", err)
	}
}
