// Benchmarks regenerating every table and figure of the paper's
// evaluation, plus ablations of the design choices called out in the
// paper (§5–7). Each benchmark iteration runs the figure's full
// pattern/method grid on a scaled-down file (shapes are stable well
// below 10 MB; the cmd/figures tool runs the full-size version) and
// reports mean throughput via b.ReportMetric.
//
// Run with: go test -bench=. -benchmem
package ddio_test

import (
	"testing"

	"ddio"
)

// benchOptions is the scaled configuration all figure benchmarks share.
func benchOptions(fileBytes int64) ddio.Options {
	return ddio.Options{Trials: 1, FileBytes: fileBytes, Seed: 11, Verify: false}
}

// reportTables pushes every cell mean into the benchmark metrics stream
// as an overall average (MB/s) so regressions in simulated throughput
// are visible alongside wall-clock regressions.
func reportTables(b *testing.B, tables ...*ddio.Table) {
	b.Helper()
	var sum float64
	var n int
	for _, t := range tables {
		for i := range t.Cells {
			for j := range t.Cells[i] {
				if t.Cols[j] == "max-bw" {
					continue
				}
				sum += t.Cells[i][j].Mean
				n++
			}
		}
	}
	if n > 0 {
		b.ReportMetric(sum/float64(n), "simMB/s")
	}
}

// BenchmarkTable1 covers the parameters table: it exercises building
// the full Table 1 machine and running one transfer on it.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := ddio.DefaultConfig()
		cfg.FileBytes = 1 * ddio.MiB
		cfg.Method = ddio.DiskDirectedSort
		cfg.Pattern = "rb"
		cfg.Verify = false
		res, err := ddio.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MBps, "simMB/s")
	}
}

// benchPatternGrid runs one figure-3/4 style grid: every pattern under
// the given methods at one layout and record size.
func benchPatternGrid(b *testing.B, fileBytes int64, layout ddio.LayoutKind,
	recordSize int, methods []ddio.Method) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		var sum float64
		var n int
		for _, pattern := range ddio.AllPatterns() {
			for _, m := range methods {
				cfg := ddio.DefaultConfig()
				cfg.FileBytes = fileBytes
				cfg.Layout = layout
				cfg.RecordSize = recordSize
				cfg.Pattern = pattern
				cfg.Method = m
				cfg.Seed = 11
				cfg.Verify = false
				res, err := ddio.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				sum += res.MBps
				n++
			}
		}
		b.ReportMetric(sum/float64(n), "simMB/s")
	}
}

// BenchmarkFig3a: random-blocks layout, 8-byte records, all 19 patterns
// under TC, DDIO, and DDIO+sort.
func BenchmarkFig3a(b *testing.B) {
	benchPatternGrid(b, ddio.MiB/2, ddio.RandomBlocks, 8,
		[]ddio.Method{ddio.TraditionalCaching, ddio.DiskDirected, ddio.DiskDirectedSort})
}

// BenchmarkFig3b: random-blocks layout, 8192-byte records.
func BenchmarkFig3b(b *testing.B) {
	benchPatternGrid(b, 1*ddio.MiB, ddio.RandomBlocks, 8192,
		[]ddio.Method{ddio.TraditionalCaching, ddio.DiskDirected, ddio.DiskDirectedSort})
}

// BenchmarkFig3bParallel: the BenchmarkFig3b grid fanned out on the
// parallel runner (GOMAXPROCS workers). Compare against BenchmarkFig3b
// for the end-to-end regeneration speedup on a multi-core machine; on
// one core the two are equivalent.
func BenchmarkFig3bParallel(b *testing.B) {
	var cfgs []ddio.Config
	for _, pattern := range ddio.AllPatterns() {
		for _, m := range []ddio.Method{ddio.TraditionalCaching, ddio.DiskDirected, ddio.DiskDirectedSort} {
			cfg := ddio.DefaultConfig()
			cfg.FileBytes = 1 * ddio.MiB
			cfg.Layout = ddio.RandomBlocks
			cfg.RecordSize = 8192
			cfg.Pattern = pattern
			cfg.Method = m
			cfg.Seed = 11
			cfg.Verify = false
			cfgs = append(cfgs, cfg)
		}
	}
	r := ddio.NewRunner(0, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, err := r.RunAll(cfgs, nil)
		if err != nil {
			b.Fatal(err)
		}
		var sum float64
		for _, res := range results {
			sum += res.MBps
		}
		b.ReportMetric(sum/float64(len(results)), "simMB/s")
	}
}

// BenchmarkFig4a: contiguous layout, 8-byte records.
func BenchmarkFig4a(b *testing.B) {
	benchPatternGrid(b, ddio.MiB/2, ddio.Contiguous, 8,
		[]ddio.Method{ddio.TraditionalCaching, ddio.DiskDirected})
}

// BenchmarkFig4b: contiguous layout, 8192-byte records.
func BenchmarkFig4b(b *testing.B) {
	benchPatternGrid(b, 1*ddio.MiB, ddio.Contiguous, 8192,
		[]ddio.Method{ddio.TraditionalCaching, ddio.DiskDirected})
}

// BenchmarkFig5: throughput vs number of CPs.
func BenchmarkFig5(b *testing.B) {
	o := benchOptions(1 * ddio.MiB)
	for i := 0; i < b.N; i++ {
		t, err := ddio.Figure5(o)
		if err != nil {
			b.Fatal(err)
		}
		reportTables(b, t)
	}
}

// BenchmarkFig6: throughput vs number of IOPs/busses.
func BenchmarkFig6(b *testing.B) {
	o := benchOptions(1 * ddio.MiB)
	for i := 0; i < b.N; i++ {
		t, err := ddio.Figure6(o)
		if err != nil {
			b.Fatal(err)
		}
		reportTables(b, t)
	}
}

// BenchmarkFig7: throughput vs number of disks, contiguous.
func BenchmarkFig7(b *testing.B) {
	o := benchOptions(1 * ddio.MiB)
	for i := 0; i < b.N; i++ {
		t, err := ddio.Figure7(o)
		if err != nil {
			b.Fatal(err)
		}
		reportTables(b, t)
	}
}

// BenchmarkFig8: throughput vs number of disks, random-blocks.
func BenchmarkFig8(b *testing.B) {
	o := benchOptions(1 * ddio.MiB)
	for i := 0; i < b.N; i++ {
		t, err := ddio.Figure8(o)
		if err != nil {
			b.Fatal(err)
		}
		reportTables(b, t)
	}
}

// --- Ablations (paper §5–7) ---

// benchOne runs a single configuration and reports simulated MB/s.
func benchOne(b *testing.B, mutate func(*ddio.Config)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		cfg := ddio.DefaultConfig()
		cfg.FileBytes = 1 * ddio.MiB
		cfg.Verify = false
		mutate(&cfg)
		res, err := ddio.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MBps, "simMB/s")
	}
}

// BenchmarkAblationPresortOn/Off: the paper's own 41–50% presort claim.
func BenchmarkAblationPresortOn(b *testing.B) {
	benchOne(b, func(c *ddio.Config) {
		c.Method = ddio.DiskDirectedSort
		c.Pattern = "rb"
		c.Layout = ddio.RandomBlocks
	})
}

func BenchmarkAblationPresortOff(b *testing.B) {
	benchOne(b, func(c *ddio.Config) {
		c.Method = ddio.DiskDirected
		c.Pattern = "rb"
		c.Layout = ddio.RandomBlocks
	})
}

// BenchmarkAblationBuffers1/2/4: double-buffering depth per disk.
func BenchmarkAblationBuffers1(b *testing.B) { benchBuffers(b, 1) }
func BenchmarkAblationBuffers2(b *testing.B) { benchBuffers(b, 2) }
func BenchmarkAblationBuffers4(b *testing.B) { benchBuffers(b, 4) }

func benchBuffers(b *testing.B, buffers int) {
	benchOne(b, func(c *ddio.Config) {
		c.Method = ddio.DiskDirected
		c.Pattern = "rc"
		c.RecordSize = 8
		c.Layout = ddio.Contiguous
		c.DD.BuffersPerDisk = buffers
	})
}

// BenchmarkAblationGatherScatter: the paper's future-work batched
// Memput/Memget vs per-record messages on the worst-case pattern.
func BenchmarkAblationGatherScatterOff(b *testing.B) { benchGS(b, false) }
func BenchmarkAblationGatherScatterOn(b *testing.B)  { benchGS(b, true) }

func benchGS(b *testing.B, on bool) {
	benchOne(b, func(c *ddio.Config) {
		c.Method = ddio.DiskDirectedSort
		c.Pattern = "rc"
		c.RecordSize = 8
		c.Layout = ddio.Contiguous
		c.DD.GatherScatter = on
	})
}

// BenchmarkAblationDiskCacheOff: why contiguous layouts need the drive's
// read-ahead cache.
func BenchmarkAblationDiskCacheOff(b *testing.B) {
	benchOne(b, func(c *ddio.Config) {
		c.Method = ddio.DiskDirected
		c.Pattern = "rb"
		c.Layout = ddio.Contiguous
		spec := *ddio.HP97560()
		spec.CacheSegmentSectors = 0
		c.Disk = &spec
	})
}

// BenchmarkAblationTwoPhase: two-phase I/O on a permuting pattern,
// for comparison against DDIO (§7.1).
func BenchmarkAblationTwoPhase(b *testing.B) {
	benchOne(b, func(c *ddio.Config) {
		c.Method = ddio.TwoPhase
		c.Pattern = "rc"
		c.Layout = ddio.RandomBlocks
	})
}

// BenchmarkAblationStridedTC: the paper's future-work "strided requests"
// for the traditional system.
func BenchmarkAblationStridedTC(b *testing.B) {
	benchOne(b, func(c *ddio.Config) {
		c.Method = ddio.TraditionalCaching
		c.Pattern = "rc"
		c.Layout = ddio.Contiguous
		c.TC.StridedRequests = true
	})
}

// --- Substrate micro-benchmarks (simulator performance itself) ---

// BenchmarkSimulatorEventRate measures raw wall-clock cost per simulated
// event on a message-heavy run.
func BenchmarkSimulatorEventRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := ddio.DefaultConfig()
		cfg.FileBytes = ddio.MiB / 2
		cfg.Method = ddio.TraditionalCaching
		cfg.Pattern = "rc"
		cfg.RecordSize = 8
		cfg.Verify = false
		res, err := ddio.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Events), "events/op")
	}
}
